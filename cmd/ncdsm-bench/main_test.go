package main

import "testing"

func TestSelectIDs(t *testing.T) {
	cases := []struct {
		fig, table string
		want       []string
		wantErr    bool
	}{
		{"7", "", []string{"fig7"}, false},
		{"fig9", "", []string{"fig9"}, false},
		{"A", "", []string{"A"}, false},
		{"eq", "", []string{"eq"}, false},
		{"", "1", []string{"table1"}, false},
		{"", "table1", []string{"table1"}, false},
		{"6", "1", []string{"fig6", "table1"}, false},
		{"", "2", nil, true},
		{"", "", nil, false},
	}
	for _, c := range cases {
		got, err := selectIDs(c.fig, c.table)
		if (err != nil) != c.wantErr {
			t.Errorf("selectIDs(%q, %q) err = %v", c.fig, c.table, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("selectIDs(%q, %q) = %v, want %v", c.fig, c.table, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("selectIDs(%q, %q) = %v, want %v", c.fig, c.table, got, c.want)
			}
		}
	}
}

func TestSelectAllCoversRegistry(t *testing.T) {
	ids, err := selectIDs("all", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) < 14 {
		t.Errorf("'all' selected only %d experiments", len(ids))
	}
}
