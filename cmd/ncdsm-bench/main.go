// Command ncdsm-bench regenerates the paper's evaluation: every table
// and figure of Section V plus the ablations, printed as text tables
// with the same rows/series the paper reports.
//
// Usage:
//
//	ncdsm-bench -list
//	ncdsm-bench -fig 7                 # one figure at default scale
//	ncdsm-bench -fig all -scale 0.05   # everything, scaled down
//	ncdsm-bench -table 1
//	ncdsm-bench -fig A                 # coherency ablation
//	ncdsm-bench -fig H                 # consistency-strength cost (DESIGN §13)
//	ncdsm-bench -fig I                 # pointer chase vs bulk scan (DESIGN §14)
//	ncdsm-bench -fig I -bulk frame=4   # same, with 4-line burst frames
//	ncdsm-bench -fig all -parallel 1   # serial sweep points (old harness)
//	ncdsm-bench -fig 7 -metrics prom   # plus the merged metrics snapshot
//	ncdsm-bench -fig 7 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Scale 1.0 runs paper-sized workloads (10M-key b-trees, 500k searches)
// and can take many minutes; the default 0.05 preserves every shape in
// seconds.
//
// Sweep points within each experiment run concurrently (-parallel,
// default all cores). Every sweep point is an independent
// single-threaded simulation and results merge in submission order, so
// the output — figures and -metrics snapshots alike — is byte-identical
// at every -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/stats"

	ncdsm "repro"
)

func main() {
	var (
		fig        = flag.String("fig", "", "figure to regenerate: 6..11, eq, A..I, or 'all'")
		table      = flag.String("table", "", "table to regenerate: 1")
		scale      = flag.Float64("scale", 0.05, "workload scale (1.0 = paper-sized)")
		seed       = flag.Int64("seed", 1, "deterministic seed")
		list       = flag.Bool("list", false, "list available experiments")
		format     = flag.String("format", "table", "output format: table, csv, md, chart")
		sweep      = flag.String("sweep", "", "re-run the experiment per value: Key=v1,v2,... (see -list)")
		parallel   = flag.Int("parallel", 0, "concurrent sweep points per experiment (0 = all cores, 1 = serial)")
		metricsFmt = flag.String("metrics", "", "print the merged metrics snapshot after each experiment: prom or json")
		faultSpec  = flag.String("faults", "", "deterministic fault plan, e.g. seed=2,drop=0.01,corrupt=0.001,down=6-7@0:50us")
		bulkSpec   = flag.String("bulk", "", "bulk burst geometry override: on, or frame=16,maxframes=256")
		meshSpec   = flag.String("mesh", "", "mesh fabric dimensions WxH, e.g. 16x16 (default: calibrated 4x4)")
		shards     = flag.Int("shards", 0, "concurrent PDES shards the mesh is partitioned into (0/1 = single shard; results are byte-identical at any count)")
		window     = flag.String("window", "", "sharded lookahead schedule: uniform, distance, or elide (default elide; results are byte-identical under every mode)")
		linkLat    = flag.String("linklat", "", "per-edge mesh link latencies, e.g. x=100ns,y=140ns,edge=1.0-2.0:250ns (default: uniform hop latency)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = flag.String("memprofile", "", "write an allocation profile at exit to this file (go tool pprof)")
	)
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
			}
		}()
	}

	plan, err := ncdsm.ParseFaultPlan(*faultSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	bulk, err := ncdsm.ParseBulkSpec(*bulkSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	meshW, meshH, err := ncdsm.ParseMesh(*meshSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	windowMode, err := ncdsm.ParseWindowMode(*window)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	linkLatSpec, err := ncdsm.ParseLinkLatSpec(*linkLat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range experiments.Registry() {
			fmt.Printf("  %s\n", e.ID)
		}
		fmt.Println("sweepable parameters (-sweep Key=v1,v2,...):")
		for _, k := range experiments.SweepableParams() {
			fmt.Printf("  %s\n", k)
		}
		return
	}
	if err := checkMetricsFormat(*metricsFmt); err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}

	ids, err := selectIDs(*fig, *table)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	if len(ids) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	if *sweep == "" {
		// Plain runs go through the public ncdsm API, exercising the
		// surface a downstream user sees.
		opts := ncdsm.ExperimentOptions{
			Scale: *scale, Parallel: *parallel, Seed: *seed, Faults: plan, Bulk: bulk,
			MeshWidth: meshW, MeshHeight: meshH, Shards: *shards,
			Window: *window, LinkLat: linkLatSpec,
		}
		for _, id := range ids {
			start := time.Now()
			figure, snap, err := ncdsm.RunExperiment(id, opts)
			if err != nil {
				fmt.Fprintf(os.Stderr, "ncdsm-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
			printFigure(figure, *format, time.Since(start), *scale)
			printMetrics(snap, *metricsFmt)
		}
		return
	}

	// Sweeps vary internal calibration knobs, so they drive the internal
	// harness directly.
	base := experiments.DefaultOptions()
	base.Scale = *scale
	base.Seed = *seed
	base.Parallel = *parallel
	if !plan.Empty() {
		base.P.Faults = plan
	}
	bulk.Apply(&base.P)
	if meshW != 0 {
		base.P.MeshWidth, base.P.MeshHeight = meshW, meshH
	}
	if *shards != 0 {
		base.P.Shards = *shards
	}
	base.P.Window = windowMode
	if !linkLatSpec.Empty() {
		base.P.LinkLat = linkLatSpec
	}

	sweepKey, sweepValues, err := experiments.ParseSweep(*sweep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
		os.Exit(2)
	}
	for _, sv := range sweepValues {
		o := base
		if err := experiments.ApplyParam(&o.P, sweepKey, sv); err != nil {
			fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
			os.Exit(2)
		}
		fmt.Printf("--- %s = %s ---\n", sweepKey, sv)
		runAll(ids, o, *format, *metricsFmt)
	}
}

// runAll generates and prints each selected experiment under o.
func runAll(ids []string, o experiments.Options, format, metricsFmt string) {
	for _, id := range ids {
		gen, err := experiments.Lookup(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ncdsm-bench:", err)
			os.Exit(2)
		}
		var merged metrics.Merged
		o.Metrics = &merged
		start := time.Now()
		figure, err := gen(o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncdsm-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		printFigure(figure, format, time.Since(start), o.Scale)
		printMetrics(merged.Snapshot(), metricsFmt)
	}
}

// printFigure renders one figure in the selected format.
func printFigure(figure *stats.Figure, format string, took time.Duration, scale float64) {
	switch format {
	case "csv":
		out, err := figure.CSV()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ncdsm-bench: %s: %v\n", figure.ID, err)
			os.Exit(1)
		}
		fmt.Print(out)
		fmt.Println()
	case "md":
		fmt.Println(figure.Markdown())
	case "chart":
		fmt.Print(figure.Chart(64, 16))
		fmt.Println()
	case "table":
		fmt.Print(figure.Render())
		fmt.Printf("[generated in %.1fs at scale %g]\n\n", took.Seconds(), scale)
	default:
		fmt.Fprintf(os.Stderr, "ncdsm-bench: unknown format %q\n", format)
		os.Exit(2)
	}
}

// printMetrics renders the experiment's merged snapshot, if asked for.
func printMetrics(snap metrics.Snapshot, format string) {
	switch format {
	case "":
	case "prom":
		fmt.Print(snap.Prometheus())
		fmt.Println()
	case "json":
		fmt.Print(snap.JSON())
	}
}

func checkMetricsFormat(format string) error {
	switch format {
	case "", "prom", "json":
		return nil
	}
	return fmt.Errorf("unknown -metrics format %q (want prom or json)", format)
}

// selectIDs maps the -fig/-table flags to experiment identifiers.
func selectIDs(fig, table string) ([]string, error) {
	var ids []string
	switch {
	case fig == "all":
		for _, e := range experiments.Registry() {
			ids = append(ids, e.ID)
		}
	case fig != "":
		id := fig
		if _, err := strconv.Atoi(id); err == nil {
			// Bare figure numbers map to the paper's figure ids.
			id = "fig" + id
		}
		ids = append(ids, id)
	}
	if table != "" {
		if table != "1" && table != "table1" {
			return nil, fmt.Errorf("unknown table %q (only table 1 exists)", table)
		}
		ids = append(ids, "table1")
	}
	return ids, nil
}
