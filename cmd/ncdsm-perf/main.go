// Command ncdsm-perf is the tracked perf-regression harness. It runs
// the benchmarks the hot-path work is judged by — engine event churn, a
// full RMC remote-line round trip, the faulted Figure 7 sweep, and the
// macro layer's batched access engine (the Figure 9 search hot loop and
// the LineCached and Swap batch pricing loops) — and either writes the
// results to a baseline file (BENCH_sim.json) or checks them against a
// committed baseline.
//
//	ncdsm-perf -out BENCH_sim.json          # refresh the baseline
//	ncdsm-perf -check BENCH_sim.json        # gate: fail on regression
//	ncdsm-perf -check BENCH_sim.json -tolerance 0.3
//	ncdsm-perf -scale BENCH_scale.json      # GOMAXPROCS scaling sweep
//
// The check fails when any benchmark's ns/op regresses more than the
// tolerance (default 20%) or its allocs/op grows at all. Because ns/op
// is host-dependent, every run also times a fixed pure-CPU calibration
// loop; at check time the baseline's ns/op figures are rescaled by the
// calibration ratio, so a uniformly slower CI machine does not read as
// a regression while a genuinely slower hot path still does. Allocation
// counts need no such scaling — they are machine-independent and are
// the strictest part of the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/addr"
	"repro/internal/btree"
	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/memmodel"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/rmc"
	"repro/internal/sim"
	"repro/internal/swap"

	ncdsm "repro"
)

// faultSpec arms the Figure 7 sweep with the same deterministic plan the
// fault-injection tests use, so the harness prices the recovery path too.
const faultSpec = "seed=7,drop=0.01,corrupt=0.002,delayp=0.02,delay=300ns,down=2-6@0:50us,storm=6@20us:40us,stall=2@10us:60us"

// Result is one benchmark's measurement in BENCH_sim.json. Tolerance,
// when nonzero, overrides the global -tolerance for that entry: the
// multi-worker sharded benchmarks hand events between goroutines, so
// their wall time swings with the host scheduler far more than the
// single-threaded hot loops do, and they carry a wider ns/op band. The
// allocs/op gate is never widened — it is machine-independent and is
// the part that actually guards the zero-alloc steady-state contract.
type Result struct {
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	Tolerance    float64 `json:"tolerance,omitempty"`
}

// Baseline is the BENCH_sim.json document.
type Baseline struct {
	Note       string            `json:"note"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	var (
		out       = flag.String("out", "", "write measurements to this baseline file")
		check     = flag.String("check", "", "compare measurements against this baseline file")
		scaleOut  = flag.String("scale", "", "write a GOMAXPROCS scaling sweep of the sharded benchmark to this file")
		tolerance = flag.Float64("tolerance", 0.20, "allowed fractional ns/op regression in -check mode")
	)
	testing.Init()
	flag.Parse()
	modes := 0
	for _, m := range []string{*out, *check, *scaleOut} {
		if m != "" {
			modes++
		}
	}
	if modes != 1 {
		fmt.Fprintln(os.Stderr, "ncdsm-perf: exactly one of -out, -check, or -scale is required")
		os.Exit(2)
	}

	if *scaleOut != "" {
		doc, err := json.MarshalIndent(measureScale(), "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*scaleOut, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("ncdsm-perf: wrote %s\n", *scaleOut)
		return
	}

	cur := measure()
	if *out != "" {
		doc, err := json.MarshalIndent(cur, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(doc, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("ncdsm-perf: wrote %s\n", *out)
		return
	}

	raw, err := os.ReadFile(*check)
	if err != nil {
		fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(err)
	}
	if code := compare(base, cur, *tolerance); code != 0 {
		os.Exit(code)
	}
	fmt.Println("ncdsm-perf: PASS (within tolerance of baseline)")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncdsm-perf:", err)
	os.Exit(1)
}

// bench runs one benchmark under the given go-test benchtime ("1s",
// "100x", ...) and converts it to a Result. It keeps the fastest of
// `rounds` runs: ns/op noise is one-sided (scheduler preemption and GC
// only ever add time), so the minimum is the stablest estimator —
// essential for the sharded benchmarks, whose worker handoffs make a
// single run's wall time swing hard on loaded hosts.
func bench(benchtime string, rounds int, events func(r testing.BenchmarkResult) float64, fn func(*testing.B)) Result {
	if err := flag.Set("test.benchtime", benchtime); err != nil {
		fatal(err)
	}
	var best Result
	for i := 0; i < rounds; i++ {
		r := testing.Benchmark(fn)
		res := Result{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: float64(r.AllocsPerOp()),
		}
		if events != nil && res.NsPerOp > 0 {
			res.EventsPerSec = events(r) * 1e9 / float64(r.T.Nanoseconds())
		}
		if i == 0 || res.NsPerOp < best.NsPerOp {
			best = res
		}
	}
	return best
}

// measure runs the full suite and prints each result as it lands.
func measure() Baseline {
	doc := Baseline{
		Note:       "regenerate with `make bench`; checked in CI with `ncdsm-perf -check` (calibration-scaled ns/op, strict allocs/op)",
		Benchmarks: map[string]Result{},
	}
	run := func(name, benchtime string, rounds int, tol float64, events func(testing.BenchmarkResult) float64, fn func(*testing.B)) {
		r := bench(benchtime, rounds, events, fn)
		r.Tolerance = tol
		doc.Benchmarks[name] = r
		fmt.Printf("%-24s %12.1f ns/op %8.1f allocs/op", name, r.NsPerOp, r.AllocsPerOp)
		if r.EventsPerSec > 0 {
			fmt.Printf(" %14.0f events/sec", r.EventsPerSec)
		}
		fmt.Println()
	}

	run("calibration", "1s", 3, 0, nil, benchCalibration)
	run("engine_schedule_run", "1s", 3, 0, func(r testing.BenchmarkResult) float64 { return float64(r.N) }, benchEngineChurn)
	run("rmc_round_trip", "1s", 3, 0, nil, benchRemoteLineRead)
	run("bulk_round_trip", "500ms", 3, 0, nil, benchBulkRoundTrip)
	run("bulk_copy_4k", "500ms", 3, 0, nil, benchBulkCopy)
	run("fig7_faulted_sweep", "3x", 5, 0.35, nil, benchFig7Faulted)
	run("sharded_barrier_overhead", "200ms", 5, 0.35, nil, benchShardedBarrierOverhead)
	run("sharded_16x16_events_per_sec", "200x", 8, 0.50,
		func(testing.BenchmarkResult) float64 { return shardedEvents }, benchSharded16x16)
	run("fig9_search_hot_loop", "500ms", 3, 0, nil, benchFig9SearchHotLoop)
	run("linecached_batch_4k", "500ms", 3, 0, nil, benchLineCachedBatch)
	run("swap_batch_4k", "500ms", 3, 0, nil, benchSwapBatch)
	return doc
}

// ScalePoint is one GOMAXPROCS setting's measurement in the scaling
// sweep: the paper-scale sharded benchmark's throughput at that worker
// width, plus its speedup over the single-proc run of the same sweep.
type ScalePoint struct {
	GOMAXPROCS   int     `json:"gomaxprocs"`
	NsPerOp      float64 `json:"ns_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup_vs_1"`
}

// ScaleDoc is the BENCH_scale.json document. Unlike BENCH_sim.json it
// is not a CI gate — parallel speedup depends on the runner's core
// count and load — but it records how the sharded engine's throughput
// scales with worker width on the machine that generated it.
type ScaleDoc struct {
	Note      string       `json:"note"`
	Benchmark string       `json:"benchmark"`
	NumCPU    int          `json:"num_cpu"`
	Points    []ScalePoint `json:"points"`
}

// measureScale sweeps GOMAXPROCS over the 16x16/8-shard benchmark. The
// shard count stays fixed — the partition is part of the deterministic
// schedule — so the sweep isolates how much of the 8-way decomposition
// the host can actually run concurrently.
func measureScale() ScaleDoc {
	doc := ScaleDoc{
		Note:      "regenerate with `make scale-bench`; informational (host-dependent), not a CI gate",
		Benchmark: "sharded_16x16_events_per_sec",
		NumCPU:    runtime.NumCPU(),
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var base float64
	for _, procs := range []int{1, 2, 4, 8} {
		if procs > runtime.NumCPU() && procs != 1 {
			break // oversubscribed widths only measure scheduler thrash
		}
		runtime.GOMAXPROCS(procs)
		r := bench("200x", 8, func(testing.BenchmarkResult) float64 { return shardedEvents }, benchSharded16x16)
		pt := ScalePoint{GOMAXPROCS: procs, NsPerOp: r.NsPerOp, EventsPerSec: r.EventsPerSec}
		if procs == 1 {
			base = r.NsPerOp
		}
		if base > 0 && r.NsPerOp > 0 {
			pt.Speedup = base / r.NsPerOp
		}
		doc.Points = append(doc.Points, pt)
		fmt.Printf("GOMAXPROCS=%-2d %12.1f ns/op %14.0f events/sec %6.2fx\n",
			procs, pt.NsPerOp, pt.EventsPerSec, pt.Speedup)
	}
	return doc
}

// compare applies the gate. ns/op regressions are judged against the
// calibration-rescaled baseline; allocs/op must not grow at all.
func compare(base, cur Baseline, tolerance float64) int {
	scale := 1.0
	bc, okb := base.Benchmarks["calibration"]
	cc, okc := cur.Benchmarks["calibration"]
	if okb && okc && bc.NsPerOp > 0 {
		scale = cc.NsPerOp / bc.NsPerOp
		fmt.Printf("calibration: host is %.2fx the baseline machine's ns/op\n", scale)
	}
	code := 0
	for name, b := range base.Benchmarks {
		if name == "calibration" {
			continue
		}
		c, ok := cur.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %s: benchmark missing from current run\n", name)
			code = 1
			continue
		}
		tol := tolerance
		if b.Tolerance > tol {
			tol = b.Tolerance
		}
		allowed := b.NsPerOp * scale * (1 + tol)
		// Zero-alloc benchmarks stay strictly zero; the macro sweep gets
		// 1% + 64 slack for runtime-internal allocation jitter.
		allowedAllocs := b.AllocsPerOp * 1.01
		if b.AllocsPerOp > 0 {
			allowedAllocs += 64
		}
		switch {
		case c.AllocsPerOp > allowedAllocs:
			fmt.Printf("FAIL %s: allocs/op %.1f > allowed %.1f (baseline %.1f)\n", name, c.AllocsPerOp, allowedAllocs, b.AllocsPerOp)
			code = 1
		case c.NsPerOp > allowed:
			fmt.Printf("FAIL %s: %.1f ns/op > %.1f allowed (baseline %.1f x %.2f cal x %.0f%% tolerance)\n",
				name, c.NsPerOp, allowed, b.NsPerOp, scale, 100*(1+tol))
			code = 1
		default:
			fmt.Printf("ok   %s: %.1f ns/op (allowed %.1f), %.1f allocs/op\n", name, c.NsPerOp, allowed, c.AllocsPerOp)
		}
	}
	return code
}

// benchCalibration is a fixed pure-CPU loop (an LCG-fed sum over a small
// buffer) whose ns/op depends only on the host, never on this codebase's
// hot paths. It anchors cross-machine ns/op comparisons.
func benchCalibration(b *testing.B) {
	var buf [4096]byte
	state := uint64(0x9E3779B97F4A7C15)
	for i := range buf {
		state = state*6364136223846793005 + 1442695040888963407
		buf[i] = byte(state >> 56)
	}
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range buf {
			sink = sink*31 + uint64(v)
		}
	}
	if sink == 42 {
		b.Fatal("unreachable; keeps sink live")
	}
}

// benchEngineChurn mirrors internal/sim's BenchmarkEngineScheduleRun:
// one op = one executed event, so events/sec falls straight out.
func benchEngineChurn(b *testing.B) {
	e := sim.New()
	remaining := b.N
	var step func()
	step = func() {
		if remaining > 0 {
			remaining--
			e.After(100, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}

// benchRemoteLineRead mirrors the root BenchmarkSimRemoteLineRead: a
// full timed remote line access through the public API per op.
func benchRemoteLineRead(b *testing.B) {
	sys, err := ncdsm.New(ncdsm.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		b.Fatal(err)
	}
	ptr, err := region.GrowFrom(2, 64<<20)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := ptr + ncdsm.Pointer(uint64(i)%(64<<20-64))
		if err := region.Access(ncdsm.AccessRequest{Now: sys.Now(), Pointer: p}); err != nil {
			b.Fatal(err)
		}
		sys.Run()
	}
}

// perfPeers is the RMC lookup of the bulk benchmark rigs.
type perfPeers map[addr.NodeID]*rmc.RMC

func (p perfPeers) RMC(n addr.NodeID) (*rmc.RMC, error) {
	r, ok := p[n]
	if !ok {
		return nil, fmt.Errorf("ncdsm-perf: rig has no node %d", n)
	}
	return r, nil
}

// bulkRig builds a 1×n-mesh rig with an RMC and store on every node,
// the minimal machine a bulk burst or DMA copy needs.
func bulkRig(b *testing.B, nodes int) (*sim.Engine, perfPeers) {
	eng := sim.New()
	p := params.Default()
	topo, err := mesh.NewTopology(nodes, 1)
	if err != nil {
		b.Fatal(err)
	}
	fabric := mesh.NewFabric(eng, topo, p, nil)
	peers := perfPeers{}
	for id := addr.NodeID(1); int(id) <= nodes; id++ {
		st, err := mem.NewStore(p.MemPerNode)
		if err != nil {
			b.Fatal(err)
		}
		r, err := rmc.New(rmc.Config{
			Self: id, Engine: eng, Params: p, Fabric: fabric,
			Peers: peers, Bank: dram.NewBank(eng, id, p), Store: st,
		})
		if err != nil {
			b.Fatal(err)
		}
		peers[id] = r
	}
	return eng, peers
}

// benchBulkRoundTrip is the bulk data plane's hot path: one 64-line
// (4 KiB) scatter-gather read burst through the full RMC machinery —
// doorbell, descriptor, pipelined data frames, reassembly — per op.
// The continuation pools pin it at 0 allocs/op.
func benchBulkRoundTrip(b *testing.B) {
	eng, peers := bulkRig(b, 2)
	sink := make([]byte, 64*64)
	spans := []rmc.Span{{Start: addr.Phys(0x30000000).WithNode(2), Lines: 64}}
	req := rmc.BulkRequest{
		Kind: rmc.BulkRead, Spans: spans, Data: sink,
		Done: func(_ sim.Time, err error) {
			if err != nil {
				b.Fatal(err)
			}
		},
	}
	issue := func() {
		if err := peers[1].RequestBulk(eng.Now(), req); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
	for i := 0; i < 16; i++ {
		issue() // warm the pools
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		issue()
	}
}

// benchBulkCopy is one 4 KiB region-to-region DMA per op: node 1 rings
// node 2's doorbell, node 2 streams write frames straight to node 3.
func benchBulkCopy(b *testing.B) {
	eng, peers := bulkRig(b, 3)
	spans := []rmc.Span{{Start: addr.Phys(0x10000000).WithNode(2), Lines: 64}}
	req := rmc.BulkRequest{
		Kind: rmc.BulkCopy, Spans: spans,
		CopyDst: addr.Phys(0x20000000).WithNode(3),
		Done: func(_ sim.Time, err error) {
			if err != nil {
				b.Fatal(err)
			}
		},
	}
	issue := func() {
		if err := peers[1].RequestBulk(eng.Now(), req); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
	for i := 0; i < 16; i++ {
		issue()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		issue()
	}
}

// benchOps builds a deterministic mixed op stream (LCG-fed, ~25%
// writes) over the given byte span for the batch benchmarks.
func benchOps(n int, span uint64) []memmodel.AccessOp {
	ops := make([]memmodel.AccessOp, n)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range ops {
		state = state*6364136223846793005 + 1442695040888963407
		ops[i] = memmodel.AccessOp{Addr: state % span, Write: state>>62 == 0}
	}
	return ops
}

// benchFig9SearchHotLoop is the Figure 9 sweep's inner loop: one
// batched b-tree search per op against the remote-swap configuration at
// the paper's optimal fanout. This is the path the paper-scale run
// spends its time in; it must stay allocation-free.
func benchFig9SearchHotLoop(b *testing.B) {
	tr, err := btree.New(168)
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]uint64, 200_000)
	for i := range keys {
		keys[i] = uint64(i) * 3
	}
	if err := tr.BulkLoad(keys); err != nil {
		b.Fatal(err)
	}
	p := params.Default()
	sw, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 256)
	if err != nil {
		b.Fatal(err)
	}
	var bt memmodel.Batcher
	bt.Grow(256)
	tr.SearchBatch(0, sw, &bt) // warm
	var key uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key += 7919
		tr.SearchBatch(key%600_000, sw, &bt)
	}
}

// benchLineCachedBatch prices one 4096-op batch per op through the
// LineCached→Striped composition — the devirtualized macro fast path.
func benchLineCachedBatch(b *testing.B) {
	p := params.Default()
	st, err := memmodel.NewStriped(p, []memmodel.Stripe{
		{Start: 0, Size: 32 << 20, Acc: memmodel.Local{P: p}},
		{Start: 32 << 20, Size: 32 << 20, Acc: memmodel.Remote{P: p, Hops: 1}},
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := memmodel.NewLineCached(st, p, memmodel.DefaultCacheLines)
	if err != nil {
		b.Fatal(err)
	}
	ops := benchOps(4096, 64<<20)
	var sink params.Duration
	sink += memmodel.Batch(c, ops) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += memmodel.Batch(c, ops)
	}
	if sink == 0 {
		b.Fatal("priced nothing")
	}
}

// benchSwapBatch prices one 4096-op batch per op through Swap over its
// page cache — a mix of resident hits, faults, and dirty evictions.
func benchSwapBatch(b *testing.B) {
	p := params.Default()
	sw, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 512)
	if err != nil {
		b.Fatal(err)
	}
	ops := benchOps(4096, 1024*params.PageSize)
	var sink params.Duration
	sink += memmodel.Batch(sw, ops) // warm
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += memmodel.Batch(sw, ops)
	}
	if sink == 0 {
		b.Fatal("priced nothing")
	}
}

// benchShardedBarrierOverhead prices one lookahead-window round of a
// 4-shard set — worker release, a near-empty window, park, barrier —
// by spacing events so every one opens its own window. This is the
// fixed cost the conservative engine adds per window; it must stay
// allocation-free so idle shards never pressure the GC.
func benchShardedBarrierOverhead(b *testing.B) {
	w := params.Default().HopLatency
	set := sim.NewShardSet(4, w)
	eng := set.Engine(0)
	remaining := b.N
	var step func()
	step = func() {
		if remaining > 0 {
			remaining--
			eng.After(2*w, step) // past the window limit: next event = next window
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	eng.After(0, step)
	set.Run()
}

// shardedEvents reports the engine events the last benchSharded16x16
// timing loop executed, for the events/sec figure.
var shardedEvents float64

// benchSharded16x16 is the paper-scale fabric under the parallel
// engine: a 16x16 mesh (256 RMCs) split 8 ways, every node issuing one
// remote line read to its diametric partner per op. It tracks the
// sharded engine's end-to-end event throughput — windowed execution,
// cross-shard exchange, barrier merge — at 0 allocs/op steady state.
func benchSharded16x16(b *testing.B) {
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 16, 16
	p.Shards = 8
	set := sim.NewShardSet(p.Shards, p.HopLatency)
	c, err := cluster.New(set, p)
	if err != nil {
		b.Fatal(err)
	}
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		b.Fatal(err)
	}
	type probe struct {
		n *cluster.Node
		a addr.Phys
	}
	probes := make([]probe, 0, topo.Nodes())
	for id := 1; id <= topo.Nodes(); id++ {
		x, y := topo.Coord(addr.NodeID(id))
		partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
		probes = append(probes, probe{
			n: c.MustNode(addr.NodeID(id)),
			a: addr.Phys(0x100000 + uint64(id)*64).WithNode(partner),
		})
	}
	noop := func(sim.Time) {}
	issue := func() {
		now := set.Now()
		for _, pr := range probes {
			pr.n.Issue(now, 0, cpu.Access{Addr: pr.a}, false, noop)
		}
		set.Run()
	}
	processed := func() float64 {
		var n uint64
		for i := 0; i < set.Shards(); i++ {
			n += set.Engine(i).Processed
		}
		return float64(n)
	}
	for i := 0; i < 8; i++ {
		issue() // warm caches, pools, and the exchange slices
	}
	start := processed()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		issue()
	}
	b.StopTimer()
	shardedEvents = processed() - start
}

// benchFig7Faulted runs the full Figure 7 sweep under an armed fault
// plan — the heaviest tracked workload, covering retransmission, pooled
// frame traffic, and the parallel merge path end to end.
func benchFig7Faulted(b *testing.B) {
	plan, err := ncdsm.ParseFaultPlan(faultSpec)
	if err != nil {
		b.Fatal(err)
	}
	o := experiments.DefaultOptions()
	o.Scale = 0.02
	o.Parallel = 1 // serial sweep points: stable wall time for the gate
	o.P.Faults = plan
	gen, err := experiments.Lookup("fig7")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen(o); err != nil {
			b.Fatal(err)
		}
	}
}
