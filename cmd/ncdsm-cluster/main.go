// Command ncdsm-cluster inspects the modeled machine: it prints the
// cluster memory map a node sees (the paper's Figure 3), walks through a
// remote reservation step by step (Figure 4), and shows a region layout
// after memory has moved between nodes (Figure 1).
//
// Usage:
//
//	ncdsm-cluster -memmap 1          # node 1's view of the address space
//	ncdsm-cluster -reserve 1:3:4GB   # node 1 reserves 4 GB on node 3
//	ncdsm-cluster -regions           # demo region layout across the cluster
//	ncdsm-cluster -stats -metrics prom   # workload + full metrics snapshot
//	ncdsm-cluster -consistency all   # litmus suite + checker verdicts per protocol
//	ncdsm-cluster -consistency all -explore exhaustive:6,sample:500:1   # schedule exploration
//	ncdsm-cluster -bulk on           # bulk data plane walkthrough (gather, scatter, DMA copy)
//	ncdsm-cluster -bulk frame=4,maxframes=64 -metrics prom
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/params"
	"repro/internal/workloads"

	ncdsmfacade "repro"
)

func main() {
	var (
		memmap     = flag.Int("memmap", 0, "print the memory map seen by this node")
		reserve    = flag.String("reserve", "", "walk a reservation: requester:donor:size (e.g. 1:3:4GB)")
		regions    = flag.Bool("regions", false, "demo a Figure 1 region layout")
		stats      = flag.Bool("stats", false, "run a sample workload and dump per-component utilization")
		metricsFmt = flag.String("metrics", "", "dump the system's metrics snapshot afterwards: prom or json")
		faultSpec  = flag.String("faults", "", "deterministic fault plan, e.g. seed=2,drop=0.01,down=6-7@0:50us")
		bulkSpec   = flag.String("bulk", "", "demo the bulk data plane with this burst geometry: on, or frame=16,maxframes=256")
		consist    = flag.String("consistency", "", "run the seeded litmus suite under protocols (msi, mesi, rmc, rc, a comma list, or all) and print checker verdicts")
		explore    = flag.String("explore", "", "with -consistency: explore schedules instead of one per test, e.g. exhaustive:6,sample:500:1")
		parallel   = flag.Int("parallel", 1, "worker count for -explore (0 = all cores); output is identical at any setting")
		meshSpec   = flag.String("mesh", "", "mesh fabric dimensions WxH, e.g. 16x16 (default: calibrated 4x4)")
		shards     = flag.Int("shards", 0, "concurrent PDES shards the mesh is partitioned into (0/1 = single shard; results are byte-identical at any count)")
		window     = flag.String("window", "", "sharded lookahead schedule: uniform, distance, or elide (default elide; results are byte-identical under every mode)")
		linkLat    = flag.String("linklat", "", "per-edge mesh link latencies, e.g. x=100ns,y=140ns,edge=1.0-2.0:250ns (default: uniform hop latency)")
	)
	flag.Parse()

	cfg := ncdsmfacade.DefaultConfig()
	if w, h, err := ncdsmfacade.ParseMesh(*meshSpec); err != nil {
		fatal(err)
	} else if w != 0 {
		cfg.MeshWidth, cfg.MeshHeight = w, h
	}
	if *shards != 0 {
		cfg.Shards = *shards
	}
	if mode, err := ncdsmfacade.ParseWindowMode(*window); err != nil {
		fatal(err)
	} else {
		cfg.Window = mode
	}
	if ll, err := ncdsmfacade.ParseLinkLatSpec(*linkLat); err != nil {
		fatal(err)
	} else if !ll.Empty() {
		cfg.LinkLat = ll
	}
	plan, err := ncdsmfacade.ParseFaultPlan(*faultSpec)
	if err != nil {
		fatal(err)
	}
	if !plan.Empty() {
		cfg.Faults = plan
	}
	bulk, err := ncdsmfacade.ParseBulkSpec(*bulkSpec)
	if err != nil {
		fatal(err)
	}
	if !bulk.Empty() && cfg.Shards > 1 {
		// Fail loudly instead of letting the bulk demo die mid-walkthrough:
		// the bulk data plane only runs on the single-shard engine.
		fatal(&ncdsmfacade.ShardGateError{Feature: "the bulk data plane", Shards: cfg.Shards})
	}
	bulk.Apply(&cfg)
	sys, err := ncdsmfacade.New(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println(ncdsmfacade.Describe(sys.Config()))
	if !plan.Empty() {
		fmt.Printf("fault plan: %s\n", plan)
	}
	fmt.Println()

	did := false
	if *memmap > 0 {
		did = true
		if err := sys.MemoryMap(ncdsmfacade.NodeID(*memmap), os.Stdout); err != nil {
			fatal(err)
		}
	}
	if *reserve != "" {
		did = true
		if err := walkReservation(sys, *reserve); err != nil {
			fatal(err)
		}
	}
	if *regions {
		did = true
		if err := demoRegions(sys); err != nil {
			fatal(err)
		}
	}
	if *stats {
		did = true
		if err := dumpStats(sys); err != nil {
			fatal(err)
		}
	}
	if *consist != "" {
		did = true
		if *explore != "" {
			spec, err := parseExplore(*explore, *parallel)
			if err != nil {
				fatal(err)
			}
			if err := runExplore(sys.Config(), *consist, spec); err != nil {
				fatal(err)
			}
		} else if err := runLitmus(sys.Config(), *consist); err != nil {
			fatal(err)
		}
	} else if *explore != "" {
		fatal(fmt.Errorf("-explore needs -consistency to select protocols"))
	}
	if *bulkSpec != "" {
		did = true
		if err := demoBulk(sys); err != nil {
			fatal(err)
		}
	}
	if *metricsFmt != "" {
		did = true
		snap := sys.Metrics()
		switch *metricsFmt {
		case "prom":
			fmt.Print(snap.Prometheus())
		case "json":
			fmt.Print(snap.JSON())
		default:
			fatal(fmt.Errorf("unknown -metrics format %q (want prom or json)", *metricsFmt))
		}
	}
	if !did {
		flag.Usage()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncdsm-cluster:", err)
	os.Exit(1)
}

// walkReservation narrates the Figure 4 protocol.
func walkReservation(sys *ncdsmfacade.System, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 3 {
		return fmt.Errorf("reserve spec %q, want requester:donor:size", spec)
	}
	req, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	donor, err := strconv.Atoi(parts[1])
	if err != nil {
		return err
	}
	size, err := parseSize(parts[2])
	if err != nil {
		return err
	}

	region, err := sys.Region(ncdsmfacade.NodeID(req))
	if err != nil {
		return err
	}
	fmt.Printf("1. node %d is running out of local memory and asks node %d for %s\n",
		req, donor, parts[2])
	core := sys.Core()
	agent, err := core.Agent(ncdsmfacade.NodeID(req))
	if err != nil {
		return err
	}
	rng, err := agent.ReserveRemoteFrom(addr.NodeID(donor), size)
	if err != nil {
		return err
	}
	fmt.Printf("2. node %d reserves and pins local range [%v, %v) in its pooled zone\n",
		donor, rng.Start.Local(), rng.Start.Local()+addr.Phys(rng.Size))
	fmt.Printf("3. the acknowledgment carries the range prefixed with node %d's identifier: %v\n",
		donor, rng)
	r, err := core.Region(addr.NodeID(req))
	if err != nil {
		return err
	}
	base, err := r.MapBorrowed(rng)
	if err != nil {
		return err
	}
	pa, err := r.Translate(base)
	if err != nil {
		return err
	}
	fmt.Printf("4. node %d writes the translation into its page table: virtual %#x -> physical %v\n",
		req, uint64(base), pa)
	fmt.Printf("5. loads and stores at %#x now reach node %d's memory in hardware (no software on the path)\n",
		uint64(base), donor)
	fmt.Printf("   node %d effective memory: %d GB\n", req, region.EffectiveMemory()>>30)
	return nil
}

// demoRegions reproduces the Figure 1 layout: region 3 extended into its
// neighbors, region 5 into node D.
func demoRegions(sys *ncdsmfacade.System) error {
	core := sys.Core()
	grow := func(req, donor addr.NodeID, gb uint64) error {
		a, err := core.Agent(req)
		if err != nil {
			return err
		}
		_, err = a.ReserveRemoteFrom(donor, gb<<30)
		return err
	}
	// Region 3 (node 3) borrows from its neighbors 2 and 4; region 5
	// (node 5) borrows from node 4.
	for _, g := range []struct {
		req, donor addr.NodeID
		gb         uint64
	}{{3, 2, 4}, {3, 4, 4}, {5, 4, 2}} {
		if err := grow(g.req, g.donor, g.gb); err != nil {
			return err
		}
	}
	fmt.Println("region layout (paper Figure 1):")
	for n := addr.NodeID(1); int(n) <= sys.Nodes(); n++ {
		a, err := core.Agent(n)
		if err != nil {
			return err
		}
		if a.BorrowedBytes() == 0 && a.GrantedBytes() == 0 {
			continue
		}
		fmt.Printf("  region %2d: private %2d GB", n, sys.Config().PrivateMemPerNode>>30)
		if b := a.BorrowedBytes(); b > 0 {
			fmt.Printf(" + %d GB borrowed from", b>>30)
			for _, r := range a.Borrowed() {
				fmt.Printf(" node %d (%d GB)", r.Node(), r.Size>>30)
			}
		}
		if g := a.GrantedBytes(); g > 0 {
			fmt.Printf(" — lends out %d GB", g>>30)
		}
		fmt.Printf("; effective %d GB\n", a.EffectiveMemory()>>30)
	}
	fmt.Printf("cluster pool free: %d GB of %d GB\n",
		sys.PoolFree()>>30, params.Default().PoolSize()>>30)
	return nil
}

// parseProtocols turns the -consistency flag value into a protocol
// list: "all" (or "") selects every registered protocol, otherwise a
// comma-separated subset of them.
func parseProtocols(spec string) ([]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return nil, nil // RunSuite's "everything" sentinel
	}
	known := make(map[string]bool)
	for _, n := range ncdsmfacade.ConsistencyProtocols() {
		known[n] = true
	}
	var out []string
	for _, part := range strings.Split(spec, ",") {
		name := strings.TrimSpace(part)
		if !known[name] {
			return nil, fmt.Errorf("unknown protocol %q (want a comma list of %v, or all)",
				name, ncdsmfacade.ConsistencyProtocols())
		}
		out = append(out, name)
	}
	return out, nil
}

// runLitmus prints the consistency lab's litmus verdict table and fails
// if any protocol deviates from its expected verdict — printing each
// deviating outcome's schedule and history, the replayable trace an
// operator needs to reproduce the deviation.
func runLitmus(cfg ncdsmfacade.Config, spec string) error {
	protos, err := parseProtocols(spec)
	if err != nil {
		return err
	}
	report, err := ncdsmfacade.LitmusReport(cfg, protos...)
	if err != nil {
		return err
	}
	fmt.Println("litmus suite (SC = sequentially consistent history, perloc = per-location linearizable):")
	fmt.Print(report)
	results, err := ncdsmfacade.Litmus(cfg, protos...)
	if err != nil {
		return err
	}
	mismatches := 0
	for _, r := range results {
		if !r.Match {
			mismatches++
			fmt.Printf("\n%s/%s deviates from its expected verdict; offending %s",
				r.Test, r.Protocol, ncdsmfacade.LitmusTrace(r))
		}
	}
	if mismatches > 0 {
		return fmt.Errorf("%d of %d litmus outcomes deviate from their protocol's expected verdict", mismatches, len(results))
	}
	fmt.Printf("%d outcomes, all matching their protocol's expected verdict\n", len(results))
	return nil
}

// parseExplore turns the -explore flag value into an ExploreSpec. The
// grammar is comma-combinable parts over the defaults:
//
//	exhaustive:N     enumerate every interleaving of programs with at
//	                 most N instructions (sleep-set reduced)
//	sample:N[:SEED]  draw N seeded schedules for longer programs
func parseExplore(spec string, parallel int) (ncdsmfacade.ExploreSpec, error) {
	s := ncdsmfacade.DefaultExploreSpec()
	s.Parallel = parallel
	if s.Parallel == 0 {
		s.Parallel = runtime.GOMAXPROCS(0)
	}
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		bad := func() error {
			return fmt.Errorf("explore spec part %q (want exhaustive:N or sample:N[:SEED])", part)
		}
		switch {
		case fields[0] == "exhaustive" && len(fields) == 2:
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return s, bad()
			}
			s.MaxDepth = n
		case fields[0] == "sample" && (len(fields) == 2 || len(fields) == 3):
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 1 {
				return s, bad()
			}
			s.Samples = n
			if len(fields) == 3 {
				seed, err := strconv.ParseInt(fields[2], 10, 64)
				if err != nil {
					return s, bad()
				}
				s.Seed = seed
			}
		default:
			return s, bad()
		}
	}
	return s, nil
}

// runExplore prints the schedule-exploration verdict table and fails if
// any exploration found problems that indict a protocol implementation.
func runExplore(cfg ncdsmfacade.Config, protoSpec string, spec ncdsmfacade.ExploreSpec) error {
	protos, err := parseProtocols(protoSpec)
	if err != nil {
		return err
	}
	// The banner names the budget but not the worker count: the entire
	// output is part of the determinism contract — byte-identical at any
	// -parallel setting — and CI enforces it with a plain cmp.
	fmt.Printf("schedule exploration (%s):\n", spec)
	report, problems, err := ncdsmfacade.ExploreReport(cfg, spec, protos...)
	if err != nil {
		return err
	}
	fmt.Print(report)
	if problems > 0 {
		return fmt.Errorf("exploration found %d problems indicting a protocol implementation", problems)
	}
	fmt.Println("no explored schedule indicts a protocol implementation")
	return nil
}

// demoBulk walks the bulk data plane end to end: a scatter-gather read
// against dependent scalar loads, a bulk scatter write, and a
// server-to-server DMA copy whose payload never transits the client.
func demoBulk(sys *ncdsmfacade.System) error {
	p := sys.Config()
	fmt.Printf("bulk data plane: %d-line data frames, up to %d frames per burst (%d KiB per burst)\n\n",
		p.BurstFrameLines(), p.BurstMaxFrames(), p.BurstMaxLines()*int(params.CacheLineSize)>>10)

	region, err := sys.Region(1)
	if err != nil {
		return err
	}
	src, err := region.GrowFrom(2, 1<<20)
	if err != nil {
		return err
	}
	dst, err := region.GrowFrom(3, 1<<20)
	if err != nil {
		return err
	}
	const size = 4096
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	if err := region.Write(src, payload); err != nil {
		return err
	}

	// Act 1: 64 dependent scalar loads — each waits for the previous
	// round trip, the pointer-chase shape.
	var scalarDone ncdsmfacade.Time
	var chase func(i int, now ncdsmfacade.Time) error
	chase = func(i int, now ncdsmfacade.Time) error {
		if i == size/int(params.CacheLineSize) {
			scalarDone = now
			return nil
		}
		return region.Access(ncdsmfacade.AccessRequest{
			Now: now, Pointer: src + ncdsmfacade.Pointer(i)*params.CacheLineSize,
			Done: func(t ncdsmfacade.Time) {
				if err := chase(i+1, t); err != nil {
					fatal(err)
				}
			},
		})
	}
	if err := chase(0, sys.Now()); err != nil {
		return err
	}
	sys.Run()
	fmt.Printf("1. 64 dependent scalar loads of 4 KiB on node 2:   %8.2f µs (64 round trips)\n",
		float64(scalarDone)/float64(params.Microsecond))

	// Act 2: the same 4 KiB as one scatter-gather burst.
	start := sys.Now()
	var bulkDone ncdsmfacade.Time
	sink := make([]byte, size)
	err = region.ReadBulk(src, []ncdsmfacade.Span{{Offset: 0, Bytes: size}}, sink,
		func(t ncdsmfacade.Time, err2 error) {
			if err2 != nil {
				fatal(err2)
			}
			bulkDone = t
		})
	if err != nil {
		return err
	}
	sys.Run()
	gather := bulkDone - start
	fmt.Printf("2. one ReadBulk burst of the same 4 KiB:           %8.2f µs (%.1fx cheaper: one doorbell, one descriptor, one ack)\n",
		float64(gather)/float64(params.Microsecond), float64(scalarDone)/float64(gather))

	// Act 3: server-to-server copy — node 2 streams straight to node 3.
	start = sys.Now()
	var copyDone ncdsmfacade.Time
	if err := region.Copy(dst, src, size, func(t ncdsmfacade.Time, err2 error) {
		if err2 != nil {
			fatal(err2)
		}
		copyDone = t
	}); err != nil {
		return err
	}
	sys.Run()
	got := make([]byte, size)
	if err := region.Read(dst, got); err != nil {
		return err
	}
	for i := range got {
		if got[i] != payload[i] {
			return fmt.Errorf("bulk copy corrupted byte %d", i)
		}
	}
	fmt.Printf("3. Copy node 2 -> node 3 of the 4 KiB:             %8.2f µs (payload moved donor-to-donor, never transiting node 1)\n",
		float64(copyDone-start)/float64(params.Microsecond))
	return nil
}

// parseSize parses human sizes like 512MB, 4GB, 8192 (bytes).
func parseSize(s string) (uint64, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	mult := uint64(1)
	switch {
	case strings.HasSuffix(u, "GB"):
		mult, u = 1<<30, strings.TrimSuffix(u, "GB")
	case strings.HasSuffix(u, "MB"):
		mult, u = 1<<20, strings.TrimSuffix(u, "MB")
	case strings.HasSuffix(u, "KB"):
		mult, u = 1<<10, strings.TrimSuffix(u, "KB")
	}
	n, err := strconv.ParseUint(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

// dumpStats drives a representative load (4 threads on node 6 against
// servers at 1 hop, one background client) and prints where the time
// went: RMC utilizations, retry counts, link loads, cache and memory
// counters — the observability view an operator of the real prototype
// would want.
func dumpStats(sys *ncdsmfacade.System) error {
	core := sys.Core()
	cl := core.Cluster()
	p := sys.Config()

	launch := func(client addr.NodeID, threads, accesses int, seed int64) error {
		region, err := core.Region(client)
		if err != nil {
			return err
		}
		rng, err := region.GrowFrom(7, 64<<20) // node 7 serves everyone
		if err != nil {
			return err
		}
		node, err := cl.Node(client)
		if err != nil {
			return err
		}
		for t := 0; t < threads; t++ {
			stream, err := workloads.RandomStream(seed+int64(t), []addr.Range{rng}, accesses, 0.1)
			if err != nil {
				return err
			}
			th, err := cpu.NewThread(cpu.ThreadConfig{
				Name: fmt.Sprintf("n%d/t%d", client, t), Engine: node.Engine(), Memory: node,
				Stream: stream, Core: t, WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
			})
			if err != nil {
				return err
			}
			th.Start(0)
		}
		return nil
	}
	if err := launch(6, 4, 20000, 1); err != nil {
		return err
	}
	if err := launch(8, 2, 10000, 100); err != nil {
		return err
	}
	end := core.Run()

	fmt.Printf("sample workload: 4 threads on node 6 + 2 on node 8, all against node 7; %.2f ms simulated\n\n",
		float64(end)/float64(params.Millisecond))
	fmt.Printf("%-28s %10s\n", "component", "value")
	for _, id := range []addr.NodeID{6, 7, 8} {
		n, err := cl.Node(id)
		if err != nil {
			return err
		}
		r := n.RMC()
		fmt.Printf("node %-2d RMC client util      %9.1f%%   (forwarded %d, NACK retries %d)\n",
			id, 100*r.ClientUtilization(end), r.Forwarded, r.Retries)
		fmt.Printf("node %-2d RMC server util      %9.1f%%   (served %d, aborted %d)\n",
			id, 100*r.ServerUtilization(end), r.ServedHere, r.Aborted)
		reads, writes := n.Bank().Stats()
		fmt.Printf("node %-2d caches               %9.1f%%   hit rate; DRAM %d reads / %d writes\n",
			id, 100*n.Caches().HitRate(), reads, writes)
	}
	meshFab, err := cl.MeshFabric()
	if err != nil {
		return err
	}
	topo := cl.Topology()
	fmt.Println()
	for _, pair := range [][2]addr.NodeID{{6, 7}, {7, 6}, {8, 7}, {7, 8}} {
		if topo.Hops(pair[0], pair[1]) != 1 {
			continue
		}
		u, err := meshFab.LinkUtilization(pair[0], pair[1], end)
		if err != nil {
			return err
		}
		fmt.Printf("mesh link %d->%d               %9.1f%%\n", pair[0], pair[1], 100*u)
	}
	return nil
}
