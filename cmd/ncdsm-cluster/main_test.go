package main

import (
	"reflect"
	"runtime"
	"strings"
	"testing"

	ncdsmfacade "repro"
)

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{
		"4GB":   4 << 30,
		"512MB": 512 << 20,
		"64KB":  64 << 10,
		"8192":  8192,
		" 2gb ": 2 << 30,
		"1 MB":  1 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "GB", "-4GB", "4TBx"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestParseProtocols(t *testing.T) {
	for _, all := range []string{"all", "", "  all "} {
		got, err := parseProtocols(all)
		if err != nil || got != nil {
			t.Errorf("parseProtocols(%q) = %v, %v; want the nil everything-sentinel", all, got, err)
		}
	}
	got, err := parseProtocols("msi, rc")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"msi", "rc"}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseProtocols = %v, want %v", got, want)
	}
	if got, err := parseProtocols("mesi"); err != nil || !reflect.DeepEqual(got, []string{"mesi"}) {
		t.Errorf("parseProtocols(mesi) = %v, %v; want the MESI comparator", got, err)
	}
	for _, bad := range []string{"moesi", "msi,tso", ","} {
		if _, err := parseProtocols(bad); err == nil {
			t.Errorf("parseProtocols(%q) accepted", bad)
		}
	}
}

// TestParseExplore covers the -explore grammar: part combinations over
// the defaults, and every malformed shape rejected.
func TestParseExplore(t *testing.T) {
	def := ncdsmfacade.DefaultExploreSpec()
	cases := map[string]ncdsmfacade.ExploreSpec{
		"exhaustive:8":               {MaxDepth: 8, Samples: def.Samples, Seed: def.Seed, Parallel: 1},
		"sample:100":                 {MaxDepth: def.MaxDepth, Samples: 100, Seed: def.Seed, Parallel: 1},
		"sample:100:42":              {MaxDepth: def.MaxDepth, Samples: 100, Seed: 42, Parallel: 1},
		"exhaustive:6,sample:500:1":  {MaxDepth: 6, Samples: 500, Seed: 1, Parallel: 1},
		" exhaustive:4 , sample:9:3": {MaxDepth: 4, Samples: 9, Seed: 3, Parallel: 1},
	}
	for in, want := range cases {
		got, err := parseExplore(in, 1)
		if err != nil {
			t.Errorf("parseExplore(%q): %v", in, err)
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("parseExplore(%q) = %+v, want %+v", in, got, want)
		}
	}
	// parallel 0 means all cores.
	got, err := parseExplore("exhaustive:6", 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Parallel != runtime.GOMAXPROCS(0) {
		t.Errorf("parallel 0 resolved to %d workers, want GOMAXPROCS", got.Parallel)
	}
	for _, bad := range []string{"", "exhaustive", "exhaustive:x", "exhaustive:-1", "sample:0",
		"sample:10:z", "depth:4", "exhaustive:6:9", "sample:1:2:3"} {
		if _, err := parseExplore(bad, 1); err == nil {
			t.Errorf("parseExplore(%q) accepted", bad)
		}
	}
}

// TestRunExplore drives the exploration CLI path end to end: the clean
// protocols must explore problem-free at a small budget, and unknown
// protocols must be rejected before any work runs.
func TestRunExplore(t *testing.T) {
	cfg := ncdsmfacade.DefaultConfig()
	spec, err := parseExplore("exhaustive:6,sample:50:1", 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := runExplore(cfg, "all", spec); err != nil {
		t.Errorf("runExplore(all): %v", err)
	}
	if err := runExplore(cfg, "msi,mesi", spec); err != nil {
		t.Errorf("runExplore(msi,mesi): %v", err)
	}
	if err := runExplore(cfg, "nope", spec); err == nil {
		t.Error("runExplore accepted an unknown protocol")
	}
}

// TestLitmusTraceRendering pins the replayable trace runLitmus prints
// for a deviating outcome: the schedule and every history event must be
// present, because that pair is what reproduces the deviation.
func TestLitmusTraceRendering(t *testing.T) {
	results, err := ncdsmfacade.Litmus(ncdsmfacade.DefaultConfig(), "rmc")
	if err != nil {
		t.Fatal(err)
	}
	var sb *ncdsmfacade.LitmusOutcome
	for i := range results {
		if results[i].Test == "sb" {
			sb = &results[i]
		}
	}
	if sb == nil {
		t.Fatal("sb outcome missing from the suite")
	}
	tr := ncdsmfacade.LitmusTrace(*sb)
	for _, want := range []string{"schedule 0,1,0,1", "SC=FAIL", "n0: W x0 = 1", "step 3"} {
		if !strings.Contains(tr, want) {
			t.Errorf("litmus trace missing %q:\n%s", want, tr)
		}
	}
}

// TestRunLitmus drives the CLI path end to end: the suite must run and
// every outcome must match its protocol's expectation, both for the
// full set and a subset.
func TestRunLitmus(t *testing.T) {
	cfg := ncdsmfacade.DefaultConfig()
	if err := runLitmus(cfg, "all"); err != nil {
		t.Errorf("runLitmus(all): %v", err)
	}
	if err := runLitmus(cfg, "msi"); err != nil {
		t.Errorf("runLitmus(msi): %v", err)
	}
	if err := runLitmus(cfg, "nope"); err == nil {
		t.Error("runLitmus accepted an unknown protocol")
	}
}
