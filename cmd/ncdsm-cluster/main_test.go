package main

import (
	"reflect"
	"testing"

	ncdsmfacade "repro"
)

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{
		"4GB":   4 << 30,
		"512MB": 512 << 20,
		"64KB":  64 << 10,
		"8192":  8192,
		" 2gb ": 2 << 30,
		"1 MB":  1 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "GB", "-4GB", "4TBx"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}

func TestParseProtocols(t *testing.T) {
	for _, all := range []string{"all", "", "  all "} {
		got, err := parseProtocols(all)
		if err != nil || got != nil {
			t.Errorf("parseProtocols(%q) = %v, %v; want the nil everything-sentinel", all, got, err)
		}
	}
	got, err := parseProtocols("msi, rc")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"msi", "rc"}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseProtocols = %v, want %v", got, want)
	}
	for _, bad := range []string{"mesi", "msi,tso", ","} {
		if _, err := parseProtocols(bad); err == nil {
			t.Errorf("parseProtocols(%q) accepted", bad)
		}
	}
}

// TestRunLitmus drives the CLI path end to end: the suite must run and
// every outcome must match its protocol's expectation, both for the
// full set and a subset.
func TestRunLitmus(t *testing.T) {
	cfg := ncdsmfacade.DefaultConfig()
	if err := runLitmus(cfg, "all"); err != nil {
		t.Errorf("runLitmus(all): %v", err)
	}
	if err := runLitmus(cfg, "msi"); err != nil {
		t.Errorf("runLitmus(msi): %v", err)
	}
	if err := runLitmus(cfg, "nope"); err == nil {
		t.Error("runLitmus accepted an unknown protocol")
	}
}
