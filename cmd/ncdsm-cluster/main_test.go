package main

import "testing"

func TestParseSize(t *testing.T) {
	cases := map[string]uint64{
		"4GB":   4 << 30,
		"512MB": 512 << 20,
		"64KB":  64 << 10,
		"8192":  8192,
		" 2gb ": 2 << 30,
		"1 MB":  1 << 20,
	}
	for in, want := range cases {
		got, err := parseSize(in)
		if err != nil {
			t.Errorf("parseSize(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseSize(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "GB", "-4GB", "4TBx"} {
		if _, err := parseSize(bad); err == nil {
			t.Errorf("parseSize(%q) accepted", bad)
		}
	}
}
