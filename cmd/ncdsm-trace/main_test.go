package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRecordReplayInfoRoundTrip(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "t.trace")

	if err := doRecord("random", out, 5000, 1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil || st.Size() == 0 {
		t.Fatalf("trace not written: %v", err)
	}
	for _, cfg := range []string{"local", "remote", "remote-swap", "disk-swap", "all"} {
		if err := doReplay(out, cfg, 1, 0); err != nil {
			t.Errorf("replay %s: %v", cfg, err)
		}
	}
	if err := doInfo(out); err != nil {
		t.Errorf("info: %v", err)
	}
}

func TestRecordKernels(t *testing.T) {
	dir := t.TempDir()
	for _, k := range []string{"blackscholes", "streamcluster"} {
		out := filepath.Join(dir, k+".trace")
		if err := doRecord(k, out, 0, 1); err != nil {
			t.Fatalf("record %s: %v", k, err)
		}
		if err := doReplay(out, "local", 1, 0); err != nil {
			t.Fatalf("replay %s: %v", k, err)
		}
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	if err := doRecord("nope", filepath.Join(dir, "x"), 10, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if err := doReplay(filepath.Join(dir, "missing.trace"), "local", 1, 0); err == nil {
		t.Error("missing trace replayed")
	}
	out := filepath.Join(dir, "ok.trace")
	if err := doRecord("random", out, 10, 1); err != nil {
		t.Fatal(err)
	}
	if err := doReplay(out, "warp-drive", 1, 0); err == nil {
		t.Error("unknown config accepted")
	}
	if err := doInfo(filepath.Join(dir, "missing.trace")); err == nil {
		t.Error("info on missing trace succeeded")
	}
	// Empty (header-only) trace.
	empty := filepath.Join(dir, "empty.trace")
	if err := doRecord("random", empty, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := doInfo(empty); err == nil {
		t.Error("info on empty trace succeeded")
	}
	if err := doReplay(empty, "local", 1, 0); err == nil {
		t.Error("replay of empty trace succeeded")
	}
}
