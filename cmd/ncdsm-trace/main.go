// Command ncdsm-trace records memory-access traces from the built-in
// workload generators and replays them against any memory configuration
// — the reproducibility loop: capture one exact access sequence, then
// price the *same* sequence under local memory, the prototype's remote
// memory, or remote swap.
//
// Usage:
//
//	ncdsm-trace -record random -accesses 100000 -out run.trace
//	ncdsm-trace -record canneal -out canneal.trace
//	ncdsm-trace -replay run.trace -config remote -hops 2
//	ncdsm-trace -replay run.trace -config all
//	ncdsm-trace -info run.trace
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func main() {
	var (
		record   = flag.String("record", "", "workload to record: random, blackscholes, raytrace, canneal, streamcluster")
		accesses = flag.Int("accesses", 100000, "accesses to record (random workload)")
		out      = flag.String("out", "", "output trace file (record mode)")
		replay   = flag.String("replay", "", "trace file to replay")
		config   = flag.String("config", "all", "replay configuration: local, remote, remote-swap, disk-swap, all")
		hops     = flag.Int("hops", 1, "hop distance for remote configurations")
		resident = flag.Int("resident", 0, "resident pages for swap configurations (0 = default)")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		info     = flag.String("info", "", "print a trace file's summary")
	)
	flag.Parse()

	switch {
	case *record != "":
		if *out == "" {
			fatal(errors.New("-record needs -out"))
		}
		if err := doRecord(*record, *out, *accesses, *seed); err != nil {
			fatal(err)
		}
	case *replay != "":
		if err := doReplay(*replay, *config, *hops, *resident); err != nil {
			fatal(err)
		}
	case *info != "":
		if err := doInfo(*info); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ncdsm-trace:", err)
	os.Exit(1)
}

// doRecord captures a workload's access stream into a trace file.
func doRecord(workload, out string, accesses int, seed int64) error {
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := trace.NewWriter(f)
	if err != nil {
		return err
	}

	p := params.Default()
	emit := func(a uint64, write bool) error {
		return w.Add(trace.Record{Addr: a, Write: write})
	}
	switch workload {
	case "random":
		// Uniform random word accesses over a 64 MB buffer, 20% writes —
		// the microbenchmark's pattern in macro-layer address space.
		rng := newRand(seed)
		for i := 0; i < accesses; i++ {
			a := uint64(rng.Int63n(64<<20/8)) * 8
			if err := emit(a, rng.Float64() < 0.2); err != nil {
				return err
			}
		}
	case "blackscholes", "raytrace", "canneal", "streamcluster":
		var k workloads.Kernel
		for _, cand := range workloads.ParsecSuite(p) {
			if cand.Name == workload {
				k = cand
			}
		}
		rec := &recordingAccessor{w: w}
		k.Run(rec, seed)
		if rec.err != nil {
			return rec.err
		}
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses to %s\n", w.Count(), out)
	return nil
}

// recordingAccessor captures a kernel's stream without pricing it.
type recordingAccessor struct {
	w   *trace.Writer
	err error
}

func (r *recordingAccessor) Access(a uint64, write bool) params.Duration {
	if r.err == nil {
		r.err = r.w.Add(trace.Record{Addr: a, Write: write})
	}
	return 0
}

func (r *recordingAccessor) Name() string { return "recorder" }

// doReplay prices a trace under the requested configuration(s).
func doReplay(path, config string, hops, resident int) error {
	p := params.Default()
	if resident <= 0 {
		resident = p.SwapResidentPages
	}
	configs := map[string]memmodel.Config{
		"local":       memmodel.ConfigLocal,
		"remote":      memmodel.ConfigRemote,
		"remote-swap": memmodel.ConfigRemoteSwap,
		"disk-swap":   memmodel.ConfigDiskSwap,
	}
	var names []string
	if config == "all" {
		names = []string{"local", "remote", "remote-swap"}
	} else {
		if _, ok := configs[config]; !ok {
			return fmt.Errorf("unknown config %q", config)
		}
		names = []string{config}
	}
	fmt.Printf("%-14s %14s %14s %14s\n", "configuration", "accesses", "mem time (ms)", "ns/access")
	for _, name := range names {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		r, err := trace.NewReader(f)
		if err != nil {
			f.Close()
			return err
		}
		acc, err := memmodel.Build(configs[name], p, hops, resident)
		if err != nil {
			f.Close()
			return err
		}
		total, n, err := r.Replay(acc)
		f.Close()
		if err != nil {
			return err
		}
		if n == 0 {
			return errors.New("empty trace")
		}
		fmt.Printf("%-14s %14d %14.2f %14.1f\n", name, n,
			float64(total)/float64(params.Millisecond),
			float64(total)/float64(n)/float64(params.Nanosecond))
	}
	return nil
}

// doInfo summarizes a trace.
func doInfo(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}
	var n, writes uint64
	var minA, maxA uint64
	pages := map[uint64]bool{}
	for {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if n == 0 {
			minA, maxA = rec.Addr, rec.Addr
		}
		if rec.Addr < minA {
			minA = rec.Addr
		}
		if rec.Addr > maxA {
			maxA = rec.Addr
		}
		if rec.Write {
			writes++
		}
		pages[rec.Addr/params.PageSize] = true
		n++
	}
	if n == 0 {
		return errors.New("empty trace")
	}
	fmt.Printf("accesses:   %d (%.1f%% writes)\n", n, 100*float64(writes)/float64(n))
	fmt.Printf("span:       [%#x, %#x]\n", minA, maxA)
	fmt.Printf("pages:      %d distinct (%.1f MB touched)\n", len(pages),
		float64(len(pages))*params.PageSize/float64(1<<20))
	fmt.Printf("locality:   %.1f accesses per touched page\n", float64(n)/float64(len(pages)))
	return nil
}

// newRand isolates the single math/rand use so the rest of the file
// stays source-of-randomness agnostic.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
