package ncdsm

import (
	"bytes"
	"strings"
	"testing"
)

// growMapped borrows size bytes from donor and returns the mapped base.
func growMapped(t *testing.T, r *Region, donor NodeID, size uint64) Pointer {
	t.Helper()
	p, err := r.GrowFrom(donor, size)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBulkScalarOracle is the redesign's contract: the same 4 KiB line
// set moved as 64 single-line accesses and as one ReadBulk burst must
// observe identical memory state, and the burst must cost
// deterministically less simulated time.
func TestBulkScalarOracle(t *testing.T) {
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i*11 + 7)
	}

	// Scalar: 64 dependent single-line timed accesses (reads; the data
	// was placed functionally, as the timed path requires).
	scalarSys := newSys(t)
	scalarRegion, err := scalarSys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	sp := growMapped(t, scalarRegion, 2, 1<<20)
	if err := scalarRegion.Write(sp, want); err != nil {
		t.Fatal(err)
	}
	var scalarDone Time
	var chain func(i int, now Time)
	chain = func(i int, now Time) {
		if i == 64 {
			scalarDone = now
			return
		}
		if err := scalarRegion.Access(AccessRequest{Now: now, Pointer: sp + Pointer(i*64), Done: func(ts Time) {
			chain(i+1, ts)
		}}); err != nil {
			t.Fatal(err)
		}
	}
	chain(0, 0)
	scalarSys.Run()
	scalarGot := make([]byte, 4096)
	if err := scalarRegion.Read(sp, scalarGot); err != nil {
		t.Fatal(err)
	}

	// Bulk: the same 64 lines as one scatter-gather burst.
	bulkSys := newSys(t)
	bulkRegion, err := bulkSys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	bp := growMapped(t, bulkRegion, 2, 1<<20)
	if err := bulkRegion.Write(bp, want); err != nil {
		t.Fatal(err)
	}
	sink := make([]byte, 4096)
	var bulkDone Time
	if err := bulkRegion.ReadBulk(bp, []Span{{Offset: 0, Bytes: 4096}}, sink, func(ts Time, err error) {
		if err != nil {
			t.Fatal(err)
		}
		bulkDone = ts
	}); err != nil {
		t.Fatal(err)
	}
	bulkSys.Run()

	if !bytes.Equal(sink, want) || !bytes.Equal(scalarGot, want) {
		t.Fatal("scalar and bulk observed different memory state")
	}
	if bulkDone == 0 || scalarDone == 0 {
		t.Fatalf("runs did not complete (scalar %d, bulk %d)", scalarDone, bulkDone)
	}
	if bulkDone*4 >= scalarDone {
		t.Errorf("4 KiB ReadBulk took %d ps vs %d ps for 64 Access calls; want at least 4x cheaper", bulkDone, scalarDone)
	}
	t.Logf("scalar %d ps, bulk %d ps (%.1fx)", scalarDone, bulkDone, float64(scalarDone)/float64(bulkDone))
}

func TestWriteBulkRoundTrip(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	p := growMapped(t, region, 3, 1<<20)
	// Two discontiguous spans — the columnar shape.
	payload := make([]byte, 3*4096)
	for i := range payload {
		payload[i] = byte(i ^ 0x6d)
	}
	spans := []Span{
		{Offset: 0, Bytes: 4096},
		{Offset: 16384, Bytes: 2 * 4096},
	}
	completed := false
	if err := region.WriteBulk(p, spans, payload, func(_ Time, err error) {
		if err != nil {
			t.Fatal(err)
		}
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !completed {
		t.Fatal("bulk write never completed")
	}
	got := make([]byte, 4096)
	if err := region.Read(p, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload[:4096]) {
		t.Error("span 0 bytes wrong")
	}
	got2 := make([]byte, 2*4096)
	if err := region.Read(p+16384, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, payload[4096:]) {
		t.Error("span 1 bytes wrong")
	}
	// The payload buffer came back intact (never recycled).
	for i := range payload {
		if payload[i] != byte(i^0x6d) {
			t.Fatal("write payload was mutated by the operation")
		}
	}
}

func TestCopyServerToServer(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	src := growMapped(t, region, 2, 1<<20)
	dst := growMapped(t, region, 3, 1<<20)
	want := make([]byte, 8192)
	for i := range want {
		want[i] = byte(i*3 + 1)
	}
	if err := region.Write(src, want); err != nil {
		t.Fatal(err)
	}
	completed := false
	if err := region.Copy(dst, src, 8192, func(_ Time, err error) {
		if err != nil {
			t.Fatal(err)
		}
		completed = true
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !completed {
		t.Fatal("copy never completed")
	}
	got := make([]byte, 8192)
	if err := region.Read(dst, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("copied bytes wrong")
	}
	// Both endpoints are remote: the data moved donor-to-donor. The
	// client's node shows no read-response traffic for the payload.
	if owner, _ := region.Owner(src); owner == region.Node() {
		t.Fatal("test setup: source unexpectedly local")
	}
}

func TestAccessBatch(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	p := growMapped(t, region, 2, 1<<20)
	completions := 0
	reqs := make([]AccessRequest, 8)
	for i := range reqs {
		reqs[i] = AccessRequest{Pointer: p + Pointer(i*64), Done: func(Time) { completions++ }}
	}
	if err := region.AccessBatch(reqs); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if completions != 8 {
		t.Errorf("%d of 8 batch accesses completed", completions)
	}
	// A batch with an unmapped pointer reports which request failed.
	err = region.AccessBatch([]AccessRequest{
		{Now: sys.Now(), Pointer: p},
		{Now: sys.Now(), Pointer: 0xdead0000},
	})
	if err == nil || !strings.Contains(err.Error(), "batch access 1") {
		t.Errorf("batch error = %v", err)
	}
	sys.Run()
}

// Bulk metric families appear only in systems that issued bulk traffic,
// so non-bulk runs stay byte-identical.
func TestBulkMetricsGatedThroughFacade(t *testing.T) {
	quiet := newSys(t)
	qr, err := quiet.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	qp := growMapped(t, qr, 2, 1<<20)
	if err := qr.Access(AccessRequest{Pointer: qp}); err != nil {
		t.Fatal(err)
	}
	quiet.Run()
	if strings.Contains(quiet.Metrics().JSON(), "ncdsm_rmc_bulk") {
		t.Error("bulk families present without bulk traffic")
	}

	busy := newSys(t)
	br, err := busy.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	bp := growMapped(t, br, 2, 1<<20)
	if err := br.ReadBulk(bp, []Span{{Offset: 0, Bytes: 4096}}, nil); err != nil {
		t.Fatal(err)
	}
	busy.Run()
	if !strings.Contains(busy.Metrics().JSON(), "ncdsm_rmc_bulk_bursts_total") {
		t.Error("bulk families missing after bulk traffic")
	}
}

// TestBulkMixedLocalRemote: a span range crossing a local heap chunk
// into borrowed memory splits into one local controller run and one
// remote burst, reassembled in order.
func TestBulkMixedLocalRemote(t *testing.T) {
	sys := newSys(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	// A 12 GB malloc spills: early bytes local, late bytes remote.
	ptr, err := region.Malloc(12 << 30)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := region.Owner(ptr)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := region.Owner(ptr + 11<<30)
	if err != nil {
		t.Fatal(err)
	}
	if lo != region.Node() || hi == region.Node() {
		t.Skipf("layout not mixed (owners %d, %d); nothing to test", lo, hi)
	}
	// Binary-search the local/remote boundary page.
	isRemote := func(off uint64) bool {
		o, err := region.Owner(ptr + Pointer(off))
		if err != nil {
			t.Fatal(err)
		}
		return o != region.Node()
	}
	loOff, hiOff := uint64(0), uint64(11<<30)
	for hiOff-loOff > 4096 {
		mid := (loOff + hiOff) / 2 &^ 4095
		if isRemote(mid) {
			hiOff = mid
		} else {
			loOff = mid
		}
	}
	base := ptr + Pointer(hiOff) - 2048 // 2 KiB local, then remote
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i*5 + 2)
	}
	if err := region.Write(base, want); err != nil {
		t.Fatal(err)
	}
	sink := make([]byte, 4096)
	if err := region.ReadBulk(base, []Span{{Offset: 0, Bytes: 4096}}, sink, func(_ Time, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !bytes.Equal(sink, want) {
		t.Error("mixed local/remote gather returned wrong bytes")
	}
}
