// Package memdir is the cluster-wide free-memory directory — the OS
// service augmentation the paper lists ("knowledge of the location of
// free memory across the cluster"). Nodes register their pooled
// capacity; a node running out of memory asks the directory for a donor,
// under a placement policy (most free bytes, or nearest by mesh hops,
// which the microbenchmarks use to position memory servers).
package memdir

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/addr"
	"repro/internal/metrics"
)

// Policy selects a donor among candidates.
type Policy int

// Donor-selection policies.
const (
	// MostFree picks the node with the most free pooled bytes, breaking
	// ties by lowest identifier. Spreads load.
	MostFree Policy = iota
	// Nearest picks the closest node (by the registered distance
	// function) with enough free bytes, breaking ties by most free.
	Nearest
)

// Directory tracks pooled capacity across the cluster.
type Directory struct {
	free map[addr.NodeID]uint64
	dist func(a, b addr.NodeID) int

	// Grants counts successful donor selections.
	Grants uint64
	// Lookups counts donor searches; Rejections counts the ones no node
	// could satisfy.
	Lookups, Rejections uint64

	// reg, when set by Instrument, receives the directory-transaction
	// metric families — but only once the first transaction happens, so
	// a system that never consults the directory snapshots exactly as an
	// uninstrumented build.
	reg        *metrics.Registry
	registered bool
	granted    *metrics.Histogram
}

// New creates a directory. dist gives inter-node distance for the
// Nearest policy; nil disables that policy.
func New(dist func(a, b addr.NodeID) int) *Directory {
	return &Directory{free: make(map[addr.NodeID]uint64), dist: dist}
}

// Instrument arms the directory to report transaction metrics into reg.
// Families register lazily on the first donor search or grant: snapshots
// of systems whose directory stays idle are byte-identical to snapshots
// taken before this layer existed.
func (d *Directory) Instrument(reg *metrics.Registry) { d.reg = reg }

// touch registers the metric families on the first directory transaction.
func (d *Directory) touch() {
	if d.reg == nil || d.registered {
		return
	}
	d.registered = true
	d.reg.CounterFunc(metrics.FamMemdirLookups, "donor searches against the free-memory directory", nil,
		func() uint64 { return d.Lookups })
	d.reg.CounterFunc(metrics.FamMemdirGrants, "reservations granted by the directory", nil,
		func() uint64 { return d.Grants })
	d.reg.CounterFunc(metrics.FamMemdirRejections, "donor searches no node could satisfy", nil,
		func() uint64 { return d.Rejections })
	const mb = int64(1) << 20
	d.granted = d.reg.Histogram(metrics.FamMemdirGrantedBytes, "bytes per granted reservation", nil,
		[]int64{mb, 16 * mb, 64 * mb, 256 * mb, 1024 * mb, 4096 * mb, 16384 * mb})
}

// Register announces a node's pooled capacity (or updates it).
func (d *Directory) Register(n addr.NodeID, bytes uint64) error {
	if n == 0 || n > addr.MaxNode {
		return fmt.Errorf("memdir: invalid node %d", n)
	}
	d.free[n] = bytes
	return nil
}

// Free returns a node's registered free bytes.
func (d *Directory) Free(n addr.NodeID) uint64 { return d.free[n] }

// TotalFree returns the pool-wide free bytes.
func (d *Directory) TotalFree() uint64 {
	var total uint64
	for _, b := range d.free {
		total += b
	}
	return total
}

// FindDonor selects a donor with at least want free bytes for requester
// self (never self: borrowing from yourself is just local allocation).
func (d *Directory) FindDonor(self addr.NodeID, want uint64, policy Policy) (addr.NodeID, error) {
	d.touch()
	d.Lookups++
	type cand struct {
		id   addr.NodeID
		free uint64
	}
	var cands []cand
	for id, f := range d.free {
		if id != self && f >= want {
			cands = append(cands, cand{id, f})
		}
	}
	if len(cands) == 0 {
		d.Rejections++
		return 0, fmt.Errorf("memdir: no node has %d free pooled bytes (cluster free %d)", want, d.TotalFree())
	}
	switch policy {
	case MostFree:
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].free != cands[j].free {
				return cands[i].free > cands[j].free
			}
			return cands[i].id < cands[j].id
		})
	case Nearest:
		if d.dist == nil {
			return 0, fmt.Errorf("memdir: Nearest policy without a distance function")
		}
		sort.Slice(cands, func(i, j int) bool {
			di, dj := d.dist(self, cands[i].id), d.dist(self, cands[j].id)
			if di != dj {
				return di < dj
			}
			if cands[i].free != cands[j].free {
				return cands[i].free > cands[j].free
			}
			return cands[i].id < cands[j].id
		})
	default:
		return 0, fmt.Errorf("memdir: unknown policy %d", policy)
	}
	return cands[0].id, nil
}

// Consume records that a grant took bytes from a node.
func (d *Directory) Consume(n addr.NodeID, bytes uint64) error {
	d.touch()
	f, ok := d.free[n]
	if !ok {
		return fmt.Errorf("memdir: node %d not registered", n)
	}
	if f < bytes {
		return fmt.Errorf("memdir: node %d has %d free, cannot consume %d", n, f, bytes)
	}
	d.free[n] = f - bytes
	d.Grants++
	if d.granted != nil {
		if bytes > math.MaxInt64 {
			d.granted.Observe(math.MaxInt64)
		} else {
			d.granted.Observe(int64(bytes))
		}
	}
	return nil
}

// ReleaseBytes returns capacity to a node. Releasing more than was ever
// consumed (an accounting bug upstream) is refused rather than silently
// wrapping the free count around.
func (d *Directory) ReleaseBytes(n addr.NodeID, bytes uint64) error {
	f, ok := d.free[n]
	if !ok {
		return fmt.Errorf("memdir: node %d not registered", n)
	}
	if f+bytes < f {
		return fmt.Errorf("memdir: releasing %d bytes to node %d overflows its free count %d", bytes, n, f)
	}
	d.free[n] = f + bytes
	return nil
}
