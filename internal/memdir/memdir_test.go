package memdir

import (
	"math"
	"testing"

	"repro/internal/addr"
	"repro/internal/mesh"
	"repro/internal/metrics"
)

func dir4x4(t *testing.T) *Directory {
	t.Helper()
	topo, err := mesh.NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return New(func(a, b addr.NodeID) int { return topo.Hops(a, b) })
}

func TestRegisterAndTotals(t *testing.T) {
	d := dir4x4(t)
	if err := d.Register(0, 100); err == nil {
		t.Error("node 0 registered")
	}
	d.Register(1, 100)
	d.Register(2, 200)
	if d.Free(2) != 200 || d.TotalFree() != 300 {
		t.Errorf("Free/Total = %d/%d", d.Free(2), d.TotalFree())
	}
	d.Register(2, 50) // update
	if d.Free(2) != 50 {
		t.Error("re-register did not update")
	}
}

func TestFindDonorMostFree(t *testing.T) {
	d := dir4x4(t)
	d.Register(1, 100)
	d.Register(2, 300)
	d.Register(3, 300)
	d.Register(4, 500)
	n, err := d.FindDonor(1, 200, MostFree)
	if err != nil || n != 4 {
		t.Errorf("FindDonor = %d, %v; want 4", n, err)
	}
	// Never self, even if self has the most.
	d.Register(1, 900)
	if n, _ := d.FindDonor(1, 200, MostFree); n == 1 {
		t.Error("directory offered the requester its own memory")
	}
	// Tie-break by lowest id.
	d2 := dir4x4(t)
	d2.Register(1, 10)
	d2.Register(3, 100)
	d2.Register(2, 100)
	if n, _ := d2.FindDonor(1, 50, MostFree); n != 2 {
		t.Errorf("tie-break chose %d, want 2", n)
	}
}

func TestFindDonorNearest(t *testing.T) {
	d := dir4x4(t)
	// Node 1 is at (0,0); node 2 at (1,0) is 1 hop, node 16 at (3,3) is 6.
	d.Register(2, 100)
	d.Register(16, 1000)
	n, err := d.FindDonor(1, 50, Nearest)
	if err != nil || n != 2 {
		t.Errorf("Nearest = %d, %v; want 2", n, err)
	}
	// If the near node can't satisfy, the farther one wins.
	if n, _ := d.FindDonor(1, 500, Nearest); n != 16 {
		t.Errorf("Nearest fallback = %d, want 16", n)
	}
	// Nearest without a distance function is an error.
	d2 := New(nil)
	d2.Register(2, 100)
	if _, err := d2.FindDonor(1, 50, Nearest); err == nil {
		t.Error("Nearest accepted without distance function")
	}
}

func TestFindDonorExhausted(t *testing.T) {
	d := dir4x4(t)
	d.Register(2, 100)
	if _, err := d.FindDonor(1, 200, MostFree); err == nil {
		t.Error("impossible request satisfied")
	}
	if _, err := d.FindDonor(1, 10, Policy(99)); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestConsumeRelease(t *testing.T) {
	d := dir4x4(t)
	d.Register(2, 100)
	if err := d.Consume(2, 60); err != nil {
		t.Fatal(err)
	}
	if d.Free(2) != 40 {
		t.Errorf("Free = %d", d.Free(2))
	}
	if err := d.Consume(2, 60); err == nil {
		t.Error("overconsumption accepted")
	}
	if err := d.Consume(9, 1); err == nil {
		t.Error("consume from unregistered node accepted")
	}
	if err := d.ReleaseBytes(2, 60); err != nil {
		t.Fatal(err)
	}
	if d.Free(2) != 100 {
		t.Errorf("Free after release = %d", d.Free(2))
	}
	if err := d.ReleaseBytes(9, 1); err == nil {
		t.Error("release to unregistered node accepted")
	}
	if d.Grants != 1 {
		t.Errorf("Grants = %d", d.Grants)
	}
}

func TestReleaseOverflowRefused(t *testing.T) {
	d := dir4x4(t)
	d.Register(2, 100)
	if err := d.ReleaseBytes(2, math.MaxUint64-10); err == nil {
		t.Error("overflowing release accepted")
	}
	if d.Free(2) != 100 {
		t.Errorf("free count changed by refused release: %d", d.Free(2))
	}
}

// TestInstrumentGated checks the metric families appear only after the
// first directory transaction: idle directories leave the registry
// byte-identical to a build without this layer.
func TestInstrumentGated(t *testing.T) {
	reg := metrics.NewRegistry()
	d := dir4x4(t)
	d.Instrument(reg)
	d.Register(2, 100)
	d.Register(3, 300)
	if n := len(reg.Snapshot().Families); n != 0 {
		t.Fatalf("idle instrumented directory registered %d families, want 0", n)
	}
	if _, err := d.FindDonor(1, 50, MostFree); err != nil {
		t.Fatal(err)
	}
	if err := d.Consume(3, 50); err != nil {
		t.Fatal(err)
	}
	if _, err := d.FindDonor(1, 5000, MostFree); err == nil {
		t.Fatal("impossible request satisfied")
	}
	snap := reg.Snapshot()
	want := map[string]float64{
		metrics.FamMemdirLookups:    2,
		metrics.FamMemdirGrants:     1,
		metrics.FamMemdirRejections: 1,
	}
	for _, f := range snap.Families {
		if v, ok := want[f.Name]; ok {
			if len(f.Samples) != 1 || f.Samples[0].Value != v {
				t.Errorf("%s = %+v, want %v", f.Name, f.Samples, v)
			}
			delete(want, f.Name)
		}
		if f.Name == metrics.FamMemdirGrantedBytes {
			if f.Samples[0].Count != 1 || f.Samples[0].Sum != 50 {
				t.Errorf("granted-bytes histogram = %+v", f.Samples[0])
			}
		}
	}
	for name := range want {
		t.Errorf("family %s missing after transactions", name)
	}
}
