package consistency

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/cohdsm"
	"repro/internal/params"
)

// factory builds fresh instances of a registered protocol.
func factory(t *testing.T, name string, nodes int) func() (Protocol, error) {
	t.Helper()
	p := params.Default()
	return func() (Protocol, error) { return NewProtocol(name, p, nodes) }
}

// buggyMSI builds fresh MSI instances with a PR 6 bug re-introduced.
func buggyMSI(nodes int, bugs cohdsm.TestBugs) func() (Protocol, error) {
	p := params.Default()
	return func() (Protocol, error) {
		proto, err := NewMSI(p, nodes)
		if err != nil {
			return nil, err
		}
		proto.Directory().InjectBugs(bugs)
		return proto, nil
	}
}

// TestEnumerateSchedules pins the enumerator's counts: full interleaving
// counts for dependent programs, sleep-set collapse for independent
// ones, and lexicographic order.
func TestEnumerateSchedules(t *testing.T) {
	const x, y = 0, 1
	cases := []struct {
		name string
		prog Program
		want int
	}{
		// Two single-write nodes on one line: both orders differ.
		{"write-write", Program{{W(x, 1)}, {W(x, 2)}}, 2},
		// Store buffering: C(4,2) = 6 interleavings, but the two
		// trailing reads commute, collapsing the two pairs that differ
		// only in read order — 4 representatives.
		{"sb", Program{{W(x, 1), R(y)}, {W(y, 1), R(x)}}, 4},
		// Two single-read nodes: reads commute, one representative.
		{"read-read", Program{{R(x)}, {R(y)}}, 1},
		// Two nodes of two reads each: all 6 interleavings equivalent.
		{"reads-only", Program{{R(x), R(y)}, {R(y), R(x)}}, 1},
		// One node: exactly its program order.
		{"serial", Program{{W(x, 1), R(x), W(y, 2)}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			scheds, err := enumerateSchedules(tc.prog, maxExhaustiveSchedules)
			if err != nil {
				t.Fatal(err)
			}
			if len(scheds) != tc.want {
				t.Fatalf("enumerated %d schedules, want %d: %v", len(scheds), tc.want, scheds)
			}
			for i := 1; i < len(scheds); i++ {
				if !lessSchedule(scheds[i-1], scheds[i]) {
					t.Fatalf("enumeration not lexicographic: %v before %v", scheds[i-1], scheds[i])
				}
			}
		})
	}
}

// TestEnumerateSchedulesCoverage cross-checks the reduction's claim on a
// mixed program: running every enumerated schedule and every *full*
// interleaving under MSI yields the same set of per-node read
// observations. (Per-node, not global: the reduction collapses
// interleavings differing only in the global order of commuting reads,
// which is exactly what verdicts cannot see — each node's program-order
// value sequence is what SC and per-location checking consume.)
func TestEnumerateSchedulesCoverage(t *testing.T) {
	const x, y = 0, 1
	prog := Program{{W(x, 1), R(y)}, {R(x), R(y)}, {W(y, 2)}}
	reduced, err := enumerateSchedules(prog, maxExhaustiveSchedules)
	if err != nil {
		t.Fatal(err)
	}
	// Full enumeration: the same DFS with independence declared empty.
	full := enumerateAll(prog)
	if len(reduced) >= len(full) {
		t.Fatalf("reduction did not reduce: %d of %d", len(reduced), len(full))
	}
	obs := func(scheds [][]int) map[string]bool {
		set := make(map[string]bool)
		for _, s := range scheds {
			proto, err := NewProtocol("msi", params.Default(), len(prog))
			if err != nil {
				t.Fatal(err)
			}
			h, err := RunProgram(proto, prog, s)
			if err != nil {
				t.Fatal(err)
			}
			perNode := make([]strings.Builder, h.Nodes)
			for _, e := range h.Events {
				if e.Op == OpRead {
					perNode[e.Node].WriteString(e.String())
					perNode[e.Node].WriteByte(';')
				}
			}
			var b strings.Builder
			for n := range perNode {
				b.WriteString(perNode[n].String())
				b.WriteByte('|')
			}
			set[b.String()] = true
		}
		return set
	}
	if got, want := obs(reduced), obs(full); !reflect.DeepEqual(got, want) {
		t.Fatalf("reduced schedules observe %v, full enumeration %v", got, want)
	}
}

// enumerateAll lists every interleaving with no reduction (test oracle).
func enumerateAll(prog Program) [][]int {
	total := 0
	for _, is := range prog {
		total += len(is)
	}
	idx := make([]int, len(prog))
	cur := make([]int, 0, total)
	var out [][]int
	var dfs func()
	dfs = func() {
		if len(cur) == total {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for n := range prog {
			if idx[n] >= len(prog[n]) {
				continue
			}
			idx[n]++
			cur = append(cur, n)
			dfs()
			cur = cur[:len(cur)-1]
			idx[n]--
		}
	}
	dfs()
	return out
}

// TestSampleScheduleDeterminism pins the sampler: same (seed, i) same
// schedule, different i different stream, and every sample is a valid
// complete interleaving.
func TestSampleScheduleDeterminism(t *testing.T) {
	prog := RandomProgram(3, 3, 5, 4, 0.4, true)
	a := sampleSchedule(7, 12, prog)
	b := sampleSchedule(7, 12, prog)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, index) produced different schedules")
	}
	counts := make([]int, len(prog))
	for _, n := range a {
		counts[n]++
	}
	for n := range prog {
		if counts[n] != len(prog[n]) {
			t.Fatalf("sampled schedule issues node %d %d times, program has %d instructions", n, counts[n], len(prog[n]))
		}
	}
	distinct := false
	for i := 0; i < 8 && !distinct; i++ {
		distinct = !reflect.DeepEqual(sampleSchedule(7, i, prog), sampleSchedule(7, i+100, prog))
	}
	if !distinct {
		t.Error("sampler produced identical schedules across many indices")
	}
}

// TestExploreStrongProtocolsClean is the tentpole's positive half: over
// the full litmus suite, exhaustive or sampled, the coherent protocols
// must be violation-free and the weak protocols must only exhibit their
// advertised anomalies (never an invariant failure or an undecided
// search).
func TestExploreStrongProtocolsClean(t *testing.T) {
	results, err := ExploreLitmus(params.Default(), nil, DefaultExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Suite()) * len(Names()); len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	byKey := make(map[string]ExploreResult)
	for _, r := range results {
		byKey[r.Test+"/"+r.Protocol] = r
		if StrongProtocols()[r.Protocol] && r.Violations() > 0 {
			t.Errorf("%s/%s: %d violations on a sequentially consistent protocol\n%s",
				r.Test, r.Protocol, r.Violations(), r.FirstViolation().Trace())
		}
		if r.InvariantFails > 0 && !StrongProtocols()[r.Protocol] {
			t.Errorf("%s/%s: %d invariant failures", r.Test, r.Protocol, r.InvariantFails)
		}
		if r.Undecided > 0 {
			t.Errorf("%s/%s: %d undecided SC searches at litmus size", r.Test, r.Protocol, r.Undecided)
		}
		if r.Schedules == 0 {
			t.Errorf("%s/%s: zero schedules explored", r.Test, r.Protocol)
		}
	}
	// The existential claims the single-schedule suite could not make:
	// under rmc, *every* store-buffering interleaving reorders (the
	// posted write is never drained before the loads), and exploration
	// proves it — all 4 schedule representatives (6 interleavings modulo
	// the commuting trailing reads) fail SC.
	sb := byKey["sb/rmc"]
	if !sb.Exhaustive || sb.Schedules != 4 || sb.SCFails != 4 {
		t.Errorf("sb/rmc: exhaustive=%v schedules=%d scfails=%d, want 4/4 exhaustive", sb.Exhaustive, sb.Schedules, sb.SCFails)
	}
	if sb.MinSC == nil || !reflect.DeepEqual(sb.MinSC.Schedule, []int{0, 0, 1, 1}) {
		t.Errorf("sb/rmc minimal violating schedule = %+v, want 0,0,1,1", sb.MinSC)
	}
	// iriw (10 instructions) is past the default exhaustive bound: the
	// explorer must have sampled it.
	if iriw := byKey["iriw/msi"]; iriw.Exhaustive || iriw.Schedules != DefaultExploreSpec().Samples {
		t.Errorf("iriw/msi: exhaustive=%v schedules=%d, want sampled %d", iriw.Exhaustive, iriw.Schedules, DefaultExploreSpec().Samples)
	}
}

// TestExploreParallelIdentity is the determinism contract: the explorer
// result — counts, minimal schedules, histories — is identical at any
// worker count, for both exhaustive and sampled programs.
func TestExploreParallelIdentity(t *testing.T) {
	for _, tc := range []struct {
		name string
		prog Program
	}{
		{"exhaustive", Program{{W(0, 1), R(1)}, {W(1, 2), R(0)}}},
		{"sampled", RandomProgram(5, 3, 4, 3, 0.5, true)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var prev ExploreResult
			for i, parallel := range []int{1, 8} {
				spec := DefaultExploreSpec()
				spec.Parallel = parallel
				r, err := ExploreProgram(factory(t, "rmc", len(tc.prog)), tc.prog, spec)
				if err != nil {
					t.Fatal(err)
				}
				if i > 0 && !reflect.DeepEqual(prev, r) {
					t.Fatalf("explore result differs between -parallel 1 and %d:\n%+v\n%+v", parallel, prev, r)
				}
				prev = r
			}
		})
	}
}

// TestExplorerRediscoversMissingWriteback is the first PR 6 regression:
// with the M→S downgrade writeback dropped (the bug the lab originally
// caught), the explorer must find a violating schedule of the store
// buffering program within the default budget — under the bug, a read
// that intervenes on a dirty owner returns stale home memory, and the
// SB interleaving where both nodes then miss becomes non-SC even though
// the protocol claims sequential consistency.
func TestExplorerRediscoversMissingWriteback(t *testing.T) {
	const x, y = 0, 1
	prog := Program{{W(x, 1), R(y)}, {W(y, 1), R(x)}}
	r, err := ExploreProgram(buggyMSI(2, cohdsm.TestBugs{SkipDowngradeWriteback: true}), prog, DefaultExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if r.SCFails == 0 {
		t.Fatalf("explorer missed the dropped downgrade writeback: %+v", r)
	}
	if r.InvariantFails == 0 {
		t.Errorf("invariant checker missed the stale home memory: %+v", r)
	}
	v := r.FirstViolation()
	if v == nil {
		t.Fatal("no minimal violating schedule reported")
	}
	// The trace is replayable: the same schedule reproduces the same
	// history and the same verdict.
	proto, err := buggyMSI(2, cohdsm.TestBugs{SkipDowngradeWriteback: true})()
	if err != nil {
		t.Fatal(err)
	}
	h, err := RunProgram(proto, prog, v.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, v.History) {
		t.Error("replaying the minimal violating schedule produced a different history")
	}
	// The clean protocol explores the same program violation-free.
	clean, err := ExploreProgram(factory(t, "msi", 2), prog, DefaultExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violations() > 0 {
		t.Errorf("clean MSI shows violations on the regression program: %+v", clean)
	}
}

// TestExplorerRediscoversStaleOwner is the second PR 6 regression: with
// the owner field left set after an M→S downgrade, the directory's
// latent state is wrong even though no read value is — exactly the class
// of bug only the per-schedule invariant sweep sees. The explorer must
// find a schedule whose SelfCheck fails, and report the minimal one
// (write first, then the downgrading read).
func TestExplorerRediscoversStaleOwner(t *testing.T) {
	const x = 0
	prog := Program{{W(x, 1)}, {R(x)}}
	r, err := ExploreProgram(buggyMSI(2, cohdsm.TestBugs{KeepOwnerAfterDowngrade: true}), prog, DefaultExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Exhaustive || r.Schedules != 2 {
		t.Fatalf("expected both interleavings of the 2-op program: %+v", r)
	}
	if r.InvariantFails != 1 {
		t.Fatalf("InvariantFails = %d, want exactly the write-then-read schedule", r.InvariantFails)
	}
	if r.MinInvariant == nil || !reflect.DeepEqual(r.MinInvariant.Schedule, []int{0, 1}) {
		t.Fatalf("minimal invariant-violating schedule = %+v, want 0,1", r.MinInvariant)
	}
	if !strings.Contains(r.MinInvariant.InvariantErr, "owner") {
		t.Errorf("invariant error does not name the stale owner: %q", r.MinInvariant.InvariantErr)
	}
	if r.SCFails != 0 || r.PerLocFails != 0 {
		t.Errorf("stale owner is a latent-state bug; checkers should stay clean: %+v", r)
	}
	clean, err := ExploreProgram(factory(t, "msi", 2), prog, DefaultExploreSpec())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Violations() > 0 {
		t.Errorf("clean MSI shows violations on the regression program: %+v", clean)
	}
}

// TestExploreSpecValidation covers the spec's error paths and the
// exhaustive cap.
func TestExploreSpecValidation(t *testing.T) {
	prog := Program{{W(0, 1)}, {R(0)}}
	bad := DefaultExploreSpec()
	bad.Samples = 0
	if _, err := ExploreProgram(factory(t, "msi", 2), prog, bad); err == nil {
		t.Error("zero samples accepted")
	}
	neg := DefaultExploreSpec()
	neg.MaxDepth = -1
	if _, err := ExploreProgram(factory(t, "msi", 2), prog, neg); err == nil {
		t.Error("negative depth accepted")
	}
	// A program big enough to overflow the exhaustive cap must error,
	// not truncate: 4 nodes × 5 writes = 11M interleavings.
	big := make(Program, 4)
	for n := range big {
		for i := 0; i < 5; i++ {
			big[n] = append(big[n], W(uint64(n), uint64(i+1)))
		}
	}
	wide := DefaultExploreSpec()
	wide.MaxDepth = 20
	if _, err := ExploreProgram(factory(t, "msi", 4), big, wide); err == nil {
		t.Error("exhaustive cap overflow accepted")
	}
}

// TestScheduleOutcomeTrace pins the replayable-trace rendering the CLI
// prints on a violation.
func TestScheduleOutcomeTrace(t *testing.T) {
	o := ScheduleOutcome{
		Schedule:     []int{0, 1, 0},
		Verdict:      Verdict{SC: false, PerLoc: true},
		InvariantErr: "stale owner",
		History: History{Nodes: 2, Events: []Event{
			{Seq: 0, Node: 0, Op: OpWrite, Loc: 3, Value: 1},
			{Seq: 1, Node: 1, Op: OpRead, Loc: 3, Value: 0},
		}},
	}
	tr := o.Trace()
	for _, want := range []string{"schedule 0,1,0", "SC=FAIL", "invariants=FAIL (stale owner)", "n0: W x3 = 1", "step 1"} {
		if !strings.Contains(tr, want) {
			t.Errorf("trace missing %q:\n%s", want, tr)
		}
	}
}
