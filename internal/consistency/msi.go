package consistency

import (
	"repro/internal/cohdsm"
	"repro/internal/params"
)

// MSI is the coherent comparator: the directory-based MSI machine of
// internal/cohdsm behind the Protocol interface. Every access completes
// only after the directory has made it globally visible (sharers
// invalidated, dirty owners intervened on and written back), so the
// protocol is sequentially consistent — in fact linearizable, since
// each access takes effect atomically at its issue step. Fences are
// no-ops the hardware already pays for on every access.
type MSI struct {
	m *cohdsm.Model
}

// NewMSI builds the coherent protocol over nodes nodes.
func NewMSI(p params.Params, nodes int) (*MSI, error) {
	m, err := cohdsm.New(p, nodes)
	if err != nil {
		return nil, err
	}
	return &MSI{m: m}, nil
}

// Name returns "msi".
func (c *MSI) Name() string { return "msi" }

// Model names the promised consistency model.
func (c *MSI) Model() string { return "sequential consistency" }

// Nodes returns the domain size.
func (c *MSI) Nodes() int { return c.m.Nodes() }

// Directory exposes the underlying cohdsm model (metrics, diagnostics).
func (c *MSI) Directory() *cohdsm.Model { return c.m }

// Read performs one coherent load.
func (c *MSI) Read(node int, loc uint64) (uint64, params.Duration, error) {
	return c.m.ReadLine(node, loc)
}

// Write performs one coherent store.
func (c *MSI) Write(node int, loc uint64, val uint64) (params.Duration, error) {
	return c.m.WriteLine(node, loc, val)
}

// Acquire is free under hardware coherence.
func (c *MSI) Acquire(node int) (params.Duration, error) { return 0, nil }

// Release is free under hardware coherence.
func (c *MSI) Release(node int) (params.Duration, error) { return 0, nil }

// SelfCheck runs the directory invariants.
func (c *MSI) SelfCheck() error { return c.m.CheckInvariants() }
