package consistency

import (
	"fmt"
	"strings"

	"repro/internal/params"
	"repro/internal/runner"
)

// This file is the schedule-exploration model checker. PR 6's lab ran
// each litmus program under exactly one seeded schedule, so the
// checkers only ever saw a single interleaving; here every (program,
// protocol) pair is explored systematically — exhaustively up to a
// bounded program size, by seeded random sampling beyond it — and every
// explored history runs through the SC and per-location checkers plus
// the protocol's own invariants. A violation is reported as the
// lexicographically minimal violating schedule, which is a replayable
// trace: feed it back to RunProgram and the identical history returns.

// maxExhaustiveSchedules caps exhaustive enumeration the same way
// scStateCap caps the SC search: past the cap ExploreProgram returns an
// error rather than silently truncating coverage — the caller should
// lower the depth bound and let sampling take over.
const maxExhaustiveSchedules = 250_000

// ExploreSpec configures schedule exploration for one program.
type ExploreSpec struct {
	// MaxDepth bounds exhaustive enumeration: a program whose total
	// instruction count is at most MaxDepth has every interleaving
	// enumerated (modulo the sleep-set reduction); longer programs fall
	// back to seeded random sampling.
	MaxDepth int
	// Samples is the number of seeded schedules drawn for programs past
	// the exhaustive bound.
	Samples int
	// Seed feeds the splitmix64 schedule sampler. Same seed, same
	// schedules, at any Parallel setting.
	Seed int64
	// Parallel bounds the worker count schedules are sharded across
	// (runner.Map); results are merged in schedule order, so the
	// outcome is byte-identical at any setting. Values below 1 run
	// serially.
	Parallel int
}

// DefaultExploreSpec is the explorer's default budget: exhaustive up to
// 6 instructions, 500 sampled schedules beyond, seed 1, serial.
func DefaultExploreSpec() ExploreSpec {
	return ExploreSpec{MaxDepth: 6, Samples: 500, Seed: 1, Parallel: 1}
}

func (s ExploreSpec) validate() error {
	if s.MaxDepth < 0 {
		return fmt.Errorf("consistency: negative explore depth %d", s.MaxDepth)
	}
	if s.Samples < 1 {
		return fmt.Errorf("consistency: explore sample count %d below 1", s.Samples)
	}
	return nil
}

// String renders the spec in the CLI's -explore grammar.
func (s ExploreSpec) String() string {
	return fmt.Sprintf("exhaustive:%d,sample:%d:%d", s.MaxDepth, s.Samples, s.Seed)
}

// ScheduleOutcome is one explored schedule's outcome: the replayable
// trace of a violation.
type ScheduleOutcome struct {
	// Schedule is the node-index interleaving; RunProgram replays it.
	Schedule []int
	// Verdict is the checkers' judgment of the recorded history.
	Verdict Verdict
	// Undecided reports that the SC search hit its state cap — the SC
	// half of the verdict is neither pass nor fail.
	Undecided bool
	// InvariantErr is the protocol SelfCheck failure (or the protocol's
	// own mid-run error), empty when the state machine stayed sound.
	InvariantErr string
	// History is the recorded execution (empty if the protocol errored
	// mid-run).
	History History
}

// Trace renders the schedule and its history as a replayable trace.
func (o ScheduleOutcome) Trace() string {
	var b strings.Builder
	b.WriteString("schedule ")
	for i, n := range o.Schedule {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", n)
	}
	fmt.Fprintf(&b, " — %s", o.Verdict.Summary())
	if o.InvariantErr != "" {
		fmt.Fprintf(&b, " invariants=FAIL (%s)", o.InvariantErr)
	}
	b.WriteByte('\n')
	for _, e := range o.History.Events {
		fmt.Fprintf(&b, "  step %d: %s\n", e.Seq, e)
	}
	return b.String()
}

// ExploreResult summarizes the exploration of one (program, protocol)
// pair. The verdict is existential — "does any explored schedule
// violate?" — which is the question the single-schedule litmus suite
// could not ask.
type ExploreResult struct {
	// Test and Protocol identify the pair (Test is empty for ad-hoc
	// programs).
	Test     string
	Protocol string
	// Exhaustive reports whether every interleaving was enumerated
	// (modulo the sleep-set reduction); false means seeded sampling.
	Exhaustive bool
	// Schedules is how many schedules were run.
	Schedules int
	// SCFails, PerLocFails, and InvariantFails count schedules whose
	// history failed each check; Undecided counts SC searches that hit
	// the state cap (neither pass nor fail).
	SCFails, PerLocFails, InvariantFails, Undecided int
	// MinSC, MinPerLoc, and MinInvariant are the lexicographically
	// minimal violating schedules per category, nil when clean.
	MinSC, MinPerLoc, MinInvariant *ScheduleOutcome
}

// Violations is the total count of violating schedules across all
// three categories (a schedule failing several checks counts once per
// category).
func (r ExploreResult) Violations() int {
	return r.SCFails + r.PerLocFails + r.InvariantFails
}

// FirstViolation returns the lexicographically minimal violating
// schedule across all categories, or nil when the exploration is clean.
func (r ExploreResult) FirstViolation() *ScheduleOutcome {
	var best *ScheduleOutcome
	for _, o := range []*ScheduleOutcome{r.MinSC, r.MinPerLoc, r.MinInvariant} {
		if o != nil && (best == nil || lessSchedule(o.Schedule, best.Schedule)) {
			best = o
		}
	}
	return best
}

// lessSchedule is the lexicographic order defining "minimal violating
// schedule" (all complete schedules of one program share a length).
func lessSchedule(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// independent reports whether two instructions from different nodes
// commute for verdict purposes. The relation is deliberately
// conservative — only two loads: every protocol in the lab serves reads
// without mutating another node's observable values, so swapping
// adjacent reads by different nodes yields the same read values, the
// same per-node program orders, and the same final protocol state.
// Writes are never declared independent even across locations, because
// bounded store buffers couple them (an rmc write can drain the oldest
// entry for a *different* location), and fences publish or discard
// whole buffers.
func independent(a, b Instr) bool {
	return a.Op == OpRead && b.Op == OpRead
}

// enumerateSchedules lists every complete interleaving of the program's
// per-node instruction streams with a sleep-set reduction: after a
// branch explores node n at some decision point, its siblings put n to
// sleep in their subtrees for as long as n's next instruction stays
// independent of the instructions executed — so of any group of
// schedules equivalent under the independence relation, exactly one
// representative is enumerated. Forced moves (a single runnable node)
// extend the current schedule without branching. Enumeration order is
// depth-first over ascending node indices, so the list is
// lexicographically sorted and deterministic.
func enumerateSchedules(prog Program, limit int) ([][]int, error) {
	total := 0
	for _, is := range prog {
		total += len(is)
	}
	idx := make([]int, len(prog))
	cur := make([]int, 0, total)
	var out [][]int
	var dfs func(sleep []bool) error
	dfs = func(sleep []bool) error {
		if len(cur) == total {
			if len(out) >= limit {
				return fmt.Errorf("consistency: exhaustive exploration exceeds %d schedules; lower the depth bound", limit)
			}
			out = append(out, append([]int(nil), cur...))
			return nil
		}
		var taken []int
		for n := range prog {
			if idx[n] >= len(prog[n]) || sleep[n] {
				continue
			}
			in := prog[n][idx[n]]
			// The child inherits every sleeping or already-explored
			// sibling whose next instruction is independent of the one
			// just scheduled: those orders are covered by the sibling's
			// own subtree.
			child := make([]bool, len(prog))
			for s := range prog {
				if s == n || idx[s] >= len(prog[s]) {
					continue
				}
				asleep := sleep[s]
				for _, tk := range taken {
					if tk == s {
						asleep = true
					}
				}
				if asleep && independent(prog[s][idx[s]], in) {
					child[s] = true
				}
			}
			idx[n]++
			cur = append(cur, n)
			if err := dfs(child); err != nil {
				return err
			}
			cur = cur[:len(cur)-1]
			idx[n]--
			taken = append(taken, n)
		}
		return nil
	}
	if err := dfs(make([]bool, len(prog))); err != nil {
		return nil, err
	}
	return out, nil
}

// schedPRNG is a self-contained splitmix64 stream, the same idiom as
// internal/faults: the determinism contract outlives Go releases, so
// sampled schedules do not depend on math/rand's generator staying put.
type schedPRNG struct{ state uint64 }

func (r *schedPRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sampleSchedule derives the i-th seeded schedule of the program: a
// uniform interleaving drawn from a stream that depends only on (seed,
// i), so shards can generate their schedules independently and the
// sampled set is identical at any worker count.
func sampleSchedule(seed int64, i int, prog Program) []int {
	r := schedPRNG{state: uint64(seed)}
	r.state = r.next() ^ (uint64(i)+1)*0x9e3779b97f4a7c15
	remaining := make([]int, len(prog))
	total := 0
	for n := range prog {
		remaining[n] = len(prog[n])
		total += len(prog[n])
	}
	sched := make([]int, 0, total)
	for len(sched) < total {
		pick := int(r.next() % uint64(total-len(sched)))
		for n := range remaining {
			if remaining[n] == 0 {
				continue
			}
			if pick < remaining[n] {
				sched = append(sched, n)
				remaining[n]--
				break
			}
			pick -= remaining[n]
		}
	}
	return sched
}

// ExploreProgram explores schedules of prog against fresh protocol
// instances from newProto (one instance per schedule — protocols are
// stateful). Programs whose total instruction count is within
// spec.MaxDepth are enumerated exhaustively with the sleep-set
// reduction; longer programs run spec.Samples seeded random schedules.
// Schedules are sharded across spec.Parallel workers and merged in
// schedule order, so the result is identical at any worker count.
func ExploreProgram(newProto func() (Protocol, error), prog Program, spec ExploreSpec) (ExploreResult, error) {
	if err := spec.validate(); err != nil {
		return ExploreResult{}, err
	}
	total := 0
	for _, is := range prog {
		total += len(is)
	}
	var scheds [][]int
	res := ExploreResult{Exhaustive: total <= spec.MaxDepth}
	if res.Exhaustive {
		var err error
		scheds, err = enumerateSchedules(prog, maxExhaustiveSchedules)
		if err != nil {
			return ExploreResult{}, err
		}
	} else {
		scheds = make([][]int, spec.Samples)
		for i := range scheds {
			scheds[i] = sampleSchedule(spec.Seed, i, prog)
		}
	}
	workers := spec.Parallel
	if workers < 1 {
		workers = 1
	}
	outcomes, err := runner.Map(workers, len(scheds), func(i int) (ScheduleOutcome, error) {
		o := ScheduleOutcome{Schedule: scheds[i]}
		proto, err := newProto()
		if err != nil {
			return ScheduleOutcome{}, err
		}
		h, err := RunProgram(proto, prog, scheds[i])
		if err != nil {
			// A protocol erroring mid-run is itself a state-machine
			// violation finding, not an explorer failure.
			o.InvariantErr = err.Error()
			o.Verdict = Verdict{SC: true, PerLoc: true}
			return o, nil
		}
		o.History = h
		if err := proto.SelfCheck(); err != nil {
			o.InvariantErr = err.Error()
		}
		v, err := Check(h)
		if err != nil {
			// SC search hit its state cap: undecided rather than a
			// wrong verdict; the PerLoc half is still valid.
			o.Undecided = true
			v.SC = true
		}
		o.Verdict = v
		return o, nil
	})
	if err != nil {
		return ExploreResult{}, err
	}
	res.Schedules = len(outcomes)
	record := func(min **ScheduleOutcome, count *int, o ScheduleOutcome) {
		*count++
		if *min == nil || lessSchedule(o.Schedule, (*min).Schedule) {
			c := o
			*min = &c
		}
	}
	for _, o := range outcomes {
		switch {
		case o.Undecided:
			res.Undecided++
		case !o.Verdict.SC:
			record(&res.MinSC, &res.SCFails, o)
		}
		if !o.Verdict.PerLoc {
			record(&res.MinPerLoc, &res.PerLocFails, o)
		}
		if o.InvariantErr != "" {
			record(&res.MinInvariant, &res.InvariantFails, o)
		}
	}
	return res, nil
}

// ExploreLitmus explores every litmus program under every named
// protocol (all registered protocols when names is empty) and returns
// the results in suite × protocol order.
func ExploreLitmus(p params.Params, names []string, spec ExploreSpec) ([]ExploreResult, error) {
	if len(names) == 0 {
		names = Names()
	}
	var out []ExploreResult
	for _, l := range Suite() {
		for _, name := range names {
			l, name := l, name
			r, err := ExploreProgram(func() (Protocol, error) {
				return NewProtocol(name, p, l.Nodes)
			}, l.Prog, spec)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", l.Name, name, err)
			}
			r.Test = l.Name
			r.Protocol = name
			out = append(out, r)
		}
	}
	return out, nil
}

// StrongProtocols lists the protocols promising sequential consistency;
// for these any explored violation is a protocol bug, whereas for the
// weak protocols SC and per-location failures are the advertised
// anomalies and only invariant failures (or undecided searches) are
// errors.
func StrongProtocols() map[string]bool { return map[string]bool{"msi": true, "mesi": true} }

// Problems returns the explored violations that indict the protocol
// implementation rather than document its advertised weakness: for a
// strong protocol every violation, for a weak one invariant failures
// and undecided searches.
func (r ExploreResult) Problems() []string {
	var out []string
	strong := StrongProtocols()[r.Protocol]
	if strong && r.SCFails > 0 {
		out = append(out, fmt.Sprintf("%d/%d schedules not sequentially consistent", r.SCFails, r.Schedules))
	}
	if strong && r.PerLocFails > 0 {
		out = append(out, fmt.Sprintf("%d/%d schedules not per-location linearizable", r.PerLocFails, r.Schedules))
	}
	if r.InvariantFails > 0 {
		out = append(out, fmt.Sprintf("%d/%d schedules broke protocol invariants", r.InvariantFails, r.Schedules))
	}
	if r.Undecided > 0 {
		out = append(out, fmt.Sprintf("%d/%d schedules left the SC search undecided", r.Undecided, r.Schedules))
	}
	return out
}
