package consistency

import (
	"fmt"
	"math/rand"
)

// Instr is one instruction of a simulated multi-node program.
type Instr struct {
	Op  Op
	Loc uint64 // reads and writes
	Val uint64 // writes
}

// R builds a read instruction.
func R(loc uint64) Instr { return Instr{Op: OpRead, Loc: loc} }

// W builds a write instruction.
func W(loc, val uint64) Instr { return Instr{Op: OpWrite, Loc: loc, Val: val} }

// Acq builds an acquire fence.
func Acq() Instr { return Instr{Op: OpAcquire} }

// Rel builds a release fence.
func Rel() Instr { return Instr{Op: OpRelease} }

// Program is one instruction list per node, executed in program order.
type Program [][]Instr

// Ops counts the program's reads and writes.
func (p Program) Ops() int {
	n := 0
	for _, is := range p {
		for _, i := range is {
			if i.Op == OpRead || i.Op == OpWrite {
				n++
			}
		}
	}
	return n
}

// RoundRobin returns the canonical schedule interleaving the program's
// nodes one instruction at a time.
func (p Program) RoundRobin() []int {
	idx := make([]int, len(p))
	var sched []int
	for {
		progress := false
		for n := range p {
			if idx[n] < len(p[n]) {
				sched = append(sched, n)
				idx[n]++
				progress = true
			}
		}
		if !progress {
			return sched
		}
	}
}

// RunProgram executes prog against the protocol under the given
// schedule — a sequence of node indices, each meaning "that node issues
// its next instruction now" — and records the history. The driver
// executes exactly one instruction per step, so the recorded Seq order
// is the real-time order. Everything is deterministic: same protocol
// state machine, same program, same schedule ⇒ the same history.
func RunProgram(p Protocol, prog Program, schedule []int) (History, error) {
	return RunProgramChecked(p, prog, schedule, nil)
}

// RunProgramChecked is RunProgram with a per-step hook: after every
// executed instruction, after(step) runs and a non-nil error aborts the
// run. The fuzz harness uses it to hold the protocol's invariants at
// every intermediate state, not just at the end of the run.
func RunProgramChecked(p Protocol, prog Program, schedule []int, after func(step int) error) (History, error) {
	if len(prog) != p.Nodes() {
		return History{}, fmt.Errorf("consistency: program has %d nodes, protocol %d", len(prog), p.Nodes())
	}
	h := History{Nodes: len(prog)}
	idx := make([]int, len(prog))
	for step, n := range schedule {
		if n < 0 || n >= len(prog) {
			return History{}, fmt.Errorf("consistency: schedule step %d names node %d of %d", step, n, len(prog))
		}
		if idx[n] >= len(prog[n]) {
			return History{}, fmt.Errorf("consistency: schedule step %d resumes node %d past its %d instructions", step, n, len(prog[n]))
		}
		in := prog[n][idx[n]]
		idx[n]++
		ev := Event{Seq: step, Node: n, Op: in.Op, Loc: in.Loc, Value: in.Val}
		var err error
		switch in.Op {
		case OpRead:
			ev.Value, ev.Cost, err = p.Read(n, in.Loc)
		case OpWrite:
			ev.Cost, err = p.Write(n, in.Loc, in.Val)
		case OpAcquire:
			ev.Cost, err = p.Acquire(n)
		case OpRelease:
			ev.Cost, err = p.Release(n)
		default:
			err = fmt.Errorf("consistency: unknown op %d", in.Op)
		}
		if err != nil {
			return History{}, fmt.Errorf("consistency: step %d (%s): %w", step, ev, err)
		}
		h.Events = append(h.Events, ev)
		if after != nil {
			if err := after(step); err != nil {
				return History{}, fmt.Errorf("consistency: after step %d (%s): %w", step, ev, err)
			}
		}
	}
	for n := range prog {
		if idx[n] != len(prog[n]) {
			return History{}, fmt.Errorf("consistency: schedule left node %d at instruction %d of %d", n, idx[n], len(prog[n]))
		}
	}
	return h, nil
}

// RandomProgram generates a seeded random multi-node access program:
// opsPerNode reads/writes per node over locs shared locations, writeFrac
// of them stores (each with a globally unique nonzero value, so the
// checker can identify writers), and — when fences is set — an
// occasional release after stores and acquire before loads.
func RandomProgram(seed int64, nodes, opsPerNode, locs int, writeFrac float64, fences bool) Program {
	rng := rand.New(rand.NewSource(seed))
	prog := make(Program, nodes)
	val := uint64(0)
	for n := 0; n < nodes; n++ {
		for i := 0; i < opsPerNode; i++ {
			loc := uint64(rng.Intn(locs))
			if rng.Float64() < writeFrac {
				val++
				prog[n] = append(prog[n], W(loc, val))
				if fences && rng.Intn(3) == 0 {
					prog[n] = append(prog[n], Rel())
				}
			} else {
				if fences && rng.Intn(3) == 0 {
					prog[n] = append(prog[n], Acq())
				}
				prog[n] = append(prog[n], R(loc))
			}
		}
	}
	return prog
}

// RandomSchedule generates a seeded random interleaving of the
// program's instructions.
func RandomSchedule(seed int64, prog Program) []int {
	rng := rand.New(rand.NewSource(seed))
	remaining := make([]int, len(prog))
	total := 0
	for n := range prog {
		remaining[n] = len(prog[n])
		total += len(prog[n])
	}
	sched := make([]int, 0, total)
	for len(sched) < total {
		pick := rng.Intn(total - len(sched))
		for n := range remaining {
			if remaining[n] == 0 {
				continue
			}
			if pick < remaining[n] {
				sched = append(sched, n)
				remaining[n]--
				break
			}
			pick -= remaining[n]
		}
	}
	return sched
}
