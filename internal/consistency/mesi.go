package consistency

import (
	"repro/internal/cohdsm"
	"repro/internal/params"
)

// MESI is the second coherent comparator: the MESI variant of the
// internal/cohdsm directory machine behind the Protocol interface. It
// promises the same model as MSI — sequential consistency, in fact
// linearizability under the lab's atomic-issue contract — because the E
// state changes only *cost*, never visibility: a silent E→M upgrade is
// still an atomic local transition on the only copy in the system, and
// every other access completes through the directory exactly as under
// MSI. The lab's point in carrying both is the strength/cost split:
// identical verdict columns, different latency curves (private
// read-then-write cheaper, read-shared data dearer).
type MESI struct {
	m *cohdsm.Model
}

// NewMESIProtocol builds the MESI coherent protocol over nodes nodes.
func NewMESIProtocol(p params.Params, nodes int) (*MESI, error) {
	m, err := cohdsm.NewMESI(p, nodes)
	if err != nil {
		return nil, err
	}
	return &MESI{m: m}, nil
}

// Name returns "mesi".
func (c *MESI) Name() string { return "mesi" }

// Model names the promised consistency model.
func (c *MESI) Model() string { return "sequential consistency" }

// Nodes returns the domain size.
func (c *MESI) Nodes() int { return c.m.Nodes() }

// Directory exposes the underlying cohdsm model (metrics, diagnostics).
func (c *MESI) Directory() *cohdsm.Model { return c.m }

// Read performs one coherent load.
func (c *MESI) Read(node int, loc uint64) (uint64, params.Duration, error) {
	return c.m.ReadLine(node, loc)
}

// Write performs one coherent store.
func (c *MESI) Write(node int, loc uint64, val uint64) (params.Duration, error) {
	return c.m.WriteLine(node, loc, val)
}

// Acquire is free under hardware coherence.
func (c *MESI) Acquire(node int) (params.Duration, error) { return 0, nil }

// Release is free under hardware coherence.
func (c *MESI) Release(node int) (params.Duration, error) { return 0, nil }

// SelfCheck runs the directory invariants.
func (c *MESI) SelfCheck() error { return c.m.CheckInvariants() }
