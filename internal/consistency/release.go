package consistency

import (
	"fmt"

	"repro/internal/params"
)

// rcBufferDepth bounds the release-consistent write buffer. An overflow
// forces an early (implicit) release — generous so litmus programs never
// hit it and the protocol's weakness stays observable.
const rcBufferDepth = 32

// ReleaseConsistent is the federated-coherence / release-consistency
// mode: writes accumulate in a per-node buffer that publishes to home
// memory only at Release, and reads are served from a node-local cache
// that may be stale until Acquire discards it. Between fence pairs the
// protocol promises nothing across nodes — store buffering, message
// passing without an acquire, and IRIW anomalies are all observable —
// but a release/acquire pair restores ordering, which is exactly the
// contract data-race-free programs need and the cheapest of the three
// protocols to run.
type ReleaseConsistent struct {
	f     fabric
	mem   map[uint64]uint64
	buf   [][]pendingWrite
	cache []map[uint64]uint64

	// BufferedWrites, Publishes, CacheHits, and CacheFills are protocol
	// event counts (Publishes counts writes applied at releases).
	BufferedWrites, Publishes, CacheHits, CacheFills uint64
}

// NewReleaseConsistent builds the release-consistency protocol over
// nodes nodes.
func NewReleaseConsistent(p params.Params, nodes int) (*ReleaseConsistent, error) {
	f, err := newFabric(p, nodes)
	if err != nil {
		return nil, err
	}
	c := &ReleaseConsistent{
		f:     f,
		mem:   make(map[uint64]uint64),
		buf:   make([][]pendingWrite, nodes),
		cache: make([]map[uint64]uint64, nodes),
	}
	for i := range c.cache {
		c.cache[i] = make(map[uint64]uint64)
	}
	return c, nil
}

// Name returns "rc".
func (c *ReleaseConsistent) Name() string { return "rc" }

// Model names the promised consistency model.
func (c *ReleaseConsistent) Model() string { return "release consistency" }

// Nodes returns the domain size.
func (c *ReleaseConsistent) Nodes() int { return c.f.nodes }

func (c *ReleaseConsistent) checkNode(node int) error {
	if node < 0 || node >= c.f.nodes {
		return fmt.Errorf("consistency: node %d outside domain of %d", node, c.f.nodes)
	}
	return nil
}

// Read serves from the node's own write buffer first (its writes are
// always visible to itself), then the possibly-stale local cache, and
// only on a cold miss pays the trip to home memory.
func (c *ReleaseConsistent) Read(node int, loc uint64) (uint64, params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, 0, err
	}
	for i := len(c.buf[node]) - 1; i >= 0; i-- {
		if c.buf[node][i].loc == loc {
			return c.buf[node][i].val, c.f.p.L1Latency, nil
		}
	}
	if v, ok := c.cache[node][loc]; ok {
		c.CacheHits++
		return v, c.f.p.L1Latency, nil
	}
	v := c.mem[loc]
	c.cache[node][loc] = v
	c.CacheFills++
	return v, c.f.memCost(node, loc), nil
}

// Write buffers the store and write-throughs the node's own cache so
// program order holds locally; other nodes see nothing until Release.
func (c *ReleaseConsistent) Write(node int, loc uint64, val uint64) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	lat := c.f.p.L1Latency
	if len(c.buf[node]) >= rcBufferDepth {
		// Implicit release: a full buffer publishes early.
		l, err := c.Release(node)
		if err != nil {
			return 0, err
		}
		lat += l
	}
	c.buf[node] = append(c.buf[node], pendingWrite{loc: loc, val: val})
	c.cache[node][loc] = val
	c.BufferedWrites++
	return lat, nil
}

// Acquire discards the node's local cache: subsequent reads refetch
// from home memory and observe everything published before it.
func (c *ReleaseConsistent) Acquire(node int) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	c.cache[node] = make(map[uint64]uint64)
	return c.f.p.L1Latency, nil
}

// Release publishes the node's buffered writes to home memory in
// program order.
func (c *ReleaseConsistent) Release(node int) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	var lat params.Duration
	for _, w := range c.buf[node] {
		c.mem[w.loc] = w.val
		lat += c.f.memCost(node, w.loc)
		c.Publishes++
	}
	c.buf[node] = c.buf[node][:0]
	return lat, nil
}

// SelfCheck verifies the buffer bound.
func (c *ReleaseConsistent) SelfCheck() error {
	for n, b := range c.buf {
		if len(b) > rcBufferDepth {
			return fmt.Errorf("consistency: node %d write buffer holds %d entries (depth %d)", n, len(b), rcBufferDepth)
		}
	}
	return nil
}
