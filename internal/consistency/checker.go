package consistency

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// scStateCap bounds the sequential-consistency frontier search. The
// check is NP-hard in general (Gibbons–Korach), so the search refuses
// to answer rather than silently time out: past the cap CheckSC returns
// an error and the verdict is "undecided", never a wrong pass/fail.
const scStateCap = 2_000_000

// Verdict is the checker's judgment of one recorded history.
type Verdict struct {
	// SC reports whether some total order of the history's reads and
	// writes respects per-node program order and reads-last-write.
	SC bool
	// PerLoc reports per-location linearizability under the lab's
	// atomic-issue contract: the driver executes one operation per step,
	// so each operation's linearization point — if the protocol were
	// linearizable — is its issue step, and every read must return the
	// newest value written to its location at issue time.
	PerLoc bool
	// SCStates is how many frontier states the SC search explored.
	SCStates int
	// PerLocReason names the first violating event, empty when clean.
	PerLocReason string
}

// Summary renders the verdict as a compact pass/fail pair.
func (v Verdict) Summary() string {
	word := func(ok bool) string {
		if ok {
			return "pass"
		}
		return "FAIL"
	}
	return fmt.Sprintf("SC=%s perloc=%s", word(v.SC), word(v.PerLoc))
}

// Check runs both checkers over the history. The error is non-nil only
// when the SC search exceeded its state cap and the verdict is
// undecided.
func Check(h History) (Verdict, error) {
	v := Verdict{}
	v.PerLoc, v.PerLocReason = CheckPerLocation(h)
	var err error
	v.SC, v.SCStates, err = CheckSC(h)
	return v, err
}

// CheckPerLocation validates per-location linearizability under the
// atomic-issue contract: scanning in global issue order with writes
// taking effect at their step, every read must see the newest write to
// its location (or zero before any write). A protocol that buffers
// writes or caches stale values fails here even on histories that are
// still explainable by *some* legal reordering — this is the strict
// check, CheckSC the permissive one.
func CheckPerLocation(h History) (bool, string) {
	mem := make(map[uint64]uint64)
	for _, e := range h.Events {
		switch e.Op {
		case OpWrite:
			mem[e.Loc] = e.Value
		case OpRead:
			if mem[e.Loc] != e.Value {
				return false, fmt.Sprintf("step %d: %s but location holds %d at issue time", e.Seq, e, mem[e.Loc])
			}
		}
	}
	return true, ""
}

// CheckSC decides whether the history is sequentially consistent: some
// interleaving of the per-node program orders in which every read
// returns the latest earlier write to its location (zero initially).
// It runs a frontier-state depth-first search — the state is one
// program counter per node plus the memory image — memoizing failed
// states so each is expanded once. Returns the verdict, the number of
// states explored, and an error iff the search hit scStateCap before
// deciding.
func CheckSC(h History) (bool, int, error) {
	s := &scSearch{
		nodes:   h.perNode(),
		mem:     make(map[uint64]uint64),
		visited: make(map[string]struct{}),
	}
	locs := make(map[uint64]struct{})
	for _, po := range s.nodes {
		for _, e := range po {
			locs[e.Loc] = struct{}{}
		}
	}
	for l := range locs {
		s.locs = append(s.locs, l)
		s.mem[l] = 0
	}
	sort.Slice(s.locs, func(i, j int) bool { return s.locs[i] < s.locs[j] })
	s.idx = make([]int, len(s.nodes))
	ok, err := s.run()
	return ok, s.explored, err
}

// scSearch is the frontier-state DFS of CheckSC.
type scSearch struct {
	nodes    [][]Event // per-node program order, reads and writes only
	locs     []uint64  // every location touched, ascending
	mem      map[uint64]uint64
	idx      []int // next-instruction frontier
	visited  map[string]struct{}
	explored int
}

// key serializes the frontier and memory image. Memory must be part of
// the key: two paths reaching the same frontier can leave different
// last writers per location.
func (s *scSearch) key() string {
	var b strings.Builder
	for _, i := range s.idx {
		b.WriteString(strconv.Itoa(i))
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, l := range s.locs {
		b.WriteString(strconv.FormatUint(s.mem[l], 10))
		b.WriteByte(',')
	}
	return b.String()
}

func (s *scSearch) run() (bool, error) {
	done := true
	for n := range s.nodes {
		if s.idx[n] < len(s.nodes[n]) {
			done = false
			break
		}
	}
	if done {
		return true, nil
	}
	k := s.key()
	if _, dead := s.visited[k]; dead {
		return false, nil
	}
	s.explored++
	if s.explored > scStateCap {
		return false, fmt.Errorf("consistency: SC check undecided after %d states", s.explored)
	}
	for n := range s.nodes {
		if s.idx[n] >= len(s.nodes[n]) {
			continue
		}
		e := s.nodes[n][s.idx[n]]
		switch e.Op {
		case OpRead:
			if s.mem[e.Loc] != e.Value {
				continue // this read cannot execute yet on this path
			}
			s.idx[n]++
			ok, err := s.run()
			s.idx[n]--
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		case OpWrite:
			old := s.mem[e.Loc]
			s.mem[e.Loc] = e.Value
			s.idx[n]++
			ok, err := s.run()
			s.idx[n]--
			s.mem[e.Loc] = old
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
	}
	s.visited[k] = struct{}{}
	return false, nil
}
