// Package consistency is the consistency-model laboratory: pluggable
// coherence/consistency protocols over the same mesh and calibration the
// rest of the simulator uses, a history recorder for multi-node
// programs, and checkers that validate recorded histories against
// sequential consistency and per-location linearizability.
//
// The paper's core claim is that *dropping* inter-node coherency wins
// for memory-hungry applications. This package makes the other half of
// that trade testable in-repo: each protocol states the consistency
// model it promises, litmus tests (store buffering, message passing,
// IRIW, coherence order) record what programs actually observe, and the
// checker decides whether the observation was sequentially consistent —
// so the directory-MSI comparator is validated as a real SC machine and
// the cheap modes are shown to be exactly as weak as advertised, rather
// than both being asserted through cost curves alone.
//
// Four protocols implement the interface:
//
//   - "msi": the directory-based MSI coherent DSM (internal/cohdsm),
//     promising sequential consistency — every access is globally
//     visible before it completes.
//   - "mesi": the MESI variant of the same machine — an exclusive-clean
//     E state with silent E→M upgrade and writeback-free clean drops.
//     Same promised model as msi (E changes cost, never visibility),
//     different latency curve.
//   - "rmc": the paper's non-coherent remote-memory mode with posted
//     writes — a per-node FIFO store buffer over single-copy home
//     memory, which is exactly total store order (store-buffering
//     reordering is observable; message passing and IRIW are not).
//   - "rc": release consistency — an unordered write buffer that
//     publishes only at Release, and a node-local read cache that sees
//     fresh values only after Acquire.
//
// Determinism contract (DESIGN.md §7/§13): a protocol is a pure state
// machine — same program, same schedule, same history, same verdict, at
// any -parallel worker count and across reruns.
package consistency

import (
	"fmt"

	"repro/internal/cohdsm"
	"repro/internal/params"
)

// Op is one history event kind.
type Op uint8

// Event kinds. Reads and writes carry a location and value; acquire and
// release are per-node fences (release publishes the node's buffered
// writes, acquire discards its stale local view).
const (
	OpRead Op = iota
	OpWrite
	OpAcquire
	OpRelease
)

// String returns the litmus-notation name of the op.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "R"
	case OpWrite:
		return "W"
	case OpAcquire:
		return "acq"
	case OpRelease:
		return "rel"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one recorded protocol operation.
type Event struct {
	// Seq is the global issue index: the driver executes exactly one
	// operation per step, so Seq is also the real-time order the
	// per-location linearizability check runs in.
	Seq int
	// Node is the issuing node (0-based).
	Node int
	// Op is the operation kind.
	Op Op
	// Loc is the line/word identifier (reads and writes).
	Loc uint64
	// Value is the value written, or the value the read returned.
	Value uint64
	// Cost is the simulated latency the protocol charged for the op.
	Cost params.Duration
}

// String renders an event in litmus notation, e.g. "n0: W x3 = 1".
func (e Event) String() string {
	switch e.Op {
	case OpRead, OpWrite:
		return fmt.Sprintf("n%d: %s x%d = %d", e.Node, e.Op, e.Loc, e.Value)
	default:
		return fmt.Sprintf("n%d: %s", e.Node, e.Op)
	}
}

// History is the recorded trace of one program execution: every event in
// global issue order.
type History struct {
	Nodes  int
	Events []Event
}

// TotalCost sums the simulated latency of every recorded op.
func (h History) TotalCost() params.Duration {
	var total params.Duration
	for _, e := range h.Events {
		total += e.Cost
	}
	return total
}

// Ops counts the reads and writes in the history (fences excluded).
func (h History) Ops() int {
	n := 0
	for _, e := range h.Events {
		if e.Op == OpRead || e.Op == OpWrite {
			n++
		}
	}
	return n
}

// perNode splits the history into per-node program-order event lists,
// keeping only reads and writes (fences constrain implementations, not
// the SC definition over reads/writes).
func (h History) perNode() [][]Event {
	out := make([][]Event, h.Nodes)
	for _, e := range h.Events {
		if e.Op == OpRead || e.Op == OpWrite {
			out[e.Node] = append(out[e.Node], e)
		}
	}
	return out
}

// Protocol is one pluggable consistency protocol: a deterministic state
// machine over n nodes and line-granular locations, returning for every
// operation the value observed (reads) and the simulated latency the
// protocol charges. Implementations are not internally synchronized —
// like every simulated substrate they are owned by one goroutine.
type Protocol interface {
	// Name is the short registry identifier ("msi", "rmc", "rc").
	Name() string
	// Model names the consistency model the protocol promises.
	Model() string
	// Nodes returns the domain's node count.
	Nodes() int
	// Read performs one load.
	Read(node int, loc uint64) (uint64, params.Duration, error)
	// Write performs one store.
	Write(node int, loc uint64, val uint64) (params.Duration, error)
	// Acquire is the read fence: after it, the node's reads observe
	// everything published before the matching release.
	Acquire(node int) (params.Duration, error)
	// Release is the write fence: it publishes the node's buffered
	// writes to every other node.
	Release(node int) (params.Duration, error)
	// SelfCheck verifies the protocol's internal invariants (the MSI
	// directory invariants; buffer bounds elsewhere).
	SelfCheck() error
}

// Names lists the registered protocol names in presentation order.
func Names() []string { return []string{"msi", "mesi", "rmc", "rc"} }

// NewProtocol builds a protocol by registry name over nodes nodes of the
// mesh described by p.
func NewProtocol(name string, p params.Params, nodes int) (Protocol, error) {
	switch name {
	case "msi":
		return NewMSI(p, nodes)
	case "mesi":
		return NewMESIProtocol(p, nodes)
	case "rmc":
		return NewNonCoherent(p, nodes)
	case "rc":
		return NewReleaseConsistent(p, nodes)
	}
	return nil, fmt.Errorf("consistency: unknown protocol %q (have %v)", name, Names())
}

// Directoried is implemented by the coherent protocols (msi, mesi) to
// expose their underlying cohdsm directory for instrumentation.
type Directoried interface {
	Directory() *cohdsm.Model
}
