package consistency

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mesh"
	"repro/internal/params"
)

// fabric is the shared cost substrate of the uncached protocols: the
// same mesh geometry and calibration every other layer of the simulator
// uses, with lines homed round-robin across the participating nodes.
type fabric struct {
	p     params.Params
	topo  mesh.Topology
	nodes int
}

func newFabric(p params.Params, nodes int) (fabric, error) {
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		return fabric{}, err
	}
	if nodes < 1 || nodes > topo.Nodes() {
		return fabric{}, fmt.Errorf("consistency: %d nodes outside the %d-node mesh", nodes, topo.Nodes())
	}
	return fabric{p: p, topo: topo, nodes: nodes}, nil
}

// home returns the node index a location's memory lives on.
func (f fabric) home(loc uint64) int { return int(loc) % f.nodes }

// hops returns the mesh distance between two node indices.
func (f fabric) hops(a, b int) int {
	return f.topo.Hops(addr.NodeID(a+1), addr.NodeID(b+1))
}

// memCost is the latency of one uncached access from node to loc's home
// memory: the local DRAM path at home, the full RMC round trip remotely.
func (f fabric) memCost(node int, loc uint64) params.Duration {
	h := f.home(loc)
	if h == node {
		return f.p.L1Latency + f.p.DRAMLatency
	}
	return f.p.RemoteRoundTrip(f.hops(node, h))
}

// pendingWrite is one buffered store.
type pendingWrite struct {
	loc uint64
	val uint64
}

// NonCoherent is the paper's remote-memory mode: no line is ever cached
// outside its home node, every read goes to home memory, and stores are
// posted — they complete as soon as the client RMC accepts them and
// drain to home memory in FIFO order. That per-node FIFO store buffer
// over single-copy memory is exactly total store order: a node can read
// its own posted store early (store forwarding) and can read another
// location *before* its posted store is globally visible (store
// buffering), but stores from one node are never reordered with each
// other and all nodes agree on a single store order — message passing
// and IRIW anomalies are impossible.
type NonCoherent struct {
	f     fabric
	mem   map[uint64]uint64
	buf   [][]pendingWrite
	depth int

	// PostedWrites, Drains, and Forwards are protocol event counts.
	PostedWrites, Drains, Forwards uint64
}

// NewNonCoherent builds the posted-write RMC protocol over nodes nodes.
// The store-buffer depth is the calibration's RemoteOutstanding bound.
func NewNonCoherent(p params.Params, nodes int) (*NonCoherent, error) {
	f, err := newFabric(p, nodes)
	if err != nil {
		return nil, err
	}
	depth := p.RemoteOutstanding
	if depth < 1 {
		depth = 1
	}
	return &NonCoherent{
		f:     f,
		mem:   make(map[uint64]uint64),
		buf:   make([][]pendingWrite, nodes),
		depth: depth,
	}, nil
}

// Name returns "rmc".
func (c *NonCoherent) Name() string { return "rmc" }

// Model names the promised consistency model.
func (c *NonCoherent) Model() string { return "total store order (posted writes)" }

// Nodes returns the domain size.
func (c *NonCoherent) Nodes() int { return c.f.nodes }

func (c *NonCoherent) checkNode(node int) error {
	if node < 0 || node >= c.f.nodes {
		return fmt.Errorf("consistency: node %d outside domain of %d", node, c.f.nodes)
	}
	return nil
}

// drainOldest applies the node's oldest buffered store to home memory.
func (c *NonCoherent) drainOldest(node int) params.Duration {
	w := c.buf[node][0]
	c.buf[node] = c.buf[node][1:]
	c.mem[w.loc] = w.val
	c.Drains++
	return c.f.memCost(node, w.loc)
}

// Read returns the newest matching store in the node's own buffer
// (store forwarding) or the home-memory value.
func (c *NonCoherent) Read(node int, loc uint64) (uint64, params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, 0, err
	}
	for i := len(c.buf[node]) - 1; i >= 0; i-- {
		if c.buf[node][i].loc == loc {
			c.Forwards++
			return c.buf[node][i].val, c.f.p.L1Latency, nil
		}
	}
	return c.mem[loc], c.f.memCost(node, loc), nil
}

// Write posts the store: it completes at client-occupancy cost and
// drains later. A full buffer drains its oldest entry first, so the
// buffer never reorders and never exceeds its depth.
func (c *NonCoherent) Write(node int, loc uint64, val uint64) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	lat := c.f.p.RMCClientOccupancy
	if len(c.buf[node]) >= c.depth {
		lat += c.drainOldest(node)
	}
	c.buf[node] = append(c.buf[node], pendingWrite{loc: loc, val: val})
	c.PostedWrites++
	return lat, nil
}

// Acquire is free: reads are always served by home memory, never by a
// stale local copy.
func (c *NonCoherent) Acquire(node int) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	return 0, nil
}

// Release drains the node's store buffer to home memory in FIFO order.
func (c *NonCoherent) Release(node int) (params.Duration, error) {
	if err := c.checkNode(node); err != nil {
		return 0, err
	}
	var lat params.Duration
	for len(c.buf[node]) > 0 {
		lat += c.drainOldest(node)
	}
	return lat, nil
}

// SelfCheck verifies the buffer bound.
func (c *NonCoherent) SelfCheck() error {
	for n, b := range c.buf {
		if len(b) > c.depth {
			return fmt.Errorf("consistency: node %d store buffer holds %d entries (depth %d)", n, len(b), c.depth)
		}
	}
	return nil
}
