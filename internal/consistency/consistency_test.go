package consistency

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/params"
)

// TestLitmusVerdicts is the suite's ground-truth table: every litmus
// test against every protocol must earn exactly its expected verdict.
// This is where the protocols are shown to differ — MSI passes
// everything, the posted-write RMC mode exhibits the TSO anomalies (SB
// reordering, read-read lag), and release consistency is weaker still
// until the acquire is inserted.
func TestLitmusVerdicts(t *testing.T) {
	p := params.Default()
	results, err := RunSuite(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(Suite()) * len(Names()); len(results) != want {
		t.Fatalf("got %d results, want %d", len(results), want)
	}
	for _, r := range results {
		if !r.Match {
			t.Errorf("%s/%s: verdict %+v, want %+v\nhistory:", r.Test, r.Protocol, r.Verdict, r.Expected)
			for _, e := range r.History.Events {
				t.Errorf("  %s (seq %d)", e, e.Seq)
			}
		}
	}
	// The acceptance shape spelled out: SB reordering is observable
	// under the weak protocols and never under MSI.
	byKey := make(map[string]LitmusResult)
	for _, r := range results {
		byKey[r.Test+"/"+r.Protocol] = r
	}
	if !byKey["sb/msi"].Verdict.SC {
		t.Error("sb/msi: MSI must forbid store-buffering reordering")
	}
	for _, weak := range []string{"rmc", "rc"} {
		if byKey["sb/"+weak].Verdict.SC {
			t.Errorf("sb/%s: store-buffering reordering must be observable", weak)
		}
	}
}

// TestLitmusExpectationsCoverAllProtocols keeps the suite honest as
// protocols are added.
func TestLitmusExpectationsCoverAllProtocols(t *testing.T) {
	for _, l := range Suite() {
		for _, name := range Names() {
			if _, ok := l.Expect[name]; !ok {
				t.Errorf("%s: missing expectation for %q", l.Name, name)
			}
		}
	}
}

// TestCheckSC exercises the checker directly on hand-built histories.
func TestCheckSC(t *testing.T) {
	ev := func(seq, node int, op Op, loc, val uint64) Event {
		return Event{Seq: seq, Node: node, Op: op, Loc: loc, Value: val}
	}
	cases := []struct {
		name   string
		h      History
		sc     bool
		perLoc bool
	}{
		{
			name:   "empty",
			h:      History{Nodes: 2},
			sc:     true,
			perLoc: true,
		},
		{
			name: "single-writer-reader",
			h: History{Nodes: 2, Events: []Event{
				ev(0, 0, OpWrite, 0, 7),
				ev(1, 1, OpRead, 0, 7),
			}},
			sc:     true,
			perLoc: true,
		},
		{
			name: "read-from-nowhere",
			h: History{Nodes: 2, Events: []Event{
				ev(0, 0, OpWrite, 0, 7),
				ev(1, 1, OpRead, 0, 9),
			}},
			sc:     false,
			perLoc: false,
		},
		{
			// The reader lags the writer by one step: SC explains it by
			// reordering, the per-location check does not.
			name: "stale-read-is-sc-but-not-linearizable",
			h: History{Nodes: 2, Events: []Event{
				ev(0, 0, OpWrite, 0, 1),
				ev(1, 1, OpRead, 0, 0),
			}},
			sc:     true,
			perLoc: false,
		},
		{
			// n1 observes x's two writes in reverse order: no
			// interleaving explains it.
			name: "coherence-order-violation",
			h: History{Nodes: 2, Events: []Event{
				ev(0, 0, OpWrite, 0, 1),
				ev(1, 1, OpRead, 0, 2),
				ev(2, 0, OpWrite, 0, 2),
				ev(3, 1, OpRead, 0, 1),
			}},
			sc:     false,
			perLoc: false,
		},
		{
			// Fences never change the SC verdict: they are stripped
			// before the search.
			name: "fences-ignored",
			h: History{Nodes: 2, Events: []Event{
				ev(0, 0, OpWrite, 0, 7),
				ev(1, 0, OpRelease, 0, 0),
				ev(2, 1, OpAcquire, 0, 0),
				ev(3, 1, OpRead, 0, 7),
			}},
			sc:     true,
			perLoc: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := Check(tc.h)
			if err != nil {
				t.Fatal(err)
			}
			if v.SC != tc.sc {
				t.Errorf("SC = %v, want %v", v.SC, tc.sc)
			}
			if v.PerLoc != tc.perLoc {
				t.Errorf("PerLoc = %v, want %v", v.PerLoc, tc.perLoc)
			}
		})
	}
}

// TestCheckSCMemoization runs the checker on a history large enough
// that naive enumeration of interleavings (20!/(10!10!) ≈ 185k paths
// per memory image) would blow the cap without frontier memoization.
func TestCheckSCMemoization(t *testing.T) {
	h := History{Nodes: 2}
	seq := 0
	for i := 0; i < 10; i++ {
		h.Events = append(h.Events,
			Event{Seq: seq, Node: 0, Op: OpWrite, Loc: uint64(i % 2), Value: uint64(i + 1)},
			Event{Seq: seq + 1, Node: 1, Op: OpWrite, Loc: uint64(i%2) + 2, Value: uint64(i + 1)})
		seq += 2
	}
	ok, states, err := CheckSC(h)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("write-only history must be SC")
	}
	if states > 100_000 {
		t.Fatalf("memoization ineffective: %d states explored", states)
	}
}

// TestRunProgramValidation covers the driver's error paths.
func TestRunProgramValidation(t *testing.T) {
	p := params.Default()
	proto, err := NewProtocol("msi", p, 2)
	if err != nil {
		t.Fatal(err)
	}
	prog := Program{{W(0, 1)}, {R(0)}}
	if _, err := RunProgram(proto, Program{{W(0, 1)}}, []int{0}); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := RunProgram(proto, prog, []int{0, 2}); err == nil {
		t.Error("out-of-range schedule node accepted")
	}
	if _, err := RunProgram(proto, prog, []int{0, 0}); err == nil {
		t.Error("schedule overrunning a node's program accepted")
	}
	if _, err := RunProgram(proto, prog, []int{0}); err == nil {
		t.Error("incomplete schedule accepted")
	}
}

// TestProtocolRegistry covers NewProtocol and the metadata surface.
func TestProtocolRegistry(t *testing.T) {
	p := params.Default()
	for _, name := range Names() {
		proto, err := NewProtocol(name, p, 4)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if proto.Name() != name {
			t.Errorf("%s: Name() = %q", name, proto.Name())
		}
		if proto.Model() == "" {
			t.Errorf("%s: empty Model()", name)
		}
		if proto.Nodes() != 4 {
			t.Errorf("%s: Nodes() = %d", name, proto.Nodes())
		}
		if err := proto.SelfCheck(); err != nil {
			t.Errorf("%s: fresh SelfCheck: %v", name, err)
		}
	}
	if _, err := NewProtocol("moesi", p, 4); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := NewProtocol("msi", p, 0); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewProtocol("rmc", p, 17); err == nil {
		t.Error("nodes beyond the mesh accepted")
	}
}

// TestProtocolOpsChargeCost checks every protocol charges nonzero
// latency for remote traffic — the experiment's comparison would be
// vacuous otherwise.
func TestProtocolOpsChargeCost(t *testing.T) {
	p := params.Default()
	for _, name := range Names() {
		proto, err := NewProtocol(name, p, 4)
		if err != nil {
			t.Fatal(err)
		}
		prog := Program{
			{W(1, 1), Rel()},
			{Acq(), R(1)},
			{W(2, 2), Rel()},
			{Acq(), R(2)},
		}
		h, err := RunProgram(proto, prog, prog.RoundRobin())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h.TotalCost() <= 0 {
			t.Errorf("%s: zero total cost", name)
		}
		if h.Ops() != 4 {
			t.Errorf("%s: Ops() = %d, want 4", name, h.Ops())
		}
	}
}

// mutateOneRead returns a copy of the history with the value of its
// i-th read flipped to a value no write ever produced.
func mutateOneRead(h History, i int) (History, bool) {
	out := History{Nodes: h.Nodes, Events: append([]Event(nil), h.Events...)}
	seen := 0
	for j, e := range out.Events {
		if e.Op != OpRead {
			continue
		}
		if seen == i {
			out.Events[j].Value = e.Value + 0xdead0001
			return out, true
		}
		seen++
	}
	return out, false
}

// sameReads reports whether two histories of the same program observed
// identical values at every read.
func sameReads(a, b History) bool {
	if len(a.Events) != len(b.Events) {
		return false
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Op != eb.Op || ea.Node != eb.Node || ea.Loc != eb.Loc {
			return false
		}
		if ea.Op == OpRead && ea.Value != eb.Value {
			return false
		}
	}
	return true
}

// TestPropertySCAcceptsProtocolHistories is the seeded property test:
// for random multi-node access programs, every MSI history is accepted
// by both checkers; every non-coherent-mode history whose observed
// reads MSI also produces on the same program/schedule is accepted by
// the SC checker (the rmc runs that diverge exhibited a genuine TSO
// anomaly and are checked to be exactly that — an SC rejection, never a
// crash); and every seeded mutation (a flipped read value no write ever
// produced) is rejected with probability 1.
func TestPropertySCAcceptsProtocolHistories(t *testing.T) {
	p := params.Default()
	const trials = 40
	mutations, matched, diverged := 0, 0, 0
	for seed := int64(0); seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			nodes := 2 + int(seed)%3
			prog := RandomProgram(seed, nodes, 6, 3, 0.5, false)
			sched := RandomSchedule(seed+1000, prog)
			histories := make(map[string]History)
			for _, name := range []string{"msi", "rmc"} {
				proto, err := NewProtocol(name, p, nodes)
				if err != nil {
					t.Fatal(err)
				}
				h, err := RunProgram(proto, prog, sched)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := proto.SelfCheck(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				histories[name] = h
			}
			mv, err := Check(histories["msi"])
			if err != nil {
				t.Fatal(err)
			}
			if !mv.SC {
				t.Error("msi: SC checker rejected a coherent history")
			}
			if !mv.PerLoc {
				t.Errorf("msi: per-location check rejected a coherent history: %s", mv.PerLocReason)
			}
			rv, err := Check(histories["rmc"])
			if err != nil {
				t.Fatal(err)
			}
			if sameReads(histories["msi"], histories["rmc"]) {
				matched++
				if !rv.SC {
					t.Error("rmc: SC checker rejected a history MSI also produces")
				}
			} else {
				diverged++
			}
			// Every single-read mutation must be rejected: the flipped
			// value was never written, so no interleaving and no
			// issue-order scan can explain it.
			for i := 0; ; i++ {
				mut, ok := mutateOneRead(histories["msi"], i)
				if !ok {
					break
				}
				v, err := Check(mut)
				if err != nil {
					t.Fatalf("mutation %d: %v", i, err)
				}
				if v.SC {
					t.Errorf("mutation %d: SC checker accepted a flipped read", i)
				}
				if v.PerLoc {
					t.Errorf("mutation %d: per-location check accepted a flipped read", i)
				}
				mutations++
			}
		})
	}
	if mutations == 0 {
		t.Fatal("property test exercised zero mutations")
	}
	if matched == 0 {
		t.Error("no trial produced matching msi/rmc histories — the acceptance half of the property is vacuous")
	}
	t.Logf("%d matched, %d diverged, %d mutations rejected", matched, diverged, mutations)
}

// TestDeterminism reruns the full litmus suite and a random program and
// demands byte-identical histories and verdicts — the package-level
// determinism contract the experiment's figure relies on.
func TestDeterminism(t *testing.T) {
	p := params.Default()
	a, err := RunSuite(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSuite(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("litmus suite results differ across reruns")
	}
	prog := RandomProgram(42, 3, 8, 4, 0.4, true)
	sched := RandomSchedule(43, prog)
	var prev History
	for i := 0; i < 3; i++ {
		proto, err := NewProtocol("rc", p, 3)
		if err != nil {
			t.Fatal(err)
		}
		h, err := RunProgram(proto, prog, sched)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && !reflect.DeepEqual(prev, h) {
			t.Fatalf("rerun %d produced a different history", i)
		}
		prev = h
	}
}

// TestReleaseConsistentSemantics pins the rc protocol's mechanics:
// stale reads before acquire, fresh after, and buffer overflow forcing
// an implicit release.
func TestReleaseConsistentSemantics(t *testing.T) {
	p := params.Default()
	c, err := NewReleaseConsistent(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Warm node 1's cache with x=0.
	if v, _, err := c.Read(1, 0); err != nil || v != 0 {
		t.Fatalf("cold read = %d, %v", v, err)
	}
	// Node 0 writes and releases.
	if _, err := c.Write(0, 0, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Release(0); err != nil {
		t.Fatal(err)
	}
	// Stale before acquire…
	if v, _, _ := c.Read(1, 0); v != 0 {
		t.Fatalf("pre-acquire read = %d, want stale 0", v)
	}
	// …fresh after.
	if _, err := c.Acquire(1); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Read(1, 0); v != 9 {
		t.Fatalf("post-acquire read = %d, want 9", v)
	}
	// Overflowing the buffer publishes implicitly.
	for i := 0; i <= rcBufferDepth; i++ {
		if _, err := c.Write(0, uint64(100+i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Publishes == 1 {
		t.Error("buffer overflow did not trigger an implicit release")
	}
	if err := c.SelfCheck(); err != nil {
		t.Error(err)
	}
}

// TestNonCoherentSemantics pins the rmc protocol's TSO mechanics:
// store forwarding, FIFO drain, and the depth bound.
func TestNonCoherentSemantics(t *testing.T) {
	p := params.Default()
	c, err := NewNonCoherent(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(0, 5, 1); err != nil {
		t.Fatal(err)
	}
	// The writer forwards its own posted store…
	if v, _, _ := c.Read(0, 5); v != 1 {
		t.Fatalf("store forwarding returned %d", v)
	}
	if c.Forwards != 1 {
		t.Errorf("Forwards = %d, want 1", c.Forwards)
	}
	// …but the other node still sees memory.
	if v, _, _ := c.Read(1, 5); v != 0 {
		t.Fatalf("remote read of posted store = %d, want 0", v)
	}
	// Release drains to memory.
	if _, err := c.Release(0); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Read(1, 5); v != 1 {
		t.Fatalf("post-release read = %d, want 1", v)
	}
	if err := c.SelfCheck(); err != nil {
		t.Error(err)
	}
}
