package consistency

import (
	"testing"

	"repro/internal/params"
)

// FuzzLitmusProgram drives seeded random programs through every
// registered protocol and holds the lab's safety net at every step:
// the protocol state machine never errors, the coherent directories'
// invariants (cohdsm CheckInvariants via SelfCheck) hold after every
// single instruction — not just at the end — and the checkers return a
// verdict (or an explicit undecided) without panicking. The coherent
// protocols must additionally be sequentially consistent on every
// fuzzed history.
func FuzzLitmusProgram(f *testing.F) {
	f.Add(int64(1), uint8(2), uint8(3), uint8(2), false)
	f.Add(int64(7), uint8(3), uint8(4), uint8(1), true)
	f.Add(int64(42), uint8(4), uint8(2), uint8(3), true)
	f.Add(int64(-9), uint8(1), uint8(5), uint8(2), false)
	f.Fuzz(func(t *testing.T, seed int64, nodes, ops, locs uint8, fences bool) {
		n := 1 + int(nodes)%4
		o := 1 + int(ops)%5
		l := 1 + int(locs)%3
		prog := RandomProgram(seed, n, o, l, 0.5, fences)
		sched := RandomSchedule(seed^0x5bf0, prog)
		p := params.Default()
		for _, name := range Names() {
			proto, err := NewProtocol(name, p, n)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			after := func(step int) error { return proto.SelfCheck() }
			h, err := RunProgramChecked(proto, prog, sched, after)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			v, err := Check(h)
			if err != nil {
				// Undecided SC search is a legal outcome, never a crash;
				// at fuzz sizes (≤ 20 ops) it should not occur, so flag
				// it — a cap hit here means the search regressed.
				t.Fatalf("%s: SC search undecided at fuzz size: %v", name, err)
			}
			if StrongProtocols()[name] && (!v.SC || !v.PerLoc) {
				t.Fatalf("%s: fuzzed history violates promised consistency: %s", name, v.Summary())
			}
		}
	})
}
