package consistency

import (
	"fmt"

	"repro/internal/params"
)

// Expectation is the verdict a protocol is expected to earn on one
// litmus test.
type Expectation struct {
	SC     bool
	PerLoc bool
}

// Litmus is one seeded litmus test: a small multi-node program, the one
// fixed schedule that provokes the interesting interleaving, and the
// expected verdict per protocol. The suite is the lab's ground truth —
// the verdicts differ by protocol, which is the whole point: MSI must
// pass everything, the posted-write RMC mode must exhibit exactly the
// TSO anomalies, and release consistency must be weaker still until
// fences are inserted.
type Litmus struct {
	Name     string
	About    string
	Nodes    int
	Prog     Program
	Schedule []int
	Expect   map[string]Expectation
}

// Suite returns the seeded litmus tests.
func Suite() []Litmus {
	const x, y = 0, 1
	all := Expectation{SC: true, PerLoc: true}
	return []Litmus{
		{
			Name:  "sb",
			About: "store buffering: both nodes write then read the other's line; r_x=r_y=0 means both stores were delayed past both loads",
			Nodes: 2,
			Prog: Program{
				{W(x, 1), R(y)},
				{W(y, 1), R(x)},
			},
			Schedule: []int{0, 1, 0, 1},
			Expect: map[string]Expectation{
				"msi":  all,
				"mesi": all,
				"rmc":  {SC: false, PerLoc: false},
				"rc":   {SC: false, PerLoc: false},
			},
		},
		{
			Name:  "mp-rel",
			About: "message passing with release only: the reader warmed its cache before the writer published, and rereads the stale data after seeing the flag",
			Nodes: 2,
			Prog: Program{
				{W(x, 1), W(y, 1), Rel()},
				{R(x), R(y), R(x)},
			},
			Schedule: []int{1, 0, 0, 0, 1, 1},
			Expect: map[string]Expectation{
				"msi":  all,
				"mesi": all,
				"rmc":  all,
				"rc":   {SC: false, PerLoc: false},
			},
		},
		{
			Name:  "mp-rel-acq",
			About: "message passing with the full release/acquire pair: the acquire discards the stale cache, restoring order on every protocol",
			Nodes: 2,
			Prog: Program{
				{W(x, 1), W(y, 1), Rel()},
				{R(x), Acq(), R(y), R(x)},
			},
			Schedule: []int{1, 0, 0, 0, 1, 1, 1},
			Expect: map[string]Expectation{
				"msi":  all,
				"mesi": all,
				"rmc":  all,
				"rc":   all,
			},
		},
		{
			Name:  "iriw",
			About: "independent reads of independent writes: two readers that warmed opposite lines disagree on the order of the two publications",
			Nodes: 4,
			Prog: Program{
				{W(x, 1), Rel()},
				{W(y, 1), Rel()},
				{R(y), R(x), R(y)},
				{R(x), R(y), R(x)},
			},
			Schedule: []int{2, 3, 0, 0, 1, 1, 2, 2, 3, 3},
			Expect: map[string]Expectation{
				"msi":  all,
				"mesi": all,
				"rmc":  all,
				"rc":   {SC: false, PerLoc: false},
			},
		},
		{
			Name:  "corr",
			About: "coherence read-read: a reader interleaved with two same-line writes must not lag the issue order; SC tolerates the lag, linearizability does not",
			Nodes: 2,
			Prog: Program{
				{W(x, 1), W(x, 2)},
				{R(x), R(x)},
			},
			Schedule: []int{0, 1, 0, 1},
			Expect: map[string]Expectation{
				"msi":  all,
				"mesi": all,
				"rmc":  {SC: true, PerLoc: false},
				"rc":   {SC: true, PerLoc: false},
			},
		},
	}
}

// LitmusResult is one (test, protocol) outcome.
type LitmusResult struct {
	Test     string
	Protocol string
	// Schedule is the interleaving that produced the history — the
	// replayable trace an operator needs when a verdict deviates.
	Schedule []int
	History  History
	Verdict  Verdict
	Expected Expectation
	// Match reports whether the verdict equals the expectation.
	Match bool
}

// RunLitmus executes one litmus test against a fresh instance of the
// named protocol and checks the recorded history.
func RunLitmus(l Litmus, name string, p params.Params) (LitmusResult, error) {
	proto, err := NewProtocol(name, p, l.Nodes)
	if err != nil {
		return LitmusResult{}, err
	}
	h, err := RunProgram(proto, l.Prog, l.Schedule)
	if err != nil {
		return LitmusResult{}, fmt.Errorf("%s/%s: %w", l.Name, name, err)
	}
	if err := proto.SelfCheck(); err != nil {
		return LitmusResult{}, fmt.Errorf("%s/%s: %w", l.Name, name, err)
	}
	v, err := Check(h)
	if err != nil {
		return LitmusResult{}, fmt.Errorf("%s/%s: %w", l.Name, name, err)
	}
	exp, ok := l.Expect[name]
	if !ok {
		return LitmusResult{}, fmt.Errorf("%s: no expectation for protocol %q", l.Name, name)
	}
	return LitmusResult{
		Test:     l.Name,
		Protocol: name,
		Schedule: append([]int(nil), l.Schedule...),
		History:  h,
		Verdict:  v,
		Expected: exp,
		Match:    v.SC == exp.SC && v.PerLoc == exp.PerLoc,
	}, nil
}

// RunSuite runs every litmus test against every named protocol (all
// registered protocols when names is empty) and returns the results in
// suite × protocol order.
func RunSuite(p params.Params, names []string) ([]LitmusResult, error) {
	if len(names) == 0 {
		names = Names()
	}
	var out []LitmusResult
	for _, l := range Suite() {
		for _, name := range names {
			r, err := RunLitmus(l, name, p)
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
	}
	return out, nil
}
