package consistency

import (
	"math/rand"
	"testing"
)

// oracleSC is the brute-force sequential-consistency oracle: enumerate
// every interleaving of the per-node program orders outright — no
// memoization, no pruning, no read-gating — and replay each against a
// fresh memory image. The history is SC iff some interleaving explains
// every read. Exponential, so only usable on tiny histories; that is
// the point — it is simple enough to trust by inspection.
func oracleSC(h History) bool {
	nodes := h.perNode()
	idx := make([]int, len(nodes))
	var try func(mem map[uint64]uint64) bool
	try = func(mem map[uint64]uint64) bool {
		done := true
		for n := range nodes {
			if idx[n] < len(nodes[n]) {
				done = false
				break
			}
		}
		if done {
			return true
		}
		for n := range nodes {
			if idx[n] >= len(nodes[n]) {
				continue
			}
			e := nodes[n][idx[n]]
			idx[n]++
			switch e.Op {
			case OpRead:
				if mem[e.Loc] == e.Value && try(mem) {
					return true
				}
			case OpWrite:
				old := mem[e.Loc]
				mem[e.Loc] = e.Value
				if try(mem) {
					return true
				}
				mem[e.Loc] = old
			}
			idx[n]--
		}
		return false
	}
	return try(make(map[uint64]uint64))
}

// randomHistory draws an arbitrary small history — not one produced by
// any protocol, so both SC and non-SC shapes occur. Values are drawn
// from a tiny set to make read/write collisions (the interesting cases)
// common.
func randomHistory(rng *rand.Rand, maxOps int) History {
	nodes := 1 + rng.Intn(3)
	ops := 1 + rng.Intn(maxOps)
	h := History{Nodes: nodes}
	for i := 0; i < ops; i++ {
		e := Event{Seq: i, Node: rng.Intn(nodes), Loc: uint64(rng.Intn(2)), Value: uint64(rng.Intn(3))}
		if rng.Intn(2) == 0 {
			e.Op = OpWrite
		} else {
			e.Op = OpRead
		}
		h.Events = append(h.Events, e)
	}
	return h
}

// TestCheckSCAgainstOracle is the checker's property test: on thousands
// of seeded random histories of at most 4 operations, the frontier-state
// search must agree with the naive permutation oracle exactly.
func TestCheckSCAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 5000; i++ {
		h := randomHistory(rng, 4)
		got, _, err := CheckSC(h)
		if err != nil {
			t.Fatalf("history %d: SC search undecided on a %d-op history: %v", i, len(h.Events), err)
		}
		if want := oracleSC(h); got != want {
			var lines []string
			for _, e := range h.Events {
				lines = append(lines, e.String())
			}
			t.Fatalf("history %d: CheckSC=%v oracle=%v\n%v", i, got, want, lines)
		}
	}
}

// TestCheckSCOracleKnownCases pins hand-written verdicts so the property
// test cannot be trivially green (e.g. if both sides degenerated to
// always-true).
func TestCheckSCOracleKnownCases(t *testing.T) {
	cases := []struct {
		name string
		h    History
		want bool
	}{
		{
			// Classic store-buffering outcome: both nodes read 0 after
			// both wrote — not explainable by any interleaving.
			name: "sb-both-zero",
			h: History{Nodes: 2, Events: []Event{
				{Seq: 0, Node: 0, Op: OpWrite, Loc: 0, Value: 1},
				{Seq: 1, Node: 1, Op: OpWrite, Loc: 1, Value: 1},
				{Seq: 2, Node: 0, Op: OpRead, Loc: 1, Value: 0},
				{Seq: 3, Node: 1, Op: OpRead, Loc: 0, Value: 0},
			}},
			want: false,
		},
		{
			// The same shape with one read observing the other write is
			// explainable: n1's ops run first.
			name: "sb-one-zero",
			h: History{Nodes: 2, Events: []Event{
				{Seq: 0, Node: 0, Op: OpWrite, Loc: 0, Value: 1},
				{Seq: 1, Node: 1, Op: OpWrite, Loc: 1, Value: 1},
				{Seq: 2, Node: 0, Op: OpRead, Loc: 1, Value: 1},
				{Seq: 3, Node: 1, Op: OpRead, Loc: 0, Value: 0},
			}},
			want: true,
		},
		{
			// A read of a value nobody wrote can never be explained.
			name: "phantom-value",
			h: History{Nodes: 1, Events: []Event{
				{Seq: 0, Node: 0, Op: OpRead, Loc: 0, Value: 7},
			}},
			want: false,
		},
		{
			// Reads before any write must see zero.
			name: "initial-zero",
			h: History{Nodes: 2, Events: []Event{
				{Seq: 0, Node: 0, Op: OpRead, Loc: 1, Value: 0},
				{Seq: 1, Node: 1, Op: OpWrite, Loc: 1, Value: 2},
			}},
			want: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := oracleSC(tc.h); got != tc.want {
				t.Errorf("oracle = %v, want %v", got, tc.want)
			}
			got, _, err := CheckSC(tc.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("CheckSC = %v, want %v", got, tc.want)
			}
		})
	}
}
