// Package cache models one node's coherent cache domain: a set-
// associative write-back cache per socket with MESI coherence between
// them. This is the *intra-node* protocol the paper keeps; the system's
// whole point is that it never extends beyond the motherboard, however
// much remote memory a region aggregates.
//
// The prototype configures remote (RMC-mapped) ranges write-back
// cacheable, which is why remote lines flow through the same hierarchy —
// and why, with no inter-node coherency, writable remote data restricts
// the application to one core unless a phase is read-only (after a
// flush). FlushAll models exactly that phase transition.
package cache

import (
	"fmt"

	"repro/internal/addr"
)

// State is a MESI line state.
type State uint8

// MESI states.
const (
	// Invalid marks an absent or invalidated line.
	Invalid State = iota
	// Shared lines may be cached read-only by several sockets.
	Shared
	// Exclusive lines are cached by one socket, clean.
	Exclusive
	// Modified lines are cached by one socket, dirty.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Config sizes one socket's cache.
type Config struct {
	// Sets and Ways give the geometry; capacity = Sets*Ways*LineSize.
	Sets, Ways int
	// LineSize is the coherence granule in bytes (a power of two).
	LineSize uint64
}

// DefaultConfig returns a 512 KiB 8-way cache with 64 B lines per socket,
// an Opteron-era L2 stand-in.
func DefaultConfig() Config { return Config{Sets: 1024, Ways: 8, LineSize: 64} }

// Validate reports the first inconsistency in the configuration.
func (c Config) Validate() error {
	switch {
	case c.Sets < 1 || c.Ways < 1:
		return fmt.Errorf("cache: geometry %dx%d invalid", c.Sets, c.Ways)
	case c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	return nil
}

// line is one cache line's tag state.
type line struct {
	tag   addr.Phys // line-aligned address (tags keep the node prefix)
	state State
	lru   uint64
}

// socketCache is one socket's set-associative array. The lines live in
// one flat backing slice, set-major — building a large experiment sweep
// constructs thousands of sockets, and per-set slices would dominate
// its allocation count.
type socketCache struct {
	cfg   Config
	lines []line
	clock uint64
}

func newSocketCache(cfg Config) *socketCache {
	return &socketCache{cfg: cfg, lines: make([]line, cfg.Sets*cfg.Ways)}
}

func (c *socketCache) setOf(tag addr.Phys) []line {
	idx := (uint64(tag) / c.cfg.LineSize) % uint64(c.cfg.Sets)
	ways := uint64(c.cfg.Ways)
	return c.lines[idx*ways : idx*ways+ways]
}

// find returns the way holding tag, or -1.
func (c *socketCache) find(tag addr.Phys) int {
	set := c.setOf(tag)
	for w := range set {
		if set[w].state != Invalid && set[w].tag == tag {
			return w
		}
	}
	return -1
}

// victim returns the way to fill: an invalid way if any, else LRU.
func (c *socketCache) victim(tag addr.Phys) int {
	set := c.setOf(tag)
	best, bestLRU := -1, ^uint64(0)
	for w := range set {
		if set[w].state == Invalid {
			return w
		}
		if set[w].lru < bestLRU {
			best, bestLRU = w, set[w].lru
		}
	}
	return best
}

func (c *socketCache) touch(tag addr.Phys, w int) {
	c.clock++
	c.setOf(tag)[w].lru = c.clock
}

// Result describes what one access did, for the timing layer to price.
type Result struct {
	// Hit reports whether the line was already present in the issuing
	// socket's cache in a sufficient state.
	Hit bool
	// Probes counts coherence probes sent to other sockets' caches
	// (invalidations or downgrade snoops).
	Probes int
	// Writebacks counts dirty lines pushed back to memory (evictions and
	// M-line downgrades).
	Writebacks int
	// State is the line's state in the issuing cache afterwards.
	State State
	// Victim is the line evicted from the issuing cache to make room, if
	// VictimDirty or Victim != 0; a dirty victim must be written back to
	// its owning memory (local controller or, for remote lines, the RMC).
	Victim      addr.Phys
	VictimDirty bool
}

// Hierarchy is the coherent domain of one node: one cache per socket,
// MESI between them. It is deliberately *not* aware of other nodes.
type Hierarchy struct {
	cfg     Config
	sockets []*socketCache

	// Accesses, Hits, Misses, Probes, Writebacks, and Installs are
	// running totals (Installs are prefetch fills).
	Accesses, Hits, Misses, Probes, Writebacks, Installs uint64
}

// NewHierarchy builds a node's cache domain with one cache per socket.
func NewHierarchy(sockets int, cfg Config) (*Hierarchy, error) {
	if sockets < 1 {
		return nil, fmt.Errorf("cache: %d sockets", sockets)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg}
	for i := 0; i < sockets; i++ {
		h.sockets = append(h.sockets, newSocketCache(cfg))
	}
	return h, nil
}

// Sockets returns the number of caches in the domain.
func (h *Hierarchy) Sockets() int { return len(h.sockets) }

// LineSize returns the coherence granule.
func (h *Hierarchy) LineSize() uint64 { return h.cfg.LineSize }

// Access performs one load (write=false) or store (write=true) by the
// given socket to the line containing a, running the MESI protocol
// against the sibling sockets. It returns what happened so the timing
// layer can charge probe and writeback costs.
func (h *Hierarchy) Access(socket int, a addr.Phys, write bool) (Result, error) {
	if socket < 0 || socket >= len(h.sockets) {
		return Result{}, fmt.Errorf("cache: socket %d outside domain of %d", socket, len(h.sockets))
	}
	h.Accesses++
	tag := a.Line(h.cfg.LineSize)
	own := h.sockets[socket]
	var res Result

	if w := own.find(tag); w >= 0 {
		set := own.setOf(tag)
		st := set[w].state
		if !write || st == Modified {
			// Plain hit.
			res.Hit = true
			res.State = st
			own.touch(tag, w)
			h.Hits++
			return res, nil
		}
		if st == Exclusive {
			// Silent E->M upgrade.
			set[w].state = Modified
			own.touch(tag, w)
			res.Hit = true
			res.State = Modified
			h.Hits++
			return res, nil
		}
		// S->M upgrade: invalidate the other sharers.
		res.Probes = h.invalidateOthers(socket, tag)
		set[w].state = Modified
		own.touch(tag, w)
		res.Hit = true
		res.State = Modified
		h.Hits++
		h.Probes += uint64(res.Probes)
		return res, nil
	}

	// Miss: consult the siblings.
	h.Misses++
	sharers := 0
	for s, c := range h.sockets {
		if s == socket {
			continue
		}
		if w := c.find(tag); w >= 0 {
			set := c.setOf(tag)
			res.Probes++
			if write {
				if set[w].state == Modified {
					res.Writebacks++ // dirty data forwarded/written back
				}
				set[w].state = Invalid
			} else {
				if set[w].state == Modified {
					res.Writebacks++
				}
				set[w].state = Shared
				sharers++
			}
		}
	}

	// Fill into our cache, possibly evicting.
	w := own.victim(tag)
	set := own.setOf(tag)
	if set[w].state != Invalid {
		res.Victim = set[w].tag
		if set[w].state == Modified {
			res.Writebacks++
			res.VictimDirty = true
		}
	}
	newState := Exclusive
	if write {
		newState = Modified
	} else if sharers > 0 {
		newState = Shared
	}
	set[w] = line{tag: tag, state: newState}
	own.touch(tag, w)
	res.State = newState
	h.Probes += uint64(res.Probes)
	h.Writebacks += uint64(res.Writebacks)
	return res, nil
}

func (h *Hierarchy) invalidateOthers(socket int, tag addr.Phys) int {
	probes := 0
	for s, c := range h.sockets {
		if s == socket {
			continue
		}
		if w := c.find(tag); w >= 0 {
			c.setOf(tag)[w].state = Invalid
			probes++
		}
	}
	return probes
}

// Install places a line into a socket's cache in Exclusive state — a
// prefetch fill. If any socket already holds the line the install is a
// no-op (prefetching must never disturb the coherence protocol). The
// result carries victim information so a displaced dirty line can be
// written back. Installs do not count as accesses or hits.
func (h *Hierarchy) Install(socket int, a addr.Phys) (Result, error) {
	if socket < 0 || socket >= len(h.sockets) {
		return Result{}, fmt.Errorf("cache: socket %d outside domain of %d", socket, len(h.sockets))
	}
	tag := a.Line(h.cfg.LineSize)
	for _, c := range h.sockets {
		if c.find(tag) >= 0 {
			return Result{Hit: true, State: Shared}, nil
		}
	}
	own := h.sockets[socket]
	w := own.victim(tag)
	set := own.setOf(tag)
	var res Result
	if set[w].state != Invalid {
		res.Victim = set[w].tag
		if set[w].state == Modified {
			res.Writebacks++
			res.VictimDirty = true
			h.Writebacks++
		}
	}
	set[w] = line{tag: tag, state: Exclusive}
	own.touch(tag, w)
	res.State = Exclusive
	h.Installs++
	return res, nil
}

// Present reports whether any socket currently caches the line.
func (h *Hierarchy) Present(a addr.Phys) bool {
	tag := a.Line(h.cfg.LineSize)
	for _, c := range h.sockets {
		if c.find(tag) >= 0 {
			return true
		}
	}
	return false
}

// StateIn returns the line state in one socket's cache, for tests and
// introspection.
func (h *Hierarchy) StateIn(socket int, a addr.Phys) State {
	tag := a.Line(h.cfg.LineSize)
	if w := h.sockets[socket].find(tag); w >= 0 {
		return h.sockets[socket].setOf(tag)[w].state
	}
	return Invalid
}

// FlushAll writes back and invalidates every line in the domain,
// returning the number of dirty lines written back. The prototype does
// this between a write phase and a read-only parallel phase, after which
// several threads may cache remote data safely.
func (h *Hierarchy) FlushAll() int {
	dirty := 0
	for _, c := range h.sockets {
		for i := range c.lines {
			if c.lines[i].state == Modified {
				dirty++
			}
			c.lines[i].state = Invalid
		}
	}
	h.Writebacks += uint64(dirty)
	return dirty
}

// HitRate returns the fraction of accesses that hit.
func (h *Hierarchy) HitRate() float64 {
	if h.Accesses == 0 {
		return 0
	}
	return float64(h.Hits) / float64(h.Accesses)
}
