package cache

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func smallHierarchy(t *testing.T, sockets int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(sockets, Config{Sets: 4, Ways: 2, LineSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{Sets: 0, Ways: 1, LineSize: 64}).Validate(); err == nil {
		t.Error("zero sets accepted")
	}
	if err := (Config{Sets: 1, Ways: 1, LineSize: 48}).Validate(); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if _, err := NewHierarchy(0, DefaultConfig()); err == nil {
		t.Error("zero sockets accepted")
	}
}

func TestColdMissThenHit(t *testing.T) {
	h := smallHierarchy(t, 2)
	r, err := h.Access(0, 0x1000, false)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hit || r.State != Exclusive || r.Probes != 0 {
		t.Errorf("cold read = %+v, want E miss with no probes", r)
	}
	r, _ = h.Access(0, 0x1008, false) // same line
	if !r.Hit {
		t.Error("second read of the line missed")
	}
	if h.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", h.HitRate())
	}
}

func TestMESITransitions(t *testing.T) {
	h := smallHierarchy(t, 2)
	a := addr.Phys(0x2000)

	// Socket 0 reads -> E; socket 1 reads -> both S with one probe.
	h.Access(0, a, false)
	r, _ := h.Access(1, a, false)
	if r.Probes != 1 || r.State != Shared {
		t.Errorf("second reader = %+v, want 1 probe, S", r)
	}
	if h.StateIn(0, a) != Shared {
		t.Errorf("first reader downgraded to %v, want S", h.StateIn(0, a))
	}

	// Socket 0 writes: S->M upgrade invalidating socket 1.
	r, _ = h.Access(0, a, true)
	if !r.Hit || r.State != Modified || r.Probes != 1 {
		t.Errorf("upgrade = %+v, want hit, M, 1 probe", r)
	}
	if h.StateIn(1, a) != Invalid {
		t.Error("sharer not invalidated on upgrade")
	}

	// Socket 1 reads back: probe hits M at socket 0, forces writeback,
	// both end Shared.
	r, _ = h.Access(1, a, false)
	if r.Probes != 1 || r.Writebacks != 1 || r.State != Shared {
		t.Errorf("read of modified = %+v, want probe+writeback, S", r)
	}
	if h.StateIn(0, a) != Shared {
		t.Error("writer not downgraded to S")
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	h := smallHierarchy(t, 2)
	a := addr.Phys(0x40)
	h.Access(0, a, false) // E
	r, _ := h.Access(0, a, true)
	if !r.Hit || r.Probes != 0 || r.State != Modified {
		t.Errorf("E->M upgrade = %+v, want silent hit", r)
	}
}

func TestWriteMissInvalidatesModifiedOwner(t *testing.T) {
	h := smallHierarchy(t, 2)
	a := addr.Phys(0x80)
	h.Access(0, a, true) // socket 0 holds M
	r, _ := h.Access(1, a, true)
	if r.Hit || r.Probes != 1 || r.Writebacks != 1 || r.State != Modified {
		t.Errorf("write miss over M = %+v", r)
	}
	if h.StateIn(0, a) != Invalid {
		t.Error("old owner still holds the line")
	}
}

func TestEvictionLRUAndVictim(t *testing.T) {
	h := smallHierarchy(t, 1) // 4 sets × 2 ways
	// Three lines mapping to set 0: 0, 4*64=256, 512.
	h.Access(0, 0, true) // M
	h.Access(0, 256, false)
	r, _ := h.Access(0, 512, false) // evicts LRU = line 0 (dirty)
	if !r.VictimDirty || r.Victim != 0 || r.Writebacks != 1 {
		t.Errorf("eviction = %+v, want dirty victim line 0", r)
	}
	if h.StateIn(0, 0) != Invalid {
		t.Error("victim still resident")
	}
	// Clean eviction reports the victim but no writeback.
	r, _ = h.Access(0, 768, false) // evicts 256 (clean, LRU)
	if r.VictimDirty || r.Victim != 256 || r.Writebacks != 0 {
		t.Errorf("clean eviction = %+v", r)
	}
}

func TestVictimKeepsNodePrefix(t *testing.T) {
	h := smallHierarchy(t, 1)
	remote := addr.Phys(0x100).WithNode(7)
	h.Access(0, remote, true)
	// Fill the set until the remote line is evicted.
	var victim addr.Phys
	for i := 1; i <= 2; i++ {
		r, _ := h.Access(0, addr.Phys(0x100+uint64(i)*256), false)
		if r.VictimDirty {
			victim = r.Victim
		}
	}
	if victim.Node() != 7 {
		t.Errorf("victim = %v, lost its node prefix", victim)
	}
}

func TestFlushAll(t *testing.T) {
	h := smallHierarchy(t, 2)
	h.Access(0, 0x000, true)
	h.Access(0, 0x100, true)
	h.Access(1, 0x200, false)
	if dirty := h.FlushAll(); dirty != 2 {
		t.Errorf("FlushAll wrote back %d lines, want 2", dirty)
	}
	for _, a := range []addr.Phys{0x000, 0x100} {
		if h.StateIn(0, a) != Invalid {
			t.Errorf("line %v survived flush", a)
		}
	}
	// After the flush, re-reads miss (read-only phase refills cleanly).
	r, _ := h.Access(1, 0x200, false)
	if r.Hit {
		t.Error("flushed line hit")
	}
}

func TestInvalidSocket(t *testing.T) {
	h := smallHierarchy(t, 2)
	if _, err := h.Access(2, 0, false); err == nil {
		t.Error("socket beyond domain accepted")
	}
	if _, err := h.Access(-1, 0, false); err == nil {
		t.Error("negative socket accepted")
	}
}

// TestSingleWriterInvariant checks the MESI invariant: at most one socket
// holds a line in M or E, and M/E never coexists with S elsewhere.
func TestSingleWriterInvariant(t *testing.T) {
	h := smallHierarchy(t, 4)
	f := func(ops []uint16) bool {
		for _, op := range ops {
			socket := int(op) % 4
			line := addr.Phys((uint64(op)>>2)%16) * 64
			write := op&0x8000 != 0
			if _, err := h.Access(socket, line, write); err != nil {
				return false
			}
			// Check the invariant on the touched line.
			owners, sharers := 0, 0
			for s := 0; s < 4; s++ {
				switch h.StateIn(s, line) {
				case Modified, Exclusive:
					owners++
				case Shared:
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("%d renders %q", s, s.String())
		}
	}
}
