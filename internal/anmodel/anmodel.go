// Package anmodel implements the paper's closed-form memory-time models:
//
// Equation (1), remote swap:
//
//	T_remote_swap = A_total·L_local + (A_total/A_page)·L_swap
//
// where A_total is the total access count, A_page the number of accesses
// a page receives during its residency (the locality of the workload),
// L_local the local DRAM latency, and L_swap the cost of retrieving one
// page.
//
// Equation (2), the prototype's remote memory:
//
//	T_remote_memory = A_total·L_remote
//
// insensitive to locality by construction. The experiments package
// cross-checks these against the mechanistic models in memmodel: the two
// must agree exactly when the workload's locality matches A_page.
package anmodel

import (
	"fmt"

	"repro/internal/params"
)

// Inputs carries the paper's model variables.
type Inputs struct {
	// ATotal is the total number of memory accesses.
	ATotal uint64
	// APage is the mean number of accesses a page receives while
	// resident (Equation 1's locality term). Must be >= 1: a touched
	// page was accessed at least once.
	APage float64
	// LLocal, LSwap, LRemote are the latency terms.
	LLocal, LSwap, LRemote params.Duration
}

// FromParams fills the latency terms from a calibration at the given hop
// distance, leaving the workload terms to the caller.
func FromParams(p params.Params, hops int) Inputs {
	return Inputs{
		LLocal:  p.DRAMLatency,
		LSwap:   p.SwapTrapOverhead + p.SwapPageTransfer + 2*params.Duration(hops)*p.HopLatency,
		LRemote: p.RemoteRoundTrip(hops),
	}
}

// Validate reports the first inconsistency.
func (in Inputs) Validate() error {
	switch {
	case in.APage < 1:
		return fmt.Errorf("anmodel: APage %v < 1", in.APage)
	case in.LLocal <= 0 || in.LSwap <= 0 || in.LRemote <= 0:
		return fmt.Errorf("anmodel: non-positive latency terms")
	}
	return nil
}

// RemoteSwapTime evaluates Equation (1).
func (in Inputs) RemoteSwapTime() (params.Duration, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	faults := float64(in.ATotal) / in.APage
	return params.Duration(float64(in.ATotal)*float64(in.LLocal) + faults*float64(in.LSwap)), nil
}

// RemoteMemoryTime evaluates Equation (2).
func (in Inputs) RemoteMemoryTime() (params.Duration, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	return params.Duration(in.ATotal) * in.LRemote, nil
}

// CrossoverAPage returns the locality (accesses per resident page) at
// which the two systems break even: below it, remote memory wins; above
// it, remote swap amortizes its page faults. Solving Eq(1) = Eq(2):
//
//	A_page* = L_swap / (L_remote − L_local)
//
// It errors when remote memory is not slower than local (then remote
// memory wins at any locality).
func (in Inputs) CrossoverAPage() (float64, error) {
	if err := in.Validate(); err != nil {
		return 0, err
	}
	gap := in.LRemote - in.LLocal
	if gap <= 0 {
		return 0, fmt.Errorf("anmodel: remote latency %d not above local %d; remote memory always wins", in.LRemote, in.LLocal)
	}
	return float64(in.LSwap) / float64(gap), nil
}
