package anmodel

import (
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/swap"
)

func TestValidate(t *testing.T) {
	in := FromParams(params.Default(), 1)
	in.ATotal, in.APage = 100, 10
	if err := in.Validate(); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
	bad := in
	bad.APage = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("APage < 1 accepted")
	}
	bad = in
	bad.LLocal = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestEquationValues(t *testing.T) {
	in := Inputs{ATotal: 1000, APage: 10, LLocal: 80, LSwap: 14000, LRemote: 1100}
	ts, err := in.RemoteSwapTime()
	if err != nil {
		t.Fatal(err)
	}
	if want := params.Duration(1000*80 + 100*14000); ts != want {
		t.Errorf("Eq1 = %d, want %d", ts, want)
	}
	tm, err := in.RemoteMemoryTime()
	if err != nil {
		t.Fatal(err)
	}
	if want := params.Duration(1000 * 1100); tm != want {
		t.Errorf("Eq2 = %d, want %d", tm, want)
	}
}

func TestCrossover(t *testing.T) {
	in := Inputs{ATotal: 1, APage: 1, LLocal: 80, LSwap: 14000, LRemote: 1080}
	x, err := in.CrossoverAPage()
	if err != nil {
		t.Fatal(err)
	}
	if x != 14.0 {
		t.Errorf("crossover = %v, want 14", x)
	}
	// At exactly the crossover locality, the two systems tie.
	in.ATotal, in.APage = 14000, x
	ts, _ := in.RemoteSwapTime()
	tm, _ := in.RemoteMemoryTime()
	if ts != tm {
		t.Errorf("at crossover: swap %d vs remote %d", ts, tm)
	}
	// Below it remote memory wins; above it swap wins.
	in.APage = x / 2
	ts, _ = in.RemoteSwapTime()
	if ts <= tm {
		t.Error("low locality should favor remote memory")
	}
	in.APage = x * 2
	ts, _ = in.RemoteSwapTime()
	if ts >= tm {
		t.Error("high locality should favor swap")
	}
	// Degenerate: remote not slower than local.
	deg := Inputs{ATotal: 1, APage: 1, LLocal: 100, LSwap: 1000, LRemote: 100}
	if _, err := deg.CrossoverAPage(); err == nil {
		t.Error("degenerate crossover accepted")
	}
}

// TestEq1MatchesMechanisticModel: for a uniform trace with exact
// locality A_page (each page touched A_page times consecutively, no
// reuse), Equation (1) must equal the swap model's measured time.
func TestEq1MatchesMechanisticModel(t *testing.T) {
	p := params.Default()
	const pages, perPage = 200, 16
	s, err := memmodel.NewSwap(p, swap.RemoteDevice{P: p, Hops: 1}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var measured params.Duration
	for pg := 0; pg < pages; pg++ {
		for i := 0; i < perPage; i++ {
			measured += s.Access(uint64(pg)*params.PageSize+uint64(i*64), false)
		}
	}
	in := FromParams(p, 1)
	in.ATotal = pages * perPage
	in.APage = perPage
	predicted, err := in.RemoteSwapTime()
	if err != nil {
		t.Fatal(err)
	}
	if measured != predicted {
		t.Errorf("measured %d, Eq1 predicts %d", measured, predicted)
	}
}

// TestEq2MatchesMechanisticModel: the remote accessor is Equation (2).
func TestEq2MatchesMechanisticModel(t *testing.T) {
	p := params.Default()
	r := memmodel.Remote{P: p, Hops: 2}
	var measured params.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		measured += r.Access(uint64(i*977), false)
	}
	in := FromParams(p, 2)
	in.ATotal, in.APage = n, 1
	predicted, err := in.RemoteMemoryTime()
	if err != nil {
		t.Fatal(err)
	}
	if measured != predicted {
		t.Errorf("measured %d, Eq2 predicts %d", measured, predicted)
	}
}

// TestMonotonicityProperties: Eq1 decreases in locality, Eq2 is linear
// in access count.
func TestMonotonicityProperties(t *testing.T) {
	base := FromParams(params.Default(), 1)
	f := func(aTotalSel uint16, apSel uint8) bool {
		in := base
		in.ATotal = uint64(aTotalSel) + 1
		in.APage = float64(apSel%100) + 1
		t1, err := in.RemoteSwapTime()
		if err != nil {
			return false
		}
		in2 := in
		in2.APage = in.APage * 2
		t2, err := in2.RemoteSwapTime()
		if err != nil {
			return false
		}
		if t2 > t1 {
			return false // better locality can never hurt swap
		}
		m1, _ := in.RemoteMemoryTime()
		in3 := in
		in3.ATotal *= 3
		m3, _ := in3.RemoteMemoryTime()
		return m3 == 3*m1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
