package rmc

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/ht"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/sim"
)

// rig builds a bare N-node RMC network (no caches, no OS) on a 4x4 mesh.
type rig struct {
	eng    *sim.Engine
	p      params.Params
	fabric *mesh.Fabric
	rmcs   map[addr.NodeID]*RMC
	stores map[addr.NodeID]*mem.Store
}

func (r *rig) RMC(n addr.NodeID) (*RMC, error) {
	m, ok := r.rmcs[n]
	if !ok {
		return nil, fmt.Errorf("no rmc %d", n)
	}
	return m, nil
}

func newRig(t *testing.T, nodes int) *rig {
	t.Helper()
	p := params.Default()
	eng := sim.New()
	topo, err := mesh.NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		eng:    eng,
		p:      p,
		fabric: mesh.NewFabric(eng, topo, p, nil),
		rmcs:   map[addr.NodeID]*RMC{},
		stores: map[addr.NodeID]*mem.Store{},
	}
	for i := 1; i <= nodes; i++ {
		id := addr.NodeID(i)
		st, err := mem.NewStore(p.MemPerNode)
		if err != nil {
			t.Fatal(err)
		}
		r.stores[id] = st
		m, err := New(Config{
			Self: id, Engine: eng, Params: p, Fabric: r.fabric,
			Peers: r, Bank: dram.NewBank(eng, id, p), Store: st,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.rmcs[id] = m
	}
	return r
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	r := newRig(t, 2)
	if _, err := New(Config{Self: 0, Engine: r.eng, Params: r.p, Fabric: r.fabric, Peers: r, Bank: dram.NewBank(r.eng, 1, r.p), Store: r.stores[1]}); err == nil {
		t.Error("node 0 accepted")
	}
}

func TestRemoteReadRoundTrip(t *testing.T) {
	r := newRig(t, 4)
	// Seed node 2's memory.
	want := bytes.Repeat([]byte{0x42}, 64)
	if err := r.stores[2].WriteAt(0x41000000, want); err != nil {
		t.Fatal(err)
	}

	var gotData []byte
	var doneAt sim.Time
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x41000000).WithNode(2), Count: 64}
	if err := r.rmcs[1].Request(0, req, false, func(ts sim.Time, rsp ht.Packet, _ error) {
		doneAt, gotData = ts, rsp.Data
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !bytes.Equal(gotData, want) {
		t.Errorf("remote read returned %x, want %x", gotData[:4], want[:4])
	}
	// Unloaded latency: client occ + 1-hop request + server occ + DRAM +
	// 1-hop response. Within the analytic round-trip ± link occupancies.
	lo := r.p.RemoteRoundTrip(1)
	hi := lo + 10*r.p.LinkOccupancy + r.p.DRAMOccupancy
	if doneAt < lo || doneAt > hi {
		t.Errorf("round trip = %d ps, want within [%d, %d]", doneAt, lo, hi)
	}
	if r.rmcs[1].Forwarded != 1 || r.rmcs[2].ServedHere != 1 {
		t.Error("forward/serve counters wrong")
	}
}

func TestRemoteWriteRoundTrip(t *testing.T) {
	r := newRig(t, 4)
	payload := bytes.Repeat([]byte{0xA5}, 64)
	req := ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x100).WithNode(3), Count: 64, Data: payload}
	var rspCmd ht.Command
	if err := r.rmcs[1].Request(0, req, false, func(_ sim.Time, rsp ht.Packet, _ error) { rspCmd = rsp.Cmd }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if rspCmd != ht.CmdTgtDone {
		t.Errorf("write response = %v", rspCmd)
	}
	got := make([]byte, 64)
	if err := r.stores[3].ReadAt(0x100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("write did not reach the remote store")
	}
}

func TestCrossNodeVisibility(t *testing.T) {
	// Data written by node 1 into node 3's memory is visible to node 2
	// reading the same prefixed address: a single shared pool.
	r := newRig(t, 4)
	payload := []byte("shared-pool")
	buf := make([]byte, 64)
	copy(buf, payload)
	wr := ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x2000).WithNode(3), Count: 64, Data: buf}
	if err := r.rmcs[1].Request(0, wr, false, func(sim.Time, ht.Packet, error) {}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	var got []byte
	rd := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x2000).WithNode(3), Count: 64}
	if err := r.rmcs[2].Request(r.eng.Now(), rd, false, func(_ sim.Time, rsp ht.Packet, _ error) { got = rsp.Data }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !bytes.Equal(got[:len(payload)], payload) {
		t.Errorf("node 2 read %q", got[:len(payload)])
	}
}

func TestHopDistanceIncreasesLatency(t *testing.T) {
	r := newRig(t, 16)
	measure := func(dst addr.NodeID) sim.Time {
		r2 := newRig(t, 16)
		var done sim.Time
		req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(dst), Count: 64}
		if err := r2.rmcs[1].Request(0, req, false, func(ts sim.Time, _ ht.Packet, _ error) { done = ts }); err != nil {
			t.Fatal(err)
		}
		r2.eng.Run()
		return done
	}
	_ = r
	l1 := measure(2)  // 1 hop from node 1 on the 4x4 mesh
	l3 := measure(4)  // 3 hops
	l6 := measure(16) // 6 hops
	if !(l1 < l3 && l3 < l6) {
		t.Errorf("latency not monotone in distance: %d, %d, %d", l1, l3, l6)
	}
	// Each extra hop adds hop latency both ways (plus link occupancy).
	if d := l3 - l1; d < 4*r.p.HopLatency {
		t.Errorf("2 extra hops added only %d ps", d)
	}
}

func TestLoopbackMode(t *testing.T) {
	r := newRig(t, 4)
	if err := r.stores[1].WriteAt(0x500, []byte{9}); err != nil {
		t.Fatal(err)
	}
	var got []byte
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x500).WithNode(1), Count: 8}
	if err := r.rmcs[1].Request(0, req, false, func(_ sim.Time, rsp ht.Packet, _ error) { got = rsp.Data }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if got[0] != 9 {
		t.Error("loopback read wrong data")
	}
	if r.rmcs[1].LoopbackOps != 1 {
		t.Errorf("LoopbackOps = %d", r.rmcs[1].LoopbackOps)
	}
	if r.fabric.Delivered != 0 {
		t.Error("loopback op touched the fabric")
	}
}

func TestRequestValidation(t *testing.T) {
	r := newRig(t, 2)
	noop := func(sim.Time, ht.Packet, error) {}
	if err := r.rmcs[1].Request(0, ht.Packet{Cmd: ht.CmdRdResponse}, false, noop); err == nil {
		t.Error("response accepted as request")
	}
	if err := r.rmcs[1].Request(0, ht.Packet{Cmd: ht.CmdRdSized, Addr: 0x100, Count: 64}, false, noop); err == nil {
		t.Error("local address accepted")
	}
	if err := r.rmcs[1].Request(0, ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(9), Count: 64}, false, noop); err == nil {
		t.Error("request to nonexistent node accepted")
	}
	if err := r.rmcs[1].Request(0, ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(2), Count: 0}, false, noop); err == nil {
		t.Error("invalid packet accepted")
	}
}

func TestClientQueueRetries(t *testing.T) {
	r := newRig(t, 4)
	// Flood the client RMC far beyond its admission queue at t=0.
	completions := 0
	for i := 0; i < 16; i++ {
		req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(uint64(i) * 64).WithNode(2), Count: 64}
		if err := r.rmcs[1].Request(0, req, false, func(sim.Time, ht.Packet, error) { completions++ }); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	if completions != 16 {
		t.Fatalf("only %d of 16 completed", completions)
	}
	if r.rmcs[1].Retries == 0 {
		t.Error("flood produced no NACK retries; queue bound not enforced")
	}
}

func TestRetryWasteSlowsService(t *testing.T) {
	// The same 16-request flood takes longer than 16 clean admissions
	// would: NACK processing consumes client-RMC capacity. This is the
	// mechanism behind Fig 7's inversion.
	flood := func(stagger sim.Time) sim.Time {
		r := newRig(t, 4)
		var last sim.Time
		for i := 0; i < 16; i++ {
			req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(uint64(i) * 64).WithNode(2), Count: 64}
			at := sim.Time(i) * stagger
			r.eng.At(at, func() {
				if err := r.rmcs[1].Request(r.eng.Now(), req, false, func(ts sim.Time, _ ht.Packet, _ error) {
					if ts > last {
						last = ts
					}
				}); err != nil {
					panic(err)
				}
			})
		}
		r.eng.Run()
		return last
	}
	p := params.Default()
	burst := flood(0)                    // all at once: retries
	paced := flood(p.RMCClientOccupancy) // arrival = service rate: no retries
	if burst <= paced {
		t.Errorf("burst finished at %d, paced at %d; retry waste should slow the burst", burst, paced)
	}
}

func TestExpressRouting(t *testing.T) {
	r := newRig(t, 16)
	if err := r.fabric.AddExpressLink(1, 16); err != nil {
		t.Fatal(err)
	}
	var meshDone, expressDone sim.Time
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(16), Count: 64}
	if err := r.rmcs[1].Request(0, req, false, func(ts sim.Time, _ ht.Packet, _ error) { meshDone = ts }); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()

	r2 := newRig(t, 16)
	if err := r2.fabric.AddExpressLink(1, 16); err != nil {
		t.Fatal(err)
	}
	if err := r2.rmcs[1].Request(0, req, true, func(ts sim.Time, _ ht.Packet, _ error) { expressDone = ts }); err != nil {
		t.Fatal(err)
	}
	r2.eng.Run()
	if expressDone >= meshDone {
		t.Errorf("express (%d) not faster than 6-hop mesh (%d)", expressDone, meshDone)
	}
}

func TestUtilizationReporting(t *testing.T) {
	r := newRig(t, 4)
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(2), Count: 64}
	if err := r.rmcs[1].Request(0, req, false, func(sim.Time, ht.Packet, error) {}); err != nil {
		t.Fatal(err)
	}
	end := r.eng.Run()
	if u := r.rmcs[1].ClientUtilization(end); u <= 0 || u > 1 {
		t.Errorf("client utilization = %v", u)
	}
	if u := r.rmcs[2].ServerUtilization(end); u <= 0 || u > 1 {
		t.Errorf("server utilization = %v", u)
	}
}

// allowRanges is a Protection allowing one requester a fixed range.
type allowRanges struct {
	who addr.NodeID
	rng addr.Range
}

func (a allowRanges) Allowed(req addr.NodeID, local addr.Range) bool {
	return req == a.who && local.Start >= a.rng.Start && local.End() <= a.rng.End()
}

func TestProtectionAborts(t *testing.T) {
	r := newRig(t, 4)
	granted := addr.Range{Start: 0x40000000, Size: 1 << 20}
	r.rmcs[2].SetProtection(allowRanges{who: 1, rng: granted})

	ask := func(from addr.NodeID, a addr.Phys) ht.Command {
		var cmd ht.Command
		req := ht.Packet{Cmd: ht.CmdRdSized, Addr: a.WithNode(2), Count: 64}
		if err := r.rmcs[from].Request(r.eng.Now(), req, false, func(_ sim.Time, rsp ht.Packet, _ error) {
			cmd = rsp.Cmd
		}); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
		return cmd
	}

	// The grantee reads inside its grant: data.
	if got := ask(1, 0x40000000); got != ht.CmdRdResponse {
		t.Errorf("grantee read = %v", got)
	}
	// The grantee strays outside the grant: abort.
	if got := ask(1, 0x200); got != ht.CmdTgtAbort {
		t.Errorf("out-of-grant read = %v, want TgtAbort", got)
	}
	// A stranger reads inside the grant: abort.
	if got := ask(3, 0x40000000); got != ht.CmdTgtAbort {
		t.Errorf("stranger read = %v, want TgtAbort", got)
	}
	if r.rmcs[2].Aborted != 2 {
		t.Errorf("Aborted = %d, want 2", r.rmcs[2].Aborted)
	}
	// Clearing protection restores the prototype's open behavior.
	r.rmcs[2].SetProtection(nil)
	if got := ask(3, 0x200); got != ht.CmdRdResponse {
		t.Errorf("unprotected read = %v", got)
	}
}
