// Bulk (scatter-gather) transfers: the RMC's second transfer discipline
// beside the single-line path. One doorbell descriptor carries N line
// ranges; the server walks them as a pipelined burst of multi-line data
// frames, so the per-request overheads — client admission, HNC headers,
// server occupancy, the completion ack — amortize over the whole
// transfer instead of repeating per line. Region-to-region DMA copy
// rides the same machinery with the source node streaming data frames
// straight to the destination node; the payload never transits the
// requester.
//
// Every data frame travels under the same sealed-frame retransmission
// discipline as scalar traffic, so under a fault plan a dropped frame
// resends only itself — the burst's other frames are unaffected and the
// client reassembles out-of-order arrivals by frame index.
//
// The continuation and buffer pools follow rmc.go's recycling rule:
// nothing returns to a pool under a fault plan, because late duplicate
// deliveries may fire a completed op's callbacks.
package rmc

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/hnc"
	"repro/internal/ht"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// BulkKind selects the bulk operation.
type BulkKind int

// The bulk operations.
const (
	// BulkRead gathers the spans from their owning node into multi-line
	// response frames.
	BulkRead BulkKind = iota + 1
	// BulkWrite scatters a payload over the spans, acknowledged by one
	// cumulative TgtDone for the whole burst.
	BulkWrite
	// BulkCopy is region-to-region DMA: the node owning the source
	// spans streams them directly to the destination node.
	BulkCopy
)

func (k BulkKind) String() string {
	switch k {
	case BulkRead:
		return "read"
	case BulkWrite:
		return "write"
	case BulkCopy:
		return "copy"
	default:
		return fmt.Sprintf("BulkKind(%d)", int(k))
	}
}

// Span is one contiguous run of cache lines, line-aligned and
// node-prefixed. All spans of a burst live on one node.
type Span struct {
	Start addr.Phys
	Lines int
}

// BulkRequest describes one burst.
type BulkRequest struct {
	Kind  BulkKind
	Spans []Span

	// Data is the write payload (BulkWrite: required, spans' total
	// bytes, consumed in span order) or the read sink (BulkRead:
	// optional; when non-nil the gathered bytes land in it). Ownership
	// transfers to the RMC until Done fires: the caller must not touch
	// the buffer while the burst is in flight.
	Data []byte

	// CopyDst is the line-aligned, node-prefixed destination base of a
	// BulkCopy; the spans' lines land there contiguously in span order.
	CopyDst addr.Phys

	// Express routes every frame over dedicated express links.
	Express bool

	// Done fires exactly once at the simulated completion time. err is
	// nil unless the burst was abandoned past the retransmit budget
	// (*UnreachableError) or refused by protection (*AbortError).
	Done func(sim.Time, error)
}

// AbortError reports that a bulk burst was refused by the serving
// node's protection check (Target Abort).
type AbortError struct{ Dst addr.NodeID }

func (e *AbortError) Error() string {
	return fmt.Sprintf("rmc: bulk burst aborted by node %d's protection check", e.Dst)
}

// RequestBulk submits one burst. Errors are reported synchronously for
// malformed requests; transport failures arrive through Done. Like the
// scalar path, the burst is timed against real frames and fabric
// traversals; the functional payload movement (Data in, Data out,
// copied bytes) happens eagerly so memory state is identical to the
// equivalent sequence of scalar operations.
func (r *RMC) RequestBulk(now sim.Time, req BulkRequest) error {
	if req.Done == nil {
		return fmt.Errorf("rmc: bulk request without completion callback")
	}
	if len(req.Spans) == 0 {
		return fmt.Errorf("rmc: bulk request with no spans")
	}
	frameLines := r.p.BurstFrameLines()
	dst := req.Spans[0].Start.Node()
	lines, frames := 0, 0
	for _, s := range req.Spans {
		switch {
		case s.Lines < 1:
			return fmt.Errorf("rmc: bulk span with %d lines", s.Lines)
		case !s.Start.Valid():
			return fmt.Errorf("rmc: bulk span start %v out of range", s.Start)
		case uint64(s.Start)%params.CacheLineSize != 0:
			return fmt.Errorf("rmc: bulk span start %v is not line aligned", s.Start)
		case s.Start.Node() != dst:
			return fmt.Errorf("rmc: bulk spans straddle nodes %d and %d (one burst, one owner)", dst, s.Start.Node())
		}
		lines += s.Lines
		frames += (s.Lines + frameLines - 1) / frameLines
	}
	if dst == 0 {
		return fmt.Errorf("rmc: bulk spans are local; the BARs should have routed them to a memory controller")
	}
	if dst == r.self {
		return fmt.Errorf("rmc: bulk spans own node %d's memory; local spans are served by the memory controllers", dst)
	}
	if err := r.peersCheck(dst); err != nil {
		return err
	}
	if r.exch != nil && r.exch.setSize > 1 {
		// A burst's continuation carries client- and server-side state on
		// one struct, mutated from both ends of the transfer; that is
		// sound on a single engine but not across shards.
		return &params.ShardGateError{Feature: "the bulk data plane", Shards: int(r.exch.setSize)}
	}
	maxFrames := r.p.BurstMaxFrames()
	if maxFrames > ht.MaxBurstFrames {
		maxFrames = ht.MaxBurstFrames
	}
	if frames > maxFrames {
		return fmt.Errorf("rmc: burst needs %d frames, cap is %d; split the transfer", frames, maxFrames)
	}
	total := lines * params.CacheLineSize
	switch req.Kind {
	case BulkRead:
		if req.Data != nil && len(req.Data) != total {
			return fmt.Errorf("rmc: bulk read sink carries %d bytes, spans say %d", len(req.Data), total)
		}
	case BulkWrite:
		if len(req.Data) != total {
			return fmt.Errorf("rmc: bulk write payload carries %d bytes, spans say %d", len(req.Data), total)
		}
	case BulkCopy:
		cd := req.CopyDst
		switch {
		case !cd.Valid() || cd.Node() == 0:
			return fmt.Errorf("rmc: bulk copy destination %v is not node-prefixed", cd)
		case uint64(cd)%params.CacheLineSize != 0:
			return fmt.Errorf("rmc: bulk copy destination %v is not line aligned", cd)
		}
		if cd.Node() != r.self {
			if err := r.peersCheck(cd.Node()); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("rmc: unknown bulk kind %v", req.Kind)
	}

	r.ensureBulkMetrics()
	r.Requests++
	r.BulkBursts++
	r.BulkLines += uint64(lines)
	r.BulkDataFrames += uint64(frames)
	if req.Kind == BulkCopy {
		r.BulkCopies++
	}

	op := r.getBulkOp()
	op.kind, op.express, op.done = req.Kind, req.Express, req.Done
	op.data, op.copyDst, op.dst = req.Data, req.CopyDst, dst
	op.spans = append(op.spans[:0], req.Spans...)
	op.lines, op.frames = lines, frames
	op.attempt, op.issued = 0, now
	op.completed, op.srvAdmitted, op.srvAborted = false, false, false
	op.gotCount, op.srvGotCount, op.srvDone = 0, 0, 0
	op.srvMemDone = 0
	op.got = resetBools(op.got, frames)
	op.srvGot = resetBools(op.srvGot, frames)
	op.peer, _ = r.peers.RMC(dst)
	switch req.Kind {
	case BulkWrite:
		op.wrServer = op.peer
	case BulkCopy:
		switch cdNode := req.CopyDst.Node(); cdNode {
		case r.self:
			op.wrServer = r
		case dst:
			op.wrServer = op.peer
		default:
			op.wrServer, _ = r.peers.RMC(cdNode)
		}
	default:
		op.wrServer = nil
	}
	if req.Kind == BulkRead {
		// Frame index -> sink byte offset, precomputed so out-of-order
		// arrivals land in the right place.
		op.offs = op.offs[:0]
		pos := 0
		for _, s := range op.spans {
			for off := 0; off < s.Lines; off += frameLines {
				op.offs = append(op.offs, pos)
				pos += min(frameLines, s.Lines-off) * params.CacheLineSize
			}
		}
	}
	r.admitBulk(now, op)
	return nil
}

// bulkOp is the whole burst's continuation, client and server halves.
// The server halves (srv*) ride on the same struct: the simulation is
// one process, and the scalar path already threads the client's
// completion through the serving RMC the same way.
type bulkOp struct {
	r       *RMC
	kind    BulkKind
	express bool
	spans   []Span
	data    []byte
	copyDst addr.Phys
	dst     addr.NodeID
	lines   int
	frames  int
	offs    []int

	attempt   uint
	issued    sim.Time
	serviced  sim.Time
	completed bool
	done      func(sim.Time, error)

	peer     *RMC // RMC owning the spans (descriptor / read-frame source)
	wrServer *RMC // RMC serving the burst's write frames and sending the ack

	// Client-side burst assembly (read data frames).
	got      []bool
	gotCount int

	// Server-side burst assembly (write/copy data frames).
	srvGot      []bool
	srvGotCount int
	srvDone     int
	srvAdmitted bool
	srvAborted  bool
	srvMemDone  sim.Time

	retryFn        func()
	launchFn       func()
	descDeliverFn  func(sim.Time, hnc.Sealed)
	frameDeliverFn func(sim.Time, hnc.Sealed)
	wrDeliverFn    func(sim.Time, hnc.Sealed)
	ackDeliverFn   func(sim.Time, hnc.Sealed)
	abandonFn      func(sim.Time, int)
	srvAckFn       func()
}

func (r *RMC) getBulkOp() *bulkOp {
	if n := len(r.bulkFreeOps); n > 0 {
		op := r.bulkFreeOps[n-1]
		r.bulkFreeOps = r.bulkFreeOps[:n-1]
		return op
	}
	op := &bulkOp{r: r}
	op.retryFn = func() { op.r.admitBulk(op.r.eng.Now(), op) }
	op.launchFn = func() { op.r.launchBulk(op) }
	op.descDeliverFn = func(t sim.Time, s hnc.Sealed) { op.peer.serveBulkDesc(t, s, op) }
	op.frameDeliverFn = func(t sim.Time, s hnc.Sealed) { op.frameDelivered(t, s) }
	op.wrDeliverFn = func(t sim.Time, s hnc.Sealed) { op.wrServer.serveBulkWriteFrame(t, s, op) }
	op.ackDeliverFn = func(t sim.Time, s hnc.Sealed) { op.ackDelivered(t, s) }
	op.abandonFn = func(t sim.Time, attempts int) {
		op.complete(t, &UnreachableError{Dst: op.dst, Attempts: attempts})
	}
	op.srvAckFn = func() { op.wrServer.sendBulkAck(op.srvMemDone, op, false) }
	return op
}

func (r *RMC) putBulkOp(op *bulkOp) {
	if r.inj != nil {
		return
	}
	op.data = nil
	op.done = nil
	op.peer, op.wrServer = nil, nil
	r.bulkFreeOps = append(r.bulkFreeOps, op)
}

// complete finishes the burst exactly once on the client side.
func (op *bulkOp) complete(t sim.Time, err error) {
	if op.completed {
		return
	}
	op.completed = true
	r := op.r
	if err == nil {
		r.bulkLat.Observe(t - op.issued)
	}
	done := op.done
	r.putBulkOp(op)
	done(t, err)
}

// admitBulk enters the client queue once for the whole burst — the
// doorbell amortization: N lines pay one admission and one client
// occupancy instead of N.
func (r *RMC) admitBulk(now sim.Time, op *bulkOp) {
	if r.inj.NackStorm(r.self, int64(now)) {
		r.StormNACKs++
		r.nackBulk(now, op)
		return
	}
	serviced, ok := r.client.Acquire(now, r.p.RMCClientOccupancy)
	if !ok {
		r.nackBulk(now, op)
		return
	}
	r.Forwarded++
	op.serviced = serviced
	r.eng.At(serviced, op.launchFn)
}

func (r *RMC) nackBulk(now sim.Time, op *bulkOp) {
	r.Retries++
	r.client.Penalize(now, r.p.RMCRetryWaste)
	backoff := r.p.RMCRetryPenalty << min(op.attempt, 8)
	op.attempt++
	r.eng.After(backoff, op.retryFn)
}

// launchBulk puts the burst on the wire once client service is done:
// reads and copies send one doorbell descriptor; writes send their data
// frames directly (the payload is the doorbell).
func (r *RMC) launchBulk(op *bulkOp) {
	now := op.serviced
	switch op.kind {
	case BulkRead, BulkCopy:
		cmd := ht.CmdBulkRd
		if op.kind == BulkCopy {
			cmd = ht.CmdBulkCopy
		}
		pkt := ht.Packet{Cmd: cmd, Addr: op.spans[0].Start, Count: op.lines * params.CacheLineSize, Data: r.encodeDescriptor(op)}
		frame, err := r.bridge.Outbound(pkt)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: bulk outbound bridge failed: %v", r.self, err))
		}
		r.sendSealed(now, hnc.Seal(frame), op.dst, op.express, op.r.eng, op.descDeliverFn, op.abandonFn)
	case BulkWrite:
		frameLines := r.p.BurstFrameLines()
		idx, pos := 0, 0
		for _, s := range op.spans {
			for off := 0; off < s.Lines; off += frameLines {
				n := min(frameLines, s.Lines-off)
				nbytes := n * params.CacheLineSize
				pkt := ht.Packet{
					Cmd:    ht.CmdBulkWr,
					SrcTag: ht.BurstTag(idx, op.frames),
					Addr:   s.Start + addr.Phys(off*params.CacheLineSize),
					Count:  nbytes,
					Data:   op.data[pos : pos+nbytes],
				}
				frame, err := r.bridge.Outbound(pkt)
				if err != nil {
					panic(fmt.Sprintf("rmc%d: bulk outbound bridge failed: %v", r.self, err))
				}
				r.sendSealed(now, hnc.Seal(frame), op.dst, op.express, op.r.eng, op.wrDeliverFn, op.abandonFn)
				idx++
				pos += nbytes
			}
		}
	}
}

// encodeDescriptor renders the burst's span list (and, for copies, the
// destination header) into a pooled buffer that rides as the doorbell
// packet's payload — so descriptor size is priced on the wire and
// covered by the frame CRC like any other payload.
func (r *RMC) encodeDescriptor(op *bulkOp) []byte {
	n := len(op.spans) * ht.SpanBytes
	if op.kind == BulkCopy {
		n += ht.CopyHeaderBytes
	}
	b := r.getLineBuf(n)
	pos := 0
	if op.kind == BulkCopy {
		ht.PutCopyHeader(b, op.copyDst)
		pos = ht.CopyHeaderBytes
	}
	for _, s := range op.spans {
		ht.PutSpan(b[pos:], s.Start, uint32(s.Lines))
		pos += ht.SpanBytes
	}
	return b
}

// serveBulkDesc handles a read/copy doorbell at the node owning the
// spans: one server occupancy for the whole burst, then per-frame DRAM
// accesses whose bank contention pipelines the data frames — each frame
// leaves at its own memory-done instant while later frames are still
// being read.
func (r *RMC) serveBulkDesc(now sim.Time, sealed hnc.Sealed, op *bulkOp) {
	frame, err := r.verif.AcceptLoose(sealed)
	if err != nil {
		if r.inj != nil {
			return // counted; the sender's retransmission recovers
		}
		panic(fmt.Sprintf("rmc%d: bulk frame integrity failed: %v", r.self, err))
	}
	local, err := r.bridge.Inbound(frame)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: bulk inbound bridge failed: %v", r.self, err))
	}
	if op.completed || op.srvAdmitted {
		return // duplicate delivery of a retransmitted doorbell
	}
	op.srvAdmitted = true
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	r.ServedHere++

	desc := local.Data
	pos := 0
	var dstBase addr.Phys
	if local.Cmd == ht.CmdBulkCopy {
		dstBase = ht.GetCopyHeader(desc)
		pos = ht.CopyHeaderBytes
	}
	if r.protection != nil {
		for p := pos; p < len(desc); p += ht.SpanBytes {
			start, lines := ht.GetSpan(desc[p:])
			rng := addr.Range{Start: start.Local(), Size: uint64(lines) * params.CacheLineSize}
			if !r.protection.Allowed(frame.Src, rng) {
				r.Aborted++
				op.srvAborted = true
				r.sendBulkAck(serviced, op, true)
				op.r.putLineBuf(desc)
				return
			}
		}
	}

	frameLines := r.p.BurstFrameLines()
	idx, doff := 0, 0
	for p := pos; p < len(desc); p += ht.SpanBytes {
		start, spanLines := ht.GetSpan(desc[p:])
		lstart := start.Local()
		for off := 0; off < int(spanLines); off += frameLines {
			n := min(frameLines, int(spanLines)-off)
			nbytes := n * params.CacheLineSize
			fstart := lstart + addr.Phys(off*params.CacheLineSize)
			memDone := serviced
			for l := 0; l < n; l++ {
				t, err := r.bank.Access(serviced, fstart+addr.Phys(l*params.CacheLineSize), false)
				if err != nil {
					panic(fmt.Sprintf("rmc%d: bulk memory access failed: %v", r.self, err))
				}
				if t > memDone {
					memDone = t
				}
			}
			data := r.getLineBuf(nbytes)
			if err := r.store.ReadAt(fstart, data); err != nil {
				panic(fmt.Sprintf("rmc%d: bulk functional read failed: %v", r.self, err))
			}
			f := r.getBulkFrame()
			f.op, f.idx, f.at = op, idx, memDone
			switch local.Cmd {
			case ht.CmdBulkRd:
				f.mode = frameReadData
				f.pkt = ht.Packet{Cmd: ht.CmdRdResponse, SrcTag: ht.BurstTag(idx, op.frames), Count: nbytes, Data: data}
			case ht.CmdBulkCopy:
				daddr := dstBase + addr.Phys(doff)
				if dstBase.Node() == r.self {
					// Same-node DMA: source and destination share a
					// memory system, so the copy never leaves the node.
					f.mode = frameLocalCopy
					f.pkt = ht.Packet{Cmd: ht.CmdBulkWr, SrcTag: ht.BurstTag(idx, op.frames), Addr: daddr.Local(), Count: nbytes, Data: data}
				} else {
					f.mode = frameCopyData
					f.pkt = ht.Packet{Cmd: ht.CmdBulkWr, SrcTag: ht.BurstTag(idx, op.frames), Addr: daddr, Count: nbytes, Data: data}
				}
			}
			r.eng.At(memDone, f.sendFn)
			idx++
			doff += nbytes
		}
	}
	op.r.putLineBuf(desc)
}

// bulkFrame carries one scheduled data frame from its memory-done
// instant to the wire (or, for same-node copies, to the local store).
type bulkFrame struct {
	r    *RMC
	op   *bulkOp
	idx  int
	at   sim.Time
	mode bulkFrameMode
	pkt  ht.Packet

	sendFn func()
}

type bulkFrameMode int

const (
	frameReadData bulkFrameMode = iota + 1
	frameCopyData
	frameLocalCopy
)

func (r *RMC) getBulkFrame() *bulkFrame {
	if n := len(r.bulkFreeFrames); n > 0 {
		f := r.bulkFreeFrames[n-1]
		r.bulkFreeFrames = r.bulkFreeFrames[:n-1]
		return f
	}
	f := &bulkFrame{r: r}
	f.sendFn = func() { f.r.sendBulkFrame(f) }
	return f
}

func (r *RMC) putBulkFrame(f *bulkFrame) {
	if r.inj != nil {
		return
	}
	f.op = nil
	f.pkt = ht.Packet{}
	r.bulkFreeFrames = append(r.bulkFreeFrames, f)
}

// sendBulkFrame fires at the frame's memory-done instant.
func (r *RMC) sendBulkFrame(f *bulkFrame) {
	op := f.op
	switch f.mode {
	case frameReadData:
		reply, err := r.bridge.Reply(op.r.self, f.pkt)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: bulk reply bridge failed: %v", r.self, err))
		}
		r.sendSealed(f.at, hnc.Seal(reply), op.r.self, op.express, op.r.eng, op.frameDeliverFn, op.abandonFn)
	case frameCopyData:
		frame, err := r.bridge.Outbound(f.pkt)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: bulk outbound bridge failed: %v", r.self, err))
		}
		r.sendSealed(f.at, hnc.Seal(frame), f.pkt.Addr.Node(), op.express, op.r.eng, op.wrDeliverFn, op.abandonFn)
	case frameLocalCopy:
		r.applyBulkWrite(f.at, f.pkt, op)
	}
	r.putBulkFrame(f)
}

// frameDelivered runs at the client when one read data frame arrives.
func (op *bulkOp) frameDelivered(t sim.Time, s hnc.Sealed) {
	r := op.r
	if op.completed {
		return
	}
	if _, err := r.verif.AcceptLoose(s); err != nil {
		if r.inj != nil {
			return
		}
		panic(fmt.Sprintf("rmc%d: bulk frame integrity failed: %v", r.self, err))
	}
	pay := s.Frame.Payload
	idx, total := ht.BurstIndex(pay.SrcTag)
	if total != op.frames || idx >= len(op.got) || op.got[idx] {
		return // stale or duplicate frame from an earlier life of this op
	}
	op.got[idx] = true
	op.gotCount++
	if op.data != nil {
		copy(op.data[op.offs[idx]:], pay.Data)
	}
	op.peer.putLineBuf(pay.Data)
	if op.gotCount == op.frames {
		op.complete(t, nil)
	}
}

// serveBulkWriteFrame handles one write/copy data frame at the node
// owning the destination. The first frame of a burst pays the server
// occupancy; the rest only pay DRAM — the server-side half of the
// amortization. One cumulative TgtDone acknowledges the whole burst.
func (r *RMC) serveBulkWriteFrame(now sim.Time, sealed hnc.Sealed, op *bulkOp) {
	frame, err := r.verif.AcceptLoose(sealed)
	if err != nil {
		if r.inj != nil {
			return
		}
		panic(fmt.Sprintf("rmc%d: bulk frame integrity failed: %v", r.self, err))
	}
	local, err := r.bridge.Inbound(frame)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: bulk inbound bridge failed: %v", r.self, err))
	}
	if op.completed || op.srvAborted {
		return
	}
	idx, total := ht.BurstIndex(local.SrcTag)
	if total != op.frames || idx >= len(op.srvGot) || op.srvGot[idx] {
		return
	}
	op.srvGot[idx] = true
	serviced := now
	if op.srvGotCount == 0 {
		serviced, _ = r.server.Acquire(now, r.p.RMCServerOccupancy)
		r.ServedHere++
	}
	op.srvGotCount++
	if r.protection != nil {
		rng := addr.Range{Start: local.Addr, Size: uint64(local.Count)}
		if !r.protection.Allowed(frame.Src, rng) {
			r.Aborted++
			op.srvAborted = true
			r.sendBulkAck(serviced, op, true)
			return
		}
	}
	r.applyBulkWrite(serviced, local, op)
}

// applyBulkWrite performs one frame's timed per-line bank accesses and
// the functional store write, then sends the cumulative ack once every
// frame of the burst has landed.
func (r *RMC) applyBulkWrite(now sim.Time, local ht.Packet, op *bulkOp) {
	memDone := now
	for l := 0; l < local.Count/params.CacheLineSize; l++ {
		t, err := r.bank.Access(now, local.Addr+addr.Phys(l*params.CacheLineSize), true)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: bulk memory access failed: %v", r.self, err))
		}
		if t > memDone {
			memDone = t
		}
	}
	if err := r.store.WriteAt(local.Addr, local.Data); err != nil {
		panic(fmt.Sprintf("rmc%d: bulk functional write failed: %v", r.self, err))
	}
	if op.kind == BulkCopy {
		// Copy payloads ride the source node's pooled buffers; write
		// payloads are caller-owned slices and are never recycled here.
		op.peer.putLineBuf(local.Data)
	}
	if memDone > op.srvMemDone {
		op.srvMemDone = memDone
	}
	op.srvDone++
	if op.srvDone == op.frames {
		r.eng.At(op.srvMemDone, op.srvAckFn)
	}
}

// sendBulkAck sends the burst's single completion (or abort) frame back
// to the requester.
func (r *RMC) sendBulkAck(now sim.Time, op *bulkOp, abort bool) {
	rsp := ht.Packet{Cmd: ht.CmdTgtDone}
	if abort {
		rsp = ht.Packet{Cmd: ht.CmdTgtAbort}
	}
	reply, err := r.bridge.Reply(op.r.self, rsp)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: bulk reply bridge failed: %v", r.self, err))
	}
	r.sendSealed(now, hnc.Seal(reply), op.r.self, op.express, op.r.eng, op.ackDeliverFn, op.abandonFn)
}

// ackDelivered runs at the client when the cumulative ack arrives.
func (op *bulkOp) ackDelivered(t sim.Time, s hnc.Sealed) {
	r := op.r
	if op.completed {
		return
	}
	if _, err := r.verif.AcceptLoose(s); err != nil {
		if r.inj != nil {
			return
		}
		panic(fmt.Sprintf("rmc%d: bulk ack integrity failed: %v", r.self, err))
	}
	if s.Frame.Payload.Cmd == ht.CmdTgtAbort {
		op.complete(t, &AbortError{Dst: s.Frame.Src})
		return
	}
	op.complete(t, nil)
}

// ensureBulkMetrics registers the bulk metric families on first use, so
// runs that never issue a burst snapshot byte-identically to builds
// without the bulk plane.
func (r *RMC) ensureBulkMetrics() {
	if r.bulkLat != nil {
		return
	}
	m := r.eng.Metrics()
	node := metrics.L("node", fmt.Sprintf("%d", r.self))
	m.CounterFunc(metrics.FamRMCBulkBursts, "bulk bursts submitted at this node", node, func() uint64 { return r.BulkBursts })
	m.CounterFunc(metrics.FamRMCBulkLines, "cache lines moved by bulk bursts", node, func() uint64 { return r.BulkLines })
	m.CounterFunc(metrics.FamRMCBulkFrames, "multi-line data frames of bulk bursts", node, func() uint64 { return r.BulkDataFrames })
	m.CounterFunc(metrics.FamRMCBulkCopies, "region-to-region DMA copies submitted", node, func() uint64 { return r.BulkCopies })
	r.bulkLat = m.Histogram(metrics.FamRMCBulkLatency, "bulk burst completion time", node, metrics.TimeBuckets())
}

// resetBools returns b resized to n with every element false, reusing
// capacity.
func resetBools(b []bool, n int) []bool {
	if cap(b) < n {
		return make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	return b
}
