package rmc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
	"repro/internal/sim"
)

// A steady-state remote round trip — admit, bridge, seal, fabric, serve,
// memory access, sealed reply, verify, complete — must not allocate on a
// fault-free system: every continuation is a pooled op with prebound
// callbacks, and read data travels in pooled line buffers. This is the
// end-to-end tripwire for the whole reified hot path (rmc + hnc + sim).
func TestRemoteRoundTripSteadyStateAllocs(t *testing.T) {
	r := newRig(t, 4)
	rd := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1000).WithNode(3), Count: 64}
	var gotCmd ht.Command
	done := func(_ sim.Time, rsp ht.Packet, _ error) { gotCmd = rsp.Cmd }
	issue := func() {
		if err := r.rmcs[1].Request(r.eng.Now(), rd, false, done); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
	}
	// Warm every pool on the path: ops, line buffers, verifier windows,
	// resource and engine arenas.
	for i := 0; i < 16; i++ {
		issue()
	}
	if avg := testing.AllocsPerRun(500, issue); avg != 0 {
		t.Errorf("remote read round trip allocates %.2f/op, want 0", avg)
	}
	if gotCmd != ht.CmdRdResponse {
		t.Errorf("round trip answered %v", gotCmd)
	}
}

func TestRemoteWriteSteadyStateAllocs(t *testing.T) {
	r := newRig(t, 4)
	var gotCmd ht.Command
	done := func(_ sim.Time, rsp ht.Packet, _ error) { gotCmd = rsp.Cmd }
	issue := func() {
		// The write buffer comes from the client pool and is recycled on
		// completion, exactly as the cluster layer uses it.
		data := r.rmcs[1].LineBuf(64)
		wr := ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x2000).WithNode(3), Count: 64, Data: data}
		if err := r.rmcs[1].Request(r.eng.Now(), wr, false, done); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
	}
	for i := 0; i < 16; i++ {
		issue()
	}
	if avg := testing.AllocsPerRun(500, issue); avg != 0 {
		t.Errorf("remote write round trip allocates %.2f/op, want 0", avg)
	}
	if gotCmd != ht.CmdTgtDone {
		t.Errorf("write answered %v", gotCmd)
	}
}
