// Package rmc implements the paper's core contribution: the Remote
// Memory Controller. The RMC is presented to the node's processors as a
// HyperTransport I/O unit claiming every prefixed physical address. In
// the client role it bridges local HT requests into HNC-HT frames and
// forwards them to the node named by the address's 14 most-significant
// bits; in the server role it zeroes those bits and replays the request
// into its local memory system, then returns the response. There is no
// translation table anywhere — the address prefix *is* the route — which
// is what keeps the RMC simple and its message-processing overhead small.
//
// Two deliberate prototype limitations are modeled because the paper's
// evaluation hinges on them:
//
//   - Each RMC is a finite-rate store-and-forward engine (a FIFO service
//     occupancy), so it can congest (Figures 7 and 8).
//   - The client RMC has a tiny admission queue; requests that find it
//     full are NACKed and retried, consuming RMC capacity. Under a
//     high-rate close-by load this wastes cycles, which is why moving
//     memory servers *farther away* can slightly *improve* 4-thread
//     throughput (Figure 7's counterintuitive result).
//
// When the system runs a fault plan (package faults), the RMC also
// carries the recovery half the paper defers: every frame travels under
// a sender-side retransmission timer with capped exponential backoff,
// and a destination that stays unreachable past the retransmit budget
// fails the request with an UnreachableError instead of hanging the
// event loop.
package rmc

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/hnc"
	"repro/internal/ht"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// Peers resolves a node identifier to its RMC, letting the cluster wire
// RMCs together without a package cycle.
type Peers interface {
	RMC(n addr.NodeID) (*RMC, error)
}

// Fabric moves HNC frames between nodes. The prototype's 4×4 mesh
// (package mesh) is the reference implementation; the HT-over-Ethernet
// fabric the consortium was standardizing (package htoe) is another.
type Fabric interface {
	// Deliver carries wireBytes from src to dst starting at now and
	// returns the arrival time and traversed hop count.
	Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int)
	// DeliverExpress uses a dedicated point-to-point link where the
	// fabric has one; it errors where it does not.
	DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error)
}

// OutcomeFabric is the fault-aware extension of Fabric: DeliverOutcome
// reports what happened to the frame instead of assuming delivery. Both
// bundled fabrics implement it; the RMC falls back to Deliver when the
// fabric does not.
type OutcomeFabric interface {
	DeliverOutcome(now sim.Time, src, dst addr.NodeID, wireBytes int) faults.Outcome
}

// UnreachableError reports that a request was abandoned because its
// destination stayed unreachable past the retransmit budget — the typed
// graceful-degradation failure of a faulted fabric.
type UnreachableError struct {
	Dst      addr.NodeID
	Attempts int
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("rmc: node %d unreachable after %d transmission attempts", e.Dst, e.Attempts)
}

// RMC is one node's remote memory controller (both roles).
type RMC struct {
	self   addr.NodeID
	eng    *sim.Engine
	p      params.Params
	bridge *hnc.Bridge
	fabric Fabric
	peers  Peers
	inj    *faults.Injector // nil without a fault plan

	// exch, when non-nil, switches the send path to windowed-exchange
	// mode: transmissions become intents drained at shard barriers in
	// canonical (time, src, seq) order instead of walking the fabric
	// inline (see exchange.go). nowFn supplies the cluster-level clock
	// for utilization gauges (a shard's own clock stops at its last
	// local event, which would skew post-run utilization under K > 1).
	exch    *Exchange
	nowFn   func() sim.Time
	xmitSeq uint64

	// client is the bounded admission queue + bridging occupancy of the
	// requester role; server is the FIFO service of the target role.
	client *sim.Resource
	server *sim.Resource

	// bank and store are the node's local memory system, used when this
	// RMC serves requests from other nodes (or loopback).
	bank  *dram.Bank
	store *mem.Store

	// protection, when set, is consulted before serving a remote
	// request: the security component the paper defers. Denied requests
	// are answered with Target Abort instead of data.
	protection Protection

	// verif tracks frame integrity (CRC + per-peer sequencing) for
	// traffic arriving at this node; lat records remote round trips.
	verif *hnc.Verifier
	lat   *metrics.Histogram

	// Free lists for the reified request/serve/send continuations and
	// for line-sized data buffers. Recycling is disabled under a fault
	// plan (see putClientOp), so the pools stay empty there; on the
	// fault-free fast path a remote load/store completes without
	// allocating.
	clientOps []*clientOp
	srvOps    []*srvOp
	sendOps   []*sendOp
	lineBufs  [][]byte

	// Bulk data plane (bulk.go): pooled burst continuations plus the
	// lazily-registered burst metrics — nil bulkLat means this RMC has
	// never issued a burst and its snapshot carries no bulk families.
	bulkFreeOps    []*bulkOp
	bulkFreeFrames []*bulkFrame
	bulkLat        *metrics.Histogram

	// Stats.
	Requests    uint64 // remote requests submitted at this node
	Forwarded   uint64 // requests bridged out of this node
	Retries     uint64 // NACKed admissions at the client queue
	ServedHere  uint64 // requests served by this node's memory
	LoopbackOps uint64 // loopback-mode operations (legal, normally unused)
	Aborted     uint64 // requests denied by the protection check

	// Recovery stats (all zero without a fault plan).
	Retransmits uint64 // frames resent after a drop/corruption/outage
	Abandoned   uint64 // requests failed after the retransmit budget
	StormNACKs  uint64 // admissions refused by a scheduled NACK storm
	Stalls      uint64 // scheduled server-stall windows applied

	// Bulk stats (all zero — and unregistered — without bulk traffic).
	BulkBursts     uint64 // bursts submitted at this node
	BulkLines      uint64 // cache lines moved by bursts
	BulkDataFrames uint64 // multi-line data frames those bursts used
	BulkCopies     uint64 // region-to-region DMA copies submitted
}

// Protection decides whether a remote node may touch a local range —
// the OS wires it to its grant table, so nodes can only reach memory
// actually reserved for them.
type Protection interface {
	// Allowed reports whether requester may access the local range.
	Allowed(requester addr.NodeID, local addr.Range) bool
}

// SetProtection installs (or clears, with nil) the access-control hook.
// The prototype runs without one, as the paper's did.
func (r *RMC) SetProtection(p Protection) { r.protection = p }

// Config carries the dependencies an RMC needs.
type Config struct {
	Self   addr.NodeID
	Engine *sim.Engine
	Params params.Params
	Fabric Fabric
	Peers  Peers
	Bank   *dram.Bank
	Store  *mem.Store
	// Faults, when non-nil, arms the recovery machinery (retransmit,
	// NACK storms, stall windows). The injector is shared with the
	// fabric so the whole system replays one fault stream.
	Faults *faults.Injector
	// Exch, when non-nil, routes every transmission through the shard
	// barrier exchange instead of walking the fabric at send time. It
	// must be the exchange of the shard that owns Engine.
	Exch *Exchange
	// Now, when non-nil, overrides the clock used by snapshot-time
	// utilization gauges (the cluster passes the shard set's max clock).
	Now func() sim.Time
}

// New builds a node's RMC.
func New(c Config) (*RMC, error) {
	if c.Engine == nil || c.Fabric == nil || c.Peers == nil || c.Bank == nil || c.Store == nil {
		return nil, fmt.Errorf("rmc: incomplete configuration")
	}
	b, err := hnc.NewBridge(c.Self)
	if err != nil {
		return nil, err
	}
	if c.Exch != nil && c.Exch.eng != c.Engine {
		return nil, fmt.Errorf("rmc: exchange belongs to a different shard engine")
	}
	r := &RMC{
		self:   c.Self,
		eng:    c.Engine,
		p:      c.Params,
		bridge: b,
		fabric: c.Fabric,
		peers:  c.Peers,
		inj:    c.Faults,
		exch:   c.Exch,
		nowFn:  c.Now,
		client: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/client", c.Self), c.Params.RMCQueueDepth),
		server: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/server", c.Self), 0),
		bank:   c.Bank,
		store:  c.Store,
		verif:  hnc.NewVerifier(c.Self),
	}
	if r.nowFn == nil {
		r.nowFn = c.Engine.Now
	}
	r.register(c.Engine.Metrics())
	return r, nil
}

// register exposes this RMC's tallies through the engine's registry.
// Everything is lazily sampled; the only per-event instrument is the
// round-trip histogram. Recovery families register only under a fault
// plan, so fault-free snapshots are unchanged by the fault layer.
func (r *RMC) register(m *metrics.Registry) {
	node := metrics.L("node", fmt.Sprintf("%d", r.self))
	m.CounterFunc(metrics.FamRMCRequests, "remote requests submitted at this node", node, func() uint64 { return r.Requests })
	m.CounterFunc(metrics.FamRMCRetries, "NACKed admissions at the client queue", node, func() uint64 { return r.Retries })
	m.CounterFunc(metrics.FamRMCForwarded, "requests bridged out of this node", node, func() uint64 { return r.Forwarded })
	m.CounterFunc(metrics.FamRMCServedLocal, "requests served by this node's memory", node, func() uint64 { return r.ServedHere })
	m.CounterFunc(metrics.FamRMCLoopback, "loopback-mode operations", node, func() uint64 { return r.LoopbackOps })
	m.CounterFunc(metrics.FamRMCAborted, "requests denied by the protection check", node, func() uint64 { return r.Aborted })
	m.GaugeFunc(metrics.FamRMCClientUtil, "client-role occupancy fraction", node,
		func() float64 { return r.client.Utilization(r.nowFn()) })
	m.GaugeFunc(metrics.FamRMCServerUtil, "server-role occupancy fraction", node,
		func() float64 { return r.server.Utilization(r.nowFn()) })
	m.CounterFunc(metrics.FamHNCFrames, "sealed frames accepted at this node", node, func() uint64 { return r.verif.Received })
	m.CounterFunc(metrics.FamHNCSeqGaps, "dropped-frame gaps observed", node, func() uint64 { return r.verif.Gaps })
	m.CounterFunc(metrics.FamHNCRegressions, "reordered or replayed frames observed", node, func() uint64 { return r.verif.Regressions })
	m.CounterFunc(metrics.FamHNCCRCFailures, "frames failing the CRC check", node, func() uint64 { return r.verif.Corrupt })
	if r.inj != nil {
		m.CounterFunc(metrics.FamRMCRetransmits, "frames resent after a drop, corruption, or outage", node, func() uint64 { return r.Retransmits })
		m.CounterFunc(metrics.FamRMCAbandoned, "requests abandoned after the retransmit budget", node, func() uint64 { return r.Abandoned })
		m.CounterFunc(metrics.FamRMCStormNACKs, "admissions refused by a scheduled NACK storm", node, func() uint64 { return r.StormNACKs })
		m.CounterFunc(metrics.FamRMCStalls, "scheduled server-stall windows applied", node, func() uint64 { return r.Stalls })
	}
	r.lat = m.Histogram(metrics.FamRMCLatency, "remote request round-trip time", node, metrics.TimeBuckets())
}

// Self returns the RMC's node identifier.
func (r *RMC) Self() addr.NodeID { return r.self }

// ClientUtilization returns the client-role occupancy fraction.
func (r *RMC) ClientUtilization(elapsed sim.Time) float64 { return r.client.Utilization(elapsed) }

// ServerUtilization returns the server-role occupancy fraction.
func (r *RMC) ServerUtilization(elapsed sim.Time) float64 { return r.server.Utilization(elapsed) }

// StallServer consumes the server role's capacity for d — the scheduled
// node-stall fault. Requests already queued (and any that arrive during
// the window) wait it out behind the stall.
func (r *RMC) StallServer(now sim.Time, d sim.Time) {
	r.Stalls++
	r.server.Penalize(now, d)
}

// The three continuation structs below reify what used to be per-access
// closure chains. Each op is allocated once, its callbacks bound once
// (the closures capture only the op pointer), and then recycled through
// a per-RMC free list — so a steady-state remote load/store schedules
// every event through prebound funcs and completes without allocating.
//
// Recycling rule: every op sees exactly one clean delivery per frame it
// owns — a transmission attempt's outcomes are mutually exclusive
// (Delivered ends the chain; Corrupted/Dropped arm a retransmit), and an
// injector-mangled duplicate can never pass the CRC, so it is verified
// and discarded by acceptMangled without ever touching the op that sent
// it. Ops and line buffers therefore recycle under a fault plan too:
// the mangled duplicate — the one frame that outlives its op's buffer
// ownership — carries its own copy of the payload (see completeSend),
// so a recycled buffer is never read after its request completed.

// clientOp is the requester role's continuation: admission (with NACK
// backoff), launch onto the fabric, and final completion.
type clientOp struct {
	r        *RMC
	pkt      ht.Packet
	express  bool
	attempt  uint
	issued   sim.Time
	serviced sim.Time
	peer     *RMC
	done     func(sim.Time, ht.Packet, error)

	retryFn   func()
	launchFn  func()
	finishFn  func(sim.Time, ht.Packet, error)
	deliverFn func(sim.Time, hnc.Sealed)
	abandonFn func(sim.Time, int)
}

func (r *RMC) getClientOp() *clientOp {
	if n := len(r.clientOps); n > 0 {
		op := r.clientOps[n-1]
		r.clientOps = r.clientOps[:n-1]
		return op
	}
	op := &clientOp{r: r}
	op.retryFn = func() { op.r.admitAttempt(op.r.eng.Now(), op) }
	op.launchFn = func() { op.r.launch(op) }
	op.finishFn = func(t sim.Time, rsp ht.Packet, err error) { op.finish(t, rsp, err) }
	op.deliverFn = func(t sim.Time, s hnc.Sealed) { op.peer.serve(t, s, op.express, op.finishFn) }
	op.abandonFn = func(t sim.Time, attempts int) {
		op.finish(t, ht.Packet{}, &UnreachableError{Dst: op.pkt.Addr.Node(), Attempts: attempts})
	}
	return op
}

func (r *RMC) putClientOp(op *clientOp) {
	op.pkt = ht.Packet{}
	op.peer = nil
	op.done = nil
	r.clientOps = append(r.clientOps, op)
}

// finish completes the request: observe the round trip, hand the
// response to the caller, then reclaim the op and the response buffer.
func (op *clientOp) finish(t sim.Time, rsp ht.Packet, err error) {
	r := op.r
	if err == nil {
		// Abandoned requests never round-tripped; only completions
		// feed the latency histogram.
		r.lat.Observe(t - op.issued)
	}
	done, reqData, server := op.done, op.pkt.Data, op.peer
	if server == nil { // loopback: this RMC served itself
		server = r
	}
	r.putClientOp(op)
	done(t, rsp, err)
	// Both buffers are dead once the caller's callback has returned
	// (see Request's contract): write-request data was consumed by the
	// server's functional store, and the response buffer came from the
	// serving RMC's line pool — each returns to the pool it was drawn
	// from, so neither pool drains across repeated round trips. At most
	// one of the two is non-nil per request, so a buffer can never
	// enter a pool twice. The server's pool may live on another shard;
	// putLineBufOf defers that return to the next barrier.
	r.putLineBuf(reqData)
	r.putLineBufOf(server, rsp.Data)
}

// Request submits a memory request whose address carries a node prefix.
// done is invoked exactly once, at the simulated completion time, with
// the response packet (RdResponse with data, or TgtDone). Data buffers
// are pooled: ownership of pkt.Data transfers to the RMC, and rsp.Data
// is valid only for the duration of the callback — copy it to keep it.
// Under a fault plan a request whose destination stays
// unreachable past the retransmit budget completes with a zero packet
// and an *UnreachableError; without a plan err is always nil. express
// routes both directions over a dedicated express link (Figure 8's
// control setup) instead of the mesh.
func (r *RMC) Request(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet, error)) error {
	if err := pkt.Validate(); err != nil {
		return err
	}
	if !pkt.Cmd.IsRequest() {
		return fmt.Errorf("rmc: %v is not a request", pkt.Cmd)
	}
	dst := pkt.Addr.Node()
	if dst == 0 {
		return fmt.Errorf("rmc: address %v is local; the BARs should have routed it to a memory controller", pkt.Addr)
	}
	if err := r.peersCheck(dst); err != nil {
		return err
	}
	r.Requests++
	op := r.getClientOp()
	op.pkt, op.express, op.done = pkt, express, done
	op.attempt, op.issued = 0, now
	r.admitAttempt(now, op)
	return nil
}

func (r *RMC) peersCheck(dst addr.NodeID) error {
	if dst == r.self {
		return nil
	}
	_, err := r.peers.RMC(dst)
	return err
}

// LineBuf returns a pooled buffer of n bytes for packet data. Callers
// that build write packets from it get it recycled automatically when
// the request completes; it may contain stale bytes (every consumer
// overwrites the full length).
func (r *RMC) LineBuf(n int) []byte { return r.getLineBuf(n) }

func (r *RMC) getLineBuf(n int) []byte {
	if l := len(r.lineBufs); l > 0 {
		if b := r.lineBufs[l-1]; cap(b) >= n {
			r.lineBufs = r.lineBufs[:l-1]
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (r *RMC) putLineBuf(b []byte) {
	if cap(b) == 0 {
		return
	}
	r.lineBufs = append(r.lineBufs, b)
}

// putLineBufOf returns a buffer to another RMC's pool. When the owner
// lives on a different shard, the return is deferred onto the executing
// shard's exchange and applied by the coordinator at the next barrier —
// pools are plain slices and must never be touched across shards mid-
// window.
func (r *RMC) putLineBufOf(owner *RMC, b []byte) {
	if owner == r || r.exch == nil || owner.exch == r.exch {
		owner.putLineBuf(b)
		return
	}
	if cap(b) == 0 { // would be dropped at the drain anyway
		return
	}
	r.exch.defBuf = append(r.exch.defBuf, deferredBuf{r: owner, b: b})
}

// admitAttempt tries to enter the client queue, retrying on NACK with
// capped exponential backoff. The backoff matters: a requester retrying
// at a fixed interval against a full queue would waste RMC capacity
// faster than the RMC serves, and nothing would ever complete.
func (r *RMC) admitAttempt(now sim.Time, op *clientOp) {
	if r.inj.NackStorm(r.self, int64(now)) {
		// A scheduled NACK storm: the client RMC refuses every admission
		// as if its queue were wedged full. Same waste, same backoff —
		// progress resumes when the window closes.
		r.StormNACKs++
		r.nack(now, op)
		return
	}
	serviced, ok := r.client.Acquire(now, r.p.RMCClientOccupancy)
	if !ok {
		r.nack(now, op)
		return
	}
	r.Forwarded++
	op.serviced = serviced
	r.eng.At(serviced, op.launchFn)
}

// nack charges the NACK-processing waste and schedules the reissue.
func (r *RMC) nack(now sim.Time, op *clientOp) {
	r.Retries++
	r.client.Penalize(now, r.p.RMCRetryWaste)
	backoff := r.p.RMCRetryPenalty << min(op.attempt, 8)
	op.attempt++
	r.eng.After(backoff, op.retryFn)
}

// launch bridges the packet onto the fabric once client service is done.
func (r *RMC) launch(op *clientOp) {
	now := op.serviced
	dst := op.pkt.Addr.Node()
	if dst == r.self {
		// Loopback mode: the paper notes the overlapped segment exists
		// but is never used in practice; the hardware would replay the
		// request into its own local system, so we do.
		r.LoopbackOps++
		r.serveLocal(now, op.pkt, op.finishFn)
		return
	}
	frame, err := r.bridge.Outbound(op.pkt)
	if err != nil {
		// Unreachable for validated packets; surface loudly in sim.
		panic(fmt.Sprintf("rmc%d: outbound bridge failed: %v", r.self, err))
	}
	// Frames travel sealed: the CRC rides in the existing HeaderBytes
	// budget, so link timing (and the paper calibration) is unchanged.
	sealed := hnc.Seal(frame)
	op.peer, _ = r.peers.RMC(dst)
	r.sendSealed(now, sealed, dst, op.express, r.eng, op.deliverFn, op.abandonFn)
}

// sendOp is one sealed frame's journey under the retransmission
// discipline: it carries the frame, its attempt count, and the delivery
// callbacks across timer events without a fresh closure per attempt.
type sendOp struct {
	r       *RMC
	s       hnc.Sealed
	dst     addr.NodeID
	express bool
	wire    int
	n       int
	arrive  sim.Time
	deliver func(sim.Time, hnc.Sealed)
	abandon func(sim.Time, int)
	// owner is the engine of the shard that owns the abandon
	// continuation (the requester's shard for both legs: a client op
	// completes there directly, and a server reply's abandon hands the
	// completion to the requester's callbacks too).
	owner *sim.Engine

	attemptFn func()
	deliverFn func()
}

func (r *RMC) getSendOp() *sendOp {
	if n := len(r.sendOps); n > 0 {
		op := r.sendOps[n-1]
		r.sendOps = r.sendOps[:n-1]
		return op
	}
	op := &sendOp{r: r}
	op.attemptFn = func() { op.r.sendAttempt(op.r.eng.Now(), op) }
	op.deliverFn = func() {
		deliver, arrive, s := op.deliver, op.arrive, op.s
		op.r.putSendOp(op)
		deliver(arrive, s)
	}
	return op
}

func (r *RMC) putSendOp(op *sendOp) {
	op.s = hnc.Sealed{}
	op.deliver, op.abandon = nil, nil
	op.owner = nil
	r.sendOps = append(r.sendOps, op)
}

// sendSealed pushes one sealed frame toward dst under the retransmission
// discipline. Delivered and corrupted frames arrive (the latter with a
// mangled CRC the receiver will reject); every non-clean outcome arms a
// resend after RetransmitTimeout with capped exponential backoff, until
// the budget runs out and abandon fires. On a fault-free fabric the
// frame is simply delivered — one arrival event, exactly as before the
// fault layer existed. owner is the engine of the shard that owns the
// abandon continuation.
func (r *RMC) sendSealed(now sim.Time, s hnc.Sealed, dst addr.NodeID, express bool, owner *sim.Engine, deliver func(sim.Time, hnc.Sealed), abandon func(sim.Time, int)) {
	op := r.getSendOp()
	op.s, op.dst, op.express, op.wire = s, dst, express, s.Frame.WireBytes()
	op.n = 0
	op.deliver, op.abandon = deliver, abandon
	op.owner = owner
	r.sendAttempt(now, op)
}

// sendAttempt transmits one attempt. In windowed-exchange mode it only
// records the intent; the coordinator replays all intents through
// completeSend at the barrier in canonical (time, src, seq) order, so
// link acquisition and the injector's roll stream are consumed in an
// order that is a pure function of simulated state — identical at any
// shard count.
func (r *RMC) sendAttempt(now sim.Time, op *sendOp) {
	if r.exch != nil {
		r.xmitSeq++
		r.exch.record(xmit{t: now, src: r.self, seq: r.xmitSeq, shard: r.exch.idx, op: op})
		return
	}
	r.completeSend(now, op)
}

// completeSend walks the fabric for one attempt and schedules its
// consequences. In exchange mode it runs on the coordinator with every
// shard parked, so it may touch any shard's engine and fabric state.
func (r *RMC) completeSend(now sim.Time, op *sendOp) {
	out := r.deliverOutcome(now, op.dst, op.wire, op.express)
	switch out.Status {
	case faults.Delivered:
		arrive := sim.Time(out.Arrive)
		if r.exch == nil {
			op.arrive = arrive
			r.eng.At(arrive, op.deliverFn)
			return
		}
		// The lookahead window is no longer than the minimum link
		// latency, so arrive lands at or past the window limit — in the
		// destination shard's future. The delivery event comes from the
		// destination exchange's pool and the send op recycles now; the
		// horizon observed is arrive-now, the same sample the inline
		// path records.
		dst, err := r.peers.RMC(op.dst)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: destination node %d vanished: %v", r.self, op.dst, err))
		}
		ev := dst.exch.getEv()
		ev.deliver, ev.arrive, ev.s = op.deliver, arrive, op.s
		dst.exch.eng.AtFrom(now, arrive, ev.fireFn)
		r.putSendOp(op)
	case faults.Corrupted:
		// The mangled copy still arrives — the receiver's CRC check
		// counts and discards it — and the sender, hearing nothing,
		// retransmits. Fault-only path; the closure captures everything
		// by value, so it never touches the (recyclable) op. The payload
		// is deep-copied: the duplicate outlives the op's ownership of
		// the original buffer (the retransmitted request may complete and
		// recycle it before the duplicate's CRC check reads it), and this
		// rare per-corruption allocation is what lets every line buffer
		// recycle under an armed fault plan.
		arrive := sim.Time(out.Arrive)
		mangled := hnc.Sealed{Frame: op.s.Frame, CRC: r.inj.MangleCRC(op.s.CRC)}
		if d := op.s.Frame.Payload.Data; d != nil {
			mangled.Frame.Payload.Data = append([]byte(nil), d...)
		}
		r.scheduleMangled(now, arrive, mangled)
		r.resend(now, op)
	default: // Dropped, Unreachable
		r.resend(now, op)
	}
}

// scheduleMangled arranges for an injector-corrupted frame to reach its
// destination's verifier, on the destination's shard.
func (r *RMC) scheduleMangled(sent, arrive sim.Time, s hnc.Sealed) {
	dst, err := r.peers.RMC(s.Frame.Dst)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: corrupted frame for unknown node %d: %v", r.self, s.Frame.Dst, err))
	}
	eng := r.eng
	if r.exch != nil {
		eng = dst.exch.eng
	}
	eng.AtFrom(sent, arrive, func() { dst.acceptMangled(s) })
}

// acceptMangled runs the receiver-side integrity check on a frame the
// injector corrupted in flight: the verifier counts and discards it,
// exactly as serve/acceptReply would. A mangled frame can never pass the
// CRC, so it never reaches the op that sent it — which is what lets ops
// recycle under a fault plan.
func (r *RMC) acceptMangled(s hnc.Sealed) {
	if _, err := r.verif.AcceptLoose(s); err != nil {
		return
	}
	panic(fmt.Sprintf("rmc%d: injector-mangled frame passed the CRC check", r.self))
}

// resend arms the retransmission timer for the op's current attempt, or
// abandons once the budget is spent.
func (r *RMC) resend(now sim.Time, op *sendOp) {
	if op.n >= r.p.RetransmitBudget {
		r.Abandoned++
		ab, attempts := op.abandon, op.n+1
		if r.exch == nil {
			r.putSendOp(op)
			ab(now, attempts)
			return
		}
		// The abandon continuation belongs to the requester's shard;
		// running at the barrier, hand it to that engine one retransmit
		// timeout after the final attempt — a pure function of simulated
		// state (unlike the window limit, which depends on the barrier
		// schedule), and never in the owner's past: limits are capped at
		// the global minimum plus the timeout while a plan is armed.
		owner, at := op.owner, now+r.p.RetransmitTimeout
		r.putSendOp(op)
		owner.AtFrom(now, at, func() { ab(at, attempts) })
		return
	}
	r.Retransmits++
	shift := uint(op.n)
	if shift > r.p.RetransmitBackoffCap {
		shift = r.p.RetransmitBackoffCap
	}
	wait := r.p.RetransmitTimeout << shift
	op.n++
	if r.exch == nil {
		r.eng.At(now+wait, op.attemptFn)
	} else {
		// Timer on the sender's shard. Every replayed send time is at or
		// past the global minimum G of its scheduling round, and window
		// limits are capped at G + RetransmitTimeout while a plan is
		// armed, so the wake-up is in the shard's future.
		r.eng.AtFrom(now, now+wait, op.attemptFn)
	}
}

// deliverOutcome routes one frame over the chosen path. Express links
// are dedicated cables outside the fault plan; mesh/switch traffic goes
// through the fabric's fault-aware delivery when it has one.
func (r *RMC) deliverOutcome(now sim.Time, dst addr.NodeID, bytes int, express bool) faults.Outcome {
	if express {
		t, err := r.fabric.DeliverExpress(now, r.self, dst, bytes)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: express deliver failed: %v", r.self, err))
		}
		return faults.Outcome{Arrive: int64(t), Status: faults.Delivered}
	}
	if of, ok := r.fabric.(OutcomeFabric); ok {
		return of.DeliverOutcome(now, r.self, dst, bytes)
	}
	t, hops := r.fabric.Deliver(now, r.self, dst, bytes)
	return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Delivered}
}

// srvOp is the server role's continuation: protection check, memory
// access, and the sealed reply leg, across the serviced/memDone events.
// For loopback ops (src == self, no fabric) respond completes directly.
type srvOp struct {
	r        *RMC
	src      addr.NodeID
	loopback bool
	local    ht.Packet
	express  bool
	abort    bool
	serviced sim.Time
	memDone  sim.Time
	rsp      ht.Packet
	done     func(sim.Time, ht.Packet, error)

	serviceFn      func()
	respondFn      func()
	replyDeliverFn func(sim.Time, hnc.Sealed)
	replyAbandonFn func(sim.Time, int)
}

func (r *RMC) getSrvOp() *srvOp {
	if n := len(r.srvOps); n > 0 {
		op := r.srvOps[n-1]
		r.srvOps = r.srvOps[:n-1]
		return op
	}
	op := &srvOp{r: r}
	op.serviceFn = func() { op.service() }
	op.respondFn = func() { op.respond() }
	op.replyDeliverFn = func(t sim.Time, s hnc.Sealed) {
		// Only the one clean arrival of the reply frame reaches this
		// callback (mangled duplicates go through acceptMangled), so
		// the op is live here by construction.
		if op.r.acceptReply(op.src, s) {
			done, rsp, src := op.done, op.rsp, op.src
			op.r.reclaimSrvOp(src, op)
			done(t, rsp, nil)
		}
	}
	op.replyAbandonFn = func(t sim.Time, attempts int) {
		// The requester became unreachable for the response. The
		// server holds the completion, so it can still fail the
		// request instead of leaving the issuer hanging.
		done, src := op.done, op.src
		op.r.reclaimSrvOp(src, op)
		done(t, ht.Packet{}, &UnreachableError{Dst: src, Attempts: attempts})
	}
	return op
}

func (r *RMC) putSrvOp(op *srvOp) {
	op.local, op.rsp = ht.Packet{}, ht.Packet{}
	op.done = nil
	r.srvOps = append(r.srvOps, op)
}

// reclaimSrvOp recycles a server-role op whose final callback executed
// on the requester's shard (reply delivery and reply abandon both run
// there). A cross-shard return is deferred onto the executing shard's
// exchange and applied at the next barrier.
func (r *RMC) reclaimSrvOp(requester addr.NodeID, op *srvOp) {
	if r.exch == nil {
		r.putSrvOp(op)
		return
	}
	req, err := r.peers.RMC(requester)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: requester node %d vanished: %v", r.self, requester, err))
	}
	if req.exch == r.exch {
		r.putSrvOp(op)
		return
	}
	req.exch.defSrv = append(req.exch.defSrv, deferredSrv{r: r, op: op})
}

// serve handles a sealed frame arriving from the fabric: verify
// integrity (loosely — sequence anomalies are counted, not refused),
// decapsulate (zero the prefix), queue through the server occupancy,
// access local memory, and send the sealed response back.
func (r *RMC) serve(now sim.Time, sealed hnc.Sealed, express bool, done func(sim.Time, ht.Packet, error)) {
	frame, err := r.verif.AcceptLoose(sealed)
	if err != nil {
		if r.inj != nil {
			// An injected corruption: count it (AcceptLoose already did)
			// and drop the frame. The sender's retransmission recovers.
			return
		}
		// The fault-free fabric never corrupts frames; a CRC failure
		// here is a model bug.
		panic(fmt.Sprintf("rmc%d: frame integrity failed: %v", r.self, err))
	}
	local, err := r.bridge.Inbound(frame)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: inbound bridge failed: %v", r.self, err))
	}
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	op := r.getSrvOp()
	op.src, op.loopback, op.local, op.express = frame.Src, false, local, express
	op.done, op.serviced, op.abort = done, serviced, false
	if r.protection != nil && local.Cmd.IsRequest() {
		rng := addr.Range{Start: local.Addr, Size: uint64(local.Count)}
		if !r.protection.Allowed(frame.Src, rng) {
			r.Aborted++
			op.abort = true
		}
	}
	r.eng.At(serviced, op.serviceFn)
}

// service runs at the serviced instant: answer a protection denial with
// Target Abort, otherwise perform the local memory access.
func (op *srvOp) service() {
	if op.abort {
		op.rsp = op.local.Abort()
		op.r.sendReply(op.serviced, op)
		return
	}
	op.r.access(op)
}

// respond runs at memDone: complete a loopback op directly, or seal the
// response back onto the fabric.
func (op *srvOp) respond() {
	r := op.r
	if op.loopback {
		done, t, rsp := op.done, op.memDone, op.rsp
		r.putSrvOp(op)
		done(t, rsp, nil)
		return
	}
	r.sendReply(op.memDone, op)
}

// sendReply seals the op's response frame back to the requester under
// the same retransmission discipline as the request leg.
func (r *RMC) sendReply(now sim.Time, op *srvOp) {
	reply, err := r.bridge.Reply(op.src, op.rsp)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: reply bridge failed: %v", r.self, err))
	}
	r.sendSealed(now, hnc.Seal(reply), op.src, op.express, r.replyOwner(op.src), op.replyDeliverFn, op.replyAbandonFn)
}

// replyOwner resolves the engine that owns a reply's completion — the
// requester's shard, where the clientOp callbacks live.
func (r *RMC) replyOwner(requester addr.NodeID) *sim.Engine {
	if r.exch == nil {
		return r.eng
	}
	req, err := r.peers.RMC(requester)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: requester node %d vanished: %v", r.self, requester, err))
	}
	return req.eng
}

// acceptReply runs the requester-side integrity check on a sealed
// response arriving back from a server, reporting whether the frame was
// clean enough to complete the request.
func (r *RMC) acceptReply(requester addr.NodeID, s hnc.Sealed) bool {
	req, err := r.peers.RMC(requester)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: requester node %d vanished: %v", r.self, requester, err))
	}
	if _, err := req.verif.AcceptLoose(s); err != nil {
		if r.inj != nil {
			return false
		}
		panic(fmt.Sprintf("rmc%d: reply integrity failed: %v", r.self, err))
	}
	return true
}

// serveLocal runs the server path without the fabric (loopback).
func (r *RMC) serveLocal(now sim.Time, pkt ht.Packet, done func(sim.Time, ht.Packet, error)) {
	localPkt := pkt
	localPkt.Addr = pkt.Addr.Local()
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	op := r.getSrvOp()
	op.src, op.loopback, op.local, op.express = r.self, true, localPkt, false
	op.done, op.serviced, op.abort = done, serviced, false
	r.eng.At(serviced, op.serviceFn)
}

// access performs the functional + timed local memory operation and
// builds the response. Read data lands in a pooled buffer; ReadAt fills
// it end to end (the store zero-fills untouched regions), so stale pool
// bytes can never leak into a response.
func (r *RMC) access(op *srvOp) {
	r.ServedHere++
	memDone, err := r.bank.Access(op.serviced, op.local.Addr, op.local.Cmd == ht.CmdWrSized)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: local memory access failed: %v", r.self, err))
	}
	switch op.local.Cmd {
	case ht.CmdRdSized:
		data := r.getLineBuf(int(op.local.Count))
		if err := r.store.ReadAt(op.local.Addr, data); err != nil {
			panic(fmt.Sprintf("rmc%d: functional read failed: %v", r.self, err))
		}
		op.rsp = op.local.Response(data)
	case ht.CmdWrSized:
		// A nil-Data write is the idempotent line writeback the cluster
		// issues for cached lines it owns functionally already: priced on
		// the wire and at the bank, but with nothing to copy (writing the
		// bytes back would be a no-op on the store).
		if op.local.Data != nil {
			if err := r.store.WriteAt(op.local.Addr, op.local.Data); err != nil {
				panic(fmt.Sprintf("rmc%d: functional write failed: %v", r.self, err))
			}
		}
		op.rsp = op.local.Response(nil)
	default:
		panic(fmt.Sprintf("rmc%d: cannot serve %v", r.self, op.local.Cmd))
	}
	op.memDone = memDone
	r.eng.At(memDone, op.respondFn)
}
