// Package rmc implements the paper's core contribution: the Remote
// Memory Controller. The RMC is presented to the node's processors as a
// HyperTransport I/O unit claiming every prefixed physical address. In
// the client role it bridges local HT requests into HNC-HT frames and
// forwards them to the node named by the address's 14 most-significant
// bits; in the server role it zeroes those bits and replays the request
// into its local memory system, then returns the response. There is no
// translation table anywhere — the address prefix *is* the route — which
// is what keeps the RMC simple and its message-processing overhead small.
//
// Two deliberate prototype limitations are modeled because the paper's
// evaluation hinges on them:
//
//   - Each RMC is a finite-rate store-and-forward engine (a FIFO service
//     occupancy), so it can congest (Figures 7 and 8).
//   - The client RMC has a tiny admission queue; requests that find it
//     full are NACKed and retried, consuming RMC capacity. Under a
//     high-rate close-by load this wastes cycles, which is why moving
//     memory servers *farther away* can slightly *improve* 4-thread
//     throughput (Figure 7's counterintuitive result).
package rmc

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/hnc"
	"repro/internal/ht"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// Peers resolves a node identifier to its RMC, letting the cluster wire
// RMCs together without a package cycle.
type Peers interface {
	RMC(n addr.NodeID) (*RMC, error)
}

// Fabric moves HNC frames between nodes. The prototype's 4×4 mesh
// (package mesh) is the reference implementation; the HT-over-Ethernet
// fabric the consortium was standardizing (package htoe) is another.
type Fabric interface {
	// Deliver carries wireBytes from src to dst starting at now and
	// returns the arrival time and traversed hop count.
	Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int)
	// DeliverExpress uses a dedicated point-to-point link where the
	// fabric has one; it errors where it does not.
	DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error)
}

// RMC is one node's remote memory controller (both roles).
type RMC struct {
	self   addr.NodeID
	eng    *sim.Engine
	p      params.Params
	bridge *hnc.Bridge
	fabric Fabric
	peers  Peers

	// client is the bounded admission queue + bridging occupancy of the
	// requester role; server is the FIFO service of the target role.
	client *sim.Resource
	server *sim.Resource

	// bank and store are the node's local memory system, used when this
	// RMC serves requests from other nodes (or loopback).
	bank  *dram.Bank
	store *mem.Store

	// protection, when set, is consulted before serving a remote
	// request: the security component the paper defers. Denied requests
	// are answered with Target Abort instead of data.
	protection Protection

	// verif tracks frame integrity (CRC + per-peer sequencing) for
	// traffic arriving at this node; lat records remote round trips.
	verif *hnc.Verifier
	lat   *metrics.Histogram

	// Stats.
	Requests    uint64 // remote requests submitted at this node
	Forwarded   uint64 // requests bridged out of this node
	Retries     uint64 // NACKed admissions at the client queue
	ServedHere  uint64 // requests served by this node's memory
	LoopbackOps uint64 // loopback-mode operations (legal, normally unused)
	Aborted     uint64 // requests denied by the protection check
}

// Protection decides whether a remote node may touch a local range —
// the OS wires it to its grant table, so nodes can only reach memory
// actually reserved for them.
type Protection interface {
	// Allowed reports whether requester may access the local range.
	Allowed(requester addr.NodeID, local addr.Range) bool
}

// SetProtection installs (or clears, with nil) the access-control hook.
// The prototype runs without one, as the paper's did.
func (r *RMC) SetProtection(p Protection) { r.protection = p }

// Config carries the dependencies an RMC needs.
type Config struct {
	Self   addr.NodeID
	Engine *sim.Engine
	Params params.Params
	Fabric Fabric
	Peers  Peers
	Bank   *dram.Bank
	Store  *mem.Store
}

// New builds a node's RMC.
func New(c Config) (*RMC, error) {
	if c.Engine == nil || c.Fabric == nil || c.Peers == nil || c.Bank == nil || c.Store == nil {
		return nil, fmt.Errorf("rmc: incomplete configuration")
	}
	b, err := hnc.NewBridge(c.Self)
	if err != nil {
		return nil, err
	}
	r := &RMC{
		self:   c.Self,
		eng:    c.Engine,
		p:      c.Params,
		bridge: b,
		fabric: c.Fabric,
		peers:  c.Peers,
		client: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/client", c.Self), c.Params.RMCQueueDepth),
		server: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/server", c.Self), 0),
		bank:   c.Bank,
		store:  c.Store,
		verif:  hnc.NewVerifier(c.Self),
	}
	r.register(c.Engine.Metrics())
	return r, nil
}

// register exposes this RMC's tallies through the engine's registry.
// Everything is lazily sampled; the only per-event instrument is the
// round-trip histogram.
func (r *RMC) register(m *metrics.Registry) {
	node := metrics.L("node", fmt.Sprintf("%d", r.self))
	m.CounterFunc(metrics.FamRMCRequests, "remote requests submitted at this node", node, func() uint64 { return r.Requests })
	m.CounterFunc(metrics.FamRMCRetries, "NACKed admissions at the client queue", node, func() uint64 { return r.Retries })
	m.CounterFunc(metrics.FamRMCForwarded, "requests bridged out of this node", node, func() uint64 { return r.Forwarded })
	m.CounterFunc(metrics.FamRMCServedLocal, "requests served by this node's memory", node, func() uint64 { return r.ServedHere })
	m.CounterFunc(metrics.FamRMCLoopback, "loopback-mode operations", node, func() uint64 { return r.LoopbackOps })
	m.CounterFunc(metrics.FamRMCAborted, "requests denied by the protection check", node, func() uint64 { return r.Aborted })
	m.GaugeFunc(metrics.FamRMCClientUtil, "client-role occupancy fraction", node,
		func() float64 { return r.client.Utilization(r.eng.Now()) })
	m.GaugeFunc(metrics.FamRMCServerUtil, "server-role occupancy fraction", node,
		func() float64 { return r.server.Utilization(r.eng.Now()) })
	m.CounterFunc(metrics.FamHNCFrames, "sealed frames accepted at this node", node, func() uint64 { return r.verif.Received })
	m.CounterFunc(metrics.FamHNCSeqGaps, "dropped-frame gaps observed", node, func() uint64 { return r.verif.Gaps })
	m.CounterFunc(metrics.FamHNCRegressions, "reordered or replayed frames observed", node, func() uint64 { return r.verif.Regressions })
	m.CounterFunc(metrics.FamHNCCRCFailures, "frames failing the CRC check", node, func() uint64 { return r.verif.Corrupt })
	r.lat = m.Histogram(metrics.FamRMCLatency, "remote request round-trip time", node, metrics.TimeBuckets())
}

// Self returns the RMC's node identifier.
func (r *RMC) Self() addr.NodeID { return r.self }

// ClientUtilization returns the client-role occupancy fraction.
func (r *RMC) ClientUtilization(elapsed sim.Time) float64 { return r.client.Utilization(elapsed) }

// ServerUtilization returns the server-role occupancy fraction.
func (r *RMC) ServerUtilization(elapsed sim.Time) float64 { return r.server.Utilization(elapsed) }

// Request submits a memory request whose address carries a node prefix.
// done is invoked exactly once, at the simulated completion time, with
// the response packet (RdResponse with data, or TgtDone). express routes
// both directions over a dedicated express link (Figure 8's control
// setup) instead of the mesh.
func (r *RMC) Request(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet)) error {
	if err := pkt.Validate(); err != nil {
		return err
	}
	if !pkt.Cmd.IsRequest() {
		return fmt.Errorf("rmc: %v is not a request", pkt.Cmd)
	}
	dst := pkt.Addr.Node()
	if dst == 0 {
		return fmt.Errorf("rmc: address %v is local; the BARs should have routed it to a memory controller", pkt.Addr)
	}
	if r.peersCheck(dst) != nil {
		return r.peersCheck(dst)
	}
	r.Requests++
	issued := now
	r.admit(now, pkt, express, func(t sim.Time, rsp ht.Packet) {
		r.lat.Observe(t - issued)
		done(t, rsp)
	})
	return nil
}

func (r *RMC) peersCheck(dst addr.NodeID) error {
	if dst == r.self {
		return nil
	}
	_, err := r.peers.RMC(dst)
	return err
}

// admit tries to enter the client queue, retrying on NACK with capped
// exponential backoff. The backoff matters: a requester retrying at a
// fixed interval against a full queue would waste RMC capacity faster
// than the RMC serves, and nothing would ever complete.
func (r *RMC) admit(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet)) {
	r.admitAttempt(now, pkt, express, 0, done)
}

func (r *RMC) admitAttempt(now sim.Time, pkt ht.Packet, express bool, attempt uint, done func(sim.Time, ht.Packet)) {
	serviced, ok := r.client.Acquire(now, r.p.RMCClientOccupancy)
	if !ok {
		// Queue full: NACK processing costs the RMC some capacity, the
		// requester backs off and reissues.
		r.Retries++
		r.client.Penalize(now, r.p.RMCRetryWaste)
		backoff := r.p.RMCRetryPenalty << min(attempt, 8)
		r.eng.After(backoff, func() {
			r.admitAttempt(r.eng.Now(), pkt, express, attempt+1, done)
		})
		return
	}
	r.Forwarded++
	r.eng.At(serviced, func() {
		r.launch(serviced, pkt, express, done)
	})
}

// launch bridges the packet onto the fabric once client service is done.
func (r *RMC) launch(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet)) {
	dst := pkt.Addr.Node()
	if dst == r.self {
		// Loopback mode: the paper notes the overlapped segment exists
		// but is never used in practice; the hardware would replay the
		// request into its own local system, so we do.
		r.LoopbackOps++
		r.serveLocal(now, pkt, func(t sim.Time, rsp ht.Packet) { done(t, rsp) })
		return
	}
	frame, err := r.bridge.Outbound(pkt)
	if err != nil {
		// Unreachable for validated packets; surface loudly in sim.
		panic(fmt.Sprintf("rmc%d: outbound bridge failed: %v", r.self, err))
	}
	// Frames travel sealed: the CRC rides in the existing HeaderBytes
	// budget, so link timing (and the paper calibration) is unchanged.
	sealed := hnc.Seal(frame)
	arrive, derr := r.deliver(now, r.self, dst, frame.WireBytes(), express)
	if derr != nil {
		panic(fmt.Sprintf("rmc%d: deliver failed: %v", r.self, derr))
	}
	peer, _ := r.peers.RMC(dst)
	r.eng.At(arrive, func() {
		peer.serve(arrive, sealed, express, done)
	})
}

func (r *RMC) deliver(now sim.Time, src, dst addr.NodeID, bytes int, express bool) (sim.Time, error) {
	if express {
		return r.fabric.DeliverExpress(now, src, dst, bytes)
	}
	t, _ := r.fabric.Deliver(now, src, dst, bytes)
	return t, nil
}

// serve handles a sealed frame arriving from the fabric: verify
// integrity (loosely — sequence anomalies are counted, not refused),
// decapsulate (zero the prefix), queue through the server occupancy,
// access local memory, and send the sealed response back.
func (r *RMC) serve(now sim.Time, sealed hnc.Sealed, express bool, done func(sim.Time, ht.Packet)) {
	frame, err := r.verif.AcceptLoose(sealed)
	if err != nil {
		// The simulated fabric never corrupts frames; a CRC failure here
		// is a model bug.
		panic(fmt.Sprintf("rmc%d: frame integrity failed: %v", r.self, err))
	}
	local, err := r.bridge.Inbound(frame)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: inbound bridge failed: %v", r.self, err))
	}
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	if r.protection != nil && local.Cmd.IsRequest() {
		rng := addr.Range{Start: local.Addr, Size: uint64(local.Count)}
		if !r.protection.Allowed(frame.Src, rng) {
			r.Aborted++
			r.eng.At(serviced, func() {
				reply, err := r.bridge.Reply(frame.Src, local.Abort())
				if err != nil {
					panic(fmt.Sprintf("rmc%d: abort reply bridge failed: %v", r.self, err))
				}
				sealedReply := hnc.Seal(reply)
				back, derr := r.deliver(serviced, r.self, frame.Src, reply.WireBytes(), express)
				if derr != nil {
					panic(fmt.Sprintf("rmc%d: abort deliver failed: %v", r.self, derr))
				}
				r.eng.At(back, func() {
					r.acceptReply(frame.Src, sealedReply)
					done(back, reply.Payload)
				})
			})
			return
		}
	}
	r.eng.At(serviced, func() {
		r.access(serviced, local, func(t sim.Time, rsp ht.Packet) {
			reply, err := r.bridge.Reply(frame.Src, rsp)
			if err != nil {
				panic(fmt.Sprintf("rmc%d: reply bridge failed: %v", r.self, err))
			}
			sealedReply := hnc.Seal(reply)
			back, derr := r.deliver(t, r.self, frame.Src, reply.WireBytes(), express)
			if derr != nil {
				panic(fmt.Sprintf("rmc%d: reply deliver failed: %v", r.self, derr))
			}
			r.eng.At(back, func() {
				r.acceptReply(frame.Src, sealedReply)
				done(back, rsp)
			})
		})
	})
}

// acceptReply runs the requester-side integrity check on a sealed
// response arriving back from a server.
func (r *RMC) acceptReply(requester addr.NodeID, s hnc.Sealed) {
	req, err := r.peers.RMC(requester)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: requester node %d vanished: %v", r.self, requester, err))
	}
	if _, err := req.verif.AcceptLoose(s); err != nil {
		panic(fmt.Sprintf("rmc%d: reply integrity failed: %v", r.self, err))
	}
}

// serveLocal runs the server path without the fabric (loopback).
func (r *RMC) serveLocal(now sim.Time, pkt ht.Packet, done func(sim.Time, ht.Packet)) {
	localPkt := pkt
	localPkt.Addr = pkt.Addr.Local()
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	r.eng.At(serviced, func() {
		r.access(serviced, localPkt, done)
	})
}

// access performs the functional + timed local memory operation and
// builds the response.
func (r *RMC) access(now sim.Time, pkt ht.Packet, done func(sim.Time, ht.Packet)) {
	r.ServedHere++
	memDone, err := r.bank.Access(now, pkt.Addr, pkt.Cmd == ht.CmdWrSized)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: local memory access failed: %v", r.self, err))
	}
	var rsp ht.Packet
	switch pkt.Cmd {
	case ht.CmdRdSized:
		data := make([]byte, pkt.Count)
		if err := r.store.ReadAt(pkt.Addr, data); err != nil {
			panic(fmt.Sprintf("rmc%d: functional read failed: %v", r.self, err))
		}
		rsp = pkt.Response(data)
	case ht.CmdWrSized:
		if err := r.store.WriteAt(pkt.Addr, pkt.Data); err != nil {
			panic(fmt.Sprintf("rmc%d: functional write failed: %v", r.self, err))
		}
		rsp = pkt.Response(nil)
	default:
		panic(fmt.Sprintf("rmc%d: cannot serve %v", r.self, pkt.Cmd))
	}
	r.eng.At(memDone, func() { done(memDone, rsp) })
}
