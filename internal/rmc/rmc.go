// Package rmc implements the paper's core contribution: the Remote
// Memory Controller. The RMC is presented to the node's processors as a
// HyperTransport I/O unit claiming every prefixed physical address. In
// the client role it bridges local HT requests into HNC-HT frames and
// forwards them to the node named by the address's 14 most-significant
// bits; in the server role it zeroes those bits and replays the request
// into its local memory system, then returns the response. There is no
// translation table anywhere — the address prefix *is* the route — which
// is what keeps the RMC simple and its message-processing overhead small.
//
// Two deliberate prototype limitations are modeled because the paper's
// evaluation hinges on them:
//
//   - Each RMC is a finite-rate store-and-forward engine (a FIFO service
//     occupancy), so it can congest (Figures 7 and 8).
//   - The client RMC has a tiny admission queue; requests that find it
//     full are NACKed and retried, consuming RMC capacity. Under a
//     high-rate close-by load this wastes cycles, which is why moving
//     memory servers *farther away* can slightly *improve* 4-thread
//     throughput (Figure 7's counterintuitive result).
//
// When the system runs a fault plan (package faults), the RMC also
// carries the recovery half the paper defers: every frame travels under
// a sender-side retransmission timer with capped exponential backoff,
// and a destination that stays unreachable past the retransmit budget
// fails the request with an UnreachableError instead of hanging the
// event loop.
package rmc

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/hnc"
	"repro/internal/ht"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// Peers resolves a node identifier to its RMC, letting the cluster wire
// RMCs together without a package cycle.
type Peers interface {
	RMC(n addr.NodeID) (*RMC, error)
}

// Fabric moves HNC frames between nodes. The prototype's 4×4 mesh
// (package mesh) is the reference implementation; the HT-over-Ethernet
// fabric the consortium was standardizing (package htoe) is another.
type Fabric interface {
	// Deliver carries wireBytes from src to dst starting at now and
	// returns the arrival time and traversed hop count.
	Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int)
	// DeliverExpress uses a dedicated point-to-point link where the
	// fabric has one; it errors where it does not.
	DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error)
}

// OutcomeFabric is the fault-aware extension of Fabric: DeliverOutcome
// reports what happened to the frame instead of assuming delivery. Both
// bundled fabrics implement it; the RMC falls back to Deliver when the
// fabric does not.
type OutcomeFabric interface {
	DeliverOutcome(now sim.Time, src, dst addr.NodeID, wireBytes int) faults.Outcome
}

// UnreachableError reports that a request was abandoned because its
// destination stayed unreachable past the retransmit budget — the typed
// graceful-degradation failure of a faulted fabric.
type UnreachableError struct {
	Dst      addr.NodeID
	Attempts int
}

func (e *UnreachableError) Error() string {
	return fmt.Sprintf("rmc: node %d unreachable after %d transmission attempts", e.Dst, e.Attempts)
}

// RMC is one node's remote memory controller (both roles).
type RMC struct {
	self   addr.NodeID
	eng    *sim.Engine
	p      params.Params
	bridge *hnc.Bridge
	fabric Fabric
	peers  Peers
	inj    *faults.Injector // nil without a fault plan

	// client is the bounded admission queue + bridging occupancy of the
	// requester role; server is the FIFO service of the target role.
	client *sim.Resource
	server *sim.Resource

	// bank and store are the node's local memory system, used when this
	// RMC serves requests from other nodes (or loopback).
	bank  *dram.Bank
	store *mem.Store

	// protection, when set, is consulted before serving a remote
	// request: the security component the paper defers. Denied requests
	// are answered with Target Abort instead of data.
	protection Protection

	// verif tracks frame integrity (CRC + per-peer sequencing) for
	// traffic arriving at this node; lat records remote round trips.
	verif *hnc.Verifier
	lat   *metrics.Histogram

	// Stats.
	Requests    uint64 // remote requests submitted at this node
	Forwarded   uint64 // requests bridged out of this node
	Retries     uint64 // NACKed admissions at the client queue
	ServedHere  uint64 // requests served by this node's memory
	LoopbackOps uint64 // loopback-mode operations (legal, normally unused)
	Aborted     uint64 // requests denied by the protection check

	// Recovery stats (all zero without a fault plan).
	Retransmits uint64 // frames resent after a drop/corruption/outage
	Abandoned   uint64 // requests failed after the retransmit budget
	StormNACKs  uint64 // admissions refused by a scheduled NACK storm
	Stalls      uint64 // scheduled server-stall windows applied
}

// Protection decides whether a remote node may touch a local range —
// the OS wires it to its grant table, so nodes can only reach memory
// actually reserved for them.
type Protection interface {
	// Allowed reports whether requester may access the local range.
	Allowed(requester addr.NodeID, local addr.Range) bool
}

// SetProtection installs (or clears, with nil) the access-control hook.
// The prototype runs without one, as the paper's did.
func (r *RMC) SetProtection(p Protection) { r.protection = p }

// Config carries the dependencies an RMC needs.
type Config struct {
	Self   addr.NodeID
	Engine *sim.Engine
	Params params.Params
	Fabric Fabric
	Peers  Peers
	Bank   *dram.Bank
	Store  *mem.Store
	// Faults, when non-nil, arms the recovery machinery (retransmit,
	// NACK storms, stall windows). The injector is shared with the
	// fabric so the whole system replays one fault stream.
	Faults *faults.Injector
}

// New builds a node's RMC.
func New(c Config) (*RMC, error) {
	if c.Engine == nil || c.Fabric == nil || c.Peers == nil || c.Bank == nil || c.Store == nil {
		return nil, fmt.Errorf("rmc: incomplete configuration")
	}
	b, err := hnc.NewBridge(c.Self)
	if err != nil {
		return nil, err
	}
	r := &RMC{
		self:   c.Self,
		eng:    c.Engine,
		p:      c.Params,
		bridge: b,
		fabric: c.Fabric,
		peers:  c.Peers,
		inj:    c.Faults,
		client: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/client", c.Self), c.Params.RMCQueueDepth),
		server: sim.NewResource(c.Engine, fmt.Sprintf("rmc%d/server", c.Self), 0),
		bank:   c.Bank,
		store:  c.Store,
		verif:  hnc.NewVerifier(c.Self),
	}
	r.register(c.Engine.Metrics())
	return r, nil
}

// register exposes this RMC's tallies through the engine's registry.
// Everything is lazily sampled; the only per-event instrument is the
// round-trip histogram. Recovery families register only under a fault
// plan, so fault-free snapshots are unchanged by the fault layer.
func (r *RMC) register(m *metrics.Registry) {
	node := metrics.L("node", fmt.Sprintf("%d", r.self))
	m.CounterFunc(metrics.FamRMCRequests, "remote requests submitted at this node", node, func() uint64 { return r.Requests })
	m.CounterFunc(metrics.FamRMCRetries, "NACKed admissions at the client queue", node, func() uint64 { return r.Retries })
	m.CounterFunc(metrics.FamRMCForwarded, "requests bridged out of this node", node, func() uint64 { return r.Forwarded })
	m.CounterFunc(metrics.FamRMCServedLocal, "requests served by this node's memory", node, func() uint64 { return r.ServedHere })
	m.CounterFunc(metrics.FamRMCLoopback, "loopback-mode operations", node, func() uint64 { return r.LoopbackOps })
	m.CounterFunc(metrics.FamRMCAborted, "requests denied by the protection check", node, func() uint64 { return r.Aborted })
	m.GaugeFunc(metrics.FamRMCClientUtil, "client-role occupancy fraction", node,
		func() float64 { return r.client.Utilization(r.eng.Now()) })
	m.GaugeFunc(metrics.FamRMCServerUtil, "server-role occupancy fraction", node,
		func() float64 { return r.server.Utilization(r.eng.Now()) })
	m.CounterFunc(metrics.FamHNCFrames, "sealed frames accepted at this node", node, func() uint64 { return r.verif.Received })
	m.CounterFunc(metrics.FamHNCSeqGaps, "dropped-frame gaps observed", node, func() uint64 { return r.verif.Gaps })
	m.CounterFunc(metrics.FamHNCRegressions, "reordered or replayed frames observed", node, func() uint64 { return r.verif.Regressions })
	m.CounterFunc(metrics.FamHNCCRCFailures, "frames failing the CRC check", node, func() uint64 { return r.verif.Corrupt })
	if r.inj != nil {
		m.CounterFunc(metrics.FamRMCRetransmits, "frames resent after a drop, corruption, or outage", node, func() uint64 { return r.Retransmits })
		m.CounterFunc(metrics.FamRMCAbandoned, "requests abandoned after the retransmit budget", node, func() uint64 { return r.Abandoned })
		m.CounterFunc(metrics.FamRMCStormNACKs, "admissions refused by a scheduled NACK storm", node, func() uint64 { return r.StormNACKs })
		m.CounterFunc(metrics.FamRMCStalls, "scheduled server-stall windows applied", node, func() uint64 { return r.Stalls })
	}
	r.lat = m.Histogram(metrics.FamRMCLatency, "remote request round-trip time", node, metrics.TimeBuckets())
}

// Self returns the RMC's node identifier.
func (r *RMC) Self() addr.NodeID { return r.self }

// ClientUtilization returns the client-role occupancy fraction.
func (r *RMC) ClientUtilization(elapsed sim.Time) float64 { return r.client.Utilization(elapsed) }

// ServerUtilization returns the server-role occupancy fraction.
func (r *RMC) ServerUtilization(elapsed sim.Time) float64 { return r.server.Utilization(elapsed) }

// StallServer consumes the server role's capacity for d — the scheduled
// node-stall fault. Requests already queued (and any that arrive during
// the window) wait it out behind the stall.
func (r *RMC) StallServer(now sim.Time, d sim.Time) {
	r.Stalls++
	r.server.Penalize(now, d)
}

// Request submits a memory request whose address carries a node prefix.
// done is invoked exactly once, at the simulated completion time, with
// the response packet (RdResponse with data, or TgtDone). Under a fault
// plan a request whose destination stays unreachable past the retransmit
// budget completes with a zero packet and an *UnreachableError; without
// a plan err is always nil. express routes both directions over a
// dedicated express link (Figure 8's control setup) instead of the mesh.
func (r *RMC) Request(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet, error)) error {
	if err := pkt.Validate(); err != nil {
		return err
	}
	if !pkt.Cmd.IsRequest() {
		return fmt.Errorf("rmc: %v is not a request", pkt.Cmd)
	}
	dst := pkt.Addr.Node()
	if dst == 0 {
		return fmt.Errorf("rmc: address %v is local; the BARs should have routed it to a memory controller", pkt.Addr)
	}
	if r.peersCheck(dst) != nil {
		return r.peersCheck(dst)
	}
	r.Requests++
	issued := now
	r.admit(now, pkt, express, func(t sim.Time, rsp ht.Packet, err error) {
		if err == nil {
			// Abandoned requests never round-tripped; only completions
			// feed the latency histogram.
			r.lat.Observe(t - issued)
		}
		done(t, rsp, err)
	})
	return nil
}

func (r *RMC) peersCheck(dst addr.NodeID) error {
	if dst == r.self {
		return nil
	}
	_, err := r.peers.RMC(dst)
	return err
}

// admit tries to enter the client queue, retrying on NACK with capped
// exponential backoff. The backoff matters: a requester retrying at a
// fixed interval against a full queue would waste RMC capacity faster
// than the RMC serves, and nothing would ever complete.
func (r *RMC) admit(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet, error)) {
	r.admitAttempt(now, pkt, express, 0, done)
}

func (r *RMC) admitAttempt(now sim.Time, pkt ht.Packet, express bool, attempt uint, done func(sim.Time, ht.Packet, error)) {
	if r.inj.NackStorm(r.self, int64(now)) {
		// A scheduled NACK storm: the client RMC refuses every admission
		// as if its queue were wedged full. Same waste, same backoff —
		// progress resumes when the window closes.
		r.StormNACKs++
		r.nack(now, pkt, express, attempt, done)
		return
	}
	serviced, ok := r.client.Acquire(now, r.p.RMCClientOccupancy)
	if !ok {
		r.nack(now, pkt, express, attempt, done)
		return
	}
	r.Forwarded++
	r.eng.At(serviced, func() {
		r.launch(serviced, pkt, express, done)
	})
}

// nack charges the NACK-processing waste and schedules the reissue.
func (r *RMC) nack(now sim.Time, pkt ht.Packet, express bool, attempt uint, done func(sim.Time, ht.Packet, error)) {
	r.Retries++
	r.client.Penalize(now, r.p.RMCRetryWaste)
	backoff := r.p.RMCRetryPenalty << min(attempt, 8)
	r.eng.After(backoff, func() {
		r.admitAttempt(r.eng.Now(), pkt, express, attempt+1, done)
	})
}

// launch bridges the packet onto the fabric once client service is done.
func (r *RMC) launch(now sim.Time, pkt ht.Packet, express bool, done func(sim.Time, ht.Packet, error)) {
	dst := pkt.Addr.Node()
	if dst == r.self {
		// Loopback mode: the paper notes the overlapped segment exists
		// but is never used in practice; the hardware would replay the
		// request into its own local system, so we do.
		r.LoopbackOps++
		r.serveLocal(now, pkt, func(t sim.Time, rsp ht.Packet) { done(t, rsp, nil) })
		return
	}
	frame, err := r.bridge.Outbound(pkt)
	if err != nil {
		// Unreachable for validated packets; surface loudly in sim.
		panic(fmt.Sprintf("rmc%d: outbound bridge failed: %v", r.self, err))
	}
	// Frames travel sealed: the CRC rides in the existing HeaderBytes
	// budget, so link timing (and the paper calibration) is unchanged.
	sealed := hnc.Seal(frame)
	peer, _ := r.peers.RMC(dst)
	r.sendSealed(now, sealed, dst, express,
		func(t sim.Time, s hnc.Sealed) {
			peer.serve(t, s, express, done)
		},
		func(t sim.Time, attempts int) {
			done(t, ht.Packet{}, &UnreachableError{Dst: dst, Attempts: attempts})
		})
}

// sendSealed pushes one sealed frame toward dst under the retransmission
// discipline. Delivered and corrupted frames arrive (the latter with a
// mangled CRC the receiver will reject); every non-clean outcome arms a
// resend after RetransmitTimeout with capped exponential backoff, until
// the budget runs out and abandon fires. On a fault-free fabric the
// frame is simply delivered — one arrival event, exactly as before the
// fault layer existed.
func (r *RMC) sendSealed(now sim.Time, s hnc.Sealed, dst addr.NodeID, express bool, deliver func(sim.Time, hnc.Sealed), abandon func(sim.Time, int)) {
	wire := s.Frame.WireBytes()
	var attempt func(t sim.Time, n int)
	attempt = func(t sim.Time, n int) {
		out := r.deliverOutcome(t, dst, wire, express)
		switch out.Status {
		case faults.Delivered:
			r.eng.At(sim.Time(out.Arrive), func() { deliver(sim.Time(out.Arrive), s) })
		case faults.Corrupted:
			// The mangled copy still arrives — the receiver's CRC check
			// counts and discards it — and the sender, hearing nothing,
			// retransmits.
			mangled := hnc.Sealed{Frame: s.Frame, CRC: r.inj.MangleCRC(s.CRC)}
			r.eng.At(sim.Time(out.Arrive), func() { deliver(sim.Time(out.Arrive), mangled) })
			r.resend(t, n, attempt, abandon)
		default: // Dropped, Unreachable
			r.resend(t, n, attempt, abandon)
		}
	}
	attempt(now, 0)
}

// resend arms the retransmission timer for attempt n, or abandons once
// the budget is spent.
func (r *RMC) resend(now sim.Time, n int, attempt func(sim.Time, int), abandon func(sim.Time, int)) {
	if n >= r.p.RetransmitBudget {
		r.Abandoned++
		abandon(now, n+1)
		return
	}
	r.Retransmits++
	shift := uint(n)
	if shift > r.p.RetransmitBackoffCap {
		shift = r.p.RetransmitBackoffCap
	}
	wait := r.p.RetransmitTimeout << shift
	r.eng.At(now+wait, func() {
		attempt(r.eng.Now(), n+1)
	})
}

// deliverOutcome routes one frame over the chosen path. Express links
// are dedicated cables outside the fault plan; mesh/switch traffic goes
// through the fabric's fault-aware delivery when it has one.
func (r *RMC) deliverOutcome(now sim.Time, dst addr.NodeID, bytes int, express bool) faults.Outcome {
	if express {
		t, err := r.fabric.DeliverExpress(now, r.self, dst, bytes)
		if err != nil {
			panic(fmt.Sprintf("rmc%d: express deliver failed: %v", r.self, err))
		}
		return faults.Outcome{Arrive: int64(t), Status: faults.Delivered}
	}
	if of, ok := r.fabric.(OutcomeFabric); ok {
		return of.DeliverOutcome(now, r.self, dst, bytes)
	}
	t, hops := r.fabric.Deliver(now, r.self, dst, bytes)
	return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Delivered}
}

// serve handles a sealed frame arriving from the fabric: verify
// integrity (loosely — sequence anomalies are counted, not refused),
// decapsulate (zero the prefix), queue through the server occupancy,
// access local memory, and send the sealed response back.
func (r *RMC) serve(now sim.Time, sealed hnc.Sealed, express bool, done func(sim.Time, ht.Packet, error)) {
	frame, err := r.verif.AcceptLoose(sealed)
	if err != nil {
		if r.inj != nil {
			// An injected corruption: count it (AcceptLoose already did)
			// and drop the frame. The sender's retransmission recovers.
			return
		}
		// The fault-free fabric never corrupts frames; a CRC failure
		// here is a model bug.
		panic(fmt.Sprintf("rmc%d: frame integrity failed: %v", r.self, err))
	}
	local, err := r.bridge.Inbound(frame)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: inbound bridge failed: %v", r.self, err))
	}
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	if r.protection != nil && local.Cmd.IsRequest() {
		rng := addr.Range{Start: local.Addr, Size: uint64(local.Count)}
		if !r.protection.Allowed(frame.Src, rng) {
			r.Aborted++
			r.eng.At(serviced, func() {
				r.sendReply(serviced, frame.Src, local.Abort(), express, done)
			})
			return
		}
	}
	r.eng.At(serviced, func() {
		r.access(serviced, local, func(t sim.Time, rsp ht.Packet) {
			r.sendReply(t, frame.Src, rsp, express, done)
		})
	})
}

// sendReply seals a response frame back to the requester under the same
// retransmission discipline as the request leg.
func (r *RMC) sendReply(now sim.Time, requester addr.NodeID, rsp ht.Packet, express bool, done func(sim.Time, ht.Packet, error)) {
	reply, err := r.bridge.Reply(requester, rsp)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: reply bridge failed: %v", r.self, err))
	}
	sealedReply := hnc.Seal(reply)
	r.sendSealed(now, sealedReply, requester, express,
		func(t sim.Time, s hnc.Sealed) {
			if r.acceptReply(requester, s) {
				done(t, rsp, nil)
			}
			// A corrupted arrival is counted and dropped by the
			// requester's verifier; this sender's retransmission will
			// complete the request on a later, clean arrival.
		},
		func(t sim.Time, attempts int) {
			// The requester became unreachable for the response. The
			// server holds the completion, so it can still fail the
			// request instead of leaving the issuer hanging.
			done(t, ht.Packet{}, &UnreachableError{Dst: requester, Attempts: attempts})
		})
}

// acceptReply runs the requester-side integrity check on a sealed
// response arriving back from a server, reporting whether the frame was
// clean enough to complete the request.
func (r *RMC) acceptReply(requester addr.NodeID, s hnc.Sealed) bool {
	req, err := r.peers.RMC(requester)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: requester node %d vanished: %v", r.self, requester, err))
	}
	if _, err := req.verif.AcceptLoose(s); err != nil {
		if r.inj != nil {
			return false
		}
		panic(fmt.Sprintf("rmc%d: reply integrity failed: %v", r.self, err))
	}
	return true
}

// serveLocal runs the server path without the fabric (loopback).
func (r *RMC) serveLocal(now sim.Time, pkt ht.Packet, done func(sim.Time, ht.Packet)) {
	localPkt := pkt
	localPkt.Addr = pkt.Addr.Local()
	serviced, _ := r.server.Acquire(now, r.p.RMCServerOccupancy)
	r.eng.At(serviced, func() {
		r.access(serviced, localPkt, done)
	})
}

// access performs the functional + timed local memory operation and
// builds the response.
func (r *RMC) access(now sim.Time, pkt ht.Packet, done func(sim.Time, ht.Packet)) {
	r.ServedHere++
	memDone, err := r.bank.Access(now, pkt.Addr, pkt.Cmd == ht.CmdWrSized)
	if err != nil {
		panic(fmt.Sprintf("rmc%d: local memory access failed: %v", r.self, err))
	}
	var rsp ht.Packet
	switch pkt.Cmd {
	case ht.CmdRdSized:
		data := make([]byte, pkt.Count)
		if err := r.store.ReadAt(pkt.Addr, data); err != nil {
			panic(fmt.Sprintf("rmc%d: functional read failed: %v", r.self, err))
		}
		rsp = pkt.Response(data)
	case ht.CmdWrSized:
		if err := r.store.WriteAt(pkt.Addr, pkt.Data); err != nil {
			panic(fmt.Sprintf("rmc%d: functional write failed: %v", r.self, err))
		}
		rsp = pkt.Response(nil)
	default:
		panic(fmt.Sprintf("rmc%d: cannot serve %v", r.self, pkt.Cmd))
	}
	r.eng.At(memDone, func() { done(memDone, rsp) })
}
