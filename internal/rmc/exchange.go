package rmc

import (
	"cmp"
	"slices"

	"repro/internal/addr"
	"repro/internal/hnc"
	"repro/internal/sim"
)

// The windowed exchange is the cross-shard half of the conservative PDES
// engine (DESIGN §16). In exchange mode an RMC's sendAttempt does not
// walk the fabric; it appends a transmission intent to its shard's
// Exchange. At every window barrier the coordinator — with all shards
// parked — merges the intents of every shard, sorts them by
// (time, source node, per-source sequence), and replays each through
// completeSend. That canonical order is a pure function of simulated
// state, so link occupancies and the fault injector's roll stream are
// consumed identically at any shard count, which is what keeps figures
// byte-identical from -shards 1 to -shards N.
//
// The window is bounded by the minimum cross-shard link latency, so
// every delivery scheduled at the barrier lands at or past the window
// limit — strictly in the destination shard's future. Barrier hand-offs
// (worker park/release atomics) carry the happens-before edges for the
// coordinator's reads of shard state.

// xmit is one recorded transmission intent.
type xmit struct {
	t   sim.Time
	src addr.NodeID
	seq uint64
	op  *sendOp
}

// deferredSrv returns a server-role op to its owner's pool at the
// barrier (its final callback ran on the requester's shard).
type deferredSrv struct {
	r  *RMC
	op *srvOp
}

// deferredBuf returns a line buffer to another shard's pool.
type deferredBuf struct {
	r *RMC
	b []byte
}

// deliverEv is a pooled frame-delivery event. The coordinator fills one
// from the destination exchange's pool at the barrier; it recycles
// itself when it fires on the destination shard — the two phases are
// mutually exclusive, so the pool needs no synchronization.
type deliverEv struct {
	x       *Exchange
	deliver func(sim.Time, hnc.Sealed)
	arrive  sim.Time
	s       hnc.Sealed
	fireFn  func()
}

// Exchange is one shard's side of the windowed exchange: the intents its
// RMCs recorded this window, the cross-shard pool returns deferred to
// the barrier, and the shard's delivery-event pool.
type Exchange struct {
	eng   *sim.Engine
	limit sim.Time // current drain's window limit
	multi bool     // part of a >1-shard set (bulk bursts refuse to run)

	xmits  []xmit
	defSrv []deferredSrv
	defBuf []deferredBuf
	evs    []*deliverEv
}

// NewExchange returns the exchange for one shard's engine.
func NewExchange(eng *sim.Engine) *Exchange {
	return &Exchange{eng: eng}
}

// Engine returns the shard engine this exchange belongs to.
func (x *Exchange) Engine() *sim.Engine { return x.eng }

func (x *Exchange) getEv() *deliverEv {
	if n := len(x.evs); n > 0 {
		ev := x.evs[n-1]
		x.evs = x.evs[:n-1]
		return ev
	}
	ev := &deliverEv{x: x}
	ev.fireFn = func() {
		deliver, arrive, s := ev.deliver, ev.arrive, ev.s
		ev.x.putEv(ev)
		deliver(arrive, s)
	}
	return ev
}

func (x *Exchange) putEv(ev *deliverEv) {
	ev.deliver = nil
	ev.s = hnc.Sealed{}
	x.evs = append(x.evs, ev)
}

// ExchangeSet drains every shard's exchange at a window barrier. Install
// its Drain as the shard set's barrier hook.
type ExchangeSet struct {
	shards  []*Exchange
	scratch []xmit
	trace   func(t sim.Time, src, dst addr.NodeID, seq uint64)
}

// NewExchangeSet groups the per-shard exchanges.
func NewExchangeSet(shards []*Exchange) *ExchangeSet {
	for _, x := range shards {
		x.multi = len(shards) > 1
	}
	return &ExchangeSet{shards: shards}
}

// Trace installs a hook invoked for every transmission in canonical
// drain order — the oracle tests compare these streams across shard
// counts.
func (es *ExchangeSet) Trace(fn func(t sim.Time, src, dst addr.NodeID, seq uint64)) {
	es.trace = fn
}

// Drain replays every recorded intent in (time, source, sequence) order
// through the fabric, then applies the deferred cross-shard pool
// returns. It runs on the coordinator with all shards parked.
func (es *ExchangeSet) Drain(limit sim.Time) {
	es.scratch = es.scratch[:0]
	for _, x := range es.shards {
		x.limit = limit
		es.scratch = append(es.scratch, x.xmits...)
		x.xmits = x.xmits[:0]
	}
	if len(es.scratch) > 1 {
		slices.SortFunc(es.scratch, func(a, b xmit) int {
			if c := cmp.Compare(a.t, b.t); c != 0 {
				return c
			}
			if c := cmp.Compare(a.src, b.src); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
	}
	for i := range es.scratch {
		m := &es.scratch[i]
		if es.trace != nil {
			es.trace(m.t, m.src, m.op.dst, m.seq)
		}
		m.op.r.completeSend(m.t, m.op)
		m.op = nil
	}
	for _, x := range es.shards {
		for i, d := range x.defSrv {
			d.r.putSrvOp(d.op)
			x.defSrv[i] = deferredSrv{}
		}
		x.defSrv = x.defSrv[:0]
		for i, d := range x.defBuf {
			d.r.putLineBuf(d.b)
			x.defBuf[i] = deferredBuf{}
		}
		x.defBuf = x.defBuf[:0]
	}
}
