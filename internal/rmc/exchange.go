package rmc

import (
	"cmp"
	"slices"

	"repro/internal/addr"
	"repro/internal/hnc"
	"repro/internal/sim"
)

// The windowed exchange is the cross-shard half of the conservative PDES
// engine (DESIGN §16). In exchange mode an RMC's sendAttempt does not
// walk the fabric; it appends a transmission intent to its shard's
// Exchange. At every window barrier the coordinator — with all shards
// parked — merges the intents of every shard, sorts them by
// (time, source node, per-source sequence), and replays those below the
// barrier's replay horizon through completeSend, holding the rest for a
// later barrier. The horizon guarantees no future intent can be
// recorded below it, so the replayed prefix extends one canonical
// stream — a pure function of simulated state — and link occupancies
// and the fault injector's roll stream are consumed identically at any
// shard count and under any window policy, which is what keeps figures
// byte-identical from -shards 1 to -shards N.
//
// Every per-shard window limit is bounded by the minimum cross-shard
// delivery bound of the lookahead matrix, so every delivery scheduled at
// the barrier lands at or past the destination shard's limit — strictly
// in its future. Barrier hand-offs (worker park/release atomics) carry
// the happens-before edges for the coordinator's reads of shard state.

// xmit is one recorded transmission intent. shard is the recording
// exchange's index: a held intent counts as pending work of its source
// shard, bounded into shard i by B[shard][i].
type xmit struct {
	t     sim.Time
	src   addr.NodeID
	seq   uint64
	shard int32
	op    *sendOp
}

// deferredSrv returns a server-role op to its owner's pool at the
// barrier (its final callback ran on the requester's shard).
type deferredSrv struct {
	r  *RMC
	op *srvOp
}

// deferredBuf returns a line buffer to another shard's pool.
type deferredBuf struct {
	r *RMC
	b []byte
}

// deliverEv is a pooled frame-delivery event. The coordinator fills one
// from the destination exchange's pool at the barrier; it recycles
// itself when it fires on the destination shard — the two phases are
// mutually exclusive, so the pool needs no synchronization.
type deliverEv struct {
	x       *Exchange
	deliver func(sim.Time, hnc.Sealed)
	arrive  sim.Time
	s       hnc.Sealed
	fireFn  func()
}

// Exchange is one shard's side of the windowed exchange: the intents its
// RMCs recorded this window, the cross-shard pool returns deferred to
// the barrier, and the shard's delivery-event pool.
type Exchange struct {
	eng     *sim.Engine
	idx     int32 // shard index within the set
	setSize int32 // engines in the owning set (>1: bulk bursts refuse to run)

	// selfBound, when positive, is B[idx][idx] of the lookahead matrix:
	// the minimum delivery bound of any frame this shard sends into
	// itself. Recording a send clamps the shard's running window to the
	// send time plus this bound, which is what lets the scheduler plan
	// windows past the shard's next event — until the shard actually
	// sends, nothing it does can deliver into itself, and the first
	// send pulls the limit back to exactly what remains provable.
	selfBound sim.Time

	// freshMin is the earliest intent in xmits — recorded since the last
	// Drain, not yet merged into the set's held suffix — or sim.MaxTime.
	// The set's Earliest must see these the moment the shard parks: the
	// replay horizon's cascade bound is derived from Earliest *before*
	// Drain merges, and a horizon blind to fresh intents could replay a
	// late intent ahead of an earlier one's not-yet-recorded response.
	freshMin sim.Time

	xmits  []xmit
	defSrv []deferredSrv
	defBuf []deferredBuf
	evs    []*deliverEv
}

// NewExchange returns the exchange for one shard's engine.
func NewExchange(eng *sim.Engine) *Exchange {
	return &Exchange{eng: eng, freshMin: sim.MaxTime}
}

// Engine returns the shard engine this exchange belongs to.
func (x *Exchange) Engine() *sim.Engine { return x.eng }

// record holds one transmission intent for the next barrier drain and,
// when a self-delivery bound is installed, clamps the running window so
// the shard cannot outrun the send it just recorded.
func (x *Exchange) record(m xmit) {
	x.xmits = append(x.xmits, m)
	if m.t < x.freshMin {
		x.freshMin = m.t
	}
	if x.selfBound > 0 {
		x.eng.ClampWindow(m.t + x.selfBound)
	}
}

func (x *Exchange) getEv() *deliverEv {
	if n := len(x.evs); n > 0 {
		ev := x.evs[n-1]
		x.evs = x.evs[:n-1]
		return ev
	}
	ev := &deliverEv{x: x}
	ev.fireFn = func() {
		deliver, arrive, s := ev.deliver, ev.arrive, ev.s
		ev.x.putEv(ev)
		deliver(arrive, s)
	}
	return ev
}

func (x *Exchange) putEv(ev *deliverEv) {
	ev.deliver = nil
	ev.s = hnc.Sealed{}
	x.evs = append(x.evs, ev)
}

// ExchangeSet drains every shard's exchange at a window barrier. Install
// its Drain as the shard set's barrier hook and Earliest as its intent
// source. held is the sorted suffix of intents past every horizon so
// far; heldMin[j] is the earliest held time attributable to source
// shard j (sim.MaxTime when none), the elision scheduler's view of
// in-flight cross-shard work.
type ExchangeSet struct {
	shards  []*Exchange
	held    []xmit
	heldMin []sim.Time
	trace   func(t sim.Time, src, dst addr.NodeID, seq uint64)
}

// NewExchangeSet groups the per-shard exchanges.
func NewExchangeSet(shards []*Exchange) *ExchangeSet {
	hm := make([]sim.Time, len(shards))
	for i, x := range shards {
		x.idx = int32(i)
		x.setSize = int32(len(shards))
		hm[i] = sim.MaxTime
	}
	return &ExchangeSet{shards: shards, heldMin: hm}
}

// Trace installs a hook invoked for every transmission in canonical
// drain order — the oracle tests compare these streams across shard
// counts and window policies.
func (es *ExchangeSet) Trace(fn func(t sim.Time, src, dst addr.NodeID, seq uint64)) {
	es.trace = fn
}

// Earliest returns the earliest recorded-but-not-yet-replayed
// transmission time attributable to shard j, or sim.MaxTime. It is the
// shard set's intent source (ShardSet.SetIntentSource) and covers both
// the held suffix of past drains and the intents shard j recorded in
// the window that just ran — the scheduler reads it at the barrier,
// before Drain merges those into held, and the replay horizon is only
// safe if every pending intent's delivery cascade bounds it.
func (es *ExchangeSet) Earliest(j int) sim.Time {
	if f := es.shards[j].freshMin; f < es.heldMin[j] {
		return f
	}
	return es.heldMin[j]
}

// Held returns the number of intents currently held past the horizon,
// for diagnostics and tests.
func (es *ExchangeSet) Held() int { return len(es.held) }

// SetSelfBounds installs each shard's own-shard delivery bound — the
// diagonal of the lookahead matrix — into its exchange, arming the
// record-time window clamp. Call it whenever the matrix is recomputed.
func (es *ExchangeSet) SetSelfBounds(bounds [][]sim.Time) {
	for i, x := range es.shards {
		x.selfBound = bounds[i][i]
	}
}

// Drain merges the freshly recorded intents into the held set, replays
// every intent with time strictly below horizon in canonical
// (time, source, sequence) order through the fabric, keeps the rest
// held, then applies the deferred cross-shard pool returns. It runs on
// the coordinator with all shards parked. Replays never record new
// intents (completeSend schedules deliveries and timers as events), so
// the sort is stable under replay.
func (es *ExchangeSet) Drain(horizon sim.Time) {
	for _, x := range es.shards {
		es.held = append(es.held, x.xmits...)
		x.xmits = x.xmits[:0]
		x.freshMin = sim.MaxTime // merged: whatever survives replay re-enters through heldMin
	}
	if len(es.held) > 1 {
		slices.SortFunc(es.held, func(a, b xmit) int {
			if c := cmp.Compare(a.t, b.t); c != 0 {
				return c
			}
			if c := cmp.Compare(a.src, b.src); c != 0 {
				return c
			}
			return cmp.Compare(a.seq, b.seq)
		})
	}
	n := 0
	for n < len(es.held) && es.held[n].t < horizon {
		m := &es.held[n]
		if es.trace != nil {
			es.trace(m.t, m.src, m.op.dst, m.seq)
		}
		m.op.r.completeSend(m.t, m.op)
		n++
	}
	if n > 0 {
		kept := copy(es.held, es.held[n:])
		clear(es.held[kept:])
		es.held = es.held[:kept]
	}
	for j := range es.heldMin {
		es.heldMin[j] = sim.MaxTime
	}
	for i := range es.held {
		m := &es.held[i]
		if m.t < es.heldMin[m.shard] {
			es.heldMin[m.shard] = m.t
		}
	}
	for _, x := range es.shards {
		for i, d := range x.defSrv {
			d.r.putSrvOp(d.op)
			x.defSrv[i] = deferredSrv{}
		}
		x.defSrv = x.defSrv[:0]
		for i, d := range x.defBuf {
			d.r.putLineBuf(d.b)
			x.defBuf[i] = deferredBuf{}
		}
		x.defBuf = x.defBuf[:0]
	}
}
