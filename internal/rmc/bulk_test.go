package rmc

import (
	"bytes"
	"testing"

	"repro/internal/addr"
	"repro/internal/faults"
	"repro/internal/ht"
	"repro/internal/sim"
)

// fillPattern seeds n bytes at a on node's store with a position-derived
// pattern so misplaced frames are detectable.
func fillPattern(t *testing.T, r *rig, node addr.NodeID, a addr.Phys, n int, salt byte) []byte {
	t.Helper()
	want := make([]byte, n)
	for i := range want {
		want[i] = byte(i) ^ salt
	}
	if err := r.stores[node].WriteAt(a, want); err != nil {
		t.Fatal(err)
	}
	return want
}

func TestBulkReadGather(t *testing.T) {
	r := newRig(t, 4)
	// Two discontiguous spans on node 2: 32 + 16 lines.
	wantA := fillPattern(t, r, 2, 0x41000000, 32*64, 0x00)
	wantB := fillPattern(t, r, 2, 0x52000000, 16*64, 0x5a)
	sink := make([]byte, 48*64)
	var doneAt sim.Time
	var doneErr error
	err := r.rmcs[1].RequestBulk(0, BulkRequest{
		Kind: BulkRead,
		Spans: []Span{
			{Start: addr.Phys(0x41000000).WithNode(2), Lines: 32},
			{Start: addr.Phys(0x52000000).WithNode(2), Lines: 16},
		},
		Data: sink,
		Done: func(ts sim.Time, err error) { doneAt, doneErr = ts, err },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if doneErr != nil {
		t.Fatal(doneErr)
	}
	if doneAt == 0 {
		t.Fatal("burst never completed")
	}
	if !bytes.Equal(sink[:32*64], wantA) || !bytes.Equal(sink[32*64:], wantB) {
		t.Error("gathered bytes do not match the spans")
	}
	m := r.rmcs[1]
	if m.BulkBursts != 1 || m.BulkLines != 48 {
		t.Errorf("client counted %d bursts / %d lines, want 1 / 48", m.BulkBursts, m.BulkLines)
	}
	// 48 lines at the default 16 lines/frame is 2+1 frames.
	if m.BulkDataFrames != 3 {
		t.Errorf("client counted %d data frames, want 3", m.BulkDataFrames)
	}
}

func TestBulkWriteScatter(t *testing.T) {
	r := newRig(t, 4)
	payload := make([]byte, 40*64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	var doneErr error
	completed := false
	err := r.rmcs[1].RequestBulk(0, BulkRequest{
		Kind: BulkWrite,
		Spans: []Span{
			{Start: addr.Phys(0x10000000).WithNode(3), Lines: 8},
			{Start: addr.Phys(0x20000000).WithNode(3), Lines: 32},
		},
		Data: payload,
		Done: func(_ sim.Time, err error) { completed, doneErr = true, err },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !completed || doneErr != nil {
		t.Fatalf("completed=%v err=%v", completed, doneErr)
	}
	got := make([]byte, 40*64)
	if err := r.stores[3].ReadAt(0x10000000, got[:8*64]); err != nil {
		t.Fatal(err)
	}
	if err := r.stores[3].ReadAt(0x20000000, got[8*64:]); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("scattered bytes do not match the payload")
	}
}

// TestBulkScalarWriteOracle: the same line set written via N scalar
// requests and via one burst must leave identical memory state, and the
// burst must be deterministically cheaper.
func TestBulkScalarWriteOracle(t *testing.T) {
	payload := make([]byte, 64*64)
	for i := range payload {
		payload[i] = byte(i*13 + 5)
	}

	// Scalar: 64 dependent single-line writes (each issued when the
	// previous completes, the pointer-chasing discipline).
	scalarRig := newRig(t, 4)
	var scalarDone sim.Time
	var issue func(i int, now sim.Time)
	issue = func(i int, now sim.Time) {
		if i == 64 {
			scalarDone = now
			return
		}
		data := scalarRig.rmcs[1].LineBuf(64)
		copy(data, payload[i*64:(i+1)*64])
		pkt := ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x30000000 + i*64).WithNode(2), Count: 64, Data: data}
		if err := scalarRig.rmcs[1].Request(now, pkt, false, func(ts sim.Time, _ ht.Packet, err error) {
			if err != nil {
				t.Fatal(err)
			}
			issue(i+1, ts)
		}); err != nil {
			t.Fatal(err)
		}
	}
	issue(0, 0)
	scalarRig.eng.Run()

	bulkRig := newRig(t, 4)
	var bulkDone sim.Time
	if err := bulkRig.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:  BulkWrite,
		Spans: []Span{{Start: addr.Phys(0x30000000).WithNode(2), Lines: 64}},
		Data:  payload,
		Done: func(ts sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			bulkDone = ts
		},
	}); err != nil {
		t.Fatal(err)
	}
	bulkRig.eng.Run()

	a := make([]byte, 64*64)
	b := make([]byte, 64*64)
	if err := scalarRig.stores[2].ReadAt(0x30000000, a); err != nil {
		t.Fatal(err)
	}
	if err := bulkRig.stores[2].ReadAt(0x30000000, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("scalar and bulk writes left different memory state")
	}
	if scalarDone == 0 || bulkDone == 0 {
		t.Fatalf("runs did not complete (scalar %d, bulk %d)", scalarDone, bulkDone)
	}
	if bulkDone*4 >= scalarDone {
		t.Errorf("4 KiB burst took %d ps vs %d ps for 64 scalar writes; want at least 4x cheaper", bulkDone, scalarDone)
	}
}

// TestBulkReadCheaperThanScalar is the acceptance criterion's shape: a
// 4 KiB columnar gather must beat 64 dependent scalar line reads.
func TestBulkReadCheaperThanScalar(t *testing.T) {
	scalarRig := newRig(t, 4)
	var scalarDone sim.Time
	var issue func(i int, now sim.Time)
	issue = func(i int, now sim.Time) {
		if i == 64 {
			scalarDone = now
			return
		}
		pkt := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x30000000 + i*64).WithNode(2), Count: 64}
		if err := scalarRig.rmcs[1].Request(now, pkt, false, func(ts sim.Time, _ ht.Packet, err error) {
			if err != nil {
				t.Fatal(err)
			}
			issue(i+1, ts)
		}); err != nil {
			t.Fatal(err)
		}
	}
	issue(0, 0)
	scalarRig.eng.Run()

	bulkRig := newRig(t, 4)
	var bulkDone sim.Time
	if err := bulkRig.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:  BulkRead,
		Spans: []Span{{Start: addr.Phys(0x30000000).WithNode(2), Lines: 64}},
		Done: func(ts sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			bulkDone = ts
		},
	}); err != nil {
		t.Fatal(err)
	}
	bulkRig.eng.Run()

	if bulkDone*4 >= scalarDone {
		t.Errorf("4 KiB gather took %d ps vs %d ps for 64 scalar reads; want at least 4x cheaper", bulkDone, scalarDone)
	}
	t.Logf("scalar %d ps, bulk %d ps (%.1fx)", scalarDone, bulkDone, float64(scalarDone)/float64(bulkDone))
}

func TestBulkCopyNeverTransitsClient(t *testing.T) {
	r := newRig(t, 4)
	want := fillPattern(t, r, 2, 0x41000000, 32*64, 0x33)
	var doneErr error
	completed := false
	err := r.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:    BulkCopy,
		Spans:   []Span{{Start: addr.Phys(0x41000000).WithNode(2), Lines: 32}},
		CopyDst: addr.Phys(0x00800000).WithNode(3),
		Done:    func(_ sim.Time, err error) { completed, doneErr = true, err },
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !completed || doneErr != nil {
		t.Fatalf("completed=%v err=%v", completed, doneErr)
	}
	got := make([]byte, 32*64)
	if err := r.stores[3].ReadAt(0x00800000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("copied bytes do not match the source")
	}
	// The client hears exactly one frame — the destination's cumulative
	// ack. The payload went server-to-server.
	if got := r.rmcs[1].verif.Received; got != 1 {
		t.Errorf("client accepted %d frames, want 1 (the ack); DMA data must not transit the client", got)
	}
	if r.rmcs[1].BulkCopies != 1 {
		t.Errorf("BulkCopies = %d, want 1", r.rmcs[1].BulkCopies)
	}
}

func TestBulkCopySameNode(t *testing.T) {
	r := newRig(t, 4)
	want := fillPattern(t, r, 2, 0x41000000, 16*64, 0x77)
	completed := false
	err := r.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:    BulkCopy,
		Spans:   []Span{{Start: addr.Phys(0x41000000).WithNode(2), Lines: 16}},
		CopyDst: addr.Phys(0x00400000).WithNode(2),
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			completed = true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !completed {
		t.Fatal("same-node copy never completed")
	}
	got := make([]byte, 16*64)
	if err := r.stores[2].ReadAt(0x00400000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("same-node copy corrupted the data")
	}
}

func TestBulkRequestValidation(t *testing.T) {
	r := newRig(t, 4)
	m := r.rmcs[1]
	nop := func(sim.Time, error) {}
	cases := []struct {
		name string
		req  BulkRequest
	}{
		{"no done", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 1}}}},
		{"no spans", BulkRequest{Kind: BulkRead, Done: nop}},
		{"zero lines", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2)}}, Done: nop}},
		{"unaligned", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: addr.Phys(0x1001).WithNode(2), Lines: 1}}, Done: nop}},
		{"local span", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: 0x1000, Lines: 1}}, Done: nop}},
		{"own node", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(1), Lines: 1}}, Done: nop}},
		{"straddles nodes", BulkRequest{Kind: BulkRead, Spans: []Span{
			{Start: addr.Phys(0x1000).WithNode(2), Lines: 1},
			{Start: addr.Phys(0x1000).WithNode(3), Lines: 1},
		}, Done: nop}},
		{"over frame cap", BulkRequest{Kind: BulkRead, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 16*256 + 1}}, Done: nop}},
		{"short payload", BulkRequest{Kind: BulkWrite, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 2}}, Data: make([]byte, 64), Done: nop}},
		{"copy without dst", BulkRequest{Kind: BulkCopy, Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 1}}, Done: nop}},
		{"unknown kind", BulkRequest{Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 1}}, Done: nop}},
	}
	for _, tc := range cases {
		if err := m.RequestBulk(0, tc.req); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if m.BulkBursts != 0 {
		t.Errorf("rejected requests counted %d bursts", m.BulkBursts)
	}
}

// A steady-state 4 KiB bulk gather — doorbell, burst service, pipelined
// data frames, reassembly, completion — must not allocate on a
// fault-free system, same discipline as the scalar round trip.
func TestBulkReadSteadyStateAllocs(t *testing.T) {
	r := newRig(t, 4)
	sink := make([]byte, 64*64)
	spans := []Span{{Start: addr.Phys(0x30000000).WithNode(3), Lines: 64}}
	done := func(_ sim.Time, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	issue := func() {
		if err := r.rmcs[1].RequestBulk(r.eng.Now(), BulkRequest{
			Kind:  BulkRead,
			Spans: spans,
			Data:  sink,
			Done:  done,
		}); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
	}
	for i := 0; i < 16; i++ {
		issue()
	}
	if avg := testing.AllocsPerRun(500, issue); avg != 0 {
		t.Errorf("bulk read round trip allocates %.2f/op, want 0", avg)
	}
}

// TestBulkChaosTailRetransmit: under a seeded drop plan, a dropped
// burst frame retransmits only itself — every burst still completes
// with intact data, nothing is abandoned, and the burst is never
// reissued wholesale (BulkBursts counts each burst exactly once).
func TestBulkChaosTailRetransmit(t *testing.T) {
	r, inj := newFaultRig(t, 4, &faults.Plan{Seed: 7, Drop: 0.12})
	want := fillPattern(t, r, 2, 0x41000000, 64*64, 0x24)

	const bursts = 12
	completions := 0
	sinks := make([][]byte, bursts)
	for i := 0; i < bursts; i++ {
		sinks[i] = make([]byte, 64*64)
		if err := r.rmcs[1].RequestBulk(sim.Time(i)*8*r.p.RetransmitTimeout, BulkRequest{
			Kind:  BulkRead,
			Spans: []Span{{Start: addr.Phys(0x41000000).WithNode(2), Lines: 64}},
			Data:  sinks[i],
			Done: func(_ sim.Time, err error) {
				if err != nil {
					t.Errorf("burst failed under drop rate below the budget: %v", err)
					return
				}
				completions++
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	if completions != bursts {
		t.Fatalf("%d of %d bursts completed", completions, bursts)
	}
	for i, sink := range sinks {
		if !bytes.Equal(sink, want) {
			t.Errorf("burst %d reassembled wrong data under faults", i)
		}
	}
	if inj.Drops == 0 {
		t.Fatal("drop rate 0.12 injected nothing; test is vacuous")
	}
	total := func(f func(*RMC) uint64) (s uint64) {
		for _, m := range r.rmcs {
			s += f(m)
		}
		return
	}
	if total(func(m *RMC) uint64 { return m.Retransmits }) == 0 {
		t.Error("drops injected but nothing retransmitted")
	}
	if got := total(func(m *RMC) uint64 { return m.Abandoned }); got != 0 {
		t.Errorf("%d bursts abandoned below the retry budget", got)
	}
	if got := r.rmcs[1].BulkBursts; got != bursts {
		t.Errorf("client counted %d bursts for %d requests; a retransmit must never reissue the burst", got, bursts)
	}
}

// TestBulkChaosWrite: write bursts under drops — cumulative ack and all
// — land every byte exactly once.
func TestBulkChaosWrite(t *testing.T) {
	r, inj := newFaultRig(t, 4, &faults.Plan{Seed: 19, Drop: 0.1})
	payload := make([]byte, 48*64)
	for i := range payload {
		payload[i] = byte(i*3 + 1)
	}
	completed := false
	if err := r.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:  BulkWrite,
		Spans: []Span{{Start: addr.Phys(0x26000000).WithNode(4), Lines: 48}},
		Data:  payload,
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Errorf("write burst failed: %v", err)
				return
			}
			completed = true
		},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !completed {
		t.Fatal("write burst never completed")
	}
	got := make([]byte, 48*64)
	if err := r.stores[4].ReadAt(0x26000000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("faulted write burst corrupted the payload")
	}
	_ = inj
}

// Bulk metric families register only on first use: an RMC that never
// issues a burst must not mention them in a snapshot.
func TestBulkMetricsGatedOnUse(t *testing.T) {
	quiet := newRig(t, 2)
	pkt := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1000).WithNode(2), Count: 64}
	if err := quiet.rmcs[1].Request(0, pkt, false, func(sim.Time, ht.Packet, error) {}); err != nil {
		t.Fatal(err)
	}
	quiet.eng.Run()
	if snap := quiet.eng.Metrics().Snapshot().JSON(); bytes.Contains([]byte(snap), []byte("ncdsm_rmc_bulk")) {
		t.Error("bulk families appear in a snapshot without bulk traffic")
	}

	busy := newRig(t, 2)
	if err := busy.rmcs[1].RequestBulk(0, BulkRequest{
		Kind:  BulkRead,
		Spans: []Span{{Start: addr.Phys(0x1000).WithNode(2), Lines: 4}},
		Done:  func(sim.Time, error) {},
	}); err != nil {
		t.Fatal(err)
	}
	busy.eng.Run()
	if snap := busy.eng.Metrics().Snapshot().JSON(); !bytes.Contains([]byte(snap), []byte("ncdsm_rmc_bulk_bursts_total")) {
		t.Error("bulk families missing after bulk traffic")
	}
}
