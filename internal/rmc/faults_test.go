package rmc

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/addr"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ht"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/sim"
)

// newFaultRig builds the bare RMC network with a fault plan armed: one
// injector shared by the fabric and every RMC, exactly as the cluster
// wires it.
func newFaultRig(t *testing.T, nodes int, plan *faults.Plan) (*rig, *faults.Injector) {
	t.Helper()
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	p := params.Default()
	eng := sim.New()
	topo, err := mesh.NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(plan)
	r := &rig{
		eng:    eng,
		p:      p,
		fabric: mesh.NewFabric(eng, topo, p, inj),
		rmcs:   map[addr.NodeID]*RMC{},
		stores: map[addr.NodeID]*mem.Store{},
	}
	for i := 1; i <= nodes; i++ {
		id := addr.NodeID(i)
		st, err := mem.NewStore(p.MemPerNode)
		if err != nil {
			t.Fatal(err)
		}
		r.stores[id] = st
		m, err := New(Config{
			Self: id, Engine: eng, Params: p, Fabric: r.fabric,
			Peers: r, Bank: dram.NewBank(eng, id, p), Store: st,
			Faults: inj,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.rmcs[id] = m
	}
	return r, inj
}

func seededRead(t *testing.T, r *rig, node addr.NodeID, a addr.Phys, fill byte) ht.Packet {
	t.Helper()
	want := bytes.Repeat([]byte{fill}, 64)
	if err := r.stores[node].WriteAt(a, want); err != nil {
		t.Fatal(err)
	}
	return ht.Packet{Cmd: ht.CmdRdSized, Addr: a.WithNode(node), Count: 64}
}

// TestRetransmitRecoversFromDrops: under a heavy drop rate every request
// still completes with the right data — the retransmission layer absorbs
// the losses, and nothing is abandoned.
func TestRetransmitRecoversFromDrops(t *testing.T) {
	r, inj := newFaultRig(t, 4, &faults.Plan{Seed: 11, Drop: 0.2})
	req := seededRead(t, r, 2, 0x41000000, 0x5a)

	const n = 40
	completions := 0
	for i := 0; i < n; i++ {
		if err := r.rmcs[1].Request(sim.Time(i)*r.p.RetransmitTimeout, req, false, func(_ sim.Time, rsp ht.Packet, err error) {
			if err != nil {
				t.Errorf("request failed under drop rate below the budget: %v", err)
				return
			}
			if len(rsp.Data) != 64 || rsp.Data[0] != 0x5a {
				t.Error("recovered response carried wrong data")
			}
			completions++
		}); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	if completions != n {
		t.Fatalf("%d of %d requests completed", completions, n)
	}
	if inj.Drops == 0 {
		t.Fatal("drop rate 0.2 over 40 round trips injected nothing; test is vacuous")
	}
	total := func(f func(*RMC) uint64) (s uint64) {
		for _, m := range r.rmcs {
			s += f(m)
		}
		return
	}
	if total(func(m *RMC) uint64 { return m.Retransmits }) == 0 {
		t.Error("drops injected but nothing retransmitted")
	}
	if got := total(func(m *RMC) uint64 { return m.Abandoned }); got != 0 {
		t.Errorf("%d requests abandoned below the retry budget", got)
	}
}

// TestCorruptedFramesRetransmitted: probability-1 corruption mangles
// every arrival; the receiver counts and discards them and the sender
// finally abandons — corruption alone can never complete a request or
// crash the server.
func TestCorruptedFramesRetransmitted(t *testing.T) {
	r, _ := newFaultRig(t, 4, &faults.Plan{Seed: 3, Corrupt: 1})
	req := seededRead(t, r, 2, 0x41000000, 0x77)

	var gotErr error
	calls := 0
	if err := r.rmcs[1].Request(0, req, false, func(_ sim.Time, _ ht.Packet, err error) {
		calls++
		gotErr = err
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if calls != 1 {
		t.Fatalf("done invoked %d times", calls)
	}
	var ue *UnreachableError
	if !errors.As(gotErr, &ue) {
		t.Fatalf("err = %v, want *UnreachableError", gotErr)
	}
	if ue.Dst != 2 || ue.Attempts != r.p.RetransmitBudget+1 {
		t.Errorf("UnreachableError{%d, %d}, want dst 2 after %d attempts", ue.Dst, ue.Attempts, r.p.RetransmitBudget+1)
	}
	// Every mangled copy arrived and was counted by the server's CRC check.
	if got := r.rmcs[2].verif.Corrupt; got != uint64(r.p.RetransmitBudget)+1 {
		t.Errorf("server counted %d corrupt frames, want %d", got, r.p.RetransmitBudget+1)
	}
	if r.rmcs[1].Abandoned != 1 {
		t.Errorf("Abandoned = %d, want 1", r.rmcs[1].Abandoned)
	}
}

// TestAbandonWhenIsolated: a destination cut off for the whole run fails
// with the typed error after the budget — graceful degradation, not a
// wedged event loop.
func TestAbandonWhenIsolated(t *testing.T) {
	win := faults.Window{Start: 0, End: 1 << 50}
	r, _ := newFaultRig(t, 8, &faults.Plan{
		Seed: 1,
		LinkDowns: []faults.LinkWindow{
			{From: 1, To: 2, Window: win},
			{From: 1, To: 5, Window: win},
		},
	})
	req := seededRead(t, r, 6, 0x41000000, 0x01)

	var gotErr error
	if err := r.rmcs[1].Request(0, req, false, func(_ sim.Time, rsp ht.Packet, err error) {
		gotErr = err
		if err == nil {
			t.Error("request to an isolated node completed")
		}
		if rsp.Cmd != 0 || rsp.Data != nil {
			t.Error("failed request carried a response payload")
		}
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run() // must terminate: the budget bounds the retry loop
	var ue *UnreachableError
	if !errors.As(gotErr, &ue) {
		t.Fatalf("err = %v, want *UnreachableError", gotErr)
	}
	if ue.Dst != 6 {
		t.Errorf("UnreachableError.Dst = %d, want 6", ue.Dst)
	}
	if r.rmcs[1].Retransmits != uint64(r.p.RetransmitBudget) {
		t.Errorf("Retransmits = %d, want the full budget %d", r.rmcs[1].Retransmits, r.p.RetransmitBudget)
	}
}

// TestNackStormBackoff: during a scheduled storm the client refuses all
// admissions; requests wait it out under the existing NACK backoff and
// complete when the window closes.
func TestNackStormBackoff(t *testing.T) {
	const stormEnd = 200 * 1_000_000 // 200us in ps
	r, _ := newFaultRig(t, 4, &faults.Plan{
		Seed:       1,
		NackStorms: []faults.NodeWindow{{Node: 1, Window: faults.Window{Start: 0, End: stormEnd}}},
	})
	req := seededRead(t, r, 2, 0x41000000, 0x33)

	var doneAt sim.Time
	completed := false
	if err := r.rmcs[1].Request(0, req, false, func(ts sim.Time, rsp ht.Packet, err error) {
		if err != nil {
			t.Errorf("request failed: %v", err)
		}
		doneAt, completed = ts, true
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	if !completed {
		t.Fatal("request never completed after the storm")
	}
	if doneAt < stormEnd {
		t.Errorf("completed at %d, inside the storm window ending %d", doneAt, stormEnd)
	}
	if r.rmcs[1].StormNACKs == 0 {
		t.Error("storm refused nothing")
	}
	if r.rmcs[1].Retries == 0 {
		t.Error("storm NACKs did not go through the retry backoff")
	}
}

// TestStallServerDelaysService: a scheduled stall consumes the server's
// capacity; a request arriving during the window completes only after it.
func TestStallServerDelaysService(t *testing.T) {
	const stall = 500 * 1_000_000 // 500us in ps
	baseline := func(stalled bool) sim.Time {
		r, _ := newFaultRig(t, 4, &faults.Plan{Seed: 1, Drop: 0}) // empty plan: injector unused
		req := seededRead(t, r, 2, 0x41000000, 0x44)
		if stalled {
			r.rmcs[2].StallServer(0, stall)
		}
		var doneAt sim.Time
		if err := r.rmcs[1].Request(0, req, false, func(ts sim.Time, _ ht.Packet, err error) {
			if err != nil {
				t.Fatalf("request failed: %v", err)
			}
			doneAt = ts
		}); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
		return doneAt
	}
	// The stall starts at t=0 but the request reaches the server a round
	// trip's front half later, so the observed delay is the stall minus
	// that arrival offset.
	clean, delayed := baseline(false), baseline(true)
	if got := delayed - clean; got <= stall*9/10 || got > stall {
		t.Errorf("stall delayed completion by %d, want just under %d", got, stall)
	}
	r, _ := newFaultRig(t, 2, &faults.Plan{Seed: 1})
	r.rmcs[1].StallServer(0, 1)
	if r.rmcs[1].Stalls != 1 {
		t.Errorf("Stalls = %d, want 1", r.rmcs[1].Stalls)
	}
}

// TestFaultFreeSignatureCompatible: without a plan the error argument is
// always nil — the old contract, now typed.
func TestFaultFreeSignatureCompatible(t *testing.T) {
	r := newRig(t, 4)
	req := seededRead(t, r, 2, 0x41000000, 0x55)
	if err := r.rmcs[1].Request(0, req, false, func(_ sim.Time, rsp ht.Packet, err error) {
		if err != nil {
			t.Errorf("fault-free request returned %v", err)
		}
		if rsp.Data[0] != 0x55 {
			t.Error("wrong data")
		}
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
}
