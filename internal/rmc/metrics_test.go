package rmc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestMetricsInstrumentation drives one remote read and checks the
// engine registry saw it: request/forward/serve counters, HNC frame
// accounting, and the round-trip latency histogram.
func TestMetricsInstrumentation(t *testing.T) {
	r := newRig(t, 4)
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1000).WithNode(2), Count: 64}
	if err := r.rmcs[1].Request(0, req, false, func(sim.Time, ht.Packet, error) {}); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	snap := r.eng.Metrics().Snapshot()
	val := func(name string, ls metrics.Labels) float64 {
		v, _ := snap.Value(name, ls)
		return v
	}

	n1 := metrics.L("node", "1")
	n2 := metrics.L("node", "2")
	if got := val(metrics.FamRMCRequests, n1); got != 1 {
		t.Errorf("node 1 requests = %v, want 1", got)
	}
	if got := val(metrics.FamRMCForwarded, n1); got != 1 {
		t.Errorf("node 1 forwarded = %v, want 1", got)
	}
	if got := val(metrics.FamRMCServedLocal, n2); got != 1 {
		t.Errorf("node 2 served = %v, want 1", got)
	}
	// The request frame lands at node 2's verifier, the reply at node 1's.
	if got := val(metrics.FamHNCFrames, n2); got != 1 {
		t.Errorf("node 2 HNC frames = %v, want 1", got)
	}
	if got := val(metrics.FamHNCFrames, n1); got != 1 {
		t.Errorf("node 1 HNC frames = %v, want 1", got)
	}
	if got := snap.Total(metrics.FamHNCCRCFailures); got != 0 {
		t.Errorf("CRC failures = %v on a clean fabric", got)
	}
	// One observation in node 1's latency histogram.
	f := snap.Family(metrics.FamRMCLatency)
	if f == nil {
		t.Fatal("latency family missing")
	}
	if got := val(metrics.FamRMCLatency, n1); got != 1 {
		t.Errorf("node 1 latency observations = %v, want 1", got)
	}
}
