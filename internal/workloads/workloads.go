// Package workloads supplies the benchmark drivers of the evaluation:
// the random-access microbenchmark of Figures 6–8 (micro layer: streams
// of line-granular physical accesses for cpu threads) and the
// PARSEC-class synthetic kernels of Figure 11 (macro layer: address
// generators with each benchmark's footprint and locality class, run
// against a memmodel.Accessor).
//
// The PARSEC substitution (see DESIGN.md §2): we cannot run the real
// binaries, but Figure 11's result is driven entirely by (a) footprint
// relative to the local memory available to the swap configuration and
// (b) access locality. The kernels parameterize exactly those:
// blackscholes streams sequentially (high locality, footprint > local),
// raytrace mixes bursty node reads with a hot set (moderate locality),
// canneal pointer-chases uniformly over a large footprint (minimal
// locality), and streamcluster streams over a footprint that fits
// locally (swap never engages).
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/memmodel"
	"repro/internal/params"
)

// RandomStream builds the microbenchmark's access stream: count
// line-aligned accesses drawn uniformly over the given physical ranges
// (the memory the client reserved on its servers), deterministic in
// seed. writeFrac in [0,1] selects the store fraction; Figures 6–8 use
// pure loads (0).
func RandomStream(seed int64, ranges []addr.Range, count int, writeFrac float64) (cpu.Stream, error) {
	if len(ranges) == 0 {
		return nil, fmt.Errorf("workloads: no target ranges")
	}
	for _, r := range ranges {
		if r.Size < params.CacheLineSize {
			return nil, fmt.Errorf("workloads: range %v smaller than a line", r)
		}
	}
	if count < 0 || writeFrac < 0 || writeFrac > 1 {
		return nil, fmt.Errorf("workloads: bad count %d or write fraction %v", count, writeFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	issued := 0
	return cpu.FuncStream(func() (cpu.Access, bool) {
		if issued >= count {
			return cpu.Access{}, false
		}
		issued++
		r := ranges[rng.Intn(len(ranges))]
		lines := r.Size / params.CacheLineSize
		off := uint64(rng.Int63n(int64(lines))) * params.CacheLineSize
		return cpu.Access{
			Addr:  r.Start + addr.Phys(off),
			Write: rng.Float64() < writeFrac,
		}, true
	}), nil
}

// Kernel is one synthetic PARSEC-class benchmark.
type Kernel struct {
	// Name matches the PARSEC benchmark it stands in for.
	Name string
	// Footprint is the dataset size in bytes.
	Footprint uint64
	// Accesses is the number of memory accesses the run performs.
	Accesses uint64
	// ComputePerAccess is the instruction work charged per access —
	// constant across memory configurations, which is why memory-bound
	// kernels separate the configurations and compute-bound ones don't.
	ComputePerAccess params.Duration
	// gen returns a deterministic address generator.
	gen func(k Kernel, seed int64) func() (a uint64, write bool)
}

// Result is one kernel run under one memory configuration.
type Result struct {
	Kernel   string
	Config   string
	MemTime  params.Duration
	CompTime params.Duration
	Accesses uint64
}

// Total returns memory plus compute time.
func (r Result) Total() params.Duration { return r.MemTime + r.CompTime }

// runChunk is the batch size Run prices at a time: large enough that
// per-batch dispatch vanishes, small enough that the op buffer stays
// cache-resident. Batch boundaries never change costs or accessor
// state, so the chunk size is purely a throughput knob.
const runChunk = 4096

// Run executes the kernel against an accessor. The generator's address
// sequence is buffered in runChunk-sized batches and priced through the
// batched access engine, so the accessor's per-access virtual dispatch
// is paid once per chunk instead of once per access.
func (k Kernel) Run(acc memmodel.Accessor, seed int64) Result {
	next := k.gen(k, seed)
	res := Result{Kernel: k.Name, Config: acc.Name()}
	ops := make([]memmodel.AccessOp, runChunk)
	for done := uint64(0); done < k.Accesses; {
		n := uint64(runChunk)
		if left := k.Accesses - done; left < n {
			n = left
		}
		for i := uint64(0); i < n; i++ {
			a, w := next()
			ops[i] = memmodel.AccessOp{Addr: a, Write: w}
		}
		res.MemTime += memmodel.Batch(acc, ops[:n])
		done += n
	}
	res.Accesses = k.Accesses
	res.CompTime = params.Duration(k.Accesses) * k.ComputePerAccess
	return res
}

// ScaleRef is the reference footprint unit: the local memory available
// to the swap configuration's dataset (its residency budget), so kernel
// footprints are stated as multiples of what fits locally.
func ScaleRef(p params.Params) uint64 {
	return uint64(p.SwapResidentPages) * params.PageSize
}

// Blackscholes streams sequentially over an option array larger than
// local memory: every page is touched ~512 times per pass, so swap
// amortizes well but still pays a full refault sweep per pass.
func Blackscholes(p params.Params) Kernel {
	foot := 4 * ScaleRef(p)
	return Kernel{
		Name:             "blackscholes",
		Footprint:        foot,
		Accesses:         2 * foot / 16, // two passes, 16-byte stride
		ComputePerAccess: 150 * params.Nanosecond,
		gen: func(k Kernel, seed int64) func() (uint64, bool) {
			var pos uint64
			n := uint64(0)
			return func() (uint64, bool) {
				a := pos % k.Footprint
				pos += 16
				n++
				// Every 8th access writes the computed price back.
				return a, n%8 == 0
			}
		},
	}
}

// Raytrace mixes bursty node reads (32 sequential words in one random
// block, a BVH-node visit) with a hot working set — upper BVH levels and
// shading data, sized to fit local residency — absorbing most bursts.
// The cold tail of scene geometry is what the swap configuration pays
// for, at roughly the paper's 2x.
func Raytrace(p params.Params) Kernel {
	foot := 8 * ScaleRef(p)
	return Kernel{
		Name:             "raytrace",
		Footprint:        foot,
		Accesses:         600_000,
		ComputePerAccess: 120 * params.Nanosecond,
		gen: func(k Kernel, seed int64) func() (uint64, bool) {
			rng := rand.New(rand.NewSource(seed))
			hot := k.Footprint / 10
			var base uint64
			inBurst := 0
			return func() (uint64, bool) {
				if inBurst == 0 {
					inBurst = 32
					if rng.Float64() < 0.85 {
						base = uint64(rng.Int63n(int64(hot/8))) * 8
					} else {
						base = uint64(rng.Int63n(int64(k.Footprint/8-32))) * 8
					}
				}
				a := base
				base += 8
				inBurst--
				return a, false
			}
		},
	}
}

// Canneal pointer-chases uniformly over a very large footprint: each
// simulated move reads two random elements and writes both back. The
// locality term of Equation (1) collapses to ~1, which is what makes
// remote swap prohibitive in Figure 11.
func Canneal(p params.Params) Kernel {
	foot := 32 * ScaleRef(p)
	return Kernel{
		Name:             "canneal",
		Footprint:        foot,
		Accesses:         400_000,
		ComputePerAccess: 60 * params.Nanosecond,
		gen: func(k Kernel, seed int64) func() (uint64, bool) {
			rng := rand.New(rand.NewSource(seed))
			phase := 0
			var a, b uint64
			return func() (uint64, bool) {
				switch phase {
				case 0:
					a = uint64(rng.Int63n(int64(k.Footprint/8))) * 8
					phase = 1
					return a, false
				case 1:
					b = uint64(rng.Int63n(int64(k.Footprint/8))) * 8
					phase = 2
					return b, false
				case 2:
					phase = 3
					return a, true
				default:
					phase = 0
					return b, true
				}
			}
		},
	}
}

// Streamcluster streams repeatedly over a footprint that fits in local
// memory: the swap configuration faults each page once during warmup and
// never again, so over the run's many clustering passes swap converges
// with local — the paper's control case.
func Streamcluster(p params.Params) Kernel {
	foot := ScaleRef(p) / 2
	return Kernel{
		Name:             "streamcluster",
		Footprint:        foot,
		Accesses:         32 * foot / 8, // many clustering passes, word stride
		ComputePerAccess: 130 * params.Nanosecond,
		gen: func(k Kernel, seed int64) func() (uint64, bool) {
			var pos uint64
			return func() (uint64, bool) {
				a := pos % k.Footprint
				pos += 8
				return a, false
			}
		},
	}
}

// ParsecSuite returns the Figure 11 benchmark set in the paper's order.
func ParsecSuite(p params.Params) []Kernel {
	return []Kernel{Blackscholes(p), Raytrace(p), Canneal(p), Streamcluster(p)}
}
