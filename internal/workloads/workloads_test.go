package workloads

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/memmodel"
	"repro/internal/params"
)

func TestRandomStreamValidation(t *testing.T) {
	if _, err := RandomStream(1, nil, 10, 0); err == nil {
		t.Error("empty ranges accepted")
	}
	r := []addr.Range{{Start: addr.NodeBase(2), Size: 1 << 20}}
	if _, err := RandomStream(1, r, -1, 0); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := RandomStream(1, r, 10, 1.5); err == nil {
		t.Error("write fraction > 1 accepted")
	}
	if _, err := RandomStream(1, []addr.Range{{Start: 0, Size: 8}}, 10, 0); err == nil {
		t.Error("sub-line range accepted")
	}
}

func TestRandomStreamStaysInRanges(t *testing.T) {
	ranges := []addr.Range{
		{Start: addr.NodeBase(2), Size: 1 << 20},
		{Start: addr.NodeBase(5) + 4096, Size: 1 << 16},
	}
	s, err := RandomStream(42, ranges, 2000, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	n, writes := 0, 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		n++
		if a.Write {
			writes++
		}
		if uint64(a.Addr)%params.CacheLineSize != 0 {
			t.Fatalf("access %v not line-aligned", a.Addr)
		}
		in := false
		for _, r := range ranges {
			if r.Contains(a.Addr) {
				in = true
			}
		}
		if !in {
			t.Fatalf("access %v outside every range", a.Addr)
		}
	}
	if n != 2000 {
		t.Errorf("stream yielded %d accesses", n)
	}
	if writes == 0 || writes == n {
		t.Errorf("write mix = %d/%d, want a 30%% blend", writes, n)
	}
}

func TestRandomStreamDeterministic(t *testing.T) {
	ranges := []addr.Range{{Start: addr.NodeBase(3), Size: 1 << 20}}
	collect := func(seed int64) []addr.Phys {
		s, err := RandomStream(seed, ranges, 100, 0)
		if err != nil {
			t.Fatal(err)
		}
		var out []addr.Phys
		for {
			a, ok := s.Next()
			if !ok {
				return out
			}
			out = append(out, a.Addr)
		}
	}
	a, b := collect(7), collect(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	c := collect(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestKernelDeterminism(t *testing.T) {
	p := params.Default()
	for _, k := range ParsecSuite(p) {
		r1 := k.Run(memmodel.Local{P: p}, 11)
		r2 := k.Run(memmodel.Local{P: p}, 11)
		if r1.MemTime != r2.MemTime || r1.Accesses != r2.Accesses {
			t.Errorf("%s: nondeterministic run", k.Name)
		}
		if r1.Accesses != k.Accesses {
			t.Errorf("%s: ran %d accesses, declared %d", k.Name, r1.Accesses, k.Accesses)
		}
		if r1.CompTime != params.Duration(k.Accesses)*k.ComputePerAccess {
			t.Errorf("%s: compute time wrong", k.Name)
		}
		if r1.Total() != r1.MemTime+r1.CompTime {
			t.Errorf("%s: Total inconsistent", k.Name)
		}
	}
}

func TestKernelFootprintDiscipline(t *testing.T) {
	// Every generated address stays within the declared footprint.
	p := params.Default()
	for _, k := range ParsecSuite(p) {
		gen := k.gen(k, 3)
		for i := 0; i < 20000; i++ {
			a, _ := gen()
			if a >= k.Footprint {
				t.Fatalf("%s: address %d beyond footprint %d", k.Name, a, k.Footprint)
			}
		}
	}
}

func TestSuiteShapesUnderConfigs(t *testing.T) {
	// The Figure 11 orderings that must hold per kernel.
	p := params.Default()
	run := func(k Kernel, cfg memmodel.Config) params.Duration {
		base, err := memmodel.Build(cfg, p, 1, p.SwapResidentPages)
		if err != nil {
			t.Fatal(err)
		}
		acc, err := memmodel.NewLineCached(base, p, memmodel.DefaultCacheLines)
		if err != nil {
			t.Fatal(err)
		}
		return k.Run(acc, 5).Total()
	}

	for _, k := range ParsecSuite(p) {
		local := run(k, memmodel.ConfigLocal)
		remote := run(k, memmodel.ConfigRemote)
		rswap := run(k, memmodel.ConfigRemoteSwap)
		if remote < local {
			t.Errorf("%s: remote (%d) beat local (%d)", k.Name, remote, local)
		}
		switch k.Name {
		case "blackscholes", "raytrace":
			lo, hi := 1.5, 8.0
			ratio := float64(rswap) / float64(remote)
			if ratio < lo || ratio > hi {
				t.Errorf("%s: swap/remote = %.2f, want within [%v,%v] (paper: ~2x)", k.Name, ratio, lo, hi)
			}
		case "canneal":
			if float64(rswap)/float64(remote) < 20 {
				t.Errorf("canneal: swap/remote = %.2f, should be prohibitive", float64(rswap)/float64(remote))
			}
			if float64(remote)/float64(local) < 1.5 {
				t.Errorf("canneal: remote/local = %.2f, paper shows a noticeable gap", float64(remote)/float64(local))
			}
		case "streamcluster":
			if float64(rswap)/float64(local) > 1.2 {
				t.Errorf("streamcluster: swap/local = %.2f, should fit locally and tie", float64(rswap)/float64(local))
			}
		}
	}
}

func TestScaleRef(t *testing.T) {
	p := params.Default()
	if got := ScaleRef(p); got != uint64(p.SwapResidentPages)*params.PageSize {
		t.Errorf("ScaleRef = %d", got)
	}
	// Streamcluster fits locally; canneal dwarfs it.
	if Streamcluster(p).Footprint >= ScaleRef(p) {
		t.Error("streamcluster should fit in local memory")
	}
	if Canneal(p).Footprint <= 8*ScaleRef(p) {
		t.Error("canneal should dwarf local memory")
	}
}
