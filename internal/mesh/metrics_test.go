package mesh

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// TestMetricsInstrumentation delivers one frame across the mesh and
// checks the per-link and fabric-wide counters.
func TestMetricsInstrumentation(t *testing.T) {
	eng := sim.New()
	f := NewFabric(eng, topo4x4(t), params.Default(), nil)
	// Node 1 -> node 3 is two hops along the first row.
	_, hops := f.Deliver(0, 1, 3, 72)
	if hops != 2 {
		t.Fatalf("hops = %d, want 2", hops)
	}
	snap := eng.Metrics().Snapshot()
	val := func(name string, ls metrics.Labels) float64 {
		v, _ := snap.Value(name, ls)
		return v
	}
	if got := snap.Total(metrics.FamMeshDelivered); got != 1 {
		t.Errorf("delivered = %v, want 1", got)
	}
	if got := snap.Total(metrics.FamMeshHops); got != 2 {
		t.Errorf("hops = %v, want 2", got)
	}
	if got := val(metrics.FamMeshLinkFrames, metrics.L("from", "1", "to", "2")); got != 1 {
		t.Errorf("link 1->2 frames = %v, want 1", got)
	}
	if got := val(metrics.FamMeshLinkBytes, metrics.L("from", "2", "to", "3")); got != 72 {
		t.Errorf("link 2->3 bytes = %v, want 72", got)
	}
	if got := val(metrics.FamMeshLinkFrames, metrics.L("from", "2", "to", "1")); got != 0 {
		t.Errorf("reverse link carried %v frames", got)
	}
	// The snapshot's link view agrees.
	links := snap.Links()
	var active int
	for _, l := range links {
		if l.Frames > 0 {
			active++
		}
	}
	if active != 2 {
		t.Errorf("%d active links in view, want 2", active)
	}
}
