// Package mesh models the prototype's inter-node fabric: a W×H 2D mesh
// of HTX switches with deterministic XY dimension-order routing
// (deadlock-free), per-link FIFO serialization, and optional express
// links — the prototype's HTX card has six connectors of which four form
// the mesh, leaving spares for direct point-to-point links such as the
// private control link of the Figure 8 experiment.
package mesh

import (
	"fmt"

	"repro/internal/addr"
)

// Topology is the geometry of a W×H mesh. Node identifiers are 1-based
// in row-major order: node 1 at (0,0), node W at (W-1,0), and so on —
// identifier 0 stays reserved, matching the addressing scheme.
type Topology struct {
	W, H int
}

// NewTopology validates and returns a mesh geometry.
func NewTopology(w, h int) (Topology, error) {
	if w < 1 || h < 1 {
		return Topology{}, fmt.Errorf("mesh: invalid geometry %dx%d", w, h)
	}
	if w*h > addr.MaxNode {
		return Topology{}, fmt.Errorf("mesh: %dx%d exceeds %d addressable nodes", w, h, addr.MaxNode)
	}
	return Topology{W: w, H: h}, nil
}

// Nodes returns the node count.
func (t Topology) Nodes() int { return t.W * t.H }

// NodeAt returns the identifier of the node at mesh coordinate (x, y).
func (t Topology) NodeAt(x, y int) addr.NodeID {
	if x < 0 || x >= t.W || y < 0 || y >= t.H {
		panic(fmt.Sprintf("mesh: coordinate (%d,%d) outside %dx%d", x, y, t.W, t.H))
	}
	return addr.NodeID(y*t.W + x + 1)
}

// Coord returns the mesh coordinate of a node.
func (t Topology) Coord(n addr.NodeID) (x, y int) {
	if !t.Contains(n) {
		panic(fmt.Sprintf("mesh: node %d outside %dx%d", n, t.W, t.H))
	}
	i := int(n) - 1
	return i % t.W, i / t.W
}

// Contains reports whether the node identifier is part of this mesh.
func (t Topology) Contains(n addr.NodeID) bool { return n >= 1 && int(n) <= t.Nodes() }

// Hops returns the Manhattan distance between two nodes — the hop count
// of the XY route.
func (t Topology) Hops(a, b addr.NodeID) int {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	return abs(ax-bx) + abs(ay-by)
}

// Path returns the XY dimension-order route from a to b, inclusive of
// both endpoints: the packet first travels along X to the destination
// column, then along Y. Dimension-order routing is deadlock-free on a
// mesh, which is why the prototype's simple switches can use it.
func (t Topology) Path(a, b addr.NodeID) []addr.NodeID {
	ax, ay := t.Coord(a)
	bx, by := t.Coord(b)
	path := []addr.NodeID{a}
	x, y := ax, ay
	for x != bx {
		x += sign(bx - x)
		path = append(path, t.NodeAt(x, y))
	}
	for y != by {
		y += sign(by - y)
		path = append(path, t.NodeAt(x, y))
	}
	return path
}

// Neighbors returns the mesh neighbors of a node.
func (t Topology) Neighbors(n addr.NodeID) []addr.NodeID {
	x, y := t.Coord(n)
	var out []addr.NodeID
	if x > 0 {
		out = append(out, t.NodeAt(x-1, y))
	}
	if x < t.W-1 {
		out = append(out, t.NodeAt(x+1, y))
	}
	if y > 0 {
		out = append(out, t.NodeAt(x, y-1))
	}
	if y < t.H-1 {
		out = append(out, t.NodeAt(x, y+1))
	}
	return out
}

// AtDistance returns all nodes exactly d hops from n, in identifier
// order. Used by experiments that place memory servers at a chosen
// distance from a client.
func (t Topology) AtDistance(n addr.NodeID, d int) []addr.NodeID {
	var out []addr.NodeID
	for id := addr.NodeID(1); int(id) <= t.Nodes(); id++ {
		if id != n && t.Hops(n, id) == d {
			out = append(out, id)
		}
	}
	return out
}

// Partition is a static kx×ky tiling of the mesh into k = kx·ky
// rectangular regions, one simulation shard per region. Regions must
// tile the mesh exactly (kx divides W, ky divides H) so every shard owns
// the same number of nodes and the assignment is a pure function of the
// geometry — the determinism contract requires shard membership to be
// identical on every run.
type Partition struct {
	topo   Topology
	KX, KY int // region grid
	RW, RH int // region extent in mesh coordinates
}

// Partition splits the mesh into k regions, choosing the most-square
// kx×ky factorization that tiles the geometry. It fails when no
// factorization of k fits (e.g. a prime k that divides neither side).
func (t Topology) Partition(k int) (Partition, error) {
	if k < 1 {
		return Partition{}, fmt.Errorf("mesh: shard count %d < 1", k)
	}
	if k > t.Nodes() {
		return Partition{}, fmt.Errorf("mesh: %d shards exceed %d nodes", k, t.Nodes())
	}
	// Scan divisor pairs from the square root down: the first (kx, ky)
	// with kx | W and ky | H is the most-square tiling. Try both
	// orientations of each pair so wide meshes can take the wide factor.
	for d := isqrt(k); d >= 1; d-- {
		if k%d != 0 {
			continue
		}
		for _, p := range [2][2]int{{k / d, d}, {d, k / d}} {
			kx, ky := p[0], p[1]
			if kx <= t.W && ky <= t.H && t.W%kx == 0 && t.H%ky == 0 {
				return Partition{topo: t, KX: kx, KY: ky, RW: t.W / kx, RH: t.H / ky}, nil
			}
		}
	}
	return Partition{}, fmt.Errorf("mesh: no %d-shard tiling of a %dx%d mesh (shard count must factor as kx*ky with kx|%d, ky|%d)",
		k, t.W, t.H, t.W, t.H)
}

// Shards returns the region count.
func (p Partition) Shards() int { return p.KX * p.KY }

// ShardOf returns the region index of a node, row-major over the region
// grid.
func (p Partition) ShardOf(n addr.NodeID) int {
	x, y := p.topo.Coord(n)
	return (y/p.RH)*p.KX + x/p.RW
}

func isqrt(v int) int {
	r := 0
	for (r+1)*(r+1) <= v {
		r++
	}
	return r
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sign(v int) int {
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}
