package mesh

import (
	"testing"

	"repro/internal/params"
	"repro/internal/sim"
)

// Burst data frames are just bigger frames to the fabric — no second
// wire protocol — so link occupancy must scale with their payload and
// a burst must contend with scalar traffic on shared links.

// TestBurstFrameOccupancy: a 16-line (1 KiB payload) burst frame holds
// a link ~16x longer than a single-line frame; occupancy is charged in
// cache-line units of wire bytes.
func TestBurstFrameOccupancy(t *testing.T) {
	p := params.Default()
	eng := sim.New()
	f := NewFabric(eng, topo4x4(t), p, nil)

	scalarWire := 64 + 16   // one line + headers
	burstWire := 16*64 + 16 // one 16-line data frame + headers
	scalarDone, _ := f.Deliver(0, 1, 2, scalarWire)
	eng2 := sim.New()
	f2 := NewFabric(eng2, topo4x4(t), p, nil)
	burstDone, _ := f2.Deliver(0, 1, 2, burstWire)

	scalarUnits := sim.Time((scalarWire + params.CacheLineSize - 1) / params.CacheLineSize)
	burstUnits := sim.Time((burstWire + params.CacheLineSize - 1) / params.CacheLineSize)
	if burstDone-scalarDone != (burstUnits-scalarUnits)*p.LinkOccupancy {
		t.Errorf("burst frame done at %d vs scalar %d; occupancy not proportional to wire bytes", burstDone, scalarDone)
	}
}

// TestBurstContendsWithScalarTraffic: a burst frame and a scalar frame
// issued together on the same link serialize — the scalar frame waits
// out the burst's full occupancy, which is exactly the contention the
// cluster's burst scheduler has to price.
func TestBurstContendsWithScalarTraffic(t *testing.T) {
	p := params.Default()
	eng := sim.New()
	f := NewFabric(eng, topo4x4(t), p, nil)

	burstWire := 16*64 + 16
	scalarWire := 64 + 16
	burstDone, _ := f.Deliver(0, 1, 2, burstWire)
	queuedDone, _ := f.Deliver(0, 1, 2, scalarWire)

	// Alone, the scalar frame finishes in hop latency + its own (small)
	// occupancy; behind the burst it cannot finish before the burst does.
	eng2 := sim.New()
	alone, _ := NewFabric(eng2, topo4x4(t), p, nil).Deliver(0, 1, 2, scalarWire)
	if queuedDone <= alone {
		t.Errorf("scalar frame behind a burst finished at %d, alone at %d; no contention", queuedDone, alone)
	}
	if queuedDone <= burstDone {
		t.Errorf("scalar frame (%d) overtook the burst occupying the link (%d)", queuedDone, burstDone)
	}

	// The link accounted every byte of both frames.
	elapsed := queuedDone
	u, err := f.LinkUtilization(1, 2, elapsed)
	if err != nil {
		t.Fatal(err)
	}
	if u <= 0 || u > 1 {
		t.Errorf("link utilization %v after burst + scalar traffic", u)
	}
}
