package mesh

import (
	"testing"

	"repro/internal/faults"
	"repro/internal/params"
	"repro/internal/sim"
)

func faultFabric(t *testing.T, plan *faults.Plan) (*Fabric, *faults.Injector) {
	t.Helper()
	topo := topo4x4(t)
	inj := faults.NewInjector(plan)
	return NewFabric(sim.New(), topo, params.Default(), inj), inj
}

// TestFaultFreeOutcomeMatchesDeliver: without an injector the fault-aware
// path is exactly the old XY delivery — same arrival, same hops, same
// counters — which is what keeps empty-plan runs byte-identical.
func TestFaultFreeOutcomeMatchesDeliver(t *testing.T) {
	topo := topo4x4(t)
	p := params.Default()
	a := NewFabric(sim.New(), topo, p, nil)
	b := NewFabric(sim.New(), topo, p, nil)

	src, dst := topo.NodeAt(0, 0), topo.NodeAt(3, 2)
	arrive, hops := a.Deliver(0, src, dst, 72)
	out := b.DeliverOutcome(0, src, dst, 72)
	if out.Status != faults.Delivered {
		t.Fatalf("status = %v", out.Status)
	}
	if sim.Time(out.Arrive) != arrive || out.Hops != hops {
		t.Errorf("outcome (%d, %d hops) != deliver (%d, %d hops)", out.Arrive, out.Hops, arrive, hops)
	}
	if hops != topo.Hops(src, dst) {
		t.Errorf("fault-free route took %d hops, XY distance is %d", hops, topo.Hops(src, dst))
	}
	if a.Reroutes != 0 || b.Reroutes != 0 || b.Unreachable != 0 {
		t.Error("fault-free fabric counted faults")
	}
}

// TestRerouteAroundDownLink: with the XY link down the frame detours and
// still arrives; the detour is counted along with its extra traversals.
func TestRerouteAroundDownLink(t *testing.T) {
	f, _ := faultFabric(t, &faults.Plan{
		Seed:      1,
		LinkDowns: []faults.LinkWindow{{From: 1, To: 2, Window: faults.Window{Start: 0, End: 1 << 40}}},
	})
	topo := f.Topology()
	out := f.DeliverOutcome(0, 1, 2, 72)
	if out.Status != faults.Delivered {
		t.Fatalf("status = %v, want delivered via detour", out.Status)
	}
	if out.Hops <= topo.Hops(1, 2) {
		t.Errorf("detour took %d hops, no longer than the down XY route", out.Hops)
	}
	if f.Reroutes == 0 {
		t.Error("reroute not counted")
	}
	if want := uint64(out.Hops - topo.Hops(1, 2)); f.DetourHops != want {
		t.Errorf("DetourHops = %d, want %d", f.DetourHops, want)
	}
}

// TestRouteRestoredAfterOutage: once the window closes the fabric goes
// back to the shortest XY route.
func TestRouteRestoredAfterOutage(t *testing.T) {
	const end = 1_000_000
	f, _ := faultFabric(t, &faults.Plan{
		Seed:      1,
		LinkDowns: []faults.LinkWindow{{From: 1, To: 2, Window: faults.Window{Start: 0, End: end}}},
	})
	during := f.DeliverOutcome(0, 1, 2, 72)
	after := f.DeliverOutcome(end, 1, 2, 72)
	if during.Hops <= after.Hops {
		t.Errorf("outage hops %d not greater than restored hops %d", during.Hops, after.Hops)
	}
	if after.Hops != 1 {
		t.Errorf("restored route took %d hops, want 1", after.Hops)
	}
}

// TestUnreachableWhenIsolated: downing every link of the source makes the
// destination unroutable; the fabric reports it instead of spinning.
func TestUnreachableWhenIsolated(t *testing.T) {
	win := faults.Window{Start: 0, End: 1 << 40}
	f, _ := faultFabric(t, &faults.Plan{
		Seed: 1,
		// Node 1's only neighbors on the 4x4 mesh are 2 and 5.
		LinkDowns: []faults.LinkWindow{
			{From: 1, To: 2, Window: win},
			{From: 1, To: 5, Window: win},
		},
	})
	out := f.DeliverOutcome(0, 1, 16, 72)
	if out.Status != faults.Unreachable {
		t.Fatalf("status = %v, want unreachable", out.Status)
	}
	if f.Unreachable != 1 {
		t.Errorf("Unreachable = %d, want 1", f.Unreachable)
	}
	if f.Delivered != 0 {
		t.Error("isolated frame counted as delivered")
	}
}

// TestHopCapBoundsWandering: an outage pocket that forces repeated
// backtracking must terminate via the hop cap rather than loop forever.
func TestHopCapBoundsWandering(t *testing.T) {
	win := faults.Window{Start: 0, End: 1 << 40}
	// Cut node 4 (corner, neighbors 3 and 8) off completely: a frame for
	// it can wander the mesh but never arrive.
	f, _ := faultFabric(t, &faults.Plan{
		Seed: 1,
		LinkDowns: []faults.LinkWindow{
			{From: 3, To: 4, Window: win},
			{From: 8, To: 4, Window: win},
		},
	})
	topo := f.Topology()
	out := f.DeliverOutcome(0, 1, 4, 72)
	if out.Status != faults.Unreachable {
		t.Fatalf("status = %v, want unreachable", out.Status)
	}
	if limit := 4*(topo.W+topo.H) + 8; out.Hops > limit {
		t.Errorf("frame took %d hops, cap is %d", out.Hops, limit)
	}
}

// TestDropAndCorruptOutcomes: probability-1 plans classify every frame.
func TestDropAndCorruptOutcomes(t *testing.T) {
	f, inj := faultFabric(t, &faults.Plan{Seed: 1, Drop: 1})
	out := f.DeliverOutcome(0, 1, 2, 72)
	if out.Status != faults.Dropped || inj.Drops != 1 {
		t.Errorf("status = %v, Drops = %d; want dropped, 1", out.Status, inj.Drops)
	}
	// The frame occupied the link before vanishing.
	if f.Hops != 1 {
		t.Errorf("dropped frame traversed %d links, want 1", f.Hops)
	}

	f, inj = faultFabric(t, &faults.Plan{Seed: 1, Corrupt: 1})
	out = f.DeliverOutcome(0, 1, 2, 72)
	if out.Status != faults.Corrupted || inj.Corruptions == 0 {
		t.Errorf("status = %v, Corruptions = %d; want corrupted arrival", out.Status, inj.Corruptions)
	}
	if f.Delivered != 1 {
		t.Error("corrupted frame must still arrive (the receiver's CRC rejects it)")
	}
}

// TestDelayAddsLatency: a probability-1 delay shifts arrival by exactly
// DelayBy per traversed hop.
func TestDelayAddsLatency(t *testing.T) {
	const extra = 7_000_000 // 7us in ps
	topo := topo4x4(t)
	p := params.Default()
	clean := NewFabric(sim.New(), topo, p, nil)
	slow := NewFabric(sim.New(), topo, p, faults.NewInjector(&faults.Plan{Seed: 1, Delay: 1, DelayBy: extra}))

	base, hops := clean.Deliver(0, 1, 3, 72)
	out := slow.DeliverOutcome(0, 1, 3, 72)
	if out.Status != faults.Delivered {
		t.Fatalf("status = %v", out.Status)
	}
	if want := base + sim.Time(hops)*extra; sim.Time(out.Arrive) != want {
		t.Errorf("delayed arrival %d, want %d (base %d + %d hops x %d)", out.Arrive, want, base, hops, extra)
	}
}
