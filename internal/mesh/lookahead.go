package mesh

import (
	"repro/internal/addr"
	"repro/internal/sim"
)

// MinDelayMatrix computes the conservative lookahead bound of the
// sharded engine (DESIGN §16): B[j][i] is a lower bound on how long any
// frame sent by a node of region j takes to arrive at a node of region
// i, minimized over every route the router could take. Each directed
// edge costs at least one link occupancy (a frame serializes before it
// crosses) plus the edge's traversal latency, so the cost of the
// cheapest path between the regions — a multi-source Dijkstra from each
// region over the mesh plus any express links — lower-bounds every
// actual delivery: XY routes and fault detours only take longer paths,
// injector delays only add time, and contention only pushes Acquire
// later. B[j][j] is the minimum outgoing edge cost from region j, a
// lower bound for intra-region deliveries (every delivery crosses at
// least one link; the zero-hop self-delivery case never reaches the
// exchange). The matrix is a pure function of geometry, the latency
// table, and the express-link set, so it is identical on every run.
func (f *Fabric) MinDelayMatrix(part Partition) [][]sim.Time {
	n := f.topo.Nodes()
	k := part.Shards()

	// Directed adjacency: mesh edges at their per-edge latency, express
	// edges at the uniform HopLatency, every traversal paying at least
	// one LinkOccupancy of serialization.
	type arc struct {
		to   int
		cost sim.Time
	}
	adj := make([][]arc, n+1)
	for id := addr.NodeID(1); int(id) <= n; id++ {
		for _, nb := range f.topo.Neighbors(id) {
			l := f.links[linkKey{id, nb}]
			adj[id] = append(adj[id], arc{to: int(nb), cost: f.p.LinkOccupancy + l.lat})
		}
	}
	for key := range f.express {
		adj[key.from] = append(adj[key.from], arc{to: int(key.to), cost: f.p.LinkOccupancy + f.p.HopLatency})
	}

	const inf = sim.Time(1) << 62
	b := make([][]sim.Time, k)
	dist := make([]sim.Time, n+1)
	// heap entries are (dist, node) pairs; a stale pair is skipped when
	// it pops with a distance above the settled one.
	type qe struct {
		d    sim.Time
		node int
	}
	var heap []qe
	push := func(e qe) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p].d <= heap[i].d {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() qe {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		i := 0
		for {
			c := 2*i + 1
			if c >= last {
				break
			}
			if c+1 < last && heap[c+1].d < heap[c].d {
				c++
			}
			if heap[i].d <= heap[c].d {
				break
			}
			heap[i], heap[c] = heap[c], heap[i]
			i = c
		}
		return top
	}

	for j := 0; j < k; j++ {
		for i := range dist {
			dist[i] = inf
		}
		heap = heap[:0]
		self := inf
		for id := addr.NodeID(1); int(id) <= n; id++ {
			if part.ShardOf(id) != j {
				continue
			}
			dist[id] = 0
			push(qe{d: 0, node: int(id)})
			for _, a := range adj[id] {
				if a.cost < self {
					self = a.cost
				}
			}
		}
		for len(heap) > 0 {
			e := pop()
			if e.d > dist[e.node] {
				continue
			}
			for _, a := range adj[e.node] {
				if nd := e.d + a.cost; nd < dist[a.to] {
					dist[a.to] = nd
					push(qe{d: nd, node: a.to})
				}
			}
		}
		row := make([]sim.Time, k)
		for i := range row {
			row[i] = inf
		}
		row[j] = self
		for id := addr.NodeID(1); int(id) <= n; id++ {
			i := part.ShardOf(id)
			if i != j && dist[id] < row[i] {
				row[i] = dist[id]
			}
		}
		b[j] = row
	}
	return b
}
