package mesh

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/faults"
	"repro/internal/params"
	"repro/internal/sim"
)

// newLookaheadFabric builds a fabric plus partition for the matrix tests.
func newLookaheadFabric(t *testing.T, w, h, shards int, p params.Params, inj *faults.Injector) (*Fabric, Partition) {
	t.Helper()
	topo, err := NewTopology(w, h)
	if err != nil {
		t.Fatal(err)
	}
	part, err := topo.Partition(shards)
	if err != nil {
		t.Fatal(err)
	}
	return NewFabric(sim.New(), topo, p, inj), part
}

// TestMinDelayMatrixGeometry pins the matrix against hand-computed
// shortest paths on a 4x4 mesh split into 2x2 regions: adjacent regions
// are one edge apart, diagonal regions two, and the self bound is one
// minimum outgoing edge.
func TestMinDelayMatrixGeometry(t *testing.T) {
	p := params.Default()
	fab, part := newLookaheadFabric(t, 4, 4, 4, p, nil)
	if part.Shards() != 4 {
		t.Fatalf("partitioned into %d shards, want 4", part.Shards())
	}
	b := fab.MinDelayMatrix(part)
	edge := p.LinkOccupancy + p.HopLatency
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			want := edge // self and adjacent regions
			if j+i == 3 && j != i {
				want = 2 * edge // diagonal regions of the 2x2 split
			}
			if b[j][i] != want {
				t.Errorf("B[%d][%d] = %d, want %d", j, i, b[j][i], want)
			}
		}
	}
}

// TestMinDelayMatrixLinkLat checks the matrix consumes the same per-edge
// latency table as the router: a slow vertical axis widens every bound
// that must cross it, and a fast horizontal axis narrows the rest.
func TestMinDelayMatrixLinkLat(t *testing.T) {
	p := params.Default()
	ll, err := params.ParseLinkLat("x=60ns,y=400ns")
	if err != nil {
		t.Fatal(err)
	}
	p.LinkLat = ll
	fab, part := newLookaheadFabric(t, 4, 4, 4, p, nil)
	b := fab.MinDelayMatrix(part)
	xEdge := p.LinkOccupancy + 60*params.Nanosecond
	yEdge := p.LinkOccupancy + 400*params.Nanosecond
	// Regions 0 and 1 are horizontal neighbors; 0 and 2 vertical.
	if b[0][1] != xEdge {
		t.Errorf("B[0][1] = %d, want one horizontal edge %d", b[0][1], xEdge)
	}
	if b[0][2] != yEdge {
		t.Errorf("B[0][2] = %d, want one vertical edge %d", b[0][2], yEdge)
	}
	// The self bound is the cheapest outgoing edge anywhere in the region.
	if b[0][0] != xEdge {
		t.Errorf("B[0][0] = %d, want the cheapest edge %d", b[0][0], xEdge)
	}
}

// TestMinDelayMatrixExpressLink checks an express link shows up as a new
// fastest inter-region path when the matrix is recomputed — the
// topology-change hook the cluster installs.
func TestMinDelayMatrixExpressLink(t *testing.T) {
	p := params.Default()
	fab, part := newLookaheadFabric(t, 8, 8, 4, p, nil)
	before := fab.MinDelayMatrix(part)
	edge := p.LinkOccupancy + p.HopLatency
	if before[0][3] != 2*edge {
		t.Fatalf("B[0][3] = %d before the express link, want %d", before[0][3], 2*edge)
	}
	recomputed := false
	fab.OnTopologyChange(func() { recomputed = true })
	// Corner of region 0 to corner of region 3: one express crossing.
	if err := fab.AddExpressLink(1, addr.NodeID(64)); err != nil {
		t.Fatal(err)
	}
	if !recomputed {
		t.Fatal("AddExpressLink did not fire the topology-change hook")
	}
	after := fab.MinDelayMatrix(part)
	if after[0][3] != edge {
		t.Errorf("B[0][3] = %d with the express link, want one crossing %d", after[0][3], edge)
	}
}

// TestMinDelayMatrixLowerBoundsDelivery is the lookahead safety
// property: for every source/destination pair — under contention, fault
// detours, and injected delays — the frame's actual arrival is at or
// past send time plus the matrix bound. This is exactly why a shard
// window limited by B never admits a cross-shard delivery inside
// itself: deliveries sent at t land at or after t + B[src][dst], and
// every window limit is capped by the minimum bound into its shard.
func TestMinDelayMatrixLowerBoundsDelivery(t *testing.T) {
	plan, err := faults.Parse("seed=3,drop=0.05,corrupt=0.01,delayp=0.2,delay=300ns,down=6-7@0:50us")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		linklat string
		plan    *faults.Plan
	}{
		{"uniform-clean", "", nil},
		{"linklat-clean", "x=60ns,y=400ns,edge=1.0-2.0:250ns", nil},
		{"uniform-faulted", "", plan},
		{"linklat-faulted", "x=60ns,y=400ns", plan},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p := params.Default()
			if tc.linklat != "" {
				ll, err := params.ParseLinkLat(tc.linklat)
				if err != nil {
					t.Fatal(err)
				}
				p.LinkLat = ll
			}
			var inj *faults.Injector
			if tc.plan != nil {
				inj = faults.NewInjector(tc.plan)
			}
			fab, part := newLookaheadFabric(t, 8, 8, 4, p, inj)
			b := fab.MinDelayMatrix(part)
			n := fab.Topology().Nodes()
			now := sim.Time(0)
			for src := addr.NodeID(1); int(src) <= n; src++ {
				for dst := addr.NodeID(1); int(dst) <= n; dst++ {
					if src == dst {
						continue
					}
					out := fab.DeliverOutcome(now, src, dst, 64)
					if out.Status == faults.Dropped || out.Status == faults.Unreachable {
						continue // no delivery is scheduled for these
					}
					bound := b[part.ShardOf(src)][part.ShardOf(dst)]
					if sim.Time(out.Arrive) < now+bound {
						t.Fatalf("%d->%d: arrival %d beats bound %d (send %d)",
							src, dst, out.Arrive, now+bound, now)
					}
					now += 7 // stagger sends; contention only adds delay
				}
			}
		})
	}
}
