package mesh

import (
	"testing"

	"repro/internal/addr"
)

// TestPartitionGeometry checks the region grid the partitioner picks for
// the shapes the CLIs advertise, and that every node maps to a valid
// shard with balanced populations.
func TestPartitionGeometry(t *testing.T) {
	cases := []struct {
		w, h, k        int
		wantKX, wantKY int
	}{
		{4, 4, 1, 1, 1},
		{4, 4, 2, 2, 1}, // 2x1 regions of 2x4 nodes
		{4, 4, 4, 2, 2},
		{4, 4, 8, 4, 2},
		{4, 4, 16, 4, 4},
		{16, 16, 8, 4, 2},
		{16, 16, 16, 4, 4},
		{32, 32, 16, 4, 4},
		{8, 4, 8, 4, 2},
	}
	for _, c := range cases {
		topo, err := NewTopology(c.w, c.h)
		if err != nil {
			t.Fatal(err)
		}
		p, err := topo.Partition(c.k)
		if err != nil {
			t.Fatalf("%dx%d k=%d: %v", c.w, c.h, c.k, err)
		}
		if p.KX != c.wantKX || p.KY != c.wantKY {
			t.Errorf("%dx%d k=%d: grid %dx%d, want %dx%d", c.w, c.h, c.k, p.KX, p.KY, c.wantKX, c.wantKY)
		}
		if p.Shards() != c.k {
			t.Errorf("%dx%d k=%d: Shards() = %d", c.w, c.h, c.k, p.Shards())
		}
		// Every node lands in range and every shard gets the same count
		// (all our region grids divide the mesh evenly).
		counts := make([]int, c.k)
		for n := 1; n <= topo.Nodes(); n++ {
			sh := p.ShardOf(addr.NodeID(n))
			if sh < 0 || sh >= c.k {
				t.Fatalf("%dx%d k=%d: node %d → shard %d out of range", c.w, c.h, c.k, n, sh)
			}
			counts[sh]++
		}
		want := topo.Nodes() / c.k
		for sh, got := range counts {
			if got != want {
				t.Errorf("%dx%d k=%d: shard %d holds %d nodes, want %d", c.w, c.h, c.k, sh, got, want)
			}
		}
	}
}

// TestPartitionContiguity checks a shard's nodes form an axis-aligned
// rectangle: mesh neighbors in the same region row/column share a shard.
func TestPartitionContiguity(t *testing.T) {
	topo, err := NewTopology(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	p, err := topo.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < topo.H; y++ {
		for x := 0; x < topo.W; x++ {
			sh := p.ShardOf(topo.NodeAt(x, y))
			// Within the region extents, shifting by less than the
			// region size in either axis stays in the same shard.
			if x%p.RW != 0 && p.ShardOf(topo.NodeAt(x-1, y)) != sh {
				t.Fatalf("(%d,%d): left neighbor in different shard inside region", x, y)
			}
			if y%p.RH != 0 && p.ShardOf(topo.NodeAt(x, y-1)) != sh {
				t.Fatalf("(%d,%d): up neighbor in different shard inside region", x, y)
			}
		}
	}
}

// TestPartitionRejectsBadCounts checks the error paths: k that does not
// tile the mesh, k out of range.
func TestPartitionRejectsBadCounts(t *testing.T) {
	topo, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, -1, 3, 5, 17} {
		if _, err := topo.Partition(k); err == nil {
			t.Errorf("Partition(%d) on 4x4 succeeded, want error", k)
		}
	}
}
