package mesh

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/sim"
)

func topo4x4(t *testing.T) Topology {
	t.Helper()
	topo, err := NewTopology(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(0, 4); err == nil {
		t.Error("0-width mesh accepted")
	}
	if _, err := NewTopology(200, 200); err == nil {
		t.Error("mesh exceeding addressable nodes accepted")
	}
}

func TestNodeCoordRoundTrip(t *testing.T) {
	topo := topo4x4(t)
	if topo.Nodes() != 16 {
		t.Fatalf("Nodes = %d", topo.Nodes())
	}
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			n := topo.NodeAt(x, y)
			gx, gy := topo.Coord(n)
			if gx != x || gy != y {
				t.Errorf("coord roundtrip (%d,%d) -> %d -> (%d,%d)", x, y, n, gx, gy)
			}
		}
	}
	// Node ids are 1-based row-major.
	if topo.NodeAt(0, 0) != 1 || topo.NodeAt(3, 0) != 4 || topo.NodeAt(0, 1) != 5 {
		t.Error("node numbering wrong")
	}
}

func TestCoordPanics(t *testing.T) {
	topo := topo4x4(t)
	for name, fn := range map[string]func(){
		"NodeAt outside": func() { topo.NodeAt(4, 0) },
		"Coord node 0":   func() { topo.Coord(0) },
		"Coord node 17":  func() { topo.Coord(17) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHopsAndPath(t *testing.T) {
	topo := topo4x4(t)
	a, b := topo.NodeAt(0, 0), topo.NodeAt(3, 2)
	if got := topo.Hops(a, b); got != 5 {
		t.Errorf("Hops = %d, want 5", got)
	}
	path := topo.Path(a, b)
	if len(path) != 6 {
		t.Fatalf("path length %d, want 6", len(path))
	}
	if path[0] != a || path[len(path)-1] != b {
		t.Error("path endpoints wrong")
	}
	// XY: X moves first. Second node should be (1,0).
	if path[1] != topo.NodeAt(1, 0) {
		t.Errorf("XY routing violated: second hop %d", path[1])
	}
}

func TestPathLegalityProperty(t *testing.T) {
	topo := topo4x4(t)
	f := func(ai, bi uint8) bool {
		a := addr.NodeID(ai%16) + 1
		b := addr.NodeID(bi%16) + 1
		path := topo.Path(a, b)
		if len(path)-1 != topo.Hops(a, b) {
			return false // XY is minimal on a mesh
		}
		for i := 0; i+1 < len(path); i++ {
			if topo.Hops(path[i], path[i+1]) != 1 {
				return false // every step is one mesh link
			}
		}
		return path[0] == a && path[len(path)-1] == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeighbors(t *testing.T) {
	topo := topo4x4(t)
	if got := len(topo.Neighbors(topo.NodeAt(0, 0))); got != 2 {
		t.Errorf("corner has %d neighbors, want 2", got)
	}
	if got := len(topo.Neighbors(topo.NodeAt(1, 0))); got != 3 {
		t.Errorf("edge has %d neighbors, want 3", got)
	}
	if got := len(topo.Neighbors(topo.NodeAt(1, 1))); got != 4 {
		t.Errorf("interior has %d neighbors, want 4", got)
	}
}

func TestAtDistance(t *testing.T) {
	topo := topo4x4(t)
	corner := topo.NodeAt(0, 0)
	if got := len(topo.AtDistance(corner, 1)); got != 2 {
		t.Errorf("%d nodes at distance 1 from corner, want 2", got)
	}
	if got := len(topo.AtDistance(corner, 6)); got != 1 { // only (3,3)
		t.Errorf("%d nodes at distance 6, want 1", got)
	}
	for _, n := range topo.AtDistance(corner, 3) {
		if topo.Hops(corner, n) != 3 {
			t.Errorf("node %d not at distance 3", n)
		}
	}
}

func TestFabricDeliveryLatency(t *testing.T) {
	p := params.Default()
	eng := sim.New()
	topo := topo4x4(t)
	f := NewFabric(eng, topo, p, nil)

	if f.Links() != 2*(3*4+4*3) {
		t.Errorf("Links = %d, want 48 directed links", f.Links())
	}

	src, dst := topo.NodeAt(0, 0), topo.NodeAt(2, 0)
	arrive, hops := f.Deliver(0, src, dst, 72)
	if hops != 2 {
		t.Errorf("hops = %d, want 2", hops)
	}
	want := 2 * (p.LinkOccupancy*2 + p.HopLatency) // 72B -> 2 occupancy units/hop
	if arrive != want {
		t.Errorf("uncontended 2-hop delivery = %d, want %d", arrive, want)
	}
}

func TestFabricSelfDelivery(t *testing.T) {
	p := params.Default()
	f := NewFabric(sim.New(), topo4x4(t), p, nil)
	arrive, hops := f.Deliver(100, 3, 3, 72)
	if arrive != 100 || hops != 0 {
		t.Errorf("self delivery = (%d, %d), want (100, 0)", arrive, hops)
	}
}

func TestFabricContention(t *testing.T) {
	p := params.Default()
	f := NewFabric(sim.New(), topo4x4(t), p, nil)
	topo := f.Topology()
	src, dst := topo.NodeAt(0, 0), topo.NodeAt(1, 0)
	// Two simultaneous frames on one link: the second serializes behind
	// the first.
	a1, _ := f.Deliver(0, src, dst, 72)
	a2, _ := f.Deliver(0, src, dst, 72)
	if a2 <= a1 {
		t.Errorf("contended frame arrived at %d, not after %d", a2, a1)
	}
	if a2-a1 != 2*p.LinkOccupancy {
		t.Errorf("serialization gap = %d, want %d", a2-a1, 2*p.LinkOccupancy)
	}
}

func TestFabricLargeTransferScalesOccupancy(t *testing.T) {
	p := params.Default()
	f := NewFabric(sim.New(), topo4x4(t), p, nil)
	topo := f.Topology()
	src, dst := topo.NodeAt(0, 0), topo.NodeAt(1, 0)
	small, _ := f.Deliver(0, src, dst, 64)
	f2 := NewFabric(sim.New(), topo, p, nil)
	big, _ := f2.Deliver(0, src, dst, 4096)
	if big <= small {
		t.Errorf("4 KiB frame (%d) not slower than 64 B frame (%d)", big, small)
	}
	if got, want := big-p.HopLatency, 64*p.LinkOccupancy; got != want {
		t.Errorf("page serialization = %d, want %d", got, want)
	}
}

func TestExpressLink(t *testing.T) {
	p := params.Default()
	f := NewFabric(sim.New(), topo4x4(t), p, nil)
	if err := f.AddExpressLink(1, 6); err != nil {
		t.Fatal(err)
	}
	if err := f.AddExpressLink(1, 6); err == nil {
		t.Error("duplicate express link accepted")
	}
	if err := f.AddExpressLink(1, 1); err == nil {
		t.Error("self express link accepted")
	}
	if err := f.AddExpressLink(0, 6); err == nil {
		t.Error("express link to node 0 accepted")
	}
	arrive, err := f.DeliverExpress(0, 1, 6, 72)
	if err != nil {
		t.Fatal(err)
	}
	want := 2*p.LinkOccupancy + p.HopLatency
	if arrive != want {
		t.Errorf("express delivery = %d, want %d", arrive, want)
	}
	// Reverse direction exists too.
	if _, err := f.DeliverExpress(0, 6, 1, 72); err != nil {
		t.Errorf("reverse express failed: %v", err)
	}
	if _, err := f.DeliverExpress(0, 1, 7, 72); err == nil {
		t.Error("missing express link used")
	}
	// Express traffic does not load mesh links.
	u, err := f.LinkUtilization(1, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0 {
		t.Errorf("mesh link utilization = %v after express-only traffic", u)
	}
}

func TestLinkUtilization(t *testing.T) {
	p := params.Default()
	f := NewFabric(sim.New(), topo4x4(t), p, nil)
	f.Deliver(0, 1, 2, 64)
	u, err := f.LinkUtilization(1, 2, p.LinkOccupancy*10)
	if err != nil {
		t.Fatal(err)
	}
	if u != 0.1 {
		t.Errorf("utilization = %v, want 0.1", u)
	}
	if _, err := f.LinkUtilization(1, 11, 100); err == nil {
		t.Error("utilization of non-adjacent link computed")
	}
}
