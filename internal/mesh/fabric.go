package mesh

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// linkKey identifies one directed link.
type linkKey struct {
	from, to addr.NodeID
}

// link is one directed link: its timed occupancy, its traversal latency
// (per-edge under a -linklat table, HopLatency otherwise), plus traffic
// tallies the metrics layer samples lazily.
type link struct {
	res    *sim.Resource
	lat    sim.Time
	frames uint64
	bytes  uint64
}

// Fabric is the timed fabric: every directed mesh link is a FIFO resource
// whose occupancy models serialization bandwidth, and crossing a link
// additionally costs the hop latency (SerDes + router traversal).
// Express links are dedicated point-to-point connections outside the
// mesh, used only by traffic that explicitly asks for them.
type Fabric struct {
	topo     Topology
	eng      *sim.Engine
	p        params.Params
	inj      *faults.Injector // nil on a fault-free fabric
	links    map[linkKey]*link
	express  map[linkKey]*link
	onChange func() // invoked after link-set changes (express additions)

	// Delivered counts frames fully delivered; Hops counts link
	// traversals (mesh only — an express crossing is not a mesh hop).
	Delivered uint64
	Hops      uint64

	// Reroutes counts hops diverted off the XY route around a down
	// link; DetourHops counts the extra traversals those diversions
	// cost; Unreachable counts frames that found no route at all. All
	// three stay zero (and unregistered) without an injector.
	Reroutes    uint64
	DetourHops  uint64
	Unreachable uint64
}

// NewFabric builds the timed mesh over the engine with the given
// calibration. A nil injector yields the fault-free fabric: pure XY
// routes, no drops, and no fault metric families.
func NewFabric(eng *sim.Engine, topo Topology, p params.Params, inj *faults.Injector) *Fabric {
	f := &Fabric{
		topo:    topo,
		eng:     eng,
		p:       p,
		inj:     inj,
		links:   make(map[linkKey]*link),
		express: make(map[linkKey]*link),
	}
	for id := addr.NodeID(1); int(id) <= topo.Nodes(); id++ {
		for _, nb := range topo.Neighbors(id) {
			k := linkKey{id, nb}
			f.links[k] = f.newLink(k, "mesh", 0)
			fx, fy := topo.Coord(id)
			tx, ty := topo.Coord(nb)
			f.links[k].lat = p.LinkLat.EdgeLatency(fx, fy, tx, ty, p.HopLatency)
		}
	}
	m := eng.Metrics()
	m.CounterFunc(metrics.FamMeshDelivered, "frames fully delivered by the fabric", nil,
		func() uint64 { return f.Delivered })
	m.CounterFunc(metrics.FamMeshHops, "mesh link traversals", nil,
		func() uint64 { return f.Hops })
	if inj != nil {
		m.CounterFunc(metrics.FamMeshReroutes, "hops diverted around down links", nil,
			func() uint64 { return f.Reroutes })
		m.CounterFunc(metrics.FamMeshDetourHops, "extra link traversals caused by detours", nil,
			func() uint64 { return f.DetourHops })
		m.CounterFunc(metrics.FamMeshUnreachable, "frames that found no route", nil,
			func() uint64 { return f.Unreachable })
	}
	return f
}

// newLink builds a directed link and registers its traffic counters.
func (f *Fabric) newLink(k linkKey, class string, queue int) *link {
	name := fmt.Sprintf("link %d->%d", k.from, k.to)
	if class == "express" {
		name = fmt.Sprintf("express %d->%d", k.from, k.to)
	}
	l := &link{res: sim.NewResource(f.eng, name, queue), lat: f.p.HopLatency}
	ls := metrics.L(
		"from", fmt.Sprintf("%d", k.from),
		"to", fmt.Sprintf("%d", k.to),
		"class", class,
	)
	m := f.eng.Metrics()
	m.CounterFunc(metrics.FamMeshLinkFrames, "frames carried by this directed link", ls,
		func() uint64 { return l.frames })
	m.CounterFunc(metrics.FamMeshLinkBytes, "wire bytes carried by this directed link", ls,
		func() uint64 { return l.bytes })
	return l
}

// Topology returns the fabric's geometry.
func (f *Fabric) Topology() Topology { return f.topo }

// AddExpressLink installs a dedicated bidirectional point-to-point link
// between two nodes (one spare HTX connector each). Traffic only uses it
// via DeliverExpress. In a sharded run, call it only with the shard set
// parked — before Run or between Run calls — since the lookahead
// recompute the topology-change hook triggers refuses to tighten the
// bound matrix while windows are executing.
func (f *Fabric) AddExpressLink(a, b addr.NodeID) error {
	if !f.topo.Contains(a) || !f.topo.Contains(b) || a == b {
		return fmt.Errorf("mesh: invalid express link %d<->%d", a, b)
	}
	for _, k := range []linkKey{{a, b}, {b, a}} {
		if _, dup := f.express[k]; dup {
			return fmt.Errorf("mesh: express link %d->%d already exists", k.from, k.to)
		}
		f.express[k] = f.newLink(k, "express", 0)
	}
	if f.onChange != nil {
		f.onChange()
	}
	return nil
}

// OnTopologyChange installs a hook invoked after the link set changes
// (today: express-link additions). The sharded engine recomputes its
// lookahead bound matrix here — an express link is a new fastest path
// between its endpoints' regions.
func (f *Fabric) OnTopologyChange(fn func()) { f.onChange = fn }

// occupancy returns the link occupancy of a frame of the given wire size:
// the calibrated per-packet occupancy covers one cache-line frame; larger
// transfers (page DMA) scale linearly.
func (f *Fabric) occupancy(wireBytes int) sim.Time {
	units := (wireBytes + params.CacheLineSize - 1) / params.CacheLineSize
	if units < 1 {
		units = 1
	}
	return sim.Time(units) * f.p.LinkOccupancy
}

// Deliver sends a frame of wireBytes from src to dst along the XY route,
// starting at now. It returns the arrival time at dst and the hop count.
// Each hop is store-and-forward: the frame serializes onto the link
// (waiting behind earlier frames), then takes the hop latency to cross,
// which is how contention on shared mesh links appears in Figure 8.
// Deliver is the fault-oblivious entry: callers that must survive drops
// or outages use DeliverOutcome instead.
func (f *Fabric) Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int) {
	out := f.DeliverOutcome(now, src, dst, wireBytes)
	return sim.Time(out.Arrive), out.Hops
}

// DeliverOutcome pushes one frame through the (possibly faulty) mesh:
// hop by hop along the XY route, detouring around links the fault plan
// has taken down (greedy: the up neighbor closest to the destination
// that is not an immediate bounce back), rolling the plan's drop,
// corruption, and delay probabilities on every traversal. Without an
// injector it is exactly Deliver: same route, same link occupancies,
// same counters.
func (f *Fabric) DeliverOutcome(now sim.Time, src, dst addr.NodeID, wireBytes int) faults.Outcome {
	if src == dst {
		return faults.Outcome{Arrive: int64(now), Status: faults.Delivered}
	}
	occ := f.occupancy(wireBytes)
	t := now
	cur := src
	var prev addr.NodeID
	hops := 0
	detoured := false
	corrupted := false
	// A frame wandering past every possible detour is unroutable; the
	// cap bounds ping-ponging when outages partition the mesh.
	maxHops := 4*(f.topo.W+f.topo.H) + 8
	for cur != dst {
		if hops >= maxHops {
			f.Unreachable++
			return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Unreachable}
		}
		next, detour, ok := f.nextHop(cur, prev, dst, t, detoured)
		if !ok {
			f.Unreachable++
			return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Unreachable}
		}
		if detour {
			detoured = true
			f.Reroutes++
		}
		l := f.links[linkKey{cur, next}]
		done, _ := l.res.Acquire(t, occ) // mesh links have unbounded queues
		l.frames++
		l.bytes += uint64(wireBytes)
		f.Hops++
		t = done + l.lat
		hops++
		if f.inj != nil {
			if d, ok := f.inj.RollDelay(); ok {
				t += sim.Time(d)
			}
			if f.inj.RollDrop() {
				// The frame occupied every link up to here, then vanished.
				return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Dropped}
			}
			if f.inj.RollCorrupt() {
				corrupted = true
			}
		}
		prev, cur = cur, next
	}
	f.Delivered++
	if detoured {
		if extra := hops - f.topo.Hops(src, dst); extra > 0 {
			f.DetourHops += uint64(extra)
		}
	}
	st := faults.Delivered
	if corrupted {
		st = faults.Corrupted
	}
	return faults.Outcome{Arrive: int64(t), Hops: hops, Status: st}
}

// nextHop picks the next node on the way to dst. On the clean path it is
// the XY dimension-order neighbor; when that link is down — or once the
// frame has already detoured (greedy) — it is the live neighbor closest
// to the destination. The greedy mode matters: strict XY preference at
// the nodes around an outage steers a detoured frame straight back into
// the down link forever, whereas distance-greedy routing walks it around
// the cut. Selection order is deterministic (distance to dst, then
// identifier), so routes under a fixed fault plan replay exactly.
func (f *Fabric) nextHop(cur, prev, dst addr.NodeID, at sim.Time, greedy bool) (addr.NodeID, bool, bool) {
	x, y := f.topo.Coord(cur)
	bx, by := f.topo.Coord(dst)
	var pref addr.NodeID
	if x != bx {
		pref = f.topo.NodeAt(x+sign(bx-x), y)
	} else {
		pref = f.topo.NodeAt(x, y+sign(by-y))
	}
	if f.inj == nil {
		return pref, false, true
	}
	if !greedy && !f.inj.LinkDown(cur, pref, int64(at)) {
		return pref, false, true
	}
	nbs := f.topo.Neighbors(cur)
	sort.Slice(nbs, func(i, j int) bool {
		di, dj := f.topo.Hops(nbs[i], dst), f.topo.Hops(nbs[j], dst)
		if di != dj {
			return di < dj
		}
		return nbs[i] < nbs[j]
	})
	for _, nb := range nbs {
		if nb == prev {
			continue // never an immediate bounce back (loop bait)
		}
		if !greedy && nb == pref {
			continue // the XY link is known down on this path
		}
		if !f.inj.LinkDown(cur, nb, int64(at)) {
			return nb, nb != pref, true
		}
	}
	// Dead end: back out the way we came if that link is still up.
	if prev != 0 && !f.inj.LinkDown(cur, prev, int64(at)) {
		return prev, true, true
	}
	return 0, false, false
}

// DeliverExpress sends a frame over a dedicated express link. It fails if
// no such link exists. Express links are direct point-to-point cables
// outside the mesh and outside the fault plan: they neither drop nor
// reroute.
func (f *Fabric) DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error) {
	l, ok := f.express[linkKey{src, dst}]
	if !ok {
		return 0, fmt.Errorf("mesh: no express link %d->%d", src, dst)
	}
	done, _ := l.res.Acquire(now, f.occupancy(wireBytes))
	l.frames++
	l.bytes += uint64(wireBytes)
	f.Delivered++
	return done + f.p.HopLatency, nil
}

// LinkUtilization returns the utilization of the directed mesh link
// from->to over elapsed time, for diagnostics.
func (f *Fabric) LinkUtilization(from, to addr.NodeID, elapsed sim.Time) (float64, error) {
	l, ok := f.links[linkKey{from, to}]
	if !ok {
		return 0, fmt.Errorf("mesh: no link %d->%d", from, to)
	}
	return l.res.Utilization(elapsed), nil
}

// Links returns the number of directed mesh links.
func (f *Fabric) Links() int { return len(f.links) }
