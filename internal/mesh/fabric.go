package mesh

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/sim"
)

// linkKey identifies one directed link.
type linkKey struct {
	from, to addr.NodeID
}

// Fabric is the timed fabric: every directed mesh link is a FIFO resource
// whose occupancy models serialization bandwidth, and crossing a link
// additionally costs the hop latency (SerDes + router traversal).
// Express links are dedicated point-to-point connections outside the
// mesh, used only by traffic that explicitly asks for them.
type Fabric struct {
	topo    Topology
	eng     *sim.Engine
	p       params.Params
	links   map[linkKey]*sim.Resource
	express map[linkKey]*sim.Resource

	// Delivered counts frames fully delivered.
	Delivered uint64
}

// NewFabric builds the timed mesh over the engine with the given
// calibration.
func NewFabric(eng *sim.Engine, topo Topology, p params.Params) *Fabric {
	f := &Fabric{
		topo:    topo,
		eng:     eng,
		p:       p,
		links:   make(map[linkKey]*sim.Resource),
		express: make(map[linkKey]*sim.Resource),
	}
	for id := addr.NodeID(1); int(id) <= topo.Nodes(); id++ {
		for _, nb := range topo.Neighbors(id) {
			k := linkKey{id, nb}
			f.links[k] = sim.NewResource(eng, fmt.Sprintf("link %d->%d", id, nb), 0)
		}
	}
	return f
}

// Topology returns the fabric's geometry.
func (f *Fabric) Topology() Topology { return f.topo }

// AddExpressLink installs a dedicated bidirectional point-to-point link
// between two nodes (one spare HTX connector each). Traffic only uses it
// via DeliverExpress.
func (f *Fabric) AddExpressLink(a, b addr.NodeID) error {
	if !f.topo.Contains(a) || !f.topo.Contains(b) || a == b {
		return fmt.Errorf("mesh: invalid express link %d<->%d", a, b)
	}
	for _, k := range []linkKey{{a, b}, {b, a}} {
		if _, dup := f.express[k]; dup {
			return fmt.Errorf("mesh: express link %d->%d already exists", k.from, k.to)
		}
		f.express[k] = sim.NewResource(f.eng, fmt.Sprintf("express %d->%d", k.from, k.to), 0)
	}
	return nil
}

// occupancy returns the link occupancy of a frame of the given wire size:
// the calibrated per-packet occupancy covers one cache-line frame; larger
// transfers (page DMA) scale linearly.
func (f *Fabric) occupancy(wireBytes int) sim.Time {
	units := (wireBytes + params.CacheLineSize - 1) / params.CacheLineSize
	if units < 1 {
		units = 1
	}
	return sim.Time(units) * f.p.LinkOccupancy
}

// Deliver sends a frame of wireBytes from src to dst along the XY route,
// starting at now. It returns the arrival time at dst and the hop count.
// Each hop is store-and-forward: the frame serializes onto the link
// (waiting behind earlier frames), then takes the hop latency to cross,
// which is how contention on shared mesh links appears in Figure 8.
func (f *Fabric) Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int) {
	if src == dst {
		return now, 0
	}
	path := f.topo.Path(src, dst)
	t := now
	occ := f.occupancy(wireBytes)
	for i := 0; i+1 < len(path); i++ {
		k := linkKey{path[i], path[i+1]}
		res := f.links[k]
		done, _ := res.Acquire(t, occ) // mesh links have unbounded queues
		t = done + f.p.HopLatency
	}
	f.Delivered++
	return t, len(path) - 1
}

// DeliverExpress sends a frame over a dedicated express link. It fails if
// no such link exists.
func (f *Fabric) DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error) {
	res, ok := f.express[linkKey{src, dst}]
	if !ok {
		return 0, fmt.Errorf("mesh: no express link %d->%d", src, dst)
	}
	done, _ := res.Acquire(now, f.occupancy(wireBytes))
	f.Delivered++
	return done + f.p.HopLatency, nil
}

// LinkUtilization returns the utilization of the directed mesh link
// from->to over elapsed time, for diagnostics.
func (f *Fabric) LinkUtilization(from, to addr.NodeID, elapsed sim.Time) (float64, error) {
	res, ok := f.links[linkKey{from, to}]
	if !ok {
		return 0, fmt.Errorf("mesh: no link %d->%d", from, to)
	}
	return res.Utilization(elapsed), nil
}

// Links returns the number of directed mesh links.
func (f *Fabric) Links() int { return len(f.links) }
