package mesh

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// linkKey identifies one directed link.
type linkKey struct {
	from, to addr.NodeID
}

// link is one directed link: its timed occupancy plus traffic tallies
// the metrics layer samples lazily.
type link struct {
	res    *sim.Resource
	frames uint64
	bytes  uint64
}

// Fabric is the timed fabric: every directed mesh link is a FIFO resource
// whose occupancy models serialization bandwidth, and crossing a link
// additionally costs the hop latency (SerDes + router traversal).
// Express links are dedicated point-to-point connections outside the
// mesh, used only by traffic that explicitly asks for them.
type Fabric struct {
	topo    Topology
	eng     *sim.Engine
	p       params.Params
	links   map[linkKey]*link
	express map[linkKey]*link

	// Delivered counts frames fully delivered; Hops counts link
	// traversals (mesh only — an express crossing is not a mesh hop).
	Delivered uint64
	Hops      uint64
}

// NewFabric builds the timed mesh over the engine with the given
// calibration.
func NewFabric(eng *sim.Engine, topo Topology, p params.Params) *Fabric {
	f := &Fabric{
		topo:    topo,
		eng:     eng,
		p:       p,
		links:   make(map[linkKey]*link),
		express: make(map[linkKey]*link),
	}
	for id := addr.NodeID(1); int(id) <= topo.Nodes(); id++ {
		for _, nb := range topo.Neighbors(id) {
			k := linkKey{id, nb}
			f.links[k] = f.newLink(k, "mesh", 0)
		}
	}
	m := eng.Metrics()
	m.CounterFunc(metrics.FamMeshDelivered, "frames fully delivered by the fabric", nil,
		func() uint64 { return f.Delivered })
	m.CounterFunc(metrics.FamMeshHops, "mesh link traversals", nil,
		func() uint64 { return f.Hops })
	return f
}

// newLink builds a directed link and registers its traffic counters.
func (f *Fabric) newLink(k linkKey, class string, queue int) *link {
	name := fmt.Sprintf("link %d->%d", k.from, k.to)
	if class == "express" {
		name = fmt.Sprintf("express %d->%d", k.from, k.to)
	}
	l := &link{res: sim.NewResource(f.eng, name, queue)}
	ls := metrics.L(
		"from", fmt.Sprintf("%d", k.from),
		"to", fmt.Sprintf("%d", k.to),
		"class", class,
	)
	m := f.eng.Metrics()
	m.CounterFunc(metrics.FamMeshLinkFrames, "frames carried by this directed link", ls,
		func() uint64 { return l.frames })
	m.CounterFunc(metrics.FamMeshLinkBytes, "wire bytes carried by this directed link", ls,
		func() uint64 { return l.bytes })
	return l
}

// Topology returns the fabric's geometry.
func (f *Fabric) Topology() Topology { return f.topo }

// AddExpressLink installs a dedicated bidirectional point-to-point link
// between two nodes (one spare HTX connector each). Traffic only uses it
// via DeliverExpress.
func (f *Fabric) AddExpressLink(a, b addr.NodeID) error {
	if !f.topo.Contains(a) || !f.topo.Contains(b) || a == b {
		return fmt.Errorf("mesh: invalid express link %d<->%d", a, b)
	}
	for _, k := range []linkKey{{a, b}, {b, a}} {
		if _, dup := f.express[k]; dup {
			return fmt.Errorf("mesh: express link %d->%d already exists", k.from, k.to)
		}
		f.express[k] = f.newLink(k, "express", 0)
	}
	return nil
}

// occupancy returns the link occupancy of a frame of the given wire size:
// the calibrated per-packet occupancy covers one cache-line frame; larger
// transfers (page DMA) scale linearly.
func (f *Fabric) occupancy(wireBytes int) sim.Time {
	units := (wireBytes + params.CacheLineSize - 1) / params.CacheLineSize
	if units < 1 {
		units = 1
	}
	return sim.Time(units) * f.p.LinkOccupancy
}

// Deliver sends a frame of wireBytes from src to dst along the XY route,
// starting at now. It returns the arrival time at dst and the hop count.
// Each hop is store-and-forward: the frame serializes onto the link
// (waiting behind earlier frames), then takes the hop latency to cross,
// which is how contention on shared mesh links appears in Figure 8.
func (f *Fabric) Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int) {
	if src == dst {
		return now, 0
	}
	path := f.topo.Path(src, dst)
	t := now
	occ := f.occupancy(wireBytes)
	for i := 0; i+1 < len(path); i++ {
		k := linkKey{path[i], path[i+1]}
		l := f.links[k]
		done, _ := l.res.Acquire(t, occ) // mesh links have unbounded queues
		l.frames++
		l.bytes += uint64(wireBytes)
		f.Hops++
		t = done + f.p.HopLatency
	}
	f.Delivered++
	return t, len(path) - 1
}

// DeliverExpress sends a frame over a dedicated express link. It fails if
// no such link exists.
func (f *Fabric) DeliverExpress(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, error) {
	l, ok := f.express[linkKey{src, dst}]
	if !ok {
		return 0, fmt.Errorf("mesh: no express link %d->%d", src, dst)
	}
	done, _ := l.res.Acquire(now, f.occupancy(wireBytes))
	l.frames++
	l.bytes += uint64(wireBytes)
	f.Delivered++
	return done + f.p.HopLatency, nil
}

// LinkUtilization returns the utilization of the directed mesh link
// from->to over elapsed time, for diagnostics.
func (f *Fabric) LinkUtilization(from, to addr.NodeID, elapsed sim.Time) (float64, error) {
	l, ok := f.links[linkKey{from, to}]
	if !ok {
		return 0, fmt.Errorf("mesh: no link %d->%d", from, to)
	}
	return l.res.Utilization(elapsed), nil
}

// Links returns the number of directed mesh links.
func (f *Fabric) Links() int { return len(f.links) }
