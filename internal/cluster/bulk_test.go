package cluster

import (
	"bytes"
	"testing"

	"repro/internal/addr"
	"repro/internal/rmc"
	"repro/internal/sim"
)

func mustIssueBulk(t *testing.T, n *Node, now sim.Time, req rmc.BulkRequest) {
	t.Helper()
	if err := n.IssueBulk(now, req); err != nil {
		t.Fatal(err)
	}
}

func TestIssueBulkLocalRead(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	want := make([]byte, 16*64)
	for i := range want {
		want[i] = byte(i + 3)
	}
	if err := n.Store().WriteAt(0x4000, want); err != nil {
		t.Fatal(err)
	}
	sink := make([]byte, 16*64)
	var doneAt sim.Time
	mustIssueBulk(t, n, 0, rmc.BulkRequest{
		Kind:  rmc.BulkRead,
		Spans: []rmc.Span{{Start: 0x4000, Lines: 16}},
		Data:  sink,
		Done: func(ts sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			doneAt = ts
		},
	})
	c.Set().Run()
	if !bytes.Equal(sink, want) {
		t.Error("local bulk read returned wrong bytes")
	}
	// 16 lines through one controller: at least 16 occupancy slots.
	p := c.Params()
	if doneAt < 16*p.DRAMOccupancy {
		t.Errorf("16-line local burst finished at %d ps, faster than the bank allows", doneAt)
	}
	if n.LocalOps != 16 || n.RemoteOps != 0 {
		t.Errorf("op mix local=%d remote=%d, want 16/0", n.LocalOps, n.RemoteOps)
	}
}

func TestIssueBulkRemoteRoundTrip(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	want := make([]byte, 32*64)
	for i := range want {
		want[i] = byte(i ^ 0x41)
	}
	st, err := c.Store(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteAt(0x20000, want); err != nil {
		t.Fatal(err)
	}
	sink := make([]byte, 32*64)
	completed := false
	mustIssueBulk(t, n, 0, rmc.BulkRequest{
		Kind:  rmc.BulkRead,
		Spans: []rmc.Span{{Start: addr.Phys(0x20000).WithNode(2), Lines: 32}},
		Data:  sink,
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			completed = true
		},
	})
	c.Set().Run()
	if !completed {
		t.Fatal("remote burst never completed")
	}
	if !bytes.Equal(sink, want) {
		t.Error("remote bulk read returned wrong bytes")
	}
	if n.RemoteOps != 32 {
		t.Errorf("RemoteOps = %d, want 32", n.RemoteOps)
	}
	if n.RMC().BulkBursts != 1 {
		t.Errorf("BulkBursts = %d, want 1", n.RMC().BulkBursts)
	}
}

func TestIssueBulkCopyDecomposition(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	want := make([]byte, 8*64)
	for i := range want {
		want[i] = byte(i * 5)
	}
	if err := n.Store().WriteAt(0x8000, want); err != nil {
		t.Fatal(err)
	}

	// Local source, local destination: pure controller traffic.
	localDone := false
	mustIssueBulk(t, n, 0, rmc.BulkRequest{
		Kind:    rmc.BulkCopy,
		Spans:   []rmc.Span{{Start: 0x8000, Lines: 8}},
		CopyDst: 0x10000,
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			localDone = true
		},
	})
	c.Set().Run()
	got := make([]byte, 8*64)
	if err := n.Store().ReadAt(0x10000, got); err != nil {
		t.Fatal(err)
	}
	if !localDone || !bytes.Equal(got, want) {
		t.Error("local-to-local copy failed")
	}

	// Local source, remote destination: decomposes into a write burst.
	remoteDone := false
	mustIssueBulk(t, n, c.Set().Now(), rmc.BulkRequest{
		Kind:    rmc.BulkCopy,
		Spans:   []rmc.Span{{Start: 0x8000, Lines: 8}},
		CopyDst: addr.Phys(0x30000).WithNode(3),
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			remoteDone = true
		},
	})
	c.Set().Run()
	st, err := c.Store(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.ReadAt(0x30000, got); err != nil {
		t.Fatal(err)
	}
	if !remoteDone || !bytes.Equal(got, want) {
		t.Error("local-to-remote copy failed")
	}

	// Remote source, remote destination: forwarded as a DMA burst.
	dmaDone := false
	mustIssueBulk(t, n, c.Set().Now(), rmc.BulkRequest{
		Kind:    rmc.BulkCopy,
		Spans:   []rmc.Span{{Start: addr.Phys(0x30000).WithNode(3), Lines: 8}},
		CopyDst: addr.Phys(0x48000).WithNode(4),
		Done: func(_ sim.Time, err error) {
			if err != nil {
				t.Fatal(err)
			}
			dmaDone = true
		},
	})
	c.Set().Run()
	st4, err := c.Store(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st4.ReadAt(0x48000, got); err != nil {
		t.Fatal(err)
	}
	if !dmaDone || !bytes.Equal(got, want) {
		t.Error("remote-to-remote copy failed")
	}
}

func TestIssueBulkValidation(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	nop := func(sim.Time, error) {}
	if err := n.IssueBulk(0, rmc.BulkRequest{Kind: rmc.BulkRead, Spans: []rmc.Span{{Start: 0x1000, Lines: 1}}}); err == nil {
		t.Error("missing Done accepted")
	}
	if err := n.IssueBulk(0, rmc.BulkRequest{Kind: rmc.BulkRead, Done: nop}); err == nil {
		t.Error("empty spans accepted")
	}
	if err := n.IssueBulk(0, rmc.BulkRequest{Kind: rmc.BulkRead, Spans: []rmc.Span{
		{Start: 0x1000, Lines: 1},
		{Start: addr.Phys(0x1000).WithNode(2), Lines: 1},
	}, Done: nop}); err == nil {
		t.Error("straddling spans accepted")
	}
	if err := n.IssueBulk(0, rmc.BulkRequest{Kind: rmc.BulkRead, Spans: []rmc.Span{{Start: 0x1001, Lines: 1}}, Done: nop}); err == nil {
		t.Error("unaligned local span accepted")
	}
}
