package cluster

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/params"
	"repro/internal/sim"
)

func build(t *testing.T) *Cluster {
	t.Helper()
	c, err := New(sim.WrapEngine(sim.New(), params.Default().HopLatency), params.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildPrototype(t *testing.T) {
	c := build(t)
	if c.Nodes() != 16 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	if _, err := c.Node(0); err == nil {
		t.Error("node 0 returned")
	}
	if _, err := c.Node(17); err == nil {
		t.Error("node 17 returned")
	}
	n := c.MustNode(3)
	if n.ID() != 3 {
		t.Errorf("node ID = %d", n.ID())
	}
	if n.Caches().Sockets() != 4 {
		t.Errorf("sockets = %d", n.Caches().Sockets())
	}
	if _, err := c.RMC(5); err != nil {
		t.Errorf("RMC(5): %v", err)
	}
	if _, err := c.Store(16); err != nil {
		t.Errorf("Store(16): %v", err)
	}
}

func TestInvalidParams(t *testing.T) {
	p := params.Default()
	p.MeshWidth = 0
	if _, err := New(sim.WrapEngine(sim.New(), p.HopLatency), p); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestIsRemote(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	if n.IsRemote(addr.Phys(0x1000)) {
		t.Error("local address reported remote")
	}
	if !n.IsRemote(addr.Phys(0x1000).WithNode(2)) {
		t.Error("prefixed address reported local")
	}
	// Even the loopback alias routes to the RMC: the BARs compare prefix
	// bits, nothing else.
	if !n.IsRemote(addr.Phys(0x1000).WithNode(1)) {
		t.Error("loopback alias reported local")
	}
}

func TestLocalAccessTiming(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	p := c.Params()
	var first, second sim.Time
	n.Issue(0, 0, cpu.Access{Addr: 0x4000}, false, func(ts sim.Time) { first = ts })
	c.Set().Run()
	// Miss: cache latency + controller occupancy + DRAM latency.
	want := p.L1Latency + p.DRAMOccupancy + p.DRAMLatency
	if first != want {
		t.Errorf("local miss = %d, want %d", first, want)
	}
	// Second access to the same line hits in cache.
	n.Issue(first, 0, cpu.Access{Addr: 0x4008}, false, func(ts sim.Time) { second = ts })
	c.Set().Run()
	if second-first != p.L1Latency {
		t.Errorf("cache hit = %d, want %d", second-first, p.L1Latency)
	}
	if n.LocalOps != 1 {
		t.Errorf("LocalOps = %d, want 1 (hit shouldn't count)", n.LocalOps)
	}
}

func TestRemoteAccessTiming(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	p := c.Params()
	a := addr.Phys(0x8000).WithNode(2) // 1 hop
	var done sim.Time
	n.Issue(0, 0, cpu.Access{Addr: a}, false, func(ts sim.Time) { done = ts })
	c.Set().Run()
	lo := p.RemoteRoundTrip(1)
	hi := lo + 10*p.LinkOccupancy + p.DRAMOccupancy + p.L1Latency
	if done < lo || done > hi {
		t.Errorf("remote miss = %d, want within [%d, %d]", done, lo, hi)
	}
	if n.RemoteOps != 1 {
		t.Errorf("RemoteOps = %d", n.RemoteOps)
	}

	// Remote line is cached write-back: the second access hits locally.
	var hit sim.Time
	n.Issue(done, 0, cpu.Access{Addr: a + 8}, false, func(ts sim.Time) { hit = ts })
	c.Set().Run()
	if hit-done != p.L1Latency {
		t.Errorf("cached remote hit = %d, want %d", hit-done, p.L1Latency)
	}
	if n.RemoteOps != 1 {
		t.Error("cache hit generated remote traffic")
	}
}

func TestRemoteReadSeesRemoteStore(t *testing.T) {
	c := build(t)
	// Seed node 2's functional memory, then read it (timing path) and
	// check the data arrived via the response payload path by reading the
	// store through resolve (functional equivalence).
	want := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	st, _ := c.Store(2)
	if err := st.WriteAt(0x9000, want); err != nil {
		t.Fatal(err)
	}
	n := c.MustNode(1)
	done := false
	n.Issue(0, 0, cpu.Access{Addr: addr.Phys(0x9000).WithNode(2)}, false, func(sim.Time) { done = true })
	c.Set().Run()
	if !done {
		t.Fatal("remote read did not complete")
	}
	got := make([]byte, 8)
	if err := st.ReadAt(0x9000, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("owner store read %v, want %v", got, want)
		}
	}
	// Loopback addresses live in the node's own store.
	own, _ := c.Store(1)
	if own != n.Store() {
		t.Error("loopback store is not the node's own store")
	}
}

func TestThreadOverCluster(t *testing.T) {
	// End-to-end: a thread on node 1 streams over remote memory on node 2
	// with the window of one; throughput is bounded by the round trip.
	c := build(t)
	p := c.Params()
	n := c.MustNode(1)
	const count = 64
	accs := make([]cpu.Access, count)
	for i := range accs {
		// Distinct lines: every access misses.
		accs[i] = cpu.Access{Addr: addr.Phys(uint64(i) * 4096).WithNode(2)}
	}
	th, err := cpu.NewThread(cpu.ThreadConfig{
		Name: "t0", Engine: n.Engine(), Memory: n,
		Stream:      cpu.NewSliceStream(accs),
		WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
	})
	if err != nil {
		t.Fatal(err)
	}
	th.Start(0)
	c.Set().Run()
	if !th.Done {
		t.Fatal("thread did not finish")
	}
	perAccess := th.Elapsed() / count
	rt := p.RemoteRoundTrip(1)
	if perAccess < rt || perAccess > rt+rt/2 {
		t.Errorf("per-access = %d ps, want near round trip %d", perAccess, rt)
	}
}

func TestDirtyRemoteVictimWritesBack(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	srv := c.MustNode(2)
	// Write a remote line (write-allocate, becomes M in cache), then
	// stream enough conflicting lines through the same set to evict it.
	target := addr.Phys(0).WithNode(2)
	n.Issue(0, 0, cpu.Access{Addr: target, Write: true}, false, func(sim.Time) {})
	c.Set().Run()
	servedBefore := srv.RMC().ServedHere

	cfg := n.Caches()
	setSpan := uint64(1024) * cfg.LineSize() // DefaultConfig: 1024 sets
	for i := 1; i <= 9; i++ {                // > 8 ways
		a := addr.Phys(uint64(i) * setSpan).WithNode(2)
		n.Issue(c.Set().Now(), 0, cpu.Access{Addr: a}, false, func(sim.Time) {})
		c.Set().Run()
	}
	if srv.RMC().ServedHere <= servedBefore+9 {
		t.Errorf("no victim writeback reached the server (served %d -> %d)",
			servedBefore, srv.RMC().ServedHere)
	}
}

func TestSocketMapping(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	if n.socketOf(0) != 0 || n.socketOf(3) != 0 {
		t.Error("cores 0-3 should map to socket 0")
	}
	if n.socketOf(4) != 1 || n.socketOf(15) != 3 {
		t.Error("core/socket mapping wrong")
	}
	if n.socketOf(99) != 3 {
		t.Error("out-of-range core should clamp")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() sim.Time {
		c := build(t)
		n := c.MustNode(1)
		var accs []cpu.Access
		for i := 0; i < 200; i++ {
			accs = append(accs, cpu.Access{Addr: addr.Phys(uint64(i*7919%4096) * 64).WithNode(addr.NodeID(2 + i%3))})
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Engine: n.Engine(), Memory: n, Stream: cpu.NewSliceStream(accs),
			WindowLocal: 8, WindowRemote: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
		c.Set().Run()
		return th.FinishTime
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged: %d vs %d", a, b)
	}
}

func TestPrefetchAcceleratesStreams(t *testing.T) {
	run := func(depth int) sim.Time {
		p := params.Default()
		p.PrefetchDepth = depth
		if depth > 0 {
			p.RMCQueueDepth = depth + 1
		}
		c, err := New(sim.WrapEngine(sim.New(), p.HopLatency), p)
		if err != nil {
			t.Fatal(err)
		}
		n := c.MustNode(1)
		const lines = 512
		accs := make([]cpu.Access, lines)
		for i := range accs {
			accs[i] = cpu.Access{Addr: addr.Phys(uint64(i) * 64).WithNode(2)}
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Engine: n.Engine(), Memory: n, Stream: cpu.NewSliceStream(accs),
			WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
		c.Set().Run()
		if !th.Done {
			t.Fatal("stream did not finish")
		}
		if depth > 0 && n.Prefetches == 0 {
			t.Error("prefetcher never fired on a sequential stream")
		}
		if depth == 0 && n.Prefetches != 0 {
			t.Error("prefetches issued with depth 0")
		}
		return th.Elapsed()
	}
	off, on := run(0), run(4)
	if on >= off {
		t.Errorf("prefetch did not help: %d vs %d", on, off)
	}
	if on < off/4 {
		t.Errorf("prefetch gain implausibly large: %d vs %d", on, off)
	}
}

func TestPrefetchPreservesRandomAccessTime(t *testing.T) {
	run := func(depth int) sim.Time {
		p := params.Default()
		p.PrefetchDepth = depth
		c, err := New(sim.WrapEngine(sim.New(), p.HopLatency), p)
		if err != nil {
			t.Fatal(err)
		}
		n := c.MustNode(1)
		accs := make([]cpu.Access, 256)
		for i := range accs {
			accs[i] = cpu.Access{Addr: addr.Phys(uint64((i*7919)%100000) * 4096).WithNode(2)}
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Engine: n.Engine(), Memory: n, Stream: cpu.NewSliceStream(accs),
			WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
		c.Set().Run()
		return th.Elapsed()
	}
	if off, on := run(0), run(8); off != on {
		t.Errorf("prefetch changed random-access time: %d vs %d", off, on)
	}
}

func TestFlushCaches(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	for i := 0; i < 32; i++ {
		n.Issue(c.Set().Now(), 0, cpu.Access{Addr: addr.Phys(uint64(i) * 64), Write: true}, false, func(sim.Time) {})
		c.Set().Run()
	}
	if dirty := n.FlushCaches(c.Set().Now()); dirty != 32 {
		t.Errorf("flush wrote back %d lines, want 32", dirty)
	}
	if n.FlushCaches(c.Set().Now()) != 0 {
		t.Error("second flush found dirty lines")
	}
}

func TestHToEClusterEndToEnd(t *testing.T) {
	// The whole machine runs over the switched fabric: constant distance,
	// higher per-line cost, no express links.
	p := params.Default()
	p.Fabric = params.FabricHToE
	c, err := New(sim.WrapEngine(sim.New(), p.HopLatency), p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.MeshFabric(); err == nil {
		t.Error("HToE cluster handed out a mesh fabric")
	}
	n := c.MustNode(1)
	measure := func(dst addr.NodeID) sim.Time {
		start := c.Set().Now()
		var done sim.Time
		n.Issue(start, 0, cpu.Access{Addr: addr.Phys(uint64(dst) * 4096).WithNode(dst)}, false,
			func(ts sim.Time) { done = ts })
		c.Set().Run()
		return done - start
	}
	near, far := measure(2), measure(16)
	if near != far {
		t.Errorf("switched fabric not distance-blind: %d vs %d", near, far)
	}
	if near <= p.RemoteRoundTrip(1) {
		t.Errorf("HToE access (%d) should cost more than a 1-hop mesh trip (%d)", near, p.RemoteRoundTrip(1))
	}
}

func TestMeshFabricAccessor(t *testing.T) {
	c := build(t)
	if _, err := c.MeshFabric(); err != nil {
		t.Errorf("mesh cluster has no mesh fabric: %v", err)
	}
	if c.Fabric() == nil {
		t.Error("no interconnect")
	}
	n := c.MustNode(2)
	if n.MemMap() == nil || n.BARs() == nil || n.Bank() == nil || n.Store() == nil {
		t.Error("node getters broken")
	}
}

func TestLocalDirtyVictimWritesBackToBank(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	// Dirty a local line, then stream conflicting local lines through the
	// same set until it evicts: the victim must cost a bank write.
	n.Issue(0, 0, cpu.Access{Addr: 0, Write: true}, false, func(sim.Time) {})
	c.Set().Run()
	setSpan := uint64(1024) * n.Caches().LineSize()
	for i := 1; i <= 9; i++ {
		n.Issue(c.Set().Now(), 0, cpu.Access{Addr: addr.Phys(uint64(i) * setSpan)}, false, func(sim.Time) {})
		c.Set().Run()
	}
	_, writes := n.Bank().Stats()
	if writes == 0 {
		t.Error("local dirty victim never wrote back to the bank")
	}
}
