package cluster

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestMetricsInstrumentation drives local, remote, and phase-change
// traffic through one node and checks every cache/node family registered
// from the cluster layer reports it.
func TestMetricsInstrumentation(t *testing.T) {
	c := build(t)
	n := c.MustNode(1)
	noop := func(sim.Time) {}

	n.Issue(0, 0, cpu.Access{Addr: 0x4000}, false, noop) // local miss
	c.Set().Run()
	remote := addr.Phys(0x8000).WithNode(2)
	n.Issue(c.Set().Now(), 0, cpu.Access{Addr: remote, Write: true}, false, noop)
	c.Set().Run()
	if flushed := n.FlushCaches(c.Set().Now()); flushed == 0 {
		t.Fatal("no dirty lines to flush")
	}

	snap := c.Set().Metrics().Snapshot()
	val := func(name string) float64 {
		v, _ := snap.Value(name, metrics.L("node", "1"))
		return v
	}
	if val(metrics.FamCacheAccesses) == 0 {
		t.Error("cache accesses not counted")
	}
	if val(metrics.FamCacheMisses) == 0 {
		t.Error("cache misses not counted")
	}
	if val(metrics.FamNodeLocalOps) != 1 {
		t.Errorf("local ops = %v, want 1", val(metrics.FamNodeLocalOps))
	}
	if val(metrics.FamNodeRemoteOps) != 1 {
		t.Errorf("remote ops = %v, want 1", val(metrics.FamNodeRemoteOps))
	}
	if val(metrics.FamCacheFlushedDirty) == 0 {
		t.Error("flushed dirty lines not counted")
	}
	// The per-node rollup view carries the same numbers.
	var found bool
	for _, nv := range snap.Nodes() {
		if nv.Node == 1 {
			found = true
			if nv.CacheAccesses == 0 || nv.RemoteOps != 1 {
				t.Errorf("node view = %+v", nv)
			}
		}
	}
	if !found {
		t.Error("node 1 missing from Nodes() view")
	}
}
