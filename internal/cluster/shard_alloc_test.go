package cluster

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/params"
	"repro/internal/sim"
)

// TestCrossShardExchangeSteadyStateAllocs drives remote round trips
// across a 2-shard partition and requires the steady state to allocate
// nothing: the exchange records intents into reused slices, deliveries
// ride pooled events, and the RMC op/buffer pools absorb the traffic —
// including the pool returns deferred to the barrier.
func TestCrossShardExchangeSteadyStateAllocs(t *testing.T) {
	p := params.Default()
	p.Shards = 2
	set := sim.NewShardSet(p.Shards, p.HopLatency)
	c, err := New(set, p)
	if err != nil {
		t.Fatal(err)
	}
	// On the 4x4 mesh split 2x1, node 1 (0,0) is on shard 0 and node 3
	// (2,0) on shard 1; every access below crosses the partition.
	n := c.MustNode(1)
	if n.Shard() == c.MustNode(3).Shard() {
		t.Fatal("nodes 1 and 3 share a shard; the test needs a cross-shard pair")
	}
	remote := addr.Phys(0x10000).WithNode(3)
	noop := func(sim.Time) {}

	roundTrip := func() {
		n.Issue(set.Now(), 0, cpu.Access{Addr: remote, Write: false}, false, noop)
		set.Run()
	}
	// Warm the pools: event arenas, exchange slices, op free lists, and
	// the cache sets the access path touches.
	for i := 0; i < 50; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(200, roundTrip); avg != 0 {
		t.Errorf("cross-shard round trip allocates %.2f objects steady-state, want 0", avg)
	}
}
