// Package cluster assembles the hardware of the prototype: N nodes on a
// 2D mesh, each with a cache hierarchy, socket-interleaved memory
// controllers, a sparse functional store, and an RMC bridging the node
// onto the HNC-HT fabric. A Node implements cpu.MemorySystem, so threads
// issue plain loads and stores and the BAR comparison decides whether
// they go to a local controller or out through the RMC — exactly the
// forwarding path of paper Section III-B.
package cluster

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/dram"
	"repro/internal/faults"
	"repro/internal/ht"
	"repro/internal/htoe"
	"repro/internal/mem"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/prefetch"
	"repro/internal/rmc"
	"repro/internal/sim"
)

// Cluster is the assembled machine.
type Cluster struct {
	p       params.Params
	set     *sim.ShardSet
	topo    mesh.Topology
	part    mesh.Partition
	fabric  rmc.Fabric
	meshFab *mesh.Fabric // non-nil only for the mesh interconnect
	inj     *faults.Injector
	exch    []*rmc.Exchange
	exSet   *rmc.ExchangeSet
	nodes   []*Node
}

// New builds a cluster from the parameter set, partitioned over the
// shard set's engines. The mesh is tiled into one rectangular region per
// shard (mesh.Partition); every node's events — cache, DRAM, RMC client
// and server work — run on its region's engine, and cross-shard frame
// deliveries travel through the windowed exchange drained at the set's
// barriers. A single-shard set reproduces the same exchange schedule
// inline, so figures are byte-identical at any shard count.
func New(set *sim.ShardSet, p params.Params) (*Cluster, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		return nil, err
	}
	part, err := topo.Partition(set.Shards())
	if err != nil {
		return nil, err
	}
	c := &Cluster{p: p, set: set, topo: topo, part: part}
	// An empty plan builds no injector at all: the system is then
	// bit-identical — events, metrics families, figures — to one built
	// before the fault layer existed.
	if !p.Faults.Empty() {
		if err := validatePlanTopology(p.Faults, topo); err != nil {
			return nil, err
		}
		// Retransmit timers are scheduled from the window barrier in
		// exchange mode, so they must land at or past the window limit —
		// a timeout shorter than the lookahead window would fire into a
		// shard's past. Only armed plans can drop frames and start timers.
		if p.RetransmitTimeout < p.HopLatency {
			return nil, fmt.Errorf("cluster: retransmit timeout %v is shorter than the %v lookahead window; a fault plan needs RetransmitTimeout >= HopLatency", p.RetransmitTimeout, p.HopLatency)
		}
		c.inj = faults.NewInjector(p.Faults)
		c.inj.Register(set.Metrics())
	}
	switch p.Fabric {
	case params.FabricHToE:
		f, err := htoe.New(set.Engine(0), topo.Nodes(), htoe.DefaultConfig())
		if err != nil {
			return nil, err
		}
		f.InjectFaults(c.inj)
		c.fabric = f
	default:
		c.meshFab = mesh.NewFabric(set.Engine(0), topo, p, c.inj)
		c.fabric = c.meshFab
	}
	for i := 0; i < set.Shards(); i++ {
		c.exch = append(c.exch, rmc.NewExchange(set.Engine(i)))
	}
	c.exSet = rmc.NewExchangeSet(c.exch)
	set.OnBarrier(c.exSet.Drain)
	set.SetIntentSource(c.exSet.Earliest)
	if set.Shards() > 1 && c.meshFab != nil {
		// Upgrade the uniform window to the distance-aware machinery:
		// B[j][i] from the mesh geometry (and any -linklat table), the
		// policy from -window, and — under an armed fault plan — the
		// retransmit-timeout cap that keeps drain-time timers in every
		// shard's future. Express links added later tighten the matrix,
		// so the fabric recomputes it on topology changes — which must
		// happen with the set parked (before Run or between Run calls):
		// ConfigureLookahead panics mid-run, because a frame routed over
		// the new link inside the current window would be bounded by the
		// tighter matrix while the destination shard's limit was planned
		// with the old one.
		policy := sim.PolicyUniform
		switch p.Window {
		case params.WindowDistance:
			policy = sim.PolicyDistance
		case params.WindowElide:
			policy = sim.PolicyElide
		}
		var capOver sim.Time
		if c.inj != nil {
			capOver = p.RetransmitTimeout
		}
		b := c.meshFab.MinDelayMatrix(part)
		set.ConfigureLookahead(policy, b, capOver)
		c.exSet.SetSelfBounds(b)
		c.meshFab.OnTopologyChange(func() {
			nb := c.meshFab.MinDelayMatrix(c.part)
			set.ConfigureLookahead(policy, nb, capOver)
			c.exSet.SetSelfBounds(nb)
		})
	}
	for id := addr.NodeID(1); int(id) <= topo.Nodes(); id++ {
		n, err := newNode(c, id)
		if err != nil {
			return nil, fmt.Errorf("cluster: building node %d: %w", id, err)
		}
		c.nodes = append(c.nodes, n)
	}
	if c.inj != nil {
		// Stall windows are scheduled events: at each window's start the
		// node's server RMC loses the window's worth of capacity. The
		// event runs on the stalled node's own engine — the stall mutates
		// that node's server resource.
		for _, w := range p.Faults.Stalls {
			w := w
			n := c.nodes[w.Node-1]
			n.eng.At(sim.Time(w.Start), func() {
				n.rmc.StallServer(sim.Time(w.Start), sim.Time(w.End-w.Start))
			})
		}
	}
	return c, nil
}

// validatePlanTopology checks the plan's node and link references
// against the actual geometry — a plan naming a node outside the mesh
// (or a non-adjacent "link") would otherwise fail silently.
func validatePlanTopology(plan *faults.Plan, topo mesh.Topology) error {
	for _, lw := range plan.LinkDowns {
		if !topo.Contains(lw.From) || !topo.Contains(lw.To) {
			return fmt.Errorf("cluster: fault plan link %d-%d outside the %dx%d mesh", lw.From, lw.To, topo.W, topo.H)
		}
		if topo.Hops(lw.From, lw.To) != 1 {
			return fmt.Errorf("cluster: fault plan link %d-%d is not a mesh link", lw.From, lw.To)
		}
	}
	for _, set := range [][]faults.NodeWindow{plan.NackStorms, plan.Stalls} {
		for _, nw := range set {
			if !topo.Contains(nw.Node) {
				return fmt.Errorf("cluster: fault plan node %d outside the %dx%d mesh", nw.Node, topo.W, topo.H)
			}
		}
	}
	return nil
}

// Params returns the cluster's calibration.
func (c *Cluster) Params() params.Params { return c.p }

// Set returns the shard set driving the cluster.
func (c *Cluster) Set() *sim.ShardSet { return c.set }

// Partition returns the mesh-region-to-shard assignment.
func (c *Cluster) Partition() mesh.Partition { return c.part }

// Exchanges returns the per-shard exchange set (for the oracle tests'
// trace hook).
func (c *Cluster) Exchanges() *rmc.ExchangeSet { return c.exSet }

// Topology returns the mesh geometry.
func (c *Cluster) Topology() mesh.Topology { return c.topo }

// Fabric returns the timed interconnect.
func (c *Cluster) Fabric() rmc.Fabric { return c.fabric }

// MeshFabric returns the concrete mesh fabric (for express-link setup);
// it errors when the cluster runs a different interconnect.
func (c *Cluster) MeshFabric() (*mesh.Fabric, error) {
	if c.meshFab == nil {
		return nil, fmt.Errorf("cluster: the %v interconnect has no mesh fabric", c.p.Fabric)
	}
	return c.meshFab, nil
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// Node returns the node with the given identifier.
func (c *Cluster) Node(id addr.NodeID) (*Node, error) {
	if id == 0 || int(id) > len(c.nodes) {
		return nil, fmt.Errorf("cluster: no node %d", id)
	}
	return c.nodes[id-1], nil
}

// MustNode is Node for static identifiers in experiments.
func (c *Cluster) MustNode(id addr.NodeID) *Node {
	n, err := c.Node(id)
	if err != nil {
		panic(err)
	}
	return n
}

// RMC implements rmc.Peers.
func (c *Cluster) RMC(id addr.NodeID) (*rmc.RMC, error) {
	n, err := c.Node(id)
	if err != nil {
		return nil, err
	}
	return n.rmc, nil
}

// Store returns the functional memory of a node, for OS-level machinery
// (reservation, swap transfer) that moves data outside the timed path.
func (c *Cluster) Store(id addr.NodeID) (*mem.Store, error) {
	n, err := c.Node(id)
	if err != nil {
		return nil, err
	}
	return n.store, nil
}

// Node is one motherboard: a coherency domain plus its RMC.
type Node struct {
	id      addr.NodeID
	cluster *Cluster
	p       params.Params
	eng     *sim.Engine

	memmap *addr.MemMap
	bars   *ht.RoutingTable
	rmcU   ht.UnitID
	caches *cache.Hierarchy
	bank   *dram.Bank
	store  *mem.Store
	rmc    *rmc.RMC
	pf     *prefetch.Detector

	tagseq uint16

	// issueOps is the free list of reified Issue continuations; one op
	// carries a single access from issue to completion with its
	// callbacks prebound, so the steady-state hit/fill/remote paths
	// schedule without allocating. bulkIssues is its twin for IssueBulk,
	// pfOps for prefetch fills.
	issueOps   []*issueOp
	bulkIssues []*bulkIssue
	pfOps      []*pfOp

	// LocalOps and RemoteOps count issued line operations by
	// destination; Prefetches counts prefetch fills requested;
	// FlushedDirty counts dirty lines written back by FlushCaches.
	LocalOps, RemoteOps, Prefetches, FlushedDirty uint64

	// AbandonedOps counts remote operations that failed with an
	// unreachable destination after the RMC's retransmit budget — only
	// possible under a fault plan.
	AbandonedOps uint64
}

func newNode(c *Cluster, id addr.NodeID) (*Node, error) {
	p := c.p
	mm, err := addr.NewMemMap(id, c.topo.Nodes(), p.MemPerNode)
	if err != nil {
		return nil, err
	}
	rmcUnit := ht.UnitID(p.SocketsPerNode) // first unit after the MCs
	bars, err := ht.BuildNodeTable(p.SocketsPerNode, p.MemPerNode, c.topo.Nodes(), rmcUnit)
	if err != nil {
		return nil, err
	}
	caches, err := cache.NewHierarchy(p.SocketsPerNode, cache.DefaultConfig())
	if err != nil {
		return nil, err
	}
	store, err := mem.NewStore(p.MemPerNode)
	if err != nil {
		return nil, err
	}
	pf, err := prefetch.New(p.PrefetchDepth, cache.DefaultConfig().LineSize)
	if err != nil {
		return nil, err
	}
	shard := c.part.ShardOf(id)
	eng := c.set.Engine(shard)
	n := &Node{
		id:      id,
		cluster: c,
		p:       p,
		eng:     eng,
		memmap:  mm,
		bars:    bars,
		rmcU:    rmcUnit,
		caches:  caches,
		bank:    dram.NewBank(eng, id, p),
		store:   store,
		pf:      pf,
	}
	n.rmc, err = rmc.New(rmc.Config{
		Self:   id,
		Engine: eng,
		Params: p,
		Fabric: c.fabric,
		Peers:  c,
		Bank:   n.bank,
		Store:  store,
		Faults: c.inj,
		Exch:   c.exch[shard],
		Now:    c.set.Now,
	})
	if err != nil {
		return nil, err
	}
	n.register(c.set.Metrics())
	return n, nil
}

// register exposes the node's cache and op-mix tallies. The cache
// hierarchy has no engine reference, so its counters are sampled from
// here rather than from inside package cache.
func (n *Node) register(m *metrics.Registry) {
	ls := metrics.L("node", fmt.Sprintf("%d", n.id))
	m.CounterFunc(metrics.FamCacheAccesses, "cache hierarchy accesses", ls, func() uint64 { return n.caches.Accesses })
	m.CounterFunc(metrics.FamCacheHits, "cache hits", ls, func() uint64 { return n.caches.Hits })
	m.CounterFunc(metrics.FamCacheMisses, "cache misses", ls, func() uint64 { return n.caches.Misses })
	m.CounterFunc(metrics.FamCacheWritebacks, "dirty lines written back", ls, func() uint64 { return n.caches.Writebacks })
	m.CounterFunc(metrics.FamCacheFlushedDirty, "dirty lines flushed at phase changes", ls, func() uint64 { return n.FlushedDirty })
	m.CounterFunc(metrics.FamNodeLocalOps, "line operations served by local memory", ls, func() uint64 { return n.LocalOps })
	m.CounterFunc(metrics.FamNodeRemoteOps, "line operations forwarded to remote memory", ls, func() uint64 { return n.RemoteOps })
	m.CounterFunc(metrics.FamNodePrefetches, "prefetch fills requested", ls, func() uint64 { return n.Prefetches })
	if n.cluster.inj != nil {
		m.CounterFunc(metrics.FamNodeAbandonedOps, "remote operations abandoned as unreachable", ls, func() uint64 { return n.AbandonedOps })
	}
}

// ID returns the node identifier.
func (n *Node) ID() addr.NodeID { return n.id }

// Engine returns the shard engine the node's events run on. Threads
// driving this node must schedule here.
func (n *Node) Engine() *sim.Engine { return n.eng }

// Shard returns the node's shard index.
func (n *Node) Shard() int { return n.cluster.part.ShardOf(n.id) }

// RMC returns the node's remote memory controller.
func (n *Node) RMC() *rmc.RMC { return n.rmc }

// Caches returns the node's coherent cache domain.
func (n *Node) Caches() *cache.Hierarchy { return n.caches }

// Bank returns the node's memory controllers.
func (n *Node) Bank() *dram.Bank { return n.bank }

// Store returns the node's functional memory.
func (n *Node) Store() *mem.Store { return n.store }

// MemMap returns the node's view of the cluster memory map.
func (n *Node) MemMap() *addr.MemMap { return n.memmap }

// BARs returns the node's HT routing table.
func (n *Node) BARs() *ht.RoutingTable { return n.bars }

// FlushCaches writes back and invalidates every line in the node's
// coherent domain — the operation the prototype performs between a
// write phase and a read-only parallel phase. Timing: the flush itself
// is modeled as instantaneous control work; each dirty line's writeback
// consumes memory/RMC/fabric capacity from now on, so subsequent
// accesses contend with the flush traffic. It returns the number of
// dirty lines written back.
func (n *Node) FlushCaches(now sim.Time) int {
	// The hierarchy does not remember victim addresses on a bulk flush,
	// so the writeback traffic is modeled as that many line writes to
	// the local controllers (remote dirty lines would add RMC traffic;
	// the discipline of the paper flushes before the data is re-read,
	// when that traffic has already drained).
	dirty := n.caches.FlushAll()
	n.FlushedDirty += uint64(dirty)
	for i := 0; i < dirty; i++ {
		if _, err := n.bank.Access(now, addr.Phys(uint64(i)*params.CacheLineSize%n.p.MemPerNode), true); err != nil {
			panic(fmt.Sprintf("cluster: node %d flush writeback: %v", n.id, err))
		}
	}
	return dirty
}

// IsRemote implements cpu.MemorySystem: an address is remote exactly when
// the BARs route it to the RMC unit.
func (n *Node) IsRemote(a addr.Phys) bool {
	u, err := n.bars.Route(a)
	if err != nil {
		panic(fmt.Sprintf("cluster: node %d has no route for %v: %v", n.id, a, err))
	}
	return u == n.rmcU
}

// socketOf maps a core index to its socket.
func (n *Node) socketOf(core int) int {
	perSocket := n.p.CoresPerNode / n.p.SocketsPerNode
	if perSocket < 1 {
		perSocket = 1
	}
	s := core / perSocket
	if s >= n.p.SocketsPerNode {
		s = n.p.SocketsPerNode - 1
	}
	return s
}

// issueOp carries one Issue from schedule to completion. Allocated once,
// callbacks bound once, recycled when the access completes — the RMC
// invokes done exactly once per request (even under faults), so
// recycling here is unconditional.
type issueOp struct {
	n    *Node
	done func(sim.Time)

	completeFn func()
	remoteFn   func(sim.Time, ht.Packet, error)
}

func (n *Node) getIssueOp() *issueOp {
	if l := len(n.issueOps); l > 0 {
		op := n.issueOps[l-1]
		n.issueOps = n.issueOps[:l-1]
		return op
	}
	op := &issueOp{n: n}
	op.completeFn = func() {
		done := op.done
		op.n.putIssueOp(op)
		done(op.n.eng.Now())
	}
	op.remoteFn = func(t sim.Time, _ ht.Packet, rerr error) {
		if rerr != nil {
			// Graceful degradation: the destination stayed unreachable
			// past the retransmit budget. The op still completes (the
			// thread would take a machine-check, not hang), counted.
			op.n.AbandonedOps++
		}
		done := op.done
		op.n.putIssueOp(op)
		done(t)
	}
	return op
}

func (n *Node) putIssueOp(op *issueOp) {
	op.done = nil
	n.issueOps = append(n.issueOps, op)
}

// Issue implements cpu.MemorySystem. The access runs through the cache
// hierarchy; a hit completes at probe-adjusted cache latency, a miss
// fills the line from the owning memory — a local controller or, for
// prefixed addresses, the RMC round trip. Dirty victims are written back
// asynchronously to their owner.
func (n *Node) Issue(now sim.Time, core int, a cpu.Access, express bool, done func(sim.Time)) {
	res, err := n.caches.Access(n.socketOf(core), a.Addr, a.Write)
	if err != nil {
		panic(fmt.Sprintf("cluster: node %d cache access: %v", n.id, err))
	}
	lat := n.p.L1Latency + sim.Time(res.Probes)*n.p.CacheProbeLatency
	if res.VictimDirty {
		n.writeback(now, res.Victim)
	}
	line := a.Addr.Line(n.caches.LineSize())
	if n.IsRemote(line) {
		// Feed the stream detector on every remote access, hit or miss:
		// hits on previously prefetched lines are exactly what keeps a
		// stream alive and the prefetcher running ahead of it.
		n.maybePrefetch(now+lat, core, line)
	}
	op := n.getIssueOp()
	op.done = done
	if res.Hit {
		n.eng.At(now+lat, op.completeFn)
		return
	}
	if !n.IsRemote(line) {
		n.LocalOps++
		memDone, err := n.bank.Access(now+lat, line, a.Write)
		if err != nil {
			panic(fmt.Sprintf("cluster: node %d local fill: %v", n.id, err))
		}
		n.eng.At(memDone, op.completeFn)
		return
	}

	n.RemoteOps++
	pkt, err := n.linePacket(line, a.Write)
	if err != nil {
		panic(fmt.Sprintf("cluster: node %d remote fill: %v", n.id, err))
	}
	if err := n.rmc.Request(now+lat, pkt, express, op.remoteFn); err != nil {
		panic(fmt.Sprintf("cluster: node %d RMC request: %v", n.id, err))
	}
}

// pfOp carries one prefetch fill from request to install, its callback
// prebound like issueOp's — the RMC invokes done exactly once per
// request (even under faults), so recycling is unconditional and the
// steady-state prefetch stream schedules without allocating.
type pfOp struct {
	n      *Node
	line   addr.Phys
	socket int

	doneFn func(sim.Time, ht.Packet, error)
}

func (n *Node) getPfOp() *pfOp {
	if l := len(n.pfOps); l > 0 {
		op := n.pfOps[l-1]
		n.pfOps = n.pfOps[:l-1]
		return op
	}
	op := &pfOp{n: n}
	op.doneFn = func(t sim.Time, rsp ht.Packet, rerr error) {
		n := op.n
		line, socket := op.line, op.socket
		n.putPfOp(op)
		n.pf.Completed(line)
		if rerr != nil {
			// A prefetch that could not reach its donor is simply lost
			// speculation; the demand stream will retry.
			return
		}
		if rsp.Cmd == ht.CmdTgtAbort {
			// The stream ran past what this node was granted; the
			// serving RMC refused the fill. Drop it silently — a
			// prefetcher must never widen the protection domain.
			return
		}
		res, err := n.caches.Install(socket, line)
		if err != nil {
			panic(fmt.Sprintf("cluster: node %d prefetch install: %v", n.id, err))
		}
		if res.VictimDirty {
			n.writeback(t, res.Victim)
		}
	}
	return op
}

func (n *Node) putPfOp(op *pfOp) {
	n.pfOps = append(n.pfOps, op)
}

// maybePrefetch feeds the demand miss to the stream detector and issues
// RMC reads for whatever it asks, installing the lines into the issuing
// core's cache when the fills return. Prefetch traffic uses the ordinary
// mesh path and RMC queues; only the core's outstanding-request window
// does not apply (the prefetcher is the RMC's engine, not the core's).
func (n *Node) maybePrefetch(now sim.Time, core int, line addr.Phys) {
	for _, pf := range n.pf.Observe(core, line) {
		if uint64(pf.Local())+n.caches.LineSize() > n.p.MemPerNode {
			n.pf.Completed(pf) // past the end of the donor's memory
			continue
		}
		if n.caches.Present(pf) {
			n.pf.Completed(pf) // already cached: nothing to fetch
			continue
		}
		n.tagseq++
		req := ht.Packet{Cmd: ht.CmdRdSized, SrcTag: n.tagseq, Addr: pf, Count: int(n.caches.LineSize())}
		op := n.getPfOp()
		op.line, op.socket = pf, n.socketOf(core)
		if err := n.rmc.Request(now, req, false, op.doneFn); err != nil {
			n.putPfOp(op)
			n.pf.Completed(pf)
			continue
		}
		n.Prefetches++
	}
}

// linePacket builds a line-granular fill/write packet. Timed-path writes
// are functionally idempotent — the cpu layer models instruction
// streams, not payloads; real data movement uses ReadBytes/WriteBytes in
// the core package — so the write packet carries no payload slice:
// ht.FlitBytes prices Count bytes on the wire for a payload-less sized
// write, and the serving RMC skips the (no-op) functional store write.
// Reading the owner's current contents here would touch another shard's
// store mid-window.
func (n *Node) linePacket(line addr.Phys, write bool) (ht.Packet, error) {
	size := int(n.caches.LineSize())
	n.tagseq++
	pkt := ht.Packet{SrcUnit: 0, SrcTag: n.tagseq, Addr: line, Count: size}
	if write {
		pkt.Cmd = ht.CmdWrSized
	} else {
		pkt.Cmd = ht.CmdRdSized
	}
	return pkt, nil
}

// writeback pushes a dirty victim line to its owner: local lines cost a
// controller write; remote lines a posted RMC write that consumes fabric
// and RMC capacity but completes asynchronously (no thread waits on it).
func (n *Node) writeback(now sim.Time, victim addr.Phys) {
	line := victim.Line(n.caches.LineSize())
	if !n.IsRemote(line) {
		if _, err := n.bank.Access(now, line, true); err != nil {
			panic(fmt.Sprintf("cluster: node %d victim writeback: %v", n.id, err))
		}
		return
	}
	pkt, err := n.linePacket(line, true)
	if err != nil {
		panic(fmt.Sprintf("cluster: node %d victim packet: %v", n.id, err))
	}
	pkt.Posted = true
	// A posted write has no requester waiting; an unreachable owner is
	// the one place where writeback data can genuinely be lost.
	if err := n.rmc.Request(now, pkt, false, postedDone); err != nil {
		panic(fmt.Sprintf("cluster: node %d victim RMC write: %v", n.id, err))
	}
}

// postedDone is the shared completion for posted writebacks: nothing
// waits on them, and a top-level func keeps the call allocation-free.
func postedDone(sim.Time, ht.Packet, error) {}

var _ cpu.MemorySystem = (*Node)(nil)
