package cluster

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/rmc"
	"repro/internal/sim"
)

// IssueBulk issues one bulk burst from this node. All spans must target
// a single node's memory: spans owned by this node are served directly
// by its memory controllers as a pipelined run of line accesses; remote
// spans leave through the RMC as one doorbell-batched burst
// (rmc.RequestBulk). A copy whose source is local decomposes here —
// into controller traffic when the destination is also local, or into
// a write burst carrying the gathered bytes when it is remote.
//
// Bulk transfers bypass the coherent caches on both ends: they are DMA,
// not loads and stores. A caller that may hold dirty cached copies of
// the source (or stale copies of the destination) flushes first — the
// same phase discipline the prototype already imposes between writers
// and remote readers (FlushCaches).
func (n *Node) IssueBulk(now sim.Time, req rmc.BulkRequest) error {
	if req.Done == nil {
		return fmt.Errorf("cluster: node %d: bulk request needs a Done", n.id)
	}
	if len(req.Spans) == 0 {
		return fmt.Errorf("cluster: node %d: bulk request carries no spans", n.id)
	}
	if req.Spans[0].Start.Canonical(n.id).IsLocal() {
		return n.issueBulkLocal(now, req)
	}
	op := n.getBulkIssue()
	op.done = req.Done
	req.Done = op.remoteFn
	lines := 0
	for _, s := range req.Spans {
		lines += s.Lines
	}
	if err := n.rmc.RequestBulk(now, req); err != nil {
		op.done = nil
		n.putBulkIssue(op)
		return err
	}
	n.RemoteOps += uint64(lines)
	return nil
}

// issueBulkLocal serves a burst whose spans this node owns. Reads and
// writes run the span's lines through the memory controllers and
// complete when the last line's bank slot drains; the functional bytes
// move through the store in the same call.
func (n *Node) issueBulkLocal(now sim.Time, req rmc.BulkRequest) error {
	lines := 0
	for _, s := range req.Spans {
		local := s.Start.Canonical(n.id)
		if !local.IsLocal() {
			return fmt.Errorf("cluster: node %d: bulk spans straddle nodes (%v is remote)", n.id, s.Start)
		}
		if s.Lines < 1 {
			return fmt.Errorf("cluster: node %d: bulk span at %v has %d lines", n.id, s.Start, s.Lines)
		}
		if uint64(local)%params.CacheLineSize != 0 {
			return fmt.Errorf("cluster: node %d: bulk span start %v is not line-aligned", n.id, s.Start)
		}
		lines += s.Lines
	}
	total := lines * params.CacheLineSize

	switch req.Kind {
	case rmc.BulkRead:
		if req.Data != nil && len(req.Data) < total {
			return fmt.Errorf("cluster: node %d: bulk read sink holds %d bytes, burst carries %d", n.id, len(req.Data), total)
		}
		memDone, err := n.bulkBankRun(now, req.Spans, false)
		if err != nil {
			return err
		}
		if req.Data != nil {
			if err := n.bulkStoreRead(req.Spans, req.Data); err != nil {
				return err
			}
		}
		n.LocalOps += uint64(lines)
		n.finishBulkLocal(memDone, req.Done)
		return nil

	case rmc.BulkWrite:
		if len(req.Data) != total {
			return fmt.Errorf("cluster: node %d: bulk write payload holds %d bytes, spans cover %d", n.id, len(req.Data), total)
		}
		memDone, err := n.bulkBankRun(now, req.Spans, true)
		if err != nil {
			return err
		}
		pos := 0
		for _, s := range req.Spans {
			nb := s.Lines * params.CacheLineSize
			if err := n.store.WriteAt(s.Start.Canonical(n.id), req.Data[pos:pos+nb]); err != nil {
				return err
			}
			pos += nb
		}
		n.LocalOps += uint64(lines)
		n.finishBulkLocal(memDone, req.Done)
		return nil

	case rmc.BulkCopy:
		if req.CopyDst == 0 || !req.CopyDst.Valid() {
			return fmt.Errorf("cluster: node %d: bulk copy needs a valid destination", n.id)
		}
		// Gather the source through the controllers.
		readDone, err := n.bulkBankRun(now, req.Spans, false)
		if err != nil {
			return err
		}
		payload := make([]byte, total)
		if err := n.bulkStoreRead(req.Spans, payload); err != nil {
			return err
		}
		dst := req.CopyDst.Canonical(n.id)
		if dst.IsLocal() {
			// Local-to-local: scatter back through the controllers once
			// the reads drain, then land the bytes.
			if uint64(dst)%params.CacheLineSize != 0 {
				return fmt.Errorf("cluster: node %d: bulk copy destination %v is not line-aligned", n.id, req.CopyDst)
			}
			memDone := readDone
			for i := 0; i < lines; i++ {
				t, err := n.bank.Access(readDone, dst+addr.Phys(i*params.CacheLineSize), true)
				if err != nil {
					return err
				}
				if t > memDone {
					memDone = t
				}
			}
			if err := n.store.WriteAt(dst, payload); err != nil {
				return err
			}
			n.LocalOps += uint64(2 * lines)
			n.finishBulkLocal(memDone, req.Done)
			return nil
		}
		// Local source, remote destination: the gathered bytes leave as
		// one write burst when the local reads drain. The payload buffer
		// transfers to the burst (never recycled — write payloads are
		// caller-owned by contract).
		n.LocalOps += uint64(lines)
		done := req.Done
		wr := rmc.BulkRequest{
			Kind:    rmc.BulkWrite,
			Spans:   []rmc.Span{{Start: req.CopyDst, Lines: lines}},
			Data:    payload,
			Express: req.Express,
			Done:    done,
		}
		n.eng.At(readDone, func() {
			if err := n.IssueBulk(readDone, wr); err != nil {
				done(readDone, err)
			}
		})
		return nil
	}
	return fmt.Errorf("cluster: node %d: unknown bulk kind %d", n.id, int(req.Kind))
}

// bulkBankRun drives every line of the spans through the memory
// controllers starting at now and returns when the last slot drains.
// Bank occupancy serializes the lines — the same pipelining the serving
// RMC sees for a remote burst.
func (n *Node) bulkBankRun(now sim.Time, spans []rmc.Span, write bool) (sim.Time, error) {
	memDone := now
	for _, s := range spans {
		local := s.Start.Canonical(n.id)
		for i := 0; i < s.Lines; i++ {
			t, err := n.bank.Access(now, local+addr.Phys(i*params.CacheLineSize), write)
			if err != nil {
				return 0, fmt.Errorf("cluster: node %d: bulk line %v: %w", n.id, s.Start, err)
			}
			if t > memDone {
				memDone = t
			}
		}
	}
	return memDone, nil
}

// bulkStoreRead gathers the spans' bytes into dst, span order.
func (n *Node) bulkStoreRead(spans []rmc.Span, dst []byte) error {
	pos := 0
	for _, s := range spans {
		nb := s.Lines * params.CacheLineSize
		if err := n.store.ReadAt(s.Start.Canonical(n.id), dst[pos:pos+nb]); err != nil {
			return err
		}
		pos += nb
	}
	return nil
}

// finishBulkLocal schedules the burst's completion without allocating.
func (n *Node) finishBulkLocal(at sim.Time, done func(sim.Time, error)) {
	op := n.getBulkIssue()
	op.done = done
	n.eng.At(at, op.localFn)
}

// bulkIssue carries one node-level burst from issue to completion, the
// bulk twin of issueOp: allocated once, callbacks prebound, recycled
// unconditionally (the RMC invokes Done exactly once even under
// faults).
type bulkIssue struct {
	n    *Node
	done func(sim.Time, error)

	localFn  func()
	remoteFn func(sim.Time, error)
}

func (n *Node) getBulkIssue() *bulkIssue {
	if l := len(n.bulkIssues); l > 0 {
		op := n.bulkIssues[l-1]
		n.bulkIssues = n.bulkIssues[:l-1]
		return op
	}
	op := &bulkIssue{n: n}
	op.localFn = func() {
		done := op.done
		op.n.putBulkIssue(op)
		done(op.n.eng.Now(), nil)
	}
	op.remoteFn = func(t sim.Time, err error) {
		if err != nil {
			op.n.AbandonedOps++
		}
		done := op.done
		op.n.putBulkIssue(op)
		done(t, err)
	}
	return op
}

func (n *Node) putBulkIssue(op *bulkIssue) {
	op.done = nil
	n.bulkIssues = append(n.bulkIssues, op)
}
