package sim

import (
	"testing"

	"repro/internal/metrics"
)

func TestEngineMetrics(t *testing.T) {
	eng := New()
	for i := 0; i < 5; i++ {
		eng.At(Time(i)*1000, func() {})
	}
	eng.Run()
	snap := eng.Metrics().Snapshot()
	if got := snap.Total(metrics.FamSimEvents); got != 5 {
		t.Errorf("%s = %v, want 5", metrics.FamSimEvents, got)
	}
	if got := snap.Total(metrics.FamSimPending); got != 0 {
		t.Errorf("%s = %v, want 0 after Run", metrics.FamSimPending, got)
	}
	f := snap.Family(metrics.FamSimDelay)
	if f == nil || len(f.Samples) == 0 {
		t.Fatalf("%s missing", metrics.FamSimDelay)
	}
	if f.Samples[0].Count != 5 {
		t.Errorf("delay histogram count = %d, want 5", f.Samples[0].Count)
	}
	if got, ok := snap.Value(metrics.FamSimNow, nil); !ok || got != 4000.0/1e12 {
		t.Errorf("%s = %v (ok=%v), want 4e-9", metrics.FamSimNow, got, ok)
	}
}
