package sim

import "testing"

// The zero-allocation contract of the engine hot path: schedule + run
// and schedule + cancel + run must not allocate in steady state, so the
// arena/free-list win cannot silently rot. The closures under test are
// hoisted so only the engine's own cost is measured (callers that build
// a fresh capturing closure per event pay for that closure themselves;
// the hot paths in rmc/cluster/cpu pool theirs).
func TestScheduleRunSteadyStateAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	// Warm the arena and heap past their steady-state size.
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		e.After(10, fn)
		e.After(20, fn)
		e.After(5, fn)
		e.Run()
	}); avg != 0 {
		t.Errorf("schedule/run steady state allocates %.2f/op, want 0", avg)
	}
}

func TestScheduleCancelSteadyStateAllocs(t *testing.T) {
	e := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Time(i), fn)
	}
	e.Run()
	if avg := testing.AllocsPerRun(1000, func() {
		h := e.After(10, fn)
		e.After(20, fn)
		h.Cancel()
		h.Cancel() // double-cancel stays free too
		e.Run()
	}); avg != 0 {
		t.Errorf("schedule/cancel/run steady state allocates %.2f/op, want 0", avg)
	}
}

// Pending must be O(1) bookkeeping, not a queue scan: a canceled event
// leaves the count immediately, double-cancel does not decrement twice,
// and firing drains it to zero.
func TestPendingCounter(t *testing.T) {
	e := New()
	fn := func() {}
	h1 := e.After(10, fn)
	h2 := e.After(20, fn)
	e.After(30, fn)
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d, want 3", got)
	}
	h1.Cancel()
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after cancel = %d, want 2", got)
	}
	h1.Cancel() // double-cancel must not decrement again
	if got := e.Pending(); got != 2 {
		t.Fatalf("Pending after double-cancel = %d, want 2", got)
	}
	h2.Cancel()
	h2.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending after second handle canceled twice = %d, want 1", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after run = %d, want 0", got)
	}
	// Canceling a long-fired handle is a no-op on the fresh queue.
	h3 := e.After(10, fn)
	h1.Cancel()
	h2.Cancel()
	if got := e.Pending(); got != 1 {
		t.Fatalf("stale cancels touched the counter: Pending = %d, want 1", got)
	}
	h3.Cancel()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending = %d, want 0", got)
	}
}
