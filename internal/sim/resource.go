package sim

import "fmt"

// Resource models a FIFO single server with an optional bounded queue:
// one request is served at a time for its occupancy; arrivals while busy
// wait in arrival order. Links, memory controllers, and RMCs are
// Resources. The model is "timeline" based: instead of scheduling
// start-of-service events, Acquire computes when service would complete
// and the caller schedules its continuation there. Because the engine is
// single-threaded and events execute in time order, this is equivalent to
// an explicit server process but far cheaper.
type Resource struct {
	name string
	eng  *Engine

	// nextFree is the earliest time the server can begin a new service.
	nextFree Time

	// queueDepth bounds how many requests may be waiting (excluding the
	// one in service). 0 means unbounded.
	queueDepth int

	// waiting tracks when each queued/in-service request releases its
	// queue slot, so bounded-queue admission can be checked. A slot is
	// released when the server has actually finished the request:
	// Penalize pushes pending release times back along with nextFree,
	// so the queue stays full while the server chews NACK waste.
	// Entries with release <= now are pruned lazily.
	waiting []Time

	// Served counts accepted services; Rejected counts bounced arrivals.
	Served, Rejected uint64
	// Busy accumulates total service occupancy, for utilization reports.
	Busy Time
}

// NewResource creates a FIFO resource. queueDepth 0 means unbounded.
func NewResource(eng *Engine, name string, queueDepth int) *Resource {
	if eng == nil {
		panic("sim: NewResource with nil engine")
	}
	return &Resource{name: name, eng: eng, queueDepth: queueDepth}
}

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

func (r *Resource) prune(now Time) {
	i := 0
	for i < len(r.waiting) && r.waiting[i] <= now {
		i++
	}
	if i > 0 {
		r.waiting = append(r.waiting[:0], r.waiting[i:]...)
	}
}

// Acquire requests service of the given occupancy starting no earlier
// than now. It returns the completion time and true, or 0 and false if
// the bounded queue is full (the caller must retry). The caller is
// responsible for scheduling its continuation at the returned time.
func (r *Resource) Acquire(now Time, occupancy Time) (Time, bool) {
	if occupancy < 0 {
		panic(fmt.Sprintf("sim: negative occupancy %d on %s", occupancy, r.name))
	}
	r.prune(now)
	if r.queueDepth > 0 && len(r.waiting) > r.queueDepth {
		r.Rejected++
		return 0, false
	}
	start := now
	if r.nextFree > start {
		start = r.nextFree
	}
	done := start + occupancy
	r.nextFree = done
	r.waiting = append(r.waiting, done)
	r.Served++
	r.Busy += occupancy
	return done, true
}

// Penalize consumes service capacity without a completion (e.g. the cost
// of NACKing a rejected request). It delays all subsequent services and
// holds the queue slots of still-pending requests for the extra time:
// the backlogged server has not finished them, so they must keep
// counting against the bounded queue or a NACK storm would admit more
// than queueDepth outstanding requests. The completion times already
// returned to earlier Acquire callers are unchanged — the timeline
// model fixes a request's completion at admission, a deliberate
// approximation.
func (r *Resource) Penalize(now Time, cost Time) {
	if cost <= 0 {
		return
	}
	if r.nextFree < now {
		r.nextFree = now
	}
	r.nextFree += cost
	r.Busy += cost
	for i, w := range r.waiting {
		if w > now {
			r.waiting[i] = w + cost
		}
	}
}

// QueueLen returns the number of requests queued or in service at now.
func (r *Resource) QueueLen(now Time) int {
	r.prune(now)
	return len(r.waiting)
}

// NextFree returns the earliest time a new service could begin.
func (r *Resource) NextFree() Time { return r.nextFree }

// Utilization returns Busy time as a fraction of the elapsed time.
func (r *Resource) Utilization(elapsed Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(r.Busy) / float64(elapsed)
}
