// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is single-threaded on purpose: events execute in strict
// (time, sequence) order, so a simulation with a fixed seed always
// produces bit-identical results, which the experiment harness relies on.
// Model components schedule closures; shared hardware (links, RMCs,
// memory controllers) is modeled with Resource, a FIFO single server
// with an optional bounded queue.
package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/metrics"
)

// Time is simulation time in picoseconds.
type Time = int64

// Event is a scheduled closure.
type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	fn   func()
	idx  int
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with New.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// Processed counts executed events, for instrumentation.
	Processed uint64

	met   *metrics.Registry
	delay *metrics.Histogram
}

// New returns an empty engine at time zero.
func New() *Engine {
	e := &Engine{met: metrics.NewRegistry()}
	e.met.CounterFunc(metrics.FamSimEvents, "events executed by the engine", nil,
		func() uint64 { return e.Processed })
	e.met.GaugeFunc(metrics.FamSimPending, "live events still queued", nil,
		func() float64 { return float64(e.Pending()) })
	e.met.GaugeFunc(metrics.FamSimNow, "current simulated time", nil,
		func() float64 { return float64(e.now) / 1e12 })
	e.delay = e.met.Histogram(metrics.FamSimDelay, "scheduling horizon: how far ahead events are placed", nil,
		metrics.TimeBuckets())
	return e
}

// Metrics returns the registry every substrate sharing this engine
// reports into. One registry per simulated system keeps snapshots
// deterministic under the parallel harness.
func (e *Engine) Metrics() *metrics.Registry { return e.met }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Handle identifies a scheduled event so it can be canceled.
type Handle struct{ ev *event }

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op.
func (h Handle) Cancel() {
	if h.ev != nil {
		h.ev.dead = true
	}
}

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it would silently corrupt causality in a model.
func (e *Engine) At(at Time, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.delay.Observe(at - e.now)
	heap.Push(&e.queue, ev)
	return Handle{ev}
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline (or until the
// queue drains / Stop). When the queue drains or only later events
// remain, the clock advances to the deadline; when Stop ends the loop
// early, the clock stays at the stopping event's time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			e.now = deadline
			return e.now
		}
		ev := heap.Pop(&e.queue).(*event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.Processed++
		ev.fn()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}
