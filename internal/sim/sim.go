// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is single-threaded on purpose: events execute in strict
// (time, sequence) order, so a simulation with a fixed seed always
// produces bit-identical results, which the experiment harness relies on.
// Model components schedule closures; shared hardware (links, RMCs,
// memory controllers) is modeled with Resource, a FIFO single server
// with an optional bounded queue.
//
// The hot path is allocation-free in steady state: events are values in
// an index-based 4-ary min-heap backed by a free-list arena of event
// slots, and Handles carry a generation counter so Cancel stays O(1)
// and safe across slot reuse (see DESIGN.md §11).
package sim

import (
	"fmt"

	"repro/internal/metrics"
)

// Time is simulation time in picoseconds.
type Time = int64

// entry is one scheduled event's position in the priority queue: its
// firing time, the global FIFO tie-breaker, and the arena slot holding
// its closure. Entries are values — sifting moves 24 bytes, never a
// pointer the GC has to trace.
type entry struct {
	at   Time
	seq  uint64
	slot int32
}

// slot is one arena cell. While scheduled it holds the event's closure;
// canceled slots keep their (nil'd) cell until the queue entry pops, so
// a slot is never reused while an entry still points at it. gen bumps
// on every release, invalidating stale Handles.
type slot struct {
	fn   func()
	gen  uint32
	live bool
	next int32 // free-list link, meaningful only when free
}

// Engine is a discrete-event simulation engine. The zero value is not
// usable; create engines with New.
type Engine struct {
	now     Time
	seq     uint64
	queue   []entry
	arena   []slot
	free    int32 // head of the slot free list, -1 when empty
	live    int   // scheduled events not yet fired or canceled
	stopped bool
	// limit is the live bound of the window runWindow is executing.
	// The windowed send path lowers it mid-window (ClampWindow) when
	// the shard records a transmission whose own-shard delivery bound
	// lands before the planned limit — the scheduler can then hand out
	// limits that assume "no send yet", and the first actual send pulls
	// the window back to what it provably may run to.
	limit Time
	// Processed counts executed events, for instrumentation.
	Processed uint64

	met   *metrics.Registry
	delay *metrics.Histogram
}

// New returns an empty engine at time zero.
func New() *Engine {
	e := &Engine{free: -1, met: metrics.NewRegistry()}
	e.met.CounterFunc(metrics.FamSimEvents, "events executed by the engine", nil,
		func() uint64 { return e.Processed })
	e.met.GaugeFunc(metrics.FamSimPending, "live events still queued", nil,
		func() float64 { return float64(e.Pending()) })
	e.met.GaugeFunc(metrics.FamSimNow, "current simulated time", nil,
		func() float64 { return float64(e.now) / 1e12 })
	e.delay = e.met.Histogram(metrics.FamSimDelay, "scheduling horizon: how far ahead events are placed", nil,
		metrics.TimeBuckets())
	return e
}

// newBare returns an engine that reports into a shared registry but does
// not register the engine-level families: a ShardSet owns those and
// presents the per-shard values aggregated, so a sharded system's
// snapshot carries the same sim_* families as a single-engine one.
func newBare(met *metrics.Registry) *Engine {
	return &Engine{free: -1, met: met, delay: metrics.NewHistogram(metrics.TimeBuckets())}
}

// Metrics returns the registry every substrate sharing this engine
// reports into. One registry per simulated system keeps snapshots
// deterministic under the parallel harness.
func (e *Engine) Metrics() *metrics.Registry { return e.met }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Handle identifies a scheduled event so it can be canceled. The zero
// Handle is valid and cancels nothing.
type Handle struct {
	eng  *Engine
	slot int32
	gen  uint32
}

// Cancel prevents the event from firing. Canceling an already-fired,
// already-canceled, or zero Handle is a no-op: the generation check
// makes a stale Handle harmless even after its slot has been reused.
func (h Handle) Cancel() {
	if h.eng == nil {
		return
	}
	s := &h.eng.arena[h.slot]
	if s.gen != h.gen || !s.live {
		return
	}
	s.live = false
	s.fn = nil
	h.eng.live--
}

// alloc takes a slot from the free list, growing the arena when empty.
func (e *Engine) alloc(fn func()) int32 {
	if i := e.free; i >= 0 {
		s := &e.arena[i]
		e.free = s.next
		s.fn = fn
		s.live = true
		return i
	}
	e.arena = append(e.arena, slot{fn: fn, live: true})
	return int32(len(e.arena) - 1)
}

// release returns a slot to the free list, bumping its generation so
// outstanding Handles to the old occupant go stale.
func (e *Engine) release(i int32) {
	s := &e.arena[i]
	s.fn = nil
	s.live = false
	s.gen++
	s.next = e.free
	e.free = i
}

// push inserts an entry, sifting up through the 4-ary heap.
func (e *Engine) push(at Time, seq uint64, sl int32) {
	e.queue = append(e.queue, entry{})
	q := e.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if q[p].at < at || (q[p].at == at && q[p].seq < seq) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = entry{at: at, seq: seq, slot: sl}
}

// pop removes and returns the minimum entry, sifting the displaced tail
// down. The 4-ary layout halves tree depth versus binary, and the node's
// children share cache lines — pops dominate the engine's profile.
func (e *Engine) pop() entry {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	moved := q[n]
	e.queue = q[:n]
	if n > 0 {
		q = q[:n]
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			end := c + 4
			if end > n {
				end = n
			}
			m := c
			for j := c + 1; j < end; j++ {
				if q[j].at < q[m].at || (q[j].at == q[m].at && q[j].seq < q[m].seq) {
					m = j
				}
			}
			if q[m].at > moved.at || (q[m].at == moved.at && q[m].seq > moved.seq) {
				break
			}
			q[i] = q[m]
			i = m
		}
		q[i] = moved
	}
	return top
}

// replayBand is OR'd into the heap sequence of every entry scheduled
// through AtFrom. Heap ties at equal time break by sequence, and the
// sequence an event gets depends on when it was scheduled — which, for
// a cross-shard replay, depends on which barrier replayed it. The band
// bit pins that order independent of the barrier schedule: a replayed
// event always fires after every same-time local (At/After) event, and
// replayed events order among themselves by replay-stream position,
// both of which are pure functions of simulated state. Without it, a
// wider window could interleave a replay between two same-time local
// events that a narrower window kept apart, breaking byte-identity
// across shard counts and window policies.
const replayBand = uint64(1) << 63

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics: it would silently corrupt causality in a model.
func (e *Engine) At(at Time, fn func()) Handle {
	return e.schedule(at, at-e.now, 0, fn)
}

// AtFrom schedules fn at the absolute time at, recording the scheduling
// horizon relative to base instead of the engine's clock, and placing
// the event in the replay band (see replayBand). The barrier
// coordinator uses it when placing cross-shard deliveries: the horizon
// it observes (arrival minus send time) is a pure function of simulated
// state, so the delay histogram stays byte-identical at any shard
// count, and the band keeps same-time tie order schedule-invariant.
func (e *Engine) AtFrom(base, at Time, fn func()) Handle {
	return e.schedule(at, at-base, replayBand, fn)
}

func (e *Engine) schedule(at, horizon Time, band uint64, fn func()) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %d before now %d", at, e.now))
	}
	e.delay.Observe(horizon)
	sl := e.alloc(fn)
	e.push(at, band|e.seq, sl)
	e.seq++
	e.live++
	return Handle{eng: e, slot: sl, gen: e.arena[sl].gen}
}

// After schedules fn to run d picoseconds from now.
func (e *Engine) After(d Time, fn func()) Handle {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event.
func (e *Engine) Stop() { e.stopped = true }

// fire pops the minimum entry and executes it if still live. The slot is
// released before the closure runs, so an event may reschedule into its
// own slot; the generation bump keeps its old Handle stale.
func (e *Engine) fire() {
	ev := e.pop()
	s := &e.arena[ev.slot]
	fn := s.fn
	wasLive := s.live
	e.release(ev.slot)
	if !wasLive {
		return
	}
	e.live--
	e.now = ev.at
	e.Processed++
	fn()
}

// Run executes events until the queue drains or Stop is called. It
// returns the final simulation time.
func (e *Engine) Run() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.fire()
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline (or until the
// queue drains / Stop). When the queue drains or only later events
// remain, the clock advances to the deadline; when Stop ends the loop
// early, the clock stays at the stopping event's time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			e.now = deadline
			return e.now
		}
		e.fire()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Pending returns the number of live events still queued. It is O(1):
// the engine maintains the count on schedule, fire, and cancel (the
// metrics layer samples it on every snapshot).
func (e *Engine) Pending() int { return e.live }

// nextTime returns the firing time of the earliest queued entry (which
// may be a canceled slot: popping it is a cheap no-op, so the window
// coordinator does not need to distinguish).
func (e *Engine) nextTime() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}

// runWindow executes every event with a firing time strictly below
// limit. It is the per-shard half of the conservative PDES loop: events
// at or past the window limit may still be affected by cross-shard
// traffic merged at the barrier, so they stay queued.
func (e *Engine) runWindow(limit Time) {
	e.limit = limit
	for len(e.queue) > 0 && e.queue[0].at < e.limit {
		e.fire()
	}
}

// ClampWindow lowers the current window's limit. Only the goroutine
// executing this engine's window may call it — in practice the windowed
// exchange, from inside a sending event — so the write needs no
// synchronization. Raising the limit is not possible: the scheduler's
// published bound stays the ceiling.
func (e *Engine) ClampWindow(t Time) {
	if t < e.limit {
		e.limit = t
	}
}
