package sim

import (
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	if end := e.Run(); end != 30 {
		t.Errorf("final time = %d, want 30", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	e := New()
	var fired []Time
	e.After(10, func() {
		fired = append(fired, e.Now())
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 15 {
		t.Errorf("fired = %v, want [10 15]", fired)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestNegativeDelayPanics(t *testing.T) {
	e := New()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.At(10, func() { fired = true })
	h.Cancel()
	h.Cancel() // double-cancel is a no-op
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending = %d after run", got)
	}
}

func TestStop(t *testing.T) {
	e := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Errorf("executed %d events before stop, want 3", count)
	}
	if e.Pending() != 7 {
		t.Errorf("Pending = %d, want 7", e.Pending())
	}
	e.Run() // resume
	if count != 10 {
		t.Errorf("after resume executed %d, want 10", count)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	if now := e.RunUntil(12); now != 12 {
		t.Errorf("RunUntil returned %d, want 12", now)
	}
	if len(fired) != 2 {
		t.Errorf("fired %v, want events at 5 and 10 only", fired)
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("after Run fired %v, want all 4", fired)
	}
}

func TestRunUntilEmptyAdvancesClock(t *testing.T) {
	e := New()
	if now := e.RunUntil(100); now != 100 {
		t.Errorf("RunUntil on empty queue = %d, want 100", now)
	}
}

func TestResourceFIFO(t *testing.T) {
	e := New()
	r := NewResource(e, "mc", 0)
	// Three back-to-back acquisitions at t=0 with occupancy 10 complete at
	// 10, 20, 30: FIFO single server.
	for i, want := range []Time{10, 20, 30} {
		done, ok := r.Acquire(0, 10)
		if !ok || done != want {
			t.Errorf("acquire %d: done=%d ok=%v, want %d", i, done, ok, want)
		}
	}
	if r.Served != 3 {
		t.Errorf("Served = %d, want 3", r.Served)
	}
	if r.Busy != 30 {
		t.Errorf("Busy = %d, want 30", r.Busy)
	}
}

func TestResourceIdleGap(t *testing.T) {
	e := New()
	r := NewResource(e, "mc", 0)
	r.Acquire(0, 10)
	// Arrival after the server went idle starts immediately.
	done, ok := r.Acquire(100, 10)
	if !ok || done != 110 {
		t.Errorf("post-idle acquire done=%d, want 110", done)
	}
}

func TestResourceBoundedQueue(t *testing.T) {
	e := New()
	r := NewResource(e, "rmc", 2)
	// One in service + up to 2 waiting admitted; honours depth+1 in flight.
	var admitted int
	for i := 0; i < 5; i++ {
		if _, ok := r.Acquire(0, 100); ok {
			admitted++
		}
	}
	if admitted != 3 {
		t.Errorf("admitted %d requests, want 3 (1 in service + 2 queued)", admitted)
	}
	if r.Rejected != 2 {
		t.Errorf("Rejected = %d, want 2", r.Rejected)
	}
	// After the backlog drains, admission resumes.
	if _, ok := r.Acquire(301, 100); !ok {
		t.Error("acquire after drain rejected")
	}
}

func TestResourcePenalize(t *testing.T) {
	e := New()
	r := NewResource(e, "rmc", 0)
	r.Penalize(50, 25)
	done, ok := r.Acquire(50, 10)
	if !ok || done != 85 {
		t.Errorf("acquire after penalty done=%d, want 85", done)
	}
	r.Penalize(1000, 0) // zero penalty is a no-op
	if r.NextFree() != 85 {
		t.Errorf("NextFree moved by zero penalty: %d", r.NextFree())
	}
}

func TestResourceUtilization(t *testing.T) {
	e := New()
	r := NewResource(e, "mc", 0)
	r.Acquire(0, 50)
	if u := r.Utilization(100); u != 0.5 {
		t.Errorf("Utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Errorf("Utilization(0) = %v, want 0", u)
	}
}

func TestResourceCompletionMonotoneProperty(t *testing.T) {
	// Completions of a FIFO resource are non-decreasing regardless of the
	// arrival pattern, and never precede arrival+occupancy.
	f := func(arrivals []uint16, occ uint8) bool {
		e := New()
		r := NewResource(e, "x", 0)
		occupancy := Time(occ%100) + 1
		now, last := Time(0), Time(0)
		for _, a := range arrivals {
			now += Time(a % 1000)
			done, ok := r.Acquire(now, occupancy)
			if !ok {
				return false
			}
			if done < last || done < now+occupancy {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := New()
		var log []Time
		var step func(i int)
		step = func(i int) {
			log = append(log, e.Now())
			if i < 50 {
				e.After(Time(i%7+1), func() { step(i + 1) })
			}
		}
		e.At(0, func() { step(0) })
		e.Run()
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunUntilStopKeepsClock(t *testing.T) {
	e := New()
	e.At(5, func() { e.Stop() })
	e.At(7, func() {})
	// Stop ends the loop at t=5; the clock must not jump to the deadline
	// (the documented min(deadline, stop time) contract).
	if now := e.RunUntil(100); now != 5 {
		t.Errorf("RunUntil after Stop = %d, want 5", now)
	}
	if e.Now() != 5 {
		t.Errorf("Now after stopped RunUntil = %d, want 5", e.Now())
	}
	// The remaining event is still pending; resuming runs it and then
	// advances to the deadline as usual.
	if now := e.RunUntil(100); now != 100 {
		t.Errorf("resumed RunUntil = %d, want 100", now)
	}
}

func TestResourcePenalizeHoldsQueueSlots(t *testing.T) {
	e := New()
	r := NewResource(e, "rmc", 1)
	// Fill the queue: one in service (completes at 10), one waiting
	// (completes at 20).
	if _, ok := r.Acquire(0, 10); !ok {
		t.Fatal("first acquire rejected")
	}
	if _, ok := r.Acquire(0, 10); !ok {
		t.Fatal("second acquire rejected")
	}
	if _, ok := r.Acquire(0, 10); ok {
		t.Fatal("third acquire admitted into a full queue")
	}
	// NACK processing costs the server 15; the backlog now drains at 35,
	// so the queued requests hold their slots past their original
	// completion times.
	r.Penalize(0, 15)
	if n := r.QueueLen(21); n != 2 {
		t.Errorf("QueueLen(21) = %d, want 2 (server backlogged until 35)", n)
	}
	if _, ok := r.Acquire(21, 10); ok {
		t.Error("admitted a request while the penalized backlog held the queue full")
	}
	// Once the penalized backlog drains, slots free and admission resumes.
	if n := r.QueueLen(35); n != 0 {
		t.Errorf("QueueLen(35) = %d, want 0", n)
	}
	done, ok := r.Acquire(36, 10)
	if !ok || done != 46 {
		t.Errorf("acquire after drain: done=%d ok=%v, want 46", done, ok)
	}
}

func TestResourcePenalizeLeavesCompletedAlone(t *testing.T) {
	e := New()
	r := NewResource(e, "rmc", 2)
	r.Acquire(0, 10) // completes at 10
	// A penalty after the request finished must not resurrect its slot.
	r.Penalize(20, 5)
	if n := r.QueueLen(20); n != 0 {
		t.Errorf("QueueLen(20) = %d, want 0 (completed request resurrected)", n)
	}
	if r.NextFree() != 25 {
		t.Errorf("NextFree = %d, want 25", r.NextFree())
	}
}
