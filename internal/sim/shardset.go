package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/metrics"
)

// ShardSet drives K engines under conservative windowed execution: every
// iteration picks the globally earliest pending event time T, lets each
// shard execute its events in [T, T+window) concurrently, then runs the
// barrier hook on the coordinator with all shards parked. The window is
// the lookahead: as long as no cross-shard interaction can take effect
// sooner than `window` after it is initiated (the minimum inter-shard
// link latency guarantees this for HNC frames), events inside a window
// are causally independent across shards and barrier-merged traffic
// always lands in a later window. See DESIGN §16.
//
// A ShardSet with one engine runs entirely inline — no goroutines, no
// atomics on the event path — so the single-shard configuration keeps
// the exact execution profile of the plain engine.
type ShardSet struct {
	engines []*Engine
	window  Time
	met     *metrics.Registry
	barrier func(limit Time)

	stopReq atomic.Bool

	// Worker release/join machinery (K > 1). The coordinator publishes
	// limit, resets done, then bumps epoch; workers spin on epoch, run
	// their shard's window, and count themselves into done. The atomic
	// epoch/done pairs carry the happens-before edges both ways.
	epoch atomic.Uint32
	done  atomic.Int32
	limit atomic.Int64

	// workers holds one reusable spawn closure per non-coordinator
	// shard, built on first use so repeated Run calls do not allocate
	// (steady-state zero-alloc contract). spawnEpoch passes the epoch a
	// batch of workers should treat as already seen; the go statement's
	// happens-before edge publishes it.
	workers    []func()
	spawnEpoch uint32

	merged *metrics.Histogram // snapshot-time scratch for the delay merge
}

// quitLimit released through the window protocol tells workers to exit.
const quitLimit = math.MinInt64

// WrapEngine adapts a self-registered engine (from New) into a
// single-shard set: same registry, same families, inline execution.
func WrapEngine(e *Engine, window Time) *ShardSet {
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %d", window))
	}
	return &ShardSet{engines: []*Engine{e}, window: window, met: e.met}
}

// NewShardSet builds k bare engines over one fresh shared registry and
// registers aggregated sim_* families matching what a single engine
// self-registers, so snapshots are byte-identical across shard counts.
func NewShardSet(k int, window Time) *ShardSet {
	if k < 1 {
		panic(fmt.Sprintf("sim: shard count %d < 1", k))
	}
	if k == 1 {
		return WrapEngine(New(), window)
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %d", window))
	}
	met := metrics.NewRegistry()
	s := &ShardSet{window: window, met: met, merged: metrics.NewHistogram(metrics.TimeBuckets())}
	for i := 0; i < k; i++ {
		s.engines = append(s.engines, newBare(met))
	}
	met.CounterFunc(metrics.FamSimEvents, "events executed by the engine", nil,
		func() uint64 {
			var n uint64
			for _, e := range s.engines {
				n += e.Processed
			}
			return n
		})
	met.GaugeFunc(metrics.FamSimPending, "live events still queued", nil,
		func() float64 { return float64(s.Pending()) })
	met.GaugeFunc(metrics.FamSimNow, "current simulated time", nil,
		func() float64 { return float64(s.Now()) / 1e12 })
	met.HistogramFunc(metrics.FamSimDelay, "scheduling horizon: how far ahead events are placed", nil,
		metrics.TimeBuckets(), func() *metrics.Histogram {
			s.merged.Reset()
			for _, e := range s.engines {
				s.merged.AddAll(e.delay)
			}
			return s.merged
		})
	return s
}

// Shards returns the number of engines in the set.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i's engine.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Metrics returns the registry shared by every shard.
func (s *ShardSet) Metrics() *metrics.Registry { return s.met }

// Window returns the lookahead window.
func (s *ShardSet) Window() Time { return s.window }

// OnBarrier installs the hook run on the coordinator after each window,
// with every shard parked. The cluster drains the cross-shard exchange
// here; the hook may schedule onto any shard's engine.
func (s *ShardSet) OnBarrier(fn func(limit Time)) { s.barrier = fn }

// Now returns the maximum engine clock across shards: the time of the
// last event executed anywhere, which is what a single engine's Now
// reports after the same run. Call it with the shards parked — between
// Run calls, from the barrier hook, or from a metrics sampler — not
// from inside an executing event, where sibling shards are advancing
// their clocks concurrently.
func (s *ShardSet) Now() Time {
	var t Time
	for _, e := range s.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Pending returns the total live events queued across shards. Like
// Now, call it only with the shards parked.
func (s *ShardSet) Pending() int {
	var n int
	for _, e := range s.engines {
		n += e.live
	}
	return n
}

// Stop makes Run return at the end of the current window. Safe to call
// from an event executing on any shard; the coordinator checks the flag
// after the barrier, so the stop point is deterministic regardless of
// which shard requested it or how far the others had advanced.
func (s *ShardSet) Stop() { s.stopReq.Store(true) }

// Run executes windows until every shard's queue drains or Stop is
// called, and returns the final time. Like Engine.Run it may be called
// again to resume after a Stop.
func (s *ShardSet) Run() Time {
	if len(s.engines) == 1 {
		e := s.engines[0]
		for {
			t, ok := e.nextTime()
			if !ok {
				break
			}
			lim := t + s.window
			e.runWindow(lim)
			if s.barrier != nil {
				s.barrier(lim)
			}
			if s.stopReq.Load() {
				s.stopReq.Store(false)
				break
			}
		}
		return s.Now()
	}
	return s.runParallel()
}

func (s *ShardSet) runParallel() Time {
	k := len(s.engines)
	if s.workers == nil {
		for i := 1; i < k; i++ {
			i := i
			s.workers = append(s.workers, func() { s.work(i, s.spawnEpoch) })
		}
	}
	s.spawnEpoch = s.epoch.Load()
	for _, w := range s.workers {
		go w()
	}
	for {
		var t Time
		ok := false
		for _, e := range s.engines {
			if et, eok := e.nextTime(); eok && (!ok || et < t) {
				t, ok = et, true
			}
		}
		if !ok {
			break
		}
		lim := t + s.window
		s.limit.Store(lim)
		s.done.Store(0)
		s.epoch.Add(1)
		s.engines[0].runWindow(lim) // the coordinator is shard 0's worker
		s.await(k - 1)
		if s.barrier != nil {
			s.barrier(lim)
		}
		if s.stopReq.Load() {
			s.stopReq.Store(false)
			break
		}
	}
	s.limit.Store(quitLimit)
	s.done.Store(0)
	s.epoch.Add(1)
	s.await(k - 1)
	return s.Now()
}

// work is one shard's worker loop: spin until the coordinator opens a
// new window, run it, report done. Windows are microseconds apart, so a
// short spin before yielding wins over channel parking.
func (s *ShardSet) work(i int, seen uint32) {
	spins := 0
	for {
		e := s.epoch.Load()
		if e == seen {
			if spins++; spins > 256 {
				runtime.Gosched()
			}
			continue
		}
		seen = e
		spins = 0
		lim := s.limit.Load()
		if lim == quitLimit {
			s.done.Add(1)
			return
		}
		s.engines[i].runWindow(lim)
		s.done.Add(1)
	}
}

// await spins until n workers have finished the current window.
func (s *ShardSet) await(n int) {
	spins := 0
	for int(s.done.Load()) < n {
		if spins++; spins > 256 {
			runtime.Gosched()
		}
	}
}
