package sim

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"repro/internal/metrics"
)

// WindowPolicy selects how a multi-shard set sizes its lookahead
// windows. The policies trade barrier frequency only: simulated output
// is byte-identical under all of them (DESIGN §16).
type WindowPolicy int

const (
	// PolicyUniform is the PR 9 baseline: every shard runs the same
	// global window [G, G+window) derived from the minimum single-hop
	// bound, and every barrier drains the whole exchange.
	PolicyUniform WindowPolicy = iota
	// PolicyDistance widens shard i's window to G + min_j B[j][i]: the
	// provable minimum delivery bound into i from anywhere, so shards
	// far from every boundary run multi-hop-wide windows.
	PolicyDistance
	// PolicyElide additionally consults each shard's earliest pending
	// work e_j (queued events and held cross-shard intents): shard i may
	// run to min_j (e_j + B[j][i]), fast-forwarding past windows no
	// in-flight frame can touch — an appointment, not a guess.
	PolicyElide
)

// MaxTime is the "no pending work" sentinel of the window scheduler.
const MaxTime = Time(math.MaxInt64)

// ShardSet drives K engines under conservative windowed execution:
// every iteration derives a per-shard window limit no cross-shard
// interaction can beat, lets each shard execute its events below its
// limit concurrently, then runs the barrier hook on the coordinator
// with all shards parked. See DESIGN §16 for the safety argument.
//
// A ShardSet with one engine runs entirely inline — no goroutines, no
// atomics on the event path — so the single-shard configuration keeps
// the exact execution profile of the plain engine.
type ShardSet struct {
	engines []*Engine
	window  Time
	met     *metrics.Registry
	barrier func(horizon Time)

	// Lookahead configuration, installed by the cluster before Run.
	// bounds[j][i] lower-bounds the delivery time of any frame sent by
	// shard j into shard i; nil bounds fall back to the uniform window.
	policy   WindowPolicy
	bounds   [][]Time
	minInto  []Time // min over j != i of bounds[j][i]
	minB     Time   // min over all bounds entries (incl. self rows)
	capOver  Time   // limit cap above G (0 = none; retransmit timeout under a fault plan)
	earliest func(shard int) Time

	// Barriers counts scheduler iterations (one barrier each); Elided
	// counts the iterations whose narrowest planned window was wider
	// than the uniform baseline would have allowed — windows the PR 9
	// cadence would have split into several barriers. Registered as
	// metric families only on multi-shard sets, so single-shard output
	// is untouched.
	Barriers uint64
	Elided   uint64

	stopReq atomic.Bool
	// running is set for the duration of Run; ConfigureLookahead refuses
	// to swap the bound matrix while it is up (see its doc comment).
	running atomic.Bool

	// Worker release/join machinery (K > 1). The coordinator publishes
	// the per-shard limits, resets done, then bumps epoch; workers spin
	// on epoch, run their shard's window, and count themselves into
	// done. The atomic epoch/done pairs carry the happens-before edges
	// both ways; limits and quit ride them as plain slice writes.
	epoch  atomic.Uint32
	done   atomic.Int32
	quit   atomic.Bool
	limits []Time
	ev     []Time // scratch: per-shard earliest pending work e_j
	hv     []Time // scratch: per-shard earliest held cross-shard intent h_j

	// workers holds one reusable spawn closure per non-coordinator
	// shard, built on first use so repeated Run calls do not allocate
	// (steady-state zero-alloc contract). spawnEpoch passes the epoch a
	// batch of workers should treat as already seen; the go statement's
	// happens-before edge publishes it.
	workers    []func()
	spawnEpoch uint32

	merged *metrics.Histogram // snapshot-time scratch for the delay merge
}

// WrapEngine adapts a self-registered engine (from New) into a
// single-shard set: same registry, same families, inline execution.
func WrapEngine(e *Engine, window Time) *ShardSet {
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %d", window))
	}
	return &ShardSet{engines: []*Engine{e}, window: window, met: e.met}
}

// NewShardSet builds k bare engines over one fresh shared registry and
// registers aggregated sim_* families matching what a single engine
// self-registers, so snapshots are byte-identical across shard counts.
// The barrier/elision families exist only here — they are properties of
// the multi-shard schedule, inherently shard-count-dependent, and a
// single-shard run must stay byte-identical to its pre-sharding output.
func NewShardSet(k int, window Time) *ShardSet {
	if k < 1 {
		panic(fmt.Sprintf("sim: shard count %d < 1", k))
	}
	if k == 1 {
		return WrapEngine(New(), window)
	}
	if window <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead window %d", window))
	}
	met := metrics.NewRegistry()
	s := &ShardSet{
		window: window,
		met:    met,
		merged: metrics.NewHistogram(metrics.TimeBuckets()),
		limits: make([]Time, k),
		ev:     make([]Time, k),
		hv:     make([]Time, k),
	}
	for i := 0; i < k; i++ {
		s.engines = append(s.engines, newBare(met))
	}
	met.CounterFunc(metrics.FamSimEvents, "events executed by the engine", nil,
		func() uint64 {
			var n uint64
			for _, e := range s.engines {
				n += e.Processed
			}
			return n
		})
	met.GaugeFunc(metrics.FamSimPending, "live events still queued", nil,
		func() float64 { return float64(s.Pending()) })
	met.GaugeFunc(metrics.FamSimNow, "current simulated time", nil,
		func() float64 { return float64(s.Now()) / 1e12 })
	met.HistogramFunc(metrics.FamSimDelay, "scheduling horizon: how far ahead events are placed", nil,
		metrics.TimeBuckets(), func() *metrics.Histogram {
			s.merged.Reset()
			for _, e := range s.engines {
				s.merged.AddAll(e.delay)
			}
			return s.merged
		})
	met.CounterFunc(metrics.FamShardBarriers, "window barriers run by the sharded engine", nil,
		func() uint64 { return s.Barriers })
	met.CounterFunc(metrics.FamShardElided, "barriers whose window ran wider than the uniform single-hop baseline", nil,
		func() uint64 { return s.Elided })
	return s
}

// Shards returns the number of engines in the set.
func (s *ShardSet) Shards() int { return len(s.engines) }

// Engine returns shard i's engine.
func (s *ShardSet) Engine(i int) *Engine { return s.engines[i] }

// Metrics returns the registry shared by every shard.
func (s *ShardSet) Metrics() *metrics.Registry { return s.met }

// Window returns the uniform lookahead window (the PolicyUniform width
// and the accounting unit of the elision counter).
func (s *ShardSet) Window() Time { return s.window }

// OnBarrier installs the hook run on the coordinator after each window,
// with every shard parked. The cluster drains the cross-shard exchange
// here: horizon is the replay horizon — the hook must replay exactly
// the pending intents with time strictly below it (in canonical order)
// and hold the rest for a later barrier. No future intent can be
// recorded below the horizon, so the replayed prefix extends the
// canonical stream deterministically at any shard count. The hook may
// schedule onto any shard's engine.
func (s *ShardSet) OnBarrier(fn func(horizon Time)) { s.barrier = fn }

// ConfigureLookahead installs the window policy of a multi-shard set.
// bounds[j][i] must lower-bound the delivery time into shard i of any
// frame sent by shard j (mesh.MinDelayMatrix); nil keeps the uniform
// fallback. capOver, when positive, caps every limit at G+capOver: with
// a fault plan armed, drain-time retransmission timers land at least a
// full timeout after the send they re-arm, so no shard may run past the
// earliest possible timer. Calling it again (after an express link
// tightens the matrix) is only allowed with the set parked — before Run
// or between Run calls — and panics mid-run: a send routed over a new,
// faster link inside the current window would be bounded by the tighter
// matrix while the destination shard's limit was planned with the old
// one, so the delivery could land in that shard's past.
func (s *ShardSet) ConfigureLookahead(policy WindowPolicy, bounds [][]Time, capOver Time) {
	if len(s.engines) == 1 {
		return
	}
	if s.running.Load() {
		panic("sim: ConfigureLookahead while Run is in progress; topology changes must wait for the set to park")
	}
	if bounds != nil && len(bounds) != len(s.engines) {
		panic(fmt.Sprintf("sim: %d bound rows for %d shards", len(bounds), len(s.engines)))
	}
	s.policy, s.bounds, s.capOver = policy, bounds, capOver
	s.minInto, s.minB = nil, 0
	if bounds == nil {
		return
	}
	s.minB = MaxTime
	s.minInto = make([]Time, len(s.engines))
	for i := range s.minInto {
		m := MaxTime
		for j := range bounds {
			if bounds[j][i] < s.minB {
				s.minB = bounds[j][i]
			}
			if j != i && bounds[j][i] < m {
				m = bounds[j][i]
			}
		}
		// The self bound bounds[i][i] is deliberately absent from the
		// static limit: a shard's own fresh sends clamp its window the
		// moment they are recorded (Engine.ClampWindow, wired through
		// the exchange), and its already-held sends enter plan through
		// the held-intent term. Until shard i actually sends, nothing it
		// does can deliver into itself, so its window may run as far as
		// the other shards' bounds allow.
		s.minInto[i] = m
	}
}

// SetIntentSource installs the exchange's pending-intent probe: fn(j)
// returns the earliest recorded-but-not-yet-replayed transmission time
// attributable to shard j, or MaxTime. It MUST cover intents recorded
// in the window that just ran, not only those held from earlier drains:
// the probe is read at the barrier, before the hook merges fresh
// intents, and the replay horizon's cascade bound is only sound over
// every pending intent. The elision policy treats the probe as pending
// work (a held intent is an appointment: its delivery lands at or after
// t + B[j][i]), and the replay horizon uses the global minimum to keep
// the canonical stream prefix-closed.
func (s *ShardSet) SetIntentSource(fn func(shard int) Time) { s.earliest = fn }

// Now returns the maximum engine clock across shards: the time of the
// last event executed anywhere, which is what a single engine's Now
// reports after the same run. Call it with the shards parked — between
// Run calls, from the barrier hook, or from a metrics sampler — not
// from inside an executing event, where sibling shards are advancing
// their clocks concurrently.
func (s *ShardSet) Now() Time {
	var t Time
	for _, e := range s.engines {
		if e.now > t {
			t = e.now
		}
	}
	return t
}

// Pending returns the total live events queued across shards. Like
// Now, call it only with the shards parked.
func (s *ShardSet) Pending() int {
	var n int
	for _, e := range s.engines {
		n += e.live
	}
	return n
}

// Stop makes Run return at the end of the current window. Safe to call
// from an event executing on any shard; the coordinator checks the flag
// after the barrier.
func (s *ShardSet) Stop() { s.stopReq.Store(true) }

// satAdd adds a bound to a time without overflowing the sentinel.
func satAdd(t, d Time) Time {
	if t >= MaxTime-d {
		return MaxTime
	}
	return t + d
}

// Run executes windows until every shard's queue drains or Stop is
// called, and returns the final time. Like Engine.Run it may be called
// again to resume after a Stop.
func (s *ShardSet) Run() Time {
	s.running.Store(true)
	defer s.running.Store(false)
	if len(s.engines) == 1 {
		e := s.engines[0]
		for {
			t, ok := e.nextTime()
			if !ok {
				break
			}
			e.runWindow(t + s.window)
			if s.barrier != nil {
				s.barrier(MaxTime)
			}
			if s.stopReq.Load() {
				s.stopReq.Store(false)
				break
			}
		}
		return s.Now()
	}
	return s.runParallel()
}

// plan computes this iteration's per-shard limits into s.limits and
// returns G, the globally earliest pending work (MaxTime when idle).
//
// Safety: shard i's planned limit never exceeds e_j + B[j][i] for any
// other shard j, nor h_i + B[i][i] for its own held intents, so every
// frame another shard can send — and every frame already held — arrives
// at or after the limit of the shard it lands in. The one source the
// static plan does not cover, a fresh send by shard i into itself, is
// covered dynamically: recording the send clamps i's running window to
// its time plus B[i][i] (Engine.ClampWindow). Deliveries placed at the
// barrier therefore always land in the destination shard's future, and
// the canonical replay stream stays (time, source, sequence)-sorted.
// Under PolicyUniform the limit degrades to G + window, the PR 9
// cadence (the clamp never binds there: any send in the window lands at
// or after G + one edge cost >= G + window).
func (s *ShardSet) plan() Time {
	g := MaxTime
	for j, e := range s.engines {
		ej := MaxTime
		if t, ok := e.nextTime(); ok {
			ej = t
		}
		hj := MaxTime
		if s.earliest != nil {
			hj = s.earliest(j)
		}
		if hj < ej {
			ej = hj
		}
		s.ev[j] = ej
		s.hv[j] = hj
		if ej < g {
			g = ej
		}
	}
	if g == MaxTime {
		return g
	}
	switch {
	case s.bounds == nil || s.policy == PolicyUniform:
		lim := g + s.window
		for i := range s.limits {
			s.limits[i] = lim
		}
	case s.policy == PolicyDistance:
		for i := range s.limits {
			lim := satAdd(g, s.minInto[i])
			if h := satAdd(s.hv[i], s.bounds[i][i]); h < lim {
				lim = h
			}
			s.limits[i] = lim
		}
	default: // PolicyElide
		for i := range s.limits {
			lim := satAdd(s.hv[i], s.bounds[i][i])
			for j := range s.engines {
				if j == i {
					continue
				}
				if b := satAdd(s.ev[j], s.bounds[j][i]); b < lim {
					lim = b
				}
			}
			s.limits[i] = lim
		}
	}
	if s.capOver > 0 {
		capAt := satAdd(g, s.capOver)
		for i := range s.limits {
			if s.limits[i] > capAt {
				s.limits[i] = capAt
			}
		}
	}
	s.Barriers++
	minLim := s.limits[0]
	for _, l := range s.limits[1:] {
		if l < minLim {
			minLim = l
		}
	}
	if minLim > satAdd(g, s.window) {
		s.Elided++
	}
	return g
}

// horizon returns the barrier's replay horizon: no pending or future
// transmission intent can carry a time below it. Future sends originate
// either from an already-queued event (bounded by the earliest queue
// head) or from the delivery cascade of a pending intent (bounded by
// the earliest intent plus the global minimum delivery bound). The
// intent source must therefore report every pending intent — held from
// past drains AND recorded in the window that just ran — since under
// sparse queues the cascade term is all that keeps a late fresh intent
// from replaying ahead of an earlier one's future response.
func (s *ShardSet) horizon() Time {
	h := MaxTime
	for _, e := range s.engines {
		if t, ok := e.nextTime(); ok && t < h {
			h = t
		}
	}
	if s.earliest != nil && s.bounds != nil {
		m := MaxTime
		for j := range s.engines {
			if t := s.earliest(j); t < m {
				m = t
			}
		}
		if hb := satAdd(m, s.minB); hb < h {
			h = hb
		}
	}
	return h
}

func (s *ShardSet) runParallel() Time {
	k := len(s.engines)
	if s.workers == nil {
		for i := 1; i < k; i++ {
			i := i
			s.workers = append(s.workers, func() { s.work(i, s.spawnEpoch) })
		}
	}
	s.quit.Store(false)
	s.spawnEpoch = s.epoch.Load()
	for _, w := range s.workers {
		go w()
	}
	for {
		if s.plan() == MaxTime {
			break
		}
		s.done.Store(0)
		s.epoch.Add(1)
		s.engines[0].runWindow(s.limits[0]) // the coordinator is shard 0's worker
		s.await(k - 1)
		if s.barrier != nil {
			s.barrier(s.horizon())
		}
		if s.stopReq.Load() {
			s.stopReq.Store(false)
			break
		}
	}
	s.quit.Store(true)
	s.done.Store(0)
	s.epoch.Add(1)
	s.await(k - 1)
	return s.Now()
}

// work is one shard's worker loop: spin until the coordinator opens a
// new window, run it, report done. Windows are microseconds apart, so a
// short spin before yielding wins over channel parking.
func (s *ShardSet) work(i int, seen uint32) {
	spins := 0
	for {
		e := s.epoch.Load()
		if e == seen {
			if spins++; spins > 256 {
				runtime.Gosched()
			}
			continue
		}
		seen = e
		spins = 0
		if s.quit.Load() {
			s.done.Add(1)
			return
		}
		s.engines[i].runWindow(s.limits[i])
		s.done.Add(1)
	}
}

// await spins until n workers have finished the current window.
func (s *ShardSet) await(n int) {
	spins := 0
	for int(s.done.Load()) < n {
		if spins++; spins > 256 {
			runtime.Gosched()
		}
	}
}
