package sim

import "testing"

// BenchmarkEngineScheduleRun is the headline engine microbenchmark: a
// self-sustaining event churn with a bounded horizon, the pattern every
// substrate's timed path reduces to. Reported ns/op is host cost per
// executed event.
func BenchmarkEngineScheduleRun(b *testing.B) {
	e := New()
	remaining := b.N
	var step func()
	step = func() {
		if remaining > 0 {
			remaining--
			e.After(100, step)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.After(0, step)
	e.Run()
}

// BenchmarkEngineFanout stresses heap reordering: each op schedules a
// spread of events at staggered times, then drains them.
func BenchmarkEngineFanout(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := e.Now()
		for j := Time(0); j < 16; j++ {
			e.At(now+(j*37)%113, fn)
		}
		e.Run()
	}
}

// BenchmarkEngineScheduleCancel exercises the cancel path: every other
// event is canceled before the queue drains.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := e.Now()
		h1 := e.At(now+10, fn)
		e.At(now+20, fn)
		h1.Cancel()
		e.Run()
	}
}

// BenchmarkResourceAcquire prices the FIFO server fast path.
func BenchmarkResourceAcquire(b *testing.B) {
	e := New()
	r := NewResource(e, "bench", 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Acquire(Time(i)*10, 5)
	}
}
