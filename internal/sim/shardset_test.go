package sim

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardSetWindowedOrder drives two shards whose events interleave in
// time and checks the set advances in lookahead windows: each shard's
// own events run in time order, and no event executes at or past the
// window limit the barrier last announced.
func TestShardSetWindowedOrder(t *testing.T) {
	const window = Time(100)
	s := NewShardSet(2, window)
	// Events on different shards run concurrently inside a window, so
	// the trace needs a lock; the asserted ordering is only across
	// windows, which the barrier serializes.
	var mu sync.Mutex
	var order []int
	add := func(shard int, at Time, id int) {
		s.Engine(shard).At(at, func() {
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
		})
	}
	// Shard 0 at 10, 250; shard 1 at 20, 30, 260. Windows: [10,110) runs
	// ids 1,2,3 (both shards), then [250,350) runs 4,5.
	add(0, 10, 1)
	add(1, 20, 2)
	add(1, 30, 3)
	add(0, 250, 4)
	add(1, 260, 5)
	s.Run()

	// Cross-shard ordering inside a window is concurrent by design; only
	// per-shard order and window separation are guaranteed. Events 4 and
	// 5 must come after 1..3.
	pos := map[int]int{}
	for i, id := range order {
		pos[id] = i
	}
	if len(order) != 5 {
		t.Fatalf("ran %d events, want 5", len(order))
	}
	for _, early := range []int{1, 2, 3} {
		for _, late := range []int{4, 5} {
			if pos[early] > pos[late] {
				t.Errorf("event %d (t<110) ran after event %d (t>=250)", early, late)
			}
		}
	}
	if s.Now() != 260 {
		t.Errorf("Now() = %d, want 260", s.Now())
	}
}

// TestShardSetBarrierScheduling checks the barrier hook can schedule
// onto any shard and the events land strictly past the window limit —
// the safety property the cross-shard exchange relies on. It also pins
// the hook's argument: with every queue drained and no held intents,
// the replay horizon is MaxTime (a full drain).
func TestShardSetBarrierScheduling(t *testing.T) {
	const window = Time(50)
	s := NewShardSet(3, window)
	var mu sync.Mutex
	fired := make([]Time, 0, 4)
	injected := false
	s.OnBarrier(func(horizon Time) {
		if injected {
			return
		}
		injected = true
		if horizon != MaxTime {
			t.Errorf("first barrier horizon = %d, want MaxTime (all queues drained)", horizon)
		}
		// Inject into every shard past the first window's limit (5+50) —
		// the earliest a conservative exchange may deliver.
		for i := 0; i < s.Shards(); i++ {
			eng := s.Engine(i)
			eng.AtFrom(5, 56, func() {
				mu.Lock()
				fired = append(fired, eng.Now())
				mu.Unlock()
			})
		}
	})
	s.Engine(0).At(5, func() {})
	s.Run()
	if len(fired) != 3 {
		t.Fatalf("barrier-scheduled events fired %d times, want one per shard (3)", len(fired))
	}
	for _, at := range fired {
		if at != 56 {
			t.Errorf("barrier-scheduled event fired at %d, want 56", at)
		}
	}
}

// TestShardSetDistancePolicyWidensWindows pins the point of the
// lookahead matrix: with a provable 10x-the-window delivery bound, the
// distance policy runs the same event program in a tenth of the
// barriers, and the elision counter accounts for the skipped uniform
// windows. The program itself must execute identically.
func TestShardSetDistancePolicyWidensWindows(t *testing.T) {
	const window = Time(10)
	run := func(policy WindowPolicy, bounds [][]Time) (int, uint64, uint64) {
		s := NewShardSet(2, window)
		s.ConfigureLookahead(policy, bounds, 0)
		ran := 0
		var tick func()
		tick = func() {
			ran++
			e := s.Engine(0)
			if e.Now() < 1000 {
				e.At(e.Now()+window, tick)
			}
		}
		s.Engine(0).At(0, tick)
		s.Run()
		return ran, s.Barriers, s.Elided
	}
	b := [][]Time{{100, 100}, {100, 100}}
	wantRan, uniformBarriers, _ := run(PolicyUniform, b)
	for _, policy := range []WindowPolicy{PolicyDistance, PolicyElide} {
		ran, barriers, elided := run(policy, b)
		if ran != wantRan {
			t.Fatalf("policy %d: ran %d events, uniform ran %d", policy, ran, wantRan)
		}
		if barriers*5 > uniformBarriers {
			t.Errorf("policy %d: %d barriers, want <= uniform's %d / 5", policy, barriers, uniformBarriers)
		}
		if elided == 0 {
			t.Errorf("policy %d: elision counter stayed zero across widened windows", policy)
		}
	}
}

// TestShardSetElisionHonorsHeldIntents checks the elide policy treats a
// held cross-shard intent as pending work: the shard it targets may not
// run past intent time + bound, and the replay horizon eventually
// exposes the intent for replay.
func TestShardSetElisionHonorsHeldIntents(t *testing.T) {
	const window = Time(10)
	s := NewShardSet(2, window)
	b := [][]Time{{50, 50}, {50, 50}}
	s.ConfigureLookahead(PolicyElide, b, 0)
	held := Time(500) // intent recorded by shard 0, not yet replayed
	var replayed Time
	s.SetIntentSource(func(shard int) Time {
		if shard == 0 && held > 0 {
			return held
		}
		return MaxTime
	})
	s.OnBarrier(func(horizon Time) {
		if held > 0 && held < horizon {
			// The scheduler promised no pending intent below horizon is
			// held back; replay it as a delivery into shard 1.
			at := held + b[0][1]
			s.Engine(1).AtFrom(held, at, func() { replayed = at })
			held = 0
		}
	})
	s.Engine(0).At(0, func() {})
	s.Run()
	if replayed != 550 {
		t.Fatalf("held intent replayed at %d, want delivery at 550", replayed)
	}
}

// TestShardSetStopIsDeterministic requests a stop from an event on a
// non-coordinator shard and checks Run returns at a window boundary with
// the remaining events intact, then resumes exactly where it left off.
func TestShardSetStopIsDeterministic(t *testing.T) {
	s := NewShardSet(2, 100)
	var ran atomic.Int32
	s.Engine(1).At(10, func() { ran.Add(1); s.Stop() })
	s.Engine(0).At(500, func() { ran.Add(1) })
	s.Run()
	if got := ran.Load(); got != 1 {
		t.Fatalf("after stop: ran %d events, want 1", got)
	}
	if s.Pending() != 1 {
		t.Fatalf("after stop: %d events pending, want 1", s.Pending())
	}
	s.Run()
	if got := ran.Load(); got != 2 {
		t.Fatalf("after resume: ran %d events, want 2", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("after resume: %d events pending, want 0", s.Pending())
	}
}

// TestShardSetSingleShardMatchesEngine runs the same event program
// through a bare engine and a 1-shard set and compares execution traces
// — WrapEngine must keep the plain engine's exact semantics.
func TestShardSetSingleShardMatchesEngine(t *testing.T) {
	program := func(at func(Time, func()) Handle) []Time {
		var trace []Time
		var rec func(Time)
		rec = func(base Time) {
			trace = append(trace, base)
			if base < 1000 {
				at(base+137, func() { rec(base + 137) })
			}
		}
		at(3, func() { rec(3) })
		return trace
	}

	e := New()
	wantTrace := program(e.At)
	e.Run()

	s := WrapEngine(New(), 120)
	gotTrace := program(s.Engine(0).At)
	s.Run()

	if len(wantTrace) != len(gotTrace) {
		t.Fatalf("trace lengths differ: engine %d, set %d", len(wantTrace), len(gotTrace))
	}
	for i := range wantTrace {
		if wantTrace[i] != gotTrace[i] {
			t.Fatalf("trace[%d]: engine %d, set %d", i, wantTrace[i], gotTrace[i])
		}
	}
}

// TestShardSetMetricsAggregate checks the aggregated sim_* families sum
// across shards under the same names a single engine registers.
func TestShardSetMetricsAggregate(t *testing.T) {
	s := NewShardSet(2, 100)
	s.Engine(0).At(1, func() {})
	s.Engine(1).At(2, func() {})
	s.Run()
	snap := s.Metrics().Snapshot()
	for _, fam := range snap.Families {
		if fam.Name == "ncdsm_sim_events_total" {
			if len(fam.Samples) != 1 || fam.Samples[0].Value != 2 {
				t.Fatalf("sim_events_total = %+v, want one sample of 2", fam.Samples)
			}
			return
		}
	}
	t.Fatal("ncdsm_sim_events_total family missing from shard-set registry")
}
