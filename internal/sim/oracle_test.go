package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// ---- reference implementation: the original container/heap engine ----
//
// The arena engine must replay the exact (time, seq) order the original
// pointer-based engine produced — that order is what makes every figure
// byte-identical. The oracle below is the pre-refactor implementation,
// kept verbatim (minus metrics) as the specification.

type oracleEvent struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int
	dead bool
}

type oracleQueue []*oracleEvent

func (q oracleQueue) Len() int { return len(q) }
func (q oracleQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oracleQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *oracleQueue) Push(x any) {
	e := x.(*oracleEvent)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *oracleQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

type oracleEngine struct {
	now   Time
	seq   uint64
	queue oracleQueue
}

func (e *oracleEngine) At(at Time, fn func()) *oracleEvent {
	ev := &oracleEvent{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *oracleEngine) Run() Time {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*oracleEvent)
		if ev.dead {
			continue
		}
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// ---- the shared random workload ----

// firing is one observed execution: which logical event ran and when.
type firing struct {
	id int
	at Time
}

// script drives an engine through a seeded random schedule/cancel/fire
// interleaving via the tiny adapter interface below, logging firings.
type testEngine interface {
	schedule(at Time, fn func()) (cancel func())
	now() Time
	run()
}

type arenaAdapter struct{ e *Engine }

func (a arenaAdapter) schedule(at Time, fn func()) func() {
	h := a.e.At(at, fn)
	return h.Cancel
}
func (a arenaAdapter) now() Time { return a.e.Now() }
func (a arenaAdapter) run()      { a.e.Run() }

type oracleAdapter struct{ e *oracleEngine }

func (o oracleAdapter) schedule(at Time, fn func()) func() {
	ev := o.e.At(at, fn)
	return func() { ev.dead = true }
}
func (o oracleAdapter) now() Time { return o.e.now }
func (o oracleAdapter) run()      { o.e.Run() }

// runScript replays a seeded interleaving: a cascade of events that
// schedule further events, cancel random outstanding ones (sometimes
// twice), and occasionally reschedule at the current instant. All
// decisions come from the seeded source, so both engines see the same
// logical workload.
func runScript(seed int64, eng testEngine) []firing {
	rng := rand.New(rand.NewSource(seed))
	var log []firing
	var cancels []func()
	nextID := 0
	var spawn func(depth int) // schedules one event; fires transitively
	spawn = func(depth int) {
		id := nextID
		nextID++
		at := eng.now() + Time(rng.Intn(50))
		cancel := eng.schedule(at, func() {
			log = append(log, firing{id: id, at: eng.now()})
			if depth < 6 {
				for k := rng.Intn(3); k > 0; k-- {
					spawn(depth + 1)
				}
			}
			if len(cancels) > 0 && rng.Intn(3) == 0 {
				c := cancels[rng.Intn(len(cancels))]
				c()
				if rng.Intn(2) == 0 {
					c() // double-cancel must be a no-op
				}
			}
		})
		cancels = append(cancels, cancel)
	}
	for i := 0; i < 20; i++ {
		spawn(0)
	}
	eng.run()
	return log
}

// TestArenaMatchesHeapOracle: for many seeds, the arena engine fires the
// same events at the same times in the same order as the original
// container/heap implementation, under random schedule/cancel/fire
// interleavings (the determinism contract, event for event).
func TestArenaMatchesHeapOracle(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		got := runScript(seed, arenaAdapter{New()})
		want := runScript(seed, oracleAdapter{&oracleEngine{}})
		if len(got) != len(want) {
			t.Fatalf("seed %d: arena fired %d events, oracle %d", seed, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("seed %d: firing %d diverges: arena %+v, oracle %+v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestHandleNeverCancelsReusedSlot: a Handle kept across its event's
// firing (or cancellation) must never kill the event that later reuses
// the slot. Slots recycle LIFO, so scheduling right after a fire reuses
// the hottest slot — the exact aliasing the generation counter guards.
func TestHandleNeverCancelsReusedSlot(t *testing.T) {
	e := New()
	fired := make(map[int]bool)
	var stale []Handle

	// Round 1: events that fire (handles go stale at fire time).
	for i := 0; i < 8; i++ {
		i := i
		stale = append(stale, e.At(Time(i), func() { fired[i] = true }))
	}
	// One canceled before firing: its slot is also recycled.
	hc := e.At(3, func() { t.Error("canceled event fired") })
	hc.Cancel()
	e.Run()

	// Round 2: new events reuse the freed slots.
	for i := 100; i < 110; i++ {
		i := i
		e.At(e.Now()+Time(i), func() { fired[i] = true })
	}
	// Stale handles from round 1 must not touch round 2's events.
	for _, h := range stale {
		h.Cancel()
	}
	hc.Cancel()
	if got := e.Pending(); got != 10 {
		t.Fatalf("stale cancels killed reused slots: Pending = %d, want 10", got)
	}
	e.Run()
	for i := 100; i < 110; i++ {
		if !fired[i] {
			t.Errorf("event %d (in a reused slot) never fired", i)
		}
	}
}

// TestHandleSafetyProperty: seeded random interleavings where every
// handle is canceled again *after* the run. No late cancel may affect
// events scheduled afterwards, and rerunning the same seed twice is
// bit-identical.
func TestHandleSafetyProperty(t *testing.T) {
	for seed := int64(1); seed <= 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var handles []Handle
		count := 0
		for i := 0; i < 100; i++ {
			h := e.At(Time(rng.Intn(1000)), func() { count++ })
			handles = append(handles, h)
			if rng.Intn(4) == 0 {
				handles[rng.Intn(len(handles))].Cancel()
			}
		}
		e.Run()
		if e.Pending() != 0 {
			t.Fatalf("seed %d: Pending = %d after drain", seed, e.Pending())
		}
		// Late cancels against reused slots.
		survivors := count
		next := 0
		for i := 0; i < 50; i++ {
			e.At(e.Now()+Time(rng.Intn(100)), func() { next++ })
			handles[rng.Intn(len(handles))].Cancel()
		}
		if e.Pending() != 50 {
			t.Fatalf("seed %d: stale handles canceled new events (Pending = %d, want 50)", seed, e.Pending())
		}
		e.Run()
		if next != 50 {
			t.Fatalf("seed %d: %d of 50 post-run events fired", seed, next)
		}
		_ = survivors
	}
}
