package prefetch

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
)

func det(t *testing.T, depth int) *Detector {
	t.Helper()
	d, err := New(depth, 64)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, 64); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := New(2, 48); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	d := det(t, 4)
	if d.Depth() != 4 {
		t.Errorf("Depth = %d", d.Depth())
	}
}

func TestDisabledDetectorIsSilent(t *testing.T) {
	d := det(t, 0)
	base := addr.Phys(0).WithNode(2)
	for i := 0; i < 10; i++ {
		if got := d.Observe(0, base+addr.Phys(i*64)); got != nil {
			t.Fatal("disabled detector prefetched")
		}
	}
	if d.Observed != 0 {
		t.Error("disabled detector counted observations")
	}
}

func TestStreamDetection(t *testing.T) {
	d := det(t, 3)
	base := addr.Phys(0x1000).WithNode(2)
	// First miss: no history, no prefetch.
	if got := d.Observe(0, base); len(got) != 0 {
		t.Fatalf("first miss prefetched %v", got)
	}
	if d.Streaming(0) {
		t.Error("streaming declared after one miss")
	}
	// Second consecutive miss: stream detected, 3 lines ahead.
	got := d.Observe(0, base+64)
	if len(got) != 3 {
		t.Fatalf("got %d prefetches, want 3", len(got))
	}
	for i, pf := range got {
		want := base + 64 + addr.Phys((i+1)*64)
		if pf != want {
			t.Errorf("prefetch %d = %v, want %v", i, pf, want)
		}
		if pf.Node() != 2 {
			t.Error("prefetch lost node prefix")
		}
	}
	if !d.Streaming(0) {
		t.Error("streaming not declared")
	}
	// Third miss (continuing): overlapping window is suppressed.
	got = d.Observe(0, base+128)
	if len(got) != 1 { // lines +3,+4 in flight... only +5 new? window is (base+128)+64..+192: 192,256,320; 192 and 256 in flight
		t.Logf("continuing stream prefetched %d new lines", len(got))
	}
	if d.Suppressed == 0 {
		t.Error("no duplicate suppression on overlapping windows")
	}
}

func TestRandomAccessNeverPrefetches(t *testing.T) {
	d := det(t, 4)
	base := addr.Phys(0).WithNode(3)
	offsets := []uint64{0, 4096, 128, 9999 * 64, 64, 777 * 64}
	for _, off := range offsets {
		if got := d.Observe(1, base+addr.Phys(off)); len(got) != 0 {
			t.Fatalf("random pattern prefetched %v", got)
		}
	}
	if d.Streaming(1) {
		t.Error("random pattern declared streaming")
	}
}

func TestPerCoreIndependence(t *testing.T) {
	d := det(t, 2)
	a := addr.Phys(0x0).WithNode(2)
	b := addr.Phys(0x100000).WithNode(2)
	// Interleaved sequential streams on two cores both get detected.
	d.Observe(0, a)
	d.Observe(1, b)
	got0 := d.Observe(0, a+64)
	got1 := d.Observe(1, b+64)
	if len(got0) != 2 || len(got1) != 2 {
		t.Errorf("interleaved streams broken: %d, %d", len(got0), len(got1))
	}
}

func TestNodeBoundaryClamp(t *testing.T) {
	d := det(t, 8)
	// A stream right at the top of node 2's segment must not run into
	// node 3's prefix.
	top := addr.NodeBase(3) - 64*3 // three lines below node 3's base
	d.Observe(0, top.Page(64))
	got := d.Observe(0, top+64)
	for _, pf := range got {
		if pf.Node() != 2 {
			t.Fatalf("prefetch %v crossed into node %d", pf, pf.Node())
		}
	}
	if len(got) > 1 {
		t.Errorf("expected at most 1 in-segment prefetch, got %d", len(got))
	}
}

func TestCompletedReallows(t *testing.T) {
	d := det(t, 1)
	base := addr.Phys(0).WithNode(2)
	d.Observe(0, base)
	got := d.Observe(0, base+64)
	if len(got) != 1 {
		t.Fatal("no prefetch")
	}
	if d.InflightCount() != 1 {
		t.Errorf("InflightCount = %d", d.InflightCount())
	}
	d.Completed(got[0])
	if d.InflightCount() != 0 {
		t.Error("Completed did not clear inflight")
	}
	// Re-detecting the same spot re-issues.
	d2 := det(t, 1)
	d2.Observe(0, base)
	d2.Observe(0, base+64)
	d2.Completed(base + 128)
	d2.Observe(0, base+64+64) // continue: next is base+192
	if d2.Issued != 2 {
		t.Errorf("Issued = %d", d2.Issued)
	}
}

// TestPrefetchAlwaysAheadProperty: prefetched lines are strictly ahead
// of the observed line and within the same node segment.
func TestPrefetchAlwaysAheadProperty(t *testing.T) {
	f := func(startSel uint32, steps uint8, depthSel uint8) bool {
		depth := int(depthSel%8) + 1
		d, err := New(depth, 64)
		if err != nil {
			return false
		}
		line := addr.Phys(uint64(startSel) &^ 63).WithNode(5)
		for s := 0; s < int(steps%32)+2; s++ {
			got := d.Observe(0, line)
			for _, pf := range got {
				if pf <= line || pf.Node() != 5 {
					return false
				}
				if int(uint64(pf-line))/64 > depth {
					return false
				}
			}
			line += 64
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
