// Package prefetch implements the sequential-stream prefetcher the paper
// names as future work ("the use of prefetching techniques will bring
// the performance closer to local memory"). A per-core detector watches
// demand misses on RMC-mapped lines; when a core touches two consecutive
// lines it declares a stream and asks for the next lines ahead of the
// demand stream. Prefetches ride the ordinary RMC read path — they are
// exactly as constrained by the fabric as demand traffic — and fill the
// cache on arrival, so a streaming workload pays the remote round trip
// once per prefetch distance instead of once per line.
package prefetch

import (
	"fmt"

	"repro/internal/addr"
)

// Detector is a per-core sequential stream detector.
type Detector struct {
	depth    int
	lineSize uint64

	// last maps a core to its previous demand-miss line.
	last map[int]addr.Phys
	// streaming marks cores currently in a detected stream.
	streaming map[int]bool
	// inflight suppresses duplicate prefetches for lines already asked
	// for; the owner clears entries via Completed.
	inflight map[addr.Phys]bool

	// Observed counts demand misses seen; Issued counts prefetch
	// requests produced; Suppressed counts duplicates avoided.
	Observed, Issued, Suppressed uint64
}

// New builds a detector that runs depth lines ahead of a stream.
// depth 0 disables prefetching (the prototype's configuration).
func New(depth int, lineSize uint64) (*Detector, error) {
	if depth < 0 {
		return nil, fmt.Errorf("prefetch: negative depth %d", depth)
	}
	if lineSize == 0 || lineSize&(lineSize-1) != 0 {
		return nil, fmt.Errorf("prefetch: line size %d not a power of two", lineSize)
	}
	return &Detector{
		depth:     depth,
		lineSize:  lineSize,
		last:      make(map[int]addr.Phys),
		streaming: make(map[int]bool),
		inflight:  make(map[addr.Phys]bool),
	}, nil
}

// Depth returns the configured prefetch distance.
func (d *Detector) Depth() int { return d.depth }

// Observe records a demand miss by core on the given (line-aligned)
// address and returns the lines to prefetch — empty unless the core is
// in a detected ascending stream. Returned lines never cross the owning
// node's address-space boundary: a stream cannot run off the end of a
// reservation into another node's prefix.
func (d *Detector) Observe(core int, line addr.Phys) []addr.Phys {
	if d.depth == 0 {
		return nil
	}
	d.Observed++
	prev, seen := d.last[core]
	d.last[core] = line
	if !seen || line != prev+addr.Phys(d.lineSize) {
		d.streaming[core] = false
		return nil
	}
	d.streaming[core] = true

	var out []addr.Phys
	owner := line.Node()
	for i := 1; i <= d.depth; i++ {
		next := line + addr.Phys(uint64(i)*d.lineSize)
		if next.Node() != owner {
			break // would cross into another node's segment
		}
		if d.inflight[next] {
			d.Suppressed++
			continue
		}
		d.inflight[next] = true
		d.Issued++
		out = append(out, next)
	}
	return out
}

// Streaming reports whether the core is in a detected stream.
func (d *Detector) Streaming(core int) bool { return d.streaming[core] }

// Completed clears the in-flight mark once a prefetch fill arrives (or
// fails), re-allowing the line.
func (d *Detector) Completed(line addr.Phys) { delete(d.inflight, line) }

// InflightCount returns the number of outstanding prefetches.
func (d *Detector) InflightCount() int { return len(d.inflight) }
