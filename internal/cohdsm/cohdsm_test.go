package cohdsm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
	"repro/internal/params"
)

func model(t *testing.T, nodes int) *Model {
	t.Helper()
	m, err := New(params.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// check asserts the protocol invariants; every Access loop in this file
// runs it so a transition that corrupts the directory fails at the op
// that caused it, not at the end.
func check(t *testing.T, m *Model) {
	t.Helper()
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(params.Default(), 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := New(params.Default(), 17); err == nil {
		t.Error("17 nodes on a 16-node mesh accepted")
	}
	bad := params.Default()
	bad.MeshWidth = 0
	if _, err := New(bad, 4); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	m := model(t, 4)
	first, err := m.Access(0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	second, err := m.Access(0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if second >= first {
		t.Errorf("cached re-read (%d) not cheaper than fill (%d)", second, first)
	}
	if second != params.Default().L1Latency {
		t.Errorf("hit = %d, want L1", second)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := model(t, 8)
	const line = 555
	for n := 0; n < 8; n++ {
		if _, err := m.Access(n, line, false); err != nil {
			t.Fatal(err)
		}
		check(t, m)
	}
	if m.HolderCount(line) != 8 {
		t.Fatalf("holders = %d", m.HolderCount(line))
	}
	if _, err := m.Access(0, line, true); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if m.HolderCount(line) != 1 {
		t.Errorf("write left %d holders", m.HolderCount(line))
	}
	if m.Invalidations != 7 {
		t.Errorf("Invalidations = %d, want 7", m.Invalidations)
	}
}

func TestWriteCostGrowsWithSharers(t *testing.T) {
	// The ablation's core claim: upgrading a line shared by k nodes costs
	// more as k grows, while in the RMC design the same data never has
	// remote sharers at all.
	cost := func(sharers int) params.Duration {
		m := model(t, 16)
		const line = 9
		for n := 0; n < sharers; n++ {
			if _, err := m.Access(n, line, false); err != nil {
				t.Fatal(err)
			}
			check(t, m)
		}
		c, err := m.Access(15, line, true)
		if err != nil {
			t.Fatal(err)
		}
		check(t, m)
		return c
	}
	c2, c8, c15 := cost(2), cost(8), cost(15)
	if !(c2 < c8 && c8 < c15) {
		t.Errorf("invalidation cost not monotone: %d, %d, %d", c2, c8, c15)
	}
}

func TestReadIntervenesOnModifiedOwner(t *testing.T) {
	m := model(t, 4)
	const line = 77
	if _, err := m.Access(1, line, true); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	before := m.Interventions
	if _, err := m.Access(2, line, false); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if m.Interventions != before+1 {
		t.Error("read of modified line did not intervene")
	}
	// Both now share; the old owner's next read is a hit.
	c, err := m.Access(1, line, false)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if c != params.Default().L1Latency {
		t.Errorf("downgraded owner re-read = %d, want hit", c)
	}
}

func TestWriterRewriteIsHit(t *testing.T) {
	m := model(t, 4)
	if _, err := m.Access(3, 42, true); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	c, err := m.Access(3, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if c != params.Default().L1Latency {
		t.Errorf("owner rewrite = %d, want hit", c)
	}
}

func TestAccessValidation(t *testing.T) {
	m := model(t, 4)
	if _, err := m.Access(4, 0, false); err == nil {
		t.Error("node outside domain accepted")
	}
	if _, err := m.Access(-1, 0, false); err == nil {
		t.Error("negative node accepted")
	}
}

// TestReadSeesRemoteWrite is the regression test for the writeback bug
// the consistency checker exposed: a read miss on a dirty line must
// observe the owner's value (intervention writes it back to home
// memory), not whatever home memory held before the write.
func TestReadSeesRemoteWrite(t *testing.T) {
	m := model(t, 4)
	const line = 12
	if _, err := m.WriteLine(0, line, 41); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	v, _, err := m.ReadLine(3, line)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if v != 41 {
		t.Fatalf("remote read = %d, want 41 (missing M→S writeback)", v)
	}
	if m.MemValue(line) != 41 {
		t.Errorf("home memory = %d after downgrade, want 41", m.MemValue(line))
	}
	if m.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1", m.Writebacks)
	}
}

// TestInvalidationWritesBackDirtyOwner covers the other writeback path:
// a write miss that invalidates a dirty owner must not lose that owner's
// value before the new writer's value replaces it (observable through a
// cost-only Access touch, which rewrites the freshest contents).
func TestInvalidationWritesBackDirtyOwner(t *testing.T) {
	m := model(t, 4)
	const line = 5
	if _, err := m.WriteLine(1, line, 99); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	// Cost-only write by node 2: invalidates node 1 (writeback 99), then
	// rewrites the line's current contents.
	if _, err := m.Access(2, line, true); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	v, _, err := m.ReadLine(0, line)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if v != 99 {
		t.Fatalf("read after cost-only rewrite = %d, want 99", v)
	}
}

// TestOwnerClearedOnDowngrade pins the directory-hygiene fix: after an
// M→S downgrade the owner field must be cleared (CheckInvariants now
// asserts it, so a stale owner fails here).
func TestOwnerClearedOnDowngrade(t *testing.T) {
	m := model(t, 4)
	const line = 7
	if _, err := m.WriteLine(0, line, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.ReadLine(1, line); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	e := m.dir[line]
	if e.state != stateShared {
		t.Fatalf("state = %d, want shared", e.state)
	}
	if e.owner != noOwner {
		t.Fatalf("owner = %d after downgrade, want cleared", e.owner)
	}
	if !e.sharers[0] || !e.sharers[1] {
		t.Errorf("sharers = %v, want {0,1}", e.sharers)
	}
}

// TestValueOracle drives seeded random reads/writes and checks every
// read against a last-writer-wins oracle: MSI makes every write
// immediately globally visible, so any stale value is a protocol bug.
func TestValueOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := model(t, 8)
	oracle := make(map[uint64]uint64)
	for i := 0; i < 4000; i++ {
		node := rng.Intn(8)
		line := uint64(rng.Intn(24))
		if rng.Intn(3) == 0 {
			v := uint64(i) + 1
			if _, err := m.WriteLine(node, line, v); err != nil {
				t.Fatal(err)
			}
			oracle[line] = v
		} else {
			v, _, err := m.ReadLine(node, line)
			if err != nil {
				t.Fatal(err)
			}
			if v != oracle[line] {
				t.Fatalf("op %d: node %d read %d from line %d, oracle has %d", i, node, v, line, oracle[line])
			}
		}
		check(t, m)
	}
}

func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := New(params.Default(), 8)
		if err != nil {
			return false
		}
		for _, op := range ops {
			node := int(op) % 8
			line := uint64(op>>3) % 32
			write := op&0x8000 != 0
			if _, err := m.Access(node, line, write); err != nil {
				return false
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInstrument checks the directory-transaction metric families appear
// only on instrumented models and track the raw tallies.
func TestInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	m := model(t, 8)
	m.Instrument(reg)
	for n := 0; n < 4; n++ {
		if _, err := m.Access(n, 3, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Access(5, 3, true); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	snap := reg.Snapshot()
	find := func(name string) float64 {
		for _, f := range snap.Families {
			if f.Name == name && len(f.Samples) == 1 {
				return f.Samples[0].Value
			}
		}
		t.Fatalf("family %s missing", name)
		return 0
	}
	if got := find(metrics.FamDirInvalidations); got != 4 {
		t.Errorf("invalidations metric = %v, want 4", got)
	}
	if got := find(metrics.FamDirInterventions); got != 0 {
		t.Errorf("interventions metric = %v, want 0", got)
	}
	if find(metrics.FamDirLookups) == 0 {
		t.Error("lookups metric zero")
	}
	var fanout *metrics.Sample
	for _, f := range snap.Families {
		if f.Name == metrics.FamDirFanout {
			fanout = &f.Samples[0]
		}
	}
	if fanout == nil || fanout.Count != 1 || fanout.Sum != 4 {
		t.Errorf("fanout histogram = %+v, want one observation of 4", fanout)
	}

	// Uninstrumented models register nothing.
	if n := len(metrics.NewRegistry().Snapshot().Families); n != 0 {
		t.Errorf("fresh registry has %d families", n)
	}
}

func mesiModel(t *testing.T, nodes int) *Model {
	t.Helper()
	m, err := NewMESI(params.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMESIExclusiveGrantAndSilentUpgrade pins the variant's payoff: a
// cold read takes E, and the E-holder's write upgrades to M at pure
// cache-hit cost with no additional directory traffic.
func TestMESIExclusiveGrantAndSilentUpgrade(t *testing.T) {
	m := mesiModel(t, 4)
	if _, _, err := m.ReadLine(0, 7); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if m.ExclusiveGrants != 1 {
		t.Fatalf("ExclusiveGrants = %d, want 1", m.ExclusiveGrants)
	}
	lookups := m.DirLookups
	lat, err := m.WriteLine(0, 7, 42)
	if err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if m.SilentUpgrades != 1 {
		t.Fatalf("SilentUpgrades = %d, want 1", m.SilentUpgrades)
	}
	if m.DirLookups != lookups {
		t.Errorf("silent upgrade consulted the directory (%d -> %d lookups)", lookups, m.DirLookups)
	}
	if lat != params.Default().L1Latency {
		t.Errorf("silent upgrade cost %d, want the L1 hit cost %d", lat, params.Default().L1Latency)
	}
	// The upgraded value is real: a remote reader intervenes and sees it.
	if v, _, err := m.ReadLine(1, 7); err != nil || v != 42 {
		t.Fatalf("remote read after silent upgrade = %d, %v; want 42", v, err)
	}
	check(t, m)
	if m.Writebacks != 1 {
		t.Errorf("Writebacks = %d, want 1 (the silently upgraded copy was dirty)", m.Writebacks)
	}
}

// TestMESICleanDropsSkipWriteback pins E's other half: clean exclusive
// copies downgrade (second reader) and invalidate (remote writer)
// without ever writing back — home memory is already current.
func TestMESICleanDropsSkipWriteback(t *testing.T) {
	m := mesiModel(t, 4)
	// E then a second reader: E→S downgrade, no writeback.
	if _, _, err := m.ReadLine(0, 3); err != nil {
		t.Fatal(err)
	}
	if v, _, err := m.ReadLine(1, 3); err != nil || v != 0 {
		t.Fatalf("second read = %d, %v", v, err)
	}
	check(t, m)
	if m.Writebacks != 0 {
		t.Errorf("E→S downgrade wrote back: Writebacks = %d", m.Writebacks)
	}
	if m.Interventions != 1 {
		t.Errorf("Interventions = %d, want 1 (the directory must ask the E owner whether it upgraded)", m.Interventions)
	}
	// E then a remote writer: clean invalidation, no writeback.
	if _, _, err := m.ReadLine(2, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteLine(3, 9, 5); err != nil {
		t.Fatal(err)
	}
	check(t, m)
	if m.Writebacks != 0 {
		t.Errorf("clean E invalidation wrote back: Writebacks = %d", m.Writebacks)
	}
	if m.HolderCount(9) != 1 {
		t.Errorf("line 9 has %d holders after the invalidating write, want 1", m.HolderCount(9))
	}
}

// TestMSINeverGrantsExclusive keeps the base variant byte-identical: the
// plain MSI machine must not take the E path.
func TestMSINeverGrantsExclusive(t *testing.T) {
	m := model(t, 4)
	if _, _, err := m.ReadLine(0, 7); err != nil {
		t.Fatal(err)
	}
	if m.ExclusiveGrants != 0 {
		t.Fatalf("MSI granted E")
	}
	// A cold MSI read is shared: a write by the same node still needs
	// the directory.
	lookups := m.DirLookups
	if _, err := m.WriteLine(0, 7, 1); err != nil {
		t.Fatal(err)
	}
	if m.DirLookups != lookups+1 {
		t.Errorf("MSI write after own read skipped the directory")
	}
	if m.SilentUpgrades != 0 {
		t.Errorf("MSI silently upgraded")
	}
	check(t, m)
}

// TestMESIValueOracle reruns the random value oracle under the MESI
// variant with invariants checked at every step.
func TestMESIValueOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := mesiModel(t, 8)
	oracle := make(map[uint64]uint64)
	for i := 0; i < 4000; i++ {
		node := rng.Intn(8)
		line := uint64(rng.Intn(24))
		if rng.Intn(3) == 0 {
			v := uint64(i) + 1
			if _, err := m.WriteLine(node, line, v); err != nil {
				t.Fatal(err)
			}
			oracle[line] = v
		} else {
			v, _, err := m.ReadLine(node, line)
			if err != nil {
				t.Fatal(err)
			}
			if v != oracle[line] {
				t.Fatalf("op %d: node %d read %d from line %d, oracle has %d", i, node, v, line, oracle[line])
			}
		}
		check(t, m)
	}
	if m.ExclusiveGrants == 0 || m.SilentUpgrades == 0 {
		t.Errorf("oracle run never exercised E: grants=%d upgrades=%d", m.ExclusiveGrants, m.SilentUpgrades)
	}
}

// TestMESIInvariantsProperty is the quick-check property under the MESI
// variant.
func TestMESIInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := NewMESI(params.Default(), 8)
		if err != nil {
			return false
		}
		for _, op := range ops {
			node := int(op) % 8
			line := uint64(op>>3) % 32
			write := op&0x8000 != 0
			if _, err := m.Access(node, line, write); err != nil {
				return false
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInjectBugs proves the test-only knob actually re-introduces the
// two PR 6 bugs in a way the invariant checker sees.
func TestInjectBugs(t *testing.T) {
	t.Run("skip-downgrade-writeback", func(t *testing.T) {
		m := model(t, 2)
		m.InjectBugs(TestBugs{SkipDowngradeWriteback: true})
		if _, err := m.WriteLine(0, 1, 9); err != nil {
			t.Fatal(err)
		}
		if v, _, err := m.ReadLine(1, 1); err != nil {
			t.Fatal(err)
		} else if v == 9 {
			t.Fatal("buggy downgrade still delivered the fresh value")
		}
		if err := m.CheckInvariants(); err == nil {
			t.Error("invariants passed with the writeback dropped")
		}
	})
	t.Run("keep-owner-after-downgrade", func(t *testing.T) {
		m := model(t, 2)
		m.InjectBugs(TestBugs{KeepOwnerAfterDowngrade: true})
		if _, err := m.WriteLine(0, 1, 9); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.ReadLine(1, 1); err != nil {
			t.Fatal(err)
		}
		if err := m.CheckInvariants(); err == nil {
			t.Error("invariants passed with a stale owner after downgrade")
		}
	})
}

// TestMESIInstrument checks the MESI-only families appear only on the
// MESI variant.
func TestMESIInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	m := mesiModel(t, 4)
	m.Instrument(reg)
	if _, _, err := m.ReadLine(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteLine(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	got := make(map[string]float64)
	for _, f := range snap.Families {
		if len(f.Samples) == 1 {
			got[f.Name] = f.Samples[0].Value
		}
	}
	if got[metrics.FamDirExclusiveGrants] != 1 {
		t.Errorf("exclusive grants metric = %v, want 1", got[metrics.FamDirExclusiveGrants])
	}
	if got[metrics.FamDirSilentUpgrades] != 1 {
		t.Errorf("silent upgrades metric = %v, want 1", got[metrics.FamDirSilentUpgrades])
	}
	// The MSI variant must not register the MESI families.
	msiReg := metrics.NewRegistry()
	model(t, 4).Instrument(msiReg)
	for _, f := range msiReg.Snapshot().Families {
		if f.Name == metrics.FamDirExclusiveGrants || f.Name == metrics.FamDirSilentUpgrades {
			t.Errorf("MSI variant registered MESI family %s", f.Name)
		}
	}
}
