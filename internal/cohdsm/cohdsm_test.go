package cohdsm

import (
	"testing"
	"testing/quick"

	"repro/internal/params"
)

func model(t *testing.T, nodes int) *Model {
	t.Helper()
	m, err := New(params.Default(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidation(t *testing.T) {
	if _, err := New(params.Default(), 0); err == nil {
		t.Error("0 nodes accepted")
	}
	if _, err := New(params.Default(), 17); err == nil {
		t.Error("17 nodes on a 16-node mesh accepted")
	}
	bad := params.Default()
	bad.MeshWidth = 0
	if _, err := New(bad, 4); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestHitAfterFill(t *testing.T) {
	m := model(t, 4)
	first, err := m.Access(0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Access(0, 100, false)
	if err != nil {
		t.Fatal(err)
	}
	if second >= first {
		t.Errorf("cached re-read (%d) not cheaper than fill (%d)", second, first)
	}
	if second != params.Default().L1Latency {
		t.Errorf("hit = %d, want L1", second)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	m := model(t, 8)
	const line = 555
	for n := 0; n < 8; n++ {
		if _, err := m.Access(n, line, false); err != nil {
			t.Fatal(err)
		}
	}
	if m.HolderCount(line) != 8 {
		t.Fatalf("holders = %d", m.HolderCount(line))
	}
	if _, err := m.Access(0, line, true); err != nil {
		t.Fatal(err)
	}
	if m.HolderCount(line) != 1 {
		t.Errorf("write left %d holders", m.HolderCount(line))
	}
	if m.Invalidations != 7 {
		t.Errorf("Invalidations = %d, want 7", m.Invalidations)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriteCostGrowsWithSharers(t *testing.T) {
	// The ablation's core claim: upgrading a line shared by k nodes costs
	// more as k grows, while in the RMC design the same data never has
	// remote sharers at all.
	cost := func(sharers int) params.Duration {
		m := model(t, 16)
		const line = 9
		for n := 0; n < sharers; n++ {
			if _, err := m.Access(n, line, false); err != nil {
				t.Fatal(err)
			}
		}
		c, err := m.Access(15, line, true)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c2, c8, c15 := cost(2), cost(8), cost(15)
	if !(c2 < c8 && c8 < c15) {
		t.Errorf("invalidation cost not monotone: %d, %d, %d", c2, c8, c15)
	}
}

func TestReadIntervenesOnModifiedOwner(t *testing.T) {
	m := model(t, 4)
	const line = 77
	if _, err := m.Access(1, line, true); err != nil {
		t.Fatal(err)
	}
	before := m.Interventions
	if _, err := m.Access(2, line, false); err != nil {
		t.Fatal(err)
	}
	if m.Interventions != before+1 {
		t.Error("read of modified line did not intervene")
	}
	// Both now share; the old owner's next read is a hit.
	c, err := m.Access(1, line, false)
	if err != nil {
		t.Fatal(err)
	}
	if c != params.Default().L1Latency {
		t.Errorf("downgraded owner re-read = %d, want hit", c)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestWriterRewriteIsHit(t *testing.T) {
	m := model(t, 4)
	if _, err := m.Access(3, 42, true); err != nil {
		t.Fatal(err)
	}
	c, err := m.Access(3, 42, true)
	if err != nil {
		t.Fatal(err)
	}
	if c != params.Default().L1Latency {
		t.Errorf("owner rewrite = %d, want hit", c)
	}
}

func TestAccessValidation(t *testing.T) {
	m := model(t, 4)
	if _, err := m.Access(4, 0, false); err == nil {
		t.Error("node outside domain accepted")
	}
	if _, err := m.Access(-1, 0, false); err == nil {
		t.Error("negative node accepted")
	}
}

func TestProtocolInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		m, err := New(params.Default(), 8)
		if err != nil {
			return false
		}
		for _, op := range ops {
			node := int(op) % 8
			line := uint64(op>>3) % 32
			write := op&0x8000 != 0
			if _, err := m.Access(node, line, write); err != nil {
				return false
			}
		}
		return m.CheckInvariants() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
