// Package cohdsm models the alternative the paper argues against: a
// hardware coherent distributed shared memory spanning the cluster (the
// 3Leaf Aqua / ScaleMP / Numascale class of system), as a directory-based
// MSI protocol over the same mesh parameters. Every line has a home
// directory; writes invalidate remote sharers and reads intervene on
// remote owners, so the cost of keeping caches coherent grows with the
// number of nodes touching the data — the overhead the RMC architecture
// removes by never letting a coherency domain span nodes.
package cohdsm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mesh"
	"repro/internal/params"
)

// lineState is the directory's view of one line.
type lineState uint8

const (
	stateInvalid lineState = iota
	stateShared
	stateModified
)

type dirEntry struct {
	state   lineState
	owner   int          // valid when stateModified
	sharers map[int]bool // valid when stateShared
}

// Model is the coherent-DSM machine: n nodes, a directory distributed
// across them by line address, and per-node caches abstracted to
// presence sets (the protocol cost, not the capacity, is the object of
// study here).
type Model struct {
	p     params.Params
	topo  mesh.Topology
	nodes int
	dir   map[uint64]*dirEntry

	// held[n] is the set of lines node n currently caches, with its
	// right (true = writable/M, false = readable/S).
	held []map[uint64]bool

	// Invalidations, Interventions, and DirLookups are protocol event
	// counts.
	Invalidations, Interventions, DirLookups uint64
}

// New builds a coherent DSM over the given geometry.
func New(p params.Params, nodes int) (*Model, error) {
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		return nil, err
	}
	if nodes < 1 || nodes > topo.Nodes() {
		return nil, fmt.Errorf("cohdsm: %d nodes outside the %d-node mesh", nodes, topo.Nodes())
	}
	m := &Model{
		p:     p,
		topo:  topo,
		nodes: nodes,
		dir:   make(map[uint64]*dirEntry),
		held:  make([]map[uint64]bool, nodes),
	}
	for i := range m.held {
		m.held[i] = make(map[uint64]bool)
	}
	return m, nil
}

// Nodes returns the coherent domain's node count.
func (m *Model) Nodes() int { return m.nodes }

// home returns the directory home node index of a line.
func (m *Model) home(line uint64) int { return int(line) % m.nodes }

// nodeID maps a node index to its mesh identifier.
func (m *Model) nodeID(i int) addr.NodeID { return addr.NodeID(i + 1) }

// rt returns a round-trip latency between two nodes over the mesh.
func (m *Model) rt(a, b int) params.Duration {
	return 2 * params.Duration(m.topo.Hops(m.nodeID(a), m.nodeID(b))) * m.p.HopLatency
}

// entry fetches or creates the directory entry.
func (m *Model) entry(line uint64) *dirEntry {
	e, ok := m.dir[line]
	if !ok {
		e = &dirEntry{sharers: make(map[int]bool)}
		m.dir[line] = e
	}
	return e
}

// Access performs one read or write by a node to a line (line-granular
// addressing: callers pass byte addresses divided by the line size or
// any stable line identifier) and returns its latency under the
// protocol.
func (m *Model) Access(node int, line uint64, write bool) (params.Duration, error) {
	if node < 0 || node >= m.nodes {
		return 0, fmt.Errorf("cohdsm: node %d outside domain of %d", node, m.nodes)
	}
	writable, present := m.held[node][line]
	if present && (!write || writable) {
		// Cache hit with sufficient rights: no protocol traffic.
		return m.p.L1Latency, nil
	}

	e := m.entry(line)
	m.DirLookups++
	h := m.home(line)
	// Request travels to the home directory.
	lat := m.p.L1Latency + m.rt(node, h) + m.p.CohDirectoryLatency

	if !write {
		// Read miss: intervene on a modified owner, then share.
		if e.state == stateModified && e.owner != node {
			m.Interventions++
			lat += m.rt(h, e.owner) + m.p.CohProtocolOverhead
			m.held[e.owner][line] = false // owner downgrades to S
			e.sharers[e.owner] = true
		}
		lat += m.p.DRAMLatency // home memory (or owner cache) supplies data
		e.state = stateShared
		e.sharers[node] = true
		m.held[node][line] = false
		return lat, nil
	}

	// Write miss/upgrade: invalidate every other holder and take M.
	var worstRT params.Duration
	invalidated := 0
	invalidate := func(holder int) {
		if holder == node {
			return
		}
		if _, ok := m.held[holder][line]; ok {
			delete(m.held[holder], line)
		}
		if rt := m.rt(h, holder); rt > worstRT {
			worstRT = rt
		}
		invalidated++
	}
	switch e.state {
	case stateModified:
		invalidate(e.owner)
	case stateShared:
		for s := range e.sharers {
			invalidate(s)
		}
	}
	// Invalidations go out in parallel but each ack costs protocol
	// processing at the directory, so latency grows with the sharer
	// count — the scalability wall of inter-node coherency.
	lat += worstRT + params.Duration(invalidated)*m.p.CohProtocolOverhead + m.p.DRAMLatency
	m.Invalidations += uint64(invalidated)

	e.state = stateModified
	e.owner = node
	e.sharers = make(map[int]bool)
	m.held[node][line] = true
	return lat, nil
}

// HolderCount returns how many nodes currently cache the line (tests and
// diagnostics).
func (m *Model) HolderCount(line uint64) int {
	n := 0
	for _, h := range m.held {
		if _, ok := h[line]; ok {
			n++
		}
	}
	return n
}

// CheckInvariants verifies the single-writer / directory-consistency
// invariants over every tracked line.
func (m *Model) CheckInvariants() error {
	for line, e := range m.dir {
		writers := 0
		for i, h := range m.held {
			if w, ok := h[line]; ok && w {
				writers++
				if e.state != stateModified || e.owner != i {
					return fmt.Errorf("cohdsm: node %d holds line %d writable but directory disagrees", i, line)
				}
			}
		}
		if writers > 1 {
			return fmt.Errorf("cohdsm: line %d has %d writers", line, writers)
		}
		if writers == 1 && m.HolderCount(line) > 1 {
			return fmt.Errorf("cohdsm: line %d modified with %d holders", line, m.HolderCount(line))
		}
	}
	return nil
}
