// Package cohdsm models the alternative the paper argues against: a
// hardware coherent distributed shared memory spanning the cluster (the
// 3Leaf Aqua / ScaleMP / Numascale class of system), as a directory-based
// MSI protocol over the same mesh parameters. Every line has a home
// directory; writes invalidate remote sharers and reads intervene on
// remote owners, so the cost of keeping caches coherent grows with the
// number of nodes touching the data — the overhead the RMC architecture
// removes by never letting a coherency domain span nodes.
//
// The model carries data as well as cost: every line has a 64-bit value,
// per-node cached copies hold the value their protocol state entitles
// them to, and home memory is refreshed by writebacks exactly when the
// protocol says it is (M→S downgrade on a remote read, invalidation of a
// dirty owner on a remote write). That makes the comparator falsifiable:
// internal/consistency drives litmus and random programs through
// ReadLine/WriteLine and checks the recorded histories against
// sequential consistency, so a protocol bug shows up as a stale value,
// not just a miscounted cost.
//
// Two variants share the machine: New builds the plain directory MSI
// protocol, and NewMESI adds the exclusive-clean E state — cold read
// misses take the line exclusive, the E-holder's first write upgrades to
// M silently (no directory traffic), and clean E copies are dropped on
// invalidation or downgrade without a writeback. The comparison prices
// MESI's classic bet: private read-then-write gets cheaper, while a
// second reader of an E line pays an intervention MSI never issues.
package cohdsm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/params"
)

// lineState is the directory's view of one line. stateExclusive exists
// only in the MESI variant: the directory granted the line exclusively
// to one clean reader, which may since have upgraded its copy to M
// silently — so the directory must intervene on the owner to learn
// whether a writeback is needed, exactly as for stateModified.
type lineState uint8

const (
	stateInvalid lineState = iota
	stateShared
	stateModified
	stateExclusive
)

// cacheState is a node's right to its cached copy. cacheExclusive is
// MESI's E: a clean read-only copy no other node holds, upgradable to M
// by a local write without any directory traffic.
type cacheState uint8

const (
	cacheShared cacheState = iota
	cacheExclusive
	cacheModified
)

// noOwner marks a directory entry with no modified owner. The owner
// field is only meaningful in stateModified and must be cleared on every
// downgrade or invalidation — a stale owner is exactly the kind of
// latent directory bug CheckInvariants exists to catch.
const noOwner = -1

type dirEntry struct {
	state   lineState
	owner   int          // valid only when stateModified; noOwner otherwise
	sharers map[int]bool // valid when stateShared
}

// cached is one node's copy of a line: its access right and the value it
// read or wrote under that right.
type cached struct {
	state cacheState
	val   uint64
}

func (c cached) writable() bool { return c.state == cacheModified }

// Model is the coherent-DSM machine: n nodes, a directory distributed
// across them by line address, and per-node caches abstracted to
// presence sets carrying line values (the protocol cost and the protocol
// *correctness*, not the capacity, are the objects of study here).
type Model struct {
	p     params.Params
	topo  mesh.Topology
	nodes int
	dir   map[uint64]*dirEntry

	// mem is home memory: the value a line has at its home node. It is
	// stale while a dirty owner exists and is refreshed by writebacks.
	mem map[uint64]uint64

	// held[n] is the set of lines node n currently caches, with its
	// right (M writable, E exclusive-clean, S shared) and cached value.
	held []map[uint64]cached

	// mesi enables the MESI variant: cold read misses are granted E,
	// E-holders upgrade to M silently, and clean E copies drop without a
	// writeback. The base model (New) never grants E, so it remains the
	// plain MSI machine byte for byte.
	mesi bool

	// bugs re-introduces historical protocol bugs (tests only).
	bugs TestBugs

	// Invalidations, Interventions, DirLookups, and Writebacks are
	// protocol event counts. ExclusiveGrants and SilentUpgrades count
	// the MESI-only transitions (always zero in the MSI variant).
	Invalidations, Interventions, DirLookups, Writebacks uint64
	ExclusiveGrants, SilentUpgrades                      uint64

	// fanout, when instrumented, observes the sharer count invalidated
	// by each write miss/upgrade. Nil (free) until Instrument is called,
	// so uninstrumented models produce no metric output at all.
	fanout *metrics.Histogram
}

// TestBugs re-introduces real protocol bugs the PR 6 checkers caught,
// behind a knob so the schedule explorer's regression tests can prove
// they would be rediscovered. Production constructors never set it.
type TestBugs struct {
	// SkipDowngradeWriteback drops the writeback when a read intervenes
	// on a dirty owner (the M→S downgrade), leaving home memory stale —
	// the reader then observes the old value.
	SkipDowngradeWriteback bool
	// KeepOwnerAfterDowngrade leaves the directory's owner field
	// pointing at the downgraded owner while the line is shared — the
	// latent-state bug CheckInvariants exists to catch.
	KeepOwnerAfterDowngrade bool
}

// InjectBugs arms the test-only bug knob on a fresh model.
func (m *Model) InjectBugs(b TestBugs) { m.bugs = b }

// New builds a coherent DSM over the given geometry.
func New(p params.Params, nodes int) (*Model, error) {
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		return nil, err
	}
	if nodes < 1 || nodes > topo.Nodes() {
		return nil, fmt.Errorf("cohdsm: %d nodes outside the %d-node mesh", nodes, topo.Nodes())
	}
	m := &Model{
		p:     p,
		topo:  topo,
		nodes: nodes,
		dir:   make(map[uint64]*dirEntry),
		mem:   make(map[uint64]uint64),
		held:  make([]map[uint64]cached, nodes),
	}
	for i := range m.held {
		m.held[i] = make(map[uint64]cached)
	}
	return m, nil
}

// NewMESI builds the MESI variant over the same geometry: cold read
// misses take the line exclusive-clean (E), an E-holder's write upgrades
// to M with no directory traffic, and a clean E copy is dropped on
// invalidation or downgrade without a writeback — home memory is already
// current. The trade against MSI is visible in the lab: writes after a
// private read get cheaper, but a second reader of an E line pays an
// intervention MSI never issues.
func NewMESI(p params.Params, nodes int) (*Model, error) {
	m, err := New(p, nodes)
	if err != nil {
		return nil, err
	}
	m.mesi = true
	return m, nil
}

// MESI reports whether the model runs the MESI variant.
func (m *Model) MESI() bool { return m.mesi }

// Instrument registers the model's directory-transaction metrics with a
// registry: lookup/invalidation/intervention/writeback counters and the
// per-write sharer fan-out histogram. Uninstrumented models register
// nothing and pay nothing, so output that never asked for the coherent
// comparator stays byte-identical.
func (m *Model) Instrument(reg *metrics.Registry) {
	reg.CounterFunc(metrics.FamDirLookups, "home-directory lookups", nil,
		func() uint64 { return m.DirLookups })
	reg.CounterFunc(metrics.FamDirInvalidations, "sharer copies invalidated by writes", nil,
		func() uint64 { return m.Invalidations })
	reg.CounterFunc(metrics.FamDirInterventions, "dirty-owner interventions on reads", nil,
		func() uint64 { return m.Interventions })
	reg.CounterFunc(metrics.FamDirWritebacks, "dirty lines written back to home memory", nil,
		func() uint64 { return m.Writebacks })
	m.fanout = reg.Histogram(metrics.FamDirFanout,
		"sharers invalidated per write miss/upgrade", nil,
		[]int64{0, 1, 2, 4, 8, 16, 32, 64})
	if m.mesi {
		// MESI-only transitions: registered only for the MESI variant,
		// so instrumented MSI output stays byte-identical.
		reg.CounterFunc(metrics.FamDirExclusiveGrants, "cold read misses granted exclusive-clean", nil,
			func() uint64 { return m.ExclusiveGrants })
		reg.CounterFunc(metrics.FamDirSilentUpgrades, "E→M upgrades with no directory traffic", nil,
			func() uint64 { return m.SilentUpgrades })
	}
}

// Nodes returns the coherent domain's node count.
func (m *Model) Nodes() int { return m.nodes }

// home returns the directory home node index of a line.
func (m *Model) home(line uint64) int { return int(line) % m.nodes }

// nodeID maps a node index to its mesh identifier.
func (m *Model) nodeID(i int) addr.NodeID { return addr.NodeID(i + 1) }

// rt returns a round-trip latency between two nodes over the mesh.
func (m *Model) rt(a, b int) params.Duration {
	return 2 * params.Duration(m.topo.Hops(m.nodeID(a), m.nodeID(b))) * m.p.HopLatency
}

// entry fetches or creates the directory entry.
func (m *Model) entry(line uint64) *dirEntry {
	e, ok := m.dir[line]
	if !ok {
		e = &dirEntry{owner: noOwner, sharers: make(map[int]bool)}
		m.dir[line] = e
	}
	return e
}

// Access performs one read or write by a node to a line (line-granular
// addressing: callers pass byte addresses divided by the line size or
// any stable line identifier) and returns its latency under the
// protocol. A cost-only write rewrites the line's current contents; use
// WriteLine to store a new value.
func (m *Model) Access(node int, line uint64, write bool) (params.Duration, error) {
	if !write {
		_, lat, err := m.ReadLine(node, line)
		return lat, err
	}
	return m.writeLine(node, line, 0, true)
}

// ReadLine performs one read and returns the value the node observes
// under the protocol along with its latency.
func (m *Model) ReadLine(node int, line uint64) (uint64, params.Duration, error) {
	if err := m.checkNode(node); err != nil {
		return 0, 0, err
	}
	if c, present := m.held[node][line]; present {
		// Cache hit with sufficient rights: no protocol traffic, and the
		// node reads its own cached copy — if the protocol ever leaves a
		// stale copy behind, this is where the checker sees it.
		return c.val, m.p.L1Latency, nil
	}

	e := m.entry(line)
	m.DirLookups++
	h := m.home(line)
	// Request travels to the home directory.
	lat := m.p.L1Latency + m.rt(node, h) + m.p.CohDirectoryLatency

	if e.state == stateModified || e.state == stateExclusive {
		if e.owner == node {
			return 0, 0, fmt.Errorf("cohdsm: directory says node %d owns line %d but its cache does not hold it", node, line)
		}
		// Read miss on an owned line: intervene on the owner to learn
		// whether its copy is dirty (always under stateModified; under
		// stateExclusive only if it silently upgraded E→M), write a
		// dirty value back to home memory, downgrade the owner to S, and
		// clear the owner field — the directory has no owner once the
		// line is shared. A clean E copy downgrades with no writeback:
		// home memory is already current.
		m.Interventions++
		lat += m.rt(h, e.owner) + m.p.CohProtocolOverhead
		oc, ok := m.held[e.owner][line]
		if !ok {
			return 0, 0, fmt.Errorf("cohdsm: line %d owned by node %d which does not cache it", line, e.owner)
		}
		if oc.state == cacheModified && !m.bugs.SkipDowngradeWriteback {
			m.mem[line] = oc.val
			m.Writebacks++
		}
		m.held[e.owner][line] = cached{state: cacheShared, val: oc.val}
		e.sharers[e.owner] = true
		if !m.bugs.KeepOwnerAfterDowngrade {
			e.owner = noOwner
		}
	}
	lat += m.p.DRAMLatency // home memory (refreshed by any writeback) supplies data
	v := m.mem[line]
	if m.mesi && e.state == stateInvalid {
		// MESI: a cold read with no other holder takes the line
		// exclusive-clean — the bet that the reader writes next and can
		// then upgrade silently.
		m.ExclusiveGrants++
		e.state = stateExclusive
		e.owner = node
		m.held[node][line] = cached{state: cacheExclusive, val: v}
		return v, lat, nil
	}
	e.state = stateShared
	e.sharers[node] = true
	m.held[node][line] = cached{state: cacheShared, val: v}
	return v, lat, nil
}

// WriteLine performs one write of val and returns its latency.
func (m *Model) WriteLine(node int, line uint64, val uint64) (params.Duration, error) {
	return m.writeLine(node, line, val, false)
}

// writeLine is the write path. When costOnly is set the write preserves
// the line's current freshest value (an Access touch); otherwise it
// stores val.
func (m *Model) writeLine(node int, line uint64, val uint64, costOnly bool) (params.Duration, error) {
	if err := m.checkNode(node); err != nil {
		return 0, err
	}
	if c, present := m.held[node][line]; present && c.writable() {
		// Cache hit with write rights: no protocol traffic.
		if !costOnly {
			m.held[node][line] = cached{state: cacheModified, val: val}
		}
		return m.p.L1Latency, nil
	}
	if c, present := m.held[node][line]; present && c.state == cacheExclusive {
		// MESI's payoff: the exclusive-clean holder upgrades to M
		// silently — no directory traffic at all. The directory still
		// records stateExclusive with this owner, which is exactly what
		// that state means: one owner whose copy may be E or M.
		m.SilentUpgrades++
		if costOnly {
			val = c.val
		}
		m.held[node][line] = cached{state: cacheModified, val: val}
		return m.p.L1Latency, nil
	}

	e := m.entry(line)
	m.DirLookups++
	h := m.home(line)
	lat := m.p.L1Latency + m.rt(node, h) + m.p.CohDirectoryLatency

	// Write miss/upgrade: invalidate every other holder and take M. A
	// dirty holder's value is written back to home memory first, so the
	// line's freshest value survives even a cost-only rewrite; a clean E
	// copy is dropped with no writeback — home memory already matches.
	var worstRT params.Duration
	invalidated := 0
	invalidate := func(holder int) {
		if holder == node {
			return
		}
		if oc, ok := m.held[holder][line]; ok {
			if oc.writable() {
				m.mem[line] = oc.val
				m.Writebacks++
			}
			delete(m.held[holder], line)
		}
		if rt := m.rt(h, holder); rt > worstRT {
			worstRT = rt
		}
		invalidated++
	}
	switch e.state {
	case stateModified, stateExclusive:
		if e.owner == node {
			return 0, fmt.Errorf("cohdsm: directory says node %d owns line %d but its cache grants no write right", node, line)
		}
		invalidate(e.owner)
	case stateShared:
		for s := range e.sharers {
			invalidate(s)
		}
	}
	// Invalidations go out in parallel but each ack costs protocol
	// processing at the directory, so latency grows with the sharer
	// count — the scalability wall of inter-node coherency.
	lat += worstRT + params.Duration(invalidated)*m.p.CohProtocolOverhead + m.p.DRAMLatency
	m.Invalidations += uint64(invalidated)
	if m.fanout != nil {
		m.fanout.Observe(int64(invalidated))
	}

	if costOnly {
		// The freshest value: the node's own shared copy if it had one
		// (equal to memory by the S-copies invariant), else home memory,
		// which any dirty owner just wrote back.
		if c, present := m.held[node][line]; present {
			val = c.val
		} else {
			val = m.mem[line]
		}
	}
	e.state = stateModified
	e.owner = node
	e.sharers = make(map[int]bool)
	m.held[node][line] = cached{state: cacheModified, val: val}
	return lat, nil
}

func (m *Model) checkNode(node int) error {
	if node < 0 || node >= m.nodes {
		return fmt.Errorf("cohdsm: node %d outside domain of %d", node, m.nodes)
	}
	return nil
}

// HolderCount returns how many nodes currently cache the line (tests and
// diagnostics).
func (m *Model) HolderCount(line uint64) int {
	n := 0
	for _, h := range m.held {
		if _, ok := h[line]; ok {
			n++
		}
	}
	return n
}

// MemValue returns home memory's current value for a line (tests and the
// consistency lab; stale while a dirty owner exists).
func (m *Model) MemValue(line uint64) uint64 { return m.mem[line] }

// CheckInvariants verifies the directory-consistency invariants over
// every tracked line:
//
//   - single writer: at most one node holds a line writable, and only
//     with the directory in stateModified — or, in the MESI variant,
//     stateExclusive after a silent upgrade — naming it owner;
//   - owner hygiene: the owner field is noOwner whenever the line is
//     neither modified nor exclusive (cleared on every downgrade and
//     invalidation), and the sharer set is empty whenever it is owned
//     (so the set can never contain the owner);
//   - directory/cache agreement: in stateShared the sharer set and the
//     read-only holders are exactly the same nodes; in stateExclusive
//     the owner is the only holder, its copy E or M, and E only in the
//     MESI variant;
//   - value coherence: every shared copy equals home memory (writebacks
//     happened when the protocol required them), and so does every
//     exclusive-clean copy (E is granted clean and silently upgrades to
//     M on the first write).
func (m *Model) CheckInvariants() error {
	for line, e := range m.dir {
		writers := 0
		for i, h := range m.held {
			if c, ok := h[line]; ok && c.writable() {
				writers++
				owned := e.state == stateModified || e.state == stateExclusive
				if !owned || e.owner != i {
					return fmt.Errorf("cohdsm: node %d holds line %d writable but directory disagrees", i, line)
				}
			}
		}
		if writers > 1 {
			return fmt.Errorf("cohdsm: line %d has %d writers", line, writers)
		}
		switch e.state {
		case stateModified:
			if e.owner < 0 || e.owner >= m.nodes {
				return fmt.Errorf("cohdsm: line %d modified with invalid owner %d", line, e.owner)
			}
			if len(e.sharers) != 0 {
				return fmt.Errorf("cohdsm: line %d modified but sharer set has %d entries (must be empty, and never contain the owner)", line, len(e.sharers))
			}
			c, ok := m.held[e.owner][line]
			if !ok || !c.writable() {
				return fmt.Errorf("cohdsm: line %d modified but owner %d holds no writable copy", line, e.owner)
			}
			if m.HolderCount(line) > 1 {
				return fmt.Errorf("cohdsm: line %d modified with %d holders", line, m.HolderCount(line))
			}
		case stateExclusive:
			if !m.mesi {
				return fmt.Errorf("cohdsm: line %d exclusive in the MSI variant", line)
			}
			if e.owner < 0 || e.owner >= m.nodes {
				return fmt.Errorf("cohdsm: line %d exclusive with invalid owner %d", line, e.owner)
			}
			if len(e.sharers) != 0 {
				return fmt.Errorf("cohdsm: line %d exclusive but sharer set has %d entries", line, len(e.sharers))
			}
			c, ok := m.held[e.owner][line]
			if !ok || c.state == cacheShared {
				return fmt.Errorf("cohdsm: line %d exclusive but owner %d holds no E or M copy", line, e.owner)
			}
			if c.state == cacheExclusive && c.val != m.mem[line] {
				return fmt.Errorf("cohdsm: line %d exclusive-clean at node %d caches %d but home memory has %d", line, e.owner, c.val, m.mem[line])
			}
			if m.HolderCount(line) > 1 {
				return fmt.Errorf("cohdsm: line %d exclusive with %d holders", line, m.HolderCount(line))
			}
		case stateShared:
			if e.owner != noOwner {
				return fmt.Errorf("cohdsm: line %d shared but owner field %d not cleared on downgrade", line, e.owner)
			}
			for s := range e.sharers {
				if s < 0 || s >= m.nodes {
					return fmt.Errorf("cohdsm: line %d sharer %d outside domain", line, s)
				}
				c, ok := m.held[s][line]
				if !ok {
					return fmt.Errorf("cohdsm: line %d lists sharer %d which caches nothing", line, s)
				}
				if c.state != cacheShared {
					return fmt.Errorf("cohdsm: line %d shared but sharer %d holds a stronger right", line, s)
				}
				if c.val != m.mem[line] {
					return fmt.Errorf("cohdsm: line %d sharer %d caches %d but home memory has %d (missing writeback)", line, s, c.val, m.mem[line])
				}
			}
			for i, h := range m.held {
				if _, ok := h[line]; ok && !e.sharers[i] {
					return fmt.Errorf("cohdsm: node %d caches shared line %d but is not in the sharer set", i, line)
				}
			}
		case stateInvalid:
			if e.owner != noOwner || len(e.sharers) != 0 || m.HolderCount(line) != 0 {
				return fmt.Errorf("cohdsm: line %d invalid but not empty", line)
			}
		}
	}
	return nil
}
