package db

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/params"
)

func newTable(t *testing.T) (*Table, *core.System) {
	t.Helper()
	sys, err := core.NewSystem(params.Default())
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := Create(region, "test", 0)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, sys
}

func freeAcc() memmodel.Accessor { return memmodel.Local{P: params.Default()} }

func TestCreateValidation(t *testing.T) {
	if _, err := Create(nil, "x", 0); err == nil {
		t.Error("nil region accepted")
	}
	sys, err := core.NewSystem(params.Default())
	if err != nil {
		t.Fatal(err)
	}
	region, _ := sys.Region(1)
	if _, err := Create(region, "", 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Create(region, "x", 2); err == nil {
		t.Error("fanout 2 accepted")
	}
	tbl, err := Create(region, "orders", 0)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name() != "orders" || tbl.Index().MaxChildren() != DefaultFanout {
		t.Error("table metadata wrong")
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	tbl, _ := newTable(t)
	acc := freeAcc()
	for k := uint64(1); k <= 100; k++ {
		if err := tbl.Put(k, []byte(fmt.Sprintf("row-%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Rows != 100 {
		t.Errorf("Rows = %d", tbl.Rows)
	}
	for k := uint64(1); k <= 100; k++ {
		v, found, cost, err := tbl.Get(k, acc)
		if err != nil {
			t.Fatal(err)
		}
		if !found || string(v) != fmt.Sprintf("row-%03d", k) {
			t.Fatalf("Get(%d) = %q, %v", k, v, found)
		}
		if cost <= 0 {
			t.Error("query charged nothing")
		}
	}
	if _, found, _, err := tbl.Get(999, acc); err != nil || found {
		t.Error("phantom row found")
	}
}

func TestPutReplaces(t *testing.T) {
	tbl, _ := newTable(t)
	acc := freeAcc()
	if err := tbl.Put(7, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Put(7, []byte("second, longer value")); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows != 1 {
		t.Errorf("Rows = %d after replace", tbl.Rows)
	}
	v, found, _, err := tbl.Get(7, acc)
	if err != nil || !found || string(v) != "second, longer value" {
		t.Errorf("Get = %q, %v, %v", v, found, err)
	}
}

func TestDelete(t *testing.T) {
	tbl, _ := newTable(t)
	acc := freeAcc()
	tbl.Put(1, []byte("a"))
	tbl.Put(2, []byte("b"))
	if err := tbl.Delete(1); err != nil {
		t.Fatal(err)
	}
	if tbl.Rows != 1 {
		t.Errorf("Rows = %d", tbl.Rows)
	}
	if _, found, _, _ := tbl.Get(1, acc); found {
		t.Error("deleted row found")
	}
	if err := tbl.Delete(1); err == nil {
		t.Error("double delete accepted")
	}
	if err := tbl.Delete(42); err == nil {
		t.Error("delete of absent key accepted")
	}
	// Re-insert after delete.
	if err := tbl.Put(1, []byte("again")); err != nil {
		t.Fatal(err)
	}
	if v, found, _, _ := tbl.Get(1, acc); !found || string(v) != "again" {
		t.Error("re-insert after delete broken")
	}
}

func TestEmptyValue(t *testing.T) {
	tbl, _ := newTable(t)
	if err := tbl.Put(5, nil); err != nil {
		t.Fatal(err)
	}
	v, found, _, err := tbl.Get(5, freeAcc())
	if err != nil || !found || len(v) != 0 {
		t.Errorf("empty row = %q, %v, %v", v, found, err)
	}
}

func TestScanAndCount(t *testing.T) {
	tbl, _ := newTable(t)
	acc := freeAcc()
	for k := uint64(0); k < 50; k++ {
		tbl.Put(k*10, []byte(fmt.Sprintf("v%d", k*10)))
	}
	tbl.Delete(100)
	rows, cost, err := tbl.Scan(95, 205, acc)
	if err != nil {
		t.Fatal(err)
	}
	// keys 100 (deleted), 110..200 -> 10 live rows.
	if len(rows) != 10 {
		t.Fatalf("scan returned %d rows", len(rows))
	}
	if rows[0].Key != 110 || string(rows[0].Value) != "v110" {
		t.Errorf("first row = %+v", rows[0])
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Key <= rows[i-1].Key {
			t.Error("scan out of order")
		}
	}
	if cost <= 0 {
		t.Error("scan charged nothing")
	}
	n, _ := tbl.Count(95, 205, acc)
	if n != 10 {
		t.Errorf("Count = %d", n)
	}
}

func TestRowsSpillToRemoteNodes(t *testing.T) {
	// A table bigger than the node's private memory lands rows on donor
	// nodes; queries still return the right bytes.
	p := params.Default()
	p.MemPerNode = 256 << 20
	p.PrivateMemPerNode = 64 << 20
	p.OSReserveBytes = 8 << 20
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	region, _ := sys.Region(1)
	tbl, err := Create(region, "big", 0)
	if err != nil {
		t.Fatal(err)
	}
	val := bytes.Repeat([]byte{0xAB}, 1<<20)
	for k := uint64(0); k < 150; k++ { // 150 MB of rows in a 64 MB private zone
		if err := tbl.Put(k, val); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if region.Agent().BorrowedBytes() == 0 {
		t.Fatal("table never spilled to remote memory")
	}
	v, found, _, err := tbl.Get(149, freeAcc())
	if err != nil || !found || !bytes.Equal(v, val) {
		t.Error("remote-resident row corrupted")
	}
}

func TestQueryCostOrdering(t *testing.T) {
	// The same query is cheapest on local memory, pricier on remote,
	// and (cold, scattered) prohibitive on swap with a tiny residency.
	tbl, _ := newTable(t)
	for k := uint64(0); k < 5000; k++ {
		tbl.Put(k, []byte("0123456789abcdef"))
	}
	p := params.Default()
	costOf := func(acc memmodel.Accessor) params.Duration {
		var total params.Duration
		for k := uint64(0); k < 5000; k += 97 {
			_, _, c, err := tbl.Get(k, acc)
			if err != nil {
				t.Fatal(err)
			}
			total += c
		}
		return total
	}
	local := costOf(memmodel.Local{P: p})
	remote := costOf(memmodel.Remote{P: p, Hops: 1})
	sw, err := memmodel.NewSwap(p, swapDevice{}, 32)
	if err != nil {
		t.Fatal(err)
	}
	swapCost := costOf(sw)
	if !(local < remote && remote < swapCost) {
		t.Errorf("cost ordering violated: local %d, remote %d, swap %d", local, remote, swapCost)
	}
}

type swapDevice struct{}

func (swapDevice) FaultCost() params.Duration     { return 200 * params.Microsecond }
func (swapDevice) WritebackCost() params.Duration { return 200 * params.Microsecond }
func (swapDevice) Name() string                   { return "test-swap" }

func TestPutGetMatchesReferenceProperty(t *testing.T) {
	tbl, _ := newTable(t)
	acc := freeAcc()
	ref := map[uint64][]byte{}
	f := func(ops []uint16) bool {
		for _, op := range ops {
			key := uint64(op % 256)
			switch op % 3 {
			case 0, 1:
				val := []byte(fmt.Sprintf("val-%d-%d", key, op))
				if err := tbl.Put(key, val); err != nil {
					return false
				}
				ref[key] = val
			case 2:
				if _, ok := ref[key]; ok {
					if err := tbl.Delete(key); err != nil {
						return false
					}
					delete(ref, key)
				}
			}
		}
		if tbl.Rows != uint64(len(ref)) {
			return false
		}
		for k, want := range ref {
			got, found, _, err := tbl.Get(k, acc)
			if err != nil || !found || !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFootprint(t *testing.T) {
	tbl, _ := newTable(t)
	if tbl.FootprintBytes() != 0 {
		t.Error("empty table has a footprint")
	}
	tbl.Put(1, make([]byte, 1000))
	if tbl.FootprintBytes() < 1000 {
		t.Errorf("footprint %d below stored bytes", tbl.FootprintBytes())
	}
}

func TestHashIndexBasics(t *testing.T) {
	if _, err := NewHashIndex(0); err == nil {
		t.Error("zero-capacity index accepted")
	}
	h, err := NewHashIndex(100)
	if err != nil {
		t.Fatal(err)
	}
	acc := freeAcc()
	for k := uint64(0); k < 100; k++ {
		h.Insert(k, k*7)
	}
	if h.Size != 100 {
		t.Errorf("Size = %d", h.Size)
	}
	for k := uint64(0); k < 100; k++ {
		v, found, cost, accs := h.Search(k, acc)
		if !found || v != k*7 {
			t.Fatalf("Search(%d) = %d, %v", k, v, found)
		}
		if cost <= 0 || accs == 0 {
			t.Error("search charged nothing")
		}
	}
	if _, found, _, _ := h.Search(999, acc); found {
		t.Error("phantom key found")
	}
	// Update in place.
	h.Insert(5, 42)
	if v, ok := h.Lookup(5); !ok || v != 42 {
		t.Error("update lost")
	}
	if h.Size != 100 {
		t.Error("update changed size")
	}
	if h.MeanProbes() < 1 || h.MeanProbes() > 3 {
		t.Errorf("mean probes = %v, load factor discipline broken", h.MeanProbes())
	}
}

func TestHashIndexGrowth(t *testing.T) {
	h, err := NewHashIndex(1)
	if err != nil {
		t.Fatal(err)
	}
	before := h.FootprintBytes()
	for k := uint64(0); k < 10000; k++ {
		h.Insert(k, k)
	}
	if h.FootprintBytes() <= before {
		t.Error("table never grew")
	}
	for k := uint64(0); k < 10000; k += 373 {
		if v, ok := h.Lookup(k); !ok || v != k {
			t.Fatalf("key %d lost across rehashes", k)
		}
	}
	// Load factor maintained.
	if float64(h.Size) > 0.7*float64(h.FootprintBytes()/HashBucketBytes) {
		t.Error("load factor exceeded")
	}
}

func TestHashIndexMatchesReferenceProperty(t *testing.T) {
	h, err := NewHashIndex(16)
	if err != nil {
		t.Fatal(err)
	}
	ref := map[uint64]uint64{}
	f := func(ops []uint32) bool {
		for _, op := range ops {
			k, v := uint64(op%4096), uint64(op)
			h.Insert(k, v)
			ref[k] = v
		}
		if h.Size != len(ref) {
			return false
		}
		for k, want := range ref {
			if got, ok := h.Lookup(k); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFootnote3HashVsBtree(t *testing.T) {
	// The paper's footnote 3: in remote memory, a hash index beats the
	// b-tree by an order of magnitude (constant probes vs a logarithmic
	// walk); under swap the two converge (both about one fault per
	// lookup, the b-tree's upper levels staying resident).
	p := params.Default()
	const keys = 100000
	h, err := NewHashIndex(keys)
	if err != nil {
		t.Fatal(err)
	}
	bt, _ := newTable(t)
	for k := uint64(0); k < keys; k++ {
		h.Insert(k*2, k)
		bt.Index().InsertKV(k*2, k)
	}
	remote := memmodel.Remote{P: p, Hops: 1}
	var hCost, bCost params.Duration
	for k := uint64(0); k < keys; k += 97 {
		_, _, c, _ := h.Search(k*2, remote)
		hCost += c
		_, _, c2, _ := bt.Index().SearchKV(k*2, remote)
		bCost += c2
	}
	if float64(bCost)/float64(hCost) < 4 {
		t.Errorf("hash advantage in remote memory only %.1fx, footnote 3 promises much more", float64(bCost)/float64(hCost))
	}
}
