package db

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/params"
)

// TestColumnarScanMatchesIndexScan is the oracle: after a churn of
// inserts, replacements, and deletes, the columnar bulk scan must
// return exactly the rows the index walk returns, in the same order.
func TestColumnarScanMatchesIndexScan(t *testing.T) {
	tbl, _ := newTable(t)
	for k := uint64(0); k < 700; k++ {
		if err := tbl.Put(k*3, []byte(fmt.Sprintf("row-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(0); k < 700; k += 5 {
		if err := tbl.Delete(k * 3); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k < 700; k += 7 {
		if err := tbl.Put(k*3, []byte(fmt.Sprintf("replaced-%d", k))); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi := uint64(300), uint64(1500)
	want, _, err := tbl.Scan(lo, hi, freeAcc())
	if err != nil {
		t.Fatal(err)
	}
	wantN, _ := tbl.Count(lo, hi, freeAcc())

	pricer, err := memmodel.NewBulkModel(params.Default(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetBulkPricer(pricer)
	got, bulkCost, err := tbl.Scan(lo, hi, freeAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("bulk scan returned %d rows, index scan %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("row %d: bulk (%d, %q) vs index (%d, %q)",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
	if bulkCost <= 0 {
		t.Error("bulk scan priced at zero")
	}
	if gotN, _ := tbl.Count(lo, hi, freeAcc()); gotN != wantN {
		t.Errorf("bulk count %d, index count %d", gotN, wantN)
	}

	// Unsetting the pricer restores the index path bit-for-bit.
	tbl.SetBulkPricer(nil)
	again, _, err := tbl.Scan(lo, hi, freeAcc())
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(want) {
		t.Error("index path changed after bulk detour")
	}
}

// TestColumnarScanCheaperThanIndexWalk prices the same range query both
// ways at the same mesh distance. The index walk pays a dependent
// round trip per probe and per row word; the columnar sweep moves the
// same information in a handful of bursts.
func TestColumnarScanCheaperThanIndexWalk(t *testing.T) {
	tbl, _ := newTable(t)
	const rows = 2000
	for k := uint64(0); k < rows; k++ {
		if err := tbl.Put(k, []byte("0123456789abcdef0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	p := params.Default()
	_, indexCost, err := tbl.Scan(0, rows, memmodel.Remote{P: p, Hops: 1})
	if err != nil {
		t.Fatal(err)
	}
	pricer, err := memmodel.NewBulkModel(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetBulkPricer(pricer)
	bulkRows, bulkCost, err := tbl.Scan(0, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bulkRows) != rows {
		t.Fatalf("bulk scan returned %d of %d rows", len(bulkRows), rows)
	}
	if bulkCost*2 >= indexCost {
		t.Errorf("bulk scan %d ps vs index walk %d ps; want at least 2x cheaper", bulkCost, indexCost)
	}
	t.Logf("index walk %d ps, columnar bulk scan %d ps (%.1fx)",
		indexCost, bulkCost, float64(indexCost)/float64(bulkCost))

	// Count needs no row reads at all: one column sweep.
	n, countCost := tbl.Count(0, rows, nil)
	if n != rows {
		t.Errorf("bulk count = %d", n)
	}
	if countCost >= bulkCost {
		t.Error("count not cheaper than the row-materializing scan")
	}
}

// TestColumnarSegmentGrowth crosses segment boundaries: more rows than
// one 512-slot segment holds, scanned correctly across segments.
func TestColumnarSegmentGrowth(t *testing.T) {
	tbl, _ := newTable(t)
	const rows = SegmentRows*2 + 37
	for k := uint64(0); k < rows; k++ {
		if err := tbl.Put(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(tbl.segs) != 3 {
		t.Fatalf("%d rows sit in %d segments; want 3", rows, len(tbl.segs))
	}
	pricer, err := memmodel.NewBulkModel(params.Default(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tbl.SetBulkPricer(pricer)
	got, _, err := tbl.Scan(0, rows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != rows {
		t.Fatalf("scan across segments returned %d of %d rows", len(got), rows)
	}
	for i, r := range got {
		if r.Key != uint64(i) || len(r.Value) != 1 || r.Value[0] != byte(i) {
			t.Fatalf("row %d = (%d, %v)", i, r.Key, r.Value)
		}
	}
}
