package db

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/params"
)

// HashIndex is the alternative the paper's footnote 3 names: "in-memory
// databases usually implement hash indexes, as this structure presents
// even better performance when it is stored in memory. Thus, by using
// b-trees in this study, we relinquish the advantage over remote swap
// provided by hash indexes when used in remote memory."
//
// It is an open-addressing, linear-probing table of 16-byte buckets in a
// modeled address space: a lookup costs a couple of probes at constant
// remote latency, an order of magnitude fewer memory touches than a
// B-tree walk — exactly the advantage the footnote concedes. Range
// queries, of course, do not exist here; that is what the B-tree buys.
type HashIndex struct {
	buckets []hbucket
	mask    uint64

	// Size counts live keys; Probes and Lookups feed mean-probe stats.
	Size    int
	Probes  uint64
	Lookups uint64
}

// hbucket is one modeled 16-byte slot: 8-byte key, 8-byte payload.
type hbucket struct {
	key  uint64
	val  uint64
	live bool
}

// HashBucketBytes is the modeled bucket size.
const HashBucketBytes = 16

// maxLoad is the resize threshold (load factor).
const maxLoad = 0.7

// NewHashIndex creates a table sized for the expected key count.
func NewHashIndex(expected int) (*HashIndex, error) {
	if expected < 1 {
		return nil, fmt.Errorf("db: hash index for %d keys", expected)
	}
	capacity := 16
	for float64(expected) > maxLoad*float64(capacity) {
		capacity *= 2
	}
	return &HashIndex{buckets: make([]hbucket, capacity), mask: uint64(capacity - 1)}, nil
}

// splitmix64 is the probe hash — cheap, well-mixed, deterministic.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// bucketAddr returns the modeled address of bucket i.
func (h *HashIndex) bucketAddr(i uint64) uint64 { return i * HashBucketBytes }

// Insert adds or updates a key (function only; population is untimed,
// like the b-tree's).
func (h *HashIndex) Insert(key, val uint64) {
	if float64(h.Size+1) > maxLoad*float64(len(h.buckets)) {
		h.grow()
	}
	i := splitmix64(key) & h.mask
	for {
		b := &h.buckets[i]
		if !b.live {
			*b = hbucket{key: key, val: val, live: true}
			h.Size++
			return
		}
		if b.key == key {
			b.val = val
			return
		}
		i = (i + 1) & h.mask
	}
}

func (h *HashIndex) grow() {
	old := h.buckets
	h.buckets = make([]hbucket, 2*len(old))
	h.mask = uint64(len(h.buckets) - 1)
	h.Size = 0
	for _, b := range old {
		if b.live {
			h.Insert(b.key, b.val)
		}
	}
}

// Search looks a key up, charging one read per probed bucket to mem.
// Linear probing keeps consecutive probes on the same page, so even the
// swap configuration usually pays for one page per lookup.
func (h *HashIndex) Search(key uint64, mem memmodel.Accessor) (val uint64, found bool, cost params.Duration, accesses uint64) {
	h.Lookups++
	i := splitmix64(key) & h.mask
	for {
		cost += mem.Access(h.bucketAddr(i), false)
		accesses++
		h.Probes++
		b := h.buckets[i]
		if !b.live {
			return 0, false, cost, accesses
		}
		if b.key == key {
			return b.val, true, cost, accesses
		}
		i = (i + 1) & h.mask
	}
}

// SearchBatch is Search pricing through the batched access engine: the
// probe sequence is recorded into b and priced in one memmodel.Batch
// call, with identical results and probe statistics. b must be empty
// between calls.
func (h *HashIndex) SearchBatch(key uint64, mem memmodel.Accessor, b *memmodel.Batcher) (val uint64, found bool, cost params.Duration, accesses uint64) {
	h.Lookups++
	i := splitmix64(key) & h.mask
	for {
		b.Read(h.bucketAddr(i))
		h.Probes++
		bk := h.buckets[i]
		if !bk.live {
			accesses = uint64(b.Len())
			return 0, false, b.Flush(mem), accesses
		}
		if bk.key == key {
			accesses = uint64(b.Len())
			return bk.val, true, b.Flush(mem), accesses
		}
		i = (i + 1) & h.mask
	}
}

// Lookup is Search without an accessor (function only).
func (h *HashIndex) Lookup(key uint64) (uint64, bool) {
	i := splitmix64(key) & h.mask
	for {
		b := h.buckets[i]
		if !b.live {
			return 0, false
		}
		if b.key == key {
			return b.val, true
		}
		i = (i + 1) & h.mask
	}
}

// FootprintBytes returns the modeled table size.
func (h *HashIndex) FootprintBytes() uint64 {
	return uint64(len(h.buckets)) * HashBucketBytes
}

// MeanProbes returns the average probes per lookup so far.
func (h *HashIndex) MeanProbes() float64 {
	if h.Lookups == 0 {
		return 0
	}
	return float64(h.Probes) / float64(h.Lookups)
}
