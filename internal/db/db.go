// Package db is the in-memory database of the paper's conclusions: "our
// short-term objective is to continue testing the prototype with real
// applications or even databases … store indexes or the entire database
// in memory, and then study the execution time for different queries."
//
// A Table keeps both its B-tree index and its row storage inside a
// memory region — which means both can live in memory borrowed from
// other nodes, far beyond one motherboard's capacity. Rows move through
// the region's functional path (the bytes really land on the owning
// node); queries charge their index probes and row reads to a
// memmodel.Accessor, so the same query can be priced under local memory,
// the prototype's remote memory, or remote swap.
package db

import (
	"fmt"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/vm"
)

// Table is one key-value table: a B-tree index mapping uint64 keys to
// row pointers, plus length-prefixed rows in region memory.
type Table struct {
	region *core.Region
	index  *btree.Tree
	name   string
	batch  memmodel.Batcher // query-path scratch; Tables are not goroutine-safe

	// Columnar segment log (columnar.go): key and row-pointer columns
	// maintained beside the index, scanned by bulk bursts when a pricer
	// is set.
	segs     []colSeg
	slots    map[uint64]int
	nextSlot int
	pricer   memmodel.BulkPricer

	// Rows counts live rows; PutBytes accumulates stored payload bytes.
	Rows     uint64
	PutBytes uint64
}

// DefaultFanout is the index fanout: the Figure 9 optimum, one node per
// page.
const DefaultFanout = 168

// Create makes an empty table in the region. fanout 0 selects the
// default.
func Create(region *core.Region, name string, fanout int) (*Table, error) {
	if region == nil {
		return nil, fmt.Errorf("db: nil region")
	}
	if name == "" {
		return nil, fmt.Errorf("db: empty table name")
	}
	if fanout == 0 {
		fanout = DefaultFanout
	}
	idx, err := btree.New(fanout)
	if err != nil {
		return nil, err
	}
	return &Table{region: region, index: idx, name: name}, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Index exposes the underlying index (for footprint inspection).
func (t *Table) Index() *btree.Tree { return t.index }

// Put stores (or replaces) a row. The row is allocated in the region —
// locally while local memory lasts, then on donor nodes — and the index
// points at it.
func (t *Table) Put(key uint64, value []byte) error {
	if old, ok := t.index.Lookup(key); ok && old != 0 {
		if err := t.freeRow(vm.Virt(old)); err != nil {
			return err
		}
		if err := t.tombstoneColumn(key); err != nil {
			return err
		}
		t.Rows--
	}
	ptr, err := t.region.Malloc(8 + uint64(len(value)))
	if err != nil {
		return err
	}
	if err := t.region.WriteUint64(ptr, uint64(len(value))); err != nil {
		return err
	}
	if len(value) > 0 {
		if err := t.region.Write(ptr+8, value); err != nil {
			return err
		}
	}
	t.index.InsertKV(key, uint64(ptr))
	if err := t.appendColumn(key, ptr); err != nil {
		return err
	}
	t.Rows++
	t.PutBytes += uint64(len(value))
	return nil
}

// Delete removes a row (tombstone in the index: payload zero).
func (t *Table) Delete(key uint64) error {
	old, ok := t.index.Lookup(key)
	if !ok || old == 0 {
		return fmt.Errorf("db: %s has no row %d", t.name, key)
	}
	if err := t.freeRow(vm.Virt(old)); err != nil {
		return err
	}
	t.index.InsertKV(key, 0)
	if err := t.tombstoneColumn(key); err != nil {
		return err
	}
	t.Rows--
	return nil
}

func (t *Table) freeRow(ptr vm.Virt) error {
	return t.region.Free(ptr)
}

// Get retrieves a row, charging the index walk and the row read to acc
// through the batched access engine. found is false for absent keys and
// tombstones.
func (t *Table) Get(key uint64, acc memmodel.Accessor) (value []byte, found bool, cost params.Duration, err error) {
	rowPtr, ok, c, _ := t.index.SearchKVBatch(key, acc, &t.batch)
	cost = c
	if !ok || rowPtr == 0 {
		return nil, false, cost, nil
	}
	value, rc, err := t.readRow(vm.Virt(rowPtr), acc)
	cost += rc
	if err != nil {
		return nil, false, cost, err
	}
	return value, true, cost, nil
}

// readRow loads a length-prefixed row, charging one access per word.
// The accesses — length prefix, then each payload word in order — are
// batched and priced in one memmodel.Batch call.
func (t *Table) readRow(ptr vm.Virt, acc memmodel.Accessor) ([]byte, params.Duration, error) {
	t.batch.Read(uint64(ptr))
	n, err := t.region.ReadUint64(ptr)
	if err != nil {
		return nil, t.batch.Flush(acc), err
	}
	buf := make([]byte, n)
	if n > 0 {
		if err := t.region.Read(ptr+8, buf); err != nil {
			return nil, t.batch.Flush(acc), err
		}
		for off := uint64(0); off < n; off += 8 {
			t.batch.Read(uint64(ptr) + 8 + off)
		}
	}
	return buf, t.batch.Flush(acc), nil
}

// ScanResult is one row yielded by Scan.
type ScanResult struct {
	Key   uint64
	Value []byte
}

// Scan returns every live row with lo <= key <= hi in key order. With
// no bulk pricer it walks the index and charges each probe and row
// word to acc; with SetBulkPricer it sweeps the columnar segments as
// bulk bursts instead and acc goes unused.
func (t *Table) Scan(lo, hi uint64, acc memmodel.Accessor) (rows []ScanResult, cost params.Duration, err error) {
	if t.pricer != nil {
		return t.scanBulk(lo, hi)
	}
	var ptrs []struct {
		key uint64
		ptr uint64
	}
	c, _ := t.index.RangeScanBatch(lo, hi, acc, &t.batch, func(k uint64) {
		if v, ok := t.index.Lookup(k); ok && v != 0 {
			ptrs = append(ptrs, struct {
				key uint64
				ptr uint64
			}{k, v})
		}
	})
	cost = c
	for _, p := range ptrs {
		val, rc, rerr := t.readRow(vm.Virt(p.ptr), acc)
		cost += rc
		if rerr != nil {
			return rows, cost, rerr
		}
		rows = append(rows, ScanResult{Key: p.key, Value: val})
	}
	return rows, cost, nil
}

// Count returns the number of live keys in [lo, hi]. Index-only on the
// scalar path; one columnar segment sweep when a bulk pricer is set.
func (t *Table) Count(lo, hi uint64, acc memmodel.Accessor) (n uint64, cost params.Duration) {
	if t.pricer != nil {
		return t.countBulk(lo, hi)
	}
	c, _ := t.index.RangeScanBatch(lo, hi, acc, &t.batch, func(k uint64) {
		if v, ok := t.index.Lookup(k); ok && v != 0 {
			n++
		}
	})
	return n, c
}

// FootprintBytes reports the table's total memory: index, rows
// (including the length prefixes), and the columnar segments.
func (t *Table) FootprintBytes() uint64 {
	return t.index.FootprintBytes() + t.PutBytes + 8*t.Rows + uint64(len(t.segs))*2*SegmentBytes
}
