// Columnar segments: beside the row store and the B-tree index, a
// table maintains two append-only columns in region memory — the key
// column and the row-pointer column — packed into contiguous segments.
// Range queries then have two shapes: the pointer-chasing index walk
// (one dependent access per level, the shape bulk transfer cannot
// help), and the columnar scan — read whole segments with scatter-
// gather bursts and filter in the core. With a BulkPricer set, Scan and
// Count take the second path; this is the workload the new bulk data
// plane exists for.
package db

import (
	"fmt"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/vm"
)

// SegmentRows is how many column entries one segment holds. A segment
// is one page: 512 × 8-byte values = 4 KiB, 64 cache lines.
const SegmentRows = 512

// SegmentBytes is one column segment's size.
const SegmentBytes = SegmentRows * 8

// colSeg is one segment pair: a page of keys and a page of row
// pointers at the same slot positions.
type colSeg struct {
	keys vm.Virt
	ptrs vm.Virt
}

// SetBulkPricer routes the table's Scan and Count through the columnar
// segments, pricing segment and row-run reads as bulk bursts on the
// given pricer. A nil pricer restores the index-walk path.
func (t *Table) SetBulkPricer(p memmodel.BulkPricer) { t.pricer = p }

// appendColumn records a newly stored row in the columns, allocating a
// fresh segment pair when the current one fills.
func (t *Table) appendColumn(key uint64, ptr vm.Virt) error {
	slot := t.nextSlot
	if slot%SegmentRows == 0 {
		kseg, err := t.region.Malloc(SegmentBytes)
		if err != nil {
			return err
		}
		pseg, err := t.region.Malloc(SegmentBytes)
		if err != nil {
			return err
		}
		t.segs = append(t.segs, colSeg{keys: kseg, ptrs: pseg})
	}
	seg := t.segs[slot/SegmentRows]
	off := vm.Virt(slot % SegmentRows * 8)
	if err := t.region.WriteUint64(seg.keys+off, key); err != nil {
		return err
	}
	if err := t.region.WriteUint64(seg.ptrs+off, uint64(ptr)); err != nil {
		return err
	}
	if t.slots == nil {
		t.slots = make(map[uint64]int)
	}
	t.slots[key] = slot
	t.nextSlot++
	return nil
}

// tombstoneColumn zeroes a key's pointer slot (row deleted or
// replaced); the slot stays allocated, filtered out by scans.
func (t *Table) tombstoneColumn(key uint64) error {
	slot, ok := t.slots[key]
	if !ok {
		return fmt.Errorf("db: %s: key %d has no column slot", t.name, key)
	}
	seg := t.segs[slot/SegmentRows]
	off := vm.Virt(slot % SegmentRows * 8)
	if err := t.region.WriteUint64(seg.ptrs+off, 0); err != nil {
		return err
	}
	delete(t.slots, key)
	return nil
}

// scanColumns bulk-reads every column segment, filters [lo, hi] live
// entries, and returns them key-sorted along with the priced cost of
// the segment reads.
func (t *Table) scanColumns(lo, hi uint64) (matches []scanMatch, cost params.Duration, err error) {
	var kbuf, pbuf [SegmentBytes]byte
	for si, seg := range t.segs {
		used := SegmentRows
		if si == len(t.segs)-1 {
			used = t.nextSlot - si*SegmentRows
		}
		nb := used * 8
		lines := (nb + int(params.CacheLineSize) - 1) / int(params.CacheLineSize)
		// Two segment reads (keys, pointers), each one bulk burst.
		cost += t.pricer.BulkRead(lines) + t.pricer.BulkRead(lines)
		if err := t.region.Read(seg.keys, kbuf[:nb]); err != nil {
			return nil, cost, err
		}
		if err := t.region.Read(seg.ptrs, pbuf[:nb]); err != nil {
			return nil, cost, err
		}
		for i := 0; i < used; i++ {
			k := leUint64(kbuf[i*8:])
			p := leUint64(pbuf[i*8:])
			if p == 0 || k < lo || k > hi {
				continue
			}
			matches = append(matches, scanMatch{key: k, ptr: vm.Virt(p)})
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i].key < matches[j].key })
	return matches, cost, nil
}

type scanMatch struct {
	key uint64
	ptr vm.Virt
}

// scanBulk is the columnar Scan: segment sweep for the matches, then
// the matched rows' bytes gathered as coalesced bulk runs — physically
// adjacent rows (the common case: rows land in allocation order) merge
// into one burst.
func (t *Table) scanBulk(lo, hi uint64) (rows []ScanResult, cost params.Duration, err error) {
	matches, cost, err := t.scanColumns(lo, hi)
	if err != nil || len(matches) == 0 {
		return nil, cost, err
	}
	// Row extents, then line-granular interval merge in address order.
	type extent struct {
		start, end uint64 // line-aligned byte addresses in the region
	}
	extents := make([]extent, len(matches))
	values := make([][]byte, len(matches))
	for i, m := range matches {
		n, err := t.region.ReadUint64(m.ptr)
		if err != nil {
			return nil, cost, err
		}
		buf := make([]byte, n)
		if n > 0 {
			if err := t.region.Read(m.ptr+8, buf); err != nil {
				return nil, cost, err
			}
		}
		values[i] = buf
		line := uint64(params.CacheLineSize)
		extents[i] = extent{
			start: uint64(m.ptr) / line * line,
			end:   (uint64(m.ptr) + 8 + n + line - 1) / line * line,
		}
	}
	sort.Slice(extents, func(i, j int) bool { return extents[i].start < extents[j].start })
	runStart, runEnd := extents[0].start, extents[0].end
	charge := func() {
		cost += t.pricer.BulkRead(int((runEnd - runStart) / uint64(params.CacheLineSize)))
	}
	for _, e := range extents[1:] {
		if e.start <= runEnd { // adjacent or overlapping: same burst
			if e.end > runEnd {
				runEnd = e.end
			}
			continue
		}
		charge()
		runStart, runEnd = e.start, e.end
	}
	charge()

	rows = make([]ScanResult, len(matches))
	for i, m := range matches {
		rows[i] = ScanResult{Key: m.key, Value: values[i]}
	}
	return rows, cost, nil
}

// countBulk is the columnar Count: one segment sweep, no row reads.
func (t *Table) countBulk(lo, hi uint64) (uint64, params.Duration) {
	matches, cost, err := t.scanColumns(lo, hi)
	if err != nil {
		return 0, cost
	}
	return uint64(len(matches)), cost
}

// leUint64 decodes the little-endian words the region's word accessors
// store.
func leUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}
