package params

import (
	"errors"
	"strings"
	"testing"
)

func TestWindowModeParseRoundTrip(t *testing.T) {
	for _, mode := range []WindowMode{WindowUniform, WindowDistance, WindowElide} {
		got, err := ParseWindowMode(mode.String())
		if err != nil {
			t.Fatalf("ParseWindowMode(%q): %v", mode.String(), err)
		}
		if got != mode {
			t.Errorf("ParseWindowMode(%q) = %v, want %v", mode.String(), got, mode)
		}
		if !mode.Valid() {
			t.Errorf("%v.Valid() = false", mode)
		}
	}
	if got, err := ParseWindowMode(""); err != nil || got != WindowElide {
		t.Errorf("ParseWindowMode(\"\") = %v, %v; want the elide default", got, err)
	}
	if _, err := ParseWindowMode("sideways"); err == nil {
		t.Error("ParseWindowMode accepted an unknown mode")
	}
	if WindowMode(99).Valid() {
		t.Error("WindowMode(99).Valid() = true")
	}
}

func TestLinkLatSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"x=100ns",
		"y=140ns",
		"x=100ns,y=140ns",
		"edge=1.0-2.0:250ns",
		"x=100ns,y=140ns,edge=1.0-2.0:250ns,edge=0.1-0.2:80ns",
	} {
		s, err := ParseLinkLat(spec)
		if err != nil {
			t.Fatalf("ParseLinkLat(%q): %v", spec, err)
		}
		if s.Empty() {
			t.Fatalf("ParseLinkLat(%q) parsed to the empty spec", spec)
		}
		if got := s.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		again, err := ParseLinkLat(s.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", s.String(), err)
		}
		if again.String() != s.String() {
			t.Errorf("second round trip diverged: %q vs %q", again.String(), s.String())
		}
	}
	if s, err := ParseLinkLat(""); err != nil || !s.Empty() || s.String() != "" {
		t.Errorf("empty spec: %+v, %v", s, err)
	}
}

func TestLinkLatSpecRejections(t *testing.T) {
	for _, spec := range []string{
		"z=100ns",             // unknown key
		"x=banana",            // not a duration
		"edge=1.0-3.0:250ns",  // endpoints not mesh neighbors
		"edge=1.0-2.0",        // missing latency
		"edge=1.0:250ns",      // missing second endpoint
		"edge=a.b-2.0:250ns",  // non-numeric coordinate
		"edge=1.0-2.0:-250ns", // negative latency
		"x",                   // not key=value
		"x=0s",                // explicit zero is not "unset"
		"y=0ns",               // explicit zero is not "unset"
		"x=-100ns",            // negative axis latency
	} {
		if _, err := ParseLinkLat(spec); err == nil {
			t.Errorf("ParseLinkLat(%q) succeeded, want error", spec)
		}
	}
}

func TestLinkLatEdgeLatency(t *testing.T) {
	s, err := ParseLinkLat("x=100ns,edge=1.0-2.0:250ns")
	if err != nil {
		t.Fatal(err)
	}
	hop := Duration(120 * Nanosecond)
	if got := s.EdgeLatency(1, 0, 2, 0, hop); got != 250*Nanosecond {
		t.Errorf("specific edge = %v, want 250ns", got)
	}
	if got := s.EdgeLatency(2, 0, 1, 0, hop); got != 250*Nanosecond {
		t.Errorf("specific edge reversed = %v, want 250ns (bidirectional)", got)
	}
	if got := s.EdgeLatency(0, 1, 1, 1, hop); got != 100*Nanosecond {
		t.Errorf("horizontal edge = %v, want the x axis override 100ns", got)
	}
	if got := s.EdgeLatency(1, 1, 1, 2, hop); got != hop {
		t.Errorf("vertical edge = %v, want the hop fallback %v", got, hop)
	}
	if got := s.MinLatency(hop); got != 100*Nanosecond {
		t.Errorf("MinLatency = %v, want 100ns", got)
	}
	if got := (LinkLatSpec{}).MinLatency(hop); got != hop {
		t.Errorf("empty spec MinLatency = %v, want hop %v", got, hop)
	}
}

func TestValidateLinkLatAgainstMesh(t *testing.T) {
	p := Default()
	ll, err := ParseLinkLat("edge=7.0-8.0:250ns") // outside the default 4x4
	if err != nil {
		t.Fatal(err)
	}
	p.LinkLat = ll
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "outside") {
		t.Errorf("Validate() = %v, want an outside-the-mesh rejection", err)
	}
}

func TestShardGateErrorTyped(t *testing.T) {
	p := Default()
	p.Fabric = FabricHToE
	p.Shards = 4
	err := p.Validate()
	var gate *ShardGateError
	if !errors.As(err, &gate) {
		t.Fatalf("Validate() = %v, want a *ShardGateError", err)
	}
	if gate.Shards != 4 {
		t.Errorf("gate.Shards = %d, want 4", gate.Shards)
	}
	if !strings.Contains(gate.Error(), "-shards 1") {
		t.Errorf("gate error %q does not name the fix", gate.Error())
	}
}

func TestValidateWindowMode(t *testing.T) {
	p := Default()
	p.Window = WindowMode(99)
	if err := p.Validate(); err == nil {
		t.Error("Validate accepted an unknown window mode")
	}
}
