// Sharded-engine window tuning: the lookahead schedule of the
// conservative PDES engine (-window), the optional per-edge mesh link
// latency table (-linklat), and the typed error for features that only
// run on the single-shard engine. Both flag forms follow the canonical
// round-trip discipline of -faults and -bulk: String renders exactly
// what Parse reads.
package params

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// WindowMode selects how the sharded engine sizes its lookahead windows
// (DESIGN §16). Every mode produces byte-identical figures and metrics;
// they differ only in how many barriers the schedule pays.
type WindowMode int

const (
	// WindowUniform is the PR 9 baseline: every shard runs the same
	// global window derived from the minimum single-hop latency, and
	// every barrier drains the whole exchange.
	WindowUniform WindowMode = iota
	// WindowDistance widens each shard's window to the provable minimum
	// cross-shard delivery bound from partition geometry: interior-heavy
	// shards get multi-hop-wide windows.
	WindowDistance
	// WindowElide stacks adaptive barrier elision on distance-aware
	// lookahead: shards publish their earliest pending cross-shard
	// intent, and the window fast-forwards to the earliest time any
	// shard could be affected — an appointment, not a guess.
	WindowElide
)

// ParseWindowMode reads the CLI -window syntax.
func ParseWindowMode(s string) (WindowMode, error) {
	switch strings.TrimSpace(s) {
	case "", "elide":
		return WindowElide, nil
	case "distance":
		return WindowDistance, nil
	case "uniform":
		return WindowUniform, nil
	}
	return 0, fmt.Errorf("params: unknown window mode %q (want uniform, distance, or elide)", s)
}

func (m WindowMode) String() string {
	switch m {
	case WindowUniform:
		return "uniform"
	case WindowDistance:
		return "distance"
	case WindowElide:
		return "elide"
	default:
		return fmt.Sprintf("WindowMode(%d)", int(m))
	}
}

// Valid reports whether m is one of the defined modes.
func (m WindowMode) Valid() bool {
	return m == WindowUniform || m == WindowDistance || m == WindowElide
}

// EdgeLat overrides the traversal latency of the mesh edge between two
// adjacent nodes, applied in both directions.
type EdgeLat struct {
	AX, AY int // first endpoint, mesh coordinates
	BX, BY int // second endpoint, adjacent to A
	Lat    Duration
}

// LinkLatSpec is the parsed -linklat flag: an optional per-edge latency
// table for the mesh fabric. The zero value is the empty spec (flag
// absent, every edge at HopLatency), so existing figures are untouched
// unless a table is asked for. Both the router and the sharded engine's
// lookahead bound consume the same table, which is what keeps the
// conservative windows provably safe under asymmetric links.
type LinkLatSpec struct {
	// X and Y override the latency of every horizontal (resp. vertical)
	// mesh edge; 0 keeps HopLatency.
	X, Y Duration
	// Edges lists specific-edge overrides, which win over the axis
	// defaults. Kept in parse order; String renders the same order.
	Edges []EdgeLat
}

// Empty reports whether the spec overrides nothing (flag absent).
func (s LinkLatSpec) Empty() bool { return s.X == 0 && s.Y == 0 && len(s.Edges) == 0 }

// EdgeLatency returns the traversal latency of the directed mesh edge
// from (fx,fy) to (tx,ty) under this spec, with hop as the uniform
// fallback. Specific-edge overrides win over axis overrides.
func (s LinkLatSpec) EdgeLatency(fx, fy, tx, ty int, hop Duration) Duration {
	for _, e := range s.Edges {
		if (e.AX == fx && e.AY == fy && e.BX == tx && e.BY == ty) ||
			(e.AX == tx && e.AY == ty && e.BX == fx && e.BY == fy) {
			return e.Lat
		}
	}
	if fy == ty && s.X != 0 {
		return s.X
	}
	if fx == tx && s.Y != 0 {
		return s.Y
	}
	return hop
}

// ParseLinkLat builds a link-latency table from a comma-separated spec,
// the format of the CLIs' -linklat flag:
//
//	x=100ns               every horizontal edge
//	y=140ns               every vertical edge
//	edge=1.0-2.0:250ns    the edge between nodes (1,0) and (2,0)
func ParseLinkLat(spec string) (LinkLatSpec, error) {
	var s LinkLatSpec
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return s, nil
	}
	for _, field := range strings.Split(trimmed, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return LinkLatSpec{}, fmt.Errorf("params: linklat spec %q is not key=value", field)
		}
		switch key {
		case "x", "y":
			d, err := time.ParseDuration(val)
			if err != nil {
				return LinkLatSpec{}, fmt.Errorf("params: linklat %s=%s: %w", key, val, err)
			}
			// In the spec struct zero means "unset: keep HopLatency", so an
			// explicit x=0s must fail loudly rather than silently vanish.
			if d <= 0 {
				return LinkLatSpec{}, fmt.Errorf("params: linklat %s=%s must be positive (omit %s to keep the uniform hop latency)", key, val, key)
			}
			if key == "x" {
				s.X = FromStd(d)
			} else {
				s.Y = FromStd(d)
			}
		case "edge":
			pair, lat, ok := strings.Cut(val, ":")
			if !ok {
				return LinkLatSpec{}, fmt.Errorf("params: linklat edge %q wants X.Y-X.Y:latency", val)
			}
			a, b, ok := strings.Cut(pair, "-")
			if !ok {
				return LinkLatSpec{}, fmt.Errorf("params: linklat edge %q wants two endpoints", val)
			}
			var e EdgeLat
			var err error
			if e.AX, e.AY, err = parseCoord(a); err != nil {
				return LinkLatSpec{}, err
			}
			if e.BX, e.BY, err = parseCoord(b); err != nil {
				return LinkLatSpec{}, err
			}
			d, err := time.ParseDuration(lat)
			if err != nil {
				return LinkLatSpec{}, fmt.Errorf("params: linklat edge %s: %w", val, err)
			}
			e.Lat = FromStd(d)
			s.Edges = append(s.Edges, e)
		default:
			return LinkLatSpec{}, fmt.Errorf("params: unknown linklat key %q", key)
		}
	}
	if err := s.Validate(); err != nil {
		return LinkLatSpec{}, err
	}
	return s, nil
}

func parseCoord(s string) (x, y int, err error) {
	xs, ys, ok := strings.Cut(s, ".")
	if !ok {
		return 0, 0, fmt.Errorf("params: linklat endpoint %q wants X.Y", s)
	}
	if x, err = strconv.Atoi(xs); err != nil {
		return 0, 0, fmt.Errorf("params: linklat endpoint %q: %w", s, err)
	}
	if y, err = strconv.Atoi(ys); err != nil {
		return 0, 0, fmt.Errorf("params: linklat endpoint %q: %w", s, err)
	}
	return x, y, nil
}

// Validate reports the first inconsistency in the spec alone; edge
// endpoints are checked against the mesh geometry by Params.Validate.
func (s LinkLatSpec) Validate() error {
	if s.X < 0 || s.Y < 0 {
		return fmt.Errorf("params: linklat axis latencies must not be negative (x=%d, y=%d); zero means unset", s.X, s.Y)
	}
	for _, e := range s.Edges {
		if e.Lat <= 0 {
			return fmt.Errorf("params: linklat edge %d.%d-%d.%d latency %d must be positive", e.AX, e.AY, e.BX, e.BY, e.Lat)
		}
		dx, dy := e.BX-e.AX, e.BY-e.AY
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		if dx+dy != 1 {
			return fmt.Errorf("params: linklat edge %d.%d-%d.%d endpoints are not mesh neighbors", e.AX, e.AY, e.BX, e.BY)
		}
	}
	return nil
}

// validateFor checks the spec against a concrete mesh geometry.
func (s LinkLatSpec) validateFor(w, h int) error {
	for _, e := range s.Edges {
		if e.AX < 0 || e.AX >= w || e.AY < 0 || e.AY >= h ||
			e.BX < 0 || e.BX >= w || e.BY < 0 || e.BY >= h {
			return fmt.Errorf("params: linklat edge %d.%d-%d.%d outside the %dx%d mesh", e.AX, e.AY, e.BX, e.BY, w, h)
		}
	}
	return s.Validate()
}

// String renders the spec in the syntax ParseLinkLat reads. The empty
// spec renders as "".
func (s LinkLatSpec) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	if s.X != 0 {
		parts = append(parts, fmt.Sprintf("x=%s", ToStd(s.X)))
	}
	if s.Y != 0 {
		parts = append(parts, fmt.Sprintf("y=%s", ToStd(s.Y)))
	}
	for _, e := range s.Edges {
		parts = append(parts, fmt.Sprintf("edge=%d.%d-%d.%d:%s", e.AX, e.AY, e.BX, e.BY, ToStd(e.Lat)))
	}
	return strings.Join(parts, ",")
}

// MinLatency returns the smallest traversal latency any mesh edge can
// have under this spec — the value the conservative lookahead bound must
// assume when it cannot see a concrete edge.
func (s LinkLatSpec) MinLatency(hop Duration) Duration {
	min := hop
	if s.X != 0 && s.X < min {
		min = s.X
	}
	if s.Y != 0 && s.Y < min {
		min = s.Y
	}
	for _, e := range s.Edges {
		if e.Lat < min {
			min = e.Lat
		}
	}
	return min
}

// ShardGateError reports a feature that only runs on the single-shard
// engine being combined with Shards > 1. It is a typed error so CLIs
// and tests can detect the condition with errors.As instead of matching
// message text.
type ShardGateError struct {
	Feature string // human-readable feature name
	Shards  int    // the offending shard count
}

func (e *ShardGateError) Error() string {
	return fmt.Sprintf("params: %s is not shard-partitioned; it requires -shards 1, got %d", e.Feature, e.Shards)
}
