package params

import (
	"testing"
	"time"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDefaultGeometry(t *testing.T) {
	p := Default()
	if got := p.Nodes(); got != 16 {
		t.Errorf("Nodes() = %d, want 16", got)
	}
	if got := p.PoolSize(); got != 128<<30 {
		t.Errorf("PoolSize() = %d, want 128 GiB", got)
	}
	if got := p.PooledMemPerNode(); got != 8<<30 {
		t.Errorf("PooledMemPerNode() = %d, want 8 GiB", got)
	}
}

func TestRemoteRoundTrip(t *testing.T) {
	p := Default()
	rt1 := p.RemoteRoundTrip(1)
	rt3 := p.RemoteRoundTrip(3)
	if rt1 <= p.DRAMLatency {
		t.Errorf("remote round trip %d not greater than local latency %d", rt1, p.DRAMLatency)
	}
	if rt3-rt1 != 4*p.HopLatency {
		t.Errorf("3-hop minus 1-hop = %d, want %d (2 extra hops each way)", rt3-rt1, 4*p.HopLatency)
	}
	// Calibration promise from DESIGN.md: about 1 µs at 1 hop, and below
	// Violin's 3 µs which the paper calls large.
	if rt1 < 500*Nanosecond || rt1 > 3*Microsecond {
		t.Errorf("1-hop round trip %d ps outside the calibrated band", rt1)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Params)
	}{
		{"zero mesh", func(p *Params) { p.MeshWidth = 0 }},
		{"too many nodes", func(p *Params) { p.MeshWidth, p.MeshHeight = 1<<7, 1<<7 }},
		{"no cores", func(p *Params) { p.CoresPerNode = 0 }},
		{"no sockets", func(p *Params) { p.SocketsPerNode = 0 }},
		{"zero memory", func(p *Params) { p.MemPerNode = 0 }},
		{"unaligned memory", func(p *Params) { p.MemPerNode = PageSize + 1 }},
		{"private exceeds total", func(p *Params) { p.PrivateMemPerNode = p.MemPerNode + PageSize }},
		{"unaligned private", func(p *Params) { p.PrivateMemPerNode = PageSize / 2 }},
		{"memory too large for local space", func(p *Params) { p.MemPerNode = 1 << (PhysAddrBits - NodePrefixBits + 1) }},
		{"zero local window", func(p *Params) { p.LocalOutstanding = 0 }},
		{"zero remote window", func(p *Params) { p.RemoteOutstanding = 0 }},
		{"zero rmc queue", func(p *Params) { p.RMCQueueDepth = 0 }},
		{"negative latency", func(p *Params) { p.DRAMLatency = -1 }},
		{"zero resident pages", func(p *Params) { p.SwapResidentPages = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := Default()
			tc.edit(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("Validate accepted %s", tc.name)
			}
		})
	}
}

func TestDurationConversions(t *testing.T) {
	if got := ToStd(1500 * Nanosecond); got != 1500*time.Nanosecond {
		t.Errorf("ToStd = %v, want 1.5µs", got)
	}
	if got := FromStd(2 * time.Microsecond); got != 2*Microsecond {
		t.Errorf("FromStd = %d, want %d", got, 2*Microsecond)
	}
	if got := FromStd(ToStd(7 * Microsecond)); got != 7*Microsecond {
		t.Errorf("roundtrip = %d, want %d", got, 7*Microsecond)
	}
}

func TestUnitScale(t *testing.T) {
	if Second != 1e12 {
		t.Errorf("Second = %d ps, want 1e12", Second)
	}
	if Microsecond/Nanosecond != 1000 {
		t.Errorf("µs/ns = %d, want 1000", Microsecond/Nanosecond)
	}
}

func TestNewKnobValidation(t *testing.T) {
	p := Default()
	p.PrefetchDepth = -1
	if p.Validate() == nil {
		t.Error("negative prefetch depth accepted")
	}
	p = Default()
	p.OSReserveBytes = p.PrivateMemPerNode
	if p.Validate() == nil {
		t.Error("reserve swallowing the private zone accepted")
	}
	p = Default()
	p.Fabric = FabricKind(9)
	if p.Validate() == nil {
		t.Error("unknown fabric accepted")
	}
	p = Default()
	p.Fabric = FabricHToE
	if err := p.Validate(); err != nil {
		t.Errorf("HToE fabric rejected: %v", err)
	}
}

func TestFabricKindString(t *testing.T) {
	for k, want := range map[FabricKind]string{FabricMesh: "2D mesh", FabricHToE: "HT-over-Ethernet"} {
		if k.String() != want {
			t.Errorf("%d renders %q", int(k), k.String())
		}
	}
	if FabricKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestBulkSpecRoundTrip(t *testing.T) {
	// String renders exactly what ParseBulk reads — specs can be logged
	// and replayed verbatim, like fault plans.
	for _, spec := range []string{"frame=4", "maxframes=64", "frame=16,maxframes=256"} {
		s, err := ParseBulk(spec)
		if err != nil {
			t.Fatalf("ParseBulk(%q): %v", spec, err)
		}
		if got := s.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		back, err := ParseBulk(s.String())
		if err != nil || back != s {
			t.Errorf("re-parse of %q = %+v, %v", s.String(), back, err)
		}
	}
	if s, err := ParseBulk(""); err != nil || !s.Empty() || s.String() != "" {
		t.Errorf("empty spec = %+v, %v", s, err)
	}
	on, err := ParseBulk("on")
	if err != nil || on.FrameLines != DefaultBulkFrameLines || on.MaxFrames != DefaultBulkMaxFrames {
		t.Errorf(`ParseBulk("on") = %+v, %v`, on, err)
	}
	for _, bad := range []string{"frame", "frame=x", "what=1", "frame=257", "maxframes=300"} {
		if _, err := ParseBulk(bad); err == nil {
			t.Errorf("ParseBulk(%q) accepted", bad)
		}
	}
	// Apply only touches what the spec sets.
	p := Default()
	s, _ := ParseBulk("frame=4")
	s.Apply(&p)
	if p.BulkFrameLines != 4 || p.BurstMaxFrames() != DefaultBulkMaxFrames {
		t.Errorf("Apply wrote %d/%d", p.BulkFrameLines, p.BulkMaxFrames)
	}
	if p.BurstMaxLines() != 4*DefaultBulkMaxFrames {
		t.Errorf("BurstMaxLines = %d", p.BurstMaxLines())
	}
}
