// Package params is the single calibration point for the reproduction.
//
// Every latency, occupancy, and size used by both the micro
// (discrete-event) and macro (locality-model) layers comes from a Params
// value, so the two layers can never drift apart and experiments can
// sweep a parameter by copying and editing one struct.
//
// The defaults model the CLUSTER 2010 prototype: 16 nodes of 4×quad-core
// 2.1 GHz Opterons, DDR2-800 memory, FPGA HTX cards on a 4×4 2D mesh.
// Absolute values are our calibration (see DESIGN.md §5); the paper's
// evaluation shapes emerge from the ratios between them.
package params

import (
	"fmt"
	"time"

	"repro/internal/faults"
)

// Duration values are expressed in picoseconds internally (the simulator
// clock unit) to keep event arithmetic in integers.
type Duration = int64

// Picosecond-based unit constants for simulator time.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// ToStd converts a simulator duration to a time.Duration (ns resolution).
func ToStd(d Duration) time.Duration { return time.Duration(d/Nanosecond) * time.Nanosecond }

// FromStd converts a time.Duration to simulator picoseconds.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) * Nanosecond }

// Geometry and protocol constants fixed by the paper.
const (
	// NodePrefixBits is the number of most-significant physical-address
	// bits that carry the owning node identifier (paper Section III-B).
	NodePrefixBits = 14

	// PhysAddrBits is the width of a physical address. 14 prefix bits on
	// top of a 34-bit local space (16 GB/node) matches Figure 3's map.
	PhysAddrBits = 48

	// CacheLineSize is the coherency/transfer granule in bytes.
	CacheLineSize = 64

	// PageSize is the OS page size in bytes.
	PageSize = 4096
)

// FabricKind selects the inter-node interconnect.
type FabricKind int

// Interconnect choices.
const (
	// FabricMesh is the prototype's direct 4×4 2D mesh of HTX cards.
	FabricMesh FabricKind = iota
	// FabricHToE is HyperTransport-over-Ethernet through a central
	// switch — the consortium-standardized option the paper mentions.
	FabricHToE
)

func (k FabricKind) String() string {
	switch k {
	case FabricMesh:
		return "2D mesh"
	case FabricHToE:
		return "HT-over-Ethernet"
	default:
		return fmt.Sprintf("FabricKind(%d)", int(k))
	}
}

// Params aggregates every tunable of the modeled system.
type Params struct {
	// Fabric selects the interconnect (mesh by default).
	Fabric FabricKind

	// ---- Cluster geometry ----

	// MeshWidth and MeshHeight give the 2D-mesh dimensions. The prototype
	// is 4×4 = 16 nodes; larger fabrics (up to the prefix-space limit)
	// are first-class and can be driven with -mesh NxN on both CLIs.
	MeshWidth, MeshHeight int

	// Shards is the number of parallel simulation shards (mesh regions
	// advanced concurrently under conservative lookahead windows).
	// 0 or 1 selects the single-shard engine; figures are byte-identical
	// at any valid setting. Shards > 1 requires the mesh fabric and must
	// tile the geometry (see mesh.Partition).
	Shards int

	// Window selects the sharded engine's lookahead schedule (see
	// WindowMode). Output is byte-identical across modes; they trade
	// barrier frequency only. Ignored on the single-shard engine.
	Window WindowMode

	// LinkLat optionally overrides per-edge mesh link latencies (the
	// -linklat flag). The empty spec keeps every edge at HopLatency, so
	// defaults reproduce the uniform fabric exactly.
	LinkLat LinkLatSpec

	// CoresPerNode is the number of cores in one coherency domain (16 in
	// the prototype: 4 sockets × 4 cores).
	CoresPerNode int

	// SocketsPerNode is the number of memory controllers per node.
	SocketsPerNode int

	// MemPerNode is the physical memory per node in bytes (16 GB).
	MemPerNode uint64

	// PrivateMemPerNode is memory reserved for the local OS and never
	// pooled (8 GB in the prototype; the other 8 GB join the 128 GB pool).
	PrivateMemPerNode uint64

	// ---- Core / cache ----

	// LocalOutstanding is the number of in-flight local memory requests a
	// core sustains (8 on Opteron).
	LocalOutstanding int

	// RemoteOutstanding is the number of in-flight requests a core may
	// have against the RMC-mapped range. The prototype's RMC is an HT
	// I/O unit, which limits this to 1 (paper Section IV-B).
	RemoteOutstanding int

	// L1Latency is the cache hit latency.
	L1Latency Duration

	// CacheProbeLatency is the cost of an intra-node coherency probe.
	CacheProbeLatency Duration

	// ---- DRAM ----

	// DRAMLatency is the loaded access latency of a local DRAM read.
	DRAMLatency Duration

	// DRAMOccupancy is the controller service occupancy per request
	// (bandwidth bound: one request per occupancy per controller).
	DRAMOccupancy Duration

	// ---- Mesh / HNC-HT fabric ----

	// HopLatency is the traversal latency of one mesh hop
	// (link serialization + router).
	HopLatency Duration

	// LinkOccupancy is the per-packet occupancy of one link (inverse
	// bandwidth for a cache-line packet).
	LinkOccupancy Duration

	// ---- RMC ----

	// RMCClientOccupancy is the client-side RMC service time per request
	// (HT→HNC bridging, store-and-forward through the FPGA).
	RMCClientOccupancy Duration

	// RMCServerOccupancy is the server-side RMC service time per request
	// (prefix zeroing + replay into the local memory system).
	RMCServerOccupancy Duration

	// RMCQueueDepth is the bounded request queue of an RMC. Requests
	// arriving at a full queue are retried after RMCRetryPenalty and waste
	// RMCRetryWaste of the RMC's service capacity (NACK processing). This
	// is the mechanism behind Fig 7's "farther is slightly faster".
	RMCQueueDepth int

	// RMCRetryPenalty is the requester-side backoff before reissuing a
	// NACKed request.
	RMCRetryPenalty Duration

	// RMCRetryWaste is the RMC service capacity consumed by processing and
	// NACKing a request that found the queue full.
	RMCRetryWaste Duration

	// OSReserveBytes is the low watermark of private memory the OS keeps
	// for itself: process heaps spill to remote memory once private free
	// memory would fall below it — the "running out of local memory"
	// trigger of the Figure 4 narrative, with headroom so the kernel
	// never starves.
	OSReserveBytes uint64

	// EnableProtection arms the serving RMC's access-control check: a
	// node may only touch frames actually granted to it; everything else
	// is answered with Target Abort. Off by default — the prototype (and
	// the paper) defers the security component.
	EnableProtection bool

	// PrefetchDepth is how many lines ahead the RMC's sequential
	// prefetcher runs on detected streams. 0 (the prototype) disables
	// it; the paper names prefetching as the future work that should
	// "bring the performance closer to local memory".
	PrefetchDepth int

	// ---- Bulk data plane ----

	// BulkFrameLines is the number of cache lines one bulk data frame
	// carries. Bigger frames amortize the 8-byte HNC header and the
	// per-frame CRC/ack machinery over more payload but raise the cost
	// of a retransmission when a fault plan drops one. 0 selects
	// DefaultBulkFrameLines.
	BulkFrameLines int

	// BulkMaxFrames caps the data frames of one burst; the wire format
	// (frame index and burst length share the 16-bit tag) allows at most
	// 256. Callers split larger transfers into multiple bursts. 0
	// selects DefaultBulkMaxFrames.
	BulkMaxFrames int

	// ---- Remote swap / disk baselines ----

	// SwapTrapOverhead is the OS cost of a page fault handled by the
	// (remote or disk) swap path: trap, handler, page-table fixup, return.
	SwapTrapOverhead Duration

	// SwapPageTransfer is the cost of moving one 4 KiB page through the
	// remote-swap path: network stack, swap daemon, and wire time
	// (excludes per-hop latency, added separately by distance). 2010-era
	// remote swappers report page-in services of a few hundred µs —
	// "slightly faster than a local disk access" in the paper's words —
	// because the OS is on the path for every page, which is precisely
	// the overhead the RMC eliminates.
	SwapPageTransfer Duration

	// SwapResidentPages is the number of pages the swap client can keep
	// resident locally (local memory dedicated to the swapped dataset).
	SwapResidentPages int

	// DiskLatency is the cost of a disk swap-in (seek-bound HDD).
	DiskLatency Duration

	// ---- Fault injection and recovery ----

	// Faults, when non-nil and non-empty, schedules deterministic fabric
	// misbehaviour (see package faults) and arms the recovery machinery:
	// sender-side retransmission at the RMC, detour routing in the mesh,
	// and a typed failure after RetransmitBudget is exhausted. A nil or
	// empty plan leaves every timed path bit-identical to a build
	// without the fault layer.
	Faults *faults.Plan

	// RetransmitTimeout is the sender-side wait before a frame that drew
	// no response outcome (dropped, corrupted, or unroutable) is resent.
	// Successive retransmissions back off exponentially, capped at
	// RetransmitTimeout << RetransmitBackoffCap.
	RetransmitTimeout Duration

	// RetransmitBackoffCap caps the exponential backoff shift.
	RetransmitBackoffCap uint

	// RetransmitBudget is how many retransmissions the RMC attempts
	// before abandoning the request with an Unreachable error — the
	// graceful-degradation bound that keeps the event loop from spinning
	// on a dead destination forever.
	RetransmitBudget int

	// ---- Coherent-DSM baseline (ablation) ----

	// CohDirectoryLatency is the home-directory lookup/update cost per
	// coherence transaction in the inter-node coherent DSM baseline.
	CohDirectoryLatency Duration

	// CohProtocolOverhead is the per-sharer invalidation/ack cost.
	CohProtocolOverhead Duration
}

// Default returns the calibrated prototype parameter set.
func Default() Params {
	return Params{
		MeshWidth:      4,
		MeshHeight:     4,
		Window:         WindowElide,
		CoresPerNode:   16,
		SocketsPerNode: 4,

		MemPerNode:        16 << 30,
		PrivateMemPerNode: 8 << 30,
		OSReserveBytes:    512 << 20,

		LocalOutstanding:  8,
		RemoteOutstanding: 1,

		L1Latency:         1 * Nanosecond,
		CacheProbeLatency: 40 * Nanosecond,

		DRAMLatency:   80 * Nanosecond,
		DRAMOccupancy: 10 * Nanosecond,

		HopLatency:    120 * Nanosecond,
		LinkOccupancy: 16 * Nanosecond,

		RMCClientOccupancy: 420 * Nanosecond,
		RMCServerOccupancy: 110 * Nanosecond,
		RMCQueueDepth:      1,
		RMCRetryPenalty:    100 * Nanosecond,
		// 30 ns: calibrated so NACK storms at the depth-1 client queue
		// reproduce Fig 7's monotone "farther is slightly faster"
		// inversion under penalty-aware queue accounting (Penalize holds
		// the queue slots of delayed requests; see sim.Resource).
		RMCRetryWaste: 30 * Nanosecond,

		// Retransmission covers one worst-case unloaded round trip (a
		// 6-hop request + response plus both RMC services is ~2.1 µs),
		// so a timeout fires only for frames that are genuinely gone.
		RetransmitTimeout:    3 * Microsecond,
		RetransmitBackoffCap: 6,
		RetransmitBudget:     8,

		BulkFrameLines: DefaultBulkFrameLines,
		BulkMaxFrames:  DefaultBulkMaxFrames,

		SwapTrapOverhead:  30 * Microsecond,
		SwapPageTransfer:  170 * Microsecond,
		SwapResidentPages: 2048, // 8 MiB of page cache for the swapped set
		DiskLatency:       5 * Millisecond,

		CohDirectoryLatency: 500 * Nanosecond,
		CohProtocolOverhead: 700 * Nanosecond,
	}
}

// Nodes returns the node count implied by the mesh geometry.
func (p Params) Nodes() int { return p.MeshWidth * p.MeshHeight }

// PooledMemPerNode returns the per-node contribution to the shared pool.
func (p Params) PooledMemPerNode() uint64 { return p.MemPerNode - p.PrivateMemPerNode }

// PoolSize returns the total shared-pool capacity (128 GB by default).
func (p Params) PoolSize() uint64 { return p.PooledMemPerNode() * uint64(p.Nodes()) }

// RemoteRoundTrip estimates the unloaded round-trip latency of one remote
// cache-line read at the given hop distance. It is the sum of the client
// RMC service, the request path, the server RMC service, the remote DRAM
// access, and the response path.
func (p Params) RemoteRoundTrip(hops int) Duration {
	path := Duration(hops) * p.HopLatency
	return p.RMCClientOccupancy + path + p.RMCServerOccupancy + p.DRAMLatency + path
}

// Validate reports the first inconsistency in the parameter set.
func (p Params) Validate() error {
	switch {
	case p.MeshWidth < 1 || p.MeshHeight < 1:
		return fmt.Errorf("params: mesh %dx%d must be at least 1x1", p.MeshWidth, p.MeshHeight)
	case p.Nodes() >= 1<<NodePrefixBits:
		return fmt.Errorf("params: %d nodes exceed %d-bit prefix space (node 0 is reserved)", p.Nodes(), NodePrefixBits)
	case p.CoresPerNode < 1:
		return fmt.Errorf("params: CoresPerNode %d < 1", p.CoresPerNode)
	case p.SocketsPerNode < 1:
		return fmt.Errorf("params: SocketsPerNode %d < 1", p.SocketsPerNode)
	case p.MemPerNode == 0 || p.MemPerNode%PageSize != 0:
		return fmt.Errorf("params: MemPerNode %d must be a positive multiple of the page size", p.MemPerNode)
	case p.PrivateMemPerNode > p.MemPerNode:
		return fmt.Errorf("params: private memory %d exceeds node memory %d", p.PrivateMemPerNode, p.MemPerNode)
	case p.PrivateMemPerNode%PageSize != 0:
		return fmt.Errorf("params: PrivateMemPerNode %d must be page aligned", p.PrivateMemPerNode)
	case p.OSReserveBytes >= p.PrivateMemPerNode:
		return fmt.Errorf("params: OS reserve %d swallows the whole private zone %d", p.OSReserveBytes, p.PrivateMemPerNode)
	case p.MemPerNode > 1<<(PhysAddrBits-NodePrefixBits):
		return fmt.Errorf("params: MemPerNode %d does not fit the local address space", p.MemPerNode)
	case p.LocalOutstanding < 1 || p.RemoteOutstanding < 1:
		return fmt.Errorf("params: outstanding windows must be >= 1 (local %d, remote %d)", p.LocalOutstanding, p.RemoteOutstanding)
	case p.RMCQueueDepth < 1:
		return fmt.Errorf("params: RMCQueueDepth %d < 1", p.RMCQueueDepth)
	case p.PrefetchDepth < 0:
		return fmt.Errorf("params: PrefetchDepth %d < 0", p.PrefetchDepth)
	case p.BulkFrameLines < 0 || p.BulkFrameLines > MaxBulkFrameLines:
		return fmt.Errorf("params: BulkFrameLines %d outside [0,%d]", p.BulkFrameLines, MaxBulkFrameLines)
	case p.BulkMaxFrames < 0 || p.BulkMaxFrames > MaxBulkFrames:
		return fmt.Errorf("params: BulkMaxFrames %d outside [0,%d]", p.BulkMaxFrames, MaxBulkFrames)
	case p.DRAMLatency <= 0 || p.HopLatency <= 0 || p.RMCClientOccupancy <= 0 || p.RMCServerOccupancy <= 0:
		return fmt.Errorf("params: latencies must be positive")
	case p.SwapResidentPages < 1:
		return fmt.Errorf("params: SwapResidentPages %d < 1", p.SwapResidentPages)
	case p.Fabric != FabricMesh && p.Fabric != FabricHToE:
		return fmt.Errorf("params: unknown fabric kind %d", int(p.Fabric))
	case p.Shards < 0:
		return fmt.Errorf("params: Shards %d < 0", p.Shards)
	case p.Shards > p.Nodes():
		return fmt.Errorf("params: Shards %d exceed %d nodes", p.Shards, p.Nodes())
	case !p.Window.Valid():
		return fmt.Errorf("params: unknown window mode %d", int(p.Window))
	}
	if p.Shards > 1 && p.Fabric != FabricMesh {
		return &ShardGateError{Feature: "the " + p.Fabric.String() + " fabric", Shards: p.Shards}
	}
	if err := p.LinkLat.validateFor(p.MeshWidth, p.MeshHeight); err != nil {
		return err
	}
	// The recovery tunables only matter (and are only required) when a
	// fault plan can actually lose frames.
	if !p.Faults.Empty() {
		switch {
		case p.RetransmitTimeout <= 0:
			return fmt.Errorf("params: RetransmitTimeout %d must be positive under a fault plan", p.RetransmitTimeout)
		case p.RetransmitBudget < 1:
			return fmt.Errorf("params: RetransmitBudget %d < 1 under a fault plan", p.RetransmitBudget)
		}
	}
	return p.Faults.Validate()
}
