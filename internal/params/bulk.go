// Bulk data-plane tuning: the defaults behind the zero values of
// Params.BulkFrameLines / Params.BulkMaxFrames, and the parsed form of
// the CLIs' -bulk flag (same canonical round-trip discipline as the
// -faults spec in package faults: String renders exactly what Parse
// reads, so a tuning can be logged and replayed verbatim).
package params

import (
	"fmt"
	"strconv"
	"strings"
)

// Bulk burst geometry bounds and defaults.
const (
	// DefaultBulkFrameLines is the lines-per-data-frame default: 16
	// lines = 1 KiB payload per frame, big enough to amortize the frame
	// header ~128× against a scalar line, small enough that a dropped
	// frame's retransmission stays cheap.
	DefaultBulkFrameLines = 16

	// DefaultBulkMaxFrames is the frames-per-burst default (the wire
	// format's maximum: index and burst length share a 16-bit tag).
	DefaultBulkMaxFrames = 256

	// MaxBulkFrameLines bounds BulkFrameLines (a 256-line frame is a
	// 16 KiB payload — far past any amortization benefit).
	MaxBulkFrameLines = 256

	// MaxBulkFrames is the wire-format burst-length ceiling.
	MaxBulkFrames = 256
)

// BurstFrameLines returns the effective lines per bulk data frame.
func (p Params) BurstFrameLines() int {
	if p.BulkFrameLines > 0 {
		return p.BulkFrameLines
	}
	return DefaultBulkFrameLines
}

// BurstMaxFrames returns the effective data-frame cap per burst.
func (p Params) BurstMaxFrames() int {
	if p.BulkMaxFrames > 0 {
		return p.BulkMaxFrames
	}
	return DefaultBulkMaxFrames
}

// BurstMaxLines returns the largest line count one burst can carry;
// larger transfers split into multiple bursts.
func (p Params) BurstMaxLines() int { return p.BurstFrameLines() * p.BurstMaxFrames() }

// BulkSpec is the parsed -bulk flag: burst-geometry overrides for the
// bulk data plane. The zero value is the empty spec (flag absent).
type BulkSpec struct {
	// FrameLines overrides Params.BulkFrameLines (0 = keep).
	FrameLines int
	// MaxFrames overrides Params.BulkMaxFrames (0 = keep).
	MaxFrames int
}

// ParseBulk builds a bulk tuning from a comma-separated spec, the
// format of the CLIs' -bulk flag:
//
//	on                defaults (equivalent to frame=16,maxframes=256)
//	frame=N           cache lines per burst data frame
//	maxframes=N       data frames per burst (wire format caps at 256)
func ParseBulk(spec string) (BulkSpec, error) {
	var s BulkSpec
	trimmed := strings.TrimSpace(spec)
	if trimmed == "" {
		return s, nil
	}
	if trimmed == "on" || trimmed == "default" {
		return BulkSpec{FrameLines: DefaultBulkFrameLines, MaxFrames: DefaultBulkMaxFrames}, nil
	}
	for _, field := range strings.Split(trimmed, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return BulkSpec{}, fmt.Errorf("params: bulk spec %q is not key=value", field)
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return BulkSpec{}, fmt.Errorf("params: bulk %s=%s: %w", key, val, err)
		}
		switch key {
		case "frame":
			s.FrameLines = n
		case "maxframes":
			s.MaxFrames = n
		default:
			return BulkSpec{}, fmt.Errorf("params: unknown bulk key %q", key)
		}
	}
	if err := s.Validate(); err != nil {
		return BulkSpec{}, err
	}
	return s, nil
}

// Validate reports the first inconsistency in the spec.
func (s BulkSpec) Validate() error {
	switch {
	case s.FrameLines < 0 || s.FrameLines > MaxBulkFrameLines:
		return fmt.Errorf("params: bulk frame=%d outside [1,%d]", s.FrameLines, MaxBulkFrameLines)
	case s.MaxFrames < 0 || s.MaxFrames > MaxBulkFrames:
		return fmt.Errorf("params: bulk maxframes=%d outside [1,%d]", s.MaxFrames, MaxBulkFrames)
	}
	return nil
}

// Empty reports whether the spec overrides nothing (flag absent).
func (s BulkSpec) Empty() bool { return s == BulkSpec{} }

// String renders the spec in the syntax ParseBulk reads, canonically
// ordered. The empty spec renders as "".
func (s BulkSpec) String() string {
	if s.Empty() {
		return ""
	}
	var parts []string
	if s.FrameLines > 0 {
		parts = append(parts, fmt.Sprintf("frame=%d", s.FrameLines))
	}
	if s.MaxFrames > 0 {
		parts = append(parts, fmt.Sprintf("maxframes=%d", s.MaxFrames))
	}
	return strings.Join(parts, ",")
}

// Apply writes the spec's overrides into p.
func (s BulkSpec) Apply(p *Params) {
	if s.FrameLines > 0 {
		p.BulkFrameLines = s.FrameLines
	}
	if s.MaxFrames > 0 {
		p.BulkMaxFrames = s.MaxFrames
	}
}
