package dram

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

func TestControllerLatencyAndQueueing(t *testing.T) {
	p := params.Default()
	eng := sim.New()
	c := NewController(eng, 1, 0, p)

	// Uncontended access completes after occupancy + latency.
	done := c.Access(0, addr.Phys(0), false)
	if want := p.DRAMOccupancy + p.DRAMLatency; done != want {
		t.Errorf("first access done = %d, want %d", done, want)
	}
	// A simultaneous second access queues behind the first's occupancy.
	done2 := c.Access(0, addr.Phys(64), true)
	if want := 2*p.DRAMOccupancy + p.DRAMLatency; done2 != want {
		t.Errorf("queued access done = %d, want %d", done2, want)
	}
	if c.Reads != 1 || c.Writes != 1 {
		t.Errorf("counters = %d/%d", c.Reads, c.Writes)
	}
	if c.Utilization(2*p.DRAMOccupancy) != 1 {
		t.Error("controller should be fully occupied")
	}
}

func TestRowBufferTracking(t *testing.T) {
	p := params.Default()
	c := NewController(sim.New(), 1, 0, p)

	// Same row twice, then a different row, then back: cold, hit,
	// conflict, conflict.
	c.Access(0, addr.Phys(0), false)
	c.Access(0, addr.Phys(64), false)
	c.Access(0, addr.Phys(RowBytes), false)
	c.Access(0, addr.Phys(128), false)
	if c.RowHits != 1 || c.RowConflicts != 2 {
		t.Errorf("row stats = %d hits / %d conflicts, want 1/2", c.RowHits, c.RowConflicts)
	}
	// Tracking must not change timing: completion matches the flat model.
	done := c.Access(0, addr.Phys(192), false)
	if want := 5*p.DRAMOccupancy + p.DRAMLatency; done != want {
		t.Errorf("timed completion = %d, want %d", done, want)
	}
}

func TestMetricsInstrumentation(t *testing.T) {
	p := params.Default()
	eng := sim.New()
	c := NewController(eng, 1, 0, p)
	c.Access(0, addr.Phys(0), false)
	c.Access(0, addr.Phys(64), true)

	snap := eng.Metrics().Snapshot()
	ls := metrics.L("node", "1", "mc", "0")
	for fam, want := range map[string]float64{
		metrics.FamDRAMReads:   1,
		metrics.FamDRAMWrites:  1,
		metrics.FamDRAMRowHits: 1,
	} {
		if got, _ := snap.Value(fam, ls); got != want {
			t.Errorf("%s = %v, want %v", fam, got, want)
		}
	}
}

func TestBankSocketInterleaving(t *testing.T) {
	p := params.Default() // 4 sockets × 4 GB
	eng := sim.New()
	b := NewBank(eng, 1, p)

	if len(b.Controllers()) != 4 {
		t.Fatalf("controllers = %d", len(b.Controllers()))
	}
	// Touch one address per socket range; each controller sees one read.
	for s := 0; s < 4; s++ {
		a := addr.Phys(uint64(s) * (4 << 30))
		if _, err := b.Access(0, a, false); err != nil {
			t.Fatalf("access socket %d: %v", s, err)
		}
	}
	for s, c := range b.Controllers() {
		if c.Reads != 1 {
			t.Errorf("socket %d saw %d reads, want 1", s, c.Reads)
		}
	}
	r, w := b.Stats()
	if r != 4 || w != 0 {
		t.Errorf("Stats = %d/%d", r, w)
	}
}

func TestBankParallelismAcrossSockets(t *testing.T) {
	p := params.Default()
	b := NewBank(sim.New(), 1, p)
	// Two simultaneous accesses to different sockets don't queue on each
	// other; two to the same socket do.
	d1, _ := b.Access(0, addr.Phys(0), false)
	d2, _ := b.Access(0, addr.Phys(4<<30), false)
	if d1 != d2 {
		t.Errorf("cross-socket accesses serialized: %d vs %d", d1, d2)
	}
	d3, _ := b.Access(0, addr.Phys(64), false)
	if d3 <= d1 {
		t.Errorf("same-socket access did not queue: %d", d3)
	}
}

func TestBankRejections(t *testing.T) {
	p := params.Default()
	b := NewBank(sim.New(), 1, p)
	if _, err := b.Access(0, addr.Phys(0x100).WithNode(3), false); err == nil {
		t.Error("prefixed address accepted by local bank")
	}
	if _, err := b.Access(0, addr.Phys(p.MemPerNode), false); err == nil {
		t.Error("beyond-memory address accepted")
	}
}
