// Package dram models the per-socket memory controllers of one node:
// each socket's controller is a FIFO single server with a fixed access
// latency plus a service occupancy that bounds its bandwidth. Local
// addresses are interleaved across sockets exactly as the BAR layout in
// package ht distributes them.
package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/sim"
)

// RowBytes is the open-row granularity tracked per controller: a typical
// DDR row buffer (8 KiB). Row hits/conflicts are observational — the
// calibrated flat DRAMLatency already averages over row behaviour, so
// tracking does not change timing.
const RowBytes = 8 << 10

// Controller is one socket's memory controller.
type Controller struct {
	res *sim.Resource
	p   params.Params

	// lastRow is the open row (-1 when no row has been activated).
	lastRow int64

	// Reads and Writes count serviced requests; RowHits and RowConflicts
	// count accesses landing in / evicting the open row.
	Reads, Writes         uint64
	RowHits, RowConflicts uint64
}

// NewController creates one socket's controller and registers its
// counters under node/mc labels.
func NewController(eng *sim.Engine, node addr.NodeID, socket int, p params.Params) *Controller {
	c := &Controller{
		res:     sim.NewResource(eng, fmt.Sprintf("node%d/mc%d", node, socket), 0),
		p:       p,
		lastRow: -1,
	}
	ls := metrics.L("node", fmt.Sprintf("%d", node), "mc", fmt.Sprintf("%d", socket))
	m := eng.Metrics()
	m.CounterFunc(metrics.FamDRAMReads, "read requests serviced", ls, func() uint64 { return c.Reads })
	m.CounterFunc(metrics.FamDRAMWrites, "write requests serviced", ls, func() uint64 { return c.Writes })
	m.CounterFunc(metrics.FamDRAMRowHits, "accesses landing in the open row", ls, func() uint64 { return c.RowHits })
	m.CounterFunc(metrics.FamDRAMRowConflicts, "accesses evicting the open row", ls, func() uint64 { return c.RowConflicts })
	return c
}

// Access services one request to local address a arriving at now and
// returns its completion time: the request queues behind earlier ones
// (occupancy), then takes the DRAM access latency. Row-buffer locality
// is tracked for observability; it does not alter timing.
func (c *Controller) Access(now sim.Time, a addr.Phys, write bool) sim.Time {
	done, _ := c.res.Acquire(now, c.p.DRAMOccupancy)
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	row := int64(uint64(a) / RowBytes)
	switch {
	case row == c.lastRow:
		c.RowHits++
	case c.lastRow >= 0:
		c.RowConflicts++
	}
	c.lastRow = row
	return done + c.p.DRAMLatency
}

// Utilization returns the controller's occupancy fraction.
func (c *Controller) Utilization(elapsed sim.Time) float64 { return c.res.Utilization(elapsed) }

// Bank is the set of controllers of one node plus the socket-interleaved
// routing between them.
type Bank struct {
	ctrls   []*Controller
	memEach uint64
}

// NewBank builds one node's memory controllers.
func NewBank(eng *sim.Engine, node addr.NodeID, p params.Params) *Bank {
	b := &Bank{memEach: p.MemPerNode}
	for s := 0; s < p.SocketsPerNode; s++ {
		b.ctrls = append(b.ctrls, NewController(eng, node, s, p))
	}
	return b
}

// Access routes a local-address request to its socket's controller and
// returns the completion time.
func (b *Bank) Access(now sim.Time, a addr.Phys, write bool) (sim.Time, error) {
	if !a.IsLocal() {
		return 0, fmt.Errorf("dram: %v carries a node prefix; only local addresses reach the controllers", a)
	}
	if uint64(a) >= b.memEach {
		return 0, fmt.Errorf("dram: %v beyond installed memory (%d bytes)", a, b.memEach)
	}
	per := b.memEach / uint64(len(b.ctrls))
	s := int(uint64(a) / per)
	if s >= len(b.ctrls) {
		s = len(b.ctrls) - 1
	}
	return b.ctrls[s].Access(now, a, write), nil
}

// Controllers returns the per-socket controllers for inspection.
func (b *Bank) Controllers() []*Controller { return b.ctrls }

// Stats sums reads and writes across the bank.
func (b *Bank) Stats() (reads, writes uint64) {
	for _, c := range b.ctrls {
		reads += c.Reads
		writes += c.Writes
	}
	return
}

// RowStats sums row-buffer hits and conflicts across the bank.
func (b *Bank) RowStats() (hits, conflicts uint64) {
	for _, c := range b.ctrls {
		hits += c.RowHits
		conflicts += c.RowConflicts
	}
	return
}
