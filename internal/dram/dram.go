// Package dram models the per-socket memory controllers of one node:
// each socket's controller is a FIFO single server with a fixed access
// latency plus a service occupancy that bounds its bandwidth. Local
// addresses are interleaved across sockets exactly as the BAR layout in
// package ht distributes them.
package dram

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/sim"
)

// Controller is one socket's memory controller.
type Controller struct {
	res *sim.Resource
	p   params.Params

	// Reads and Writes count serviced requests.
	Reads, Writes uint64
}

// NewController creates a controller named for diagnostics.
func NewController(eng *sim.Engine, name string, p params.Params) *Controller {
	return &Controller{res: sim.NewResource(eng, name, 0), p: p}
}

// Access services one request arriving at now and returns its completion
// time: the request queues behind earlier ones (occupancy), then takes
// the DRAM access latency.
func (c *Controller) Access(now sim.Time, write bool) sim.Time {
	done, _ := c.res.Acquire(now, c.p.DRAMOccupancy)
	if write {
		c.Writes++
	} else {
		c.Reads++
	}
	return done + c.p.DRAMLatency
}

// Utilization returns the controller's occupancy fraction.
func (c *Controller) Utilization(elapsed sim.Time) float64 { return c.res.Utilization(elapsed) }

// Bank is the set of controllers of one node plus the socket-interleaved
// routing between them.
type Bank struct {
	ctrls   []*Controller
	memEach uint64
}

// NewBank builds one node's memory controllers.
func NewBank(eng *sim.Engine, node addr.NodeID, p params.Params) *Bank {
	b := &Bank{memEach: p.MemPerNode}
	for s := 0; s < p.SocketsPerNode; s++ {
		b.ctrls = append(b.ctrls, NewController(eng, fmt.Sprintf("node%d/mc%d", node, s), p))
	}
	return b
}

// Access routes a local-address request to its socket's controller and
// returns the completion time.
func (b *Bank) Access(now sim.Time, a addr.Phys, write bool) (sim.Time, error) {
	if !a.IsLocal() {
		return 0, fmt.Errorf("dram: %v carries a node prefix; only local addresses reach the controllers", a)
	}
	if uint64(a) >= b.memEach {
		return 0, fmt.Errorf("dram: %v beyond installed memory (%d bytes)", a, b.memEach)
	}
	per := b.memEach / uint64(len(b.ctrls))
	s := int(uint64(a) / per)
	if s >= len(b.ctrls) {
		s = len(b.ctrls) - 1
	}
	return b.ctrls[s].Access(now, write), nil
}

// Controllers returns the per-socket controllers for inspection.
func (b *Bank) Controllers() []*Controller { return b.ctrls }

// Stats sums reads and writes across the bank.
func (b *Bank) Stats() (reads, writes uint64) {
	for _, c := range b.ctrls {
		reads += c.Reads
		writes += c.Writes
	}
	return
}
