// Package runner is the run-level parallel execution layer of the
// experiment harness. Every sweep point of the paper's evaluation is an
// independent, deterministic, single-threaded simulation (fresh
// sim.Engine + core.System per run), so runs can execute concurrently
// without touching the event engine's determinism. The runner provides
// the three pieces the harness needs:
//
//   - Pool: a bounded worker pool (default GOMAXPROCS workers) with a
//     FIFO task queue, so one worker executes tasks in exactly
//     submission order — `-parallel 1` reproduces the old serial
//     harness bit for bit.
//   - Future/Group: futures with index-stable collection, so figure
//     rows come out in submission order no matter which worker finished
//     first.
//   - Map: the convenience wrapper generators use to convert a
//     `for i { run(i) }` sweep into a parallel fan-out.
//
// Determinism contract: simulations are single-threaded *per run*; runs
// execute concurrently; results are merged in submission order. A task
// must not share mutable state with other tasks — each builds its own
// engine, system, accessors, and RNGs from the experiment seed.
//
// Tasks must not submit to the pool they run on: with every worker
// blocked in Submit the queue can never drain. The harness has no such
// nesting (generators submit, workers only simulate).
package runner

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// ErrCanceled marks a task that was skipped because an earlier-submitted
// task in its Group failed before this one started.
var ErrCanceled = errors.New("runner: canceled after earlier failure")

// Pool is a bounded worker pool with a FIFO task queue. The zero value
// is not usable; create pools with NewPool and release them with Close.
type Pool struct {
	tasks   chan func()
	wg      sync.WaitGroup
	workers int
	closed  bool
}

// NewPool starts a pool with the given number of workers; workers <= 0
// means GOMAXPROCS (all cores).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func()), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Close waits for all submitted work to finish and releases the
// workers. The pool cannot be reused afterward. Close is idempotent but
// must be called from the submitting goroutine (it is not safe to race
// with Submit).
func (p *Pool) Close() {
	if !p.closed {
		p.closed = true
		close(p.tasks)
		p.wg.Wait()
	}
}

// Future holds the eventual result of a submitted task.
type Future[T any] struct {
	done chan struct{}
	val  T
	err  error
}

// Wait blocks until the task finishes and returns its result.
func (f *Future[T]) Wait() (T, error) {
	<-f.done
	return f.val, f.err
}

// Submit hands fn to the pool and returns its future. Submit blocks
// while every worker is busy, bounding in-flight work at the pool size;
// the FIFO queue means a one-worker pool executes tasks in exactly
// submission order.
func Submit[T any](p *Pool, fn func() (T, error)) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	p.tasks <- func() {
		defer close(f.done)
		f.val, f.err = fn()
	}
	return f
}

// Group collects the futures of a related set of tasks so their results
// can be read back in submission order. After any task fails, tasks
// that have not yet started are skipped (their result is ErrCanceled),
// mirroring a serial loop that stops at the first error. Go and Wait
// must be called from one goroutine.
type Group[T any] struct {
	pool   *Pool
	futs   []*Future[T]
	failed atomic.Bool
}

// NewGroup creates a group submitting to p.
func NewGroup[T any](p *Pool) *Group[T] { return &Group[T]{pool: p} }

// Go submits one task. Wait returns results in Go-call order.
func (g *Group[T]) Go(fn func() (T, error)) {
	g.futs = append(g.futs, Submit(g.pool, func() (T, error) {
		if g.failed.Load() {
			var zero T
			return zero, ErrCanceled
		}
		v, err := fn()
		if err != nil {
			g.failed.Store(true)
		}
		return v, err
	}))
}

// Wait blocks for every submitted task and returns their results in
// submission order. The returned error is the earliest-submitted task
// failure that actually ran — never ErrCanceled. With one worker this
// is exactly the error a serial loop would have stopped at; with more,
// a later-submitted failure can cancel an earlier task before it runs,
// in which case the later error surfaces.
func (g *Group[T]) Wait() ([]T, error) {
	out := make([]T, len(g.futs))
	var firstErr error
	for i, f := range g.futs {
		v, err := f.Wait()
		out[i] = v
		if err != nil && firstErr == nil && !errors.Is(err, ErrCanceled) {
			firstErr = err
		}
	}
	return out, firstErr
}

// Map runs fn(0..n-1) on a fresh pool with the given worker bound and
// returns the results in index order, or the earliest-index error. It
// is the harness's standard conversion of a serial sweep loop:
//
//	for i := range points { y[i] = run(i) }
//
// becomes
//
//	y, err := runner.Map(parallel, len(points), run)
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	p := NewPool(workers)
	defer p.Close()
	g := NewGroup[T](p)
	for i := 0; i < n; i++ {
		i := i
		g.Go(func() (T, error) { return fn(i) })
	}
	return g.Wait()
}
