package runner

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapIndexStableOrdering(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(workers, 100, func(i int) (int, error) {
			// Stagger completion so later indexes often finish first.
			time.Sleep(time.Duration(100-i) * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestSingleWorkerRunsInSubmissionOrder(t *testing.T) {
	var mu sync.Mutex
	var order []int
	_, err := Map(1, 50, func(i int) (struct{}, error) {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not FIFO at position %d", order, i)
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	boom7 := errors.New("boom at 7")
	out, err := Map(4, 20, func(i int) (int, error) {
		if i == 7 {
			return 0, boom7
		}
		if i == 13 {
			return 0, errors.New("boom at 13")
		}
		return i, nil
	})
	// Which real failure surfaces depends on scheduling, but a real
	// failure must surface, never the internal cancellation sentinel.
	if err == nil || errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want a task failure", err)
	}
	if len(out) != 20 {
		t.Fatalf("results truncated to %d", len(out))
	}
}

func TestErrorPropagationSerialSemantics(t *testing.T) {
	// One worker executes in submission order, so the earliest-index
	// failure surfaces and later tasks are canceled — exactly what the
	// old serial sweep loops did.
	boom7 := errors.New("boom at 7")
	out, err := Map(1, 20, func(i int) (int, error) {
		if i == 7 {
			return 0, boom7
		}
		if i == 13 {
			return 0, errors.New("boom at 13")
		}
		return i, nil
	})
	if !errors.Is(err, boom7) {
		t.Fatalf("err = %v, want the earliest-index failure", err)
	}
	// Successful results before the failure are intact.
	for i := 0; i < 7; i++ {
		if out[i] != i {
			t.Errorf("out[%d] = %d", i, out[i])
		}
	}
}

func TestCancellationOnFirstError(t *testing.T) {
	// One worker: task 3 fails, so tasks 4..9 must be skipped, never run.
	var ran atomic.Int32
	p := NewPool(1)
	defer p.Close()
	g := NewGroup[int](p)
	for i := 0; i < 10; i++ {
		i := i
		g.Go(func() (int, error) {
			ran.Add(1)
			if i == 3 {
				return 0, fmt.Errorf("fail at %d", i)
			}
			return i, nil
		})
	}
	out, err := g.Wait()
	if err == nil || err.Error() != "fail at 3" {
		t.Fatalf("err = %v", err)
	}
	if got := ran.Load(); got != 4 {
		t.Errorf("%d tasks ran, want 4 (0..3 then cancellation)", got)
	}
	if len(out) != 10 {
		t.Errorf("got %d results", len(out))
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	_, err := Map(workers, 30, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeded pool bound %d", p, workers)
	}
}

func TestPoolDefaultsToAllCores(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Errorf("Workers() = %d", p.Workers())
	}
}

func TestFutureWait(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	f := Submit(p, func() (string, error) { return "done", nil })
	v, err := f.Wait()
	if v != "done" || err != nil {
		t.Fatalf("Wait = %q, %v", v, err)
	}
	// Waiting again returns the same result.
	v, err = f.Wait()
	if v != "done" || err != nil {
		t.Fatalf("second Wait = %q, %v", v, err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestMapZeroTasks(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("Map(0 tasks) = %v, %v", out, err)
	}
}
