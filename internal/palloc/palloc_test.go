package palloc

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/params"
)

func newAlloc(t *testing.T, start, size uint64) *Allocator {
	t.Helper()
	a, err := New(addr.Range{Start: addr.Phys(start), Size: size})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewValidation(t *testing.T) {
	if _, err := New(addr.Range{Start: 0, Size: 0}); err == nil {
		t.Error("empty zone accepted")
	}
	if _, err := New(addr.Range{Start: 1, Size: params.PageSize}); err == nil {
		t.Error("unaligned start accepted")
	}
	if _, err := New(addr.Range{Start: 0, Size: params.PageSize + 1}); err == nil {
		t.Error("unaligned size accepted")
	}
	if _, err := New(addr.Range{Start: addr.Phys(0x100).WithNode(2).Page(params.PageSize), Size: params.PageSize}); err == nil {
		t.Error("prefixed zone accepted")
	}
}

func TestFirstFitAndRounding(t *testing.T) {
	a := newAlloc(t, 0, 16*params.PageSize)
	r1, err := a.Alloc(100) // rounds to one page
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size != params.PageSize || r1.Start != 0 {
		t.Errorf("first alloc = %v", r1)
	}
	r2, _ := a.Alloc(2 * params.PageSize)
	if r2.Start != params.PageSize {
		t.Errorf("second alloc = %v, want adjacent first-fit", r2)
	}
	if a.Free() != 13*params.PageSize {
		t.Errorf("Free = %d", a.Free())
	}
	if a.Allocated != 3*params.PageSize {
		t.Errorf("Allocated = %d", a.Allocated)
	}
}

func TestExhaustion(t *testing.T) {
	a := newAlloc(t, 0, 4*params.PageSize)
	if _, err := a.Alloc(5 * params.PageSize); err == nil {
		t.Error("oversized alloc accepted")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
	if _, err := a.Alloc(4 * params.PageSize); err != nil {
		t.Errorf("exact-fit alloc failed: %v", err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("alloc from empty allocator accepted")
	}
}

func TestReleaseAndCoalesce(t *testing.T) {
	a := newAlloc(t, 0, 8*params.PageSize)
	r1, _ := a.Alloc(2 * params.PageSize)
	r2, _ := a.Alloc(2 * params.PageSize)
	r3, _ := a.Alloc(2 * params.PageSize)
	// Free the middle, then its neighbors; everything must coalesce so a
	// full-size alloc succeeds again.
	for _, r := range []addr.Range{r2, r1, r3} {
		if err := a.Release(r); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Alloc(8 * params.PageSize); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestFragmentationIsVisible(t *testing.T) {
	a := newAlloc(t, 0, 6*params.PageSize)
	var got []addr.Range
	for i := 0; i < 6; i++ {
		r, err := a.Alloc(params.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	// Free every other page: 3 pages free, largest extent 1 page.
	for i := 0; i < 6; i += 2 {
		if err := a.Release(got[i]); err != nil {
			t.Fatal(err)
		}
	}
	if a.Free() != 3*params.PageSize {
		t.Errorf("Free = %d", a.Free())
	}
	if a.LargestExtent() != params.PageSize {
		t.Errorf("LargestExtent = %d", a.LargestExtent())
	}
	if _, err := a.Alloc(2 * params.PageSize); err == nil {
		t.Error("fragmented allocator satisfied a contiguous request it cannot hold")
	}
}

func TestReleaseErrors(t *testing.T) {
	a := newAlloc(t, params.PageSize, 4*params.PageSize)
	r, _ := a.Alloc(params.PageSize)
	if err := a.Release(addr.Range{Start: 0, Size: params.PageSize}); err == nil {
		t.Error("release outside zone accepted")
	}
	if err := a.Release(addr.Range{Start: r.Start + 1, Size: params.PageSize}); err == nil {
		t.Error("unaligned release accepted")
	}
	if err := a.Release(r); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(r); err == nil {
		t.Error("double free accepted")
	}
}

func TestContains(t *testing.T) {
	a := newAlloc(t, params.PageSize, 4*params.PageSize)
	if !a.Contains(addr.Range{Start: addr.Phys(params.PageSize), Size: params.PageSize}) {
		t.Error("in-zone range rejected")
	}
	if a.Contains(addr.Range{Start: 0, Size: params.PageSize}) {
		t.Error("out-of-zone range accepted")
	}
}

// TestConservationProperty: free + allocated is invariant, allocations
// never overlap, and full release restores the zone.
func TestConservationProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		const zone = 64 * params.PageSize
		a, err := New(addr.Range{Start: 0, Size: zone})
		if err != nil {
			return false
		}
		var live []addr.Range
		for _, op := range ops {
			if op%2 == 0 || len(live) == 0 {
				size := uint64(op%8+1) * params.PageSize
				r, err := a.Alloc(size)
				if err != nil {
					continue // exhaustion is fine
				}
				for _, o := range live {
					if o.Overlaps(r) {
						return false
					}
				}
				live = append(live, r)
			} else {
				i := int(op) % len(live)
				if err := a.Release(live[i]); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			var liveBytes uint64
			for _, o := range live {
				liveBytes += o.Size
			}
			if a.Free()+liveBytes != zone || a.Allocated != liveBytes {
				return false
			}
		}
		for _, o := range live {
			if err := a.Release(o); err != nil {
				return false
			}
		}
		return a.Free() == zone && a.LargestExtent() == zone
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
