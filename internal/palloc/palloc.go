// Package palloc implements the physical-frame extent allocator the OS
// model uses for both its private zone and the pooled zone it donates
// from. Reservations are contiguous, page-aligned extents — the paper's
// reservation example hands out a contiguous physical area precisely so
// that one (start, size) pair and one prefix rewrite describe the whole
// grant — allocated first-fit and coalesced on release.
package palloc

import (
	"fmt"
	"sort"

	"repro/internal/addr"
	"repro/internal/params"
)

// Allocator hands out contiguous extents from one physical zone.
type Allocator struct {
	zone addr.Range
	// free holds disjoint free extents sorted by start.
	free []addr.Range

	// Allocated tracks outstanding bytes for accounting.
	Allocated uint64
}

// New creates an allocator over the given zone. The zone must be
// page-aligned and local (the allocator manages one node's frames; the
// prefix is applied later, by the reservation protocol).
func New(zone addr.Range) (*Allocator, error) {
	if zone.Size == 0 || zone.Size%params.PageSize != 0 || uint64(zone.Start)%params.PageSize != 0 {
		return nil, fmt.Errorf("palloc: zone %v not page-aligned", zone)
	}
	if !zone.Start.IsLocal() || !(zone.End() - 1).IsLocal() {
		return nil, fmt.Errorf("palloc: zone %v not within the local address space", zone)
	}
	return &Allocator{zone: zone, free: []addr.Range{zone}}, nil
}

// Zone returns the zone this allocator manages.
func (a *Allocator) Zone() addr.Range { return a.zone }

// Free returns the total free bytes.
func (a *Allocator) Free() uint64 {
	var total uint64
	for _, e := range a.free {
		total += e.Size
	}
	return total
}

// LargestExtent returns the size of the largest contiguous free extent —
// what a single reservation can actually get.
func (a *Allocator) LargestExtent() uint64 {
	var best uint64
	for _, e := range a.free {
		if e.Size > best {
			best = e.Size
		}
	}
	return best
}

// Alloc reserves a contiguous extent of the given size (rounded up to
// pages), first-fit.
func (a *Allocator) Alloc(size uint64) (addr.Range, error) {
	if size == 0 {
		return addr.Range{}, fmt.Errorf("palloc: zero-size allocation")
	}
	size = roundUp(size)
	for i, e := range a.free {
		if e.Size < size {
			continue
		}
		got := addr.Range{Start: e.Start, Size: size}
		if e.Size == size {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = addr.Range{Start: e.Start + addr.Phys(size), Size: e.Size - size}
		}
		a.Allocated += size
		return got, nil
	}
	return addr.Range{}, fmt.Errorf("palloc: no contiguous extent of %d bytes (largest %d, free %d)",
		size, a.LargestExtent(), a.Free())
}

// Release returns an extent. It must exactly cover previously allocated,
// currently-unreleased frames; overlapping the free list is an error.
func (a *Allocator) Release(r addr.Range) error {
	if r.Size == 0 || r.Size%params.PageSize != 0 || uint64(r.Start)%params.PageSize != 0 {
		return fmt.Errorf("palloc: release %v not page-aligned", r)
	}
	if r.Start < a.zone.Start || r.End() > a.zone.End() {
		return fmt.Errorf("palloc: release %v outside zone %v", r, a.zone)
	}
	for _, e := range a.free {
		if e.Overlaps(r) {
			return fmt.Errorf("palloc: release %v overlaps free extent %v (double free?)", r, e)
		}
	}
	a.free = append(a.free, r)
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].Start < a.free[j].Start })
	// Coalesce adjacent extents.
	out := a.free[:0]
	for _, e := range a.free {
		if n := len(out); n > 0 && out[n-1].End() == e.Start {
			out[n-1].Size += e.Size
		} else {
			out = append(out, e)
		}
	}
	a.free = out
	a.Allocated -= r.Size
	return nil
}

// Contains reports whether the extent lies inside the allocator's zone.
func (a *Allocator) Contains(r addr.Range) bool {
	return r.Start >= a.zone.Start && r.End() <= a.zone.End()
}

func roundUp(n uint64) uint64 {
	return (n + params.PageSize - 1) &^ uint64(params.PageSize-1)
}
