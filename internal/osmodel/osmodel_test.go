package osmodel

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/memdir"
	"repro/internal/mesh"
	"repro/internal/params"
)

// world builds agents for every node of the default 4x4 prototype.
type world struct {
	dir    *memdir.Directory
	agents map[addr.NodeID]*Agent
}

func newWorld(t *testing.T) *world {
	t.Helper()
	p := params.Default()
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{
		dir:    memdir.New(func(a, b addr.NodeID) int { return topo.Hops(a, b) }),
		agents: map[addr.NodeID]*Agent{},
	}
	resolver := func(n addr.NodeID) (*Agent, error) {
		a, ok := w.agents[n]
		if !ok {
			return nil, fmt.Errorf("no agent %d", n)
		}
		return a, nil
	}
	for i := 1; i <= topo.Nodes(); i++ {
		a, err := NewAgent(addr.NodeID(i), p, w.dir)
		if err != nil {
			t.Fatal(err)
		}
		a.SetPeers(resolver)
		w.agents[addr.NodeID(i)] = a
	}
	return w
}

func TestNewAgentValidation(t *testing.T) {
	if _, err := NewAgent(1, params.Default(), nil); err == nil {
		t.Error("nil directory accepted")
	}
	bad := params.Default()
	bad.MeshWidth = 0
	if _, err := NewAgent(1, bad, memdir.New(nil)); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestZonesAndRegistration(t *testing.T) {
	w := newWorld(t)
	p := params.Default()
	a := w.agents[1]
	if a.PrivateFree() != p.PrivateMemPerNode {
		t.Errorf("PrivateFree = %d", a.PrivateFree())
	}
	if a.PooledFree() != p.PooledMemPerNode() {
		t.Errorf("PooledFree = %d", a.PooledFree())
	}
	if w.dir.TotalFree() != p.PoolSize() {
		t.Errorf("directory pool = %d, want 128 GiB", w.dir.TotalFree())
	}
}

func TestPrivateAllocation(t *testing.T) {
	w := newWorld(t)
	a := w.agents[1]
	r, err := a.AllocPrivate(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Start.IsLocal() {
		t.Error("private allocation carries a prefix")
	}
	if err := a.FreePrivate(r); err != nil {
		t.Fatal(err)
	}
}

func TestReservationProtocolFig4(t *testing.T) {
	w := newWorld(t)
	p := params.Default()
	requester, donorID := w.agents[1], addr.NodeID(3)

	r, err := requester.ReserveRemoteFrom(donorID, 4<<30)
	if err != nil {
		t.Fatal(err)
	}
	// The granted range is prefixed with the donor's identifier and lies
	// in the donor's pooled zone.
	if r.Node() != donorID {
		t.Errorf("grant prefix = %d, want %d", r.Node(), donorID)
	}
	if uint64(r.Start.Local()) < p.PrivateMemPerNode {
		t.Errorf("grant %v cuts into the donor's private zone", r)
	}
	if r.Size != 4<<30 {
		t.Errorf("grant size = %d", r.Size)
	}
	if err := r.CheckSameNode(); err != nil {
		t.Error(err)
	}

	donor := w.agents[donorID]
	if donor.GrantedBytes() != 4<<30 {
		t.Errorf("donor GrantedBytes = %d", donor.GrantedBytes())
	}
	if requester.BorrowedBytes() != 4<<30 {
		t.Errorf("requester BorrowedBytes = %d", requester.BorrowedBytes())
	}
	if got := requester.EffectiveMemory(); got != p.PrivateMemPerNode+4<<30 {
		t.Errorf("EffectiveMemory = %d", got)
	}
	if w.dir.Free(donorID) != p.PooledMemPerNode()-4<<30 {
		t.Errorf("directory out of sync: %d", w.dir.Free(donorID))
	}

	// Release restores everything.
	if err := requester.ReleaseRemote(r); err != nil {
		t.Fatal(err)
	}
	if donor.GrantedBytes() != 0 || requester.BorrowedBytes() != 0 {
		t.Error("release did not clear accounting")
	}
	if w.dir.Free(donorID) != p.PooledMemPerNode() {
		t.Error("directory not restored")
	}
}

func TestReserveRemotePolicies(t *testing.T) {
	w := newWorld(t)
	// Nearest: node 1 at (0,0) should get node 2 or 5 (1 hop).
	r, err := w.agents[1].ReserveRemote(1<<30, memdir.Nearest)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Node(); n != 2 && n != 5 {
		t.Errorf("Nearest donor = %d, want a 1-hop neighbor", n)
	}
	// MostFree now avoids the one that just donated.
	r2, err := w.agents[1].ReserveRemote(1<<30, memdir.MostFree)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Node() == r.Node() {
		t.Errorf("MostFree picked the depleted donor %d", r2.Node())
	}
}

func TestGrantValidation(t *testing.T) {
	w := newWorld(t)
	a := w.agents[2]
	if _, err := a.Grant(2, 1<<20); err == nil {
		t.Error("self-grant accepted")
	}
	if _, err := a.Grant(0, 1<<20); err == nil {
		t.Error("grant to node 0 accepted")
	}
	if _, err := a.Grant(1, 100<<30); err == nil {
		t.Error("grant beyond pooled zone accepted")
	}
}

func TestRevokeValidation(t *testing.T) {
	w := newWorld(t)
	donor := w.agents[3]
	r, err := donor.Grant(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong owner prefix.
	if err := donor.Revoke(1, addr.Range{Start: addr.Phys(0x1000).WithNode(4), Size: 1 << 20}); err == nil {
		t.Error("revoke of foreign range accepted")
	}
	// Wrong requester.
	if err := donor.Revoke(2, r); err == nil {
		t.Error("revoke by non-holder accepted")
	}
	// Partial revoke.
	half := addr.Range{Start: r.Start, Size: r.Size / 2}
	if err := donor.Revoke(1, half); err == nil {
		t.Error("partial revoke accepted")
	}
	// Unknown grant.
	bogus := addr.Range{Start: addr.Phys(uint64(r.Start.Local()) + 8<<20).WithNode(3), Size: 1 << 20}
	if err := donor.Revoke(1, bogus); err == nil {
		t.Error("revoke of unknown grant accepted")
	}
	if err := donor.Revoke(1, r); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseRemoteValidation(t *testing.T) {
	w := newWorld(t)
	if err := w.agents[1].ReleaseRemote(addr.Range{Start: addr.Phys(0x1000).WithNode(2), Size: 1 << 20}); err == nil {
		t.Error("release of never-borrowed range accepted")
	}
}

func TestPoolExhaustionAcrossGrants(t *testing.T) {
	w := newWorld(t)
	p := params.Default()
	// Drain node 2's pool via two holders.
	half := p.PooledMemPerNode() / 2
	if _, err := w.agents[1].ReserveRemoteFrom(2, half); err != nil {
		t.Fatal(err)
	}
	if _, err := w.agents[3].ReserveRemoteFrom(2, half); err != nil {
		t.Fatal(err)
	}
	if _, err := w.agents[4].ReserveRemoteFrom(2, params.PageSize); err == nil {
		t.Error("grant from drained pool accepted")
	}
	if w.dir.Free(2) != 0 {
		t.Errorf("directory shows %d free on drained node", w.dir.Free(2))
	}
}

func TestAggregateBeyondOneNode(t *testing.T) {
	// The headline capability: one node aggregates more memory than any
	// single machine in the cluster holds (here 30 GB borrowed + 8 GB
	// private > 16 GB installed).
	w := newWorld(t)
	var total uint64
	for donor := addr.NodeID(2); donor <= 6; donor++ {
		r, err := w.agents[1].ReserveRemoteFrom(donor, 6<<30)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Size
	}
	if total != 30<<30 {
		t.Fatalf("aggregated %d bytes", total)
	}
	if got := w.agents[1].EffectiveMemory(); got <= params.Default().MemPerNode {
		t.Errorf("EffectiveMemory = %d, not beyond one node", got)
	}
	if len(w.agents[1].Borrowed()) != 5 {
		t.Errorf("Borrowed ranges = %d", len(w.agents[1].Borrowed()))
	}
}

func TestNoPeersErrors(t *testing.T) {
	d := memdir.New(nil)
	a, err := NewAgent(1, params.Default(), d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.ReserveRemote(1<<20, memdir.MostFree); err == nil {
		t.Error("reserve without peers accepted")
	}
	if _, err := a.ReserveRemoteFrom(2, 1<<20); err == nil {
		t.Error("reserve-from without peers accepted")
	}
}
