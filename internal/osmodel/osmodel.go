// Package osmodel is the per-node operating-system agent: it owns the
// node's physical zones (private to the local OS, pooled for the
// cluster), runs both sides of the remote-reservation protocol of
// Figure 4, and keeps the hot-plug accounting that tells the node how
// much memory it has effectively gained or lent.
//
// Reservation is software and deliberately not on the access fast path:
// the agent's job is to end with a *prefixed physical range* written
// into the requester's page table, after which every load and store is
// pure hardware.
package osmodel

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/memdir"
	"repro/internal/palloc"
	"repro/internal/params"
)

// PeerResolver finds another node's agent (the message channel of the
// reservation protocol).
type PeerResolver func(addr.NodeID) (*Agent, error)

// grant records an extent this node lent out.
type grant struct {
	to    addr.NodeID
	local addr.Range
}

// Agent is one node's OS.
type Agent struct {
	self  addr.NodeID
	p     params.Params
	dir   *memdir.Directory
	peers PeerResolver

	priv *palloc.Allocator // [0, PrivateMemPerNode): local OS + processes
	pool *palloc.Allocator // [PrivateMemPerNode, MemPerNode): donatable

	granted  map[addr.Phys]grant      // by local start
	borrowed map[addr.Phys]addr.Range // by prefixed start

	// Reservations counts grants served; Borrows counts acquisitions.
	Reservations, Borrows uint64
}

// NewAgent builds a node's OS agent and registers its pooled capacity
// with the directory.
func NewAgent(self addr.NodeID, p params.Params, dir *memdir.Directory) (*Agent, error) {
	if dir == nil {
		return nil, fmt.Errorf("osmodel: nil directory")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	priv, err := palloc.New(addr.Range{Start: 0, Size: p.PrivateMemPerNode})
	if err != nil {
		return nil, err
	}
	pool, err := palloc.New(addr.Range{Start: addr.Phys(p.PrivateMemPerNode), Size: p.PooledMemPerNode()})
	if err != nil {
		return nil, err
	}
	if err := dir.Register(self, p.PooledMemPerNode()); err != nil {
		return nil, err
	}
	return &Agent{
		self:     self,
		p:        p,
		dir:      dir,
		priv:     priv,
		pool:     pool,
		granted:  make(map[addr.Phys]grant),
		borrowed: make(map[addr.Phys]addr.Range),
	}, nil
}

// SetPeers wires the agent to the cluster's other agents.
func (a *Agent) SetPeers(r PeerResolver) { a.peers = r }

// Self returns the agent's node identifier.
func (a *Agent) Self() addr.NodeID { return a.self }

// AllocPrivate allocates local process memory from the private zone.
func (a *Agent) AllocPrivate(size uint64) (addr.Range, error) {
	return a.priv.Alloc(size)
}

// FreePrivate releases private-zone memory.
func (a *Agent) FreePrivate(r addr.Range) error {
	return a.priv.Release(r)
}

// PrivateFree returns the free bytes in the private zone.
func (a *Agent) PrivateFree() uint64 { return a.priv.Free() }

// PooledFree returns the free bytes remaining in the donatable zone.
func (a *Agent) PooledFree() uint64 { return a.pool.Free() }

// Grant is the donor half of Figure 4: reserve a contiguous pooled
// extent, pin it (the pooled zone is never handed to local processes, so
// pinning is structural), and return the range *prefixed with this
// node's identifier* — the modification that makes the requester's
// loads and stores route here.
func (a *Agent) Grant(requester addr.NodeID, size uint64) (addr.Range, error) {
	if requester == a.self {
		return addr.Range{}, fmt.Errorf("osmodel: node %d asked itself for memory", a.self)
	}
	if requester == 0 || requester > addr.MaxNode {
		return addr.Range{}, fmt.Errorf("osmodel: invalid requester %d", requester)
	}
	local, err := a.pool.Alloc(size)
	if err != nil {
		return addr.Range{}, fmt.Errorf("osmodel: node %d cannot grant %d bytes: %w", a.self, size, err)
	}
	a.granted[local.Start] = grant{to: requester, local: local}
	a.Reservations++
	return addr.Range{Start: local.Start.WithNode(a.self), Size: local.Size}, nil
}

// Revoke is the donor-side release: the requester returns a previously
// granted prefixed range.
func (a *Agent) Revoke(requester addr.NodeID, prefixed addr.Range) error {
	if prefixed.Node() != a.self {
		return fmt.Errorf("osmodel: node %d asked to revoke %v owned by node %d", a.self, prefixed, prefixed.Node())
	}
	local := addr.Range{Start: prefixed.Start.Local(), Size: prefixed.Size}
	g, ok := a.granted[local.Start]
	if !ok {
		return fmt.Errorf("osmodel: no grant at %v", local.Start)
	}
	if g.to != requester {
		return fmt.Errorf("osmodel: grant at %v belongs to node %d, not %d", local.Start, g.to, requester)
	}
	if g.local.Size != local.Size {
		return fmt.Errorf("osmodel: partial revoke %v of grant %v", local, g.local)
	}
	if err := a.pool.Release(local); err != nil {
		return err
	}
	delete(a.granted, local.Start)
	return nil
}

// ReserveRemote is the requester half: find a donor via the directory,
// obtain a grant, and record the borrowed (prefixed) range. The caller
// then maps it into a process address space — hot-plugging the memory.
func (a *Agent) ReserveRemote(size uint64, policy memdir.Policy) (addr.Range, error) {
	if a.peers == nil {
		return addr.Range{}, fmt.Errorf("osmodel: node %d has no peer resolver", a.self)
	}
	rounded := (size + params.PageSize - 1) &^ uint64(params.PageSize-1)
	donor, err := a.dir.FindDonor(a.self, rounded, policy)
	if err != nil {
		return addr.Range{}, err
	}
	return a.ReserveRemoteFrom(donor, rounded)
}

// ReserveRemoteFrom borrows from an explicit donor (experiments place
// memory servers deliberately; the general path goes via ReserveRemote).
func (a *Agent) ReserveRemoteFrom(donor addr.NodeID, size uint64) (addr.Range, error) {
	if a.peers == nil {
		return addr.Range{}, fmt.Errorf("osmodel: node %d has no peer resolver", a.self)
	}
	peer, err := a.peers(donor)
	if err != nil {
		return addr.Range{}, err
	}
	r, err := peer.Grant(a.self, size)
	if err != nil {
		return addr.Range{}, err
	}
	if err := a.dir.Consume(donor, r.Size); err != nil {
		// Roll the grant back rather than leak it.
		if rerr := peer.Revoke(a.self, r); rerr != nil {
			return addr.Range{}, fmt.Errorf("osmodel: %v (and rollback failed: %v)", err, rerr)
		}
		return addr.Range{}, err
	}
	a.borrowed[r.Start] = r
	a.Borrows++
	return r, nil
}

// ReleaseRemote returns a borrowed range to its donor and the directory.
func (a *Agent) ReleaseRemote(r addr.Range) error {
	if _, ok := a.borrowed[r.Start]; !ok {
		return fmt.Errorf("osmodel: node %d does not hold %v", a.self, r)
	}
	donor := r.Node()
	peer, err := a.peers(donor)
	if err != nil {
		return err
	}
	if err := peer.Revoke(a.self, r); err != nil {
		return err
	}
	if err := a.dir.ReleaseBytes(donor, r.Size); err != nil {
		return err
	}
	delete(a.borrowed, r.Start)
	return nil
}

// Allowed implements the RMC protection hook (rmc.Protection): a remote
// node may touch exactly the frames inside a grant it currently holds.
// This is the security component the paper defers — "a process … has no
// access to the memory in other regions" — enforced at the serving RMC.
func (a *Agent) Allowed(requester addr.NodeID, local addr.Range) bool {
	for _, g := range a.granted {
		if g.to == requester && local.Start >= g.local.Start && local.End() <= g.local.End() {
			return true
		}
	}
	return false
}

// BorrowedBytes returns how much remote memory this node currently holds.
func (a *Agent) BorrowedBytes() uint64 {
	var total uint64
	for _, r := range a.borrowed {
		total += r.Size
	}
	return total
}

// GrantedBytes returns how much of this node's memory is lent out.
func (a *Agent) GrantedBytes() uint64 {
	var total uint64
	for _, g := range a.granted {
		total += g.local.Size
	}
	return total
}

// Borrowed lists the prefixed ranges this node holds, in no particular
// order.
func (a *Agent) Borrowed() []addr.Range {
	out := make([]addr.Range, 0, len(a.borrowed))
	for _, r := range a.borrowed {
		out = append(out, r)
	}
	return out
}

// EffectiveMemory returns the memory a process on this node can reach:
// private memory plus current borrowings — the "new degree of freedom"
// of the paper's abstract.
func (a *Agent) EffectiveMemory() uint64 {
	return a.p.PrivateMemPerNode + a.BorrowedBytes()
}
