package integration

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/sim"
)

// newBarrierSmoke builds the 16x16, eight-shard cluster the barrier
// smokes run on.
func newBarrierSmoke(t *testing.T, window params.WindowMode, mut func(*params.Params)) (*cluster.Cluster, *sim.ShardSet, mesh.Topology) {
	t.Helper()
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 16, 16
	p.Shards = 8
	p.Window = window
	if mut != nil {
		mut(&p)
	}
	set := sim.NewShardSet(p.Shards, p.LinkLat.MinLatency(p.HopLatency))
	c, err := cluster.New(set, p)
	if err != nil {
		t.Fatal(err)
	}
	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		t.Fatal(err)
	}
	return c, set, topo
}

// localitySmoke is the tentpole's headline workload: four clients along
// the top row issue dependent access chains that are overwhelmingly
// local — stride reads missing cache and filling from the node's own
// bank, pure shard-local event work — with every sixty-fourth access a
// remote line read to the diametric partner. The rest of the mesh is
// idle. Under the uniform single-hop window the coordinator must
// barrier once per 120 ns of simulated time even though nothing
// crosses a shard for microseconds at a stretch; the adaptive schedule
// sees no pending cross-shard intent, plans unbounded windows, and only
// barriers when a send actually clamps one.
func localitySmoke(t *testing.T, window params.WindowMode) (barriers, elided uint64) {
	t.Helper()
	// The stream prefetcher stays off: the strided remote reads would
	// otherwise arm it and fill the quiet local stretches with
	// background fabric traffic — fine to simulate, but it makes the
	// barrier count pin prefetcher behavior rather than the window
	// schedule.
	c, set, topo := newBarrierSmoke(t, window, func(p *params.Params) { p.PrefetchDepth = 0 })
	const opsPerClient = 256
	// All four clients sit in the north-west region (shard 0 of the
	// 4x2 tiling); their diametric partners share the south-east
	// region, ten-plus hops away, so the lookahead matrix separates
	// the two busy shards by more than a microsecond of provable slack.
	for ci, cx := range []int{0, 1, 2, 3} {
		id := topo.NodeAt(cx, 0)
		x, y := topo.Coord(id)
		partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
		n := c.MustNode(id)
		base := 0x400000 + uint64(ci)*0x100000
		i := 0
		var step func(sim.Time)
		step = func(now sim.Time) {
			if i >= opsPerClient {
				return
			}
			i++
			a := addr.Phys(base + uint64(i)*4096)
			if i%64 == 0 {
				a = a.WithNode(partner)
			}
			n.Issue(now, 0, cpu.Access{Addr: a}, false, step)
		}
		step(set.Now())
	}
	set.Run()
	return set.Barriers, set.Elided
}

// concurrentSmoke is the sharded throughput benchmark's shape: every
// node issuing a remote read to its diametric partner, eight rounds.
// All-remote traffic is bounded below by one barrier per dependency
// phase — a delivery cannot exist until a barrier replays its send — so
// the schedule win here is modest by construction.
func concurrentSmoke(t *testing.T, window params.WindowMode) (barriers, elided uint64) {
	t.Helper()
	c, set, topo := newBarrierSmoke(t, window, nil)
	noop := func(sim.Time) {}
	for round := 0; round < 8; round++ {
		now := set.Now()
		for id := 1; id <= topo.Nodes(); id++ {
			x, y := topo.Coord(addr.NodeID(id))
			partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
			a := addr.Phys(0x100000 + uint64(id)*64).WithNode(partner)
			c.MustNode(addr.NodeID(id)).Issue(now, 0, cpu.Access{Addr: a}, false, noop)
		}
		set.Run()
	}
	return set.Barriers, set.Elided
}

// TestBarrierElisionOnLocalitySmoke pins the tentpole's headline win:
// on the skewed 16x16 locality smoke, distance lookahead plus barrier
// elision must cut the barrier count at least 5x against the PR 9
// uniform-window baseline, because the uniform cadence pays one barrier
// per 120 ns of dependent local work while the adaptive schedule only
// barriers around the sparse remote phases.
func TestBarrierElisionOnLocalitySmoke(t *testing.T) {
	uniform, _ := localitySmoke(t, params.WindowUniform)
	elide, elided := localitySmoke(t, params.WindowElide)
	t.Logf("locality barriers: uniform=%d elide=%d (%.1fx), elided=%d",
		uniform, elide, float64(uniform)/float64(elide), elided)
	if uniform == 0 || elide == 0 {
		t.Fatal("smoke ran no barriers — workload never reached the fabric")
	}
	if elide*5 > uniform {
		t.Errorf("elide barriers = %d, want at least 5x below uniform's %d", elide, uniform)
	}
	if elided == 0 {
		t.Error("elision counter stayed zero on the locality smoke")
	}
}

// TestBarrierElisionOnConcurrentSmoke checks the all-remote concurrent
// smoke still improves monotonically: the adaptive schedule must never
// barrier more than the uniform baseline, and must elide at least some
// windows even when every node is sending.
func TestBarrierElisionOnConcurrentSmoke(t *testing.T) {
	uniform, _ := concurrentSmoke(t, params.WindowUniform)
	elide, elided := concurrentSmoke(t, params.WindowElide)
	t.Logf("concurrent barriers: uniform=%d elide=%d (%.1fx), elided=%d",
		uniform, elide, float64(uniform)/float64(elide), elided)
	if uniform == 0 || elide == 0 {
		t.Fatal("smoke ran no barriers — workload never reached the fabric")
	}
	if elide > uniform {
		t.Errorf("elide barriers = %d, want no more than uniform's %d", elide, uniform)
	}
	if elided == 0 {
		t.Error("elision counter stayed zero on the concurrent smoke")
	}
}
