// Package integration runs full-system scenarios that cross package
// boundaries: micro-vs-macro layer agreement, end-to-end data flow
// through every component, failure injection, and whole-cluster
// conservation properties. It has no non-test code — the system under
// test is the rest of the repository.
package integration

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/ht"
	"repro/internal/memdir"
	"repro/internal/memmodel"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func newSystem(t *testing.T) *core.System {
	t.Helper()
	s, err := core.NewSystem(params.Default())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestMicroMacroAgreement: the discrete-event simulator and the
// O(1) macro model must agree on the mean latency of an uncontended
// single-threaded random remote stream — the regime both claim to
// cover. Tolerance is the link-occupancy and DRAM-occupancy terms the
// macro model folds away.
func TestMicroMacroAgreement(t *testing.T) {
	p := params.Default()
	for _, hops := range []int{1, 3, 6} {
		// Micro: one thread, one server at the given distance.
		sys := newSystem(t)
		topo := sys.Cluster().Topology()
		var server addr.NodeID
		for _, cand := range topo.AtDistance(1, hops) {
			server = cand
			break
		}
		if server == 0 {
			t.Fatalf("no server at %d hops", hops)
		}
		region, err := sys.Region(1)
		if err != nil {
			t.Fatal(err)
		}
		rng, err := region.GrowFrom(server, 32<<20)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workloads.RandomStream(1, []addr.Range{rng}, 3000, 0)
		if err != nil {
			t.Fatal(err)
		}
		node, err := sys.Cluster().Node(1)
		if err != nil {
			t.Fatal(err)
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Engine: node.Engine(), Memory: node, Stream: stream,
			WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
		sys.Run()
		micro := th.Latency.Mean()

		// Macro: Equation (2) at the same distance.
		macro := float64(memmodel.Remote{P: p, Hops: hops}.Access(0, false))

		if diff := math.Abs(micro-macro) / macro; diff > 0.15 {
			t.Errorf("hops=%d: micro %.0f ps vs macro %.0f ps (%.0f%% apart)",
				hops, micro, macro, diff*100)
		}
		if micro < macro {
			t.Errorf("hops=%d: micro (%.0f) below the queue-free analytic bound (%.0f)", hops, micro, macro)
		}
	}
}

// TestEndToEndDataPath: data written through one region's timed RMC
// path is visible to a different node reading the same physical memory
// through its own RMC — the shared pool is one pool.
func TestEndToEndDataPath(t *testing.T) {
	sys := newSystem(t)
	writerRegion, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := writerRegion.GrowFrom(7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := writerRegion.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	secret := []byte("one pool, no copies, no coherency")
	if err := writerRegion.Write(va, secret); err != nil {
		t.Fatal(err)
	}

	// Node 4 reads node 7's physical memory directly through its RMC.
	reader, err := sys.Cluster().RMC(4)
	if err != nil {
		t.Fatal(err)
	}
	req := ht.Packet{Cmd: ht.CmdRdSized, Addr: rng.Start, Count: 64}
	var got []byte
	if err := reader.Request(sys.Now(), req, false, func(_ sim.Time, rsp ht.Packet, _ error) {
		got = rsp.Data
	}); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if !bytes.Equal(got[:len(secret)], secret) {
		t.Errorf("node 4 read %q through its RMC", got[:len(secret)])
	}
}

// TestPoolExhaustionFailurePath: when the cluster pool drains, malloc
// fails with a meaningful error, already-allocated data stays intact,
// and releasing memory restores service.
func TestPoolExhaustionFailurePath(t *testing.T) {
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 2, 2
	p.MemPerNode = 256 << 20
	p.PrivateMemPerNode = 128 << 20
	p.OSReserveBytes = 16 << 20
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}

	// Drain everything: 128 MB private + 4 × 128 MB pooled.
	canary, err := region.Malloc(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.WriteUint64(canary, 0xCAFED00D); err != nil {
		t.Fatal(err)
	}
	var allocs []vm.Virt
	for {
		ptr, err := region.Malloc(32 << 20)
		if err != nil {
			break // exhausted, as expected
		}
		allocs = append(allocs, ptr)
	}
	if len(allocs) == 0 {
		t.Fatal("never exhausted the cluster")
	}
	if _, err := region.Malloc(32 << 20); err == nil {
		t.Fatal("allocation from a drained pool succeeded")
	}
	// The canary survived the failure path.
	v, err := region.ReadUint64(canary)
	if err != nil || v != 0xCAFED00D {
		t.Errorf("canary = %#x, %v", v, err)
	}
	// Freeing restores service via heap reuse.
	if err := region.Free(allocs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := region.Malloc(16 << 20); err != nil {
		t.Errorf("allocation after free failed: %v", err)
	}
}

// TestReservationDenialRollsBack: a reservation that the directory
// cannot account for must roll the donor grant back (no leaked pins).
func TestReservationDenialRollsBack(t *testing.T) {
	sys := newSystem(t)
	agent, err := sys.Agent(1)
	if err != nil {
		t.Fatal(err)
	}
	donor, err := sys.Agent(2)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for more than any node pools.
	if _, err := agent.ReserveRemote(9<<30, memdir.MostFree); err == nil {
		t.Fatal("impossible reservation succeeded")
	}
	if donor.GrantedBytes() != 0 {
		t.Error("failed reservation leaked a grant")
	}
	if agent.BorrowedBytes() != 0 {
		t.Error("failed reservation recorded a borrow")
	}
}

// TestFullClusterAggregation: one region aggregates the entire 128 GB
// pool minus its own contribution, touches memory on every donor, and
// verifies the data physically lands on 15 distinct nodes.
func TestFullClusterAggregation(t *testing.T) {
	sys := newSystem(t)
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	p := sys.Params()
	touched := map[addr.NodeID]bool{}
	const window = 4 << 20 // map a small window per donor; mapping 8 GB of PTEs per node is pointless for the check
	for donor := addr.NodeID(2); int(donor) <= p.Nodes(); donor++ {
		if _, err := region.GrowFrom(donor, p.PooledMemPerNode()-window); err != nil {
			t.Fatalf("donor %d bulk grow: %v", donor, err)
		}
		rng, err := region.GrowFrom(donor, window)
		if err != nil {
			t.Fatalf("donor %d: %v", donor, err)
		}
		va, err := region.MapBorrowed(rng)
		if err != nil {
			t.Fatal(err)
		}
		tag := []byte(fmt.Sprintf("donor-%02d", donor))
		if err := region.Write(va+777, tag); err != nil {
			t.Fatal(err)
		}
		st, err := sys.Cluster().Store(donor)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(tag))
		if err := st.ReadAt(rng.Start.Local()+777, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, tag) {
			t.Errorf("donor %d: stored %q", donor, got)
		}
		touched[donor] = true
	}
	if len(touched) != 15 {
		t.Errorf("aggregated from %d donors", len(touched))
	}
	want := p.PrivateMemPerNode + 15*p.PooledMemPerNode()
	if got := region.Agent().EffectiveMemory(); got != want {
		t.Errorf("effective memory = %d GB, want %d GB", got>>30, want>>30)
	}
	if sys.Directory().TotalFree() != p.PooledMemPerNode() {
		t.Errorf("pool should hold only node 1's own contribution, has %d", sys.Directory().TotalFree())
	}
}

// TestConcurrentRegionsIsolation: two regions on different nodes use
// disjoint physical memory even when borrowing from the same donor, and
// each sees only its own data.
func TestConcurrentRegionsIsolation(t *testing.T) {
	sys := newSystem(t)
	rA, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	rB, err := sys.Region(3)
	if err != nil {
		t.Fatal(err)
	}
	rngA, err := rA.GrowFrom(8, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	rngB, err := rB.GrowFrom(8, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rngA.Overlaps(rngB) {
		t.Fatalf("donor handed out overlapping grants: %v and %v", rngA, rngB)
	}
	vaA, err := rA.MapBorrowed(rngA)
	if err != nil {
		t.Fatal(err)
	}
	vaB, err := rB.MapBorrowed(rngB)
	if err != nil {
		t.Fatal(err)
	}
	if err := rA.Write(vaA, []byte("region A data")); err != nil {
		t.Fatal(err)
	}
	if err := rB.Write(vaB, []byte("region B data")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 13)
	if err := rA.Read(vaA, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "region A data" {
		t.Errorf("region A sees %q", got)
	}
	if err := rB.Read(vaB, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "region B data" {
		t.Errorf("region B sees %q", got)
	}
}

// TestDeterministicWholeSystem: the complete stack (reservation, malloc,
// threads, RMC, fabric, prefetcher) is bit-deterministic across runs.
func TestDeterministicWholeSystem(t *testing.T) {
	run := func() sim.Time {
		p := params.Default()
		p.PrefetchDepth = 2
		p.RMCQueueDepth = 3
		sys, err := core.NewSystem(p)
		if err != nil {
			t.Fatal(err)
		}
		region, err := sys.Region(6)
		if err != nil {
			t.Fatal(err)
		}
		var ranges []addr.Range
		for _, donor := range []addr.NodeID{2, 7, 10} {
			rng, err := region.GrowFrom(donor, 8<<20)
			if err != nil {
				t.Fatal(err)
			}
			ranges = append(ranges, rng)
		}
		node, err := sys.Cluster().Node(6)
		if err != nil {
			t.Fatal(err)
		}
		var end sim.Time
		for ti := 0; ti < 3; ti++ {
			stream, err := workloads.RandomStream(int64(ti), ranges, 500, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			th, err := cpu.NewThread(cpu.ThreadConfig{
				Engine: node.Engine(), Memory: node, Stream: stream,
				Core: ti, WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
				OnDone: func(_ *cpu.Thread, ts sim.Time) {
					if ts > end {
						end = ts
					}
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			th.Start(0)
		}
		sys.Run()
		return end
	}
	if a, b := run(), run(); a != b {
		t.Errorf("whole-system runs diverged: %d vs %d", a, b)
	}
}

// TestProtectionEndToEnd: with protection armed, a node can only reach
// memory the reservation protocol granted to it; the earlier
// open-cluster behavior (any node reads any pool frame) is gone.
func TestProtectionEndToEnd(t *testing.T) {
	p := params.Default()
	p.EnableProtection = true
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := region.GrowFrom(7, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := region.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := region.Write(va, []byte("grant-scoped")); err != nil {
		t.Fatal(err)
	}

	read := func(from addr.NodeID) ht.Command {
		r, err := sys.Cluster().RMC(from)
		if err != nil {
			t.Fatal(err)
		}
		var cmd ht.Command
		req := ht.Packet{Cmd: ht.CmdRdSized, Addr: rng.Start, Count: 64}
		if err := r.Request(sys.Now(), req, false, func(_ sim.Time, rsp ht.Packet, _ error) {
			cmd = rsp.Cmd
		}); err != nil {
			t.Fatal(err)
		}
		sys.Run()
		return cmd
	}
	if got := read(1); got != ht.CmdRdResponse {
		t.Errorf("grantee read = %v", got)
	}
	if got := read(4); got != ht.CmdTgtAbort {
		t.Errorf("stranger read = %v, want TgtAbort", got)
	}
	// Releasing the grant revokes access for everyone.
	if err := region.UnmapBorrowed(rng); err != nil {
		t.Fatal(err)
	}
	if err := region.Shrink(rng); err != nil {
		t.Fatal(err)
	}
	if got := read(1); got != ht.CmdTgtAbort {
		t.Errorf("read after release = %v, want TgtAbort", got)
	}
}

// TestAllFeaturesTogether: protection + prefetching + deeper RMC queue +
// the phase discipline, in one cluster — the feature-interaction
// scenario. A stream that runs off the end of its grant must be cut off
// by protection without corrupting anything, and the prefetcher must not
// install refused lines.
func TestAllFeaturesTogether(t *testing.T) {
	p := params.Default()
	p.EnableProtection = true
	p.PrefetchDepth = 4
	p.RMCQueueDepth = 5
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	rng, err := region.GrowFrom(2, 1<<20) // a small grant the stream will overrun
	if err != nil {
		t.Fatal(err)
	}
	va, err := region.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}

	// Serial write phase inside the grant.
	if err := region.Write(va, []byte("inside the grant")); err != nil {
		t.Fatal(err)
	}
	// Stream sequentially right up to the end of the grant: the
	// prefetcher will ask for lines past it and must be refused.
	node, err := sys.Cluster().Node(1)
	if err != nil {
		t.Fatal(err)
	}
	const lines = 64
	start := rng.Start + addr.Phys(rng.Size) - lines*params.CacheLineSize
	for i := 0; i < lines; i++ {
		a := start + addr.Phys(i*params.CacheLineSize)
		if err := region.Access(sys.Now(), 0, va+vm.Virt(rng.Size)-lines*params.CacheLineSize+vm.Virt(i*params.CacheLineSize), false, func(sim.Time) {}); err != nil {
			t.Fatal(err)
		}
		_ = a
		sys.Run()
	}
	srv, err := sys.Cluster().RMC(2)
	if err != nil {
		t.Fatal(err)
	}
	if srv.Aborted == 0 {
		t.Error("the prefetcher never hit the protection boundary")
	}
	// Nothing past the grant is cached on node 1.
	past := rng.Start + addr.Phys(rng.Size)
	if node.Caches().Present(past) {
		t.Error("a refused prefetch installed a line past the grant")
	}
	// Data inside the grant is intact.
	buf := make([]byte, 16)
	if err := region.Read(va, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "inside the grant" {
		t.Errorf("grant data corrupted: %q", buf)
	}
}

// TestWholeClusterConcurrentRegions: all 16 nodes run workloads over
// borrowed memory at once — Figure 1's many-regions world under load.
// Everyone finishes, and no node starves (bounded spread).
func TestWholeClusterConcurrentRegions(t *testing.T) {
	sys := newSystem(t)
	p := sys.Params()
	var threads []*cpu.Thread
	for id := addr.NodeID(1); int(id) <= p.Nodes(); id++ {
		region, err := sys.Region(id)
		if err != nil {
			t.Fatal(err)
		}
		donor := id%addr.NodeID(p.Nodes()) + 1 // neighbor by id, never self
		rng, err := region.GrowFrom(donor, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := workloads.RandomStream(int64(id), []addr.Range{rng}, 800, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		node, err := sys.Cluster().Node(id)
		if err != nil {
			t.Fatal(err)
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Name: fmt.Sprintf("region-%d", id), Engine: node.Engine(), Memory: node,
			Stream: stream, WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
		threads = append(threads, th)
	}
	sys.Run()
	var minT, maxT sim.Time
	for i, th := range threads {
		if !th.Done {
			t.Fatalf("%s did not finish", th.Name)
		}
		e := th.Elapsed()
		if i == 0 || e < minT {
			minT = e
		}
		if e > maxT {
			maxT = e
		}
	}
	// Donor distances range from 1 hop (node 1 -> 2) to 6 (node 16 -> 1),
	// so the spread should track Figure 6's latency ratio (~2.6x at 6
	// hops) and no more — distance, not starvation.
	if float64(maxT)/float64(minT) > 3.0 {
		t.Errorf("region spread %d..%d ps too wide", minT, maxT)
	}
	if float64(maxT)/float64(minT) < 1.2 {
		t.Errorf("spread implausibly flat (%d..%d); distance should show", minT, maxT)
	}
}

// TestSoak is a longer deterministic stress: five epochs of mixed work —
// grow, malloc/free churn, timed multi-thread traffic, flush, trim —
// across several regions, with conservation checked after every epoch.
// Skipped under -short.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	p := params.Default()
	p.PrefetchDepth = 2
	p.RMCQueueDepth = 3
	p.EnableProtection = true
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	poolAtStart := sys.Directory().TotalFree()

	for epoch := 0; epoch < 5; epoch++ {
		for _, id := range []addr.NodeID{1, 6, 11} {
			region, err := sys.Region(id)
			if err != nil {
				t.Fatal(err)
			}
			// Churn the heap.
			var ptrs []vm.Virt
			for i := 0; i < 20; i++ {
				ptr, err := region.Malloc(uint64(1+i%5) << 20)
				if err != nil {
					t.Fatalf("epoch %d node %d malloc: %v", epoch, id, err)
				}
				if err := region.WriteUint64(ptr, uint64(epoch)<<32|uint64(i)); err != nil {
					t.Fatal(err)
				}
				ptrs = append(ptrs, ptr)
			}
			// Timed traffic over a fresh borrow.
			donor := id%addr.NodeID(p.Nodes()) + 1
			rng, err := region.GrowFrom(donor, 4<<20)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := workloads.RandomStream(int64(epoch*100)+int64(id), []addr.Range{rng}, 300, 0.2)
			if err != nil {
				t.Fatal(err)
			}
			node, err := sys.Cluster().Node(id)
			if err != nil {
				t.Fatal(err)
			}
			th, err := cpu.NewThread(cpu.ThreadConfig{
				Name: fmt.Sprintf("soak-%d-%d", epoch, id), Engine: node.Engine(), Memory: node,
				Stream: stream, WindowLocal: p.LocalOutstanding, WindowRemote: p.RemoteOutstanding,
			})
			if err != nil {
				t.Fatal(err)
			}
			th.Start(sys.Now())
			sys.Run()
			if !th.Done {
				t.Fatalf("epoch %d node %d thread stuck", epoch, id)
			}
			// Verify the heap data survived the traffic, then release
			// everything and trim.
			for i, ptr := range ptrs {
				v, err := region.ReadUint64(ptr)
				if err != nil || v != uint64(epoch)<<32|uint64(i) {
					t.Fatalf("epoch %d node %d data corrupted: %x, %v", epoch, id, v, err)
				}
				if err := region.Free(ptr); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := region.Trim(); err != nil {
				t.Fatal(err)
			}
			// The traffic range was used by physical address (never
			// mapped), so it shrinks directly.
			if err := region.Shrink(rng); err != nil {
				t.Fatal(err)
			}
		}
		if got := sys.Directory().TotalFree(); got != poolAtStart {
			t.Fatalf("epoch %d leaked pool memory: %d vs %d", epoch, got, poolAtStart)
		}
	}
}

// TestHToESystemFunctional: the full software stack (reservation,
// malloc, functional reads/writes, timed threads) works unchanged over
// the switched fabric — the interconnect is genuinely pluggable.
func TestHToESystemFunctional(t *testing.T) {
	p := params.Default()
	p.Fabric = params.FabricHToE
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	ptr, err := region.Malloc(12 << 30) // spills remotely over HToE
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("over ethernet")
	if err := region.Write(ptr+9<<30, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := region.Read(ptr+9<<30, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read back %q", got)
	}
	var done sim.Time
	if err := region.Access(sys.Now(), 0, ptr+9<<30, false, func(ts sim.Time) { done = ts }); err != nil {
		t.Fatal(err)
	}
	sys.Run()
	if done == 0 {
		t.Error("timed access never completed over HToE")
	}
}
