package integration

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// traceRec is one cross-shard transmission in canonical drain order.
type traceRec struct {
	t   sim.Time
	src addr.NodeID
	dst addr.NodeID
	seq uint64
}

// shardOracleRun replays a seeded 16x16 workload under k shards and
// returns the exchange's canonical transmission stream: every RMC send
// in (time, source, per-source sequence) drain order.
func shardOracleRun(t *testing.T, k int, seed int64) []traceRec {
	t.Helper()
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 16, 16
	p.Shards = k
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	var stream []traceRec
	sys.Cluster().Exchanges().Trace(func(at sim.Time, src, dst addr.NodeID, seq uint64) {
		stream = append(stream, traceRec{at, src, dst, seq})
	})

	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		t.Fatal(err)
	}
	// Eight clients spread over every quadrant of the mesh, each loading
	// from its point reflection — guaranteed cross-shard traffic at
	// every partition the test uses.
	clients := []addr.NodeID{1, 24, 60, 86, 115, 150, 200, 250}
	for _, client := range clients {
		x, y := topo.Coord(client)
		partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
		region, err := sys.Region(client)
		if err != nil {
			t.Fatal(err)
		}
		rng, err := region.GrowFrom(partner, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		node, err := sys.Cluster().Node(client)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := workloads.RandomStream(seed+int64(client), []addr.Range{rng}, 200, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Name:         fmt.Sprintf("oracle-n%d", client),
			Engine:       node.Engine(),
			Memory:       node,
			Stream:       ws,
			WindowLocal:  p.LocalOutstanding,
			WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
	}
	sys.Run()
	return stream
}

// TestShardedEngineMatchesSingleShardOracle replays the same seeded
// 16x16 workload on the single-shard engine and on 4 and 8 shards, and
// requires the cross-shard exchange streams to match event for event:
// same transmissions, same simulated times, same canonical order.
func TestShardedEngineMatchesSingleShardOracle(t *testing.T) {
	want := shardOracleRun(t, 1, 42)
	if len(want) == 0 {
		t.Fatal("oracle run recorded no transmissions — workload did not reach the fabric")
	}
	for _, k := range []int{4, 8} {
		got := shardOracleRun(t, k, 42)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d transmissions, oracle has %d", k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: transmission %d = %+v, oracle %+v", k, i, got[i], want[i])
			}
		}
	}
}
