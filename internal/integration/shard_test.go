package integration

import (
	"fmt"
	"testing"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/faults"
	"repro/internal/mesh"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// traceRec is one cross-shard transmission in canonical drain order.
type traceRec struct {
	t   sim.Time
	src addr.NodeID
	dst addr.NodeID
	seq uint64
}

// shardOracleRun replays a seeded 16x16 workload under k shards with
// the given window policy (and optional fault plan) and returns the
// exchange's canonical transmission stream: every RMC send in
// (time, source, per-source sequence) drain order.
func shardOracleRun(t *testing.T, k int, seed int64, window params.WindowMode, plan *faults.Plan) []traceRec {
	t.Helper()
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 16, 16
	p.Shards = k
	p.Window = window
	if !plan.Empty() {
		p.Faults = plan
	}
	sys, err := core.NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	var stream []traceRec
	sys.Cluster().Exchanges().Trace(func(at sim.Time, src, dst addr.NodeID, seq uint64) {
		stream = append(stream, traceRec{at, src, dst, seq})
	})

	topo, err := mesh.NewTopology(p.MeshWidth, p.MeshHeight)
	if err != nil {
		t.Fatal(err)
	}
	// Eight clients spread over every quadrant of the mesh, each loading
	// from its point reflection — guaranteed cross-shard traffic at
	// every partition the test uses.
	clients := []addr.NodeID{1, 24, 60, 86, 115, 150, 200, 250}
	for _, client := range clients {
		x, y := topo.Coord(client)
		partner := topo.NodeAt(topo.W-1-x, topo.H-1-y)
		region, err := sys.Region(client)
		if err != nil {
			t.Fatal(err)
		}
		rng, err := region.GrowFrom(partner, 8<<20)
		if err != nil {
			t.Fatal(err)
		}
		node, err := sys.Cluster().Node(client)
		if err != nil {
			t.Fatal(err)
		}
		ws, err := workloads.RandomStream(seed+int64(client), []addr.Range{rng}, 200, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		th, err := cpu.NewThread(cpu.ThreadConfig{
			Name:         fmt.Sprintf("oracle-n%d", client),
			Engine:       node.Engine(),
			Memory:       node,
			Stream:       ws,
			WindowLocal:  p.LocalOutstanding,
			WindowRemote: p.RemoteOutstanding,
		})
		if err != nil {
			t.Fatal(err)
		}
		th.Start(0)
	}
	sys.Run()
	return stream
}

// diffStreams fails the test at the first event where two canonical
// streams deviate.
func diffStreams(t *testing.T, label string, want, got []traceRec) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d transmissions, oracle has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: transmission %d = %+v, oracle %+v", label, i, got[i], want[i])
		}
	}
}

// TestShardedEngineMatchesSingleShardOracle replays the same seeded
// 16x16 workload on the single-shard engine and on 4 and 8 shards, and
// requires the cross-shard exchange streams to match event for event:
// same transmissions, same simulated times, same canonical order.
func TestShardedEngineMatchesSingleShardOracle(t *testing.T) {
	want := shardOracleRun(t, 1, 42, params.WindowElide, nil)
	if len(want) == 0 {
		t.Fatal("oracle run recorded no transmissions — workload did not reach the fabric")
	}
	for _, k := range []int{4, 8} {
		got := shardOracleRun(t, k, 42, params.WindowElide, nil)
		diffStreams(t, fmt.Sprintf("shards=%d", k), want, got)
	}
}

// sparseStreamRun replays a sparse, distance-asymmetric workload — the
// locality smoke's shape: staggered clients running long dependent
// local stretches with occasional remote reads toward the far corner,
// over an asymmetric -linklat table — and returns the exchange's
// canonical transmission stream. The queues here are mostly empty or
// stalled, so the replay horizon is carried by the pending-intent
// cascade term rather than the queue heads; this is the regime where a
// horizon blind to freshly recorded intents replays a late send ahead
// of an earlier send's still-unrecorded response.
func sparseStreamRun(t *testing.T, k int, window params.WindowMode) []traceRec {
	t.Helper()
	p := params.Default()
	p.MeshWidth, p.MeshHeight = 16, 16
	p.Shards = k
	p.Window = window
	p.PrefetchDepth = 0
	// Expensive columns, cheap rows, one very cheap edge far from the
	// busy corners: the minimum delivery bound (the horizon's cascade
	// term) is much tighter than the bounds between the busy shards, so
	// windows legitimately span several sends' worth of slack.
	ll, err := params.ParseLinkLat("x=200ns,y=60ns,edge=0.7-0.8:20ns")
	if err != nil {
		t.Fatal(err)
	}
	p.LinkLat = ll
	set := sim.NewShardSet(k, p.LinkLat.MinLatency(p.HopLatency))
	c, err := cluster.New(set, p)
	if err != nil {
		t.Fatal(err)
	}
	var stream []traceRec
	c.Exchanges().Trace(func(at sim.Time, src, dst addr.NodeID, seq uint64) {
		stream = append(stream, traceRec{at, src, dst, seq})
	})
	topo := c.Topology()
	// The hazard shape: one chatty client whose partner sits one cheap
	// hop across its region boundary — every send's response cascades
	// back within nanoseconds — while far-away clients run long
	// dependent local stretches inside windows widened by the expensive
	// columns, recording sparse sends well after that cascade's time.
	for ci, cl := range []struct{ cx, cy, px, py, period int }{
		{0, 7, 0, 8, 6},    // cheap-edge round trips, fast cascades
		{15, 0, 0, 15, 16}, // far corner, sparse distant sends
		{12, 2, 3, 13, 24},
		{3, 15, 15, 1, 20},
	} {
		id := topo.NodeAt(cl.cx, cl.cy)
		partner := topo.NodeAt(cl.px, cl.py)
		n := c.MustNode(id)
		base := 0x400000 + uint64(ci)*0x100000
		period := cl.period
		i := 0
		var step func(sim.Time)
		step = func(now sim.Time) {
			if i >= 256 {
				return
			}
			i++
			a := addr.Phys(base + uint64(i)*4096)
			if i%period == 0 {
				a = a.WithNode(partner)
			}
			n.Issue(now, 0, cpu.Access{Addr: a}, false, step)
		}
		step(set.Now())
	}
	set.Run()
	return stream
}

// TestSparseStreamOracle covers the horizon's fresh-intent cascade
// term: on a sparse workload the dense oracle runs never exercise, the
// canonical transmission stream must stay event-for-event identical
// from one shard to 4 and 8 under every window policy.
func TestSparseStreamOracle(t *testing.T) {
	want := sparseStreamRun(t, 1, params.WindowUniform)
	if len(want) == 0 {
		t.Fatal("sparse oracle run recorded no transmissions")
	}
	for _, k := range []int{4, 8} {
		for _, mode := range []params.WindowMode{params.WindowUniform, params.WindowDistance, params.WindowElide} {
			got := sparseStreamRun(t, k, mode)
			diffStreams(t, fmt.Sprintf("shards=%d window=%v", k, mode), want, got)
		}
	}
}

// TestWindowPolicyOracleEquivalence is the widened/elided-window oracle:
// the same seeded 16x16 workload on 4 shards must produce event-for-
// event identical canonical streams under uniform, distance, and elide
// scheduling — fault-free and under an armed fault plan — and each must
// match the single-shard stream. The policies change only how often the
// shards meet, never what the simulation computes.
func TestWindowPolicyOracleEquivalence(t *testing.T) {
	plan, err := faults.Parse("seed=7,drop=0.02,corrupt=0.002")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		plan *faults.Plan
	}{
		{"fault-free", nil},
		{"armed-plan", plan},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := shardOracleRun(t, 1, 42, params.WindowUniform, tc.plan)
			if len(want) == 0 {
				t.Fatal("oracle run recorded no transmissions")
			}
			for _, mode := range []params.WindowMode{params.WindowUniform, params.WindowDistance, params.WindowElide} {
				got := shardOracleRun(t, 4, 42, mode, tc.plan)
				diffStreams(t, fmt.Sprintf("shards=4 window=%v", mode), want, got)
			}
		})
	}
}
