// Package core assembles the paper's system: the hardware cluster
// (package cluster), one OS agent per node (package osmodel), the
// cluster-wide free-memory directory (package memdir), and the region
// abstraction of Figure 1 — per-node coherency domains whose memory can
// be grown with frames borrowed from other nodes and shrunk back,
// without the coherent domain ever leaving the motherboard.
package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/memdir"
	"repro/internal/memmodel"
	"repro/internal/metrics"
	"repro/internal/osmodel"
	"repro/internal/params"
	"repro/internal/rmalloc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// System is one assembled machine.
type System struct {
	p       params.Params
	set     *sim.ShardSet
	cl      *cluster.Cluster
	dir     *memdir.Directory
	agents  map[addr.NodeID]*osmodel.Agent
	regions map[addr.NodeID]*Region
}

// NewSystem builds the cluster hardware and boots one OS per node. The
// simulation runs on p.Shards conservative-PDES shards (default one);
// the uniform lookahead window is the minimum single-link traversal
// latency — HopLatency, unless a -linklat table names a faster edge —
// the floor on the time any frame needs to cross a region boundary.
// The cluster upgrades the window machinery to the distance-aware
// bounds of p.Window once the mesh geometry is known.
func NewSystem(p params.Params) (*System, error) {
	k := p.Shards
	if k < 1 {
		k = 1
	}
	window := p.LinkLat.MinLatency(p.HopLatency)
	var set *sim.ShardSet
	if k == 1 {
		set = sim.WrapEngine(sim.New(), window)
	} else {
		set = sim.NewShardSet(k, window)
	}
	cl, err := cluster.New(set, p)
	if err != nil {
		return nil, err
	}
	topo := cl.Topology()
	s := &System{
		p:       p,
		set:     set,
		cl:      cl,
		dir:     memdir.New(func(a, b addr.NodeID) int { return topo.Hops(a, b) }),
		agents:  make(map[addr.NodeID]*osmodel.Agent),
		regions: make(map[addr.NodeID]*Region),
	}
	resolver := func(n addr.NodeID) (*osmodel.Agent, error) {
		a, ok := s.agents[n]
		if !ok {
			return nil, fmt.Errorf("core: no OS agent on node %d", n)
		}
		return a, nil
	}
	for i := 1; i <= topo.Nodes(); i++ {
		a, err := osmodel.NewAgent(addr.NodeID(i), p, s.dir)
		if err != nil {
			return nil, err
		}
		a.SetPeers(resolver)
		s.agents[addr.NodeID(i)] = a
		if p.EnableProtection {
			// Arm the serving RMC with the OS's grant table: remote
			// nodes can then only touch memory reserved for them.
			r, err := cl.RMC(addr.NodeID(i))
			if err != nil {
				return nil, err
			}
			r.SetProtection(a)
		}
	}
	set.Metrics().GaugeFunc(metrics.FamPoolFreeBytes,
		"free bytes in the cluster-wide memory pool", nil,
		func() float64 { return float64(s.dir.TotalFree()) })
	// Directory-transaction families register lazily on the first donor
	// search or grant, so systems that never borrow memory snapshot
	// exactly as before.
	s.dir.Instrument(set.Metrics())
	return s, nil
}

// Params returns the system calibration.
func (s *System) Params() params.Params { return s.p }

// Cluster returns the hardware assembly.
func (s *System) Cluster() *cluster.Cluster { return s.cl }

// Set returns the shard set driving the simulation.
func (s *System) Set() *sim.ShardSet { return s.set }

// Run drives the shard set until every shard is drained (or Stop) and
// returns the final simulated time.
func (s *System) Run() sim.Time { return s.set.Run() }

// Now returns the current simulated time (the furthest shard's clock).
func (s *System) Now() sim.Time { return s.set.Now() }

// Stop requests a deterministic stop at the end of the current window.
func (s *System) Stop() { s.set.Stop() }

// Registry returns the metrics registry shared by every shard.
func (s *System) Registry() *metrics.Registry { return s.set.Metrics() }

// EngineFor returns the shard engine a node's events run on; work
// driving that node (cpu threads, experiment continuations) must be
// scheduled there.
func (s *System) EngineFor(n addr.NodeID) *sim.Engine {
	return s.cl.MustNode(n).Engine()
}

// Directory returns the free-memory directory.
func (s *System) Directory() *memdir.Directory { return s.dir }

// Agent returns a node's OS agent.
func (s *System) Agent(n addr.NodeID) (*osmodel.Agent, error) {
	a, ok := s.agents[n]
	if !ok {
		return nil, fmt.Errorf("core: no OS agent on node %d", n)
	}
	return a, nil
}

// Region returns (creating on first use) the memory region anchored at a
// node. There is exactly one region per node — "processors in a given
// node will always create a memory region" — and what varies dynamically
// is its size.
func (s *System) Region(n addr.NodeID) (*Region, error) {
	if r, ok := s.regions[n]; ok {
		return r, nil
	}
	agent, err := s.Agent(n)
	if err != nil {
		return nil, err
	}
	node, err := s.cl.Node(n)
	if err != nil {
		return nil, err
	}
	r := &Region{
		sys:        s,
		node:       node,
		agent:      agent,
		as:         vm.NewAddressSpace(),
		tlb:        vm.NewTLB(vm.DefaultTLBEntries),
		writerCore: -1,
	}
	heap, err := rmalloc.NewHeap(r.as, (*regionBacking)(r), 0)
	if err != nil {
		return nil, err
	}
	r.heap = heap
	s.Registry().GaugeFunc(metrics.FamRegionBorrowed,
		"bytes this region has borrowed from other nodes",
		metrics.L("node", fmt.Sprintf("%d", n)),
		func() float64 { return float64(r.agent.BorrowedBytes()) })
	s.regions[n] = r
	return r, nil
}

// Region is one node's coherency domain plus whatever memory it has
// aggregated: Figure 1's colored areas.
type Region struct {
	sys   *System
	node  *cluster.Node
	agent *osmodel.Agent
	as    *vm.AddressSpace
	tlb   *vm.TLB
	heap  *rmalloc.Heap

	// Policy selects donors when the region grows implicitly (heap
	// growth after local memory runs out). Defaults to MostFree.
	Policy memdir.Policy

	// Donors, if non-empty, overrides the directory: implicit growth
	// borrows from these nodes in order (experiments place memory
	// servers deliberately).
	Donors []addr.NodeID

	// mappedBorrows tracks explicitly mapped reservations so Shrink can
	// refuse to pull memory out from under live translations.
	mappedBorrows map[addr.Phys]mappedBorrow

	// phase and writerCore enforce the prototype's execution discipline
	// (paper Section IV-B): remote ranges are write-back cached without
	// inter-node coherency, so writes are legal from one bound core only,
	// and parallel phases must be read-only (after a flush).
	phase      Phase
	writerCore int // -1 until the serial phase's core is claimed
}

// mappedBorrow records one explicitly mapped reservation.
type mappedBorrow struct {
	va   vm.Virt
	size uint64
}

// Phase is the region's execution discipline.
type Phase int

// Execution phases of paper Section IV-B.
const (
	// PhaseSerial allows reads and writes from a single bound core — the
	// prototype's default mode for writable remote data.
	PhaseSerial Phase = iota
	// PhaseParallelRead allows reads from any core and no writes; it is
	// entered by flushing the caches, after which multi-threaded
	// execution over remote data is safe without inter-node coherency.
	PhaseParallelRead
)

func (p Phase) String() string {
	switch p {
	case PhaseSerial:
		return "serial"
	case PhaseParallelRead:
		return "parallel-read"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// Node returns the region's anchor node identifier.
func (r *Region) Node() addr.NodeID { return r.node.ID() }

// Heap returns the interposed-malloc heap of the region's process.
func (r *Region) Heap() *rmalloc.Heap { return r.heap }

// AddressSpace returns the process address space.
func (r *Region) AddressSpace() *vm.AddressSpace { return r.as }

// TLB returns the process's TLB model.
func (r *Region) TLB() *vm.TLB { return r.tlb }

// Agent returns the region's OS agent.
func (r *Region) Agent() *osmodel.Agent { return r.agent }

// Grow extends the region by borrowing bytes from a donor chosen by the
// region's policy (or Donors list) and returns the prefixed range. The
// range is reserved and pinned but not yet mapped; Malloc maps on demand,
// MapBorrowed maps explicitly.
func (r *Region) Grow(size uint64) (addr.Range, error) {
	return r.acquireRemote(size)
}

// GrowFrom extends the region from an explicit donor.
func (r *Region) GrowFrom(donor addr.NodeID, size uint64) (addr.Range, error) {
	return r.agent.ReserveRemoteFrom(donor, size)
}

// Shrink returns a previously grown range to its donor. A range still
// mapped into the address space is refused: releasing it would leave
// live translations pointing at memory the donor may re-grant — the
// hot-unplug safety rule. UnmapBorrowed first.
func (r *Region) Shrink(rng addr.Range) error {
	if mb, mapped := r.mappedBorrows[rng.Start]; mapped {
		return fmt.Errorf("core: range %v is still mapped at %#x; unmap before shrinking", rng, uint64(mb.va))
	}
	return r.agent.ReleaseRemote(rng)
}

// UnmapBorrowed removes the translations MapBorrowed installed for a
// range, making it safe to Shrink.
func (r *Region) UnmapBorrowed(rng addr.Range) error {
	mb, mapped := r.mappedBorrows[rng.Start]
	if !mapped {
		return fmt.Errorf("core: range %v is not mapped", rng)
	}
	if err := r.as.Unmap(mb.va, vm.PagesFor(rng.Size)); err != nil {
		return err
	}
	r.tlb.Flush()
	delete(r.mappedBorrows, rng.Start)
	return nil
}

func (r *Region) acquireRemote(size uint64) (addr.Range, error) {
	for _, d := range r.Donors {
		if rng, err := r.agent.ReserveRemoteFrom(d, size); err == nil {
			return rng, nil
		}
	}
	if len(r.Donors) > 0 {
		return addr.Range{}, fmt.Errorf("core: none of the %d preferred donors could grant %d bytes", len(r.Donors), size)
	}
	return r.agent.ReserveRemote(size, r.Policy)
}

// regionBacking adapts the region to rmalloc.Backing: allocate locally
// while the private zone lasts, then borrow remotely — the moment the
// paper's OS "realizes that it is running out of local memory". The OS
// keeps its reserve watermark: a heap chunk that would dip below it goes
// remote instead, so the kernel never donates its own working memory.
type regionBacking Region

func (b *regionBacking) AcquireChunk(size uint64) (addr.Range, error) {
	r := (*Region)(b)
	reserve := r.sys.p.OSReserveBytes
	if free := r.agent.PrivateFree(); free >= size && free-size >= reserve {
		if rng, err := r.agent.AllocPrivate(size); err == nil {
			return rng, nil
		}
		// Contiguity may fail even with enough free bytes; fall through.
	}
	return r.acquireRemote(size)
}

func (b *regionBacking) ReleaseChunk(rng addr.Range) error {
	r := (*Region)(b)
	if rng.Start.IsLocal() {
		return r.agent.FreePrivate(rng)
	}
	return r.agent.ReleaseRemote(rng)
}

// Malloc allocates size bytes in the region's heap, growing the region
// (locally, then remotely) as needed, and returns a virtual pointer.
func (r *Region) Malloc(size uint64) (vm.Virt, error) { return r.heap.Malloc(size) }

// Trim returns heap arenas with no live allocations to their backing —
// freed local memory back to the private zone, freed borrowings back to
// their donors' pools (the hot-remove flow). Returns the bytes released.
func (r *Region) Trim() (uint64, error) {
	released, err := r.heap.Trim()
	if released > 0 {
		r.tlb.Flush()
	}
	return released, err
}

// Free releases a Malloc pointer.
func (r *Region) Free(ptr vm.Virt) error { return r.heap.Free(ptr) }

// MapBorrowed maps an explicitly grown range into the address space and
// returns its virtual base. Used when an experiment wants raw access to
// a reservation without the heap.
func (r *Region) MapBorrowed(rng addr.Range) (vm.Virt, error) {
	base, err := r.as.ReserveVirtual(rng.Size)
	if err != nil {
		return 0, err
	}
	if err := r.as.MapRange(base, rng.Start, vm.PagesFor(rng.Size), true); err != nil {
		return 0, err
	}
	if r.mappedBorrows == nil {
		r.mappedBorrows = make(map[addr.Phys]mappedBorrow)
	}
	r.mappedBorrows[rng.Start] = mappedBorrow{va: base, size: rng.Size}
	return base, nil
}

// Translate resolves a virtual address through the TLB and page table,
// with the TLB model accounting hits and misses.
func (r *Region) Translate(va vm.Virt) (addr.Phys, error) {
	if pte, ok := r.tlb.Lookup(va); ok {
		return pte.Phys + addr.Phys(va.Offset()), nil
	}
	pa, err := r.as.Translate(va)
	if err != nil {
		return 0, err
	}
	pte, _ := r.as.Lookup(va)
	r.tlb.Insert(va, pte)
	return pa, nil
}

// Write stores data at a virtual address (functional path: what the
// bytes are, not when). It spans mappings page by page.
func (r *Region) Write(va vm.Virt, data []byte) error {
	return r.copy(va, data, true)
}

// Read loads len(buf) bytes from a virtual address (functional path).
func (r *Region) Read(va vm.Virt, buf []byte) error {
	return r.copy(va, buf, false)
}

func (r *Region) copy(va vm.Virt, buf []byte, write bool) error {
	for len(buf) > 0 {
		pa, err := r.Translate(va)
		if err != nil {
			return err
		}
		n := params.PageSize - va.Offset()
		if uint64(len(buf)) < n {
			n = uint64(len(buf))
		}
		store, local, err := r.resolve(pa)
		if err != nil {
			return err
		}
		if write {
			err = store.WriteAt(local, buf[:n])
		} else {
			err = store.ReadAt(local, buf[:n])
		}
		if err != nil {
			return err
		}
		buf = buf[n:]
		va += vm.Virt(n)
	}
	return nil
}

func (r *Region) resolve(pa addr.Phys) (st interface {
	ReadAt(addr.Phys, []byte) error
	WriteAt(addr.Phys, []byte) error
}, local addr.Phys, err error) {
	canon := pa.Canonical(r.node.ID())
	if canon.IsLocal() {
		return r.node.Store(), canon, nil
	}
	s, err := r.sys.cl.Store(canon.Node())
	if err != nil {
		return nil, 0, err
	}
	return s, canon.Local(), nil
}

// WriteUint64 and ReadUint64 are word-granule functional accessors.
func (r *Region) WriteUint64(va vm.Virt, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return r.Write(va, b[:])
}

// ReadUint64 loads a little-endian word from a virtual address.
func (r *Region) ReadUint64(va vm.Virt) (uint64, error) {
	var b [8]byte
	if err := r.Read(va, b[:]); err != nil {
		return 0, err
	}
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	return v, nil
}

// Accessor builds a macro-layer latency model of the region's virtual
// address space as it is actually laid out: every heap arena and every
// explicitly mapped reservation becomes a stripe priced Local or Remote
// at the owner's true mesh distance. Where the uniform models assume one
// hop for everything, this reflects the placement the reservation
// protocol produced — multi-donor regions get multi-distance pricing.
func (r *Region) Accessor() (*memmodel.Striped, error) {
	topo := r.sys.cl.Topology()
	p := r.sys.p
	var stripes []memmodel.Stripe
	add := func(va vm.Virt, phys addr.Range) {
		var acc memmodel.Accessor
		canon := phys.Start.Canonical(r.node.ID())
		if canon.IsLocal() {
			acc = memmodel.Local{P: p}
		} else {
			acc = memmodel.Remote{P: p, Hops: topo.Hops(r.node.ID(), canon.Node())}
		}
		stripes = append(stripes, memmodel.Stripe{Start: uint64(va), Size: phys.Size, Acc: acc})
	}
	for va, phys := range r.heap.Chunks() {
		add(va, phys)
	}
	for start, mb := range r.mappedBorrows {
		add(mb.va, addr.Range{Start: start, Size: mb.size})
	}
	return memmodel.NewStriped(p, stripes)
}

// Phase returns the region's current execution phase.
func (r *Region) Phase() Phase { return r.phase }

// CheckAccess reports whether the discipline of the current phase allows
// the access: in the serial phase, one bound core may read and write (the
// first core to access claims the binding); in the parallel-read phase,
// any core may read, nobody may write.
func (r *Region) CheckAccess(core int, write bool) error {
	switch r.phase {
	case PhaseParallelRead:
		if write {
			return fmt.Errorf("core: write by core %d during a parallel-read phase; remote data has no inter-node coherency", core)
		}
		return nil
	default:
		if r.writerCore == -1 {
			r.writerCore = core
		}
		if core != r.writerCore {
			return fmt.Errorf("core: core %d accessed the region during core %d's serial phase; the prototype binds the process to a single core", core, r.writerCore)
		}
		return nil
	}
}

// BeginParallelRead flushes the node's caches (pushing dirty remote lines
// home) and enters the read-only parallel phase, returning the number of
// dirty lines written back. After it, any number of cores may read.
func (r *Region) BeginParallelRead(now sim.Time) int {
	dirty := r.node.FlushCaches(now)
	r.phase = PhaseParallelRead
	return dirty
}

// BeginSerial returns to the single-writer phase, bound to the given
// core.
func (r *Region) BeginSerial(core int) {
	r.phase = PhaseSerial
	r.writerCore = core
}

// Access issues one timed access at a virtual address through the
// node's full memory path (cache, BARs, RMC, fabric); done fires at the
// completion time. This is the paper's fast path: note it begins with a
// translation, not a syscall. The access must satisfy the region's
// execution discipline (CheckAccess).
func (r *Region) Access(now sim.Time, core int, va vm.Virt, write bool, done func(sim.Time)) error {
	if err := r.CheckAccess(core, write); err != nil {
		return err
	}
	pa, err := r.Translate(va)
	if err != nil {
		return err
	}
	r.node.Issue(now, core, cpu.Access{Addr: pa, Write: write}, false, done)
	return nil
}

// NewThread binds a virtual-address stream to a core of the region's
// node with the prototype's outstanding windows.
func (r *Region) NewThread(name string, core int, stream cpu.Stream, onDone func(*cpu.Thread, sim.Time)) (*cpu.Thread, error) {
	return cpu.NewThread(cpu.ThreadConfig{
		Name:         name,
		Engine:       r.node.Engine(),
		Memory:       r.node,
		Stream:       &translatingStream{r: r, core: core, inner: stream},
		Core:         core,
		WindowLocal:  r.sys.p.LocalOutstanding,
		WindowRemote: r.sys.p.RemoteOutstanding,
		OnDone:       onDone,
	})
}

// translatingStream translates a virtual-address stream to physical on
// the fly (TLB-accounted) and enforces the phase discipline, so cpu
// threads see physical addresses and cannot violate the single-writer
// rule.
type translatingStream struct {
	r     *Region
	core  int
	inner cpu.Stream
}

func (s *translatingStream) Next() (cpu.Access, bool) {
	a, ok := s.inner.Next()
	if !ok {
		return cpu.Access{}, false
	}
	if err := s.r.CheckAccess(s.core, a.Write); err != nil {
		panic(fmt.Sprintf("core: stream discipline violation: %v", err))
	}
	pa, err := s.r.Translate(vm.Virt(a.Addr))
	if err != nil {
		panic(fmt.Sprintf("core: unmapped virtual address %#x in stream: %v", uint64(a.Addr), err))
	}
	return cpu.Access{Addr: pa, Write: a.Write}, true
}
