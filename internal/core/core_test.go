package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/memdir"
	"repro/internal/params"
	"repro/internal/sim"
	"repro/internal/vm"
)

func newSystem(t *testing.T) *System {
	t.Helper()
	s, err := NewSystem(params.Default())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSystemAssembly(t *testing.T) {
	s := newSystem(t)
	if s.Cluster().Nodes() != 16 {
		t.Fatalf("nodes = %d", s.Cluster().Nodes())
	}
	if s.Directory().TotalFree() != params.Default().PoolSize() {
		t.Errorf("pool = %d", s.Directory().TotalFree())
	}
	if _, err := s.Agent(17); err == nil {
		t.Error("agent 17 returned")
	}
	r1, err := s.Region(1)
	if err != nil {
		t.Fatal(err)
	}
	r1again, err := s.Region(1)
	if err != nil || r1again != r1 {
		t.Error("Region not idempotent per node")
	}
	if _, err := s.Region(0); err == nil {
		t.Error("region on node 0 created")
	}
}

func TestGrowShrink(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(3)
	rng, err := r.GrowFrom(7, 2<<30)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Node() != 7 || rng.Size != 2<<30 {
		t.Errorf("grow = %v", rng)
	}
	if err := r.Shrink(rng); err != nil {
		t.Fatal(err)
	}
	if r.Agent().BorrowedBytes() != 0 {
		t.Error("shrink left borrowed bytes")
	}
}

func TestGrowWithDonorList(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	r.Donors = []addr.NodeID{13, 14}
	rng, err := r.Grow(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if rng.Node() != 13 {
		t.Errorf("grow used donor %d, want 13", rng.Node())
	}
	// Drain 13 and check fall-through to 14.
	p := params.Default()
	if _, err := r.GrowFrom(13, p.PooledMemPerNode()-(1<<30)); err != nil {
		t.Fatal(err)
	}
	rng2, err := r.Grow(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	if rng2.Node() != 14 {
		t.Errorf("fallback donor = %d, want 14", rng2.Node())
	}
	// Exhaust both preferred donors entirely: explicit error.
	if _, err := r.GrowFrom(14, p.PooledMemPerNode()-(1<<30)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Grow(1 << 30); err == nil {
		t.Error("grow succeeded with drained preferred donors")
	}
}

func TestMallocSpillsToRemote(t *testing.T) {
	// With a tiny private zone, the heap must transparently spill to
	// remote memory, exactly like the interposed malloc of Section IV-B.
	p := params.Default()
	p.MemPerNode = 1 << 30
	p.PrivateMemPerNode = 128 << 20
	p.OSReserveBytes = 16 << 20
	s, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Region(1)
	r.Policy = memdir.Nearest

	var sawRemote bool
	for i := 0; i < 8; i++ {
		ptr, err := r.Malloc(100 << 20)
		if err != nil {
			t.Fatalf("malloc %d: %v", i, err)
		}
		pa, err := r.Translate(ptr)
		if err != nil {
			t.Fatal(err)
		}
		if !pa.IsLocal() {
			sawRemote = true
		}
	}
	if !sawRemote {
		t.Error("800 MB of allocations never spilled beyond a 128 MB private zone")
	}
	if r.Agent().BorrowedBytes() == 0 {
		t.Error("no memory borrowed")
	}
}

func TestFunctionalReadWriteAcrossNodes(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(9, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("written on node 1, stored on node 9")
	if err := r.Write(va+12345, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := r.Read(va+12345, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read back %q", got)
	}
	// The bytes physically live on node 9.
	st, err := s.Cluster().Store(9)
	if err != nil {
		t.Fatal(err)
	}
	direct := make([]byte, len(msg))
	if err := st.ReadAt(rng.Start.Local()+12345, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(direct, msg) {
		t.Error("data not physically on the donor node")
	}
}

func TestWordHelpers(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(2)
	ptr, err := r.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteUint64(ptr, 0xFEEDFACE12345678); err != nil {
		t.Fatal(err)
	}
	v, err := r.ReadUint64(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xFEEDFACE12345678 {
		t.Errorf("word = %#x", v)
	}
}

func TestCrossPageFunctionalCopyProperty(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(5, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		o := vm.Virt(uint64(off) % (16<<20 - uint64(len(data))))
		if err := r.Write(va+o, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := r.Read(va+o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTranslateUsesTLB(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	ptr, _ := r.Malloc(1 << 20)
	if _, err := r.Translate(ptr); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := r.TLB().Misses
	for i := 0; i < 10; i++ {
		if _, err := r.Translate(ptr + 64); err != nil {
			t.Fatal(err)
		}
	}
	if r.TLB().Misses != missesAfterFirst {
		t.Error("same-page translations missed the TLB")
	}
	if r.TLB().Hits == 0 {
		t.Error("no TLB hits recorded")
	}
}

func TestTranslateUnmappedFails(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	if _, err := r.Translate(0xdeadbeef000); err == nil {
		t.Error("unmapped translation succeeded")
	}
}

func TestTimedAccessThroughRegion(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(2, 1<<20) // node 2: one hop
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	if err := r.Access(0, 0, va, false, func(ts sim.Time) { done = ts }); err != nil {
		t.Fatal(err)
	}
	s.Run()
	p := s.Params()
	if done < p.RemoteRoundTrip(1) {
		t.Errorf("remote access completed in %d, below the physical round trip", done)
	}
	if err := r.Access(0, 0, 0xbad000000, false, func(sim.Time) {}); err == nil {
		t.Error("access to unmapped address accepted")
	}
}

func TestRegionThreadEndToEnd(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(2, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	accs := make([]cpu.Access, 32)
	for i := range accs {
		accs[i] = cpu.Access{Addr: addr.Phys(va) + addr.Phys(i*params.PageSize)}
	}
	th, err := r.NewThread("worker", 0, cpu.NewSliceStream(accs), nil)
	if err != nil {
		t.Fatal(err)
	}
	th.Start(0)
	s.Run()
	if !th.Done || th.Issued != 32 {
		t.Fatalf("thread issued %d", th.Issued)
	}
	rt := s.Params().RemoteRoundTrip(1)
	if mean := th.Latency.Mean(); mean < float64(rt)*0.8 {
		t.Errorf("mean latency %v below round trip %d", mean, rt)
	}
}

func TestShrinkRefusesMappedRange(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(4, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	// Hot-unplug safety: a mapped range cannot be shrunk.
	if err := r.Shrink(rng); err == nil {
		t.Fatal("shrink of a mapped range accepted: dangling PTEs")
	}
	if err := r.UnmapBorrowed(rng); err != nil {
		t.Fatal(err)
	}
	// Translations are gone...
	if _, err := r.Translate(va); err == nil {
		t.Error("translation survived unmap")
	}
	// ...and now the shrink proceeds, returning capacity to the donor.
	if err := r.Shrink(rng); err != nil {
		t.Fatal(err)
	}
	if r.Agent().BorrowedBytes() != 0 {
		t.Error("shrink left borrowed bytes")
	}
	// Unmapping twice is an error.
	if err := r.UnmapBorrowed(rng); err == nil {
		t.Error("double unmap accepted")
	}
}

func TestGrowShrinkConservation(t *testing.T) {
	// Pool capacity is conserved under arbitrary grow/unmap/shrink
	// cycles spread over many donors.
	s := newSystem(t)
	r, _ := s.Region(1)
	total := s.Directory().TotalFree()
	var live []addr.Range
	for i := 0; i < 40; i++ {
		donor := addr.NodeID(2 + i%15)
		rng, err := r.GrowFrom(donor, uint64(1+i%7)<<20)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.MapBorrowed(rng); err != nil {
			t.Fatal(err)
		}
		live = append(live, rng)
		if i%3 == 0 {
			victim := live[0]
			live = live[1:]
			if err := r.UnmapBorrowed(victim); err != nil {
				t.Fatal(err)
			}
			if err := r.Shrink(victim); err != nil {
				t.Fatal(err)
			}
		}
	}
	var borrowed uint64
	for _, rng := range live {
		borrowed += rng.Size
	}
	if got := s.Directory().TotalFree(); got != total-borrowed {
		t.Errorf("pool = %d, want %d", got, total-borrowed)
	}
	for _, rng := range live {
		if err := r.UnmapBorrowed(rng); err != nil {
			t.Fatal(err)
		}
		if err := r.Shrink(rng); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Directory().TotalFree(); got != total {
		t.Errorf("pool not restored: %d vs %d", got, total)
	}
}

func TestPhaseDiscipline(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.Phase() != PhaseSerial {
		t.Fatalf("initial phase = %v", r.Phase())
	}
	noop := func(sim.Time) {}

	// Serial phase: core 0 claims the binding; core 1 is rejected.
	if err := r.Access(s.Now(), 0, va, true, noop); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if err := r.Access(s.Now(), 1, va, false, noop); err == nil {
		t.Error("second core accessed during a serial phase")
	}

	// Parallel-read phase: everyone reads, nobody writes.
	dirty := r.BeginParallelRead(s.Now())
	if dirty == 0 {
		t.Error("flush found no dirty lines after a write")
	}
	if r.Phase() != PhaseParallelRead {
		t.Fatalf("phase = %v", r.Phase())
	}
	for coreID := 0; coreID < 4; coreID++ {
		if err := r.Access(s.Now(), coreID, va, false, noop); err != nil {
			t.Errorf("core %d read rejected in parallel phase: %v", coreID, err)
		}
	}
	s.Run()
	if err := r.Access(s.Now(), 0, va, true, noop); err == nil {
		t.Error("write accepted during a parallel-read phase")
	}

	// Back to serial, rebound to core 3.
	r.BeginSerial(3)
	if err := r.Access(s.Now(), 3, va, true, noop); err != nil {
		t.Errorf("bound core rejected: %v", err)
	}
	if err := r.Access(s.Now(), 0, va, true, noop); err == nil {
		t.Error("unbound core wrote in the new serial phase")
	}
	s.Run()
	if PhaseSerial.String() == "" || PhaseParallelRead.String() == "" || Phase(9).String() == "" {
		t.Error("phase names empty")
	}
}

func TestThreadStreamEnforcesDiscipline(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	rng, err := r.GrowFrom(2, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	va, err := r.MapBorrowed(rng)
	if err != nil {
		t.Fatal(err)
	}
	r.BeginParallelRead(s.Now())
	th, err := r.NewThread("violator", 2, cpu.NewSliceStream([]cpu.Access{
		{Addr: addr.Phys(va), Write: true},
	}), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("writing thread in a parallel-read phase did not panic")
		}
	}()
	th.Start(s.Now())
	s.Run()
}

func TestOSReserveWatermark(t *testing.T) {
	p := params.Default()
	p.MemPerNode = 1 << 30
	p.PrivateMemPerNode = 512 << 20
	p.OSReserveBytes = 256 << 20
	s, err := NewSystem(p)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := s.Region(1)
	// The first 256 MB fit above the watermark and stay local...
	ptr, err := r.Malloc(200 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if pa, _ := r.Translate(ptr); !pa.IsLocal() {
		t.Error("allocation above the watermark went remote")
	}
	// ...but the next chunk would dip below the reserve and must spill,
	// leaving the OS its 256 MB.
	ptr2, err := r.Malloc(200 << 20)
	if err != nil {
		t.Fatal(err)
	}
	pa2, _ := r.Translate(ptr2)
	if pa2.IsLocal() {
		t.Error("allocation below the watermark stayed local")
	}
	if free := r.Agent().PrivateFree(); free < p.OSReserveBytes {
		t.Errorf("OS left with %d bytes, reserve is %d", free, p.OSReserveBytes)
	}
}

func TestRegionAccessor(t *testing.T) {
	s := newSystem(t)
	r, _ := s.Region(1)
	// A local heap chunk plus two borrows at different distances.
	if _, err := r.Malloc(1 << 20); err != nil {
		t.Fatal(err)
	}
	near, err := r.GrowFrom(2, 1<<20) // 1 hop
	if err != nil {
		t.Fatal(err)
	}
	vaNear, err := r.MapBorrowed(near)
	if err != nil {
		t.Fatal(err)
	}
	far, err := r.GrowFrom(16, 1<<20) // 6 hops
	if err != nil {
		t.Fatal(err)
	}
	vaFar, err := r.MapBorrowed(far)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := r.Accessor()
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	heapPtr, _ := r.Malloc(64) // inside the local arena
	if got := acc.Access(uint64(heapPtr), false); got != p.DRAMLatency {
		t.Errorf("local arena priced %d", got)
	}
	if got := acc.Access(uint64(vaNear), false); got != p.RemoteRoundTrip(1) {
		t.Errorf("1-hop borrow priced %d, want %d", got, p.RemoteRoundTrip(1))
	}
	if got := acc.Access(uint64(vaFar), false); got != p.RemoteRoundTrip(6) {
		t.Errorf("6-hop borrow priced %d, want %d", got, p.RemoteRoundTrip(6))
	}
	if acc.Unmapped != 0 {
		t.Errorf("mapped accesses counted as unmapped: %d", acc.Unmapped)
	}
}
