package core

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/rmc"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Span selects one byte range of a bulk operation, at a line-aligned
// offset from the operation's base pointer. Spans are the columnar
// shape: a table scan reads one span per segment of the projected
// column, in one operation.
type Span struct {
	// Offset from the base pointer; must be a cache-line multiple.
	Offset uint64
	// Bytes in the span; must be a positive cache-line multiple.
	Bytes uint64
}

// ReadBulk issues one timed scatter-gather read: the spans (virtual,
// relative to p) are translated, coalesced into physically contiguous
// runs, grouped by owning node, and issued as doorbell-batched bursts —
// local runs through the memory controllers, remote runs through the
// RMC's bulk plane. The gathered bytes land in buf (span order) when
// the operation completes; ownership of buf transfers to the operation
// until done fires. done receives the completion time of the last
// burst.
//
// Bulk transfers bypass the coherent caches (DMA semantics): a caller
// that may hold dirty cached lines of the source flushes first, exactly
// the phase discipline of BeginParallelRead.
func (r *Region) ReadBulk(now sim.Time, p vm.Virt, spans []Span, buf []byte, done func(sim.Time, error)) error {
	runs, total, err := r.lineRuns(p, spans)
	if err != nil {
		return err
	}
	if buf != nil && len(buf) < total {
		return fmt.Errorf("core: bulk read sink holds %d bytes, spans cover %d", len(buf), total)
	}
	return r.issueRuns(now, rmc.BulkRead, runs, buf, done)
}

// WriteBulk issues one timed scatter-gather write: data (span order,
// exactly covering the spans) lands in the owning nodes' memory when
// the operation completes. Ownership of data transfers to the operation
// until done fires; the buffer is never recycled into internal pools.
func (r *Region) WriteBulk(now sim.Time, p vm.Virt, spans []Span, data []byte, done func(sim.Time, error)) error {
	runs, total, err := r.lineRuns(p, spans)
	if err != nil {
		return err
	}
	if len(data) != total {
		return fmt.Errorf("core: bulk write payload holds %d bytes, spans cover %d", len(data), total)
	}
	return r.issueRuns(now, rmc.BulkWrite, runs, data, done)
}

// CopyBulk issues one timed region-to-region copy of n bytes from src
// to dst (both line-aligned, n a positive line multiple). Pieces whose
// source and destination both live on remote nodes move server-to-
// server — the bytes never transit this node; local endpoints decompose
// into controller traffic or write bursts (cluster.Node.IssueBulk).
func (r *Region) CopyBulk(now sim.Time, dst, src vm.Virt, n uint64, done func(sim.Time, error)) error {
	if done == nil {
		return fmt.Errorf("core: bulk copy needs a done callback")
	}
	if n == 0 || n%params.CacheLineSize != 0 {
		return fmt.Errorf("core: bulk copy of %d bytes; need a positive cache-line multiple", n)
	}
	srcRuns, _, err := r.lineRuns(src, []Span{{Offset: 0, Bytes: n}})
	if err != nil {
		return err
	}
	dstRuns, _, err := r.lineRuns(dst, []Span{{Offset: 0, Bytes: n}})
	if err != nil {
		return err
	}
	// Intersect the two run lists into pieces contiguous on both sides.
	type piece struct {
		src, dst addr.Phys
		lines    int
	}
	var pieces []piece
	si, di := 0, 0
	soff, doff := 0, 0 // lines consumed of the current runs
	maxLines := r.sys.p.BurstMaxLines()
	for si < len(srcRuns) && di < len(dstRuns) {
		s, d := srcRuns[si], dstRuns[di]
		lines := min(s.lines-soff, d.lines-doff)
		lines = min(lines, maxLines)
		pieces = append(pieces, piece{
			src:   s.pa + addr.Phys(soff*params.CacheLineSize),
			dst:   d.pa + addr.Phys(doff*params.CacheLineSize),
			lines: lines,
		})
		soff += lines
		doff += lines
		if soff == s.lines {
			si, soff = si+1, 0
		}
		if doff == d.lines {
			di, doff = di+1, 0
		}
	}
	j := &bulkJoin{remaining: len(pieces), done: done}
	self := r.node.ID()
	for _, pc := range pieces {
		// The RMC routes the destination by address prefix, so a
		// client-local destination travels as its loopback alias.
		cd := pc.dst
		if canon := cd.Canonical(self); canon.IsLocal() {
			cd = canon.WithNode(self)
		}
		if err := r.node.IssueBulk(now, rmc.BulkRequest{
			Kind:    rmc.BulkCopy,
			Spans:   []rmc.Span{{Start: pc.src, Lines: pc.lines}},
			CopyDst: cd,
			Done:    j.one,
		}); err != nil {
			return fmt.Errorf("core: bulk copy piece at %v: %w", pc.src, err)
		}
	}
	return nil
}

// physRun is one physically contiguous, single-owner line run.
type physRun struct {
	pa    addr.Phys // as translated: prefixed for remote owners
	lines int
}

// lineRuns translates the spans page-wise and coalesces physically
// adjacent same-owner pages into runs, preserving span order. Returns
// the runs and the total byte count.
func (r *Region) lineRuns(p vm.Virt, spans []Span) ([]physRun, int, error) {
	if len(spans) == 0 {
		return nil, 0, fmt.Errorf("core: bulk operation carries no spans")
	}
	self := r.node.ID()
	var runs []physRun
	total := 0
	for _, s := range spans {
		if s.Bytes == 0 || s.Bytes%params.CacheLineSize != 0 {
			return nil, 0, fmt.Errorf("core: bulk span of %d bytes; need a positive cache-line multiple", s.Bytes)
		}
		if s.Offset%params.CacheLineSize != 0 {
			return nil, 0, fmt.Errorf("core: bulk span offset %d is not line-aligned", s.Offset)
		}
		va := p + vm.Virt(s.Offset)
		rem := s.Bytes
		for rem > 0 {
			pa, err := r.Translate(va)
			if err != nil {
				return nil, 0, err
			}
			nb := params.PageSize - va.Offset()
			if rem < nb {
				nb = rem
			}
			lines := int(nb / params.CacheLineSize)
			if l := len(runs); l > 0 {
				last := &runs[l-1]
				end := last.pa + addr.Phys(uint64(last.lines)*params.CacheLineSize)
				if end == pa && owner(last.pa, self) == owner(pa, self) {
					last.lines += lines
					va += vm.Virt(nb)
					rem -= nb
					continue
				}
			}
			runs = append(runs, physRun{pa: pa, lines: lines})
			va += vm.Virt(nb)
			rem -= nb
		}
		total += int(s.Bytes)
	}
	return runs, total, nil
}

// owner maps a (possibly prefixed) physical address to its owning node.
func owner(pa addr.Phys, self addr.NodeID) addr.NodeID {
	if canon := pa.Canonical(self); !canon.IsLocal() {
		return canon.Node()
	}
	return self
}

// issueRuns groups consecutive same-owner runs into bursts (capped at
// the burst geometry) and issues them, joining the completions.
func (r *Region) issueRuns(now sim.Time, kind rmc.BulkKind, runs []physRun, data []byte, done func(sim.Time, error)) error {
	if done == nil {
		return fmt.Errorf("core: bulk operation needs a done callback")
	}
	self := r.node.ID()
	maxLines := r.sys.p.BurstMaxLines()

	// First pass: count the bursts so the join knows its fan-in before
	// the first completion can fire.
	type burst struct {
		spans []rmc.Span
		bytes int
	}
	var bursts []burst
	cur := burst{}
	curNode := addr.NodeID(0)
	curLines := 0
	flush := func() {
		if len(cur.spans) > 0 {
			bursts = append(bursts, cur)
			cur, curLines = burst{}, 0
		}
	}
	for _, run := range runs {
		node := owner(run.pa, self)
		if node != curNode {
			flush()
			curNode = node
		}
		pa, lines := run.pa, run.lines
		for lines > 0 {
			take := min(lines, maxLines-curLines)
			if take == 0 {
				flush()
				continue
			}
			cur.spans = append(cur.spans, rmc.Span{Start: pa, Lines: take})
			cur.bytes += take * params.CacheLineSize
			curLines += take
			pa += addr.Phys(take * params.CacheLineSize)
			lines -= take
		}
	}
	flush()

	j := &bulkJoin{remaining: len(bursts), done: done}
	pos := 0
	for _, b := range bursts {
		var sub []byte
		if data != nil {
			sub = data[pos : pos+b.bytes]
		}
		pos += b.bytes
		if err := r.node.IssueBulk(now, rmc.BulkRequest{
			Kind:  kind,
			Spans: b.spans,
			Data:  sub,
			Done:  j.one,
		}); err != nil {
			return fmt.Errorf("core: bulk burst at %v: %w", b.spans[0].Start, err)
		}
	}
	return nil
}

// bulkJoin completes a bulk operation when its last burst drains: the
// reported time is the maximum completion, the error the first failure.
type bulkJoin struct {
	remaining int
	last      sim.Time
	err       error
	done      func(sim.Time, error)
}

func (j *bulkJoin) one(t sim.Time, err error) {
	if err != nil && j.err == nil {
		j.err = err
	}
	if t > j.last {
		j.last = t
	}
	j.remaining--
	if j.remaining == 0 {
		j.done(j.last, j.err)
	}
}
