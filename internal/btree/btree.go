// Package btree implements the database-style index of the paper's
// Section V-B: a B-tree with a parameterizable number of children per
// node, laid out over a byte-addressed memory whose accesses are priced
// by a memmodel.Accessor. Key and structural data live in ordinary Go
// memory (function), while every search walks the modeled layout and
// charges each header read, key probe, and child-pointer read to the
// accessor (timing) — so the same search can be priced under local
// memory, the prototype's remote memory, or remote swap.
//
// Layout follows database practice: each node owns a fixed-size record
// (header + max-keys entries of 24 bytes: key, child pointer, payload
// pointer); the allocator never lets a node straddle a page boundary
// unless the node is bigger than a page. The fanout at which a node
// exactly fills a 4 KiB page (≈168 children) is the optimum Figure 9
// finds for remote swap.
package btree

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/params"
)

// Geometry constants of the modeled node record.
const (
	// EntrySize is the bytes per key entry: 8 key + 8 child pointer +
	// 8 payload pointer.
	EntrySize = 24
	// HeaderSize is the per-node metadata record.
	HeaderSize = 16
)

// NodeBytes returns the modeled size of a node with the given maximum
// child count.
func NodeBytes(maxChildren int) uint64 {
	return HeaderSize + uint64(maxChildren-1)*EntrySize
}

// layout is a bump allocator that avoids gratuitous page straddling.
type layout struct {
	next uint64
}

// alloc returns the base address for a node of the given size.
func (l *layout) alloc(size uint64) uint64 {
	const page = params.PageSize
	base := l.next
	if size <= page {
		// If the node would cross a page boundary, start it on the next
		// page instead: a one-page node should cost one fault.
		if base/page != (base+size-1)/page {
			base = (base/page + 1) * page
		}
	} else if base%page != 0 {
		// Multi-page nodes start page-aligned.
		base = (base/page + 1) * page
	}
	l.next = base + size
	return base
}

type node struct {
	base     uint64
	keys     []uint64
	vals     []uint64 // payload per key (the entry's payload-pointer slot)
	children []*node
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is the index.
type Tree struct {
	maxChildren int
	root        *node
	lay         layout

	// Nodes counts allocated nodes; Size counts stored keys.
	Nodes int
	Size  int
}

// New creates an empty tree with the given maximum children per node
// (fanout). The minimum useful fanout is 3 (2 keys).
func New(maxChildren int) (*Tree, error) {
	if maxChildren < 3 {
		return nil, fmt.Errorf("btree: fanout %d < 3", maxChildren)
	}
	return &Tree{maxChildren: maxChildren}, nil
}

// MaxChildren returns the fanout.
func (t *Tree) MaxChildren() int { return t.maxChildren }

// maxKeys is the per-node key capacity.
func (t *Tree) maxKeys() int { return t.maxChildren - 1 }

func (t *Tree) newNode() *node {
	t.Nodes++
	return &node{base: t.lay.alloc(NodeBytes(t.maxChildren))}
}

// FootprintBytes returns the top of the modeled address space — the
// memory the index occupies, which is what has to fit (or not) in local
// memory under the swap configurations.
func (t *Tree) FootprintBytes() uint64 { return t.lay.next }

// Depth returns the tree height in levels (0 for an empty tree).
func (t *Tree) Depth() int {
	d, n := 0, t.root
	for n != nil {
		d++
		if n.leaf() {
			break
		}
		n = n.children[0]
	}
	return d
}

// entryAddr returns the modeled address of entry i in a node.
func entryAddr(n *node, i int) uint64 {
	return n.base + HeaderSize + uint64(i)*EntrySize
}

// childPtrAddr returns the modeled address of child pointer i. Child i
// sits with entry i; the last child (index == len(keys)) reuses the last
// entry's payload slot, keeping the node inside its record.
func childPtrAddr(n *node, i int) uint64 {
	if i >= len(n.keys) {
		if i == 0 {
			return n.base + HeaderSize + 8
		}
		return entryAddr(n, len(n.keys)-1) + 16
	}
	return entryAddr(n, i) + 8
}

// Search looks a key up, charging every modeled memory access to mem.
// It returns whether the key exists, the accumulated memory time, and
// the number of accesses performed.
func (t *Tree) Search(key uint64, mem memmodel.Accessor) (found bool, cost params.Duration, accesses uint64) {
	n := t.root
	for n != nil {
		// Read the node header (key count, flags).
		cost += mem.Access(n.base, false)
		accesses++
		// Binary search over the key array; each probe is one read.
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			cost += mem.Access(entryAddr(n, mid), false)
			accesses++
			switch {
			case n.keys[mid] == key:
				return true, cost, accesses
			case n.keys[mid] < key:
				lo = mid + 1
			default:
				hi = mid
			}
		}
		if n.leaf() {
			return false, cost, accesses
		}
		// Read the child pointer and descend.
		cost += mem.Access(childPtrAddr(n, lo), false)
		accesses++
		n = n.children[lo]
	}
	return false, cost, accesses
}

// SearchKV is Search returning the key's payload word as well (charging
// one extra read for the payload slot on a hit).
func (t *Tree) SearchKV(key uint64, mem memmodel.Accessor) (val uint64, found bool, cost params.Duration, accesses uint64) {
	n := t.root
	for n != nil {
		cost += mem.Access(n.base, false)
		accesses++
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			cost += mem.Access(entryAddr(n, mid), false)
			accesses++
			switch {
			case n.keys[mid] == key:
				cost += mem.Access(entryAddr(n, mid)+16, false) // payload slot
				accesses++
				return n.vals[mid], true, cost, accesses
			case n.keys[mid] < key:
				lo = mid + 1
			default:
				hi = mid
			}
		}
		if n.leaf() {
			return 0, false, cost, accesses
		}
		cost += mem.Access(childPtrAddr(n, lo), false)
		accesses++
		n = n.children[lo]
	}
	return 0, false, cost, accesses
}

// SearchBatch is Search pricing through the batched fast path: the walk
// records every modeled access — one node visit after another — into b
// and prices the whole op sequence in one memmodel.Batch call, so the
// accessor sees exactly Search's access sequence without an interface
// call per access. b is a scratch buffer the caller reuses across
// searches (it must be empty between calls); results are identical to
// Search against the same accessor state.
func (t *Tree) SearchBatch(key uint64, mem memmodel.Accessor, b *memmodel.Batcher) (found bool, cost params.Duration, accesses uint64) {
	n := t.root
	for n != nil {
		b.Read(n.base)
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			b.Read(entryAddr(n, mid))
			switch {
			case n.keys[mid] == key:
				accesses = uint64(b.Len())
				return true, b.Flush(mem), accesses
			case n.keys[mid] < key:
				lo = mid + 1
			default:
				hi = mid
			}
		}
		if n.leaf() {
			accesses = uint64(b.Len())
			return false, b.Flush(mem), accesses
		}
		b.Read(childPtrAddr(n, lo))
		n = n.children[lo]
	}
	accesses = uint64(b.Len())
	return false, b.Flush(mem), accesses
}

// SearchKVBatch is SearchKV with SearchBatch's batched pricing.
func (t *Tree) SearchKVBatch(key uint64, mem memmodel.Accessor, b *memmodel.Batcher) (val uint64, found bool, cost params.Duration, accesses uint64) {
	n := t.root
	for n != nil {
		b.Read(n.base)
		lo, hi := 0, len(n.keys)
		for lo < hi {
			mid := (lo + hi) / 2
			b.Read(entryAddr(n, mid))
			switch {
			case n.keys[mid] == key:
				b.Read(entryAddr(n, mid) + 16) // payload slot
				accesses = uint64(b.Len())
				return n.vals[mid], true, b.Flush(mem), accesses
			case n.keys[mid] < key:
				lo = mid + 1
			default:
				hi = mid
			}
		}
		if n.leaf() {
			accesses = uint64(b.Len())
			return 0, false, b.Flush(mem), accesses
		}
		b.Read(childPtrAddr(n, lo))
		n = n.children[lo]
	}
	accesses = uint64(b.Len())
	return 0, false, b.Flush(mem), accesses
}

// Lookup returns a key's payload word without charging an accessor.
func (t *Tree) Lookup(key uint64) (uint64, bool) {
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			return n.vals[i], true
		}
		if n.leaf() {
			return 0, false
		}
		n = n.children[i]
	}
	return 0, false
}

// RangeScan visits every key in [lo, hi] in ascending order, calling fn
// for each and charging the modeled memory accesses to mem: one header
// read per visited node, one read per inspected key, and one pointer
// read per descended child. Range queries are the other database
// operation the paper's short-term plan names; their sequential page
// touch pattern is the friendliest case for both swap and the RMC's
// prefetcher.
func (t *Tree) RangeScan(lo, hi uint64, mem memmodel.Accessor, fn func(uint64)) (cost params.Duration, accesses uint64) {
	if lo > hi {
		return 0, 0
	}
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		cost += mem.Access(n.base, false) // header
		accesses++
		// Find the first key >= lo by binary search (charged).
		start, hiIdx := 0, len(n.keys)
		for start < hiIdx {
			mid := (start + hiIdx) / 2
			cost += mem.Access(entryAddr(n, mid), false)
			accesses++
			if n.keys[mid] < lo {
				start = mid + 1
			} else {
				hiIdx = mid
			}
		}
		for i := start; ; i++ {
			if !n.leaf() {
				cost += mem.Access(childPtrAddr(n, i), false)
				accesses++
				rec(n.children[i])
			}
			if i >= len(n.keys) {
				return
			}
			cost += mem.Access(entryAddr(n, i), false)
			accesses++
			k := n.keys[i]
			if k > hi {
				return
			}
			if k >= lo {
				fn(k)
			}
		}
	}
	rec(t.root)
	return cost, accesses
}

// rangeScanFlushThreshold bounds RangeScanBatch's buffered ops so a
// whole-tree scan doesn't grow the Batcher without limit. Batch
// boundaries never change costs or accessor state, so the threshold is
// purely a memory knob.
const rangeScanFlushThreshold = 4096

// RangeScanBatch is RangeScan pricing through the batched fast path:
// the identical visit order and access sequence, recorded into b and
// priced in Batch calls of up to rangeScanFlushThreshold ops. b must be
// empty between calls.
func (t *Tree) RangeScanBatch(lo, hi uint64, mem memmodel.Accessor, b *memmodel.Batcher, fn func(uint64)) (cost params.Duration, accesses uint64) {
	if lo > hi {
		return 0, 0
	}
	read := func(a uint64) {
		b.Read(a)
		accesses++
		if b.Len() >= rangeScanFlushThreshold {
			cost += b.Flush(mem)
		}
	}
	var rec func(n *node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		read(n.base) // header
		start, hiIdx := 0, len(n.keys)
		for start < hiIdx {
			mid := (start + hiIdx) / 2
			read(entryAddr(n, mid))
			if n.keys[mid] < lo {
				start = mid + 1
			} else {
				hiIdx = mid
			}
		}
		for i := start; ; i++ {
			if !n.leaf() {
				read(childPtrAddr(n, i))
				rec(n.children[i])
			}
			if i >= len(n.keys) {
				return
			}
			read(entryAddr(n, i))
			k := n.keys[i]
			if k > hi {
				return
			}
			if k >= lo {
				fn(k)
			}
		}
	}
	rec(t.root)
	cost += b.Flush(mem)
	return cost, accesses
}

// Contains reports membership without charging an accessor (function
// only; used by tests and reference checks).
func (t *Tree) Contains(key uint64) bool {
	n := t.root
	for n != nil {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			return true
		}
		if n.leaf() {
			return false
		}
		n = n.children[i]
	}
	return false
}

// Insert adds a key (duplicates are ignored), splitting nodes as needed.
func (t *Tree) Insert(key uint64) { t.InsertKV(key, 0) }

// InsertKV adds a key with a payload word (the entry layout's payload-
// pointer slot). Inserting an existing key updates its payload.
func (t *Tree) InsertKV(key, val uint64) {
	if t.root == nil {
		t.root = t.newNode()
		t.root.keys = append(t.root.keys, key)
		t.root.vals = append(t.root.vals, val)
		t.Size++
		return
	}
	if promoted, pval, right, split := t.insert(t.root, key, val); split {
		newRoot := t.newNode()
		newRoot.keys = []uint64{promoted}
		newRoot.vals = []uint64{pval}
		newRoot.children = []*node{t.root, right}
		t.root = newRoot
	}
}

// insert descends, splitting overflowing nodes on the way back up.
func (t *Tree) insert(n *node, key, val uint64) (promoted, pval uint64, right *node, split bool) {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		n.vals[i] = val // update in place
		return 0, 0, nil, false
	}
	if n.leaf() {
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = val
		t.Size++
	} else {
		p, pv, r, s := t.insert(n.children[i], key, val)
		if s {
			n.keys = append(n.keys, 0)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = p
			n.vals = append(n.vals, 0)
			copy(n.vals[i+1:], n.vals[i:])
			n.vals[i] = pv
			n.children = append(n.children, nil)
			copy(n.children[i+2:], n.children[i+1:])
			n.children[i+1] = r
		}
	}
	if len(n.keys) <= t.maxKeys() {
		return 0, 0, nil, false
	}
	return t.split(n)
}

// split divides an overflowing node around its median.
func (t *Tree) split(n *node) (promoted, pval uint64, right *node, split bool) {
	mid := len(n.keys) / 2
	promoted, pval = n.keys[mid], n.vals[mid]
	right = t.newNode()
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.vals = append(right.vals, n.vals[mid+1:]...)
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	if !n.leaf() {
		right.children = append(right.children, n.children[mid+1:]...)
		n.children = n.children[:mid+1]
	}
	return promoted, pval, right, true
}

// BulkLoad builds the paper's population: a minimal-height tree where
// every level but the last is full and the last level fills from the
// left. Keys may arrive unsorted; duplicates are rejected.
func (t *Tree) BulkLoad(keys []uint64) error {
	if t.root != nil {
		return fmt.Errorf("btree: BulkLoad into non-empty tree")
	}
	if len(keys) == 0 {
		return nil
	}
	sorted := make([]uint64, len(keys))
	copy(sorted, keys)
	slices.Sort(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return fmt.Errorf("btree: duplicate key %d in BulkLoad", sorted[i])
		}
	}
	depth := 1
	for capacityAtDepth(t.maxChildren, depth) < uint64(len(sorted)) {
		depth++
	}
	t.root = t.build(sorted, depth)
	t.Size = len(sorted)
	return nil
}

// capacityAtDepth returns the key capacity of a full tree: m^d − 1,
// saturating to avoid overflow.
func capacityAtDepth(m, d int) uint64 {
	cap := uint64(1)
	for i := 0; i < d; i++ {
		next := cap * uint64(m)
		if next/uint64(m) != cap { // overflow: effectively infinite
			return ^uint64(0)
		}
		cap = next
	}
	return cap - 1
}

// build packs sorted keys into a subtree of exactly the given depth,
// filling left subtrees completely so the last level fills left to
// right.
func (t *Tree) build(keys []uint64, depth int) *node {
	n := t.newNode()
	if depth == 1 {
		n.keys = append(n.keys, keys...)
		n.vals = make([]uint64, len(n.keys))
		return n
	}
	subCap := capacityAtDepth(t.maxChildren, depth-1)
	for {
		if uint64(len(keys)) <= subCap || len(n.keys) == t.maxKeys() {
			// Everything left fits in the final child.
			n.children = append(n.children, t.build(keys, depth-1))
			return n
		}
		n.children = append(n.children, t.build(keys[:subCap], depth-1))
		n.keys = append(n.keys, keys[subCap])
		n.vals = append(n.vals, 0)
		keys = keys[subCap+1:]
	}
}

// Walk calls fn for every key in ascending order.
func (t *Tree) Walk(fn func(uint64)) {
	var rec func(*node)
	rec = func(n *node) {
		if n == nil {
			return
		}
		for i, k := range n.keys {
			if !n.leaf() {
				rec(n.children[i])
			}
			fn(k)
		}
		if !n.leaf() {
			rec(n.children[len(n.keys)])
		}
	}
	rec(t.root)
}

// CheckInvariants verifies ordering, uniform leaf depth, and that node
// records stay within their modeled layout. Degenerate right-edge nodes
// (fewer than the B-tree minimum of keys) are legal here: the paper's
// left-filled population produces them by design.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		return nil
	}
	var leafDepth = -1
	var count int
	var prev *uint64
	var rec func(n *node, depth int) error
	rec = func(n *node, depth int) error {
		if len(n.keys) > t.maxKeys() {
			return fmt.Errorf("btree: node with %d keys exceeds capacity %d", len(n.keys), t.maxKeys())
		}
		if len(n.vals) != len(n.keys) {
			return fmt.Errorf("btree: node with %d keys has %d payloads", len(n.keys), len(n.vals))
		}
		if !n.leaf() && len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: node with %d keys has %d children", len(n.keys), len(n.children))
		}
		if n.leaf() {
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
		}
		for i, k := range n.keys {
			if !n.leaf() {
				if err := rec(n.children[i], depth+1); err != nil {
					return err
				}
			}
			if prev != nil && *prev >= k {
				return fmt.Errorf("btree: keys out of order: %d then %d", *prev, k)
			}
			kk := k
			prev = &kk
			count++
		}
		if !n.leaf() {
			return rec(n.children[len(n.keys)], depth+1)
		}
		return nil
	}
	if err := rec(t.root, 1); err != nil {
		return err
	}
	if count != t.Size {
		return fmt.Errorf("btree: Size %d but %d keys reachable", t.Size, count)
	}
	return nil
}
