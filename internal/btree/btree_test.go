package btree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/params"
)

// countingMem charges 1 per access and records addresses.
type countingMem struct {
	n     uint64
	addrs []uint64
}

func (c *countingMem) Access(a uint64, write bool) params.Duration {
	c.n++
	c.addrs = append(c.addrs, a)
	return 1
}
func (c *countingMem) Name() string { return "counting" }

func TestNewValidation(t *testing.T) {
	if _, err := New(2); err == nil {
		t.Error("fanout 2 accepted")
	}
	if _, err := New(3); err != nil {
		t.Errorf("fanout 3 rejected: %v", err)
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := New(4)
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 60, 40, 100, 5, 95}
	for _, k := range keys {
		tr.Insert(k)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Size != len(keys) {
		t.Errorf("Size = %d", tr.Size)
	}
	mem := &countingMem{}
	for _, k := range keys {
		found, _, accs := tr.Search(k, mem)
		if !found {
			t.Errorf("key %d missing", k)
		}
		if accs == 0 {
			t.Error("search charged no accesses")
		}
	}
	for _, k := range []uint64{0, 11, 55, 101} {
		if found, _, _ := tr.Search(k, mem); found {
			t.Errorf("phantom key %d found", k)
		}
	}
	// Duplicate insert is a no-op.
	tr.Insert(50)
	if tr.Size != len(keys) {
		t.Error("duplicate insert changed size")
	}
}

func TestInsertMatchesReferenceProperty(t *testing.T) {
	f := func(raw []uint16, fanoutSel uint8) bool {
		fanout := 3 + int(fanoutSel%14)
		tr, err := New(fanout)
		if err != nil {
			return false
		}
		ref := map[uint64]bool{}
		for _, r := range raw {
			k := uint64(r)
			tr.Insert(k)
			ref[k] = true
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		if tr.Size != len(ref) {
			return false
		}
		for k := range ref {
			if !tr.Contains(k) {
				return false
			}
		}
		// Walk yields sorted order.
		var last *uint64
		ok := true
		tr.Walk(func(k uint64) {
			if last != nil && *last >= k {
				ok = false
			}
			kk := k
			last = &kk
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadShape(t *testing.T) {
	// 10 keys, fanout 3: minimal depth d with 3^d-1 >= 10 is 3.
	tr, _ := New(3)
	keys := make([]uint64, 10)
	for i := range keys {
		keys[i] = uint64(i+1) * 7
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 3 {
		t.Errorf("depth = %d, want 3", tr.Depth())
	}
	for _, k := range keys {
		if !tr.Contains(k) {
			t.Errorf("bulk-loaded key %d missing", k)
		}
	}
}

func TestBulkLoadMinimalDepthProperty(t *testing.T) {
	f := func(nSel uint16, fanoutSel uint8) bool {
		fanout := 3 + int(fanoutSel%30)
		n := int(nSel%2000) + 1
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = uint64(i) * 3
		}
		tr, err := New(fanout)
		if err != nil {
			return false
		}
		if tr.BulkLoad(keys) != nil {
			return false
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		d := tr.Depth()
		// Minimal: capacity at d covers n, capacity at d-1 does not.
		if capacityAtDepth(fanout, d) < uint64(n) {
			return false
		}
		if d > 1 && capacityAtDepth(fanout, d-1) >= uint64(n) {
			return false
		}
		// Spot-check membership.
		for i := 0; i < n; i += 97 {
			if !tr.Contains(keys[i]) {
				return false
			}
		}
		return !tr.Contains(1) // odd keys absent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	tr, _ := New(4)
	if err := tr.BulkLoad([]uint64{1, 2, 2}); err == nil {
		t.Error("duplicate keys accepted")
	}
	tr2, _ := New(4)
	if err := tr2.BulkLoad(nil); err != nil {
		t.Errorf("empty bulk load rejected: %v", err)
	}
	tr2.Insert(5)
	if err := tr2.BulkLoad([]uint64{1}); err == nil {
		t.Error("bulk load into non-empty tree accepted")
	}
}

func TestUnsortedBulkLoad(t *testing.T) {
	tr, _ := New(8)
	keys := []uint64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	var got []uint64
	tr.Walk(func(k uint64) { got = append(got, k) })
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("walk not sorted: %v", got)
		}
	}
}

func TestSearchCostLogarithmic(t *testing.T) {
	tr, _ := New(168)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(i) * 2
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	mem := &countingMem{}
	rng := rand.New(rand.NewSource(7))
	var total uint64
	const searches = 1000
	for i := 0; i < searches; i++ {
		_, _, accs := tr.Search(uint64(rng.Intn(200000)), mem)
		total += accs
	}
	perSearch := float64(total) / searches
	// depth ~ 3 levels × (log2(167) ≈ 7.4 probes + header + child) ≈ 30.
	if perSearch < 5 || perSearch > 60 {
		t.Errorf("accesses per search = %v, outside the logarithmic band", perSearch)
	}
}

func TestNodePageDiscipline(t *testing.T) {
	// One-page nodes must never straddle a page.
	tr, _ := New(168)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	size := NodeBytes(168)
	if size > params.PageSize {
		t.Fatalf("fanout-168 node is %d bytes; the test premise is wrong", size)
	}
	var walkNodes func(n *node) error
	walkNodes = func(n *node) error {
		if n == nil {
			return nil
		}
		if n.base/params.PageSize != (n.base+size-1)/params.PageSize {
			t.Fatalf("node at %#x straddles a page", n.base)
		}
		for _, c := range n.children {
			if err := walkNodes(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walkNodes(tr.root); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPageNodesPageAligned(t *testing.T) {
	tr, _ := New(512) // node = 16 + 511*24 = 12280 bytes: 3 pages
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	var check func(n *node)
	check = func(n *node) {
		if n == nil {
			return
		}
		if n.base%params.PageSize != 0 {
			t.Fatalf("multi-page node at %#x not page-aligned", n.base)
		}
		for _, c := range n.children {
			check(c)
		}
	}
	check(tr.root)
}

func TestSearchUnderSwapLocality(t *testing.T) {
	// A fanout-168 node fills one page: a search touching d nodes under
	// cold swap should fault about d pages; re-searching the same key is
	// all hits.
	p := params.Default()
	tr, _ := New(168)
	keys := make([]uint64, 200000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	sw, err := memmodel.NewSwap(p, fakeDev{}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = tr.Search(12345, sw)
	coldMisses := sw.Cache().Misses
	if coldMisses == 0 || int(coldMisses) > tr.Depth() {
		t.Errorf("cold search faulted %d pages over depth %d", coldMisses, tr.Depth())
	}
	_, _, _ = tr.Search(12345, sw)
	if sw.Cache().Misses != coldMisses {
		t.Error("warm re-search faulted again")
	}
}

type fakeDev struct{}

func (fakeDev) FaultCost() params.Duration     { return 1000 }
func (fakeDev) WritebackCost() params.Duration { return 1000 }
func (fakeDev) Name() string                   { return "fake" }

func TestFootprintGrows(t *testing.T) {
	tr, _ := New(32)
	if tr.FootprintBytes() != 0 {
		t.Error("empty tree has a footprint")
	}
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	want := uint64(tr.Nodes) * NodeBytes(32)
	if tr.FootprintBytes() < want {
		t.Errorf("footprint %d below %d nodes worth", tr.FootprintBytes(), tr.Nodes)
	}
}

func TestEmptyTreeSearch(t *testing.T) {
	tr, _ := New(8)
	mem := &countingMem{}
	if found, cost, accs := tr.Search(1, mem); found || cost != 0 || accs != 0 {
		t.Error("empty tree search misbehaved")
	}
	if tr.Depth() != 0 {
		t.Error("empty tree has depth")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestRangeScanSmall(t *testing.T) {
	tr, _ := New(4)
	for k := uint64(10); k <= 100; k += 10 {
		tr.Insert(k)
	}
	mem := &countingMem{}
	var got []uint64
	cost, accs := tr.RangeScan(25, 75, mem, func(k uint64) { got = append(got, k) })
	want := []uint64{30, 40, 50, 60, 70}
	if len(got) != len(want) {
		t.Fatalf("scan returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan returned %v, want %v", got, want)
		}
	}
	if cost == 0 || accs == 0 {
		t.Error("scan charged nothing")
	}
	// Inclusive bounds.
	got = nil
	tr.RangeScan(30, 70, mem, func(k uint64) { got = append(got, k) })
	if len(got) != 5 || got[0] != 30 || got[4] != 70 {
		t.Errorf("inclusive scan = %v", got)
	}
	// Empty and inverted ranges.
	got = nil
	tr.RangeScan(101, 999, mem, func(k uint64) { got = append(got, k) })
	if len(got) != 0 {
		t.Errorf("out-of-range scan = %v", got)
	}
	if c, a := tr.RangeScan(50, 20, mem, func(uint64) { t.Fatal("visited") }); c != 0 || a != 0 {
		t.Error("inverted range did work")
	}
}

func TestRangeScanMatchesWalkProperty(t *testing.T) {
	f := func(raw []uint16, loSel, hiSel uint16, fanoutSel uint8) bool {
		fanout := 3 + int(fanoutSel%20)
		tr, err := New(fanout)
		if err != nil {
			return false
		}
		for _, r := range raw {
			tr.Insert(uint64(r))
		}
		lo, hi := uint64(loSel), uint64(hiSel)
		if lo > hi {
			lo, hi = hi, lo
		}
		var want []uint64
		tr.Walk(func(k uint64) {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		})
		var got []uint64
		mem := &countingMem{}
		tr.RangeScan(lo, hi, mem, func(k uint64) { got = append(got, k) })
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRangeScanCostProportionalToRange(t *testing.T) {
	tr, _ := New(168)
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(i)
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	mem := &countingMem{}
	_, small := tr.RangeScan(1000, 1100, mem, func(uint64) {})
	_, large := tr.RangeScan(1000, 51000, mem, func(uint64) {})
	if large < 100*small/2 {
		t.Errorf("scan cost not proportional: %d accesses for 100 keys, %d for 50000", small, large)
	}
	// A scan never visits dramatically more than keys + path nodes.
	if large > 80000 {
		t.Errorf("scan of 50000 keys cost %d accesses", large)
	}
}

// newSwapMem builds a small stateful accessor so batch-equivalence
// tests exercise order-dependent pricing, not just counting.
func newSwapMem(t *testing.T) memmodel.Accessor {
	t.Helper()
	p := params.Default()
	acc, err := memmodel.Build(memmodel.ConfigRemoteSwap, p, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	return acc
}

// TestSearchBatchMatchesScalar drives the scalar and batched searches
// over identical trees and stateful accessors: found flags, costs,
// access counts, and the address sequence seen by the memory must all
// match.
func TestSearchBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, fanout := range []int{3, 8, 168} {
		scalarTree, _ := New(fanout)
		batchTree, _ := New(fanout)
		keys := make([]uint64, 5000)
		for i := range keys {
			keys[i] = uint64(i) * 3
		}
		if err := scalarTree.BulkLoad(keys); err != nil {
			t.Fatal(err)
		}
		if err := batchTree.BulkLoad(keys); err != nil {
			t.Fatal(err)
		}
		scalarMem := newSwapMem(t)
		batchMem := newSwapMem(t)
		var b memmodel.Batcher
		for i := 0; i < 3000; i++ {
			key := uint64(rng.Intn(16000))
			sf, sc, sa := scalarTree.Search(key, scalarMem)
			bf, bc, ba := batchTree.SearchBatch(key, batchMem, &b)
			if sf != bf || sc != bc || sa != ba {
				t.Fatalf("fanout %d key %d: scalar (%v,%d,%d) != batch (%v,%d,%d)",
					fanout, key, sf, sc, sa, bf, bc, ba)
			}
			if b.Len() != 0 {
				t.Fatal("Batcher not empty after SearchBatch")
			}
		}
	}
}

// TestSearchKVBatchMatchesScalar pins SearchKV against SearchKVBatch,
// including the extra payload read on hits.
func TestSearchKVBatchMatchesScalar(t *testing.T) {
	scalarTree, _ := New(16)
	batchTree, _ := New(16)
	for i := uint64(0); i < 4000; i++ {
		scalarTree.InsertKV(i*2, i+100)
		batchTree.InsertKV(i*2, i+100)
	}
	scalarMem := newSwapMem(t)
	batchMem := newSwapMem(t)
	var b memmodel.Batcher
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		key := uint64(rng.Intn(9000))
		sv, sf, sc, sa := scalarTree.SearchKV(key, scalarMem)
		bv, bf, bc, ba := batchTree.SearchKVBatch(key, batchMem, &b)
		if sv != bv || sf != bf || sc != bc || sa != ba {
			t.Fatalf("key %d: scalar (%d,%v,%d,%d) != batch (%d,%v,%d,%d)",
				key, sv, sf, sc, sa, bv, bf, bc, ba)
		}
	}
}

// TestRangeScanBatchMatchesScalar pins the batched range scan — visit
// order, visited keys, cost, and access count — against the scalar
// walk, with ranges long enough to cross the mid-scan flush threshold.
func TestRangeScanBatchMatchesScalar(t *testing.T) {
	scalarTree, _ := New(8)
	batchTree, _ := New(8)
	keys := make([]uint64, 20000)
	for i := range keys {
		keys[i] = uint64(i) * 5
	}
	if err := scalarTree.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	if err := batchTree.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	scalarMem := newSwapMem(t)
	batchMem := newSwapMem(t)
	var b memmodel.Batcher
	for _, r := range [][2]uint64{{0, 99999}, {12345, 54321}, {7, 7}, {90, 10}} {
		var scalarKeys, batchKeys []uint64
		sc, sa := scalarTree.RangeScan(r[0], r[1], scalarMem, func(k uint64) {
			scalarKeys = append(scalarKeys, k)
		})
		bc, ba := batchTree.RangeScanBatch(r[0], r[1], batchMem, &b, func(k uint64) {
			batchKeys = append(batchKeys, k)
		})
		if sc != bc || sa != ba {
			t.Fatalf("range [%d,%d]: scalar (%d,%d) != batch (%d,%d)", r[0], r[1], sc, sa, bc, ba)
		}
		if len(scalarKeys) != len(batchKeys) {
			t.Fatalf("range [%d,%d]: %d vs %d keys", r[0], r[1], len(scalarKeys), len(batchKeys))
		}
		for i := range scalarKeys {
			if scalarKeys[i] != batchKeys[i] {
				t.Fatalf("range [%d,%d]: key %d differs: %d vs %d", r[0], r[1], i, scalarKeys[i], batchKeys[i])
			}
		}
		if b.Len() != 0 {
			t.Fatal("Batcher not empty after RangeScanBatch")
		}
	}
}

// TestSearchBatchZeroAllocSteadyState pins the batched search loop at 0
// allocs/op once the Batcher buffer is warm.
func TestSearchBatchZeroAllocSteadyState(t *testing.T) {
	tr, _ := New(168)
	keys := make([]uint64, 50000)
	for i := range keys {
		keys[i] = uint64(i) * 2
	}
	if err := tr.BulkLoad(keys); err != nil {
		t.Fatal(err)
	}
	mem := newSwapMem(t)
	var b memmodel.Batcher
	b.Grow(256)
	var key uint64
	tr.SearchBatch(0, mem, &b) // warm
	allocs := testing.AllocsPerRun(100, func() {
		key += 7919
		tr.SearchBatch(key%100000, mem, &b)
	})
	if allocs != 0 {
		t.Errorf("batched search: %.1f allocs/op, want 0", allocs)
	}
}
