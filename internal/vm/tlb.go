package vm

import "repro/internal/params"

// TLB is a fully-associative LRU translation cache. The paper's fast
// path relies on it: after the OS writes a prefixed translation once,
// every subsequent access translates in the TLB and goes straight to the
// hardware forwarding path with no software involved.
type TLB struct {
	capacity int
	entries  map[uint64]*tlbEntry
	clock    uint64

	// Hits and Misses count lookups.
	Hits, Misses uint64
}

type tlbEntry struct {
	pte PTE
	lru uint64
}

// DefaultTLBEntries matches an Opteron-era L2 TLB.
const DefaultTLBEntries = 512

// NewTLB builds a TLB with the given entry count.
func NewTLB(capacity int) *TLB {
	if capacity < 1 {
		capacity = 1
	}
	return &TLB{capacity: capacity, entries: make(map[uint64]*tlbEntry)}
}

// Lookup returns the cached translation for the page containing va.
func (t *TLB) Lookup(va Virt) (PTE, bool) {
	e, ok := t.entries[va.vpn()]
	if !ok {
		t.Misses++
		return PTE{}, false
	}
	t.clock++
	e.lru = t.clock
	t.Hits++
	return e.pte, true
}

// Insert caches a translation, evicting LRU if full.
func (t *TLB) Insert(va Virt, pte PTE) {
	vpn := va.vpn()
	if e, ok := t.entries[vpn]; ok {
		t.clock++
		e.pte, e.lru = pte, t.clock
		return
	}
	if len(t.entries) >= t.capacity {
		var victim uint64
		best := ^uint64(0)
		for k, e := range t.entries {
			if e.lru < best {
				best, victim = e.lru, k
			}
		}
		delete(t.entries, victim)
	}
	t.clock++
	t.entries[vpn] = &tlbEntry{pte: pte, lru: t.clock}
}

// Invalidate drops the translation for the page containing va.
func (t *TLB) Invalidate(va Virt) { delete(t.entries, va.vpn()) }

// Flush drops every entry (context switch, unmap of a range).
func (t *TLB) Flush() { t.entries = make(map[uint64]*tlbEntry) }

// Len returns the resident entry count.
func (t *TLB) Len() int { return len(t.entries) }

// HitRate returns the fraction of lookups that hit.
func (t *TLB) HitRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Hits) / float64(total)
}

// PagesFor returns how many pages a byte range spans, a helper shared by
// OS-level code.
func PagesFor(size uint64) int {
	return int((size + params.PageSize - 1) / params.PageSize)
}
