// Package vm models the virtual-memory machinery of one node's OS: page
// tables whose entries can point at *prefixed* physical addresses (the
// one kernel modification the reservation protocol of Figure 4 needs),
// a TLB with hit/miss accounting, and page pinning — reserved remote
// frames must never swap to disk, or the scheme would degenerate into
// remote swapping.
package vm

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
)

// Virt is a virtual address.
type Virt uint64

// Page returns the address rounded down to its page boundary.
func (v Virt) Page() Virt { return v &^ (params.PageSize - 1) }

// Offset returns the in-page offset.
func (v Virt) Offset() uint64 { return uint64(v) & (params.PageSize - 1) }

// vpn returns the virtual page number.
func (v Virt) vpn() uint64 { return uint64(v) / params.PageSize }

// PTE is one page-table entry. Phys may carry a node prefix: that is the
// entire trick — once the OS writes a prefixed translation, ordinary
// loads and stores reach remote memory with no software on the path.
type PTE struct {
	Phys    addr.Phys
	Present bool
	// Pinned entries may never be evicted or swapped.
	Pinned bool
}

// AddressSpace is one process's page table plus a bump allocator for
// fresh virtual ranges.
type AddressSpace struct {
	pages  map[uint64]PTE
	nextVA Virt

	// Faults counts page-table misses observed via Translate.
	Faults uint64
}

// heapBase is where allocated virtual ranges start, clear of the nil
// page and any text/stack a real process would have.
const heapBase Virt = 0x0000_1000_0000

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{pages: make(map[uint64]PTE), nextVA: heapBase}
}

// ReserveVirtual carves a fresh, unmapped virtual range of the given
// byte size (rounded up to pages) and returns its base.
func (as *AddressSpace) ReserveVirtual(size uint64) (Virt, error) {
	if size == 0 {
		return 0, fmt.Errorf("vm: zero-size virtual reservation")
	}
	pages := (size + params.PageSize - 1) / params.PageSize
	base := as.nextVA
	as.nextVA += Virt(pages * params.PageSize)
	return base, nil
}

// MapRange installs translations for npages pages starting at virtual
// base va, backed by the contiguous physical range starting at pa. pa
// may be prefixed (a remote reservation); pinned marks the pages
// unswappable, which remote reservations always are.
func (as *AddressSpace) MapRange(va Virt, pa addr.Phys, npages int, pinned bool) error {
	if va.Offset() != 0 || uint64(pa)%params.PageSize != 0 {
		return fmt.Errorf("vm: unaligned mapping %x -> %v", uint64(va), pa)
	}
	if npages <= 0 {
		return fmt.Errorf("vm: mapping %d pages", npages)
	}
	// Reject double-mapping before mutating anything.
	for i := 0; i < npages; i++ {
		if _, dup := as.pages[(va + Virt(i)*params.PageSize).vpn()]; dup {
			return fmt.Errorf("vm: page %x already mapped", uint64(va)+uint64(i)*params.PageSize)
		}
	}
	for i := 0; i < npages; i++ {
		v := va + Virt(i)*params.PageSize
		as.pages[v.vpn()] = PTE{Phys: pa + addr.Phys(i*params.PageSize), Present: true, Pinned: pinned}
	}
	return nil
}

// Unmap removes npages translations starting at va.
func (as *AddressSpace) Unmap(va Virt, npages int) error {
	if va.Offset() != 0 || npages <= 0 {
		return fmt.Errorf("vm: bad unmap %x x%d", uint64(va), npages)
	}
	for i := 0; i < npages; i++ {
		v := va + Virt(i)*params.PageSize
		if _, ok := as.pages[v.vpn()]; !ok {
			return fmt.Errorf("vm: unmapping unmapped page %x", uint64(v))
		}
	}
	for i := 0; i < npages; i++ {
		delete(as.pages, (va + Virt(i)*params.PageSize).vpn())
	}
	return nil
}

// Translate walks the page table for va. A missing translation counts as
// a fault and returns an error (the OS model decides what a fault means:
// allocation, swap-in, or a crash).
func (as *AddressSpace) Translate(va Virt) (addr.Phys, error) {
	pte, ok := as.pages[va.vpn()]
	if !ok || !pte.Present {
		as.Faults++
		return 0, fmt.Errorf("vm: page fault at %#x", uint64(va))
	}
	return pte.Phys + addr.Phys(va.Offset()), nil
}

// Lookup returns the PTE for the page containing va without fault
// accounting.
func (as *AddressSpace) Lookup(va Virt) (PTE, bool) {
	pte, ok := as.pages[va.vpn()]
	return pte, ok
}

// SetPresent flips a page's presence (swap models use this).
func (as *AddressSpace) SetPresent(va Virt, present bool) error {
	pte, ok := as.pages[va.vpn()]
	if !ok {
		return fmt.Errorf("vm: SetPresent on unmapped page %#x", uint64(va))
	}
	if pte.Pinned && !present {
		return fmt.Errorf("vm: cannot page out pinned page %#x", uint64(va))
	}
	pte.Present = present
	as.pages[va.vpn()] = pte
	return nil
}

// MappedPages returns the number of installed translations.
func (as *AddressSpace) MappedPages() int { return len(as.pages) }
