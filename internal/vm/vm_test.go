package vm

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/params"
)

func TestReserveVirtualDisjoint(t *testing.T) {
	as := NewAddressSpace()
	a, err := as.ReserveVirtual(10 * params.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.ReserveVirtual(1) // rounds to one page
	if err != nil {
		t.Fatal(err)
	}
	if b != a+10*params.PageSize {
		t.Errorf("ranges not adjacent/disjoint: %x then %x", uint64(a), uint64(b))
	}
	if _, err := as.ReserveVirtual(0); err == nil {
		t.Error("zero reservation accepted")
	}
}

func TestMapTranslateUnmap(t *testing.T) {
	as := NewAddressSpace()
	va, _ := as.ReserveVirtual(4 * params.PageSize)
	pa := addr.Phys(0x41000000).WithNode(3) // a remote reservation
	if err := as.MapRange(va, pa, 4, true); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 4 {
		t.Errorf("MappedPages = %d", as.MappedPages())
	}
	// The paper's worked translation: virtual offset maps to prefixed
	// physical address with the offset preserved.
	got, err := as.Translate(va + Virt(params.PageSize) + 0xB0)
	if err != nil {
		t.Fatal(err)
	}
	want := pa + params.PageSize + 0xB0
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	if got.Node() != 3 {
		t.Error("translation lost the node prefix")
	}
	if err := as.Unmap(va, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(va); err == nil {
		t.Error("translation survived unmap")
	}
	if as.Faults != 1 {
		t.Errorf("Faults = %d", as.Faults)
	}
}

func TestMapErrors(t *testing.T) {
	as := NewAddressSpace()
	va, _ := as.ReserveVirtual(2 * params.PageSize)
	if err := as.MapRange(va+1, 0, 1, false); err == nil {
		t.Error("unaligned va accepted")
	}
	if err := as.MapRange(va, 1, 1, false); err == nil {
		t.Error("unaligned pa accepted")
	}
	if err := as.MapRange(va, 0, 0, false); err == nil {
		t.Error("zero pages accepted")
	}
	if err := as.MapRange(va, 0, 2, false); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(va+params.PageSize, 0x10000, 1, false); err == nil {
		t.Error("double map accepted")
	}
	if err := as.Unmap(va, 3); err == nil {
		t.Error("unmap beyond mapping accepted")
	}
	// Failed unmap must not have removed anything.
	if as.MappedPages() != 2 {
		t.Errorf("partial unmap happened: %d pages", as.MappedPages())
	}
}

func TestPinnedPagesCannotPageOut(t *testing.T) {
	as := NewAddressSpace()
	va, _ := as.ReserveVirtual(2 * params.PageSize)
	if err := as.MapRange(va, addr.Phys(0x1000).WithNode(2), 1, true); err != nil {
		t.Fatal(err)
	}
	if err := as.MapRange(va+params.PageSize, 0x2000, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := as.SetPresent(va, false); err == nil {
		t.Error("pinned remote page paged out — this would be remote swap")
	}
	if err := as.SetPresent(va+params.PageSize, false); err != nil {
		t.Errorf("unpinned page refuses to page out: %v", err)
	}
	if _, err := as.Translate(va + params.PageSize); err == nil {
		t.Error("non-present page translated")
	}
	if err := as.SetPresent(va+params.PageSize, true); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Translate(va + params.PageSize); err != nil {
		t.Error("page-in did not restore translation")
	}
	if err := as.SetPresent(va+5*params.PageSize, true); err == nil {
		t.Error("SetPresent on unmapped page accepted")
	}
}

func TestTranslateRoundTripProperty(t *testing.T) {
	as := NewAddressSpace()
	va, _ := as.ReserveVirtual(256 * params.PageSize)
	pa := addr.Phys(0x10000000).WithNode(7)
	if err := as.MapRange(va, pa, 256, true); err != nil {
		t.Fatal(err)
	}
	f := func(off uint32) bool {
		o := uint64(off) % (256 * params.PageSize)
		got, err := as.Translate(va + Virt(o))
		return err == nil && got == pa+addr.Phys(o)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTLBBasics(t *testing.T) {
	tlb := NewTLB(2)
	va := Virt(0x10000)
	if _, ok := tlb.Lookup(va); ok {
		t.Error("empty TLB hit")
	}
	tlb.Insert(va, PTE{Phys: 0x5000, Present: true})
	pte, ok := tlb.Lookup(va)
	if !ok || pte.Phys != 0x5000 {
		t.Errorf("lookup = %+v, %v", pte, ok)
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Errorf("hits/misses = %d/%d", tlb.Hits, tlb.Misses)
	}
	if tlb.HitRate() != 0.5 {
		t.Errorf("HitRate = %v", tlb.HitRate())
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tlb := NewTLB(2)
	a, b, c := Virt(0), Virt(params.PageSize), Virt(2*params.PageSize)
	tlb.Insert(a, PTE{Phys: 1})
	tlb.Insert(b, PTE{Phys: 2})
	tlb.Lookup(a)               // a is now MRU
	tlb.Insert(c, PTE{Phys: 3}) // evicts b
	if _, ok := tlb.Lookup(b); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := tlb.Lookup(a); !ok {
		t.Error("MRU entry evicted")
	}
	if tlb.Len() != 2 {
		t.Errorf("Len = %d", tlb.Len())
	}
}

func TestTLBUpdateInvalidateFlush(t *testing.T) {
	tlb := NewTLB(4)
	va := Virt(0x3000)
	tlb.Insert(va, PTE{Phys: 1})
	tlb.Insert(va, PTE{Phys: 2}) // update in place
	if pte, _ := tlb.Lookup(va); pte.Phys != 2 {
		t.Error("update did not take")
	}
	tlb.Invalidate(va)
	if _, ok := tlb.Lookup(va); ok {
		t.Error("invalidated entry hit")
	}
	tlb.Insert(va, PTE{Phys: 3})
	tlb.Flush()
	if tlb.Len() != 0 {
		t.Error("flush left entries")
	}
}

func TestTLBMinCapacity(t *testing.T) {
	tlb := NewTLB(0) // clamps to 1
	tlb.Insert(0, PTE{Phys: 1})
	tlb.Insert(params.PageSize, PTE{Phys: 2})
	if tlb.Len() != 1 {
		t.Errorf("Len = %d, want 1", tlb.Len())
	}
	if tlb.HitRate() != 0 {
		t.Error("no lookups but nonzero hit rate")
	}
}

func TestPagesFor(t *testing.T) {
	cases := map[uint64]int{1: 1, params.PageSize: 1, params.PageSize + 1: 2, 10 * params.PageSize: 10}
	for in, want := range cases {
		if got := PagesFor(in); got != want {
			t.Errorf("PagesFor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestVirtHelpers(t *testing.T) {
	v := Virt(0x12345)
	if v.Page() != 0x12000 || v.Offset() != 0x345 {
		t.Errorf("Page/Offset = %x/%x", uint64(v.Page()), v.Offset())
	}
}
