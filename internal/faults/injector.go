package faults

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/metrics"
)

// Status classifies what the fabric did with one frame.
type Status int

// Frame outcomes.
const (
	// Delivered: the frame arrived intact at Arrive.
	Delivered Status = iota
	// Corrupted: the frame arrived at Arrive with flipped bits; the
	// receiver's CRC check will reject it.
	Corrupted
	// Dropped: the frame vanished in transit and never arrives.
	Dropped
	// Unreachable: no route existed (every detour exhausted or the hop
	// budget ran out while links were down).
	Unreachable
)

func (s Status) String() string {
	switch s {
	case Delivered:
		return "delivered"
	case Corrupted:
		return "corrupted"
	case Dropped:
		return "dropped"
	case Unreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Outcome is the result of pushing one frame through a faulty fabric:
// when it arrived (meaningful for Delivered/Corrupted), how many link
// traversals it consumed, and what happened to it.
type Outcome struct {
	Arrive int64
	Hops   int
	Status Status
}

// prng is a self-contained splitmix64 stream. The simulator's
// determinism contract outlives Go releases, so the fault stream does
// not depend on math/rand's generator staying put.
type prng struct{ state uint64 }

func (r *prng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *prng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n).
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// Injector is a Plan bound to one single-threaded simulation. It owns
// the seeded random stream; because fault rolls happen in deterministic
// event order, the whole fault sequence replays exactly under the same
// plan. Each simulation builds its own Injector, so parallel sweep
// points never share a stream (the merge-determinism contract holds
// under faults).
type Injector struct {
	plan *Plan
	rng  prng

	// Drops, Corruptions, and Delays count injected faults.
	Drops, Corruptions, Delays uint64
}

// NewInjector binds a validated, non-empty plan to a fresh stream.
func NewInjector(p *Plan) *Injector {
	return &Injector{plan: p, rng: prng{state: uint64(p.Seed)}}
}

// Plan returns the bound plan.
func (in *Injector) Plan() *Plan { return in.plan }

// RollDrop draws once against the drop probability. Probability zero
// consumes no randomness, so enabling only scheduled faults perturbs
// nothing else.
func (in *Injector) RollDrop() bool {
	if in == nil || in.plan.Drop <= 0 {
		return false
	}
	if in.rng.float64() < in.plan.Drop {
		in.Drops++
		return true
	}
	return false
}

// RollCorrupt draws once against the corruption probability.
func (in *Injector) RollCorrupt() bool {
	if in == nil || in.plan.Corrupt <= 0 {
		return false
	}
	if in.rng.float64() < in.plan.Corrupt {
		in.Corruptions++
		return true
	}
	return false
}

// RollDelay draws once against the delay probability and returns the
// extra latency when it fires.
func (in *Injector) RollDelay() (int64, bool) {
	if in == nil || in.plan.Delay <= 0 {
		return 0, false
	}
	if in.rng.float64() < in.plan.Delay {
		in.Delays++
		return in.plan.DelayBy, true
	}
	return 0, false
}

// LinkDown reports whether the link between two adjacent nodes is down
// at time t. Outages are bidirectional: a LinkWindow matches the link in
// either direction, like a pulled cable.
func (in *Injector) LinkDown(a, b addr.NodeID, t int64) bool {
	if in == nil {
		return false
	}
	for _, lw := range in.plan.LinkDowns {
		if (lw.From == a && lw.To == b) || (lw.From == b && lw.To == a) {
			if lw.Contains(t) {
				return true
			}
		}
	}
	return false
}

// NackStorm reports whether the node's client RMC is inside a scheduled
// NACK storm at time t.
func (in *Injector) NackStorm(n addr.NodeID, t int64) bool {
	if in == nil {
		return false
	}
	for _, nw := range in.plan.NackStorms {
		if nw.Node == n && nw.Contains(t) {
			return true
		}
	}
	return false
}

// MangleCRC flips one random bit of a frame checksum — the wire-level
// corruption a receiver's CRC check is there to catch.
func (in *Injector) MangleCRC(crc uint32) uint32 {
	return crc ^ 1<<uint(in.rng.intn(32))
}

// Register exposes the injection tallies. Only faulted systems call
// this, so fault-free snapshots carry no fault families at all.
func (in *Injector) Register(m *metrics.Registry) {
	m.CounterFunc(metrics.FamFaultDrops, "frames dropped by the fault plan", nil,
		func() uint64 { return in.Drops })
	m.CounterFunc(metrics.FamFaultCorruptions, "frames corrupted by the fault plan", nil,
		func() uint64 { return in.Corruptions })
	m.CounterFunc(metrics.FamFaultDelays, "frames delayed by the fault plan", nil,
		func() uint64 { return in.Delays })
}
