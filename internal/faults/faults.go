// Package faults describes deterministic fault plans for the simulated
// HNC-HT fabric. The paper defers "concerns related to communication
// reliability" to future work; this package supplies the forcing half of
// that future work — seeded, replayable misbehaviour (frame drops,
// corruption, extra delay, link outages, RMC NACK storms, node stalls)
// that the recovery machinery in mesh/rmc must survive.
//
// A Plan is pure data: it can be parsed from a CLI spec, printed back
// canonically, and carried inside params.Params. An Injector is a Plan
// bound to one simulation: it owns the seeded random stream the fault
// rolls consume. Because every simulation is single-threaded and events
// execute in a strict deterministic order (DESIGN.md §7), the stream is
// consumed in a reproducible order and two runs with the same plan are
// byte-identical — faults included.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/addr"
)

// Window is a half-open simulated-time interval [Start, End) in
// picoseconds during which a scheduled fault is active.
type Window struct {
	Start, End int64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t int64) bool { return t >= w.Start && t < w.End }

// Validate reports the first inconsistency.
func (w Window) Validate() error {
	if w.Start < 0 || w.End <= w.Start {
		return fmt.Errorf("faults: window [%d,%d) is empty or negative", w.Start, w.End)
	}
	return nil
}

// LinkWindow takes the mesh link between two adjacent nodes down for the
// window — in both directions, like an unplugged cable.
type LinkWindow struct {
	From, To addr.NodeID
	Window
}

// NodeWindow schedules a per-node fault (NACK storm or server stall).
type NodeWindow struct {
	Node addr.NodeID
	Window
}

// Plan is a complete, seedable fault schedule. The zero value injects
// nothing and is equivalent to running without the fault layer at all.
type Plan struct {
	// Seed initializes the injector's random stream. Two runs of the
	// same plan (same seed) replay the same fault sequence exactly.
	Seed int64

	// Drop, Corrupt, and Delay are per-link-traversal probabilities: a
	// frame crossing one mesh link (or the HToE switch) rolls each in
	// turn. Dropped frames vanish after occupying the link; corrupted
	// frames arrive with a flipped CRC bit; delayed frames arrive
	// DelayBy late.
	Drop, Corrupt, Delay float64

	// DelayBy is the extra latency (picoseconds) added when a delay
	// fires.
	DelayBy int64

	// LinkDowns schedules bidirectional mesh-link outages.
	LinkDowns []LinkWindow

	// NackStorms schedules windows during which a node's client RMC
	// NACKs every admission as if its queue were permanently full.
	NackStorms []NodeWindow

	// Stalls schedules windows during which a node's server RMC makes no
	// forward progress (its service capacity is consumed by the stall).
	Stalls []NodeWindow
}

// Empty reports whether the plan injects nothing; an empty plan must be
// behaviourally identical to no plan.
func (p *Plan) Empty() bool {
	if p == nil {
		return true
	}
	return p.Drop == 0 && p.Corrupt == 0 && p.Delay == 0 &&
		len(p.LinkDowns) == 0 && len(p.NackStorms) == 0 && len(p.Stalls) == 0
}

// Validate reports the first inconsistency in the plan.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{{"drop", p.Drop}, {"corrupt", p.Corrupt}, {"delayp", p.Delay}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.DelayBy < 0 {
		return fmt.Errorf("faults: negative delay %d", p.DelayBy)
	}
	if p.Delay > 0 && p.DelayBy == 0 {
		return fmt.Errorf("faults: delay probability %v with zero delay duration", p.Delay)
	}
	for _, lw := range p.LinkDowns {
		if lw.From == 0 || lw.To == 0 || lw.From == lw.To {
			return fmt.Errorf("faults: invalid link %d-%d", lw.From, lw.To)
		}
		if err := lw.Window.Validate(); err != nil {
			return err
		}
	}
	for _, set := range [][]NodeWindow{p.NackStorms, p.Stalls} {
		for _, nw := range set {
			if nw.Node == 0 {
				return fmt.Errorf("faults: invalid node 0 in window")
			}
			if err := nw.Window.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Parse builds a plan from a comma-separated spec, the format of the
// CLIs' -faults flag:
//
//	seed=N            random stream seed (default 1)
//	drop=P            per-link-traversal drop probability
//	corrupt=P         per-link-traversal corruption probability
//	delayp=P          per-link-traversal delay probability
//	delay=D           extra latency when a delay fires (e.g. 300ns)
//	down=A-B@S:E      mesh link A<->B down during [S,E) (e.g. 6-7@0:50us)
//	storm=N@S:E       node N's client RMC NACKs everything during [S,E)
//	stall=N@S:E       node N's server RMC stalls during [S,E)
//
// down/storm/stall may repeat. Durations use Go syntax (ns/us/ms/s).
func Parse(spec string) (*Plan, error) {
	p := &Plan{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("faults: %q is not key=value", field)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "drop":
			p.Drop, err = strconv.ParseFloat(val, 64)
		case "corrupt":
			p.Corrupt, err = strconv.ParseFloat(val, 64)
		case "delayp":
			p.Delay, err = strconv.ParseFloat(val, 64)
		case "delay":
			p.DelayBy, err = parseDuration(val)
		case "down":
			var lw LinkWindow
			lw, err = parseLinkWindow(val)
			p.LinkDowns = append(p.LinkDowns, lw)
		case "storm":
			var nw NodeWindow
			nw, err = parseNodeWindow(val)
			p.NackStorms = append(p.NackStorms, nw)
		case "stall":
			var nw NodeWindow
			nw, err = parseNodeWindow(val)
			p.Stalls = append(p.Stalls, nw)
		default:
			return nil, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %s=%s: %w", key, val, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the plan in the spec syntax Parse reads, canonically
// ordered, so a plan can be logged and replayed verbatim.
func (p *Plan) String() string {
	if p == nil {
		return ""
	}
	parts := []string{fmt.Sprintf("seed=%d", p.Seed)}
	if p.Drop > 0 {
		parts = append(parts, "drop="+strconv.FormatFloat(p.Drop, 'g', -1, 64))
	}
	if p.Corrupt > 0 {
		parts = append(parts, "corrupt="+strconv.FormatFloat(p.Corrupt, 'g', -1, 64))
	}
	if p.Delay > 0 {
		parts = append(parts, "delayp="+strconv.FormatFloat(p.Delay, 'g', -1, 64))
	}
	if p.DelayBy > 0 {
		parts = append(parts, "delay="+formatDuration(p.DelayBy))
	}
	downs := append([]LinkWindow(nil), p.LinkDowns...)
	sort.Slice(downs, func(i, j int) bool {
		a, b := downs[i], downs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Start < b.Start
	})
	for _, lw := range downs {
		parts = append(parts, fmt.Sprintf("down=%d-%d@%s:%s",
			lw.From, lw.To, formatDuration(lw.Start), formatDuration(lw.End)))
	}
	for key, set := range map[string][]NodeWindow{"storm": p.NackStorms, "stall": p.Stalls} {
		set := append([]NodeWindow(nil), set...)
		sort.Slice(set, func(i, j int) bool {
			if set[i].Node != set[j].Node {
				return set[i].Node < set[j].Node
			}
			return set[i].Start < set[j].Start
		})
		for _, nw := range set {
			parts = append(parts, fmt.Sprintf("%s=%d@%s:%s",
				key, nw.Node, formatDuration(nw.Start), formatDuration(nw.End)))
		}
	}
	// Map iteration order is random; restore the canonical key order.
	sort.SliceStable(parts[1:], func(i, j int) bool {
		return specRank(parts[1+i]) < specRank(parts[1+j])
	})
	return strings.Join(parts, ",")
}

func specRank(part string) int {
	for i, prefix := range []string{"drop=", "corrupt=", "delayp=", "delay=", "down=", "storm=", "stall="} {
		if strings.HasPrefix(part, prefix) {
			return i
		}
	}
	return len(part)
}

// parseLinkWindow reads "A-B@S:E".
func parseLinkWindow(s string) (LinkWindow, error) {
	link, win, ok := strings.Cut(s, "@")
	if !ok {
		return LinkWindow{}, fmt.Errorf("missing @window")
	}
	a, b, ok := strings.Cut(link, "-")
	if !ok {
		return LinkWindow{}, fmt.Errorf("link %q is not A-B", link)
	}
	from, err := parseNode(a)
	if err != nil {
		return LinkWindow{}, err
	}
	to, err := parseNode(b)
	if err != nil {
		return LinkWindow{}, err
	}
	w, err := parseWindow(win)
	if err != nil {
		return LinkWindow{}, err
	}
	return LinkWindow{From: from, To: to, Window: w}, nil
}

// parseNodeWindow reads "N@S:E".
func parseNodeWindow(s string) (NodeWindow, error) {
	node, win, ok := strings.Cut(s, "@")
	if !ok {
		return NodeWindow{}, fmt.Errorf("missing @window")
	}
	n, err := parseNode(node)
	if err != nil {
		return NodeWindow{}, err
	}
	w, err := parseWindow(win)
	if err != nil {
		return NodeWindow{}, err
	}
	return NodeWindow{Node: n, Window: w}, nil
}

func parseNode(s string) (addr.NodeID, error) {
	n, err := strconv.ParseUint(strings.TrimSpace(s), 10, 16)
	if err != nil || n == 0 || n > uint64(addr.MaxNode) {
		return 0, fmt.Errorf("invalid node %q", s)
	}
	return addr.NodeID(n), nil
}

func parseWindow(s string) (Window, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return Window{}, fmt.Errorf("window %q is not start:end", s)
	}
	start, err := parseDuration(a)
	if err != nil {
		return Window{}, err
	}
	end, err := parseDuration(b)
	if err != nil {
		return Window{}, err
	}
	return Window{Start: start, End: end}, nil
}

// durUnits are the suffixes parseDuration accepts, longest first so "ns"
// wins over "s". Values are picoseconds per unit.
var durUnits = []struct {
	suffix string
	ps     int64
}{
	{"ps", 1},
	{"ns", 1_000},
	{"us", 1_000_000},
	{"µs", 1_000_000},
	{"ms", 1_000_000_000},
	{"s", 1_000_000_000_000},
}

// parseDuration reads a simulator duration ("300ns", "1.5us", bare "0").
func parseDuration(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "0" {
		return 0, nil
	}
	for _, u := range durUnits {
		if !strings.HasSuffix(s, u.suffix) {
			continue
		}
		num := strings.TrimSuffix(s, u.suffix)
		v, err := strconv.ParseFloat(num, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("invalid duration %q", s)
		}
		return int64(v * float64(u.ps)), nil
	}
	return 0, fmt.Errorf("duration %q needs a unit (ps/ns/us/ms/s)", s)
}

// formatDuration renders picoseconds with the largest exact unit.
func formatDuration(ps int64) string {
	if ps == 0 {
		return "0"
	}
	for i := len(durUnits) - 1; i >= 0; i-- {
		u := durUnits[i]
		if u.suffix == "µs" {
			continue
		}
		if ps%u.ps == 0 {
			return strconv.FormatInt(ps/u.ps, 10) + u.suffix
		}
	}
	return strconv.FormatInt(ps, 10) + "ps"
}
