package faults

import (
	"testing"

	"repro/internal/addr"
)

func mustParse(t *testing.T, spec string) *Plan {
	t.Helper()
	p, err := Parse(spec)
	if err != nil {
		t.Fatalf("Parse(%q): %v", spec, err)
	}
	return p
}

func TestParseStringRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"seed=1",
		"seed=7,drop=0.01",
		"seed=2,drop=0.01,corrupt=0.002,delayp=0.02,delay=300ns",
		"seed=3,down=6-7@0:50us",
		"seed=4,drop=0.1,down=2-6@10us:20us,down=6-7@0:50us,storm=6@1us:2us,stall=7@5us:9us",
	} {
		p := mustParse(t, spec)
		rendered := p.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("String() of %q produced unparseable %q: %v", spec, rendered, err)
		}
		if got := again.String(); got != rendered {
			t.Errorf("round trip not a fixed point: %q -> %q", rendered, got)
		}
	}
}

func TestStringCanonicalOrder(t *testing.T) {
	// The same schedule written in two different orders renders once.
	a := mustParse(t, "stall=7@5us:9us,down=6-7@0:50us,drop=0.1,seed=4,storm=6@1us:2us,down=2-6@10us:20us")
	b := mustParse(t, "seed=4,drop=0.1,down=2-6@10us:20us,down=6-7@0:50us,storm=6@1us:2us,stall=7@5us:9us")
	if a.String() != b.String() {
		t.Errorf("order-dependent rendering:\n%s\n%s", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",          // unknown key
		"drop",             // not key=value
		"drop=1.5",         // probability out of range
		"drop=-0.1",        // negative probability
		"delayp=0.5",       // delay probability without a duration
		"delay=300",        // duration without unit
		"down=6@0:1us",     // link spec missing -B
		"down=6-6@0:1us",   // self link
		"down=0-1@0:1us",   // node 0
		"down=6-7@5us:5us", // empty window
		"down=6-7@5us:1us", // inverted window
		"storm=6@1us",      // window missing :end
		"stall=x@0:1us",    // non-numeric node
		"seed=abc",         // non-numeric seed
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestEmpty(t *testing.T) {
	var nilPlan *Plan
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if !mustParse(t, "").Empty() {
		t.Error("blank spec not empty")
	}
	// A seed alone schedules nothing.
	if !mustParse(t, "seed=42").Empty() {
		t.Error("seed-only plan not empty")
	}
	for _, spec := range []string{"drop=0.1", "corrupt=0.1", "delayp=0.1,delay=1ns",
		"down=1-2@0:1us", "storm=1@0:1us", "stall=1@0:1us"} {
		if mustParse(t, spec).Empty() {
			t.Errorf("plan %q reported empty", spec)
		}
	}
}

func TestWindowSemantics(t *testing.T) {
	w := Window{Start: 10, End: 20}
	for _, c := range []struct {
		t    int64
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := w.Contains(c.t); got != c.want {
			t.Errorf("[10,20).Contains(%d) = %v", c.t, got)
		}
	}
}

// TestInjectorDeterminism is the property everything downstream leans
// on: the same plan replays the same fault sequence exactly, and a
// different seed produces a different one.
func TestInjectorDeterminism(t *testing.T) {
	roll := func(seed int64) []bool {
		in := NewInjector(&Plan{Seed: seed, Drop: 0.3, Corrupt: 0.1, Delay: 0.2, DelayBy: 100})
		var seq []bool
		for i := 0; i < 2000; i++ {
			seq = append(seq, in.RollDrop(), in.RollCorrupt())
			_, d := in.RollDelay()
			seq = append(seq, d)
		}
		return seq
	}
	a, b := roll(7), roll(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at roll %d", i)
		}
	}
	c := roll(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical 6000-roll sequences")
	}
}

// TestZeroProbabilityConsumesNoRandomness: disabling one fault class
// must not shift the stream consumed by the others, so plans compose
// without perturbing each other's schedules.
func TestZeroProbabilityConsumesNoRandomness(t *testing.T) {
	drops := func(corrupt float64) []bool {
		in := NewInjector(&Plan{Seed: 5, Drop: 0.5, Corrupt: corrupt})
		var seq []bool
		for i := 0; i < 500; i++ {
			if corrupt == 0 {
				in.RollCorrupt() // must be a no-op on the stream
			}
			seq = append(seq, in.RollDrop())
		}
		return seq
	}
	plain := drops(0)
	in := NewInjector(&Plan{Seed: 5, Drop: 0.5})
	for i := 0; i < 500; i++ {
		if got := in.RollDrop(); got != plain[i] {
			t.Fatalf("zero-probability corrupt roll consumed randomness (drop %d differs)", i)
		}
	}
}

func TestInjectorCounters(t *testing.T) {
	in := NewInjector(&Plan{Seed: 1, Drop: 1, Corrupt: 1, Delay: 1, DelayBy: 300})
	if !in.RollDrop() || !in.RollCorrupt() {
		t.Fatal("probability-1 roll missed")
	}
	if d, ok := in.RollDelay(); !ok || d != 300 {
		t.Fatalf("RollDelay = %d, %v", d, ok)
	}
	if in.Drops != 1 || in.Corruptions != 1 || in.Delays != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/1/1", in.Drops, in.Corruptions, in.Delays)
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var in *Injector
	if in.RollDrop() || in.RollCorrupt() {
		t.Error("nil injector rolled a fault")
	}
	if _, ok := in.RollDelay(); ok {
		t.Error("nil injector rolled a delay")
	}
	if in.LinkDown(1, 2, 0) || in.NackStorm(1, 0) {
		t.Error("nil injector scheduled a fault")
	}
}

func TestLinkDownBidirectional(t *testing.T) {
	in := NewInjector(mustParse(t, "down=6-7@10us:20us"))
	const us = 1_000_000
	for _, c := range []struct {
		a, b uint16
		t    int64
		want bool
	}{
		{6, 7, 15 * us, true},
		{7, 6, 15 * us, true}, // pulled cable: both directions
		{6, 7, 9 * us, false},
		{6, 7, 20 * us, false}, // half-open end
		{6, 5, 15 * us, false}, // other links unaffected
	} {
		if got := in.LinkDown(addr.NodeID(c.a), addr.NodeID(c.b), c.t); got != c.want {
			t.Errorf("LinkDown(%d,%d,@%dus) = %v", c.a, c.b, c.t/us, got)
		}
	}
}

func TestNodeWindows(t *testing.T) {
	in := NewInjector(mustParse(t, "storm=6@1us:2us"))
	const us = 1_000_000
	if !in.NackStorm(6, 1*us) || in.NackStorm(6, 2*us) || in.NackStorm(7, 1*us) {
		t.Error("storm window misapplied")
	}
}

func TestMangleCRC(t *testing.T) {
	in := NewInjector(&Plan{Seed: 3})
	for i := 0; i < 100; i++ {
		crc := uint32(0xdeadbeef)
		got := in.MangleCRC(crc)
		if got == crc {
			t.Fatal("MangleCRC returned the input unchanged")
		}
		if diff := got ^ crc; diff&(diff-1) != 0 {
			t.Fatalf("MangleCRC flipped more than one bit: %#x", diff)
		}
	}
}

func TestDurationFormats(t *testing.T) {
	for _, c := range []struct {
		in string
		ps int64
	}{
		{"0", 0}, {"7ps", 7}, {"300ns", 300_000}, {"1.5us", 1_500_000},
		{"2µs", 2_000_000}, {"4ms", 4_000_000_000_000 / 1000}, {"1s", 1_000_000_000_000},
	} {
		got, err := parseDuration(c.in)
		if err != nil || got != c.ps {
			t.Errorf("parseDuration(%q) = %d, %v; want %d", c.in, got, err, c.ps)
		}
	}
	for _, ps := range []int64{0, 1, 999, 1000, 300_000, 1_500_000, 1_000_000_000_000} {
		s := formatDuration(ps)
		back, err := parseDuration(s)
		if err != nil || back != ps {
			t.Errorf("formatDuration(%d) = %q, parses back to %d, %v", ps, s, back, err)
		}
	}
}

func TestValidateTunables(t *testing.T) {
	p := &Plan{Drop: 0.5, Delay: 0.1} // delay probability, no duration
	if err := p.Validate(); err == nil {
		t.Error("delay probability without duration validated")
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan invalid: %v", err)
	}
}
