package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader feeds arbitrary bytes to the trace reader: it must never
// panic, and every record it does produce must re-encode losslessly.
func FuzzReader(f *testing.F) {
	// Seed with a valid two-record trace and a few corruptions of it.
	var valid bytes.Buffer
	w, err := NewWriter(&valid)
	if err != nil {
		f.Fatal(err)
	}
	w.Add(Record{Addr: 0x1000, Write: false})
	w.Add(Record{Addr: 0x0, Write: true})
	w.Close()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:9])
	mutated := append([]byte(nil), valid.Bytes()...)
	mutated[8] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return // bad header: fine, as long as no panic
		}
		var recs []Record
		for {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // corrupt tail: fine
			}
			recs = append(recs, rec)
			if len(recs) > 1<<16 {
				break // bound the walk on adversarial inputs
			}
		}
		// Whatever parsed must round-trip exactly.
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			if err := w.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("re-encoded trace unreadable: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip lost records: %d vs %d", len(got), len(recs))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d mutated: %+v vs %+v", i, got[i], recs[i])
			}
		}
	})
}
