package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/memmodel"
	"repro/internal/params"
)

func roundTrip(t *testing.T, recs []Record) []Record {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(recs)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestRoundTrip(t *testing.T) {
	recs := []Record{
		{Addr: 0x1000, Write: false},
		{Addr: 0x1040, Write: true},
		{Addr: 0xdeadbeef000, Write: false},
		{Addr: 0x10, Write: true}, // negative delta
		{Addr: 0x10, Write: false},
	}
	got := roundTrip(t, recs)
	if len(got) != len(recs) {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	if got := roundTrip(t, nil); len(got) != 0 {
		t.Errorf("empty trace read back %d records", len(got))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, writes []bool) bool {
		var recs []Record
		for i, a := range addrs {
			recs = append(recs, Record{Addr: a, Write: i < len(writes) && writes[i]})
		}
		got := roundTrip(t, recs)
		if len(got) != len(recs) {
			return false
		}
		for i := range recs {
			if got[i] != recs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeltaCompression(t *testing.T) {
	// A sequential trace should cost ~2 bytes per record.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 1000; i++ {
		w.Add(Record{Addr: uint64(i) * 64})
	}
	w.Close()
	if perRec := float64(buf.Len()-8) / 1000; perRec > 3 {
		t.Errorf("sequential trace costs %.1f bytes/record", perRec)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("truncated header accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("WRONGMAG-extra"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Corrupt flag byte.
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(7)
	buf.WriteByte(0)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("corrupt flags accepted")
	}
	// Truncated varint.
	buf.Reset()
	buf.Write(magic[:])
	buf.WriteByte(0)
	r, _ = NewReader(&buf)
	if _, err := r.Next(); err == nil || errors.Is(err, io.EOF) {
		t.Errorf("truncated record returned %v", err)
	}
	// Closed writer rejects appends.
	var out bytes.Buffer
	w, _ := NewWriter(&out)
	w.Close()
	if err := w.Add(Record{}); err == nil {
		t.Error("closed writer accepted a record")
	}
}

func TestRecordStreamAndReplayStream(t *testing.T) {
	src := []cpu.Access{
		{Addr: addr.Phys(0x40).WithNode(2), Write: false},
		{Addr: addr.Phys(0x80).WithNode(2), Write: true},
	}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	rec := RecordStream(cpu.NewSliceStream(src), w)
	for {
		if _, ok := rec.Next(); !ok {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := r.Stream()
	for i := range src {
		a, ok := replay.Next()
		if !ok || a != src[i] {
			t.Fatalf("replay %d = %+v, %v; want %+v", i, a, ok, src[i])
		}
	}
	if _, ok := replay.Next(); ok {
		t.Error("replay over-produced")
	}
}

func TestReplayAgainstAccessor(t *testing.T) {
	p := params.Default()
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	const n = 100
	for i := 0; i < n; i++ {
		w.Add(Record{Addr: uint64(i) * 4096})
	}
	w.Close()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	total, count, err := r.Replay(memmodel.Remote{P: p, Hops: 2})
	if err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Errorf("replayed %d accesses", count)
	}
	if total != params.Duration(n)*p.RemoteRoundTrip(2) {
		t.Errorf("replay time = %d", total)
	}
}
