// Package trace records and replays memory-access traces in a compact
// binary format, so an experiment's exact access sequence can be saved,
// diffed across code versions, and replayed against any memory
// configuration (micro-layer streams or macro-layer accessors) — the
// reproducibility backbone of EXPERIMENTS.md.
//
// Format: an 8-byte header ("NCDSMTR1"), then one record per access:
// a flag byte (bit 0 = write) followed by the address as a varint delta
// against the previous address (zig-zag encoded). Deltas make streaming
// patterns almost free to store.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/addr"
	"repro/internal/cpu"
	"repro/internal/memmodel"
	"repro/internal/params"
)

// magic identifies the format and its version.
var magic = [8]byte{'N', 'C', 'D', 'S', 'M', 'T', 'R', '1'}

// Record is one traced access.
type Record struct {
	Addr  uint64
	Write bool
}

// Writer streams records to an underlying writer.
type Writer struct {
	w    *bufio.Writer
	prev uint64
	n    uint64
	open bool
}

// NewWriter writes the header and returns a trace writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, open: true}, nil
}

// Add appends one record.
func (t *Writer) Add(r Record) error {
	if !t.open {
		return errors.New("trace: writer closed")
	}
	flags := byte(0)
	if r.Write {
		flags = 1
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	delta := int64(r.Addr) - int64(t.prev)
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], delta)
	if _, err := t.w.Write(buf[:n]); err != nil {
		return err
	}
	t.prev = r.Addr
	t.n++
	return nil
}

// Count returns the number of records written.
func (t *Writer) Count() uint64 { return t.n }

// Close flushes the trace. The writer is unusable afterwards.
func (t *Writer) Close() error {
	t.open = false
	return t.w.Flush()
}

// Reader streams records back.
type Reader struct {
	r    *bufio.Reader
	prev uint64
}

// NewReader validates the header and returns a trace reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at the end.
func (t *Reader) Next() (Record, error) {
	flags, err := t.r.ReadByte()
	if err != nil {
		return Record{}, err // io.EOF passes through
	}
	if flags > 1 {
		return Record{}, fmt.Errorf("trace: corrupt flag byte %#x", flags)
	}
	delta, err := binary.ReadVarint(t.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, fmt.Errorf("trace: reading address: %w", err)
	}
	a := uint64(int64(t.prev) + delta)
	t.prev = a
	return Record{Addr: a, Write: flags&1 == 1}, nil
}

// ReadAll drains the reader.
func (t *Reader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		r, err := t.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}

// RecordStream wraps a cpu.Stream, copying every access into the writer
// as it flows through.
func RecordStream(inner cpu.Stream, w *Writer) cpu.Stream {
	return cpu.FuncStream(func() (cpu.Access, bool) {
		a, ok := inner.Next()
		if !ok {
			return a, false
		}
		if err := w.Add(Record{Addr: uint64(a.Addr), Write: a.Write}); err != nil {
			panic(fmt.Sprintf("trace: recording failed: %v", err))
		}
		return a, true
	})
}

// Stream replays a trace as a cpu.Stream of physical accesses.
func (t *Reader) Stream() cpu.Stream {
	return cpu.FuncStream(func() (cpu.Access, bool) {
		r, err := t.Next()
		if errors.Is(err, io.EOF) {
			return cpu.Access{}, false
		}
		if err != nil {
			panic(fmt.Sprintf("trace: replay failed: %v", err))
		}
		return cpu.Access{Addr: addr.Phys(r.Addr), Write: r.Write}, true
	})
}

// Replay runs the whole trace against a macro-layer accessor and returns
// the accumulated memory time and access count.
func (t *Reader) Replay(acc memmodel.Accessor) (params.Duration, uint64, error) {
	var total params.Duration
	var n uint64
	for {
		r, err := t.Next()
		if errors.Is(err, io.EOF) {
			return total, n, nil
		}
		if err != nil {
			return total, n, err
		}
		total += acc.Access(r.Addr, r.Write)
		n++
	}
}
