// Package cpu models the processor side of the memory path: threads
// bound to cores that issue loads and stores into the node's memory
// system, subject to the outstanding-request windows of the prototype —
// eight in-flight requests against local memory, but only one against
// the RMC-mapped range, because the prototype's RMC is an HT I/O unit
// rather than a true memory controller (paper Section IV-B). That window
// of one is the single most important performance parameter of the
// evaluation; Ablation B in DESIGN.md sweeps it.
package cpu

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Access is one memory operation of a thread's instruction stream.
type Access struct {
	Addr  addr.Phys
	Write bool
}

// Stream supplies a thread's access sequence. Implementations must be
// deterministic for reproducible simulations.
type Stream interface {
	// Next returns the next access, or ok=false when the stream ends.
	Next() (Access, bool)
}

// SliceStream replays a fixed access slice.
type SliceStream struct {
	accs []Access
	i    int
}

// NewSliceStream wraps a slice as a Stream.
func NewSliceStream(accs []Access) *SliceStream { return &SliceStream{accs: accs} }

// Next implements Stream.
func (s *SliceStream) Next() (Access, bool) {
	if s.i >= len(s.accs) {
		return Access{}, false
	}
	a := s.accs[s.i]
	s.i++
	return a, true
}

// FuncStream adapts a generator function to a Stream.
type FuncStream func() (Access, bool)

// Next implements Stream.
func (f FuncStream) Next() (Access, bool) { return f() }

// MemorySystem is the node-side interface a thread issues into. The
// node implementation routes by BAR (local controller vs RMC), runs the
// cache hierarchy, and calls done at the access's completion time.
type MemorySystem interface {
	// Issue starts one access by the given core. express requests routing
	// over a dedicated express link where the fabric has one.
	Issue(now sim.Time, core int, a Access, express bool, done func(sim.Time))
	// IsRemote reports whether the address is claimed by the RMC.
	IsRemote(a addr.Phys) bool
}

// Thread drives a Stream through a MemorySystem, keeping at most the
// window's worth of requests in flight. The window is chosen per access:
// remote accesses respect the RMC window, local ones the local window.
type Thread struct {
	Name string

	eng    *sim.Engine
	msys   MemorySystem
	stream Stream
	core   int

	windowLocal  int
	windowRemote int
	express      bool

	inflight   int
	peeked     Access
	havePeeked bool
	started    bool

	// issueRecs is the free list of in-flight issue records: each holds
	// its issue time and a prebound completion callback, so the pump
	// loop issues without allocating a closure per access.
	issueRecs []*issueRec

	// Issued counts accesses completed; Latency aggregates per-access
	// round-trip times in picoseconds.
	Issued  uint64
	Latency stats.Histogram

	// Done and FinishTime record completion.
	Done       bool
	StartTime  sim.Time
	FinishTime sim.Time

	onDone func(*Thread, sim.Time)
}

// ThreadConfig configures a thread.
type ThreadConfig struct {
	Name         string
	Engine       *sim.Engine
	Memory       MemorySystem
	Stream       Stream
	Core         int
	WindowLocal  int
	WindowRemote int
	// Express routes this thread's remote traffic over an express link.
	Express bool
	// OnDone, if set, is called once when the stream drains.
	OnDone func(*Thread, sim.Time)
}

// NewThread validates the configuration and builds a thread.
func NewThread(c ThreadConfig) (*Thread, error) {
	if c.Engine == nil || c.Memory == nil || c.Stream == nil {
		return nil, fmt.Errorf("cpu: incomplete thread config")
	}
	if c.WindowLocal < 1 || c.WindowRemote < 1 {
		return nil, fmt.Errorf("cpu: windows must be >= 1 (local %d, remote %d)", c.WindowLocal, c.WindowRemote)
	}
	return &Thread{
		Name:         c.Name,
		eng:          c.Engine,
		msys:         c.Memory,
		stream:       c.Stream,
		core:         c.Core,
		windowLocal:  c.WindowLocal,
		windowRemote: c.WindowRemote,
		express:      c.Express,
		onDone:       c.OnDone,
	}, nil
}

// Start schedules the thread's first issue at the given time.
func (t *Thread) Start(at sim.Time) {
	if t.started {
		panic("cpu: thread started twice")
	}
	t.started = true
	t.StartTime = at
	t.eng.At(at, t.pump)
}

// peek returns the next access without consuming it.
func (t *Thread) peek() (Access, bool) {
	if !t.havePeeked {
		a, ok := t.stream.Next()
		if !ok {
			return Access{}, false
		}
		t.peeked = a
		t.havePeeked = true
	}
	return t.peeked, true
}

func (t *Thread) windowFor(a Access) int {
	if t.msys.IsRemote(a.Addr) {
		return t.windowRemote
	}
	return t.windowLocal
}

// issueRec tracks one in-flight access. The memory system calls doneFn
// exactly once, so the record recycles unconditionally on completion.
type issueRec struct {
	t       *Thread
	issueAt sim.Time
	doneFn  func(sim.Time)
}

func (t *Thread) getIssueRec() *issueRec {
	if l := len(t.issueRecs); l > 0 {
		rec := t.issueRecs[l-1]
		t.issueRecs = t.issueRecs[:l-1]
		return rec
	}
	rec := &issueRec{t: t}
	rec.doneFn = func(done sim.Time) {
		th := rec.t
		th.inflight--
		th.Issued++
		th.Latency.Observe(float64(done - rec.issueAt))
		th.issueRecs = append(th.issueRecs, rec)
		th.pump()
	}
	return rec
}

// pump issues as many accesses as the window allows.
func (t *Thread) pump() {
	for {
		a, ok := t.peek()
		if !ok {
			if t.inflight == 0 && !t.Done {
				t.finish()
			}
			return
		}
		if t.inflight >= t.windowFor(a) {
			return
		}
		t.havePeeked = false
		t.inflight++
		rec := t.getIssueRec()
		rec.issueAt = t.eng.Now()
		t.msys.Issue(rec.issueAt, t.core, a, t.express, rec.doneFn)
	}
}

func (t *Thread) finish() {
	t.Done = true
	t.FinishTime = t.eng.Now()
	if t.onDone != nil {
		t.onDone(t, t.FinishTime)
	}
}

// Elapsed returns the thread's runtime; it panics if not finished, which
// in an experiment means the simulation ended prematurely.
func (t *Thread) Elapsed() sim.Time {
	if !t.Done {
		panic(fmt.Sprintf("cpu: thread %q not finished", t.Name))
	}
	return t.FinishTime - t.StartTime
}
