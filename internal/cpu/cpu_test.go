package cpu

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/sim"
)

// fakeMem completes local accesses after localLat and remote after
// remoteLat, tracking the maximum concurrency it observed per class.
type fakeMem struct {
	eng                 *sim.Engine
	localLat, remoteLat sim.Time
	inLocal, inRemote   int
	maxLocal, maxRemote int
	issued              int
	lastExpress         bool
	perCoreIssues       map[int]int
}

func newFakeMem(eng *sim.Engine, l, r sim.Time) *fakeMem {
	return &fakeMem{eng: eng, localLat: l, remoteLat: r, perCoreIssues: map[int]int{}}
}

func (m *fakeMem) IsRemote(a addr.Phys) bool { return !a.IsLocal() }

func (m *fakeMem) Issue(now sim.Time, core int, a Access, express bool, done func(sim.Time)) {
	m.issued++
	m.perCoreIssues[core]++
	m.lastExpress = express
	if m.IsRemote(a.Addr) {
		m.inRemote++
		if m.inRemote > m.maxRemote {
			m.maxRemote = m.inRemote
		}
		m.eng.At(now+m.remoteLat, func() {
			m.inRemote--
			done(m.eng.Now())
		})
		return
	}
	m.inLocal++
	if m.inLocal > m.maxLocal {
		m.maxLocal = m.inLocal
	}
	m.eng.At(now+m.localLat, func() {
		m.inLocal--
		done(m.eng.Now())
	})
}

func remoteAccs(n int) []Access {
	accs := make([]Access, n)
	for i := range accs {
		accs[i] = Access{Addr: addr.Phys(uint64(i) * 64).WithNode(2)}
	}
	return accs
}

func localAccs(n int) []Access {
	accs := make([]Access, n)
	for i := range accs {
		accs[i] = Access{Addr: addr.Phys(uint64(i) * 64)}
	}
	return accs
}

func newThread(t *testing.T, c ThreadConfig) *Thread {
	t.Helper()
	th, err := NewThread(c)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	s := NewSliceStream(nil)
	if _, err := NewThread(ThreadConfig{Engine: eng, Memory: m, Stream: s, WindowLocal: 0, WindowRemote: 1}); err == nil {
		t.Error("zero local window accepted")
	}
	if _, err := NewThread(ThreadConfig{Engine: eng, Memory: m, Stream: s, WindowLocal: 1, WindowRemote: 0}); err == nil {
		t.Error("zero remote window accepted")
	}
	if _, err := NewThread(ThreadConfig{Memory: m, Stream: s, WindowLocal: 1, WindowRemote: 1}); err == nil {
		t.Error("nil engine accepted")
	}
}

func TestRemoteWindowOfOneSerializes(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Name: "t0", Engine: eng, Memory: m,
		Stream:      NewSliceStream(remoteAccs(10)),
		WindowLocal: 8, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if !th.Done {
		t.Fatal("thread did not finish")
	}
	if m.maxRemote != 1 {
		t.Errorf("remote concurrency = %d, want 1 (the RMC I/O-unit limit)", m.maxRemote)
	}
	// 10 sequential accesses of 100 each.
	if th.Elapsed() != 1000 {
		t.Errorf("elapsed = %d, want 1000", th.Elapsed())
	}
	if th.Issued != 10 {
		t.Errorf("Issued = %d", th.Issued)
	}
	if th.Latency.Mean() != 100 {
		t.Errorf("mean latency = %v, want 100", th.Latency.Mean())
	}
}

func TestLocalWindowPipelines(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 100, 1000)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m,
		Stream:      NewSliceStream(localAccs(16)),
		WindowLocal: 8, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if m.maxLocal != 8 {
		t.Errorf("local concurrency = %d, want 8", m.maxLocal)
	}
	// 16 accesses, 8 at a time, same latency: two waves of 100.
	if th.Elapsed() != 200 {
		t.Errorf("elapsed = %d, want 200", th.Elapsed())
	}
}

func TestWindowAblation(t *testing.T) {
	// Widening the remote window (the paper's future-work RMC-as-memory-
	// controller) must speed the same stream up proportionally.
	run := func(window int) sim.Time {
		eng := sim.New()
		m := newFakeMem(eng, 10, 100)
		th := newThread(t, ThreadConfig{
			Engine: eng, Memory: m,
			Stream:      NewSliceStream(remoteAccs(32)),
			WindowLocal: 8, WindowRemote: window,
		})
		th.Start(0)
		eng.Run()
		return th.Elapsed()
	}
	if t1, t8 := run(1), run(8); t8*8 != t1 {
		t.Errorf("window 8 time %d vs window 1 time %d: want exactly 8x", t8, t1)
	}
}

func TestMixedStreamRespectsPerClassWindows(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	var accs []Access
	accs = append(accs, localAccs(8)...)
	accs = append(accs, remoteAccs(4)...)
	accs = append(accs, localAccs(8)...)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m,
		Stream:      NewSliceStream(accs),
		WindowLocal: 8, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if m.maxRemote != 1 {
		t.Errorf("remote concurrency = %d, want 1", m.maxRemote)
	}
	if !th.Done || th.Issued != 20 {
		t.Errorf("issued %d of 20", th.Issued)
	}
}

func TestOnDoneAndStartOffset(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	var doneAt sim.Time
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m,
		Stream:      NewSliceStream(remoteAccs(2)),
		WindowLocal: 8, WindowRemote: 1,
		OnDone: func(_ *Thread, t sim.Time) { doneAt = t },
	})
	th.Start(50)
	eng.Run()
	if doneAt != 250 {
		t.Errorf("OnDone at %d, want 250", doneAt)
	}
	if th.Elapsed() != 200 {
		t.Errorf("Elapsed = %d, want 200 (excludes start offset)", th.Elapsed())
	}
}

func TestEmptyStream(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m,
		Stream:      NewSliceStream(nil),
		WindowLocal: 1, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if !th.Done || th.Elapsed() != 0 {
		t.Error("empty stream should finish immediately")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m, Stream: NewSliceStream(nil),
		WindowLocal: 1, WindowRemote: 1,
	})
	th.Start(0)
	defer func() {
		if recover() == nil {
			t.Error("double Start did not panic")
		}
	}()
	th.Start(1)
}

func TestElapsedBeforeFinishPanics(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m, Stream: NewSliceStream(remoteAccs(1)),
		WindowLocal: 1, WindowRemote: 1,
	})
	defer func() {
		if recover() == nil {
			t.Error("Elapsed before finish did not panic")
		}
	}()
	_ = th.Elapsed()
}

func TestFuncStream(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	n := 0
	stream := FuncStream(func() (Access, bool) {
		if n >= 3 {
			return Access{}, false
		}
		n++
		return Access{Addr: addr.Phys(uint64(n) * 64)}, true
	})
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m, Stream: stream,
		WindowLocal: 2, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if th.Issued != 3 {
		t.Errorf("Issued = %d, want 3", th.Issued)
	}
}

func TestExpressFlagPropagates(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m, Stream: NewSliceStream(remoteAccs(1)),
		WindowLocal: 1, WindowRemote: 1, Express: true,
	})
	th.Start(0)
	eng.Run()
	if !m.lastExpress {
		t.Error("express flag not passed to the memory system")
	}
}

func TestCoreBinding(t *testing.T) {
	eng := sim.New()
	m := newFakeMem(eng, 10, 100)
	th := newThread(t, ThreadConfig{
		Engine: eng, Memory: m, Stream: NewSliceStream(localAccs(4)),
		Core: 5, WindowLocal: 1, WindowRemote: 1,
	})
	th.Start(0)
	eng.Run()
	if m.perCoreIssues[5] != 4 {
		t.Errorf("core 5 issued %d, want 4", m.perCoreIssues[5])
	}
}
