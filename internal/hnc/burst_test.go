package hnc

import (
	"bytes"
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
)

// burstWriteFrame builds one sealed multi-line burst data frame (16
// lines = 1 KiB payload) from node 2 to node 3, through the bridge.
func burstWriteFrame(t *testing.T, payload []byte) Sealed {
	t.Helper()
	b, err := NewBridge(2)
	if err != nil {
		t.Fatal(err)
	}
	f, err := b.Outbound(ht.Packet{
		Cmd:    ht.CmdBulkWr,
		SrcTag: ht.BurstTag(3, 7),
		Addr:   addr.Phys(0x4000).WithNode(3),
		Count:  len(payload),
		Data:   payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Seal(f)
}

// TestBurstFrameCRC seals a multi-line data frame and proves the
// checksum covers the whole payload: flipping any byte — first line,
// a middle line, the last byte — is caught at Open, and the intact
// frame round-trips with its burst tag and bytes unchanged.
func TestBurstFrameCRC(t *testing.T) {
	payload := make([]byte, 16*64)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	s := burstWriteFrame(t, payload)

	got, err := s.Open()
	if err != nil {
		t.Fatalf("intact burst frame rejected: %v", err)
	}
	if !bytes.Equal(got.Payload.Data, payload) {
		t.Fatal("payload changed in flight")
	}
	if idx, total := ht.BurstIndex(got.Payload.SrcTag); idx != 3 || total != 7 {
		t.Fatalf("burst tag decoded as %d/%d", idx, total)
	}

	for _, off := range []int{0, 7*64 + 13, len(payload) - 1} {
		corrupted := burstWriteFrame(t, payload)
		corrupted.Frame.Payload.Data = bytes.Clone(payload)
		corrupted.Frame.Payload.Data[off] ^= 0x80
		if _, err := corrupted.Open(); err == nil {
			t.Errorf("flipped payload byte %d not caught by the seal", off)
		}
	}

	// The header is covered too: a misrouted burst frame fails its seal.
	misrouted := burstWriteFrame(t, payload)
	misrouted.Frame.Dst = 9
	if _, err := misrouted.Open(); err == nil {
		t.Error("rerouted burst frame passed its seal")
	}
}

// TestBurstFrameAmortization pins the framing arithmetic the data plane
// is built on: a 16-line data frame pays one HNC header and one command
// header for 1 KiB, where 16 single-line writes pay sixteen of each.
func TestBurstFrameAmortization(t *testing.T) {
	burst := burstWriteFrame(t, make([]byte, 16*64)).Frame.WireBytes()

	b, err := NewBridge(2)
	if err != nil {
		t.Fatal(err)
	}
	scalar := 0
	for i := 0; i < 16; i++ {
		f, err := b.Outbound(ht.Packet{
			Cmd:   ht.CmdWrSized,
			Addr:  addr.Phys(uint64(0x4000 + i*64)).WithNode(3),
			Count: 64,
			Data:  make([]byte, 64),
		})
		if err != nil {
			t.Fatal(err)
		}
		scalar += f.WireBytes()
	}
	if want := 16*64 + HeaderBytes + 8; burst != want {
		t.Errorf("burst frame = %d wire bytes, want %d (one header pair)", burst, want)
	}
	if saved := scalar - burst; saved != 15*(HeaderBytes+8) {
		t.Errorf("burst saves %d bytes over 16 scalar frames, want %d", saved, 15*(HeaderBytes+8))
	}
}
