package hnc

import (
	"fmt"
	"hash/crc32"

	"repro/internal/addr"
	"repro/internal/ht"
)

// The paper lists "concerns related to communication reliability and
// security" among the components a full deployment needs but does not
// describe. This file supplies the transport-integrity half: a CRC over
// each frame's routing header and payload, and per-peer sequence
// tracking that detects dropped or reordered frames. The RMC protocol
// itself stays simple — integrity failures surface as counted, checkable
// events rather than silent corruption.

// Checksum computes the frame's integrity word over the routing header
// and the encapsulated packet's metadata and data.
func (f Frame) Checksum() uint32 {
	h := crc32.NewIEEE()
	var hdr [32]byte
	put := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			hdr[off+i] = byte(v >> (8 * i))
		}
	}
	put(0, uint64(f.Src)|uint64(f.Dst)<<16|uint64(f.Payload.Cmd)<<32|uint64(f.Payload.SrcUnit)<<40|uint64(f.Payload.SrcTag)<<48)
	put(8, f.Seq)
	put(16, uint64(f.Payload.Addr))
	put(24, uint64(f.Payload.Count))
	h.Write(hdr[:])
	h.Write(f.Payload.Data)
	return h.Sum32()
}

// Sealed is a frame carrying its checksum, as it travels on an
// unreliable fabric.
type Sealed struct {
	Frame Frame
	CRC   uint32
}

// Seal attaches the checksum.
func Seal(f Frame) Sealed { return Sealed{Frame: f, CRC: f.Checksum()} }

// Open verifies the checksum and returns the frame.
func (s Sealed) Open() (Frame, error) {
	if got := s.Frame.Checksum(); got != s.CRC {
		return Frame{}, fmt.Errorf("hnc: checksum mismatch on %v: %#x != %#x", s.Frame, got, s.CRC)
	}
	return s.Frame, nil
}

// Verifier tracks per-peer frame sequences at a receiving RMC and counts
// integrity events. It tolerates the benign case (first frame from a
// peer) and flags gaps (dropped frames) and regressions (reordering or
// replay).
type Verifier struct {
	self addr.NodeID
	last map[addr.NodeID]uint64

	// Received, Gaps, Regressions, and Corrupt count events.
	Received, Gaps, Regressions, Corrupt uint64
}

// NewVerifier builds a verifier for one node.
func NewVerifier(self addr.NodeID) *Verifier {
	return &Verifier{self: self, last: make(map[addr.NodeID]uint64)}
}

// Accept verifies a sealed frame end to end: checksum, destination, and
// per-source sequencing. It returns the frame when clean; integrity
// failures return errors and bump the counters.
func (v *Verifier) Accept(s Sealed) (Frame, error) {
	f, err := s.Open()
	if err != nil {
		v.Corrupt++
		return Frame{}, err
	}
	if f.Dst != v.self {
		return Frame{}, fmt.Errorf("hnc: frame for node %d accepted at node %d", f.Dst, v.self)
	}
	v.Received++
	last, seen := v.last[f.Src]
	switch {
	case !seen:
		// First contact with this peer.
	case f.Seq == last+1:
		// In order.
	case f.Seq > last+1:
		v.Gaps += f.Seq - last - 1
	default:
		v.Regressions++
		return Frame{}, fmt.Errorf("hnc: frame %d from node %d after %d (reorder or replay)", f.Seq, f.Src, last)
	}
	if f.Seq > last {
		v.last[f.Src] = f.Seq
	}
	return f, nil
}

// AcceptLoose is the serving-path variant of Accept: checksum and
// destination failures still error, but sequence anomalies (gaps,
// regressions) are only counted — the frame is returned and served. A
// live RMC cannot refuse work because an earlier frame was dropped; the
// anomaly surfaces through the metrics layer instead.
func (v *Verifier) AcceptLoose(s Sealed) (Frame, error) {
	f, err := s.Open()
	if err != nil {
		v.Corrupt++
		return Frame{}, err
	}
	if f.Dst != v.self {
		return Frame{}, fmt.Errorf("hnc: frame for node %d accepted at node %d", f.Dst, v.self)
	}
	v.Received++
	last, seen := v.last[f.Src]
	switch {
	case !seen, f.Seq == last+1:
		// First contact or in order.
	case f.Seq > last+1:
		v.Gaps += f.Seq - last - 1
	default:
		v.Regressions++
	}
	if f.Seq > last {
		v.last[f.Src] = f.Seq
	}
	return f, nil
}

// Clean reports whether no integrity events have been observed.
func (v *Verifier) Clean() bool { return v.Gaps == 0 && v.Regressions == 0 && v.Corrupt == 0 }

// ReassembledPayload is a convenience for tests: verify and decapsulate
// in one step through a bridge.
func (v *Verifier) ReassembledPayload(b *Bridge, s Sealed) (ht.Packet, error) {
	f, err := v.Accept(s)
	if err != nil {
		return ht.Packet{}, err
	}
	return b.Inbound(f)
}
