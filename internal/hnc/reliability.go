package hnc

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/addr"
	"repro/internal/ht"
)

// The paper lists "concerns related to communication reliability and
// security" among the components a full deployment needs but does not
// describe. This file supplies the transport-integrity half: a CRC over
// each frame's routing header and payload, and per-peer sequence
// tracking that detects dropped or reordered frames. The RMC protocol
// itself stays simple — integrity failures surface as counted, checkable
// events rather than silent corruption.

// Checksum computes the frame's integrity word over the routing header
// and the encapsulated packet's metadata and data. It is allocation-free
// (the header image lives on the stack and the CRC runs incrementally),
// so sealing and verifying pooled frames stays off the GC entirely.
func (f Frame) Checksum() uint32 {
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(f.Src)|uint64(f.Dst)<<16|uint64(f.Payload.Cmd)<<32|uint64(f.Payload.SrcUnit)<<40|uint64(f.Payload.SrcTag)<<48)
	binary.LittleEndian.PutUint64(hdr[8:], f.Seq)
	binary.LittleEndian.PutUint64(hdr[16:], uint64(f.Payload.Addr))
	// The Posted flag shares the Count word: an in-flight flip would
	// silently change completion semantics, so it must be covered too.
	cw := uint64(f.Payload.Count)
	if f.Payload.Posted {
		cw |= 1 << 63
	}
	binary.LittleEndian.PutUint64(hdr[24:], cw)
	crc := crcUpdate(0, hdr[:])
	return crcUpdate(crc, f.Payload.Data)
}

// crcUpdate is crc32.Update(crc, crc32.IEEETable, p), inlined because
// the stdlib's internal update leaks its slice parameter to the heap —
// which would force the stack header image in Checksum to allocate on
// every seal and verify. Byte-for-byte the same polynomial and value.
func crcUpdate(crc uint32, p []byte) uint32 {
	crc = ^crc
	for _, b := range p {
		crc = crc32.IEEETable[byte(crc)^b] ^ (crc >> 8)
	}
	return ^crc
}

// Sealed is a frame carrying its checksum, as it travels on an
// unreliable fabric.
type Sealed struct {
	Frame Frame
	CRC   uint32
}

// Seal attaches the checksum.
func Seal(f Frame) Sealed { return Sealed{Frame: f, CRC: f.Checksum()} }

// Open verifies the checksum and returns the frame.
func (s Sealed) Open() (Frame, error) {
	if got := s.Frame.Checksum(); got != s.CRC {
		return Frame{}, fmt.Errorf("hnc: checksum mismatch on %v: %#x != %#x", s.Frame, got, s.CRC)
	}
	return s.Frame, nil
}

// Verifier tracks per-peer frame sequences at a receiving RMC and counts
// integrity events: gaps (dropped frames) and regressions (reordering or
// replay). Bridges emit dense sequences starting at 1, so an untouched
// peer window sits at 0 and a first frame above 1 counts the frames
// dropped ahead of it.
type Verifier struct {
	self addr.NodeID
	last map[addr.NodeID]uint64

	// Received, Gaps, Regressions, and Corrupt count events.
	Received, Gaps, Regressions, Corrupt uint64
}

// NewVerifier builds a verifier for one node.
func NewVerifier(self addr.NodeID) *Verifier {
	return &Verifier{self: self, last: make(map[addr.NodeID]uint64)}
}

// open runs the checks shared by both acceptance paths: checksum and
// destination. Failures there are hard errors on every path.
func (v *Verifier) open(s Sealed) (Frame, error) {
	f, err := s.Open()
	if err != nil {
		v.Corrupt++
		return Frame{}, err
	}
	if f.Dst != v.self {
		return Frame{}, fmt.Errorf("hnc: frame for node %d accepted at node %d", f.Dst, v.self)
	}
	return f, nil
}

// note applies the sequencing rules, shared by both paths so their
// windows can never diverge. In-order and gap arrivals advance the peer
// window and count as received; a regression never touches the window
// (a replayed max-seq frame must not poison it). The paths differ only
// in what a regression yields: strict refuses the frame (not received),
// loose serves it (received, counted).
func (v *Verifier) note(src addr.NodeID, seq uint64, strict bool) error {
	last := v.last[src]
	switch {
	case seq == last+1:
		// In order.
	case seq > last+1:
		v.Gaps += seq - last - 1
	default:
		v.Regressions++
		if strict {
			return fmt.Errorf("hnc: frame %d from node %d after %d (reorder or replay)", seq, src, last)
		}
		v.Received++
		return nil
	}
	v.Received++
	v.last[src] = seq
	return nil
}

// Accept verifies a sealed frame end to end: checksum, destination, and
// per-source sequencing. It returns the frame when clean; integrity
// failures return errors and bump the counters. Refused frames leave
// the peer window untouched, so one replay cannot wedge a stream.
func (v *Verifier) Accept(s Sealed) (Frame, error) {
	f, err := v.open(s)
	if err != nil {
		return Frame{}, err
	}
	if err := v.note(f.Src, f.Seq, true); err != nil {
		return Frame{}, err
	}
	return f, nil
}

// AcceptLoose is the serving-path variant of Accept: checksum and
// destination failures still error, but sequence anomalies (gaps,
// regressions) are only counted — the frame is returned and served. A
// live RMC cannot refuse work because an earlier frame was dropped; the
// anomaly surfaces through the metrics layer instead.
func (v *Verifier) AcceptLoose(s Sealed) (Frame, error) {
	f, err := v.open(s)
	if err != nil {
		return Frame{}, err
	}
	v.note(f.Src, f.Seq, false)
	return f, nil
}

// Clean reports whether no integrity events have been observed.
func (v *Verifier) Clean() bool { return v.Gaps == 0 && v.Regressions == 0 && v.Corrupt == 0 }

// ReassembledPayload is a convenience for tests: verify and decapsulate
// in one step through a bridge.
func (v *Verifier) ReassembledPayload(b *Bridge, s Sealed) (ht.Packet, error) {
	f, err := v.Accept(s)
	if err != nil {
		return ht.Packet{}, err
	}
	return b.Inbound(f)
}
