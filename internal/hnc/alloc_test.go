package hnc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
)

// One pooled frame round-trip — build, seal, verify, decapsulate — must
// not allocate: frames are values, the CRC runs over a stack buffer, and
// the verifier only mutates existing per-peer window entries. This is
// the regression tripwire for the RMC fast path's per-frame cost.
func TestSealVerifyRoundTripAllocs(t *testing.T) {
	b, err := NewBridge(1)
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(3)
	payload := make([]byte, 64)
	pkt := ht.Packet{Cmd: ht.CmdWrSized, SrcTag: 1, Addr: addr.Phys(0x1000).WithNode(3), Count: 64, Data: payload}
	// Warm the per-peer sequence windows so the map entries exist.
	for i := 0; i < 8; i++ {
		f, err := b.Outbound(pkt)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := v.AcceptLoose(Seal(f)); err != nil {
			t.Fatal(err)
		}
	}
	if avg := testing.AllocsPerRun(1000, func() {
		f, err := b.Outbound(pkt)
		if err != nil {
			t.Fatal(err)
		}
		s := Seal(f)
		if _, err := v.AcceptLoose(s); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("seal/verify round trip allocates %.2f/op, want 0", avg)
	}
}
