// Package hnc models the High Node Count HyperTransport extension
// (HNC-HT specification 1.0) as used by the prototype for inter-node
// traffic: plain HyperTransport cannot address more than 32 devices, so
// RMCs encapsulate HT packets in HNC frames carrying 14-bit source and
// destination node identifiers and bridge between the two standards
// (specification Section 7.2 analogue).
package hnc

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/ht"
)

// Frame is an HNC-HT frame: an encapsulated HT packet plus the extended
// addressing header that lets it traverse the cluster fabric.
type Frame struct {
	// Src and Dst are cluster node identifiers (1-based; 0 is invalid on
	// the wire, matching the "no node 0" rule).
	Src, Dst addr.NodeID
	// Seq disambiguates frames from the same source (diagnostics only).
	Seq uint64
	// Payload is the encapsulated HT packet.
	Payload ht.Packet
}

// HeaderBytes is the HNC encapsulation overhead per frame.
const HeaderBytes = 8

// WireBytes is the frame's size on a fabric link.
func (f Frame) WireBytes() int { return HeaderBytes + f.Payload.FlitBytes() }

// Validate reports the first protocol violation in the frame.
func (f Frame) Validate() error {
	switch {
	case f.Src == 0 || f.Src > addr.MaxNode:
		return fmt.Errorf("hnc: invalid source node %d", f.Src)
	case f.Dst == 0 || f.Dst > addr.MaxNode:
		return fmt.Errorf("hnc: invalid destination node %d", f.Dst)
	}
	return f.Payload.Validate()
}

func (f Frame) String() string {
	return fmt.Sprintf("hnc{%d->%d seq=%d %v}", f.Src, f.Dst, f.Seq, f.Payload)
}

// Bridge performs the HT ↔ HNC translation an RMC implements. It is
// stateless apart from per-destination frame sequence counters; the
// absence of translation tables is the point of the paper's address
// scheme. Sequences are per destination so a receiving Verifier sees a
// dense stream from each peer regardless of how the sender interleaves
// traffic to other nodes.
type Bridge struct {
	self addr.NodeID
	seq  map[addr.NodeID]uint64
}

// NewBridge returns a bridge for the given node.
func NewBridge(self addr.NodeID) (*Bridge, error) {
	if self == 0 || self > addr.MaxNode {
		return nil, fmt.Errorf("hnc: invalid node id %d", self)
	}
	return &Bridge{self: self, seq: make(map[addr.NodeID]uint64)}, nil
}

// Self returns the bridge's node identifier.
func (b *Bridge) Self() addr.NodeID { return b.self }

// Outbound encapsulates a local HT request whose address carries a remote
// node prefix. The destination is read straight from the 14 prefix bits;
// the encapsulated address keeps its prefix so the remote side can
// validate it, mirroring the prototype (the *server* clears the bits).
func (b *Bridge) Outbound(p ht.Packet) (Frame, error) {
	if !p.Cmd.IsRequest() {
		return Frame{}, fmt.Errorf("hnc: outbound of non-request %v", p.Cmd)
	}
	if err := p.Validate(); err != nil {
		return Frame{}, err
	}
	dst := p.Addr.Node()
	if dst == 0 {
		return Frame{}, fmt.Errorf("hnc: address %v is local, nothing to bridge", p.Addr)
	}
	// Loopback frames (dst == self) are legal on the wire but never
	// produced in practice (reservation never hands a node its own
	// memory). The bridge still handles them for completeness.
	return Frame{Src: b.self, Dst: dst, Seq: b.nextSeq(dst), Payload: p}, nil
}

// Inbound decapsulates a frame arriving from the fabric and returns the
// HT packet to replay into the local system. For requests it zeroes the
// 14 prefix bits (paper: "the RMC sets to zero those 14 bits and forwards
// the operation to its local system"); responses pass through unchanged.
func (b *Bridge) Inbound(f Frame) (ht.Packet, error) {
	if err := f.Validate(); err != nil {
		return ht.Packet{}, err
	}
	if f.Dst != b.self {
		return ht.Packet{}, fmt.Errorf("hnc: frame for node %d delivered to node %d", f.Dst, b.self)
	}
	p := f.Payload
	if p.Cmd.IsRequest() {
		if p.Addr.Node() != b.self {
			return ht.Packet{}, fmt.Errorf("hnc: request %v addressed to node %d arrived at node %d", p, p.Addr.Node(), b.self)
		}
		p.Addr = p.Addr.Local()
	}
	return p, nil
}

// Reply encapsulates a response for the requester node.
func (b *Bridge) Reply(to addr.NodeID, p ht.Packet) (Frame, error) {
	if !p.Cmd.IsResponse() {
		return Frame{}, fmt.Errorf("hnc: reply with non-response %v", p.Cmd)
	}
	f := Frame{Src: b.self, Dst: to, Seq: b.nextSeq(to), Payload: p}
	if err := f.Validate(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

func (b *Bridge) nextSeq(dst addr.NodeID) uint64 {
	b.seq[dst]++
	return b.seq[dst]
}
