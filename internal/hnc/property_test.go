package hnc

import "testing"

// This file property-tests the Verifier's accounting against arbitrary
// drop/reorder/duplicate interleavings of a dense sender stream. The
// invariants it pins down:
//
//   - loose: every delivered frame is Received; the peer window tracks
//     the maximum sequence seen; Gaps + Received - Regressions equals
//     that maximum, so the three counters exactly account for every
//     frame the sender emitted up to the highest one that arrived.
//   - strict: Received + Gaps equals the window (only accepted frames
//     advance it); refused regressions leave the window untouched.
//   - Clean() holds exactly when the delivered stream is the identity
//     interleaving — the dense in-order prefix 1..k with nothing lost,
//     duplicated, or reordered.
//
// The interleavings come from a tiny seeded generator rather than
// testing/quick so failures replay exactly.

// xorshift is a minimal deterministic stream for building interleavings.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// interleave mangles the dense stream 1..n with seeded drops,
// duplicates, and adjacent swaps, returning the delivery order.
func interleave(seed uint64, n int) []uint64 {
	rng := xorshift(seed | 1)
	var out []uint64
	for seq := uint64(1); seq <= uint64(n); seq++ {
		switch rng.intn(5) {
		case 0: // dropped
		case 1: // duplicated
			out = append(out, seq, seq)
		default:
			out = append(out, seq)
		}
	}
	// A few adjacent swaps (reordering).
	for i := 0; i+1 < len(out); i += 2 {
		if rng.intn(3) == 0 {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

func deliver(t *testing.T, v *Verifier, accept func(Sealed) (Frame, error), seqs []uint64) (accepted int) {
	t.Helper()
	for _, seq := range seqs {
		if _, err := accept(sealedFrom(t, 1, 3, seq)); err == nil {
			accepted++
		}
	}
	return accepted
}

func maxSeq(seqs []uint64) uint64 {
	var m uint64
	for _, s := range seqs {
		if s > m {
			m = s
		}
	}
	return m
}

func TestLooseAccountingProperty(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		seqs := interleave(seed, 60)
		v := NewVerifier(3)
		accepted := deliver(t, v, v.AcceptLoose, seqs)

		// The serving path refuses nothing with a valid checksum.
		if accepted != len(seqs) {
			t.Fatalf("seed %d: loose path refused %d frames", seed, len(seqs)-accepted)
		}
		if v.Received != uint64(len(seqs)) {
			t.Fatalf("seed %d: Received = %d, want %d", seed, v.Received, len(seqs))
		}
		// Window-advancing arrivals (Received - Regressions) plus the
		// holes they skipped (Gaps) tile [1, max] exactly once.
		if got, want := v.Gaps+v.Received-v.Regressions, maxSeq(seqs); got != want {
			t.Fatalf("seed %d: Gaps+Received-Regressions = %d, want max seq %d (gaps=%d recv=%d regr=%d)",
				seed, got, want, v.Gaps, v.Received, v.Regressions)
		}
	}
}

func TestStrictAccountingProperty(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		seqs := interleave(seed, 60)
		v := NewVerifier(3)
		accepted := deliver(t, v, v.Accept, seqs)

		// Only accepted frames count as received; refusals are exactly
		// the regressions.
		if v.Received != uint64(accepted) {
			t.Fatalf("seed %d: Received = %d, accepted %d", seed, v.Received, accepted)
		}
		if v.Regressions != uint64(len(seqs)-accepted) {
			t.Fatalf("seed %d: Regressions = %d, refused %d", seed, v.Regressions, len(seqs)-accepted)
		}
		// Accepted frames advance the window monotonically; with the
		// gaps they skipped, they tile [1, max] exactly once.
		if got, want := v.Received+v.Gaps, maxSeq(seqs); got != want {
			t.Fatalf("seed %d: Received+Gaps = %d, want max seq %d", seed, got, want)
		}
	}
}

// TestStrictLooseWindowsAgree runs the same interleaving through both
// paths: the shared note() rules mean their gap and regression counts
// can never diverge.
func TestStrictLooseWindowsAgree(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		seqs := interleave(seed, 60)
		strict, loose := NewVerifier(3), NewVerifier(3)
		deliver(t, strict, strict.Accept, seqs)
		deliver(t, loose, loose.AcceptLoose, seqs)
		if strict.Gaps != loose.Gaps || strict.Regressions != loose.Regressions {
			t.Fatalf("seed %d: paths diverged: strict gaps=%d regr=%d, loose gaps=%d regr=%d",
				seed, strict.Gaps, strict.Regressions, loose.Gaps, loose.Regressions)
		}
	}
}

// TestCleanIffIdentity: Clean() holds exactly when the delivered stream
// is the in-order dense prefix 1..k.
func TestCleanIffIdentity(t *testing.T) {
	isIdentity := func(seqs []uint64) bool {
		for i, s := range seqs {
			if s != uint64(i+1) {
				return false
			}
		}
		return true
	}
	clean := 0
	for seed := uint64(1); seed <= 400; seed++ {
		seqs := interleave(seed, 4)
		v := NewVerifier(3)
		deliver(t, v, v.AcceptLoose, seqs)
		if v.Clean() != isIdentity(seqs) {
			t.Fatalf("seed %d: Clean()=%v but identity=%v (stream %v)",
				seed, v.Clean(), isIdentity(seqs), seqs)
		}
		if v.Clean() {
			clean++
		}
	}
	// The generator must have exercised both sides of the biconditional.
	if clean == 0 {
		t.Error("no seed produced an identity interleaving; property vacuous on one side")
	}

	// And explicitly: every prefix of the identity stream is clean.
	v := NewVerifier(3)
	for seq := uint64(1); seq <= 32; seq++ {
		if _, err := v.Accept(sealedFrom(t, 1, 3, seq)); err != nil {
			t.Fatal(err)
		}
		if !v.Clean() {
			t.Fatalf("identity prefix of length %d not clean", seq)
		}
	}
}

// TestStrictReplayDoesNotPoisonWindow pins the regression fixed in this
// change: a replayed maximum-sequence frame is refused WITHOUT touching
// the peer window, so the live stream continues to accept.
func TestStrictReplayDoesNotPoisonWindow(t *testing.T) {
	v := NewVerifier(3)
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := v.Accept(sealedFrom(t, 1, 3, seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Replay the window maximum: refused, counted, window untouched.
	if _, err := v.Accept(sealedFrom(t, 1, 3, 5)); err == nil {
		t.Fatal("replayed max-seq frame accepted")
	}
	if v.Received != 5 {
		t.Errorf("refused replay counted as received: Received = %d", v.Received)
	}
	// The next in-order frame must still be in order — no false gap.
	if _, err := v.Accept(sealedFrom(t, 1, 3, 6)); err != nil {
		t.Fatalf("stream wedged after replay: %v", err)
	}
	if v.Gaps != 0 {
		t.Errorf("replay poisoned the window: Gaps = %d", v.Gaps)
	}
	if v.Regressions != 1 {
		t.Errorf("Regressions = %d, want 1", v.Regressions)
	}
}

// TestHeadDropCounted: a stream whose first frames were lost starts
// above 1; the missing head is a gap (bridges emit dense streams from
// sequence 1, so an unseen peer window sits at 0).
func TestHeadDropCounted(t *testing.T) {
	v := NewVerifier(3)
	if _, err := v.Accept(sealedFrom(t, 1, 3, 4)); err != nil {
		t.Fatal(err)
	}
	if v.Gaps != 3 {
		t.Errorf("head drop: Gaps = %d, want 3", v.Gaps)
	}
}

// TestPeerStreamsIndependent: counters aggregate but windows are per
// peer; an anomaly on one stream never leaks into another.
func TestPeerStreamsIndependent(t *testing.T) {
	v := NewVerifier(3)
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := v.Accept(sealedFrom(t, 1, 3, seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Peer 2 starts its own dense stream at 1.
	if _, err := v.Accept(sealedFrom(t, 2, 3, 1)); err != nil {
		t.Fatalf("fresh peer refused: %v", err)
	}
	if v.Gaps != 0 || v.Regressions != 0 {
		t.Errorf("peer 1's window leaked into peer 2: gaps=%d regr=%d", v.Gaps, v.Regressions)
	}
}
