package hnc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
)

func sealedFrom(t *testing.T, src, dst addr.NodeID, seq uint64) Sealed {
	t.Helper()
	f := Frame{Src: src, Dst: dst, Seq: seq,
		Payload: ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x40).WithNode(dst), Count: 64}}
	return Seal(f)
}

// TestAcceptLoose checks the serving-path contract: sequence anomalies
// are counted but the frame is still returned, while corruption and
// misdelivery remain hard errors.
func TestAcceptLoose(t *testing.T) {
	v := NewVerifier(3)

	if _, err := v.AcceptLoose(sealedFrom(t, 1, 3, 1)); err != nil {
		t.Fatal(err)
	}
	// A gap of two dropped frames: served anyway, counted.
	if _, err := v.AcceptLoose(sealedFrom(t, 1, 3, 4)); err != nil {
		t.Errorf("gap refused on the serving path: %v", err)
	}
	if v.Gaps != 2 {
		t.Errorf("Gaps = %d, want 2", v.Gaps)
	}
	// A regression (replay): served anyway, counted.
	if _, err := v.AcceptLoose(sealedFrom(t, 1, 3, 2)); err != nil {
		t.Errorf("regression refused on the serving path: %v", err)
	}
	if v.Regressions != 1 {
		t.Errorf("Regressions = %d, want 1", v.Regressions)
	}
	if v.Received != 3 {
		t.Errorf("Received = %d, want 3", v.Received)
	}

	// Corruption still errors.
	s := sealedFrom(t, 1, 3, 5)
	s.CRC ^= 1
	if _, err := v.AcceptLoose(s); err == nil {
		t.Error("corrupt frame accepted")
	}
	if v.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1", v.Corrupt)
	}
	// Misdelivery still errors.
	if _, err := v.AcceptLoose(sealedFrom(t, 1, 4, 1)); err == nil {
		t.Error("misdelivered frame accepted")
	}
}

// TestBridgePerDestinationSeq checks each destination sees a dense
// sequence stream regardless of interleaving — the property the
// verifier's gap counter relies on.
func TestBridgePerDestinationSeq(t *testing.T) {
	b, err := NewBridge(1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(dst addr.NodeID) Frame {
		f, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x40).WithNode(dst), Count: 64})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	f1, f2, f3, f4 := mk(2), mk(3), mk(2), mk(3)
	if f1.Seq != 1 || f3.Seq != 2 {
		t.Errorf("node 2 stream = %d,%d, want 1,2", f1.Seq, f3.Seq)
	}
	if f2.Seq != 1 || f4.Seq != 2 {
		t.Errorf("node 3 stream = %d,%d, want 1,2", f2.Seq, f4.Seq)
	}
}
