package hnc

import (
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/ht"
)

func mkFrame(t *testing.T, src addr.NodeID, seq uint64, data byte) Frame {
	t.Helper()
	payload := make([]byte, 64)
	payload[0] = data
	return Frame{
		Src: src, Dst: 3, Seq: seq,
		Payload: ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(0x1000).WithNode(3), Count: 64, Data: payload},
	}
}

func TestSealOpenRoundTrip(t *testing.T) {
	f := mkFrame(t, 1, 7, 0xAA)
	s := Seal(f)
	got, err := s.Open()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Payload.Data[0] != 0xAA {
		t.Error("frame changed through seal/open")
	}
}

func TestCorruptionDetected(t *testing.T) {
	f := mkFrame(t, 1, 7, 0xAA)
	s := Seal(f)

	// Flip a payload bit.
	s.Frame.Payload.Data[5] ^= 0x40
	if _, err := s.Open(); err == nil {
		t.Error("payload corruption undetected")
	}
	s.Frame.Payload.Data[5] ^= 0x40

	// Tamper with the routing header.
	s.Frame.Dst = 4
	if _, err := s.Open(); err == nil {
		t.Error("header tampering undetected")
	}
	s.Frame.Dst = 3

	// Tamper with the address (the field that would misroute memory).
	s.Frame.Payload.Addr++
	if _, err := s.Open(); err == nil {
		t.Error("address tampering undetected")
	}
}

func TestChecksumSensitivityProperty(t *testing.T) {
	// Any single byte flip in the payload changes the checksum.
	f := func(seed []byte, pos uint8, bit uint8) bool {
		data := make([]byte, 64)
		copy(data, seed)
		fr := Frame{Src: 2, Dst: 3, Seq: 9,
			Payload: ht.Packet{Cmd: ht.CmdWrSized, Addr: addr.Phys(64).WithNode(3), Count: 64, Data: data}}
		before := fr.Checksum()
		fr.Payload.Data[int(pos)%64] ^= 1 << (bit % 8)
		return fr.Checksum() != before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVerifierSequencing(t *testing.T) {
	v := NewVerifier(3)
	// In-order stream from node 1.
	for seq := uint64(1); seq <= 3; seq++ {
		if _, err := v.Accept(Seal(mkFrame(t, 1, seq, 0))); err != nil {
			t.Fatal(err)
		}
	}
	if !v.Clean() || v.Received != 3 {
		t.Errorf("clean stream flagged: gaps=%d received=%d", v.Gaps, v.Received)
	}

	// A gap (dropped frames 4 and 5).
	if _, err := v.Accept(Seal(mkFrame(t, 1, 6, 0))); err != nil {
		t.Fatal(err)
	}
	if v.Gaps != 2 {
		t.Errorf("Gaps = %d, want 2", v.Gaps)
	}

	// A regression (replay of frame 2).
	if _, err := v.Accept(Seal(mkFrame(t, 1, 2, 0))); err == nil {
		t.Error("replayed frame accepted")
	}
	if v.Regressions != 1 {
		t.Errorf("Regressions = %d", v.Regressions)
	}

	// Streams from different peers are independent.
	if _, err := v.Accept(Seal(mkFrame(t, 2, 1, 0))); err != nil {
		t.Errorf("fresh peer rejected: %v", err)
	}
	if v.Clean() {
		t.Error("Clean() after gaps and regressions")
	}
}

func TestVerifierCorruptCounting(t *testing.T) {
	v := NewVerifier(3)
	s := Seal(mkFrame(t, 1, 1, 0))
	s.Frame.Payload.Data[0] ^= 1
	if _, err := v.Accept(s); err == nil {
		t.Error("corrupt frame accepted")
	}
	if v.Corrupt != 1 || v.Received != 0 {
		t.Errorf("Corrupt=%d Received=%d", v.Corrupt, v.Received)
	}
}

func TestVerifierMisdelivery(t *testing.T) {
	v := NewVerifier(5)
	if _, err := v.Accept(Seal(mkFrame(t, 1, 1, 0))); err == nil {
		t.Error("misdelivered frame accepted")
	}
}

func TestVerifierWithBridge(t *testing.T) {
	v := NewVerifier(3)
	b, err := NewBridge(3)
	if err != nil {
		t.Fatal(err)
	}
	pkt, err := v.ReassembledPayload(b, Seal(mkFrame(t, 1, 1, 0x11)))
	if err != nil {
		t.Fatal(err)
	}
	if pkt.Addr != 0x1000 {
		t.Errorf("prefix not cleared: %v", pkt.Addr)
	}
	bad := Seal(mkFrame(t, 1, 2, 0))
	bad.CRC++
	if _, err := v.ReassembledPayload(b, bad); err == nil {
		t.Error("corrupt frame decapsulated")
	}
}
