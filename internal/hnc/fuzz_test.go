package hnc

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/ht"
)

// FuzzFrameIntegrity drives the transport-integrity contract the fault
// injector leans on: a sealed frame with ANY single bit flipped in a
// checksum-covered field — routing header, sequence, payload metadata,
// the Posted flag, the data, or the CRC itself — must be refused by
// Open/Accept, and the verifier must count it as corrupt rather than
// advance the peer window.
func FuzzFrameIntegrity(f *testing.F) {
	f.Add([]byte("seed payload"), uint64(1), uint16(3), uint8(0), uint8(0), false)
	f.Add([]byte{}, uint64(9), uint16(0xfff), uint8(6), uint8(31), true)
	f.Add([]byte{0xff, 0x00, 0xaa}, uint64(1<<40), uint16(7), uint8(3), uint8(63), false)

	f.Fuzz(func(t *testing.T, data []byte, seq uint64, tag uint16, field, bit uint8, posted bool) {
		if len(data) > 512 {
			data = data[:512]
		}
		if seq == 0 {
			seq = 1 // bridges emit sequences from 1; 0 is a regression by definition
		}
		fr := Frame{
			Src: 1, Dst: 3, Seq: seq,
			Payload: ht.Packet{
				Cmd: ht.CmdWrSized, SrcTag: tag, Posted: posted,
				Addr: addr.Phys(0x1000).WithNode(3), Count: len(data),
				Data: append([]byte(nil), data...),
			},
		}
		s := Seal(fr)

		// The untampered frame passes a fresh verifier.
		clean := NewVerifier(3)
		if _, err := clean.Accept(s); err != nil {
			t.Fatalf("pristine frame refused: %v", err)
		}

		// Flip exactly one bit in a covered location. The mutant keeps
		// the original CRC (or a mutated CRC over the original frame),
		// so the pair can never verify.
		m := s
		m.Frame.Payload.Data = append([]byte(nil), s.Frame.Payload.Data...)
		switch field % 8 {
		case 0:
			m.Frame.Src ^= 1 << (bit % 14)
		case 1:
			m.Frame.Dst ^= 1 << (bit % 14)
		case 2:
			m.Frame.Seq ^= 1 << (bit % 64)
		case 3:
			m.Frame.Payload.Addr ^= 1 << (bit % 48)
		case 4:
			m.Frame.Payload.Count ^= 1 << (bit % 31)
		case 5:
			m.Frame.Payload.Posted = !m.Frame.Payload.Posted
		case 6:
			if len(m.Frame.Payload.Data) == 0 {
				m.CRC ^= 1 << (bit % 32)
				break
			}
			m.Frame.Payload.Data[int(seq%uint64(len(m.Frame.Payload.Data)))] ^= 1 << (bit % 8)
		default:
			m.CRC ^= 1 << (bit % 32)
		}

		if _, err := m.Open(); err == nil {
			t.Fatalf("bit-flipped frame opened clean (field %d bit %d)", field%8, bit)
		}
		v := NewVerifier(3)
		if _, err := v.Accept(m); err == nil {
			t.Fatal("bit-flipped frame accepted")
		}
		if v.Corrupt != 1 || v.Received != 0 {
			t.Fatalf("corrupt frame miscounted: Corrupt=%d Received=%d", v.Corrupt, v.Received)
		}
		if v.Clean() {
			t.Fatal("verifier clean after refusing a corrupt frame")
		}
		// The loose serving path refuses corruption just as hard.
		lv := NewVerifier(3)
		if _, err := lv.AcceptLoose(m); err == nil {
			t.Fatal("bit-flipped frame served")
		}
	})
}
