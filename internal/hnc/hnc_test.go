package hnc

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/ht"
)

func mustBridge(t *testing.T, n addr.NodeID) *Bridge {
	t.Helper()
	b, err := NewBridge(n)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBridgeRejectsInvalidNode(t *testing.T) {
	if _, err := NewBridge(0); err == nil {
		t.Error("node 0 accepted")
	}
	if _, err := NewBridge(addr.MaxNode + 1); err == nil {
		t.Error("overlarge node accepted")
	}
}

func TestPaperWalkthrough(t *testing.T) {
	// Figure 4 flow: node 1 issues a read to physical address
	// local 0x41000000 prefixed with node 3; node 3's bridge clears the
	// prefix before the local replay.
	n1, n3 := mustBridge(t, 1), mustBridge(t, 3)

	req := ht.Packet{Cmd: ht.CmdRdSized, SrcUnit: 2, SrcTag: 9, Addr: addr.Phys(0x41000000).WithNode(3), Count: 64}
	frame, err := n1.Outbound(req)
	if err != nil {
		t.Fatal(err)
	}
	if frame.Src != 1 || frame.Dst != 3 {
		t.Errorf("frame %v routed %d->%d, want 1->3", frame, frame.Src, frame.Dst)
	}

	local, err := n3.Inbound(frame)
	if err != nil {
		t.Fatal(err)
	}
	if local.Addr != addr.Phys(0x41000000) {
		t.Errorf("server saw %v, want prefix cleared", local.Addr)
	}
	if local.SrcTag != 9 || local.SrcUnit != 2 {
		t.Error("tag/unit not preserved across the bridge")
	}

	// The response travels back to node 1 and passes through unchanged.
	data := bytes.Repeat([]byte{0xAB}, 64)
	reply, err := n3.Reply(frame.Src, local.Response(data))
	if err != nil {
		t.Fatal(err)
	}
	rsp, err := n1.Inbound(reply)
	if err != nil {
		t.Fatal(err)
	}
	if rsp.Cmd != ht.CmdRdResponse || !bytes.Equal(rsp.Data, data) || rsp.SrcTag != 9 {
		t.Errorf("response corrupted: %v", rsp)
	}
}

func TestOutboundRejections(t *testing.T) {
	b := mustBridge(t, 1)
	if _, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdResponse, Count: 0}); err == nil {
		t.Error("non-request bridged")
	}
	if _, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdSized, Addr: 0x1000, Count: 64}); err == nil {
		t.Error("local address bridged")
	}
	if _, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(2), Count: 0}); err == nil {
		t.Error("invalid packet bridged")
	}
}

func TestLoopbackFrame(t *testing.T) {
	// Legal on the wire; the paper notes it never happens in practice.
	b := mustBridge(t, 5)
	f, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x100).WithNode(5), Count: 64})
	if err != nil {
		t.Fatal(err)
	}
	if f.Dst != 5 {
		t.Errorf("loopback frame dst = %d", f.Dst)
	}
	p, err := b.Inbound(f)
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr != 0x100 {
		t.Errorf("loopback inbound addr = %v", p.Addr)
	}
}

func TestInboundRejections(t *testing.T) {
	b3 := mustBridge(t, 3)
	// Misdelivered frame.
	f := Frame{Src: 1, Dst: 4, Payload: ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1).WithNode(4), Count: 8}}
	if _, err := b3.Inbound(f); err == nil {
		t.Error("misdelivered frame accepted")
	}
	// Frame whose payload prefix disagrees with the destination.
	f = Frame{Src: 1, Dst: 3, Payload: ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1).WithNode(4), Count: 8}}
	if _, err := b3.Inbound(f); err == nil {
		t.Error("prefix/destination mismatch accepted")
	}
	// Invalid src on the wire.
	f = Frame{Src: 0, Dst: 3, Payload: ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x1).WithNode(3), Count: 8}}
	if _, err := b3.Inbound(f); err == nil {
		t.Error("frame from node 0 accepted")
	}
}

func TestReplyRejectsRequests(t *testing.T) {
	b := mustBridge(t, 2)
	if _, err := b.Reply(1, ht.Packet{Cmd: ht.CmdRdSized, Addr: 0x1, Count: 8}); err == nil {
		t.Error("request passed as reply")
	}
	if _, err := b.Reply(0, ht.Packet{Cmd: ht.CmdTgtDone}); err == nil {
		t.Error("reply to node 0 accepted")
	}
}

func TestWireBytes(t *testing.T) {
	f := Frame{Src: 1, Dst: 2, Payload: ht.Packet{Cmd: ht.CmdRdSized, Addr: 0x1, Count: 64}}
	if got := f.WireBytes(); got != HeaderBytes+8 {
		t.Errorf("WireBytes = %d", got)
	}
}

func TestBridgeRoundTripProperty(t *testing.T) {
	// For any valid (address, nodes) pair, Outbound at src then Inbound at
	// dst yields the original local address with metadata intact.
	f := func(raw uint64, srcN, dstN uint16, tag uint16) bool {
		src := addr.NodeID(srcN%100) + 1
		dst := addr.NodeID(dstN%100) + 1
		if src == dst {
			dst = src%100 + 1
			if src == dst {
				return true
			}
		}
		local := addr.Phys(raw % (1 << 30))
		bs, err1 := NewBridge(src)
		bd, err2 := NewBridge(dst)
		if err1 != nil || err2 != nil {
			return false
		}
		req := ht.Packet{Cmd: ht.CmdRdSized, SrcTag: tag, Addr: local.WithNode(dst), Count: 64}
		fr, err := bs.Outbound(req)
		if err != nil {
			return false
		}
		p, err := bd.Inbound(fr)
		if err != nil {
			return false
		}
		return p.Addr == local && p.SrcTag == tag && fr.Dst == dst && fr.Src == src
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeqMonotone(t *testing.T) {
	b := mustBridge(t, 1)
	var last uint64
	for i := 0; i < 5; i++ {
		f, err := b.Outbound(ht.Packet{Cmd: ht.CmdRdSized, Addr: addr.Phys(0x40).WithNode(2), Count: 8})
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq <= last {
			t.Fatalf("seq not increasing: %d after %d", f.Seq, last)
		}
		last = f.Seq
	}
}
