package hnc

import (
	"hash/crc32"
	"testing"
	"testing/quick"
)

func TestCrcUpdateMatchesStdlib(t *testing.T) {
	f := func(a, b []byte) bool {
		want := crc32.Update(crc32.Update(0, crc32.IEEETable, a), crc32.IEEETable, b)
		return crcUpdate(crcUpdate(0, a), b) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
