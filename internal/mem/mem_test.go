package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/addr"
	"repro/internal/params"
)

func newStore(t *testing.T, size uint64) *Store {
	t.Helper()
	s, err := NewStore(size)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(0); err == nil {
		t.Error("zero-size store accepted")
	}
	if _, err := NewStore(params.PageSize + 1); err == nil {
		t.Error("unaligned store accepted")
	}
	if _, err := NewStore(addr.LocalSpace + params.PageSize); err == nil {
		t.Error("store beyond local space accepted")
	}
}

func TestZeroFill(t *testing.T) {
	s := newStore(t, 1<<20)
	buf := []byte{1, 2, 3, 4}
	if err := s.ReadAt(0x100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, 4)) {
		t.Errorf("untouched memory read as %v", buf)
	}
	if s.ResidentBytes() != 0 {
		t.Error("reads should not materialize frames")
	}
}

func TestReadAfterWrite(t *testing.T) {
	s := newStore(t, 1<<20)
	want := []byte("memory-hungry applications")
	if err := s.WriteAt(0x4000, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(0x4000, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("read back %q, want %q", got, want)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s := newStore(t, 1<<20)
	// Write spanning three pages.
	want := bytes.Repeat([]byte{0x5A}, 3*params.PageSize)
	start := addr.Phys(params.PageSize - 100)
	if err := s.WriteAt(start, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := s.ReadAt(start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("cross-page roundtrip corrupted")
	}
	if s.FramesTouched != 4 {
		t.Errorf("FramesTouched = %d, want 4", s.FramesTouched)
	}
	// Partially-written page: bytes before the write read as zero.
	head := make([]byte, 8)
	if err := s.ReadAt(0, head); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, make([]byte, 8)) {
		t.Errorf("bytes before write = %v", head)
	}
}

func TestBoundsChecking(t *testing.T) {
	s := newStore(t, 1<<20)
	if err := s.WriteAt(addr.Phys(1<<20-4), make([]byte, 8)); err == nil {
		t.Error("write past end accepted")
	}
	if err := s.ReadAt(addr.Phys(1<<20), make([]byte, 1)); err == nil {
		t.Error("read past end accepted")
	}
	if err := s.ReadAt(addr.Phys(0x10).WithNode(3), make([]byte, 1)); err == nil {
		t.Error("prefixed address accepted")
	}
	// Zero-length access at the boundary is fine.
	if err := s.ReadAt(addr.Phys(1<<20), nil); err != nil {
		t.Errorf("zero-length read rejected: %v", err)
	}
}

func TestUint64Helpers(t *testing.T) {
	s := newStore(t, 1<<20)
	if err := s.WriteUint64(0x88, 0xDEADBEEFCAFE1234); err != nil {
		t.Fatal(err)
	}
	v, err := s.ReadUint64(0x88)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEFCAFE1234 {
		t.Errorf("ReadUint64 = %#x", v)
	}
	// Little-endian layout.
	b := make([]byte, 1)
	if err := s.ReadAt(0x88, b); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0x34 {
		t.Errorf("first byte = %#x, want little-endian 0x34", b[0])
	}
	if _, err := s.ReadUint64(addr.Phys(1<<20 - 4)); err == nil {
		t.Error("straddling word read accepted")
	}
}

func TestSparseResidency(t *testing.T) {
	s := newStore(t, 1<<30)
	s.WriteAt(0, []byte{1})
	s.WriteAt(512<<20, []byte{2})
	if got := s.ResidentBytes(); got != 2*params.PageSize {
		t.Errorf("ResidentBytes = %d, want 2 pages", got)
	}
}

func TestReadWriteRoundTripProperty(t *testing.T) {
	s := newStore(t, 1<<24)
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := addr.Phys(uint64(off) % (1<<24 - uint64(len(data))))
		if err := s.WriteAt(a, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := s.ReadAt(a, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordRoundTripProperty(t *testing.T) {
	s := newStore(t, 1<<20)
	f := func(off uint16, v uint64) bool {
		a := addr.Phys(uint64(off)) * 8 % (1<<20 - 8)
		if err := s.WriteUint64(a, v); err != nil {
			return false
		}
		got, err := s.ReadUint64(a)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
