// Package mem is the functional storage substrate: the bytes themselves.
//
// Each node owns a Store covering its local physical address space.
// Storage is sparse — 4 KiB frames materialize on first write — so a
// simulated 16 GB node costs only what the workload actually touches,
// while preserving exact read-after-write semantics across the cluster
// (data written through one node's RMC reads back identically through
// another mapping). Timing lives elsewhere; this package is purely
// functional and is shared by both evaluation layers.
package mem

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/params"
)

// Store is one node's sparse physical memory.
type Store struct {
	size   uint64
	frames map[uint64][]byte // frame index -> 4 KiB frame

	// FramesTouched counts frames ever materialized.
	FramesTouched uint64
}

// NewStore creates a store of the given byte capacity.
func NewStore(size uint64) (*Store, error) {
	if size == 0 || size%params.PageSize != 0 {
		return nil, fmt.Errorf("mem: size %d must be a positive multiple of %d", size, params.PageSize)
	}
	if size > addr.LocalSpace {
		return nil, fmt.Errorf("mem: size %d exceeds the local address space", size)
	}
	return &Store{size: size, frames: make(map[uint64][]byte)}, nil
}

// Size returns the store capacity in bytes.
func (s *Store) Size() uint64 { return s.size }

func (s *Store) check(a addr.Phys, n int) error {
	if !a.IsLocal() {
		return fmt.Errorf("mem: %v carries a node prefix; stores hold local addresses only", a)
	}
	if n < 0 {
		return fmt.Errorf("mem: negative length %d", n)
	}
	if uint64(a)+uint64(n) > s.size {
		return fmt.Errorf("mem: access [%v, +%d) beyond %d-byte store", a, n, s.size)
	}
	return nil
}

// frame returns the frame containing byte offset off, materializing it if
// materialize is set; a nil return means an untouched (all-zero) frame.
func (s *Store) frame(off uint64, materialize bool) []byte {
	idx := off / params.PageSize
	f := s.frames[idx]
	if f == nil && materialize {
		f = make([]byte, params.PageSize)
		s.frames[idx] = f
		s.FramesTouched++
	}
	return f
}

// ReadAt copies len(dst) bytes starting at a into dst. Untouched memory
// reads as zeros, as DRAM scrubbed at boot would.
func (s *Store) ReadAt(a addr.Phys, dst []byte) error {
	if err := s.check(a, len(dst)); err != nil {
		return err
	}
	off := uint64(a)
	for len(dst) > 0 {
		in := off % params.PageSize
		n := params.PageSize - in
		if uint64(len(dst)) < n {
			n = uint64(len(dst))
		}
		if f := s.frame(off, false); f != nil {
			copy(dst[:n], f[in:in+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
	return nil
}

// WriteAt copies src into the store starting at a.
func (s *Store) WriteAt(a addr.Phys, src []byte) error {
	if err := s.check(a, len(src)); err != nil {
		return err
	}
	off := uint64(a)
	for len(src) > 0 {
		in := off % params.PageSize
		n := params.PageSize - in
		if uint64(len(src)) < n {
			n = uint64(len(src))
		}
		f := s.frame(off, true)
		copy(f[in:in+n], src[:n])
		src = src[n:]
		off += n
	}
	return nil
}

// ReadUint64 reads a little-endian 8-byte word, the granule pointer-based
// data structures (the b-tree) use.
func (s *Store) ReadUint64(a addr.Phys) (uint64, error) {
	var buf [8]byte
	if err := s.ReadAt(a, buf[:]); err != nil {
		return 0, err
	}
	return le64(buf[:]), nil
}

// WriteUint64 writes a little-endian 8-byte word.
func (s *Store) WriteUint64(a addr.Phys, v uint64) error {
	var buf [8]byte
	put64(buf[:], v)
	return s.WriteAt(a, buf[:])
}

// ResidentBytes returns the bytes currently materialized.
func (s *Store) ResidentBytes() uint64 { return uint64(len(s.frames)) * params.PageSize }

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func put64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
