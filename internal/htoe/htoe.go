// Package htoe models HyperTransport-over-Ethernet, the interconnect
// option the paper notes the HyperTransport Consortium was standardizing
// ("HyperTransport over Ethernet and HyperTransport over Infiniband,
// that will allow the use of standard Ethernet and Infiniband
// switches"). Instead of the prototype's direct 2D mesh, every node's
// RMC hangs off one NIC link to a central store-and-forward Ethernet
// switch: two hops for any pair, commodity hardware, but encapsulation
// and switching costs on every frame — the trade the consortium's
// standard buys.
//
// The model: an HNC frame is wrapped in one or more Ethernet frames
// (MTU-segmented for page-sized transfers), serialized onto the source
// NIC's uplink, forwarded by the switch (a shared FIFO — the fabric's
// central contention point), and serialized down the destination NIC's
// downlink.
package htoe

import (
	"fmt"

	"repro/internal/addr"
	"repro/internal/faults"
	"repro/internal/params"
	"repro/internal/sim"
)

// Ethernet constants.
const (
	// FrameOverhead is the per-Ethernet-frame header/trailer bytes
	// (MACs, type, FCS, preamble, IFG).
	FrameOverhead = 38
	// MTU is the payload capacity of one Ethernet frame.
	MTU = 1500
)

// Config carries the HToE timing parameters. Defaults model 2010-era
// 10 GbE cut-through-capable gear used store-and-forward.
type Config struct {
	// NICLatency is the per-end encapsulation/decapsulation cost.
	NICLatency params.Duration
	// WireLatency is the one-way link propagation + PHY latency.
	WireLatency params.Duration
	// SwitchLatency is the switch's store-and-forward latency per frame.
	SwitchLatency params.Duration
	// LinkOccupancy is the serialization time of 64 bytes on a link
	// (10 GbE: 64 B ≈ 51 ns).
	LinkOccupancy params.Duration
	// SwitchOccupancy is the switching capacity consumed per frame.
	SwitchOccupancy params.Duration
}

// DefaultConfig returns the calibrated 10 GbE figures.
func DefaultConfig() Config {
	return Config{
		NICLatency:      500 * params.Nanosecond,
		WireLatency:     200 * params.Nanosecond,
		SwitchLatency:   500 * params.Nanosecond,
		LinkOccupancy:   51 * params.Nanosecond,
		SwitchOccupancy: 60 * params.Nanosecond,
	}
}

// Validate reports the first inconsistency.
func (c Config) Validate() error {
	if c.NICLatency <= 0 || c.WireLatency <= 0 || c.SwitchLatency <= 0 ||
		c.LinkOccupancy <= 0 || c.SwitchOccupancy <= 0 {
		return fmt.Errorf("htoe: all latencies must be positive")
	}
	return nil
}

// Fabric is the switched-Ethernet fabric.
type Fabric struct {
	eng   *sim.Engine
	cfg   Config
	nodes int
	inj   *faults.Injector // nil on a fault-free fabric

	up, down map[addr.NodeID]*sim.Resource
	sw       *sim.Resource

	// Delivered counts HNC frames delivered; Frames counts Ethernet
	// frames used (> Delivered when segmentation kicks in).
	Delivered, Frames uint64
}

// InjectFaults arms the fault plan's probabilistic subset on this
// fabric. A switched fabric has a single path per pair, so link-down
// windows cannot reroute here — drops, corruption, and delay apply per
// HNC frame crossing the switch.
func (f *Fabric) InjectFaults(inj *faults.Injector) { f.inj = inj }

// New builds the fabric for a cluster of the given node count.
func New(eng *sim.Engine, nodes int, cfg Config) (*Fabric, error) {
	if eng == nil {
		return nil, fmt.Errorf("htoe: nil engine")
	}
	if nodes < 1 || nodes > addr.MaxNode {
		return nil, fmt.Errorf("htoe: %d nodes", nodes)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{
		eng:   eng,
		cfg:   cfg,
		nodes: nodes,
		up:    make(map[addr.NodeID]*sim.Resource, nodes),
		down:  make(map[addr.NodeID]*sim.Resource, nodes),
		sw:    sim.NewResource(eng, "htoe/switch", 0),
	}
	for i := 1; i <= nodes; i++ {
		id := addr.NodeID(i)
		f.up[id] = sim.NewResource(eng, fmt.Sprintf("htoe/up%d", id), 0)
		f.down[id] = sim.NewResource(eng, fmt.Sprintf("htoe/down%d", id), 0)
	}
	return f, nil
}

// frames returns the Ethernet frame count and total wire bytes for an
// HNC payload of the given size.
func frames(payload int) (count, wireBytes int) {
	if payload <= 0 {
		return 1, FrameOverhead
	}
	count = (payload + MTU - 1) / MTU
	return count, payload + count*FrameOverhead
}

// serialize returns the link occupancy of wireBytes.
func (f *Fabric) serialize(wireBytes int) sim.Time {
	units := (wireBytes + params.CacheLineSize - 1) / params.CacheLineSize
	if units < 1 {
		units = 1
	}
	return sim.Time(units) * f.cfg.LinkOccupancy
}

// Deliver implements rmc.Fabric: NIC encap → uplink → switch → downlink
// → NIC decap. Every pair is exactly two link hops apart — the constant-
// distance property that makes switched fabrics attractive, bought at
// higher per-frame cost and a shared switch.
func (f *Fabric) Deliver(now sim.Time, src, dst addr.NodeID, wireBytes int) (sim.Time, int) {
	if !f.contains(src) || !f.contains(dst) {
		panic(fmt.Sprintf("htoe: delivery %d->%d outside the %d-node fabric", src, dst, f.nodes))
	}
	if src == dst {
		return now, 0
	}
	nFrames, totalWire := frames(wireBytes)
	f.Frames += uint64(nFrames)
	occ := f.serialize(totalWire)

	t := now + f.cfg.NICLatency
	upDone, _ := f.up[src].Acquire(t, occ)
	t = upDone + f.cfg.WireLatency
	swDone, _ := f.sw.Acquire(t, sim.Time(nFrames)*f.cfg.SwitchOccupancy)
	t = swDone + f.cfg.SwitchLatency
	downDone, _ := f.down[dst].Acquire(t, occ)
	t = downDone + f.cfg.WireLatency + f.cfg.NICLatency
	f.Delivered++
	return t, 2
}

// DeliverOutcome is Deliver under the fault plan: the frame consumes the
// same NIC/switch/link capacity, then rolls the plan's delay, drop, and
// corruption probabilities once for its switch crossing. Without an
// injector it is exactly Deliver.
func (f *Fabric) DeliverOutcome(now sim.Time, src, dst addr.NodeID, wireBytes int) faults.Outcome {
	t, hops := f.Deliver(now, src, dst, wireBytes)
	if f.inj == nil || src == dst {
		return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Delivered}
	}
	if d, ok := f.inj.RollDelay(); ok {
		t += sim.Time(d)
	}
	if f.inj.RollDrop() {
		return faults.Outcome{Arrive: int64(t), Hops: hops, Status: faults.Dropped}
	}
	st := faults.Delivered
	if f.inj.RollCorrupt() {
		st = faults.Corrupted
	}
	return faults.Outcome{Arrive: int64(t), Hops: hops, Status: st}
}

// DeliverExpress implements rmc.Fabric: a switched fabric has no spare
// point-to-point ports, so express links do not exist here.
func (f *Fabric) DeliverExpress(sim.Time, addr.NodeID, addr.NodeID, int) (sim.Time, error) {
	return 0, fmt.Errorf("htoe: switched fabrics have no express links")
}

// SwitchUtilization reports the shared switch's occupancy fraction.
func (f *Fabric) SwitchUtilization(elapsed sim.Time) float64 { return f.sw.Utilization(elapsed) }

func (f *Fabric) contains(n addr.NodeID) bool { return n >= 1 && int(n) <= f.nodes }

// RoundTrip returns the unloaded round-trip estimate for a cache-line
// read over this fabric (request + response traversals plus the remote
// service terms supplied by the caller).
func (f *Fabric) RoundTrip(serviceTerms params.Duration) params.Duration {
	// One line-sized frame serializes on the uplink and the downlink and
	// crosses the (unloaded) switch.
	oneWay := f.cfg.NICLatency*2 + f.cfg.WireLatency*2 + f.cfg.SwitchLatency +
		f.cfg.SwitchOccupancy + 2*f.serialize(FrameOverhead+72)
	return 2*oneWay + serviceTerms
}
