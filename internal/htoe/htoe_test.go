package htoe

import (
	"testing"

	"repro/internal/addr"
	"repro/internal/params"
	"repro/internal/sim"
)

func fabric(t *testing.T, nodes int) *Fabric {
	t.Helper()
	f, err := New(sim.New(), nodes, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 16, DefaultConfig()); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(sim.New(), 0, DefaultConfig()); err == nil {
		t.Error("0 nodes accepted")
	}
	bad := DefaultConfig()
	bad.NICLatency = 0
	if _, err := New(sim.New(), 16, bad); err == nil {
		t.Error("zero latency accepted")
	}
}

func TestConstantDistance(t *testing.T) {
	f := fabric(t, 16)
	// Every pair is two hops: the delivery time between any two distinct
	// nodes is identical (unloaded).
	base, hops := f.Deliver(0, 1, 2, 72)
	if hops != 2 {
		t.Errorf("hops = %d, want 2", hops)
	}
	for _, dst := range []addr.NodeID{3, 9, 16} {
		f2 := fabric(t, 16)
		got, _ := f2.Deliver(0, 1, dst, 72)
		if got != base {
			t.Errorf("delivery 1->%d = %d, want the constant %d", dst, got, base)
		}
	}
}

func TestUnloadedLatencyBudget(t *testing.T) {
	f := fabric(t, 4)
	cfg := DefaultConfig()
	got, _ := f.Deliver(0, 1, 2, 72)
	// NIC + serialize(up) + wire + switch-occ + switch + serialize(down)
	// + wire + NIC; 72+38=110 bytes → 2 occupancy units.
	occ := 2 * cfg.LinkOccupancy
	want := cfg.NICLatency + occ + cfg.WireLatency + cfg.SwitchOccupancy +
		cfg.SwitchLatency + occ + cfg.WireLatency + cfg.NICLatency
	if got != want {
		t.Errorf("unloaded delivery = %d, want %d", got, want)
	}
}

func TestSelfDelivery(t *testing.T) {
	f := fabric(t, 4)
	if at, hops := f.Deliver(50, 2, 2, 72); at != 50 || hops != 0 {
		t.Errorf("self delivery = %d, %d", at, hops)
	}
}

func TestMTUSegmentation(t *testing.T) {
	// A 4 KiB page needs 3 Ethernet frames; overhead shows in the wire
	// bytes and the switch sees 3 frames.
	n, wire := frames(4096)
	if n != 3 {
		t.Errorf("4096-byte payload used %d frames, want 3", n)
	}
	if wire != 4096+3*FrameOverhead {
		t.Errorf("wire bytes = %d", wire)
	}
	if n, _ := frames(0); n != 1 {
		t.Error("empty payload should still use one frame")
	}
	if n, _ := frames(MTU); n != 1 {
		t.Error("exactly-MTU payload should use one frame")
	}

	f := fabric(t, 4)
	f.Deliver(0, 1, 2, 4096)
	if f.Frames != 3 || f.Delivered != 1 {
		t.Errorf("Frames=%d Delivered=%d", f.Frames, f.Delivered)
	}
}

func TestSwitchIsTheSharedBottleneck(t *testing.T) {
	f := fabric(t, 16)
	// Disjoint node pairs contend only at the switch.
	t1, _ := f.Deliver(0, 1, 2, 72)
	t2, _ := f.Deliver(0, 3, 4, 72)
	if t2 <= t1 {
		t.Errorf("second disjoint delivery (%d) not delayed behind the shared switch (%d)", t2, t1)
	}
	if t2-t1 != DefaultConfig().SwitchOccupancy {
		t.Errorf("switch serialization gap = %d", t2-t1)
	}
	if u := f.SwitchUtilization(t2); u <= 0 {
		t.Error("switch utilization not tracked")
	}
}

func TestPerNICContention(t *testing.T) {
	f := fabric(t, 16)
	// Two frames from the same source serialize on its uplink as well.
	t1, _ := f.Deliver(0, 1, 2, 4096)
	t2, _ := f.Deliver(0, 1, 3, 4096)
	gap := t2 - t1
	if gap <= DefaultConfig().SwitchOccupancy {
		t.Errorf("same-source gap %d should exceed switch-only contention", gap)
	}
}

func TestNoExpressLinks(t *testing.T) {
	f := fabric(t, 4)
	if _, err := f.DeliverExpress(0, 1, 2, 72); err == nil {
		t.Error("switched fabric offered an express link")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	f := fabric(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("delivery outside the fabric did not panic")
		}
	}()
	f.Deliver(0, 1, 9, 72)
}

func TestRoundTripEstimate(t *testing.T) {
	f := fabric(t, 4)
	service := 300 * params.Nanosecond
	rt := f.RoundTrip(service)
	measured, _ := f.Deliver(0, 1, 2, 72)
	// The estimate covers two traversals plus service; one unloaded
	// traversal must be about half of (rt - service).
	oneWay := (rt - service) / 2
	if measured < oneWay-DefaultConfig().SwitchOccupancy || measured > oneWay+DefaultConfig().SwitchOccupancy {
		t.Errorf("estimate one-way %d vs measured %d", oneWay, measured)
	}
}
