package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// BucketInf marks the implicit +Inf histogram bucket.
const BucketInf = int64(math.MaxInt64)

// Bucket is one histogram bucket: the count of samples <= Le picoseconds
// (not cumulative; Prometheus rendering accumulates). Le == BucketInf is
// the overflow bucket.
type Bucket struct {
	Le    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// Sample is one labeled value within a family. Counters and gauges use
// Value; histograms use Buckets/Sum/Count.
type Sample struct {
	Labels  Labels   `json:"labels,omitempty"`
	Value   float64  `json:"value,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     int64    `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`
}

// Family is all samples sharing one metric name.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Kind    Kind     `json:"kind"`
	Samples []Sample `json:"samples"`
}

// Snapshot is an immutable, fully ordered capture of a Registry:
// families sorted by name, samples by label signature. Equal simulations
// produce byte-identical renderings.
type Snapshot struct {
	Families []Family `json:"families"`
}

// Family returns the named family, or nil when absent.
func (s Snapshot) Family(name string) *Family {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// Value returns the first sample of family name whose labels include
// every pair of ls, with ok reporting whether one was found. Histogram
// families return the sample Count.
func (s Snapshot) Value(name string, ls Labels) (float64, bool) {
	f := s.Family(name)
	if f == nil {
		return 0, false
	}
	for _, sm := range f.Samples {
		match := true
		for _, want := range ls {
			if sm.Labels.Get(want.Key) != want.Value {
				match = false
				break
			}
		}
		if match {
			if f.Kind == KindHistogram {
				return float64(sm.Count), true
			}
			return sm.Value, true
		}
	}
	return 0, false
}

// Total sums every sample of a counter or gauge family (histograms sum
// their Counts).
func (s Snapshot) Total(name string) float64 {
	f := s.Family(name)
	if f == nil {
		return 0
	}
	var t float64
	for _, sm := range f.Samples {
		if f.Kind == KindHistogram {
			t += float64(sm.Count)
		} else {
			t += sm.Value
		}
	}
	return t
}

// Merge combines two snapshots: counters, gauges, and histogram buckets
// add; families and samples present in only one side pass through.
// Merging is a left fold — the experiment harness folds run snapshots in
// submission order, which with these commutative-in-theory but
// float-sensitive sums is what makes merged output byte-identical at any
// worker count.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	famIdx := make(map[string]int, len(s.Families))
	out := Snapshot{Families: make([]Family, len(s.Families))}
	for i, f := range s.Families {
		cp := f
		cp.Samples = append([]Sample(nil), f.Samples...)
		for j := range cp.Samples {
			cp.Samples[j].Buckets = append([]Bucket(nil), f.Samples[j].Buckets...)
		}
		out.Families[i] = cp
		famIdx[f.Name] = i
	}
	for _, f := range o.Families {
		i, ok := famIdx[f.Name]
		if !ok {
			cp := f
			cp.Samples = append([]Sample(nil), f.Samples...)
			out.Families = append(out.Families, cp)
			continue
		}
		dst := &out.Families[i]
		smpIdx := make(map[string]int, len(dst.Samples))
		for j, sm := range dst.Samples {
			smpIdx[sm.Labels.signature()] = j
		}
		for _, sm := range f.Samples {
			j, ok := smpIdx[sm.Labels.signature()]
			if !ok {
				dst.Samples = append(dst.Samples, sm)
				continue
			}
			d := &dst.Samples[j]
			d.Value += sm.Value
			d.Sum += sm.Sum
			d.Count += sm.Count
			if len(d.Buckets) == len(sm.Buckets) {
				for k := range d.Buckets {
					d.Buckets[k].Count += sm.Buckets[k].Count
				}
			}
		}
		sort.Slice(dst.Samples, func(a, b int) bool {
			return dst.Samples[a].Labels.signature() < dst.Samples[b].Labels.signature()
		})
	}
	sort.Slice(out.Families, func(a, b int) bool { return out.Families[a].Name < out.Families[b].Name })
	return out
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only plain values; this cannot fail.
		panic(err)
	}
	return string(b) + "\n"
}

// Prometheus renders the snapshot in the Prometheus text exposition
// format. Histogram le edges and sums are printed in seconds (values are
// picoseconds internally), matching Prometheus latency conventions.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Kind)
		for _, sm := range f.Samples {
			if f.Kind == KindHistogram {
				var cum uint64
				for _, bk := range sm.Buckets {
					cum += bk.Count
					le := "+Inf"
					if bk.Le != BucketInf {
						le = formatFloat(float64(bk.Le) / 1e12)
					}
					fmt.Fprintf(&b, "%s_bucket{%s} %d\n", f.Name, promLabels(sm.Labels, le), cum)
				}
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.Name, promLabelBlock(sm.Labels), formatFloat(float64(sm.Sum)/1e12))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.Name, promLabelBlock(sm.Labels), sm.Count)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.Name, promLabelBlock(sm.Labels), formatFloat(sm.Value))
		}
	}
	return b.String()
}

// formatFloat prints integral values without an exponent or trailing
// zeros so counters read naturally ("42", not "4.2e+01").
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabelBlock renders {k="v",...} or "" when unlabeled.
func promLabelBlock(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	return "{" + joinLabels(ls) + "}"
}

// promLabels renders the label pairs plus the le bucket label.
func promLabels(ls Labels, le string) string {
	if len(ls) == 0 {
		return `le="` + le + `"`
	}
	return joinLabels(ls) + `,le="` + le + `"`
}

func joinLabels(ls Labels) string {
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Merged accumulates run snapshots in the order Add is called. The
// experiment harness calls Add from the generator goroutine in sweep
// submission order, never from workers, preserving determinism.
type Merged struct {
	snap Snapshot
	any  bool
}

// Add folds one run's snapshot into the accumulator.
func (m *Merged) Add(s Snapshot) {
	if !m.any {
		m.snap = s
		m.any = true
		return
	}
	m.snap = m.snap.Merge(s)
}

// Snapshot returns the merged result (zero Snapshot before any Add).
func (m *Merged) Snapshot() Snapshot { return m.snap }
