package metrics

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ncdsm_test_ops_total", "ops", L("node", "1"))
	c.Inc()
	c.Add(4)
	var tally uint64 = 7
	r.CounterFunc("ncdsm_test_ops_total", "ops", L("node", "0"), func() uint64 { return tally })
	g := r.Gauge("ncdsm_test_level", "level", nil)
	g.Set(2.5)

	s := r.Snapshot()
	if v, ok := s.Value("ncdsm_test_ops_total", L("node", "1")); !ok || v != 5 {
		t.Errorf("counter = %v,%v want 5,true", v, ok)
	}
	if v, ok := s.Value("ncdsm_test_ops_total", L("node", "0")); !ok || v != 7 {
		t.Errorf("counter func = %v,%v want 7,true", v, ok)
	}
	if got := s.Total("ncdsm_test_ops_total"); got != 12 {
		t.Errorf("Total = %v want 12", got)
	}
	if v, ok := s.Value("ncdsm_test_level", nil); !ok || v != 2.5 {
		t.Errorf("gauge = %v,%v want 2.5,true", v, ok)
	}

	// CounterFunc samples lazily: bumping the tally changes the next
	// snapshot but not the one already taken.
	tally = 100
	if v, _ := s.Value("ncdsm_test_ops_total", L("node", "0")); v != 7 {
		t.Errorf("old snapshot mutated: %v", v)
	}
	if v, _ := r.Snapshot().Value("ncdsm_test_ops_total", L("node", "0")); v != 100 {
		t.Errorf("new snapshot = %v want 100", v)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ncdsm_test_latency_seconds", "lat", nil, []int64{10, 20, 50})
	for _, v := range []int64{5, 10, 11, 60, -3} {
		h.Observe(v)
	}
	if h.N() != 5 {
		t.Fatalf("N = %d want 5", h.N())
	}
	if h.Sum() != 5+10+11+60+0 {
		t.Fatalf("Sum = %d want 86", h.Sum())
	}
	s := r.Snapshot()
	f := s.Family("ncdsm_test_latency_seconds")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("missing histogram family")
	}
	want := []uint64{3, 1, 0, 1} // <=10: {5,10,-3}, <=20: {11}, <=50: {}, +Inf: {60}
	for i, bk := range f.Samples[0].Buckets {
		if bk.Count != want[i] {
			t.Errorf("bucket %d = %d want %d", i, bk.Count, want[i])
		}
	}
	if f.Samples[0].Buckets[3].Le != BucketInf {
		t.Errorf("last bucket not +Inf")
	}
}

func TestSnapshotOrderingDeterministic(t *testing.T) {
	build := func(order []int) string {
		r := NewRegistry()
		for _, i := range order {
			switch i {
			case 0:
				r.Counter("ncdsm_b_total", "", L("node", "2")).Add(2)
			case 1:
				r.Counter("ncdsm_a_total", "", L("zone", "x", "node", "1")).Add(1)
			case 2:
				r.Counter("ncdsm_b_total", "", L("node", "0")).Add(3)
			}
		}
		return r.Snapshot().Prometheus()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a != b {
		t.Errorf("registration order leaked into rendering:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(a, `ncdsm_a_total{node="1",zone="x"} 1`) {
		t.Errorf("labels not sorted by key:\n%s", a)
	}
}

func TestMergeFoldsInOrder(t *testing.T) {
	mk := func(n uint64, lat int64) Snapshot {
		r := NewRegistry()
		r.Counter("ncdsm_ops_total", "", L("node", "0")).Add(n)
		r.Histogram("ncdsm_lat_seconds", "", nil, []int64{10, 100}).Observe(lat)
		return r.Snapshot()
	}
	var m Merged
	m.Add(mk(1, 5))
	m.Add(mk(2, 50))
	m.Add(mk(3, 500))
	s := m.Snapshot()
	if got := s.Total("ncdsm_ops_total"); got != 6 {
		t.Errorf("merged counter = %v want 6", got)
	}
	f := s.Family("ncdsm_lat_seconds")
	if f == nil {
		t.Fatal("histogram family lost in merge")
	}
	sm := f.Samples[0]
	if sm.Count != 3 || sm.Sum != 555 {
		t.Errorf("merged histogram count/sum = %d/%d want 3/555", sm.Count, sm.Sum)
	}
	wantBk := []uint64{1, 1, 1}
	for i, bk := range sm.Buckets {
		if bk.Count != wantBk[i] {
			t.Errorf("merged bucket %d = %d want %d", i, bk.Count, wantBk[i])
		}
	}
	// Disjoint families and samples pass through.
	r := NewRegistry()
	r.Counter("ncdsm_other_total", "", nil).Add(9)
	s2 := s.Merge(r.Snapshot())
	if got := s2.Total("ncdsm_other_total"); got != 9 {
		t.Errorf("disjoint family = %v want 9", got)
	}
	if got := s2.Total("ncdsm_ops_total"); got != 6 {
		t.Errorf("existing family disturbed: %v", got)
	}
}

func TestPrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ncdsm_x_total", "things that happened", L("node", "0")).Add(42)
	r.Histogram("ncdsm_y_seconds", "a latency", L("node", "0"), []int64{1_000_000}).Observe(500_000)
	out := r.Snapshot().Prometheus()
	for _, want := range []string{
		"# HELP ncdsm_x_total things that happened",
		"# TYPE ncdsm_x_total counter",
		`ncdsm_x_total{node="0"} 42`,
		"# TYPE ncdsm_y_seconds histogram",
		`ncdsm_y_seconds_bucket{node="0",le="1e-06"} 1`,
		`ncdsm_y_seconds_bucket{node="0",le="+Inf"} 1`,
		`ncdsm_y_seconds_count{node="0"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("ncdsm_x_total", "", L("node", "3")).Add(7)
	var back Snapshot
	if err := json.Unmarshal([]byte(r.Snapshot().JSON()), &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v, ok := back.Value("ncdsm_x_total", L("node", "3")); !ok || v != 7 {
		t.Errorf("round trip = %v,%v want 7,true", v, ok)
	}
}

func TestViews(t *testing.T) {
	r := NewRegistry()
	r.Counter(FamCacheHits, "", L("node", "1")).Add(10)
	r.Counter(FamCacheMisses, "", L("node", "1")).Add(2)
	r.Counter(FamCacheHits, "", L("node", "0")).Add(5)
	r.Counter(FamMeshLinkFrames, "", L("from", "0", "to", "1", "class", "mesh")).Add(3)
	r.Counter(FamMeshLinkBytes, "", L("from", "0", "to", "1", "class", "mesh")).Add(192)
	s := r.Snapshot()

	nodes := s.Nodes()
	if len(nodes) != 2 || nodes[0].Node != 0 || nodes[1].Node != 1 {
		t.Fatalf("nodes = %+v", nodes)
	}
	if nodes[1].CacheHits != 10 || nodes[1].CacheMisses != 2 {
		t.Errorf("node 1 view = %+v", nodes[1])
	}
	links := s.Links()
	if len(links) != 1 || links[0].Frames != 3 || links[0].Bytes != 192 {
		t.Fatalf("links = %+v", links)
	}
}
