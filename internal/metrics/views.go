package metrics

import (
	"sort"
	"strconv"
)

// Family names shared between the instrumented substrates and the typed
// views. Substrates register under these so the views (and the
// acceptance tests) never chase string drift.
const (
	// sim engine
	FamSimEvents  = "ncdsm_sim_events_total"
	FamSimPending = "ncdsm_sim_pending_events"
	FamSimNow     = "ncdsm_sim_now_seconds"
	FamSimDelay   = "ncdsm_sim_event_delay_seconds"

	// sharded-engine window schedule. These exist only on multi-shard
	// sets: barrier cadence is a property of the parallel schedule, not
	// of the simulated system, so cross-shard-count byte-identity
	// comparisons filter them (see ShardScheduleFamilyPrefix).
	FamShardBarriers = "ncdsm_shard_barriers_total"
	FamShardElided   = "ncdsm_shard_windows_elided_total"

	// ShardScheduleFamilyPrefix is the common prefix of the families
	// above; identity tests and the CI smoke strip matching lines before
	// diffing snapshots across shard counts or window modes.
	ShardScheduleFamilyPrefix = "ncdsm_shard_"

	// remote memory controller
	FamRMCRequests    = "ncdsm_rmc_requests_total"
	FamRMCRetries     = "ncdsm_rmc_retries_total"
	FamRMCForwarded   = "ncdsm_rmc_forwarded_total"
	FamRMCServedLocal = "ncdsm_rmc_served_local_total"
	FamRMCLoopback    = "ncdsm_rmc_loopback_total"
	FamRMCAborted     = "ncdsm_rmc_aborted_total"
	FamRMCClientUtil  = "ncdsm_rmc_client_utilization"
	FamRMCServerUtil  = "ncdsm_rmc_server_utilization"
	FamRMCLatency     = "ncdsm_rmc_remote_latency_seconds"

	// HNC-HT framing (reliability layer)
	FamHNCFrames      = "ncdsm_hnc_frames_total"
	FamHNCSeqGaps     = "ncdsm_hnc_seq_gaps_total"
	FamHNCRegressions = "ncdsm_hnc_seq_regressions_total"
	FamHNCCRCFailures = "ncdsm_hnc_crc_failures_total"

	// mesh fabric
	FamMeshDelivered  = "ncdsm_mesh_delivered_total"
	FamMeshHops       = "ncdsm_mesh_hops_total"
	FamMeshLinkFrames = "ncdsm_mesh_link_frames_total"
	FamMeshLinkBytes  = "ncdsm_mesh_link_bytes_total"

	// intra-node cache hierarchy
	FamCacheAccesses     = "ncdsm_cache_accesses_total"
	FamCacheHits         = "ncdsm_cache_hits_total"
	FamCacheMisses       = "ncdsm_cache_misses_total"
	FamCacheWritebacks   = "ncdsm_cache_writebacks_total"
	FamCacheFlushedDirty = "ncdsm_cache_flushed_dirty_total"

	// DRAM banks
	FamDRAMReads        = "ncdsm_dram_reads_total"
	FamDRAMWrites       = "ncdsm_dram_writes_total"
	FamDRAMRowHits      = "ncdsm_dram_row_hits_total"
	FamDRAMRowConflicts = "ncdsm_dram_row_conflicts_total"

	// node-level op mix and memory accounting
	FamNodeLocalOps   = "ncdsm_node_local_ops_total"
	FamNodeRemoteOps  = "ncdsm_node_remote_ops_total"
	FamNodePrefetches = "ncdsm_node_prefetches_total"
	FamPoolFreeBytes  = "ncdsm_pool_free_bytes"
	FamRegionBorrowed = "ncdsm_region_borrowed_bytes"

	// fault injection and recovery. These families exist only in
	// systems running a non-empty fault plan, so fault-free snapshots
	// stay byte-identical to builds without the fault layer.
	FamFaultDrops       = "ncdsm_fault_drops_injected_total"
	FamFaultCorruptions = "ncdsm_fault_corruptions_injected_total"
	FamFaultDelays      = "ncdsm_fault_delays_injected_total"
	FamRMCRetransmits   = "ncdsm_rmc_retransmits_total"
	FamRMCAbandoned     = "ncdsm_rmc_abandoned_total"
	FamRMCStormNACKs    = "ncdsm_rmc_storm_nacks_total"
	FamRMCStalls        = "ncdsm_rmc_server_stalls_total"
	FamNodeAbandonedOps = "ncdsm_node_abandoned_ops_total"
	FamMeshReroutes     = "ncdsm_mesh_reroutes_total"
	FamMeshDetourHops   = "ncdsm_mesh_detour_hops_total"
	FamMeshUnreachable  = "ncdsm_mesh_unreachable_total"

	// bulk data plane (internal/rmc bulk ops). Registered lazily on the
	// first burst an RMC issues, so runs that never go bulk snapshot
	// byte-identically to builds without the bulk plane.
	FamRMCBulkBursts  = "ncdsm_rmc_bulk_bursts_total"
	FamRMCBulkLines   = "ncdsm_rmc_bulk_lines_total"
	FamRMCBulkFrames  = "ncdsm_rmc_bulk_frames_total"
	FamRMCBulkCopies  = "ncdsm_rmc_bulk_copies_total"
	FamRMCBulkLatency = "ncdsm_rmc_bulk_latency_seconds"

	// coherent-DSM comparator directory (internal/cohdsm). These
	// families exist only in models whose caller instrumented them (the
	// consistency lab and ablations that opt in), so output that never
	// touches the coherent comparator stays byte-identical.
	FamDirLookups       = "ncdsm_dir_lookups_total"
	FamDirInvalidations = "ncdsm_dir_invalidations_total"
	FamDirInterventions = "ncdsm_dir_interventions_total"
	FamDirWritebacks    = "ncdsm_dir_writebacks_total"
	FamDirFanout        = "ncdsm_dir_invalidation_fanout"
	// MESI-only transitions, registered only by the MESI variant.
	FamDirExclusiveGrants = "ncdsm_dir_exclusive_grants_total"
	FamDirSilentUpgrades  = "ncdsm_dir_silent_upgrades_total"

	// cluster free-memory directory (internal/memdir). Registered
	// lazily on the first directory transaction, so systems that never
	// consult the directory snapshot exactly as before.
	FamMemdirLookups      = "ncdsm_memdir_lookups_total"
	FamMemdirGrants       = "ncdsm_memdir_grants_total"
	FamMemdirRejections   = "ncdsm_memdir_rejections_total"
	FamMemdirGrantedBytes = "ncdsm_memdir_granted_bytes"
)

// NodeView is the per-node rollup the public API exposes: one row per
// simulated node with the counters most relevant to the paper's
// evaluation (RMC traffic, cache behaviour, DRAM row locality, op mix).
type NodeView struct {
	Node              int     `json:"node"`
	RMCRequests       uint64  `json:"rmc_requests"`
	RMCRetries        uint64  `json:"rmc_retries"`
	RMCForwarded      uint64  `json:"rmc_forwarded"`
	RMCAborted        uint64  `json:"rmc_aborted"`
	RMCClientUtil     float64 `json:"rmc_client_utilization"`
	CacheAccesses     uint64  `json:"cache_accesses"`
	CacheHits         uint64  `json:"cache_hits"`
	CacheMisses       uint64  `json:"cache_misses"`
	CacheFlushedDirty uint64  `json:"cache_flushed_dirty"`
	DRAMReads         uint64  `json:"dram_reads"`
	DRAMWrites        uint64  `json:"dram_writes"`
	DRAMRowHits       uint64  `json:"dram_row_hits"`
	DRAMRowConflicts  uint64  `json:"dram_row_conflicts"`
	LocalOps          uint64  `json:"local_ops"`
	RemoteOps         uint64  `json:"remote_ops"`
}

// LinkView is one directed fabric link's traffic.
type LinkView struct {
	From   int    `json:"from"`
	To     int    `json:"to"`
	Class  string `json:"class"` // "mesh" or "express"
	Frames uint64 `json:"frames"`
	Bytes  uint64 `json:"bytes"`
}

// Nodes extracts per-node rollups from the snapshot, sorted by node id.
func (s Snapshot) Nodes() []NodeView {
	byNode := make(map[int]*NodeView)
	get := func(label string) *NodeView {
		id, err := strconv.Atoi(label)
		if err != nil {
			return nil
		}
		v, ok := byNode[id]
		if !ok {
			v = &NodeView{Node: id}
			byNode[id] = v
		}
		return v
	}
	accumulate := func(name string, add func(v *NodeView, x float64)) {
		f := s.Family(name)
		if f == nil {
			return
		}
		for _, sm := range f.Samples {
			if v := get(sm.Labels.Get("node")); v != nil {
				add(v, sm.Value)
			}
		}
	}
	accumulate(FamRMCRequests, func(v *NodeView, x float64) { v.RMCRequests += uint64(x) })
	accumulate(FamRMCRetries, func(v *NodeView, x float64) { v.RMCRetries += uint64(x) })
	accumulate(FamRMCForwarded, func(v *NodeView, x float64) { v.RMCForwarded += uint64(x) })
	accumulate(FamRMCAborted, func(v *NodeView, x float64) { v.RMCAborted += uint64(x) })
	accumulate(FamRMCClientUtil, func(v *NodeView, x float64) { v.RMCClientUtil += x })
	accumulate(FamCacheAccesses, func(v *NodeView, x float64) { v.CacheAccesses += uint64(x) })
	accumulate(FamCacheHits, func(v *NodeView, x float64) { v.CacheHits += uint64(x) })
	accumulate(FamCacheMisses, func(v *NodeView, x float64) { v.CacheMisses += uint64(x) })
	accumulate(FamCacheFlushedDirty, func(v *NodeView, x float64) { v.CacheFlushedDirty += uint64(x) })
	accumulate(FamDRAMReads, func(v *NodeView, x float64) { v.DRAMReads += uint64(x) })
	accumulate(FamDRAMWrites, func(v *NodeView, x float64) { v.DRAMWrites += uint64(x) })
	accumulate(FamDRAMRowHits, func(v *NodeView, x float64) { v.DRAMRowHits += uint64(x) })
	accumulate(FamDRAMRowConflicts, func(v *NodeView, x float64) { v.DRAMRowConflicts += uint64(x) })
	accumulate(FamNodeLocalOps, func(v *NodeView, x float64) { v.LocalOps += uint64(x) })
	accumulate(FamNodeRemoteOps, func(v *NodeView, x float64) { v.RemoteOps += uint64(x) })

	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]NodeView, 0, len(ids))
	for _, id := range ids {
		out = append(out, *byNode[id])
	}
	return out
}

// Links extracts directed link traffic, sorted by (class, from, to).
func (s Snapshot) Links() []LinkView {
	type key struct {
		from, to int
		class    string
	}
	byLink := make(map[key]*LinkView)
	collect := func(name string, add func(v *LinkView, x float64)) {
		f := s.Family(name)
		if f == nil {
			return
		}
		for _, sm := range f.Samples {
			from, err1 := strconv.Atoi(sm.Labels.Get("from"))
			to, err2 := strconv.Atoi(sm.Labels.Get("to"))
			if err1 != nil || err2 != nil {
				continue
			}
			class := sm.Labels.Get("class")
			if class == "" {
				class = "mesh"
			}
			k := key{from, to, class}
			v, ok := byLink[k]
			if !ok {
				v = &LinkView{From: from, To: to, Class: class}
				byLink[k] = v
			}
			add(v, sm.Value)
		}
	}
	collect(FamMeshLinkFrames, func(v *LinkView, x float64) { v.Frames += uint64(x) })
	collect(FamMeshLinkBytes, func(v *LinkView, x float64) { v.Bytes += uint64(x) })

	keys := make([]key, 0, len(byLink))
	for k := range byLink {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.class != b.class {
			return a.class < b.class
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	out := make([]LinkView, 0, len(keys))
	for _, k := range keys {
		out = append(out, *byLink[k])
	}
	return out
}
