// Package metrics is the cluster-wide observability layer: a registry of
// counters, gauges, and fixed-bucket histograms that every simulated
// substrate (RMC, mesh, caches, DRAM, the event engine itself) reports
// into, and a deterministic Snapshot type the public API exposes.
//
// Two properties drive the design:
//
//   - Cheap on the hot path. Substrates that already keep raw uint64
//     tallies register *sampling functions* (CounterFunc/GaugeFunc) that
//     are only evaluated when a snapshot is taken — instrumenting an
//     existing counter costs nothing per event. Only histograms pay a
//     per-observation cost (one bucket scan over a fixed bound slice).
//
//   - Deterministic output. A Registry belongs to exactly one simulated
//     System (it hangs off the sim.Engine, like everything else shared),
//     snapshots order families by name and samples by label signature,
//     and Snapshot.Merge combines run snapshots pairwise in submission
//     order — so the experiment harness produces byte-identical metrics
//     at any -parallel worker count, the same contract the figures obey.
//
// Ownership follows the harness rule (see internal/stats): a Registry is
// not internally synchronized; it is owned by the goroutine running its
// simulation, and only immutable Snapshots cross goroutines.
package metrics

import (
	"cmp"
	"fmt"
	"math/bits"
	"slices"
	"sort"
	"strings"
)

// Label is one name/value pair attached to a sample.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Labels identifies a sample within a family. Order does not matter at
// registration; labels are sorted by key internally.
type Labels []Label

// L builds a Labels from alternating key/value strings:
// L("node", "3", "mc", "0").
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("metrics: L called with an odd number of strings")
	}
	ls := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		ls = append(ls, Label{Key: kv[i], Value: kv[i+1]})
	}
	return ls
}

// Get returns the value of the named label ("" when absent).
func (ls Labels) Get(key string) string {
	for _, l := range ls {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// signature is the canonical sorted key=value form used as a map key and
// as the deterministic sample sort order.
func (ls Labels) signature() string {
	sorted := ls.sorted()
	n := 0
	for _, l := range sorted {
		n += len(l.Key) + len(l.Value) + 2
	}
	var b strings.Builder
	b.Grow(n)
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sorted returns a copy with labels ordered by key.
func (ls Labels) sorted() Labels {
	out := append(Labels(nil), ls...)
	slices.SortFunc(out, func(a, b Label) int { return cmp.Compare(a.Key, b.Key) })
	return out
}

// Kind distinguishes the instrument types.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing event count owned by the
// registry. Substrates with existing tallies should prefer CounterFunc.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous level.
type Gauge struct {
	v float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v }

// Histogram is a fixed-bucket distribution of int64 samples (simulated
// time in picoseconds, by convention). Bounds are inclusive upper edges;
// samples above the last bound land in the implicit +Inf bucket.
type Histogram struct {
	bounds []int64
	counts []uint64 // len(bounds)+1; the last is the +Inf bucket
	sum    int64
	n      uint64
	// start[L] is the first bucket a sample of bit length L can land
	// in; the scan from there touches at most the couple of bounds
	// sharing that binade, making Observe O(1) on the engine's
	// every-event hot path.
	start [65]uint8
}

// indexBounds precomputes the bit-length jump table for a bound set.
func (h *Histogram) indexBounds() {
	for l := 0; l <= 64; l++ {
		var minv int64
		if l > 0 && l < 64 {
			minv = int64(1) << (l - 1)
		} else if l == 64 {
			minv = int64(1)<<62 + 1 // bit length 64 exceeds every sane bound
		}
		i := 0
		for i < len(h.bounds) && h.bounds[i] < minv {
			i++
		}
		h.start[l] = uint8(i)
	}
}

// Observe records one sample. Negative samples are clamped to zero (the
// simulator never produces them; clamping keeps the sum meaningful if a
// model bug does).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.n++
	h.sum += v
	i := int(h.start[bits.Len64(uint64(v))])
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
}

// N returns the sample count.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the total of all samples.
func (h *Histogram) Sum() int64 { return h.sum }

// NewHistogram returns a standalone histogram that is not attached to any
// registry. The sharded engine gives each shard a private unregistered
// delay histogram and merges them into one registered HistogramFunc at
// snapshot time.
func NewHistogram(bounds []int64) *Histogram {
	h := &Histogram{bounds: append([]int64(nil), bounds...), counts: make([]uint64, len(bounds)+1)}
	h.indexBounds()
	return h
}

// Reset zeroes every bucket, the sum, and the count.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum = 0
	h.n = 0
}

// AddAll folds another histogram with identical bounds into h.
func (h *Histogram) AddAll(o *Histogram) {
	if len(o.counts) != len(h.counts) {
		panic("metrics: AddAll across mismatched bucket layouts")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	h.n += o.n
}

// TimeBuckets are the default latency bounds in picoseconds: 100 ns to
// 10 ms in a 1-2-5 progression, spanning a cache hit to a congested
// remote round trip with headroom for swap-path ablations.
func TimeBuckets() []int64 {
	const ns = int64(1000)
	return []int64{
		100 * ns, 200 * ns, 500 * ns,
		1000 * ns, 2000 * ns, 5000 * ns,
		10_000 * ns, 20_000 * ns, 50_000 * ns,
		100_000 * ns, 1_000_000 * ns, 10_000_000 * ns,
	}
}

// series is one labeled instrument inside a family.
type series struct {
	labels  Labels
	ctr     *Counter
	ctrFn   func() uint64
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
	histFn  func() *Histogram
}

// family groups series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []int64
	series map[string]*series
}

// Registry holds one simulation's instruments. Create with NewRegistry;
// the zero value is not usable.
type Registry struct {
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name, help string, kind Kind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: family %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, ls Labels) *Counter {
	f := r.family(name, help, KindCounter)
	sig := ls.signature()
	if s, ok := f.series[sig]; ok && s.ctr != nil {
		return s.ctr
	}
	c := &Counter{}
	f.series[sig] = &series{labels: ls.sorted(), ctr: c}
	return c
}

// CounterFunc registers a sampling function for name+labels: fn is read
// only when a snapshot is taken, so instrumenting an existing tally has
// no hot-path cost. Re-registering replaces the function (last wins).
func (r *Registry) CounterFunc(name, help string, ls Labels, fn func() uint64) {
	f := r.family(name, help, KindCounter)
	f.series[ls.signature()] = &series{labels: ls.sorted(), ctrFn: fn}
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, ls Labels) *Gauge {
	f := r.family(name, help, KindGauge)
	sig := ls.signature()
	if s, ok := f.series[sig]; ok && s.gauge != nil {
		return s.gauge
	}
	g := &Gauge{}
	f.series[sig] = &series{labels: ls.sorted(), gauge: g}
	return g
}

// GaugeFunc registers a sampling function evaluated at snapshot time.
func (r *Registry) GaugeFunc(name, help string, ls Labels, fn func() float64) {
	f := r.family(name, help, KindGauge)
	f.series[ls.signature()] = &series{labels: ls.sorted(), gaugeFn: fn}
}

// Histogram returns the histogram for name+labels with the given bounds,
// creating it on first use. Bounds must be sorted ascending; every
// series of a family shares the family's bounds (the first registration
// fixes them).
func (r *Registry) Histogram(name, help string, ls Labels, bounds []int64) *Histogram {
	f := r.family(name, help, KindHistogram)
	if f.bounds == nil {
		if len(bounds) > 255 {
			panic(fmt.Sprintf("metrics: %s has %d bounds (max 255)", name, len(bounds)))
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("metrics: %s bounds not ascending at %d", name, i))
			}
		}
		f.bounds = append([]int64(nil), bounds...)
	}
	sig := ls.signature()
	if s, ok := f.series[sig]; ok && s.hist != nil {
		return s.hist
	}
	h := &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	h.indexBounds()
	f.series[sig] = &series{labels: ls.sorted(), hist: h}
	return h
}

// HistogramFunc registers a sampling function for a histogram series: fn
// is evaluated only at snapshot time and must return a histogram whose
// bounds match the family's. The sharded engine uses this to present the
// per-shard delay histograms as one merged family.
func (r *Registry) HistogramFunc(name, help string, ls Labels, bounds []int64, fn func() *Histogram) {
	f := r.family(name, help, KindHistogram)
	if f.bounds == nil {
		f.bounds = append([]int64(nil), bounds...)
	}
	f.series[ls.signature()] = &series{labels: ls.sorted(), histFn: fn}
}

// Snapshot materializes every instrument into an immutable, fully
// ordered Snapshot: families sorted by name, samples by label
// signature. Sampling functions are evaluated here.
func (r *Registry) Snapshot() Snapshot {
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	snap := Snapshot{Families: make([]Family, 0, len(names))}
	for _, n := range names {
		f := r.families[n]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		out := Family{Name: f.name, Help: f.help, Kind: f.kind}
		for _, sig := range sigs {
			s := f.series[sig]
			sample := Sample{Labels: s.labels}
			switch {
			case s.ctr != nil:
				sample.Value = float64(s.ctr.Value())
			case s.ctrFn != nil:
				sample.Value = float64(s.ctrFn())
			case s.gauge != nil:
				sample.Value = s.gauge.Value()
			case s.gaugeFn != nil:
				sample.Value = s.gaugeFn()
			case s.hist != nil:
				sample.Buckets = make([]Bucket, len(s.hist.bounds)+1)
				for i, b := range s.hist.bounds {
					sample.Buckets[i] = Bucket{Le: b, Count: s.hist.counts[i]}
				}
				sample.Buckets[len(s.hist.bounds)] = Bucket{Le: BucketInf, Count: s.hist.counts[len(s.hist.bounds)]}
				sample.Sum = s.hist.sum
				sample.Count = s.hist.n
			case s.histFn != nil:
				h := s.histFn()
				sample.Buckets = make([]Bucket, len(h.bounds)+1)
				for i, b := range h.bounds {
					sample.Buckets[i] = Bucket{Le: b, Count: h.counts[i]}
				}
				sample.Buckets[len(h.bounds)] = Bucket{Le: BucketInf, Count: h.counts[len(h.bounds)]}
				sample.Sum = h.sum
				sample.Count = h.n
			}
			out.Samples = append(out.Samples, sample)
		}
		snap.Families = append(snap.Families, out)
	}
	return snap
}
