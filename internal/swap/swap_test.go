package swap

import (
	"testing"
	"testing/quick"

	"repro/internal/params"
)

func TestNewPageCacheValidation(t *testing.T) {
	if _, err := NewPageCache(0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestTouchHitMiss(t *testing.T) {
	c, err := NewPageCache(2)
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Touch(1, false); r.Hit {
		t.Error("cold touch hit")
	}
	if r := c.Touch(1, false); !r.Hit {
		t.Error("warm touch missed")
	}
	if c.Hits != 1 || c.Misses != 1 || c.Resident() != 1 {
		t.Errorf("counters: hits=%d misses=%d resident=%d", c.Hits, c.Misses, c.Resident())
	}
	if !c.IsResident(1) || c.IsResident(2) {
		t.Error("IsResident wrong")
	}
	if c.Capacity() != 2 {
		t.Error("Capacity wrong")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c, _ := NewPageCache(2)
	c.Touch(1, false)
	c.Touch(2, false)
	c.Touch(1, false) // 1 is MRU
	r := c.Touch(3, false)
	if !r.DidEvict || r.Evicted != 2 {
		t.Errorf("evicted %v, want page 2", r)
	}
	if !c.IsResident(1) || c.IsResident(2) {
		t.Error("LRU order violated")
	}
}

func TestDirtyTracking(t *testing.T) {
	c, _ := NewPageCache(1)
	c.Touch(1, true)
	r := c.Touch(2, false)
	if !r.EvictedDirty {
		t.Error("dirty eviction not flagged")
	}
	if c.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d", c.DirtyEvictions)
	}
	// A read-only page evicts clean.
	r = c.Touch(3, false)
	if r.EvictedDirty {
		t.Error("clean page flagged dirty")
	}
	// Write to a resident page marks it dirty.
	c.Touch(3, true)
	if r := c.Touch(4, false); !r.EvictedDirty {
		t.Error("late write lost")
	}
}

func TestFlush(t *testing.T) {
	c, _ := NewPageCache(8)
	c.Touch(1, true)
	c.Touch(2, false)
	c.Touch(3, true)
	if dirty := c.Flush(); dirty != 2 {
		t.Errorf("Flush returned %d dirty, want 2", dirty)
	}
	if c.Resident() != 0 || c.IsResident(1) {
		t.Error("flush left pages resident")
	}
}

func TestResidencyNeverExceedsCapacityProperty(t *testing.T) {
	f := func(pages []uint16, capSel uint8) bool {
		capacity := int(capSel%16) + 1
		c, err := NewPageCache(capacity)
		if err != nil {
			return false
		}
		for _, p := range pages {
			c.Touch(uint64(p%64), p%3 == 0)
			if c.Resident() > capacity {
				return false
			}
		}
		return c.Hits+c.Misses == uint64(len(pages))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeviceCosts(t *testing.T) {
	p := params.Default()
	r1 := RemoteDevice{P: p, Hops: 1}
	r3 := RemoteDevice{P: p, Hops: 3}
	if r3.FaultCost() <= r1.FaultCost() {
		t.Error("farther swap device not slower")
	}
	if r1.FaultCost() != p.SwapPageTransfer+2*p.HopLatency {
		t.Errorf("remote fault cost = %d", r1.FaultCost())
	}
	d := DiskDevice{P: p}
	if d.FaultCost() != p.DiskLatency || d.WritebackCost() != p.DiskLatency {
		t.Error("disk costs wrong")
	}
	if r1.Name() == d.Name() {
		t.Error("devices share a name")
	}
}
