// Package swap implements the remote-swap comparator the paper measures
// against (and its disk-swap ancestor): page-granularity paging where a
// touched non-resident page costs an OS trap plus a whole-page transfer,
// the page then stays resident until LRU eviction, and dirty evictions
// pay the transfer again on the way out. This is the mechanism behind
// Equation (1); when the working set outgrows residency, the thrashing
// the paper's Figures 10 and 11 show falls out by construction.
package swap

import (
	"container/list"
	"fmt"

	"repro/internal/params"
)

// PageCache is an LRU set of resident pages with dirty tracking.
type PageCache struct {
	capacity int
	lru      *list.List               // front = MRU; values are pageIDs
	pages    map[uint64]*list.Element // pageID -> element
	dirty    map[uint64]bool

	// Hits, Misses, Evictions, and DirtyEvictions count events.
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// NewPageCache builds a cache holding capacity pages.
func NewPageCache(capacity int) (*PageCache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("swap: page cache capacity %d", capacity)
	}
	return &PageCache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[uint64]*list.Element),
		dirty:    make(map[uint64]bool),
	}, nil
}

// Capacity returns the resident-page limit.
func (c *PageCache) Capacity() int { return c.capacity }

// Resident returns the current resident-page count.
func (c *PageCache) Resident() int { return c.lru.Len() }

// IsResident reports whether a page is currently resident.
func (c *PageCache) IsResident(page uint64) bool {
	_, ok := c.pages[page]
	return ok
}

// TouchResult describes what one page touch did.
type TouchResult struct {
	Hit bool
	// Evicted and EvictedDirty describe the page pushed out, if any.
	Evicted      uint64
	DidEvict     bool
	EvictedDirty bool
}

// Touch accesses a page, faulting it in if absent and evicting LRU if
// over capacity. write marks the page dirty.
func (c *PageCache) Touch(page uint64, write bool) TouchResult {
	if el, ok := c.pages[page]; ok {
		c.lru.MoveToFront(el)
		if write {
			c.dirty[page] = true
		}
		c.Hits++
		return TouchResult{Hit: true}
	}
	c.Misses++
	var res TouchResult
	if c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		victim := back.Value.(uint64)
		c.lru.Remove(back)
		delete(c.pages, victim)
		res.Evicted, res.DidEvict = victim, true
		res.EvictedDirty = c.dirty[victim]
		delete(c.dirty, victim)
		c.Evictions++
		if res.EvictedDirty {
			c.DirtyEvictions++
		}
	}
	c.pages[page] = c.lru.PushFront(page)
	if write {
		c.dirty[page] = true
	}
	return res
}

// Flush drops every resident page, returning how many were dirty.
func (c *PageCache) Flush() int {
	dirty := len(c.dirty)
	c.lru.Init()
	c.pages = make(map[uint64]*list.Element)
	c.dirty = make(map[uint64]bool)
	return dirty
}

// Device prices a page fault's backing transfer.
type Device interface {
	// FaultCost is the cost of bringing one page in.
	FaultCost() params.Duration
	// WritebackCost is the cost of pushing one dirty page out.
	WritebackCost() params.Duration
	// Name identifies the device in reports.
	Name() string
}

// RemoteDevice is remote swap: the page moves over the same fabric the
// RMC uses, as one DMA'd page transfer plus per-hop latency.
type RemoteDevice struct {
	P    params.Params
	Hops int
}

// FaultCost implements Device.
func (d RemoteDevice) FaultCost() params.Duration {
	return d.P.SwapPageTransfer + 2*params.Duration(d.Hops)*d.P.HopLatency
}

// WritebackCost implements Device.
func (d RemoteDevice) WritebackCost() params.Duration {
	return d.P.SwapPageTransfer + params.Duration(d.Hops)*d.P.HopLatency
}

// Name implements Device.
func (d RemoteDevice) Name() string { return "remote-swap" }

// DiskDevice is classic disk swap.
type DiskDevice struct {
	P params.Params
}

// FaultCost implements Device.
func (d DiskDevice) FaultCost() params.Duration { return d.P.DiskLatency }

// WritebackCost implements Device.
func (d DiskDevice) WritebackCost() params.Duration { return d.P.DiskLatency }

// Name implements Device.
func (d DiskDevice) Name() string { return "disk-swap" }
