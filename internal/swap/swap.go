// Package swap implements the remote-swap comparator the paper measures
// against (and its disk-swap ancestor): page-granularity paging where a
// touched non-resident page costs an OS trap plus a whole-page transfer,
// the page then stays resident until LRU eviction, and dirty evictions
// pay the transfer again on the way out. This is the mechanism behind
// Equation (1); when the working set outgrows residency, the thrashing
// the paper's Figures 10 and 11 show falls out by construction.
package swap

import (
	"fmt"

	"repro/internal/params"
)

// nilSlot terminates the intrusive list and the free list.
const nilSlot = int32(-1)

// pageEntry is one resident-page slot. Entries live in a flat array
// preallocated at construction; prev/next are slot indexes, so steady-
// state Touch traffic performs no allocation and no pointer-heavy list
// manipulation.
type pageEntry struct {
	page       uint64
	prev, next int32
	dirty      bool
}

// PageCache is an LRU set of resident pages with dirty tracking. The
// recency order is an intrusive doubly-linked list threaded through a
// fixed slot array (head = MRU, tail = LRU); page → slot resolution is
// an open-addressed linear-probing table of slot indexes — at most
// capacity live keys in a table at most half full, so probes are short
// and the hot Touch path never calls into the runtime map. Eviction
// order is identical to the classic container/list implementation this
// replaced — the least recently touched page always goes first.
type PageCache struct {
	capacity   int
	entries    []pageEntry
	idx        []int32 // open-addressed page→slot table; nilSlot = empty
	idxShift   uint    // 64 - log2(len(idx)): multiplicative-hash shift
	resident   int
	head, tail int32
	free       int32 // next-linked free list of unused slots

	// Hits, Misses, Evictions, and DirtyEvictions count events.
	Hits, Misses, Evictions, DirtyEvictions uint64
}

// NewPageCache builds a cache holding capacity pages.
func NewPageCache(capacity int) (*PageCache, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("swap: page cache capacity %d", capacity)
	}
	// Size the index at the next power of two ≥ 2×capacity (min 16) so
	// its load factor never exceeds one half.
	idxLen, shift := 16, uint(60)
	for idxLen < 2*capacity {
		idxLen *= 2
		shift--
	}
	c := &PageCache{
		capacity: capacity,
		entries:  make([]pageEntry, capacity),
		idx:      make([]int32, idxLen),
		idxShift: shift,
	}
	c.reset()
	return c, nil
}

// reset empties the list, the index, and chains every slot onto the
// free list.
func (c *PageCache) reset() {
	c.head, c.tail = nilSlot, nilSlot
	c.resident = 0
	for i := range c.idx {
		c.idx[i] = nilSlot
	}
	for i := range c.entries {
		c.entries[i].next = int32(i) + 1
	}
	c.entries[len(c.entries)-1].next = nilSlot
	c.free = 0
}

// idxHome returns a page's preferred index position (Fibonacci
// multiplicative hash; the probe sequence walks forward from here).
func (c *PageCache) idxHome(page uint64) uint64 {
	return (page * 0x9E3779B97F4A7C15) >> c.idxShift
}

// idxLookup returns the slot holding page, or nilSlot.
func (c *PageCache) idxLookup(page uint64) int32 {
	mask := uint64(len(c.idx) - 1)
	for i := c.idxHome(page); ; i = (i + 1) & mask {
		s := c.idx[i]
		if s == nilSlot {
			return nilSlot
		}
		if c.entries[s].page == page {
			return s
		}
	}
}

// idxInsert records page → slot. The table is never more than half
// full, so a free position always exists.
func (c *PageCache) idxInsert(page uint64, slot int32) {
	mask := uint64(len(c.idx) - 1)
	i := c.idxHome(page)
	for c.idx[i] != nilSlot {
		i = (i + 1) & mask
	}
	c.idx[i] = slot
}

// idxDelete removes page from the table by backward-shift deletion,
// keeping every remaining entry reachable from its home position
// without tombstones.
func (c *PageCache) idxDelete(page uint64) {
	mask := uint64(len(c.idx) - 1)
	i := c.idxHome(page)
	for {
		s := c.idx[i]
		if s == nilSlot {
			return // not present
		}
		if c.entries[s].page == page {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		j = (j + 1) & mask
		s := c.idx[j]
		if s == nilSlot {
			break
		}
		// Shift the entry at j into the hole at i unless its home lies
		// cyclically inside (i, j] — moving such an entry before its home
		// would make it unreachable.
		h := c.idxHome(c.entries[s].page)
		if (j-h)&mask >= (j-i)&mask {
			c.idx[i] = s
			i = j
		}
	}
	c.idx[i] = nilSlot
}

// Capacity returns the resident-page limit.
func (c *PageCache) Capacity() int { return c.capacity }

// Resident returns the current resident-page count.
func (c *PageCache) Resident() int { return c.resident }

// IsResident reports whether a page is currently resident.
func (c *PageCache) IsResident(page uint64) bool {
	return c.idxLookup(page) != nilSlot
}

// TouchResult describes what one page touch did.
type TouchResult struct {
	Hit bool
	// Evicted and EvictedDirty describe the page pushed out, if any.
	Evicted      uint64
	DidEvict     bool
	EvictedDirty bool
}

// moveToFront makes slot the MRU entry.
func (c *PageCache) moveToFront(slot int32) {
	if c.head == slot {
		return
	}
	e := &c.entries[slot]
	// Unlink (slot is not the head, so it has a prev).
	c.entries[e.prev].next = e.next
	if e.next != nilSlot {
		c.entries[e.next].prev = e.prev
	} else {
		c.tail = e.prev
	}
	// Relink at the head.
	e.prev = nilSlot
	e.next = c.head
	c.entries[c.head].prev = slot
	c.head = slot
}

// Touch accesses a page, faulting it in if absent and evicting LRU if
// over capacity. write marks the page dirty.
func (c *PageCache) Touch(page uint64, write bool) TouchResult {
	if slot := c.idxLookup(page); slot != nilSlot {
		c.moveToFront(slot)
		if write {
			c.entries[slot].dirty = true
		}
		c.Hits++
		return TouchResult{Hit: true}
	}
	c.Misses++
	var res TouchResult
	if c.resident >= c.capacity {
		victim := c.tail
		e := &c.entries[victim]
		res.Evicted, res.DidEvict, res.EvictedDirty = e.page, true, e.dirty
		c.tail = e.prev
		if c.tail != nilSlot {
			c.entries[c.tail].next = nilSlot
		} else {
			c.head = nilSlot
		}
		c.idxDelete(e.page)
		c.resident--
		e.next = c.free
		c.free = victim
		c.Evictions++
		if res.EvictedDirty {
			c.DirtyEvictions++
		}
	}
	slot := c.free
	c.free = c.entries[slot].next
	c.entries[slot] = pageEntry{page: page, prev: nilSlot, next: c.head, dirty: write}
	if c.head != nilSlot {
		c.entries[c.head].prev = slot
	} else {
		c.tail = slot
	}
	c.head = slot
	c.idxInsert(page, slot)
	c.resident++
	return res
}

// Flush drops every resident page, returning how many were dirty.
func (c *PageCache) Flush() int {
	return c.FlushDirty(nil)
}

// FlushDirty empties the cache like Flush, but first calls fn (when
// non-nil) for each dirty page in recency order (MRU first) — the
// deterministic order writeback pricing charges the backing memory in.
func (c *PageCache) FlushDirty(fn func(page uint64)) int {
	dirty := 0
	for slot := c.head; slot != nilSlot; slot = c.entries[slot].next {
		e := &c.entries[slot]
		if e.dirty {
			dirty++
			if fn != nil {
				fn(e.page)
			}
		}
	}
	c.reset()
	return dirty
}

// Device prices a page fault's backing transfer.
type Device interface {
	// FaultCost is the cost of bringing one page in.
	FaultCost() params.Duration
	// WritebackCost is the cost of pushing one dirty page out.
	WritebackCost() params.Duration
	// Name identifies the device in reports.
	Name() string
}

// RemoteDevice is remote swap: the page moves over the same fabric the
// RMC uses, as one DMA'd page transfer plus per-hop latency.
type RemoteDevice struct {
	P    params.Params
	Hops int
}

// FaultCost implements Device.
func (d RemoteDevice) FaultCost() params.Duration {
	return d.P.SwapPageTransfer + 2*params.Duration(d.Hops)*d.P.HopLatency
}

// WritebackCost implements Device.
func (d RemoteDevice) WritebackCost() params.Duration {
	return d.P.SwapPageTransfer + params.Duration(d.Hops)*d.P.HopLatency
}

// Name implements Device.
func (d RemoteDevice) Name() string { return "remote-swap" }

// DiskDevice is classic disk swap.
type DiskDevice struct {
	P params.Params
}

// FaultCost implements Device.
func (d DiskDevice) FaultCost() params.Duration { return d.P.DiskLatency }

// WritebackCost implements Device.
func (d DiskDevice) WritebackCost() params.Duration { return d.P.DiskLatency }

// Name implements Device.
func (d DiskDevice) Name() string { return "disk-swap" }
