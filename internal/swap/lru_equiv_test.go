package swap

import (
	"container/list"
	"math/rand"
	"testing"
	"testing/quick"
)

// oldPageCache is a verbatim oracle copy of the container/list + two-map
// LRU the intrusive implementation replaced. The property tests below
// replay seeded touch/flush interleavings against it event for event.
type oldPageCache struct {
	capacity int
	lru      *list.List
	pages    map[uint64]*list.Element
	dirty    map[uint64]bool

	Hits, Misses, Evictions, DirtyEvictions uint64
}

func newOldPageCache(capacity int) *oldPageCache {
	return &oldPageCache{
		capacity: capacity,
		lru:      list.New(),
		pages:    make(map[uint64]*list.Element),
		dirty:    make(map[uint64]bool),
	}
}

func (c *oldPageCache) Touch(page uint64, write bool) TouchResult {
	if el, ok := c.pages[page]; ok {
		c.lru.MoveToFront(el)
		if write {
			c.dirty[page] = true
		}
		c.Hits++
		return TouchResult{Hit: true}
	}
	c.Misses++
	var res TouchResult
	if c.lru.Len() >= c.capacity {
		back := c.lru.Back()
		victim := back.Value.(uint64)
		c.lru.Remove(back)
		delete(c.pages, victim)
		res.Evicted, res.DidEvict = victim, true
		res.EvictedDirty = c.dirty[victim]
		delete(c.dirty, victim)
		c.Evictions++
		if res.EvictedDirty {
			c.DirtyEvictions++
		}
	}
	c.pages[page] = c.lru.PushFront(page)
	if write {
		c.dirty[page] = true
	}
	return res
}

func (c *oldPageCache) Flush() int {
	dirty := len(c.dirty)
	c.lru.Init()
	c.pages = make(map[uint64]*list.Element)
	c.dirty = make(map[uint64]bool)
	return dirty
}

// TestLRUOrderEquivalenceProperty: the intrusive index-based list makes
// exactly the same eviction decisions, in the same order, with the same
// dirty flags and counters, as the old implementation — on arbitrary
// touch sequences at arbitrary capacities.
func TestLRUOrderEquivalenceProperty(t *testing.T) {
	f := func(trace []uint16, capSel uint8) bool {
		capacity := int(capSel%24) + 1
		neu, err := NewPageCache(capacity)
		if err != nil {
			return false
		}
		old := newOldPageCache(capacity)
		for i, v := range trace {
			page := uint64(v % 97)
			write := v%3 == 0
			rn := neu.Touch(page, write)
			ro := old.Touch(page, write)
			if rn != ro {
				t.Logf("step %d: Touch(%d,%v) = %+v, old %+v", i, page, write, rn, ro)
				return false
			}
		}
		if neu.Hits != old.Hits || neu.Misses != old.Misses ||
			neu.Evictions != old.Evictions || neu.DirtyEvictions != old.DirtyEvictions {
			return false
		}
		if neu.Resident() != old.lru.Len() {
			return false
		}
		return neu.Flush() == old.Flush()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLRUEquivalenceLongSeededRun drives both implementations through a
// long mixed workload — including mid-stream flushes — far past the
// short traces quick.Check generates.
func TestLRUEquivalenceLongSeededRun(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, capacity := range []int{1, 2, 7, 64, 257} {
		neu, err := NewPageCache(capacity)
		if err != nil {
			t.Fatal(err)
		}
		old := newOldPageCache(capacity)
		for i := 0; i < 50_000; i++ {
			page := uint64(rng.Intn(3 * capacity))
			write := rng.Intn(4) == 0
			if rn, ro := neu.Touch(page, write), old.Touch(page, write); rn != ro {
				t.Fatalf("capacity %d step %d: %+v vs old %+v", capacity, i, rn, ro)
			}
			if rng.Intn(10_000) == 0 {
				if dn, do := neu.Flush(), old.Flush(); dn != do {
					t.Fatalf("capacity %d step %d: Flush %d vs old %d", capacity, i, dn, do)
				}
			}
		}
		if neu.Hits != old.Hits || neu.Misses != old.Misses ||
			neu.Evictions != old.Evictions || neu.DirtyEvictions != old.DirtyEvictions {
			t.Fatalf("capacity %d: counters diverged", capacity)
		}
	}
}

// TestFlushDirtyOrder: FlushDirty reports dirty pages MRU-first and
// leaves the cache usable and empty.
func TestFlushDirtyOrder(t *testing.T) {
	c, err := NewPageCache(4)
	if err != nil {
		t.Fatal(err)
	}
	c.Touch(10, true)
	c.Touch(11, false)
	c.Touch(12, true)
	c.Touch(10, false) // 10 back to MRU; order now 10, 12, 11
	var got []uint64
	if dirty := c.FlushDirty(func(p uint64) { got = append(got, p) }); dirty != 2 {
		t.Fatalf("FlushDirty = %d dirty, want 2", dirty)
	}
	if len(got) != 2 || got[0] != 10 || got[1] != 12 {
		t.Fatalf("dirty pages %v, want [10 12] (MRU first)", got)
	}
	if c.Resident() != 0 || c.IsResident(10) {
		t.Error("FlushDirty left pages resident")
	}
	// The cache is immediately reusable.
	if r := c.Touch(10, false); r.Hit {
		t.Error("flushed page still hit")
	}
	if c.Resident() != 1 {
		t.Error("post-flush touch not resident")
	}
}
