package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
)

// AblationFabric compares the prototype's direct 2D mesh against
// HyperTransport-over-Ethernet — the standardized option the paper notes
// would "allow the use of standard Ethernet switches". The random
// microbenchmark runs single-threaded from node 1 against memory servers
// at growing mesh distance: the mesh's latency grows with placement, the
// switched fabric is distance-blind but pays NIC + switch costs on every
// line, so the curves cross — the quantitative version of the paper's
// direct-network-vs-commodity-switch trade.
func AblationFabric(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationF", "Interconnect: direct 2D mesh vs HT-over-Ethernet",
		"mesh hops to memory server", "latency per access (µs)")
	meshSeries := fig.AddSeries("2D mesh (prototype)")
	htoeSeries := fig.AddSeries("HT-over-Ethernet (switched)")

	accesses := o.scaled(20000, 400)
	const maxHops = 6
	type hopPoint struct {
		mesh, htoe         float64
		meshSnap, htoeSnap metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, maxHops, func(i int) (hopPoint, error) {
		servers, err := serversAt(o, 1, i+1, 1)
		if err != nil {
			return hopPoint{}, err
		}

		meshRun := microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: accesses}
		res, err := meshRun.run(o)
		if err != nil {
			return hopPoint{}, err
		}
		pt := hopPoint{mesh: res.MeanLatency / float64(params.Microsecond), meshSnap: res.Metrics}

		oh := o
		oh.P.Fabric = params.FabricHToE
		htoeRun := microRun{Client: 1, Servers: servers, Threads: 1, AccessesPerThread: accesses}
		res, err = htoeRun.run(oh)
		if err != nil {
			return hopPoint{}, err
		}
		pt.htoe = res.MeanLatency / float64(params.Microsecond)
		pt.htoeSnap = res.Metrics
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pt := range points {
		o.addMetrics(pt.meshSnap)
		o.addMetrics(pt.htoeSnap)
		meshSeries.Add(float64(i+1), pt.mesh)
		htoeSeries.Add(float64(i+1), pt.htoe)
	}
	fig.Note("the switched fabric is distance-blind; the mesh wins while servers sit nearby")

	// Where would the curves cross? Extrapolate the mesh's per-hop slope
	// against the switch's constant.
	m, e := meshSeries.Points, htoeSeries.Points
	if len(m) >= 2 {
		slope := (m[len(m)-1].Y - m[0].Y) / (m[len(m)-1].X - m[0].X)
		konst := e[0].Y
		if slope > 0 {
			crossHops := (konst - (m[0].Y - slope*m[0].X)) / slope
			fig.Note(fmt.Sprintf("extrapolated crossover at ~%.0f mesh hops — beyond this 16-node cluster's diameter of 6, which is why the prototype's direct mesh is the right fabric at this scale", crossHops))
		}
	}
	return fig, nil
}
