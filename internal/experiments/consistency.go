package experiments

import (
	"fmt"

	"repro/internal/consistency"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/runner"
	"repro/internal/stats"
)

// ConsistencyCost is experiment H: the price of consistency strength.
// The same seeded program of reads and writes over a small set of
// shared hot lines — with periodic release/acquire fences, the shape a
// data-race-free application actually issues — runs under each protocol
// of the consistency lab at growing node counts, and the figure plots
// mean latency per operation. The expected separation (the shape of
// arXiv:1109.5153's SC-vs-weak gap): directory MSI pays invalidations
// and interventions that grow with the sharing degree, the non-coherent
// RMC mode pays a flat remote round trip, and release consistency pays
// only at the fences. The MESI column prices the E-state trade inside
// the coherent family: silent E→M upgrades make private read-then-write
// cheaper than MSI while read-shared lines pay an extra intervention.
// Every coherent (msi, mesi) history is self-validated — directory
// invariants plus the per-location linearizability check — so the cost
// curve is backed by a machine-checked consistency claim, not asserted.
func ConsistencyCost(o Options) (*stats.Figure, error) {
	fig := stats.NewFigure("ablationH", "Cost of consistency strength vs nodes sharing the data",
		"nodes issuing the shared-line program", "mean latency per op (µs)")
	series := make(map[string]*stats.Series)
	for _, name := range consistency.Names() {
		proto, err := consistency.NewProtocol(name, o.P, 2)
		if err != nil {
			return nil, err
		}
		series[name] = fig.AddSeries(fmt.Sprintf("%s (%s)", name, proto.Model()))
	}

	opsPerNode := o.scaled(2000, 50)
	const hotLines = 8
	nodeCounts := []int{2, 4, 8, 12, 16}
	type costPoint struct {
		us   map[string]float64
		snap metrics.Snapshot
	}
	points, err := runner.Map(o.Parallel, len(nodeCounts), func(i int) (costPoint, error) {
		nodes := nodeCounts[i]
		// One program and one schedule per node count, shared by every
		// protocol so the cost comparison is apples-to-apples.
		prog := consistency.RandomProgram(o.Seed+int64(nodes)*7919, nodes, opsPerNode, hotLines, 0.3, true)
		sched := consistency.RandomSchedule(o.Seed+int64(nodes)*104729, prog)
		pt := costPoint{us: make(map[string]float64)}
		reg := metrics.NewRegistry()
		for _, name := range consistency.Names() {
			proto, err := consistency.NewProtocol(name, o.P, nodes)
			if err != nil {
				return costPoint{}, err
			}
			if name == "msi" {
				// Surface the directory's coherence traffic in the
				// metrics output (invalidations, interventions,
				// fan-out) — a fresh registry per point keeps the
				// simulation single-threaded and the merge ordered.
				// Only the msi directory is instrumented: mesi would
				// re-register the same families, and the figure needs
				// one canonical coherent-traffic column.
				proto.(consistency.Directoried).Directory().Instrument(reg)
			}
			h, err := consistency.RunProgram(proto, prog, sched)
			if err != nil {
				return costPoint{}, err
			}
			if err := proto.SelfCheck(); err != nil {
				return costPoint{}, err
			}
			if _, coherent := proto.(consistency.Directoried); coherent {
				// Both coherent comparators promise linearizability;
				// their cost curves land in the figure only with the
				// claim machine-checked.
				if ok, reason := consistency.CheckPerLocation(h); !ok {
					return costPoint{}, fmt.Errorf("experiments: %s history not linearizable at %d nodes: %s", name, nodes, reason)
				}
			}
			pt.us[name] = usPerOpCost(h)
		}
		pt.snap = reg.Snapshot()
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	for i, nodes := range nodeCounts {
		o.addMetrics(points[i].snap)
		for _, name := range consistency.Names() {
			series[name].Add(float64(nodes), points[i].us[name])
		}
	}
	fig.Note("same seeded DRF program per node count under every protocol; the coherent pair (msi, mesi) pays sharing-degree coherence traffic — mesi trading silent E→M upgrades against extra E interventions — rmc a flat round trip, rc only at the fences (coherent histories machine-checked per-location linearizable)")
	return fig, nil
}

// usPerOpCost converts a history's total simulated cost to microseconds
// per read/write.
func usPerOpCost(h consistency.History) float64 {
	ops := h.Ops()
	if ops == 0 {
		return 0
	}
	return float64(h.TotalCost()) / float64(ops) / float64(params.Microsecond)
}
