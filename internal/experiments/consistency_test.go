package experiments

import (
	"testing"

	"repro/internal/metrics"
)

// TestConsistencyCostShape checks experiment H produces the separation
// the consistency lab predicts: at meaningful sharing degrees the
// sequentially consistent directory protocol is the most expensive per
// op, the TSO posted-write mode sits in the middle, and release
// consistency — which pays only at fences — is cheapest; and the MSI
// curve grows with the number of sharers.
func TestConsistencyCostShape(t *testing.T) {
	fig, err := ConsistencyCost(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	msi := ys(series(t, fig, "msi (sequential consistency)"))
	mesi := ys(series(t, fig, "mesi (sequential consistency)"))
	rmc := ys(series(t, fig, "rmc (total store order (posted writes))"))
	rc := ys(series(t, fig, "rc (release consistency)"))
	if len(msi) != 5 || len(mesi) != 5 || len(rmc) != 5 || len(rc) != 5 {
		t.Fatalf("series lengths %d/%d/%d/%d, want 5", len(msi), len(mesi), len(rmc), len(rc))
	}
	for i := range msi {
		if msi[i] <= 0 || mesi[i] <= 0 || rmc[i] <= 0 || rc[i] <= 0 {
			t.Fatalf("nonpositive point at %d: msi=%v mesi=%v rmc=%v rc=%v", i, msi[i], mesi[i], rmc[i], rc[i])
		}
		// MESI stays in the coherent cost family: same order of
		// magnitude as MSI, never cheaper than release consistency —
		// the E state shifts coherent cost, it does not remove it.
		if mesi[i] <= rc[i] {
			t.Errorf("point %d: mesi (%.3f) cheaper than release consistency (%.3f)", i, mesi[i], rc[i])
		}
		if rc[i] >= rmc[i] {
			t.Errorf("point %d: release consistency (%.3f) not cheaper than TSO (%.3f)", i, rc[i], rmc[i])
		}
	}
	last := len(msi) - 1
	if msi[last] <= rmc[last] {
		t.Errorf("at 16 nodes MSI (%.3f) not above rmc (%.3f)", msi[last], rmc[last])
	}
	// Coherence traffic grows with the sharing degree; the weak modes
	// grow only with hop distance.
	if msi[last] < 2*msi[0] {
		t.Errorf("MSI cost did not grow with sharers: %v", msi)
	}
}

// TestConsistencyCostRerunIdentity is the figure's determinism
// acceptance: byte-identical renderings across reruns (parallel-count
// invariance is covered registry-wide by TestParallelDeterminism).
func TestConsistencyCostRerunIdentity(t *testing.T) {
	o := testOptions()
	a, err := ConsistencyCost(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ConsistencyCost(o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Errorf("figure differs across reruns:\n--- first ---\n%s\n--- second ---\n%s", a.Render(), b.Render())
	}
}

// TestConsistencyCostMetrics checks the MSI side surfaces its directory
// traffic through the merged metrics accumulator — and that the
// families exist only because experiment H instrumented them.
func TestConsistencyCostMetrics(t *testing.T) {
	snap := runMerged(t, "H", 0)
	for _, fam := range []string{
		metrics.FamDirLookups,
		metrics.FamDirInvalidations,
		metrics.FamDirInterventions,
		metrics.FamDirWritebacks,
		metrics.FamDirFanout,
	} {
		if snap.Total(fam) == 0 {
			t.Errorf("family %s is zero after experiment H", fam)
		}
	}
}
