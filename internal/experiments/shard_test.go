package experiments

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// stripShardSchedule removes the ncdsm_shard_* families from a
// Prometheus rendering. Barrier and elision counts are properties of
// the multi-shard schedule — inherently shard-count-dependent — so the
// identity contract covers everything except them (they do not even
// exist at one shard).
func stripShardSchedule(prom string) string {
	var b strings.Builder
	for _, line := range strings.Split(prom, "\n") {
		if strings.Contains(line, metrics.ShardScheduleFamilyPrefix) {
			continue
		}
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return strings.TrimSuffix(b.String(), "\n")
}

// shardRun renders one experiment plus its merged metrics under k
// shards. Figures AND metrics must be byte-identical at every shard
// count — the determinism contract of DESIGN §16.
func shardRun(t *testing.T, id string, o Options, k int) (string, string) {
	t.Helper()
	gen, err := Lookup(id)
	if err != nil {
		t.Fatal(err)
	}
	o.P.Shards = k
	var merged metrics.Merged
	o.Metrics = &merged
	fig, err := gen(o)
	if err != nil {
		t.Fatalf("%s shards=%d: %v", id, k, err)
	}
	return fig.Render(), stripShardSchedule(merged.Snapshot().Prometheus())
}

// TestShardCountByteIdentity re-renders table1 and fig7 at 1, 2, and 4
// shards — fault-free and under an armed fault plan, serial and with
// concurrent sweep points — and requires byte-identical figures and
// metrics throughout.
func TestShardCountByteIdentity(t *testing.T) {
	plan, err := faults.Parse("seed=2,drop=0.02,corrupt=0.002")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "fig7"} {
		for _, faulted := range []bool{false, true} {
			for _, parallel := range []int{1, 4} {
				id, faulted, parallel := id, faulted, parallel
				name := id
				if faulted {
					name += "/faulted"
				}
				if parallel > 1 {
					name += "/parallel"
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					o := DefaultOptions()
					o.Scale = 0.01
					o.Parallel = parallel
					if faulted {
						o.P.Faults = plan
					}
					wantFig, wantMet := shardRun(t, id, o, 1)
					for _, k := range []int{2, 4} {
						gotFig, gotMet := shardRun(t, id, o, k)
						if gotFig != wantFig {
							t.Errorf("shards=%d: figure differs from shards=1:\n--- 1 ---\n%s\n--- %d ---\n%s", k, wantFig, k, gotFig)
						}
						if gotMet != wantMet {
							t.Errorf("shards=%d: merged metrics differ from shards=1", k)
						}
					}
				})
			}
		}
	}
}

// TestScaleExperimentLargeMesh is the 1024-RMC smoke: the whole-fabric
// workload on a 32x32 mesh at 16 shards must complete and match the
// single-shard rendering.
func TestScaleExperimentLargeMesh(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-node smoke skipped in -short mode")
	}
	o := DefaultOptions()
	o.Scale = 0.005
	o.Parallel = 1
	o.P.MeshWidth, o.P.MeshHeight = 32, 32
	wantFig, wantMet := shardRun(t, "scale", o, 1)
	gotFig, gotMet := shardRun(t, "scale", o, 16)
	if gotFig != wantFig {
		t.Errorf("32x32 scale: figure differs between shards 1 and 16:\n--- 1 ---\n%s\n--- 16 ---\n%s", wantFig, gotFig)
	}
	if gotMet != wantMet {
		t.Error("32x32 scale: merged metrics differ between shards 1 and 16")
	}
}
